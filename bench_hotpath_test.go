package dpstore

// Hot-path benchmarks: the steady-state access path the zero-allocation
// pass (pooled wire buffers, block slabs, vectored I/O, scheme scratch
// reuse) optimizes, with allocs/op as a first-class metric. The CI
// allocation-budget gate parses BenchmarkHotPathRemoteReadBatch with
// -benchmem and fails the build if allocs/op regresses past the budget
// (see .github/workflows/ci.yml); numbers are recorded in EXPERIMENTS.md
// §HotPath and the BENCH_hotpath.json series.
//
// The Remote benchmarks measure a full round trip — client encode, frame
// write, server decode, Mem batch, server encode, client decode — so every
// allocation on either side of the loopback socket lands in allocs/op.

import (
	"os"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/workload"
)

// hotBatch is the per-round-trip batch size: 16 blocks of 64 B is the
// scale of a Path ORAM path read and a generous DP-RAM pair.
const hotBatch = 16

func hotAddrs() []int {
	addrs := make([]int, hotBatch)
	for i := range addrs {
		addrs[i] = (i * 131) % transportN
	}
	return addrs
}

// BenchmarkHotPathRemoteReadBatch is the acceptance benchmark: one
// ReadBatch round trip over TCP loopback, steady state. The allocation
// budget is ≤ 2 allocs/op (the returned slab's backing array plus its
// block-header slice).
func BenchmarkHotPathRemoteReadBatch(b *testing.B) {
	r := benchRemote(b, transportN, block.DefaultSize)
	addrs := hotAddrs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadBatch(addrs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathRemoteWriteBatch: one WriteBatch round trip over TCP
// loopback, steady state, reusing the ops slice and blocks like a scheme's
// eviction path does.
func BenchmarkHotPathRemoteWriteBatch(b *testing.B) {
	r := benchRemote(b, transportN, block.DefaultSize)
	ops := make([]store.WriteOp, hotBatch)
	for i := range ops {
		ops[i] = store.WriteOp{Addr: (i * 131) % transportN, Block: block.Pattern(uint64(i), block.DefaultSize)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WriteBatch(ops); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathMemReadBatch isolates the in-process slab path: Mem's
// ReadBatch with no transport.
func BenchmarkHotPathMemReadBatch(b *testing.B) {
	m, err := store.NewMem(transportN, block.DefaultSize)
	if err != nil {
		b.Fatal(err)
	}
	addrs := hotAddrs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ReadBatch(addrs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathFileReadBatch exercises the File run-coalescing /
// vectored-I/O read path with a gapped, duplicated address pattern.
func BenchmarkHotPathFileReadBatch(b *testing.B) {
	dir := b.TempDir()
	f, err := store.CreateFile(dir+"/hot.store", transportN, block.DefaultSize)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.Remove(dir + "/hot.store") })
	addrs := make([]int, hotBatch)
	for i := range addrs {
		// Two runs with a gap and one duplicate inside the first run.
		if i < hotBatch/2 {
			addrs[i] = 100 + i/2
		} else {
			addrs[i] = 700 + i
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadBatch(addrs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathFileWriteBatch exercises the File coalesced / vectored
// write path.
func BenchmarkHotPathFileWriteBatch(b *testing.B) {
	dir := b.TempDir()
	f, err := store.CreateFile(dir+"/hotw.store", transportN, block.DefaultSize)
	if err != nil {
		b.Fatal(err)
	}
	ops := make([]store.WriteOp, hotBatch)
	for i := range ops {
		ops[i] = store.WriteOp{Addr: 300 + i, Block: block.Pattern(uint64(i), block.DefaultSize)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.WriteBatch(ops); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathDPRAMRemote is the end-to-end scheme hot path: one
// DP-RAM access (2 round trips) over TCP loopback, encryption on.
func BenchmarkHotPathDPRAMRemote(b *testing.B) {
	db, err := block.PatternDatabase(transportN, block.DefaultSize)
	if err != nil {
		b.Fatal(err)
	}
	opts := dpram.Options{Rand: rng.New(5)}
	r := benchRemote(b, transportN, dpram.ServerBlockSize(block.DefaultSize, opts))
	c, err := dpram.Setup(db, r, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Access(workload.Query{Index: i % transportN, Op: workload.Read}); err != nil {
			b.Fatal(err)
		}
	}
}
