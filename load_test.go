package dpstore

// Open-loop load acceptance (docs/DESIGN.md §Load): the saturation
// survival contract. Two tests:
//
//   - TestLoadSmokeGate is the CI gate: a fixed-duration constant-rate
//     run against an in-process daemon must achieve ≥95% of a
//     conservative offered rate with zero protocol errors — the floor
//     that catches a serve-loop regression before it ships.
//
//   - TestSaturationShedNotStall rams a ramp schedule through 2× the
//     capacity of a durable proxied DP-RAM namespace and asserts the
//     daemon SHEDS (busy frames) instead of STALLING: zero non-busy
//     errors, shedding actually observed, successful-operation p999
//     bounded (the admission queue caps backlog, so accepted operations
//     never see the multi-second queueing delay an unbounded server
//     accumulates under the same ramp), and no goroutine leak once the
//     clients hang up.

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/proxy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/wire"
	"dpstore/internal/workload"
)

func isBusyErr(err error) bool { _, ok := wire.IsBusy(err); return ok }

// TestLoadSmokeGate is the CI load gate. The offered rate is deliberately
// conservative (~6% of the measured single-conn hot-path capacity on one
// core) so the assertion tests liveness, not the machine.
func TestLoadSmokeGate(t *testing.T) {
	const (
		rate     = 1000.0
		duration = 10 * time.Second
		conns    = 4
	)
	mem, err := store.NewMem(4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	ns := store.NewNamespaces()
	ns.Attach(store.DefaultNamespace, mem)
	ln := serveLoadTest(t, ns)

	pool, err := store.DialPool(ln.Addr().String(), conns)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rep, err := workload.RunOpenLoop(workload.DriverOptions{
		Schedule: workload.ConstantRate(rate, duration),
		Sessions: 64,
		Workers:  8,
		Do: func(session, seq int) error {
			_, err := pool.Download((session*7919 + seq) % 4096)
			return err
		},
		IsShed: isBusyErr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load smoke: %s", rep)
	if rep.Errors != 0 {
		t.Fatalf("%d protocol errors (first: %v)", rep.Errors, rep.FirstErr)
	}
	if rep.Shed != 0 {
		t.Fatalf("%d operations shed with admission control off", rep.Shed)
	}
	if rep.Achieved < 0.95*rep.Offered {
		t.Fatalf("achieved %.0f/s below 95%% of offered %.0f/s", rep.Achieved, rep.Offered)
	}
}

// slowBatch charges a device round trip per batch (outside any lock) so
// the saturation point is set by the test, not the machine.
type slowBatch struct {
	store.BatchServer
	delay time.Duration
}

func (s *slowBatch) ReadBatch(addrs []int) ([]block.Block, error) {
	time.Sleep(s.delay)
	return s.BatchServer.ReadBatch(addrs)
}

func (s *slowBatch) WriteBatch(ops []store.WriteOp) error {
	time.Sleep(s.delay)
	return s.BatchServer.WriteBatch(ops)
}

const (
	satRecords    = 512
	satRecordSize = 64
	satConns      = 16
)

// startDurableProxiedDPRAM serves a durable proxied DP-RAM namespace
// whose capacity is set by a ~1ms device latency on every physical
// batch (well under 1000 accesses/s), with the given admission limits,
// and returns connected logical-access clients.
func startDurableProxiedDPRAM(t *testing.T, admit store.AdmitOptions) []*proxy.Client {
	t.Helper()
	opts := dpram.Options{Rand: rng.New(1)}
	engine, err := store.OpenOrCreateDurable(filepath.Join(t.TempDir(), "blocks"),
		satRecords, dpram.ServerBlockSize(satRecordSize, opts), store.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowBatch{BatchServer: engine, delay: time.Millisecond}
	pipe := proxy.NewPipeline(slow)
	db, err := block.NewDatabase(satRecords, satRecordSize)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := dpram.Setup(db, pipe, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := proxy.New(scheme, proxy.Options{Pipeline: pipe})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Close()      //nolint:errcheck
		engine.Close() //nolint:errcheck
	})

	ns := store.NewNamespaces()
	ns.AttachAccessor(store.DefaultNamespace, p)
	ns.SetAdmission(admit)
	ln := serveLoadTest(t, ns)

	clients := make([]*proxy.Client, satConns)
	for i := range clients {
		c, err := proxy.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	return clients
}

func TestSaturationShedNotStall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second saturation ramp")
	}
	baseline := runtime.NumGoroutine()
	clients := startDurableProxiedDPRAM(t, store.AdmitOptions{MaxInflight: 2, MaxQueue: 6})

	rep, err := workload.RunOpenLoop(workload.DriverOptions{
		Schedule: workload.Ramp(200, 4000, 3*time.Second),
		Sessions: 64,
		Workers:  48,
		Do: func(session, seq int) error {
			_, err := clients[session%satConns].Read((session*31 + seq) % satRecords)
			return err
		},
		IsShed: isBusyErr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("saturation ramp: %s", rep)

	// Shed, not stall: every operation either completed or came back as
	// an explicit busy frame — never a timeout, never a protocol error.
	if rep.Errors != 0 {
		t.Errorf("%d non-busy errors under overload (first: %v)", rep.Errors, rep.FirstErr)
	}
	if rep.Shed == 0 {
		t.Error("ramp to ~4× capacity never shed: admission control is not engaging")
	}
	if rep.Done+rep.Shed != rep.Total {
		t.Errorf("done %d + shed %d ≠ total %d", rep.Done, rep.Shed, rep.Total)
	}
	// Bounded tail: accepted operations wait behind at most MaxQueue
	// requests, so their p999 stays orders of magnitude below the
	// seconds-deep backlog an unshedding server accumulates on this ramp.
	if p999 := rep.Latency.Quantile(0.999); p999 > 2*time.Second {
		t.Errorf("p999 %v: accepted operations are queueing unboundedly", p999)
	}

	// Hang up and verify the daemon's goroutines drain (no leak per
	// connection, admission slot, or shed request).
	for _, c := range clients {
		c.Close() //nolint:errcheck
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d never drained to baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestLoadCapacitySweep is the recorded experiment behind EXPERIMENTS.md
// §Load: constant-rate runs sweeping from half capacity to ~4× capacity
// over the same durable proxied DP-RAM deployment as the saturation
// test. Skipped unless DPSTORE_LOAD_SWEEP=1 (it runs for ~20s and its
// value is the recorded table, not a pass/fail bit beyond the
// flattening gate).
func TestLoadCapacitySweep(t *testing.T) {
	if os.Getenv("DPSTORE_LOAD_SWEEP") != "1" {
		t.Skip("set DPSTORE_LOAD_SWEEP=1 to run the recorded capacity sweep")
	}
	var peak, lastAchieved float64
	var reports []string
	rates := []float64{300, 600, 1200, 2400}
	for _, rate := range rates {
		rate := rate
		var rep *workload.Report
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			clients := startDurableProxiedDPRAM(t, store.AdmitOptions{MaxInflight: 2, MaxQueue: 6})
			var err error
			rep, err = workload.RunOpenLoop(workload.DriverOptions{
				Schedule: workload.ConstantRate(rate, 5*time.Second),
				Sessions: 64,
				Workers:  48,
				Do: func(session, seq int) error {
					_, err := clients[session%satConns].Read((session*31 + seq) % satRecords)
					return err
				},
				IsShed: isBusyErr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Errors != 0 {
				t.Fatalf("%d protocol errors (first: %v)", rep.Errors, rep.FirstErr)
			}
			t.Logf("%s", rep)
		})
		if rep == nil {
			t.Fatal("subtest produced no report")
		}
		if rep.Achieved > peak {
			peak = rep.Achieved
		}
		lastAchieved = rep.Achieved
		reports = append(reports, fmt.Sprintf("rate=%-6.0f %s", rate, rep))
	}
	for _, r := range reports {
		t.Log(r)
	}
	// The acceptance criterion: at ~4× capacity (the last, heaviest
	// rate), achieved throughput holds ≥80% of the observed peak —
	// flattening, not collapse.
	if lastAchieved < 0.8*peak {
		t.Fatalf("achieved collapsed past saturation: %.0f/s at the top rate vs %.0f/s peak", lastAchieved, peak)
	}
}

// serveLoadTest serves ns on a loopback listener torn down with the test.
func serveLoadTest(t *testing.T, ns *store.Namespaces) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go store.ServeNamespaces(ln, ns) //nolint:errcheck
	return ln
}
