package dpstore_test

// Runnable godoc examples for the public facade: each Example compiles,
// runs under `go test`, and renders on pkg.go.dev. They are the living
// form of the README quickstart.

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"dpstore"
)

// record pads a short string to one fixed-size block.
func record(s string, blockSize int) dpstore.Block {
	b := dpstore.NewBlock(blockSize)
	copy(b, s)
	return b
}

func text(b dpstore.Block) string {
	return string(bytes.TrimRight(b, "\x00"))
}

// ExampleSetupDPRAM outsources a database to an untrusted in-memory
// server and accesses it through the paper's DP-RAM (Section 6): constant
// overhead — exactly 3 block operations per access — with ε = Θ(log n)
// differential privacy for the access pattern.
func ExampleSetupDPRAM() {
	const n, blockSize = 1024, 32

	db, err := dpstore.NewDatabase(n, blockSize)
	if err != nil {
		log.Fatal(err)
	}
	db.Set(7, record("the secret at address 7", blockSize)) //nolint:errcheck

	opts := dpstore.DPRAMOptions{Rand: dpstore.NewRand(1)}
	server, err := dpstore.NewMemServer(n, dpstore.DPRAMServerBlockSize(blockSize, opts))
	if err != nil {
		log.Fatal(err)
	}
	ram, err := dpstore.SetupDPRAM(db, server, opts) // encrypts db onto the server
	if err != nil {
		log.Fatal(err)
	}

	got, err := ram.Read(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(text(got))
	if _, err := ram.Write(7, record("updated", blockSize)); err != nil {
		log.Fatal(err)
	}
	got, _ = ram.Read(7)
	fmt.Println(text(got))
	// Output:
	// the secret at address 7
	// updated
}

// ExampleNewDPIR retrieves a record with the paper's DP-IR (Section 5,
// Algorithm 1): the wanted block hides in a batch of K−1 uniform decoys,
// and with probability α the client downloads pure decoys and reports ⊥.
func ExampleNewDPIR() {
	const n, blockSize = 1024, 32

	server, err := dpstore.NewMemServer(n, blockSize)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := server.Upload(i, record(fmt.Sprintf("record %d", i), blockSize)); err != nil {
			log.Fatal(err)
		}
	}

	ir, err := dpstore.NewDPIR(server, dpstore.DPIROptions{
		Epsilon: 6, // ε = Θ(log n) is the constant-overhead regime
		Alpha:   0.05,
		Rand:    dpstore.NewRand(42),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloads per query: %d (independent of n)\n", ir.K())

	got, err := ir.Query(123)
	if err != nil {
		log.Fatal(err) // with probability α the answer is dpstore.ErrBottom
	}
	fmt.Println(text(got))
	// Output:
	// downloads per query: 3 (independent of n)
	// record 123
}

// ExampleDialServer runs a construction against a real networked block
// server: the daemon half is ServeBlocks (the embeddable cmd/blockstored),
// the client half a RemoteServer whose batch calls cross the wire once
// per query.
func ExampleDialServer() {
	const n, blockSize = 256, 16

	backing, err := dpstore.NewShardedMemServer(n, blockSize, 4)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go dpstore.ServeBlocks(ln, backing) //nolint:errcheck

	remote, err := dpstore.DialServer(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()

	fmt.Printf("store shape: %d slots of %d bytes\n", remote.Size(), remote.BlockSize())
	if err := remote.Upload(9, record("over the wire", blockSize)); err != nil {
		log.Fatal(err)
	}
	got, err := remote.Download(9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(text(got))
	// Output:
	// store shape: 256 slots of 16 bytes
	// over the wire
}

// ExampleDialServerNamespace shows the multi-tenant daemon: one serve
// loop hosts independent namespaces — separate address spaces, separate
// locks — created on demand by the open handshake, so two tenants can
// write the same logical address without seeing each other.
func ExampleDialServerNamespace() {
	ns := dpstore.NewNamespaces()
	ns.SetFactory(16, func(name string, slots, blockSize int) (dpstore.Server, error) {
		return dpstore.NewShardedMemServer(slots, blockSize, 4)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go dpstore.ServeBlockNamespaces(ln, ns) //nolint:errcheck

	alice, err := dpstore.DialServerNamespace(ln.Addr().String(), "alice", 128, 16)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	bob, err := dpstore.DialServerNamespace(ln.Addr().String(), "bob", 128, 16)
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	alice.Upload(5, record("alice's block", 16)) //nolint:errcheck
	bob.Upload(5, record("bob's block", 16))     //nolint:errcheck

	a, _ := alice.Download(5)
	b, _ := bob.Download(5)
	fmt.Println(text(a))
	fmt.Println(text(b))
	// Output:
	// alice's block
	// bob's block
}

// ExampleServeProxy shows the privacy-proxy deployment: a DP-RAM hosted
// behind a daemon as a shared, concurrently scheduled scheme instance.
// Clients speak logical record accesses; the physical store — and with it
// the access pattern the scheme obfuscates — never crosses the wire.
func ExampleServeProxy() {
	const n, recordSize = 256, 32

	db, err := dpstore.NewDatabase(n, recordSize)
	if err != nil {
		log.Fatal(err)
	}
	opts := dpstore.DPRAMOptions{Rand: dpstore.NewRand(1)}
	backing, err := dpstore.NewMemServer(n, dpstore.DPRAMServerBlockSize(recordSize, opts))
	if err != nil {
		log.Fatal(err)
	}
	pipe := dpstore.NewProxyPipeline(dpstore.AsBatchServer(backing))
	scheme, err := dpstore.SetupDPRAM(db, pipe, opts)
	if err != nil {
		log.Fatal(err)
	}
	p := dpstore.NewProxy(scheme, dpstore.ProxyOptions{Pipeline: pipe})
	defer p.Close() //nolint:errcheck
	if err := p.Flush(); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go dpstore.ServeProxy(ln, p) //nolint:errcheck

	client, err := dpstore.DialProxy(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	fmt.Printf("logical shape: %d records of %d bytes\n", client.Records(), client.RecordSize())
	if _, err := client.Write(3, record("filed by a proxy client", recordSize)); err != nil {
		log.Fatal(err)
	}
	got, err := client.Read(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(text(got))
	// Output:
	// logical shape: 256 records of 32 bytes
	// filed by a proxy client
}
