package dpstore_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"dpstore"
)

// TestFacadeDurableRoundTrip drives the whole durable surface through the
// public facade: engine create/write/close, reopen with WAL replay, DP-RAM
// setup + state checkpoint, and a Resume over the reopened engine.
func TestFacadeDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "blocks")

	const n, recSize = 32, 24
	opts := dpstore.DPRAMOptions{Rand: dpstore.NewRand(5), StashParam: 4}
	physBS := dpstore.DPRAMServerBlockSize(recSize, opts)

	srv, err := dpstore.CreateDurableServer(base, n, physBS, dpstore.DurableServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := dpstore.NewDatabase(n, recSize)
	if err != nil {
		t.Fatal(err)
	}
	ram, err := dpstore.SetupDPRAM(db, srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := dpstore.NewBlock(recSize)
	copy(want, "facade-durable")
	if _, err := ram.Write(11, want); err != nil {
		t.Fatal(err)
	}
	state, err := ram.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := dpstore.OpenDurableServer(base, n, physBS, dpstore.DurableServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ram2, err := dpstore.ResumeDPRAM(srv2, state, dpstore.DPRAMOptions{Rand: dpstore.NewRand(6), StashParam: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ram2.Read(11)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed read = %q, want %q", got, want)
	}
}
