#!/bin/sh
# bench_partition.sh — run the partitioned-scheme striping sweep (P = 1, 2, 4 at 16 clients) and write the results
# as machine-readable JSON, extending the perf-trajectory file series
# (sibling of BENCH_hotpath.json).
#
# Usage:
#   scripts/bench_partition.sh [out.json]        # default BENCH_partition.json
#
# Environment:
#   BENCH=regexp     benchmarks to run   (default BenchmarkPartitionDiskLike)
#   CPUS=list        -cpu sweep          (default 8)
#   BENCHTIME=dur    -benchtime          (default 2s)
#   COUNT=n          -count              (default 1)
#
# Output schema: {"env": {...}, "benchmarks": [{"name", "cpus", "iterations",
# "ns_per_op", "bytes_per_op", "allocs_per_op", ...}]} — one entry per
# benchmark result line, with whatever extra unit metrics the benchmark
# reported (e.g. MB/s, roundtrips/op) carried through verbatim.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_partition.json}"
bench="${BENCH:-BenchmarkPartitionDiskLike}"
cpus="${CPUS:-8}"
benchtime="${BENCHTIME:-2s}"
count="${COUNT:-1}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchmem -benchtime "$benchtime" \
	-count "$count" -cpu "$cpus" . | tee "$raw"

go version | awk -v out="$out" -v raw="$raw" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
NR == 1 {
	split($0, gv, " ")
	printf "{\n  \"env\": {\"go\": \"%s\", \"os_arch\": \"%s\"},\n", jesc(gv[3]), jesc(gv[4]) > out
	printf "  \"benchmarks\": [" > out
	n = 0
	while ((getline line < raw) > 0) {
		if (line !~ /^Benchmark/) continue
		split(line, f, /[ \t]+/)
		# Name-CPUS  iterations  value unit  value unit ...
		name = f[1]; cpus = 1
		if (match(name, /-[0-9]+$/)) {
			cpus = substr(name, RSTART + 1) + 0
			name = substr(name, 1, RSTART - 1)
		}
		if (n++) printf "," > out
		printf "\n    {\"name\": \"%s\", \"cpus\": %d, \"iterations\": %d", jesc(name), cpus, f[2] > out
		for (i = 3; i + 1 <= length(f); i += 2) {
			unit = f[i+1]
			if (unit == "ns/op") key = "ns_per_op"
			else if (unit == "B/op") key = "bytes_per_op"
			else if (unit == "allocs/op") key = "allocs_per_op"
			else { key = unit; gsub(/[^A-Za-z0-9]/, "_", key) }
			printf ", \"%s\": %s", jesc(key), f[i] > out
		}
		printf "}" > out
	}
	printf "\n  ]\n}\n" > out
}'

echo "wrote $out"
