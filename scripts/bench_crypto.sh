#!/bin/sh
# bench_crypto.sh — run the crypto kernel benchmark suite (scalar seal/open,
# slab *Into paths, SealBatch/OpenBatch at scheme shapes, PRF variants) plus
# the scheme-level benchmarks the kernels feed (DP-RAM, BucketRAM, Path
# ORAM), and write the results as machine-readable JSON
# (BENCH_crypto.json), sibling to BENCH_hotpath.json in the perf-trajectory
# series.
#
# Usage:
#   scripts/bench_crypto.sh [out.json]         # default BENCH_crypto.json
#
# Environment:
#   CPUS=list        -cpu sweep          (default 1,4)
#   BENCHTIME=dur    -benchtime          (default 1s)
#   COUNT=n          -count              (default 1)
#
# Output schema matches bench_hotpath.sh: {"env": {...}, "benchmarks":
# [{"name", "cpus", "iterations", "ns_per_op", "bytes_per_op",
# "allocs_per_op", ...}]} — one entry per result line, extra unit metrics
# (MB/s, ...) carried through verbatim.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_crypto.json}"
cpus="${CPUS:-1,4}"
benchtime="${BENCHTIME:-1s}"
count="${COUNT:-1}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

run() { # run <pkg> <bench regexp>
	go test -run '^$' -bench "$2" -benchmem -benchtime "$benchtime" \
		-count "$count" -cpu "$cpus" "$1" | tee -a "$raw"
}

run ./internal/crypto '.'
run ./internal/core/dpram 'BenchmarkRead$|BenchmarkWrite$|BenchmarkBucketAccess$'
run ./internal/baseline/pathoram 'BenchmarkReadFlat$|BenchmarkReadRecursive$'
run . 'BenchmarkHotPathDPRAMRemote$'

go version | awk -v out="$out" -v raw="$raw" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
NR == 1 {
	split($0, gv, " ")
	printf "{\n  \"env\": {\"go\": \"%s\", \"os_arch\": \"%s\"},\n", jesc(gv[3]), jesc(gv[4]) > out
	printf "  \"benchmarks\": [" > out
	n = 0
	while ((getline line < raw) > 0) {
		if (line !~ /^Benchmark/) continue
		split(line, f, /[ \t]+/)
		# Name-CPUS  iterations  value unit  value unit ...
		name = f[1]; cpus = 1
		if (match(name, /-[0-9]+$/)) {
			cpus = substr(name, RSTART + 1) + 0
			name = substr(name, 1, RSTART - 1)
		}
		if (n++) printf "," > out
		printf "\n    {\"name\": \"%s\", \"cpus\": %d, \"iterations\": %d", jesc(name), cpus, f[2] > out
		for (i = 3; i + 1 <= length(f); i += 2) {
			unit = f[i+1]
			if (unit == "ns/op") key = "ns_per_op"
			else if (unit == "B/op") key = "bytes_per_op"
			else if (unit == "allocs/op") key = "allocs_per_op"
			else { key = unit; gsub(/[^A-Za-z0-9]/, "_", key) }
			printf ", \"%s\": %s", jesc(key), f[i] > out
		}
		printf "}" > out
	}
	printf "\n  ]\n}\n" > out
}'

echo "wrote $out"
