package dpstore

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestFacadeDPIR drives the whole DP-IR lifecycle through the public API
// only.
func TestFacadeDPIR(t *testing.T) {
	const n = 256
	db, err := NewDatabase(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b := NewBlock(64)
		b.SetUint64(uint64(i))
		if err := db.Set(i, b); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewMemServer(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := srv.Upload(i, db.Get(i)); err != nil {
			t.Fatal(err)
		}
	}
	counting := NewCountingServer(srv)
	client, err := NewDPIR(counting, DPIROptions{
		Epsilon: math.Log(float64(n)), Alpha: 0.1, Rand: NewRand(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 200; i++ {
		b, err := client.Query(i % n)
		if errors.Is(err, ErrBottom) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Uint64() != uint64(i%n) {
			t.Fatal("wrong record")
		}
		hits++
	}
	if hits < 150 {
		t.Fatalf("only %d/200 hits at α = 0.1", hits)
	}
	if got := counting.Stats().Downloads; got != int64(200*client.K()) {
		t.Fatalf("downloads = %d, want %d", got, 200*client.K())
	}
}

// TestFacadeDPRAM drives DP-RAM through the public API.
func TestFacadeDPRAM(t *testing.T) {
	const n = 128
	db, err := NewDatabase(n, 32)
	if err != nil {
		t.Fatal(err)
	}
	opts := DPRAMOptions{Rand: NewRand(2)}
	srv, err := NewMemServer(n, DPRAMServerBlockSize(32, opts))
	if err != nil {
		t.Fatal(err)
	}
	ram, err := SetupDPRAM(db, srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := NewBlock(32)
	want.SetUint64(777)
	if _, err := ram.Write(5, want); err != nil {
		t.Fatal(err)
	}
	got, err := ram.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("read-after-write failed through the facade")
	}
}

// TestFacadeDPKVS drives DP-KVS through the public API.
func TestFacadeDPKVS(t *testing.T) {
	opts := DPKVSOptions{Capacity: 128, ValueSize: 16, Rand: NewRand(3)}
	slots, bs, err := DPKVSRequiredServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewMemServer(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	kv, err := SetupDPKVS(srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	val := NewBlock(16)
	val.SetUint64(42)
	if err := kv.Put("answer", val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := kv.Get("answer")
	if err != nil || !ok {
		t.Fatalf("get: %v ok=%v", err, ok)
	}
	if got.Uint64() != 42 {
		t.Fatal("wrong value")
	}
	if _, ok, _ := kv.Get("missing"); ok {
		t.Fatal("phantom key")
	}
}

// TestFacadeBounds spot-checks the re-exported analytic bounds.
func TestFacadeBounds(t *testing.T) {
	n := 1 << 16
	if DPIRLowerBound(n, 1, 0.1, 0) < float64(n)/10 {
		t.Fatal("DPIRLowerBound too weak")
	}
	if DPRAMLowerBound(n, 2, 0, 0) < 10 {
		t.Fatal("DPRAMLowerBound too weak")
	}
	if DPIRDownloadCount(n, math.Log(float64(n)), 0.1) > 2 {
		t.Fatal("K at ε = ln n should be tiny")
	}
	if MinEpsConstantOverh(n, 4, 0.1) < 5 {
		t.Fatal("min ε for constant overhead should be Θ(log n)")
	}
	if math.IsInf(DPIRAchievedEps(n, 1, 0.1), 1) {
		t.Fatal("achieved ε should be finite for α > 0")
	}
}

// TestFacadeMultiDPIR drives the multi-server scheme.
func TestFacadeMultiDPIR(t *testing.T) {
	const n, d = 64, 3
	servers := make([]Server, d)
	for i := range servers {
		srv, err := NewMemServer(n, 16)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			b := NewBlock(16)
			b.SetUint64(uint64(j))
			if err := srv.Upload(j, b); err != nil {
				t.Fatal(err)
			}
		}
		servers[i] = srv
	}
	m, err := NewMultiDPIR(servers, NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < n; q++ {
		b, err := m.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if b.Uint64() != uint64(q) {
			t.Fatalf("query %d wrong", q)
		}
	}
	if m.Eps() <= 0 {
		t.Fatal("eps not positive")
	}
}

// TestFacadeGeometry sanity-checks the tree geometry re-export.
func TestFacadeGeometry(t *testing.T) {
	g, err := NewTreeGeometry(1024, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() >= 3*1024 {
		t.Fatal("storage not linear")
	}
	if len(g.Path(0)) != g.Depth() {
		t.Fatal("path length mismatch")
	}
}

func ExampleNewDPIR() {
	srv, _ := NewMemServer(1024, 64)
	client, _ := NewDPIR(srv, DPIROptions{Epsilon: math.Log(1024), Alpha: 0.1, Rand: NewRand(1)})
	fmt.Println("blocks per query:", client.K())
	// Output: blocks per query: 1
}
