package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestNamespaceFactoryRejectsHostileShapes: a client-requested shape whose
// byte product overflows int64 must be rejected by the budget check, not
// turned into a daemon-killing allocation. Exercises the factory the
// daemon actually installs (tenantRegistry, in its no-data-dir form).
func TestNamespaceFactoryRejectsHostileShapes(t *testing.T) {
	reg, err := newTenantRegistry("", 64, 32, 4, 1<<30, &shutdown{})
	if err != nil {
		t.Fatal(err)
	}
	factory := reg.factory
	bad := [][2]int{
		{math.MaxInt64 >> 4, 32}, // product overflows int64
		{1 << 59, 32},            // wraps to 0 under naive int64 multiply
		{1 << 30, 1},             // within the naive byte product, but 2^30 slot headers
		{-1, 32},                 // negative slot count
		{1 << 40, 0},             // zero block size falls back to default but slots stay huge
		{(1 << 30) / 32, 32},     // exactly at the naive budget; overhead pushes it over
	}
	for _, c := range bad {
		if _, err := factory("t", c[0], c[1]); err == nil {
			t.Errorf("factory accepted hostile shape %d × %d", c[0], c[1])
		}
	}
	// Sane shapes still work, including zero-defaults.
	s, err := factory("t", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 64 || s.BlockSize() != 32 {
		t.Fatalf("default shape = %d × %d, want 64 × 32", s.Size(), s.BlockSize())
	}
	if _, err := factory("t", 1024, 112); err != nil {
		t.Fatalf("sane shape rejected: %v", err)
	}
}

// TestNewMemBackingClampsShards: tenant namespaces smaller than the stripe
// width stripe as far as they go instead of failing or silently growing.
func TestNewMemBackingClampsShards(t *testing.T) {
	s, err := newMemBacking(3, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 {
		t.Fatalf("size = %d, want 3", s.Size())
	}
	s, err = newMemBacking(100, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 100 {
		t.Fatalf("size = %d, want 100", s.Size())
	}
}

// TestOpenBackingShapes covers the flag-validation matrix of the default
// namespace, including the sharded file layout.
func TestOpenBackingShapes(t *testing.T) {
	// The operator's explicit -shards must not silently downgrade.
	if _, _, err := openBacking("", 4, 16, 8); err == nil {
		t.Error("mem: 4 slots over 8 shards accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "blocks.dat")
	if _, _, err := openBacking(path, 4, 16, 8); err == nil {
		t.Error("file: 4 slots over 8 shards accepted")
	}
	s, desc, err := openBacking(path, 10, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 10 || s.BlockSize() != 16 {
		t.Fatalf("sharded file store shape = %d × %d (%s)", s.Size(), s.BlockSize(), desc)
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(path + ".shard" + string(rune('0'+i))); err != nil {
			t.Errorf("missing shard file %d: %v", i, err)
		}
	}
}
