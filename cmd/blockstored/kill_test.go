package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/proxy"
	"dpstore/internal/store"
)

func dialOrFatal(t *testing.T, addr string) *store.Remote {
	t.Helper()
	rs, err := store.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func dialNamespaceOrFatal(t *testing.T, addr, name string, slots, blockSize int) *store.Remote {
	t.Helper()
	rs, err := store.DialNamespace(addr, name, slots, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// buildDaemon compiles blockstored once per test binary.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "blockstored")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build daemon (no go toolchain in test env?): %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and waits for the port to accept.
func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon never listened on %s", addr)
}

func pickAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestKillAndRestartDurableProxy is the acceptance round trip: write
// records through `-proxy dpram -data DIR` over TCP, SIGKILL the daemon
// mid-workload, restart it on the same directory, and require every
// previously-acknowledged logical record to read back its acknowledged
// value. (The trace-shape half of the acceptance criterion — resumed
// workload shape == uninterrupted shape — is pinned in-process by
// TestRecoveryShapeInvariance, where the backing store is observable.)
func TestKillAndRestartDurableProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	addr := pickAddr(t)
	args := []string{"-addr", addr, "-slots", "256", "-blocksize", "32", "-proxy", "dpram", "-data", dir}

	daemon := startDaemon(t, bin, args...)
	waitListening(t, addr)
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Epoch() != 1 {
		t.Fatalf("first-generation epoch = %d, want 1", cl.Epoch())
	}

	// Workload: write records while a timer murders the daemon. Acked
	// writes go into the shadow; the write in flight at kill time may land
	// or not — either is correct, so it is tracked separately.
	acked := make(map[int]block.Block)
	killAt := time.After(400 * time.Millisecond)
	var inFlight int
	killed := false
	for q := 0; !killed; q++ {
		select {
		case <-killAt:
			if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			daemon.Wait() //nolint:errcheck // SIGKILL exit is expected
			killed = true
			continue
		default:
		}
		i := (q * 7) % 256
		v := block.New(32)
		copy(v, fmt.Sprintf("acked-%05d", q))
		inFlight = i
		if _, err := cl.Write(i, v); err != nil {
			// The kill raced the round trip: unacknowledged, excluded.
			break
		}
		acked[i] = v
	}
	cl.Close()
	if len(acked) == 0 {
		t.Fatal("daemon died before any write was acknowledged; timing broken")
	}
	t.Logf("killed after %d acknowledged writes", len(acked))

	// Restart on the same directory: recovery must replay the journal.
	daemon2 := startDaemon(t, bin, args...)
	defer func() {
		daemon2.Process.Kill() //nolint:errcheck
		daemon2.Wait()         //nolint:errcheck
	}()
	waitListening(t, addr)
	cl2, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if cl2.Epoch() != 2 {
		t.Fatalf("recovered epoch = %d, want 2 (client can detect the restart)", cl2.Epoch())
	}
	zero := block.New(32)
	for i := 0; i < 256; i++ {
		got, err := cl2.Read(i)
		if err != nil {
			t.Fatalf("read %d after recovery: %v", i, err)
		}
		want, wasAcked := acked[i]
		switch {
		case wasAcked && !bytes.Equal(got, want):
			if i == inFlight {
				// The unacked in-flight write targeted this record: the
				// acked value OR zero-prefix is... no: an unacked write may
				// have landed, so any NEWER value is also admissible, but a
				// LOST acked value is not. Distinguish: the in-flight write
				// carried a larger q for the same record.
				if bytes.HasPrefix(got, []byte("acked-")) {
					continue
				}
			}
			t.Fatalf("acked record %d lost: got %q want %q", i, got, want)
		case !wasAcked && i != inFlight && !bytes.Equal(got, zero):
			t.Fatalf("never-written record %d holds %q", i, got)
		}
	}
}

// TestKillAndRestartPartitionedProxy: the durability round trip for a
// striped tenant. `-proxy dpram -partitions 4 -data DIR` journals four
// scheme instances into per-partition WALs over one shared durable
// backend; a SIGKILL mid-workload tears at most one partition's in-flight
// batch, and the restart must replay every journal and serve every
// previously-acknowledged logical record. A third start with a different
// -partitions on the same directory must be refused outright: the
// striping width is load-bearing on-disk state.
func TestKillAndRestartPartitionedProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	addr := pickAddr(t)
	args := []string{"-addr", addr, "-slots", "256", "-blocksize", "32", "-proxy", "dpram", "-partitions", "4", "-data", dir}

	daemon := startDaemon(t, bin, args...)
	waitListening(t, addr)
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Partitions() != 4 {
		t.Fatalf("handshake advertises %d partitions, want 4", cl.Partitions())
	}
	if cl.Epoch() != 1 {
		t.Fatalf("first-generation epoch = %d, want 1", cl.Epoch())
	}

	// Stride 7 is coprime to 4, so acked writes land in every partition
	// before the timer kills the daemon mid-workload.
	acked := make(map[int]block.Block)
	killAt := time.After(400 * time.Millisecond)
	var inFlight int
	killed := false
	for q := 0; !killed; q++ {
		select {
		case <-killAt:
			if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			daemon.Wait() //nolint:errcheck // SIGKILL exit is expected
			killed = true
			continue
		default:
		}
		i := (q * 7) % 256
		v := block.New(32)
		copy(v, fmt.Sprintf("acked-%05d", q))
		inFlight = i
		if _, err := cl.Write(i, v); err != nil {
			break // the kill raced the round trip: unacknowledged, excluded
		}
		acked[i] = v
	}
	cl.Close()
	if len(acked) == 0 {
		t.Fatal("daemon died before any write was acknowledged; timing broken")
	}
	t.Logf("killed after %d acknowledged writes", len(acked))

	daemon2 := startDaemon(t, bin, args...)
	waitListening(t, addr)
	cl2, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if cl2.Partitions() != 4 {
		t.Fatalf("recovered handshake advertises %d partitions, want 4", cl2.Partitions())
	}
	if cl2.Epoch() != 2 {
		t.Fatalf("recovered epoch = %d, want 2", cl2.Epoch())
	}
	zero := block.New(32)
	for i := 0; i < 256; i++ {
		got, err := cl2.Read(i)
		if err != nil {
			t.Fatalf("read %d after recovery: %v", i, err)
		}
		want, wasAcked := acked[i]
		switch {
		case wasAcked && !bytes.Equal(got, want):
			if i == inFlight && bytes.HasPrefix(got, []byte("acked-")) {
				continue // the unacked in-flight write landed: admissible
			}
			t.Fatalf("acked record %d lost: got %q want %q", i, got, want)
		case !wasAcked && i != inFlight && !bytes.Equal(got, zero):
			t.Fatalf("never-written record %d holds %q", i, got)
		}
	}
	cl2.Close()
	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon2.Wait(); err != nil {
		t.Fatalf("SIGTERM shutdown of recovered partitioned daemon: %v", err)
	}

	// Reopening the same directory under a different striping width would
	// scramble record→partition routing; the daemon must refuse.
	bad := exec.Command(bin, "-addr", pickAddr(t), "-slots", "256", "-blocksize", "32", "-proxy", "dpram", "-partitions", "2", "-data", dir)
	out, err := bad.CombinedOutput()
	if err == nil {
		t.Fatalf("daemon opened a P=4 directory with -partitions 2:\n%s", out)
	}
	if !strings.Contains(string(out), "partitions") {
		t.Fatalf("refusal does not name the striping mismatch:\n%s", out)
	}
}

// TestMetricsDrainOnSignal exercises the -metrics shutdown contract
// in-process, where the window between "signal received" and "process
// gone" is observable deterministically: after SIGTERM, /healthz flips to
// 503 draining BEFORE the wire listener closes, and finish closes the
// metrics listener so the HTTP port does not outlive the stores.
func TestMetricsDrainOnSignal(t *testing.T) {
	mem, err := store.NewMem(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	ns := store.NewNamespaces()
	ns.Attach(store.DefaultNamespace, mem)
	sd := &shutdown{}
	maddr := pickAddr(t)
	applyOperability(ns, 0, 0, maddr, false, sd)

	// Each probe dials fresh: a kept-alive connection would keep answering
	// after the listener closed and mask the port staying up or down.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	get := func() (int, string) {
		t.Helper()
		resp, err := client.Get("http://" + maddr + "/healthz")
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get()
	if code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthy daemon: /healthz = %d %q", code, body)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sd.onSignal(ln)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The handler flips draining then closes the wire listener; Accept
	// returning is the signal-processed barrier.
	if _, err := ln.Accept(); err == nil {
		t.Fatal("wire listener still accepting after SIGTERM")
	}
	code, body = get()
	if code != http.StatusServiceUnavailable || !strings.HasPrefix(body, "draining") {
		t.Fatalf("draining daemon: /healthz = %d %q, want 503 draining", code, body)
	}

	// finish closes stores first, metrics listener last.
	sd.finish(net.ErrClosed)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := get(); code == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("metrics listener survived finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCleanShutdownSIGTERM: SIGTERM checkpoints and exits 0; the restart
// serves the data with the epoch advanced.
func TestCleanShutdownSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	addr := pickAddr(t)
	maddr := pickAddr(t)
	args := []string{"-addr", addr, "-slots", "128", "-blocksize", "32", "-proxy", "pathoram", "-data", dir, "-metrics", maddr}

	daemon := startDaemon(t, bin, args...)
	waitListening(t, addr)
	waitListening(t, maddr)
	resp, err := http.Get("http://" + maddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy daemon: /healthz = %d", resp.StatusCode)
	}
	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	want := block.New(32)
	copy(want, "survives sigterm")
	if _, err := cl.Write(9, want); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("SIGTERM shutdown was not clean: %v", err)
	}
	// The metrics port dies with the process, not before the checkpoint.
	if _, err := http.Get("http://" + maddr + "/healthz"); err == nil {
		t.Fatal("metrics port outlived the daemon")
	}

	daemon2 := startDaemon(t, bin, args...)
	defer func() {
		daemon2.Process.Kill() //nolint:errcheck
		daemon2.Wait()         //nolint:errcheck
	}()
	waitListening(t, addr)
	cl2, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	got, err := cl2.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("record lost across SIGTERM restart: %q", got)
	}
}

// TestDurableBlockNamespacesRestart: block mode with -data — the default
// namespace's blocks and a factory-created namespace (registry persisted)
// both survive a SIGKILL restart.
func TestDurableBlockNamespacesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	addr := pickAddr(t)
	args := []string{"-addr", addr, "-slots", "64", "-blocksize", "16", "-data", dir, "-shards", "2", "-namespaces", "4"}

	daemon := startDaemon(t, bin, args...)
	waitListening(t, addr)

	// Default namespace write.
	rs := dialOrFatal(t, addr)
	defVal := block.Block(bytes.Repeat([]byte{0xAB}, 16))
	if err := rs.Upload(5, defVal); err != nil {
		t.Fatal(err)
	}
	epoch1 := rs.Epoch()
	rs.Close()
	// Tenant namespace (created through the factory, persisted).
	tn := dialNamespaceOrFatal(t, addr, "tenant-x", 32, 16)
	tenVal := block.Block(bytes.Repeat([]byte{0xCD}, 16))
	if err := tn.Upload(3, tenVal); err != nil {
		t.Fatal(err)
	}
	tn.Close()

	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait() //nolint:errcheck

	daemon2 := startDaemon(t, bin, args...)
	defer func() {
		daemon2.Process.Kill() //nolint:errcheck
		daemon2.Wait()         //nolint:errcheck
	}()
	waitListening(t, addr)

	rs2 := dialOrFatal(t, addr)
	defer rs2.Close()
	if rs2.Epoch() != epoch1+1 {
		t.Fatalf("epoch %d → %d, want +1", epoch1, rs2.Epoch())
	}
	got, err := rs2.Download(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, defVal) {
		t.Fatal("default-namespace block lost across SIGKILL")
	}
	tn2 := dialNamespaceOrFatal(t, addr, "tenant-x", 0, 0)
	defer tn2.Close()
	if tn2.Size() != 32 || tn2.BlockSize() != 16 {
		t.Fatalf("restored tenant shape %d × %d", tn2.Size(), tn2.BlockSize())
	}
	got, err = tn2.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, tenVal) {
		t.Fatal("tenant-namespace block lost across SIGKILL (registry or engine failed)")
	}
}
