package main

// Process-level smoke for the observability surface: a real daemon with
// -metrics -pprof -slowlog serving a dpram proxy, scraped over HTTP while
// a client drives load. Pinned here: the Prometheus exposition parses and
// its counters are monotonic across scrapes, the JSON views keep their
// content types and no-cache headers, /healthz reports the epoch,
// /slowlog captures spans once armed, and /debug/pprof answers when (and
// only when) -pprof is set. CI runs this as the metrics-smoke gate.

import (
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/proxy"
)

// scrape GETs a metrics-listener path, returning status, headers, body.
func scrape(t *testing.T, base, path string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get("http://" + base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// promValue parses a Prometheus text body and sums every sample of the
// named metric (across label sets), failing on any malformed line.
func promValue(t *testing.T, body, metric string) float64 {
	t.Helper()
	var sum float64
	found := false
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("non-numeric sample %q in line %q: %v", val, line, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		if name == metric {
			sum += v
			found = true
		}
	}
	if !found {
		t.Fatalf("metric %s absent from exposition:\n%.2000s", metric, body)
	}
	return sum
}

func TestMetricsEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	addr, maddr := pickAddr(t), pickAddr(t)
	daemon := startDaemon(t, bin,
		"-addr", addr, "-slots", "128", "-blocksize", "32", "-proxy", "dpram",
		"-maxinflight", "8", "-maxqueue", "8",
		"-metrics", maddr, "-pprof", "-slowlog", "1ns")
	defer func() {
		daemon.Process.Kill() //nolint:errcheck
		daemon.Wait()         //nolint:errcheck
	}()
	waitListening(t, addr)
	waitListening(t, maddr)

	cl, err := proxy.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	load := func(n int) {
		for i := 0; i < n; i++ {
			if i%4 == 3 {
				if _, err := cl.Write(i%128, block.New(32)); err != nil {
					t.Fatal(err)
				}
			} else if _, err := cl.Read(i % 128); err != nil {
				t.Fatal(err)
			}
		}
	}
	load(20)

	// Prometheus text: right content type, parses, core serve-loop series
	// present, counters monotonic across scrapes under load.
	code, hdr, body := scrape(t, maddr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	frames1 := promValue(t, body, "dpstore_serve_frames_total")
	accepted1 := promValue(t, body, "dpstore_admission_accepted_total")
	if frames1 <= 0 || accepted1 <= 0 {
		t.Fatalf("serve-loop counters flat after load: frames=%v accepted=%v", frames1, accepted1)
	}
	load(20)
	_, _, body2 := scrape(t, maddr, "/metrics")
	if f2 := promValue(t, body2, "dpstore_serve_frames_total"); f2 <= frames1 {
		t.Fatalf("frame counter not monotonic across scrapes: %v then %v", frames1, f2)
	}
	if a2 := promValue(t, body2, "dpstore_admission_accepted_total"); a2 <= accepted1 {
		t.Fatalf("accepted counter not monotonic across scrapes: %v then %v", accepted1, a2)
	}
	if promValue(t, body2, "dpstore_uptime_seconds") < 0 {
		t.Fatal("uptime gauge negative")
	}

	// JSON views: /metrics.json and /varz serve the namespace table with
	// proper content type and no-cache.
	for _, path := range []string{"/metrics.json", "/varz"} {
		code, hdr, body := scrape(t, maddr, path)
		if code != http.StatusOK {
			t.Fatalf("%s = %d", path, code)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s Content-Type = %q", path, ct)
		}
		if cc := hdr.Get("Cache-Control"); cc != "no-cache" {
			t.Fatalf("%s Cache-Control = %q, want no-cache", path, cc)
		}
		var doc struct {
			Namespaces []struct {
				Kind     string `json:"kind"`
				Accepted uint64 `json:"accepted"`
			} `json:"namespaces"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("%s is not JSON: %v\n%s", path, err, body)
		}
		if len(doc.Namespaces) == 0 || doc.Namespaces[0].Kind != "proxy" || doc.Namespaces[0].Accepted == 0 {
			t.Fatalf("%s namespace table wrong: %+v", path, doc.Namespaces)
		}
	}

	// /healthz: ok + uptime + epoch.
	code, _, body = scrape(t, maddr, "/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok ") ||
		!strings.Contains(body, "uptime=") || !strings.Contains(body, "epoch=") {
		t.Fatalf("/healthz = %d %q, want ok with uptime and epoch", code, body)
	}

	// /slowlog: armed at 1ns, every request is a slow span.
	code, _, body = scrape(t, maddr, "/slowlog")
	if code != http.StatusOK {
		t.Fatalf("/slowlog = %d", code)
	}
	var spans []struct {
		Frame   string `json:"frame"`
		TotalNs int64  `json:"total_ns"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/slowlog is not JSON: %v\n%s", err, body)
	}
	if len(spans) == 0 || spans[0].Frame == "" || spans[0].TotalNs <= 0 {
		t.Fatalf("-slowlog 1ns recorded no usable spans: %s", body)
	}

	// pprof answers when mounted.
	if code, _, _ := scrape(t, maddr, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d with -pprof", code)
	}
}

// TestPprofRequiresMetrics: -pprof without -metrics must refuse to start
// (a silently unmounted profiler is worse than a loud exit), and a daemon
// without -pprof must not expose /debug/pprof.
func TestPprofRequiresMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	out, err := exec.Command(bin, "-pprof").CombinedOutput()
	if err == nil {
		t.Fatalf("-pprof without -metrics started:\n%s", out)
	}
	if !strings.Contains(string(out), "-metrics") {
		t.Fatalf("refusal does not point at -metrics:\n%s", out)
	}

	addr, maddr := pickAddr(t), pickAddr(t)
	daemon := startDaemon(t, bin, "-addr", addr, "-slots", "16", "-blocksize", "16", "-metrics", maddr)
	defer func() {
		daemon.Process.Kill() //nolint:errcheck
		daemon.Wait()         //nolint:errcheck
	}()
	waitListening(t, maddr)
	if code, _, _ := scrape(t, maddr, "/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/cmdline = %d without -pprof, want 404", code)
	}
}
