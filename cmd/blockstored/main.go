// Command blockstored runs a passive block-storage server — the untrusted
// server_m of the paper's model (Definition 3.1) — speaking the wire
// protocol of internal/wire over TCP.
//
// It stores fixed-size slots and answers exactly two kinds of request,
// download and upload — individually or in batch frames that carry a whole
// per-query address set in one round trip — plus a shape handshake and an
// optional namespace handshake. All privacy machinery lives client-side
// (dpkv, the examples, or any program built on the library); the server
// only ever sees the access pattern the DP constructions are designed to
// protect, and a batch frame reveals exactly the same (op, address)
// multiset as the per-block exchange it replaces.
//
// Scale knobs:
//
//   - -shards K stripes every hosted store over K independently locked
//     sub-stores, so concurrent tenants stop serializing on one mutex and
//     batches execute K-way parallel (memory) or across K files (disk).
//   - -namespaces N lets clients create up to N additional in-memory
//     tenant namespaces on demand via the open handshake, each an
//     independent address space with its own locks. The flag-configured
//     store remains the default namespace, so pre-namespace clients work
//     unchanged.
//
// Usage:
//
//	blockstored -addr :9045 -slots 65536 -blocksize 112
//	blockstored -addr :9045 -slots 65536 -blocksize 112 -file /var/lib/blocks.dat
//	blockstored -addr :9045 -slots 65536 -blocksize 112 -shards 16 -namespaces 64
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"dpstore/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9045", "listen address")
		slots      = flag.Int("slots", 1<<16, "number of block slots (default namespace, and default for created namespaces)")
		blockSize  = flag.Int("blocksize", 112, "slot size in bytes (default namespace, and default for created namespaces)")
		file       = flag.String("file", "", "optional path for a disk-backed store (created if missing; with -shards K, K files path.shard0 … are used)")
		shards     = flag.Int("shards", 1, "stripe each store over this many independently locked sub-stores")
		namespaces = flag.Int("namespaces", 0, "max client-created in-memory namespaces (0 disables the open-to-create path)")
		maxBytes   = flag.Int64("maxbytes", 1<<30, "per-namespace byte budget for client-requested shapes")
	)
	flag.Parse()
	if *shards < 1 {
		log.Fatalf("blockstored: -shards %d must be ≥ 1", *shards)
	}

	backing, desc, err := openBacking(*file, *slots, *blockSize, *shards)
	if err != nil {
		log.Fatalf("blockstored: %v", err)
	}
	log.Printf("blockstored: default namespace: %s", desc)

	ns := store.NewNamespaces()
	ns.Attach(store.DefaultNamespace, backing)
	if *namespaces > 0 {
		ns.SetFactory(*namespaces, namespaceFactory(*slots, *blockSize, *shards, *maxBytes))
		log.Printf("blockstored: up to %d client-created namespaces (≤ %d B each)", *namespaces, *maxBytes)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("blockstored: listen: %v", err)
	}
	log.Printf("blockstored: serving on %s", ln.Addr())
	if err := store.ServeNamespaces(ln, ns); err != nil {
		log.Fatalf("blockstored: %v", err)
	}
}

// namespaceFactory returns the on-demand tenant builder: requested zeros
// fall back to the daemon defaults, and the resulting shape must fit the
// byte budget.
func namespaceFactory(defSlots, defBlockSize, shards int, budget int64) func(string, int, int) (store.Server, error) {
	return func(name string, nsSlots, nsBlockSize int) (store.Server, error) {
		if nsSlots == 0 {
			nsSlots = defSlots
		}
		if nsBlockSize == 0 {
			nsBlockSize = defBlockSize
		}
		// Budget check by division, not multiplication: a hostile open can
		// request slot counts near max-int, and an overflowed product
		// would sail past the budget into a huge allocation. The per-slot
		// overhead term charges for slice headers and allocator
		// bookkeeping so tiny blocks cannot buy absurd slot counts within
		// a byte budget meant for payload.
		const perSlotOverhead = 48
		if nsSlots < 0 || nsBlockSize <= 0 || int64(nsSlots) > budget/(int64(nsBlockSize)+perSlotOverhead) {
			return nil, fmt.Errorf("requested %d × %d B exceeds the %d B namespace budget", nsSlots, nsBlockSize, budget)
		}
		log.Printf("blockstored: creating namespace %q: %d slots × %d B in memory", name, nsSlots, nsBlockSize)
		return newMemBacking(nsSlots, nsBlockSize, shards)
	}
}

// newMemBacking builds an in-memory store, striped when shards > 1. A
// store too small for the configured stripe width is striped as far as it
// goes (one slot per shard) — for factory-created tenant namespaces the
// layout is the server's choice.
func newMemBacking(slots, blockSize, shards int) (store.Server, error) {
	if shards > slots {
		shards = slots
	}
	if shards > 1 {
		return store.NewShardedMem(slots, blockSize, shards)
	}
	return store.NewMem(slots, blockSize)
}

// openBacking builds the default namespace's store from the flags.
func openBacking(file string, slots, blockSize, shards int) (store.Server, string, error) {
	if file == "" {
		// The operator asked for this exact stripe width; refuse rather
		// than silently downgrade (mirrors the disk path below).
		if slots < shards {
			return nil, "", fmt.Errorf("%d slots cannot stripe over %d shards", slots, shards)
		}
		s, err := newMemBacking(slots, blockSize, shards)
		if err != nil {
			return nil, "", err
		}
		return s, fmt.Sprintf("%d slots × %d B in memory (%d shard(s))", slots, blockSize, shards), nil
	}
	if shards == 1 {
		f, err := openOrCreate(file, slots, blockSize)
		if err != nil {
			return nil, "", err
		}
		return f, fmt.Sprintf("%d slots × %d B on disk at %s", slots, blockSize, file), nil
	}
	if slots < shards {
		return nil, "", fmt.Errorf("%d slots cannot stripe over %d shards", slots, shards)
	}
	subs := make([]store.Server, shards)
	for i := range subs {
		path := fmt.Sprintf("%s.shard%d", file, i)
		f, err := openOrCreate(path, store.ShardSlots(slots, shards, i), blockSize)
		if err != nil {
			return nil, "", err
		}
		subs[i] = f
	}
	s, err := store.NewSharded(subs)
	if err != nil {
		return nil, "", err
	}
	return s, fmt.Sprintf("%d slots × %d B on disk striped over %d files at %s.shard*", slots, blockSize, shards, file), nil
}

func openOrCreate(path string, slots, blockSize int) (*store.File, error) {
	if _, err := os.Stat(path); err == nil {
		f, err := store.OpenFile(path, slots, blockSize)
		if err != nil {
			return nil, fmt.Errorf("opening existing store: %w", err)
		}
		return f, nil
	}
	f, err := store.CreateFile(path, slots, blockSize)
	if err != nil {
		return nil, fmt.Errorf("creating store: %w", err)
	}
	return f, nil
}
