// Command blockstored runs a passive block-storage server — the untrusted
// server_m of the paper's model (Definition 3.1) — speaking the wire
// protocol of internal/wire over TCP.
//
// It stores fixed-size slots and answers exactly two kinds of request,
// download and upload — individually or in batch frames that carry a whole
// per-query address set in one round trip — plus a shape handshake. All
// privacy machinery lives client-side (dpkv, the examples, or any program
// built on the library); the server only ever sees the access pattern the
// DP constructions are designed to protect, and a batch frame reveals
// exactly the same (op, address) multiset as the per-block exchange it
// replaces. Batch requests hit the backing store's native fast path: a
// single lock acquisition in memory, sorted and coalesced I/O on disk.
//
// Usage:
//
//	blockstored -addr :9045 -slots 65536 -blocksize 112
//	blockstored -addr :9045 -slots 65536 -blocksize 112 -file /var/lib/blocks.dat
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"dpstore/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9045", "listen address")
		slots     = flag.Int("slots", 1<<16, "number of block slots")
		blockSize = flag.Int("blocksize", 112, "slot size in bytes")
		file      = flag.String("file", "", "optional path for a disk-backed store (created if missing)")
	)
	flag.Parse()

	var backing store.Server
	switch {
	case *file != "":
		f, err := openOrCreate(*file, *slots, *blockSize)
		if err != nil {
			log.Fatalf("blockstored: %v", err)
		}
		defer f.Close()
		backing = f
		log.Printf("blockstored: %d slots × %d B on disk at %s", *slots, *blockSize, *file)
	default:
		m, err := store.NewMem(*slots, *blockSize)
		if err != nil {
			log.Fatalf("blockstored: %v", err)
		}
		backing = m
		log.Printf("blockstored: %d slots × %d B in memory", *slots, *blockSize)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("blockstored: listen: %v", err)
	}
	log.Printf("blockstored: serving on %s", ln.Addr())
	if err := store.Serve(ln, backing); err != nil {
		log.Fatalf("blockstored: %v", err)
	}
}

func openOrCreate(path string, slots, blockSize int) (*store.File, error) {
	if _, err := os.Stat(path); err == nil {
		f, err := store.OpenFile(path, slots, blockSize)
		if err != nil {
			return nil, fmt.Errorf("opening existing store: %w", err)
		}
		return f, nil
	}
	f, err := store.CreateFile(path, slots, blockSize)
	if err != nil {
		return nil, fmt.Errorf("creating store: %w", err)
	}
	return f, nil
}
