// Command blockstored runs a passive block-storage server — the untrusted
// server_m of the paper's model (Definition 3.1) — speaking the wire
// protocol of internal/wire over TCP.
//
// It stores fixed-size slots and answers exactly two kinds of request,
// download and upload — individually or in batch frames that carry a whole
// per-query address set in one round trip — plus a shape handshake and an
// optional namespace handshake. All privacy machinery lives client-side
// (dpkv, the examples, or any program built on the library); the server
// only ever sees the access pattern the DP constructions are designed to
// protect, and a batch frame reveals exactly the same (op, address)
// multiset as the per-block exchange it replaces.
//
// Scale knobs:
//
//   - -shards K stripes every hosted store over K independently locked
//     sub-stores, so concurrent tenants stop serializing on one mutex and
//     batches execute K-way parallel (memory) or across K files (disk).
//   - -namespaces N lets clients create up to N additional tenant
//     namespaces on demand via the open handshake, each an independent
//     address space with its own locks. The flag-configured store remains
//     the default namespace, so pre-namespace clients work unchanged.
//   - -proxy dpram|pathoram turns the daemon into a privacy *proxy*: it
//     hosts the named scheme over the flag-configured backing store and
//     serves logical record accesses (MsgAccessReq) to any number of
//     concurrent clients, scheduled obliviously by internal/proxy. In
//     this mode -slots and -blocksize describe the LOGICAL database
//     (records × record bytes); the physical store shape is derived from
//     the scheme, and block frames are rejected — clients never see
//     physical addresses at all, the CAOS deployment shape.
//   - -partitions P (with -proxy) stripes the tenant over P independent
//     scheme instances — each with its own stash, position map, key, and
//     coin stream, each on its own scheduler — routing logical record u
//     to partition u mod P. One scheme is one logical party whose
//     accesses serialize; P schemes overlap whenever requests hit
//     different partitions, trading a bounded extra leak (the partition
//     index, a data-independent function of the logical address) for
//     near-linear throughput in P. All partitions share ONE physical
//     backing store (windowed by store.Offset), so -file/-data/-shards/
//     -replicate compose unchanged. With -data, partition i checkpoints
//     to DIR/proxy.p<i>.journal and the striping width is persisted in
//     DIR/namespaces.json — a restart with a different -partitions (or
//     scheme, or logical shape) is refused rather than permuting the
//     database.
//   - -replicate host1,host2,... turns the daemon into a cluster front
//     door: instead of hosting blocks itself, it fans every write to all
//     listed replica daemons (-quorum W acknowledges after W durable
//     acks), serves each read from one replica chosen data-independently
//     (-readpolicy sticky|rotate), ejects dead replicas, redials them
//     with backoff, resynchronizes a rejoining replica (missed-write
//     backlog for durable replicas, full copy for epoch-0 ones), and
//     promotes it back to read-eligible — all invisible to clients,
//     which speak the ordinary block protocol to the front door. The
//     cluster's health is served on MsgReplStatusReq. Composes with
//     -proxy: the scheme's physical store then IS the replica cluster.
//
// Durability (-data DIR): the daemon becomes restartable. Every hosted
// store runs on the write-ahead engine of internal/store (checksummed
// pages, group-commit WAL, crash replay on open); factory-created
// namespaces are persisted in DIR/namespaces.json and recreated — with
// their data — on the next start; in -proxy mode the scheme's client
// state (stash, position map) checkpoints to DIR/proxy.journal so that
// every acknowledged logical write survives SIGKILL. Each startup bumps a
// recovery epoch reported in the wire handshake, so clients can detect
// that the server restarted. SIGTERM/SIGINT trigger a clean shutdown:
// stop accepting, flush and checkpoint everything, exit — after which the
// next start replays nothing.
//
// Usage:
//
//	blockstored -addr :9045 -slots 65536 -blocksize 112
//	blockstored -addr :9045 -slots 65536 -blocksize 112 -file /var/lib/blocks.dat
//	blockstored -addr :9045 -slots 65536 -blocksize 112 -data /var/lib/dpstore -shards 16 -namespaces 64
//	blockstored -addr :9045 -slots 4096 -blocksize 64 -proxy dpram -data /var/lib/dpstore
//	blockstored -addr :9040 -replicate 127.0.0.1:9041,127.0.0.1:9042,127.0.0.1:9043 -quorum 2
package main

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/obs"
	"dpstore/internal/proxy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9045", "listen address")
		slots       = flag.Int("slots", 1<<16, "number of block slots (default namespace, and default for created namespaces)")
		blockSize   = flag.Int("blocksize", 112, "slot size in bytes (default namespace, and default for created namespaces)")
		file        = flag.String("file", "", "optional path for a non-durable disk-backed store (created if missing; with -shards K, K files path.shard0 … are used)")
		dataDir     = flag.String("data", "", "durable data directory: stores run on the crash-safe WAL engine, namespaces persist, -proxy state checkpoints, and restarts recover")
		shards      = flag.Int("shards", 1, "stripe each store over this many independently locked sub-stores")
		namespaces  = flag.Int("namespaces", 0, "max client-created namespaces (0 disables the open-to-create path)")
		maxBytes    = flag.Int64("maxbytes", 1<<30, "per-namespace byte budget for client-requested shapes")
		proxyMode   = flag.String("proxy", "", "serve a privacy proxy over the backing store: dpram or pathoram (empty = plain block server; -slots/-blocksize then describe the logical database)")
		partitions  = flag.Int("partitions", 1, "stripe the -proxy tenant over this many independent scheme instances (logical record u routes to partition u mod P; leaks the partition index, overlaps accesses across partitions)")
		seed        = flag.Int64("seed", 1, "scheme coin seed in -proxy mode, and read-replica selection seed in -replicate mode (deterministic for reproducible experiments)")
		replicate   = flag.String("replicate", "", "comma-separated replica daemon addresses: serve as a cluster front door over them instead of hosting blocks locally")
		quorum      = flag.Int("quorum", 0, "write quorum W in -replicate mode (0 = majority)")
		readPolicy  = flag.String("readpolicy", "sticky", "read replica selection in -replicate mode: sticky or rotate")
		maxInflight = flag.Int("maxinflight", 0, "per-namespace admission limit: concurrent executing requests (0 = no admission control)")
		maxQueue    = flag.Int("maxqueue", 0, "per-namespace admission queue: requests waiting beyond -maxinflight before the server sheds with busy frames")
		metricsAddr = flag.String("metrics", "", "optional HTTP listen address for /metrics (Prometheus text), /metrics.json and /varz (JSON namespace stats), /healthz, and /slowlog")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ on the -metrics listener (requires -metrics)")
		slowLogAt   = flag.Duration("slowlog", 0, "log a structured line for every request slower than this threshold (0 disables; the most recent slow spans are also served at /slowlog on the -metrics listener)")
	)
	flag.Parse()
	if *pprofOn && *metricsAddr == "" {
		log.Fatalf("blockstored: -pprof mounts its handlers on the -metrics listener; set -metrics")
	}
	if *slowLogAt < 0 {
		log.Fatalf("blockstored: -slowlog %v must be ≥ 0", *slowLogAt)
	}
	if *slowLogAt > 0 {
		sl := obs.DefaultSlowLog()
		sl.SetThreshold(*slowLogAt)
		sl.SetLogf(log.Printf)
		log.Printf("blockstored: slow-request log armed at %v", *slowLogAt)
	}
	if *maxInflight == 0 && *maxQueue != 0 {
		log.Fatalf("blockstored: -maxqueue needs -maxinflight (a queue in front of unlimited concurrency bounds nothing)")
	}
	if *maxInflight < 0 || *maxQueue < 0 {
		log.Fatalf("blockstored: -maxinflight/-maxqueue must be ≥ 0")
	}
	if *shards < 1 {
		log.Fatalf("blockstored: -shards %d must be ≥ 1", *shards)
	}
	if *partitions < 1 {
		log.Fatalf("blockstored: -partitions %d must be ≥ 1", *partitions)
	}
	if *partitions > 1 && *proxyMode == "" {
		log.Fatalf("blockstored: -partitions stripes scheme instances and needs -proxy (block namespaces stripe with -shards)")
	}
	if *file != "" && *dataDir != "" {
		log.Fatalf("blockstored: -file and -data are mutually exclusive (-data subsumes the disk backend, durably)")
	}
	explicit := explicitFlags()
	if *replicate != "" && (*file != "" || *dataDir != "" || *shards != 1 || *namespaces != 0 || explicit["maxbytes"]) {
		log.Fatalf("blockstored: -replicate is a front door over remote replicas; -file/-data/-shards/-namespaces/-maxbytes belong on the replica daemons")
	}
	if *replicate == "" && (*quorum != 0 || *readPolicy != "sticky") {
		log.Fatalf("blockstored: -quorum and -readpolicy only apply with -replicate")
	}
	// In front-door mode an EXPLICIT -slots/-blocksize pins that dimension
	// of the shape the replica daemons must hold (mis-provisioned replicas
	// fail fast at startup instead of at the first client); an unset flag
	// accepts whatever the cluster reports for that dimension — setting
	// one dimension must not silently pin the other to its default.
	wantSlots, wantBS := 0, 0
	if *replicate != "" {
		if explicit["slots"] {
			wantSlots = *slots
		}
		if explicit["blocksize"] {
			wantBS = *blockSize
		}
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("blockstored: creating -data dir: %v", err)
		}
	}
	if *file != "" || *dataDir != "" {
		// Surface which run-I/O path this build uses (see DESIGN.md
		// §HotPath's fallback matrix) so recorded numbers are attributable.
		log.Printf("blockstored: vectored run I/O: %v", store.VectoredIO())
	}

	var sd shutdown

	if *replicate != "" && *proxyMode == "" {
		cluster, desc, err := openCluster(*replicate, *quorum, *readPolicy, *seed, wantSlots, wantBS, &sd)
		if err != nil {
			log.Fatalf("blockstored: %v", err)
		}
		log.Printf("blockstored: default namespace: %s", desc)
		ns := store.NewNamespaces()
		ns.Attach(store.DefaultNamespace, cluster)
		applyOperability(ns, *maxInflight, *maxQueue, *metricsAddr, *pprofOn, &sd)
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatalf("blockstored: listen: %v", err)
		}
		sd.onSignal(ln)
		log.Printf("blockstored: serving replicated blocks on %s", ln.Addr())
		sd.finish(store.ServeNamespaces(ln, ns))
		return
	}

	if *proxyMode != "" {
		p, desc, err := openProxy(*proxyMode, *file, *dataDir, *replicate, *quorum, *readPolicy, *slots, *blockSize, *partitions, *shards, *seed, &sd)
		if err != nil {
			log.Fatalf("blockstored: %v", err)
		}
		log.Printf("blockstored: proxy namespace: %s", desc)
		ns := store.NewNamespaces()
		ns.AttachAccessor(store.DefaultNamespace, p)
		ns.SetEpoch(p.Epoch())
		applyOperability(ns, *maxInflight, *maxQueue, *metricsAddr, *pprofOn, &sd)
		if p.Epoch() > 0 {
			log.Printf("blockstored: recovery epoch %d", p.Epoch())
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatalf("blockstored: listen: %v", err)
		}
		sd.onSignal(ln)
		log.Printf("blockstored: serving logical accesses on %s", ln.Addr())
		err = store.ServeNamespaces(ln, ns)
		// Checkpoint and close the proxy FIRST (it writes through the
		// engines), then the engines themselves. A failed final checkpoint
		// must surface in the exit code — supervisors treating the
		// shutdown as clean would never learn the checkpoint path is
		// broken (recovery still works, via the last per-burst checkpoint
		// and WAL replay, but the operator should know).
		if cerr := p.Close(); cerr != nil {
			log.Printf("blockstored: proxy shutdown: %v", cerr)
			sd.markFailed()
		}
		sd.finish(err)
		return
	}

	backing, desc, err := openBackingAny(*file, *dataDir, *slots, *blockSize, *shards, &sd)
	if err != nil {
		log.Fatalf("blockstored: %v", err)
	}
	log.Printf("blockstored: default namespace: %s", desc)

	ns := store.NewNamespaces()
	ns.Attach(store.DefaultNamespace, backing)
	applyOperability(ns, *maxInflight, *maxQueue, *metricsAddr, *pprofOn, &sd)

	var epoch uint64
	if *dataDir != "" {
		epoch, err = store.BumpEpoch(filepath.Join(*dataDir, "epoch"))
		if err != nil {
			log.Fatalf("blockstored: %v", err)
		}
		ns.SetEpoch(epoch)
		log.Printf("blockstored: recovery epoch %d", epoch)
	}

	if *namespaces > 0 || *dataDir != "" {
		reg, err := newTenantRegistry(*dataDir, *slots, *blockSize, *shards, *maxBytes, &sd)
		if err != nil {
			log.Fatalf("blockstored: %v", err)
		}
		restored, err := reg.restore(ns)
		if err != nil {
			log.Fatalf("blockstored: %v", err)
		}
		if restored > 0 {
			log.Printf("blockstored: restored %d persisted namespace(s)", restored)
		}
		if cap := *namespaces - restored; cap > 0 {
			ns.SetFactory(cap, reg.factory)
			log.Printf("blockstored: up to %d more client-created namespaces (≤ %d B each)", cap, *maxBytes)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("blockstored: listen: %v", err)
	}
	sd.onSignal(ln)
	log.Printf("blockstored: serving on %s", ln.Addr())
	sd.finish(store.ServeNamespaces(ln, ns))
}

// applyOperability wires the load-survival layer onto a namespace set:
// per-namespace admission control (-maxinflight/-maxqueue, serving busy
// frames past the queue) and the -metrics HTTP endpoint that keeps a
// saturated daemon observable from outside the wire protocol —
// Prometheus text on /metrics, the JSON namespace view on /metrics.json
// and /varz, liveness on /healthz, recent slow spans on /slowlog, and
// (with -pprof) the stdlib profiling handlers under /debug/pprof/.
func applyOperability(ns *store.Namespaces, maxInflight, maxQueue int, metricsAddr string, pprofOn bool, sd *shutdown) {
	if maxInflight > 0 {
		ns.SetAdmission(store.AdmitOptions{MaxInflight: maxInflight, MaxQueue: maxQueue})
		log.Printf("blockstored: admission: %d in flight + %d queued per namespace, then shed", maxInflight, maxQueue)
	}
	if metricsAddr == "" {
		return
	}
	mln, err := net.Listen("tcp", metricsAddr)
	if err != nil {
		log.Fatalf("blockstored: metrics listen: %v", err)
	}
	ms := &metricsServer{ln: mln}
	start := time.Now()
	// Process-level gauges ride the same registry the layer instruments
	// feed: uptime (timing-class by nature) and the recovery epoch (read
	// live — the epoch is bumped after applyOperability in some startup
	// orders). GaugeFunc re-registration replaces the callback, so a
	// daemon embedded in tests re-registers harmlessly.
	obs.NewGaugeFunc("dpstore_uptime_seconds",
		func() int64 { return int64(time.Since(start).Seconds()) },
		obs.WithClass(obs.ClassTiming), obs.WithHelp("seconds since daemon start"))
	obs.NewGaugeFunc("dpstore_epoch",
		func() int64 { return int64(ns.Epoch()) },
		obs.WithHelp("recovery epoch reported in the wire handshake"))
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		if ms.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "draining uptime=%s epoch=%d\n", time.Since(start).Round(time.Second), ns.Epoch())
			return
		}
		fmt.Fprintf(w, "ok uptime=%s epoch=%d\n", time.Since(start).Round(time.Second), ns.Epoch())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		w.Header().Set("Cache-Control", "no-cache")
		obs.Default().WritePrometheus(w) //nolint:errcheck // best-effort response write
	})
	serveJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-cache")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v) //nolint:errcheck // best-effort response write
	}
	nsJSON := func(w http.ResponseWriter, r *http.Request) { serveJSON(w, metricsView(ns)) }
	mux.HandleFunc("/metrics.json", nsJSON)
	mux.HandleFunc("/varz", nsJSON)
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, obs.DefaultSlowLog().Recent())
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("blockstored: pprof on http://%s/debug/pprof/", mln.Addr())
	}
	go func() {
		if err := http.Serve(mln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("blockstored: metrics server: %v", err)
		}
	}()
	sd.setMetrics(ms)
	log.Printf("blockstored: metrics on http://%s/metrics", mln.Addr())
}

// metricsServer is the -metrics endpoint's shutdown handle. The signal
// handler flips draining, so /healthz answers 503 the moment the daemon
// stops accepting wire connections — a load balancer polling it steers
// traffic away while the stores checkpoint — and finish closes the
// listener, so the HTTP port does not outlive the process's useful life
// (it previously leaked until exit).
type metricsServer struct {
	ln       net.Listener
	draining atomic.Bool
}

// nsMetrics is the JSON rendering of one namespace's wire.StatsEntry,
// with the kind decoded for human readers.
type nsMetrics struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Accepted   uint64 `json:"accepted"`
	Shed       uint64 `json:"shed"`
	Inflight   uint32 `json:"inflight"`
	Queued     uint32 `json:"queued"`
	Limit      uint32 `json:"limit"`
	QueueCap   uint32 `json:"queue_cap"`
	Depth      uint64 `json:"depth"`
	SyncMicros uint64 `json:"wal_sync_micros"`
}

func metricsView(ns *store.Namespaces) map[string]any {
	entries := ns.Stats()
	out := make([]nsMetrics, 0, len(entries))
	for _, e := range entries {
		kind := "block"
		switch e.Kind {
		case wire.StatsKindProxy:
			kind = "proxy"
		case wire.StatsKindReplicated:
			kind = "replicated"
		}
		out = append(out, nsMetrics{
			Name: e.Name, Kind: kind,
			Accepted: e.Accepted, Shed: e.Shed,
			Inflight: e.Inflight, Queued: e.Queued,
			Limit: e.Limit, QueueCap: e.QueueCap,
			Depth: e.Depth, SyncMicros: e.SyncMicros,
		})
	}
	return map[string]any{"epoch": ns.Epoch(), "namespaces": out}
}

// shutdown coordinates the clean-exit path: a signal closes the listener,
// the serve loop returns, and every registered store is synced and closed
// before the process exits.
type shutdown struct {
	mu       sync.Mutex
	closers  []io.Closer
	metrics  *metricsServer
	signaled bool
	failed   bool
	finished bool
}

// setMetrics hands the -metrics endpoint to the shutdown path: drained on
// signal, closed in finish.
func (s *shutdown) setMetrics(ms *metricsServer) {
	s.mu.Lock()
	s.metrics = ms
	s.mu.Unlock()
}

// markFailed records a shutdown-path failure so finish exits non-zero.
func (s *shutdown) markFailed() {
	s.mu.Lock()
	s.failed = true
	s.mu.Unlock()
}

// register adds a store to close (and thereby checkpoint) at shutdown. A
// store registered after finish has snapshotted the close list — a
// factory-created namespace racing SIGTERM — is closed on the spot: its
// engine would otherwise outlive the close loop with an uncompacted WAL.
func (s *shutdown) register(c io.Closer) {
	s.mu.Lock()
	late := s.finished
	if !late {
		s.closers = append(s.closers, c)
	}
	s.mu.Unlock()
	if late {
		if err := c.Close(); err != nil {
			log.Printf("blockstored: closing late-created store: %v", err)
			s.markFailed()
		}
	}
}

// onSignal arranges for SIGTERM/SIGINT to close the listener, unblocking
// the serve loop into the shutdown path.
func (s *shutdown) onSignal(ln net.Listener) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-ch
		log.Printf("blockstored: %v: checkpointing and shutting down", sig)
		s.mu.Lock()
		s.signaled = true
		ms := s.metrics
		s.mu.Unlock()
		// Flip /healthz to draining BEFORE closing the wire listener: a
		// health checker must never see "ok" on a daemon that has already
		// stopped accepting.
		if ms != nil {
			ms.draining.Store(true)
		}
		ln.Close()
	}()
}

// finish closes every registered store and exits. serveErr is what the
// serve loop returned: net.ErrClosed after a signal is the clean path.
func (s *shutdown) finish(serveErr error) {
	s.mu.Lock()
	s.finished = true
	closers := s.closers
	signaled := s.signaled
	ms := s.metrics
	s.mu.Unlock()
	for i := len(closers) - 1; i >= 0; i-- {
		if err := closers[i].Close(); err != nil {
			log.Printf("blockstored: closing store: %v", err)
			s.markFailed()
		}
	}
	// Close the metrics listener last: it stays readable (reporting
	// draining) for the whole checkpoint window, then goes away with the
	// process instead of leaking the port until exit.
	if ms != nil {
		if err := ms.ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("blockstored: closing metrics listener: %v", err)
		}
	}
	if serveErr != nil && !(signaled && errors.Is(serveErr, net.ErrClosed)) {
		log.Fatalf("blockstored: %v", serveErr)
	}
	s.mu.Lock()
	failed := s.failed
	s.mu.Unlock()
	if failed {
		os.Exit(1)
	}
	log.Printf("blockstored: clean shutdown (stores checkpointed)")
}

// tenantRegistry builds factory-created namespaces and, when a data dir is
// set, persists them (name + shape) so a restart recreates them with their
// data. Durable tenants live at DIR/ns-<hex(name)>; the hex encoding keeps
// arbitrary wire names safe as file names.
type tenantRegistry struct {
	dataDir   string
	defSlots  int
	defBS     int
	shards    int
	budget    int64
	sd        *shutdown
	mu        sync.Mutex
	persisted []store.NamespaceRecord
}

func newTenantRegistry(dataDir string, defSlots, defBS, shards int, budget int64, sd *shutdown) (*tenantRegistry, error) {
	r := &tenantRegistry{dataDir: dataDir, defSlots: defSlots, defBS: defBS, shards: shards, budget: budget, sd: sd}
	if dataDir != "" {
		recs, err := store.LoadRegistry(r.registryPath())
		if err != nil {
			return nil, err
		}
		r.persisted = recs
	}
	return r, nil
}

func (r *tenantRegistry) registryPath() string {
	return filepath.Join(r.dataDir, "namespaces.json")
}

// restore reattaches every persisted block namespace, reopening its
// engines. Proxy configuration records (Proxy != "") are consumed by
// openProxy at startup, not here: they describe the default namespace's
// scheme deployment, not a block tenant with files of its own.
func (r *tenantRegistry) restore(ns *store.Namespaces) (int, error) {
	restored := 0
	for _, rec := range r.persisted {
		if rec.Proxy != "" {
			continue
		}
		backing, _, err := openDurableBacking(r.tenantBase(rec.Name), rec.Slots, rec.BlockSize, r.shards, r.sd)
		if err != nil {
			return 0, fmt.Errorf("restoring namespace %q: %w", rec.Name, err)
		}
		ns.Attach(rec.Name, backing)
		restored++
	}
	return restored, nil
}

func (r *tenantRegistry) tenantBase(name string) string {
	return filepath.Join(r.dataDir, "ns-"+hex.EncodeToString([]byte(name)))
}

// factory is the on-demand tenant builder handed to Namespaces.SetFactory:
// shape-budget checked exactly like the in-memory path, then built
// in-memory (no -data) or on the durable engine with the registry updated
// BEFORE the namespace is served — a crash right after creation must not
// forget a namespace a client saw acknowledged.
func (r *tenantRegistry) factory(name string, nsSlots, nsBlockSize int) (store.Server, error) {
	nsSlots, nsBlockSize, err := checkTenantShape(nsSlots, nsBlockSize, r.defSlots, r.defBS, r.budget)
	if err != nil {
		return nil, err
	}
	if r.dataDir == "" {
		log.Printf("blockstored: creating namespace %q: %d slots × %d B in memory", name, nsSlots, nsBlockSize)
		return newMemBacking(nsSlots, nsBlockSize, r.shards)
	}
	// Persist the record BEFORE opening the engines: a crash (or an engine
	// failure) after this point leaves at worst a registered-but-empty
	// namespace that the next start recreates zeroed, never an engine the
	// registry has forgotten — and never a leaked open engine whose
	// committer would race a client's retry on the same files.
	r.mu.Lock()
	prev := r.persisted
	recs := append(append([]store.NamespaceRecord(nil), prev...),
		store.NamespaceRecord{Name: name, Slots: nsSlots, BlockSize: nsBlockSize})
	if err := store.SaveRegistry(r.registryPath(), recs); err != nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("persisting namespace %q: %w", name, err)
	}
	r.persisted = recs
	r.mu.Unlock()
	backing, desc, err := openDurableBacking(r.tenantBase(name), nsSlots, nsBlockSize, r.shards, r.sd)
	if err != nil {
		// Best-effort registry rollback; a leftover record is benign (see
		// above), a missing one is exact.
		r.mu.Lock()
		if store.SaveRegistry(r.registryPath(), prev) == nil {
			r.persisted = prev
		}
		r.mu.Unlock()
		return nil, err
	}
	log.Printf("blockstored: creating namespace %q: %s", name, desc)
	return backing, nil
}

// checkTenantShape applies the zero-defaults and the hostile-shape budget
// guard shared by the memory and durable factories.
func checkTenantShape(nsSlots, nsBlockSize, defSlots, defBS int, budget int64) (int, int, error) {
	if nsSlots == 0 {
		nsSlots = defSlots
	}
	if nsBlockSize == 0 {
		nsBlockSize = defBS
	}
	// Budget check by division, not multiplication: a hostile open can
	// request slot counts near max-int, and an overflowed product would
	// sail past the budget into a huge allocation. The per-slot overhead
	// term charges for slice headers and allocator bookkeeping so tiny
	// blocks cannot buy absurd slot counts within a byte budget meant for
	// payload.
	const perSlotOverhead = 48
	if nsSlots < 0 || nsBlockSize <= 0 || int64(nsSlots) > budget/(int64(nsBlockSize)+perSlotOverhead) {
		return 0, 0, fmt.Errorf("requested %d × %d B exceeds the %d B namespace budget", nsSlots, nsBlockSize, budget)
	}
	return nsSlots, nsBlockSize, nil
}

// newMemBacking builds an in-memory store, striped when shards > 1. A
// store too small for the configured stripe width is striped as far as it
// goes (one slot per shard) — for factory-created tenant namespaces the
// layout is the server's choice.
func newMemBacking(slots, blockSize, shards int) (store.Server, error) {
	if shards > slots {
		shards = slots
	}
	if shards > 1 {
		return store.NewShardedMem(slots, blockSize, shards)
	}
	return store.NewMem(slots, blockSize)
}

// explicitFlags returns the set of flags the operator actually passed,
// distinguishing them from defaulted values (a default must neither pin
// the cluster shape nor trip the front-door flag validation).
func explicitFlags() map[string]bool {
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// openCluster dials the -replicate replica daemons and assembles the
// Replicated front door. wantSlots/wantBS, when non-zero, pin that
// dimension of the shape the replicas must hold (the -proxy composition
// derives both from the scheme); a zero accepts whatever consistent
// value the cluster reports for that dimension.
func openCluster(replicate string, quorum int, readPolicy string, seed int64, wantSlots, wantBS int, sd *shutdown) (*store.Replicated, string, error) {
	var policy store.ReadPolicy
	switch readPolicy {
	case "sticky":
		policy = store.ReadSticky
	case "rotate":
		policy = store.ReadRotate
	default:
		return nil, "", fmt.Errorf("unknown -readpolicy %q (want sticky or rotate)", readPolicy)
	}
	addrs := strings.Split(replicate, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
		if addrs[i] == "" {
			return nil, "", fmt.Errorf("-replicate has an empty address (got %q)", replicate)
		}
	}
	cluster, err := store.DialCluster(addrs, store.ClusterOptions{
		Slots:     wantSlots,
		BlockSize: wantBS,
		Replicated: store.ReplicatedOptions{
			WriteQuorum: quorum,
			ReadPolicy:  policy,
			Seed:        seed,
		},
	})
	if err != nil {
		// A pinned shape is enforced in every replica's open handshake,
		// so a mis-provisioned replica surfaces as a namespace-rejected
		// dial error; add the remedy to that message only (a plain
		// connection failure must not tell the operator to change shape
		// flags that are not the problem).
		if (wantSlots != 0 || wantBS != 0) && strings.Contains(err.Error(), "namespace rejected") {
			var pins []string
			if wantSlots != 0 {
				pins = append(pins, fmt.Sprintf("-slots %d", wantSlots))
			}
			if wantBS != 0 {
				pins = append(pins, fmt.Sprintf("-blocksize %d", wantBS))
			}
			return nil, "", fmt.Errorf("%w (this front door pins the shape — start the replica daemons with %s)",
				err, strings.Join(pins, " "))
		}
		return nil, "", err
	}
	sd.register(cluster)
	return cluster, fmt.Sprintf("%d slots × %d B replicated over %d daemons (W=%d, reads %s)",
		cluster.Size(), cluster.BlockSize(), len(addrs), cluster.Quorum(), readPolicy), nil
}

// openBackingAny dispatches between the three backend families: memory,
// non-durable file (-file), durable engine (-data).
func openBackingAny(file, dataDir string, slots, blockSize, shards int, sd *shutdown) (store.Server, string, error) {
	if dataDir != "" {
		if slots < shards {
			return nil, "", fmt.Errorf("%d slots cannot stripe over %d shards", slots, shards)
		}
		return openDurableBacking(filepath.Join(dataDir, "blocks"), slots, blockSize, shards, sd)
	}
	return openBacking(file, slots, blockSize, shards)
}

// openDurableBacking opens (or creates) a crash-safe store on the WAL
// engine at base, striped over K engines for -shards K. On success every
// engine is registered for clean-shutdown checkpointing; on any error the
// engines opened so far are closed again (no half-open stripe survives,
// and a retried open never races a leaked committer on the same files).
func openDurableBacking(base string, slots, blockSize, shards int, sd *shutdown) (store.Server, string, error) {
	if shards > slots {
		shards = slots
	}
	engines := make([]*store.Durable, 0, shards)
	closeAll := func() {
		for _, d := range engines {
			d.Close() //nolint:errcheck // already on an error path
		}
	}
	if shards == 1 {
		d, err := store.OpenOrCreateDurable(base, slots, blockSize, store.DurableOptions{})
		if err != nil {
			return nil, "", err
		}
		sd.register(d)
		return d, fmt.Sprintf("%d slots × %d B durable (WAL engine) at %s", slots, blockSize, base), nil
	}
	subs := make([]store.Server, shards)
	for i := range subs {
		d, err := store.OpenOrCreateDurable(fmt.Sprintf("%s.shard%d", base, i),
			store.ShardSlots(slots, shards, i), blockSize, store.DurableOptions{})
		if err != nil {
			closeAll()
			return nil, "", err
		}
		engines = append(engines, d)
		subs[i] = d
	}
	s, err := store.NewSharded(subs)
	if err != nil {
		closeAll()
		return nil, "", err
	}
	for _, d := range engines {
		sd.register(d)
	}
	return s, fmt.Sprintf("%d slots × %d B durable (WAL engine) striped over %d shards at %s.shard*", slots, blockSize, shards, base), nil
}

// openBacking builds a memory or -file backed store (the non-durable
// families, unchanged from the pre-engine daemon).
func openBacking(file string, slots, blockSize, shards int) (store.Server, string, error) {
	if file == "" {
		// The operator asked for this exact stripe width; refuse rather
		// than silently downgrade (mirrors the disk path below).
		if slots < shards {
			return nil, "", fmt.Errorf("%d slots cannot stripe over %d shards", slots, shards)
		}
		s, err := newMemBacking(slots, blockSize, shards)
		if err != nil {
			return nil, "", err
		}
		return s, fmt.Sprintf("%d slots × %d B in memory (%d shard(s))", slots, blockSize, shards), nil
	}
	if shards == 1 {
		f, err := openOrCreate(file, slots, blockSize)
		if err != nil {
			return nil, "", err
		}
		return f, fmt.Sprintf("%d slots × %d B on disk at %s", slots, blockSize, file), nil
	}
	if slots < shards {
		return nil, "", fmt.Errorf("%d slots cannot stripe over %d shards", slots, shards)
	}
	subs := make([]store.Server, shards)
	for i := range subs {
		path := fmt.Sprintf("%s.shard%d", file, i)
		f, err := openOrCreate(path, store.ShardSlots(slots, shards, i), blockSize)
		if err != nil {
			return nil, "", err
		}
		subs[i] = f
	}
	s, err := store.NewSharded(subs)
	if err != nil {
		return nil, "", err
	}
	return s, fmt.Sprintf("%d slots × %d B on disk striped over %d files at %s.shard*", slots, blockSize, shards, file), nil
}

// proxyFront is what main needs from a -proxy deployment: the accessor
// served on the wire, its recovery epoch, and shutdown. Both proxy.Proxy
// (one scheme) and proxy.Partitioned (P schemes) satisfy it.
type proxyFront interface {
	store.Accessor
	Epoch() uint64
	Flush() error
	Close() error
}

// openProxy builds the -proxy deployment: the scheme's physical store
// derived from the logical shape (memory, -file, the durable engine, or a
// replica cluster), a write-behind pipeline underneath, and the proxy
// scheduler on top.
//
// With -partitions P, the logical database is striped over P fully
// independent scheme instances (record u → partition u mod P, local index
// u div P), each with its own pipeline and scheduler, all windowed onto
// ONE shared physical store via store.Offset — so the backing composition
// flags apply once to the whole deployment, not per partition.
//
// With -data, the deployment is RESTARTABLE: the physical store is the
// WAL engine; each partition's client state checkpoints to its own
// journal (proxy.journal for P=1, proxy.p<i>.journal otherwise) per
// acknowledged access burst (see proxy.Journal for the commit protocol);
// and on startup the daemon recovers — engine replay, then per-partition
// checkpoint restore and pending-write replay — before serving. A fresh
// directory runs Setup and seeds each journal with the initial
// checkpoint. The deployment shape (scheme, logical shape, P) persists in
// namespaces.json; a restart with disagreeing flags is refused.
func openProxy(mode, file, dataDir, replicate string, quorum int, readPolicy string, records, recordSize, partitions, shards int, seed int64, sd *shutdown) (proxyFront, string, error) {
	if partitions > records {
		return nil, "", fmt.Errorf("%d records cannot stripe over %d partitions", records, partitions)
	}
	oramOpts := pathoram.Options{Rand: rng.New(seed)}
	ramOpts := dpram.Options{Rand: rng.New(seed)}

	// Derive each partition's logical record count and physical window.
	// The physical block size is a function of the record size and scheme
	// options only, so it agrees across partitions and one backing store
	// (of the summed slot count) serves them all; assert rather than
	// assume.
	partRecords := make([]int, partitions)
	partSlots := make([]int, partitions)
	physBS, totalSlots := 0, 0
	for i := range partRecords {
		n := store.ShardSlots(records, partitions, i)
		partRecords[i] = n
		var s, bs int
		switch mode {
		case "dpram":
			s, bs = n, dpram.ServerBlockSize(recordSize, ramOpts)
		case "pathoram":
			s, bs = pathoram.TreeShape(n, recordSize, oramOpts)
		default:
			return nil, "", fmt.Errorf("unknown -proxy scheme %q (want dpram or pathoram)", mode)
		}
		if i == 0 {
			physBS = bs
		} else if bs != physBS {
			return nil, "", fmt.Errorf("partition %d derives %d B physical blocks, partition 0 derives %d B", i, bs, physBS)
		}
		partSlots[i] = s
		totalSlots += s
	}

	if dataDir != "" {
		if replicate != "" {
			return nil, "", fmt.Errorf("-proxy -data -replicate is not a supported combination (run the replicas with -data for block durability)")
		}
		// Validate (or record) the deployment shape BEFORE touching the
		// engines: resuming a directory striped as P partitions with a
		// different P would permute every logical address.
		if err := persistProxyConfig(filepath.Join(dataDir, "namespaces.json"), mode, records, recordSize, partitions); err != nil {
			return nil, "", err
		}
	}

	// One shared physical backing for all partitions.
	var backing store.Server
	var desc string
	var err error
	switch {
	case replicate != "":
		// Proxy over a replica cluster: the physical store IS the
		// Replicated front end, so every obfuscated block lands on W
		// daemons and reads fail over invisibly underneath the scheme(s).
		// Scheme client state is ephemeral here.
		backing, desc, err = openCluster(replicate, quorum, readPolicy, seed, totalSlots, physBS, sd)
	case dataDir == "":
		backing, desc, err = openBacking(file, totalSlots, physBS, shards)
	default:
		backing, desc, err = openDurableBacking(filepath.Join(dataDir, "blocks"), totalSlots, physBS, shards, sd)
	}
	if err != nil {
		return nil, "", err
	}
	batch := store.AsBatch(backing)

	// optsFor derives partition i's coin-stream options. Mixing the
	// recovery epoch keeps a restarted daemon from replaying the previous
	// incarnation's decoy/leaf draws against the same persisted array —
	// identical draws across epochs would let an adversary comparing the
	// two traces separate coin-driven from query-driven addresses — and
	// mixing the partition index keeps sibling partitions' draws
	// decorrelated for the same reason, across partitions instead of
	// across time. (SplitMix64's two increment constants decorrelate the
	// streams; runs stay reproducible per (seed, epoch, partition), and
	// partition 0 at epoch 0 reduces to the plain seed, so pre-partition
	// deployments derive the exact streams they always did.)
	optsFor := func(i int, epoch uint64) (dpram.Options, pathoram.Options) {
		s := int64(uint64(seed) ^ epoch*0x9e3779b97f4a7c15 ^ uint64(i)*0xbf58476d1ce4e5b9)
		ro, oo := ramOpts, oramOpts
		ro.Rand, oo.Rand = rng.New(s), rng.New(s)
		return ro, oo
	}

	parts := make([]*proxy.Proxy, partitions)
	base := 0
	recovered, pending := 0, 0
	var journalEpoch uint64
	for i := range parts {
		// Partition i sees only its own window of the shared store; at
		// P=1 the window is the whole store and the wrapper is skipped.
		window := batch
		if partitions > 1 {
			window, err = store.NewOffset(batch, base, partSlots[i])
			if err != nil {
				return nil, "", err
			}
		}
		base += partSlots[i]

		if dataDir == "" {
			ro, oo := optsFor(i, 0)
			pipe := proxy.NewPipeline(window)
			scheme, err := setupScheme(mode, partRecords[i], recordSize, pipe, ro, oo)
			if err != nil {
				return nil, "", err
			}
			p := proxy.New(scheme, proxy.Options{Pipeline: pipe})
			if err := p.Flush(); err != nil {
				return nil, "", fmt.Errorf("%s setup flush: %w", mode, err)
			}
			parts[i] = p
			continue
		}

		jname := "proxy.journal"
		if partitions > 1 {
			jname = fmt.Sprintf("proxy.p%d.journal", i)
		}
		journal, ck, err := proxy.OpenJournal(filepath.Join(dataDir, jname), 0)
		if err != nil {
			return nil, "", err
		}
		if journal.Epoch() > journalEpoch {
			journalEpoch = journal.Epoch()
		}
		ro, oo := optsFor(i, journal.Epoch())
		pipe := proxy.NewPipeline(window)
		var scheme proxy.DurableScheme
		if ck != nil {
			// Recovery: the engine already replayed its own WAL; land this
			// partition's acked-but-unflushed writes in its window, then
			// transplant the scheme state over the pipeline.
			if err := proxy.ReplayPending(window, ck); err != nil {
				return nil, "", err
			}
			switch mode {
			case "dpram":
				scheme, err = dpram.Resume(pipe, ck.State, ro)
			case "pathoram":
				scheme, err = pathoram.Resume(pipe, ck.State, oo)
			}
			if err != nil {
				return nil, "", fmt.Errorf("%s resume (partition %d): %w", mode, i, err)
			}
			recovered++
			pending += len(ck.Pending)
		} else {
			// Fresh journal: set up through the (not yet journaled)
			// pipeline, land everything, and seed the journal.
			scheme, err = setupScheme(mode, partRecords[i], recordSize, pipe, ro, oo)
			if err != nil {
				return nil, "", err
			}
			if err := pipe.Flush(); err != nil {
				return nil, "", fmt.Errorf("%s setup flush: %w", mode, err)
			}
			state, err := scheme.MarshalState()
			if err != nil {
				return nil, "", fmt.Errorf("%s initial state: %w", mode, err)
			}
			if err := journal.Append(proxy.Checkpoint{State: state}); err != nil {
				return nil, "", fmt.Errorf("%s initial checkpoint: %w", mode, err)
			}
		}
		p, err := proxy.NewDurable(scheme, proxy.Options{Pipeline: pipe}, journal)
		if err != nil {
			return nil, "", err
		}
		parts[i] = p
	}

	// Export each partition's scheduler gauges (queue depth, stash depth)
	// keyed by the public partition index — the same index the adversary
	// reads off the physical trace, so the series adds no leakage.
	for i, p := range parts {
		p.RegisterObs(i)
	}

	if dataDir != "" {
		switch {
		case recovered == 0:
			desc += fmt.Sprintf(", journaled at epoch %d", journalEpoch)
		case partitions == 1:
			desc += fmt.Sprintf(", recovered at epoch %d (%d pending writes replayed)", journalEpoch, pending)
		default:
			desc += fmt.Sprintf(", recovered at epoch %d (%d/%d partitions, %d pending writes replayed)", journalEpoch, recovered, partitions, pending)
		}
	}
	shape := fmt.Sprintf("%s over %d records × %d B", mode, records, recordSize)
	if partitions == 1 {
		return parts[0], fmt.Sprintf("%s (backing: %s)", shape, desc), nil
	}
	pt, err := proxy.NewPartitioned(parts)
	if err != nil {
		return nil, "", err
	}
	return pt, fmt.Sprintf("%s striped over %d partitions (backing: %s)", shape, partitions, desc), nil
}

// persistProxyConfig records the -proxy deployment shape in the data
// dir's namespace registry, or validates the flags against the persisted
// record on a restart. The striping width is load-bearing on-disk state —
// logical record u lives in partition u mod P, so opening the same
// directory under a different P (or scheme, or logical shape) would
// silently scramble the database; refuse instead.
func persistProxyConfig(path, mode string, records, recordSize, partitions int) error {
	recs, err := store.LoadRegistry(path)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.Proxy == "" {
			continue
		}
		recP := rec.Partitions
		if recP == 0 {
			recP = 1 // registries written before striping existed are single-partition
		}
		if rec.Proxy != mode || rec.Slots != records || rec.BlockSize != recordSize || recP != partitions {
			return fmt.Errorf("data dir was created with -proxy %s -slots %d -blocksize %d -partitions %d; refusing to open it with -proxy %s -slots %d -blocksize %d -partitions %d (the on-disk striping cannot be reinterpreted)",
				rec.Proxy, rec.Slots, rec.BlockSize, recP, mode, records, recordSize, partitions)
		}
		return nil
	}
	rec := store.NamespaceRecord{
		Name: store.DefaultNamespace, Slots: records, BlockSize: recordSize,
		Proxy: mode,
	}
	if partitions > 1 {
		// P=1 stays implicit so single-partition registries remain
		// byte-identical to the pre-striping format.
		rec.Partitions = partitions
	}
	recs = append(recs, rec)
	return store.SaveRegistry(path, recs)
}

// setupScheme runs the scheme's Setup over a zeroed logical database.
func setupScheme(mode string, records, recordSize int, server store.Server, ramOpts dpram.Options, oramOpts pathoram.Options) (proxy.DurableScheme, error) {
	db, err := block.NewDatabase(records, recordSize)
	if err != nil {
		return nil, fmt.Errorf("proxy database: %w", err)
	}
	switch mode {
	case "dpram":
		c, err := dpram.Setup(db, server, ramOpts)
		if err != nil {
			return nil, fmt.Errorf("dpram setup: %w", err)
		}
		return c, nil
	case "pathoram":
		o, err := pathoram.Setup(db, server, oramOpts)
		if err != nil {
			return nil, fmt.Errorf("pathoram setup: %w", err)
		}
		return o, nil
	}
	return nil, fmt.Errorf("unknown scheme %q", mode)
}

func openOrCreate(path string, slots, blockSize int) (*store.File, error) {
	if _, err := os.Stat(path); err == nil {
		f, err := store.OpenFile(path, slots, blockSize)
		if err != nil {
			return nil, fmt.Errorf("opening existing store: %w", err)
		}
		return f, nil
	}
	f, err := store.CreateFile(path, slots, blockSize)
	if err != nil {
		return nil, fmt.Errorf("creating store: %w", err)
	}
	return f, nil
}
