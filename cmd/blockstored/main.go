// Command blockstored runs a passive block-storage server — the untrusted
// server_m of the paper's model (Definition 3.1) — speaking the wire
// protocol of internal/wire over TCP.
//
// It stores fixed-size slots and answers exactly two kinds of request,
// download and upload — individually or in batch frames that carry a whole
// per-query address set in one round trip — plus a shape handshake and an
// optional namespace handshake. All privacy machinery lives client-side
// (dpkv, the examples, or any program built on the library); the server
// only ever sees the access pattern the DP constructions are designed to
// protect, and a batch frame reveals exactly the same (op, address)
// multiset as the per-block exchange it replaces.
//
// Scale knobs:
//
//   - -shards K stripes every hosted store over K independently locked
//     sub-stores, so concurrent tenants stop serializing on one mutex and
//     batches execute K-way parallel (memory) or across K files (disk).
//   - -namespaces N lets clients create up to N additional in-memory
//     tenant namespaces on demand via the open handshake, each an
//     independent address space with its own locks. The flag-configured
//     store remains the default namespace, so pre-namespace clients work
//     unchanged.
//   - -proxy dpram|pathoram turns the daemon into a privacy *proxy*: it
//     hosts the named scheme over the flag-configured backing store and
//     serves logical record accesses (MsgAccessReq) to any number of
//     concurrent clients, scheduled obliviously by internal/proxy. In
//     this mode -slots and -blocksize describe the LOGICAL database
//     (records × record bytes); the physical store shape is derived from
//     the scheme, and block frames are rejected — clients never see
//     physical addresses at all, the CAOS deployment shape.
//
// Usage:
//
//	blockstored -addr :9045 -slots 65536 -blocksize 112
//	blockstored -addr :9045 -slots 65536 -blocksize 112 -file /var/lib/blocks.dat
//	blockstored -addr :9045 -slots 65536 -blocksize 112 -shards 16 -namespaces 64
//	blockstored -addr :9045 -slots 4096 -blocksize 64 -proxy dpram
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/proxy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9045", "listen address")
		slots      = flag.Int("slots", 1<<16, "number of block slots (default namespace, and default for created namespaces)")
		blockSize  = flag.Int("blocksize", 112, "slot size in bytes (default namespace, and default for created namespaces)")
		file       = flag.String("file", "", "optional path for a disk-backed store (created if missing; with -shards K, K files path.shard0 … are used)")
		shards     = flag.Int("shards", 1, "stripe each store over this many independently locked sub-stores")
		namespaces = flag.Int("namespaces", 0, "max client-created in-memory namespaces (0 disables the open-to-create path)")
		maxBytes   = flag.Int64("maxbytes", 1<<30, "per-namespace byte budget for client-requested shapes")
		proxyMode  = flag.String("proxy", "", "serve a privacy proxy over the backing store: dpram or pathoram (empty = plain block server; -slots/-blocksize then describe the logical database)")
		seed       = flag.Int64("seed", 1, "scheme coin seed in -proxy mode (deterministic for reproducible experiments)")
	)
	flag.Parse()
	if *shards < 1 {
		log.Fatalf("blockstored: -shards %d must be ≥ 1", *shards)
	}

	if *proxyMode != "" {
		p, desc, err := openProxy(*proxyMode, *file, *slots, *blockSize, *shards, *seed)
		if err != nil {
			log.Fatalf("blockstored: %v", err)
		}
		log.Printf("blockstored: proxy namespace: %s", desc)
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatalf("blockstored: listen: %v", err)
		}
		log.Printf("blockstored: serving logical accesses on %s", ln.Addr())
		if err := proxy.Serve(ln, p); err != nil {
			log.Fatalf("blockstored: %v", err)
		}
		return
	}

	backing, desc, err := openBacking(*file, *slots, *blockSize, *shards)
	if err != nil {
		log.Fatalf("blockstored: %v", err)
	}
	log.Printf("blockstored: default namespace: %s", desc)

	ns := store.NewNamespaces()
	ns.Attach(store.DefaultNamespace, backing)
	if *namespaces > 0 {
		ns.SetFactory(*namespaces, namespaceFactory(*slots, *blockSize, *shards, *maxBytes))
		log.Printf("blockstored: up to %d client-created namespaces (≤ %d B each)", *namespaces, *maxBytes)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("blockstored: listen: %v", err)
	}
	log.Printf("blockstored: serving on %s", ln.Addr())
	if err := store.ServeNamespaces(ln, ns); err != nil {
		log.Fatalf("blockstored: %v", err)
	}
}

// namespaceFactory returns the on-demand tenant builder: requested zeros
// fall back to the daemon defaults, and the resulting shape must fit the
// byte budget.
func namespaceFactory(defSlots, defBlockSize, shards int, budget int64) func(string, int, int) (store.Server, error) {
	return func(name string, nsSlots, nsBlockSize int) (store.Server, error) {
		if nsSlots == 0 {
			nsSlots = defSlots
		}
		if nsBlockSize == 0 {
			nsBlockSize = defBlockSize
		}
		// Budget check by division, not multiplication: a hostile open can
		// request slot counts near max-int, and an overflowed product
		// would sail past the budget into a huge allocation. The per-slot
		// overhead term charges for slice headers and allocator
		// bookkeeping so tiny blocks cannot buy absurd slot counts within
		// a byte budget meant for payload.
		const perSlotOverhead = 48
		if nsSlots < 0 || nsBlockSize <= 0 || int64(nsSlots) > budget/(int64(nsBlockSize)+perSlotOverhead) {
			return nil, fmt.Errorf("requested %d × %d B exceeds the %d B namespace budget", nsSlots, nsBlockSize, budget)
		}
		log.Printf("blockstored: creating namespace %q: %d slots × %d B in memory", name, nsSlots, nsBlockSize)
		return newMemBacking(nsSlots, nsBlockSize, shards)
	}
}

// newMemBacking builds an in-memory store, striped when shards > 1. A
// store too small for the configured stripe width is striped as far as it
// goes (one slot per shard) — for factory-created tenant namespaces the
// layout is the server's choice.
func newMemBacking(slots, blockSize, shards int) (store.Server, error) {
	if shards > slots {
		shards = slots
	}
	if shards > 1 {
		return store.NewShardedMem(slots, blockSize, shards)
	}
	return store.NewMem(slots, blockSize)
}

// openBacking builds the default namespace's store from the flags.
func openBacking(file string, slots, blockSize, shards int) (store.Server, string, error) {
	if file == "" {
		// The operator asked for this exact stripe width; refuse rather
		// than silently downgrade (mirrors the disk path below).
		if slots < shards {
			return nil, "", fmt.Errorf("%d slots cannot stripe over %d shards", slots, shards)
		}
		s, err := newMemBacking(slots, blockSize, shards)
		if err != nil {
			return nil, "", err
		}
		return s, fmt.Sprintf("%d slots × %d B in memory (%d shard(s))", slots, blockSize, shards), nil
	}
	if shards == 1 {
		f, err := openOrCreate(file, slots, blockSize)
		if err != nil {
			return nil, "", err
		}
		return f, fmt.Sprintf("%d slots × %d B on disk at %s", slots, blockSize, file), nil
	}
	if slots < shards {
		return nil, "", fmt.Errorf("%d slots cannot stripe over %d shards", slots, shards)
	}
	subs := make([]store.Server, shards)
	for i := range subs {
		path := fmt.Sprintf("%s.shard%d", file, i)
		f, err := openOrCreate(path, store.ShardSlots(slots, shards, i), blockSize)
		if err != nil {
			return nil, "", err
		}
		subs[i] = f
	}
	s, err := store.NewSharded(subs)
	if err != nil {
		return nil, "", err
	}
	return s, fmt.Sprintf("%d slots × %d B on disk striped over %d files at %s.shard*", slots, blockSize, shards, file), nil
}

// openProxy builds the -proxy deployment: a zeroed logical database of
// `records` × `recordSize`, the scheme's physical store derived from it
// (in memory, on disk, sharded — same flags as block mode), a write-behind
// pipeline underneath, and the proxy scheduler on top.
func openProxy(mode, file string, records, recordSize, shards int, seed int64) (*proxy.Proxy, string, error) {
	db, err := block.NewDatabase(records, recordSize)
	if err != nil {
		return nil, "", fmt.Errorf("proxy database: %w", err)
	}
	var slots, physBS int
	oramOpts := pathoram.Options{Rand: rng.New(seed)}
	ramOpts := dpram.Options{Rand: rng.New(seed)}
	switch mode {
	case "dpram":
		slots, physBS = records, dpram.ServerBlockSize(recordSize, ramOpts)
	case "pathoram":
		slots, physBS = pathoram.TreeShape(records, recordSize, oramOpts)
	default:
		return nil, "", fmt.Errorf("unknown -proxy scheme %q (want dpram or pathoram)", mode)
	}
	backing, desc, err := openBacking(file, slots, physBS, shards)
	if err != nil {
		return nil, "", err
	}
	pipe := proxy.NewPipeline(store.AsBatch(backing))
	var scheme proxy.Scheme
	switch mode {
	case "dpram":
		scheme, err = dpram.Setup(db, pipe, ramOpts)
	case "pathoram":
		scheme, err = pathoram.Setup(db, pipe, oramOpts)
	}
	if err != nil {
		return nil, "", fmt.Errorf("%s setup: %w", mode, err)
	}
	p := proxy.New(scheme, proxy.Options{Pipeline: pipe})
	if err := p.Flush(); err != nil {
		return nil, "", fmt.Errorf("%s setup flush: %w", mode, err)
	}
	return p, fmt.Sprintf("%s over %d records × %d B (backing: %s)", mode, records, recordSize, desc), nil
}

func openOrCreate(path string, slots, blockSize int) (*store.File, error) {
	if _, err := os.Stat(path); err == nil {
		f, err := store.OpenFile(path, slots, blockSize)
		if err != nil {
			return nil, fmt.Errorf("opening existing store: %w", err)
		}
		return f, nil
	}
	f, err := store.CreateFile(path, slots, blockSize)
	if err != nil {
		return nil, fmt.Errorf("creating store: %w", err)
	}
	return f, nil
}
