package main

// Cluster acceptance harness, mirroring kill_test.go's SIGKILL
// discipline: three real replica daemons (durable, -data) plus a
// -replicate front door, all exec'd binaries over TCP. One replica is
// SIGKILLed under load (zero client-visible failures required), then
// restarted; the front door must resynchronize and promote it — observed
// through the MsgReplStatusReq frame — and the rejoined replica must
// prove it holds the data by serving correct reads after BOTH other
// replicas are killed.

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/store"
)

// waitReplicaState polls the front door's status frame until the replica
// at idx reaches the wanted state.
func waitReplicaState(t *testing.T, frontAddr string, idx int, want store.ReplicaState) {
	t.Helper()
	rs := dialOrFatal(t, frontAddr)
	defer rs.Close()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		sts, err := rs.ReplicaStatus()
		if err == nil && len(sts) > idx && sts[idx].State == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	sts, err := rs.ReplicaStatus()
	t.Fatalf("replica %d never reached state %d (status %+v, err %v)", idx, want, sts, err)
}

// TestClusterKillAndRejoin is the replication acceptance round trip.
func TestClusterKillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	const slots, bs = 128, 32
	bin := buildDaemon(t)

	// Three durable replica daemons.
	replicaAddrs := make([]string, 3)
	replicaArgs := make([][]string, 3)
	daemons := make([]*exec.Cmd, 3)
	for i := range replicaAddrs {
		replicaAddrs[i] = pickAddr(t)
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("replica%d", i))
		replicaArgs[i] = []string{"-addr", replicaAddrs[i],
			"-slots", fmt.Sprint(slots), "-blocksize", fmt.Sprint(bs), "-data", dir}
		daemons[i] = startDaemon(t, bin, replicaArgs[i]...)
		waitListening(t, replicaAddrs[i])
	}
	defer func() {
		for _, d := range daemons {
			if d != nil {
				d.Process.Kill() //nolint:errcheck
				d.Wait()         //nolint:errcheck
			}
		}
	}()

	// The front door.
	frontAddr := pickAddr(t)
	front := startDaemon(t, bin, "-addr", frontAddr,
		"-replicate", replicaAddrs[0]+","+replicaAddrs[1]+","+replicaAddrs[2],
		"-quorum", "2", "-readpolicy", "rotate")
	defer func() {
		front.Process.Kill() //nolint:errcheck
		front.Wait()         //nolint:errcheck
	}()
	waitListening(t, frontAddr)

	cl := dialOrFatal(t, frontAddr)
	defer cl.Close()
	if cl.Size() != slots || cl.BlockSize() != bs {
		t.Fatalf("front door shape %d × %d", cl.Size(), cl.BlockSize())
	}

	// Load phase 1: writes and reads through the front door, with replica
	// 1 SIGKILLed mid-way. Every operation must succeed.
	shadow := make(map[int]block.Block)
	access := func(q int) {
		a := (q * 7) % slots
		if q%3 != 0 {
			v := block.New(bs)
			copy(v, fmt.Sprintf("q-%05d", q))
			if err := cl.Upload(a, v); err != nil {
				t.Fatalf("write %d (replica killed mid-load): %v", q, err)
			}
			shadow[a] = v
			return
		}
		got, err := cl.Download(a)
		if err != nil {
			t.Fatalf("read %d (replica killed mid-load): %v", q, err)
		}
		want := shadow[a]
		if want == nil {
			want = block.New(bs)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d wrong data during outage", q)
		}
	}
	for q := 0; q < 40; q++ {
		access(q)
	}
	if err := daemons[1].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemons[1].Wait() //nolint:errcheck
	for q := 40; q < 120; q++ {
		access(q)
	}
	waitReplicaState(t, frontAddr, 1, store.ReplicaDown)

	// Restart replica 1 on its same address and data dir: the front door
	// must redial it, stream the missed writes (durable replica — dirty
	// backlog, not a full copy), and promote it.
	daemons[1] = startDaemon(t, bin, replicaArgs[1]...)
	waitListening(t, replicaAddrs[1])
	waitReplicaState(t, frontAddr, 1, store.ReplicaUp)

	// More load after promotion (its acks count again).
	for q := 120; q < 140; q++ {
		access(q)
	}

	// The proof the rejoin was real: kill BOTH other replicas; the
	// rejoined replica alone must serve every acknowledged write.
	for _, i := range []int{0, 2} {
		if err := daemons[i].Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatal(err)
		}
		daemons[i].Wait() //nolint:errcheck
		daemons[i] = nil
	}
	for a := 0; a < slots; a++ {
		got, err := cl.Download(a)
		if err != nil {
			t.Fatalf("read %d from the rejoined replica alone: %v", a, err)
		}
		want := shadow[a]
		if want == nil {
			want = block.New(bs)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rejoined replica lost data at addr %d: got %q want %q", a, got, want)
		}
	}
}

// TestClusterFrontDoorFlagValidation: the front door refuses local
// storage flags and rejects -quorum without -replicate.
func TestClusterFrontDoorFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	for _, args := range [][]string{
		{"-addr", "127.0.0.1:0", "-replicate", "127.0.0.1:1", "-data", t.TempDir()},
		{"-addr", "127.0.0.1:0", "-replicate", "127.0.0.1:1", "-shards", "4"},
		{"-addr", "127.0.0.1:0", "-quorum", "2"},
		{"-addr", "127.0.0.1:0", "-replicate", "127.0.0.1:1", "-readpolicy", "nonsense"},
	} {
		cmd := exec.Command(bin, args...)
		if err := cmd.Run(); err == nil {
			t.Errorf("daemon accepted invalid flags %v", args)
		}
	}
}
