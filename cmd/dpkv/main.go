// Command dpkv is an interactive client for the differentially private
// key-value store (Section 7 of the paper). It holds the client state —
// PRF keys, bucket stash, super root — for the session and runs every
// operation through the full DP-KVS machinery, against either an in-memory
// store or a remote blockstored server.
//
// Usage:
//
//	dpkv -capacity 4096                      # in-memory backing store
//	dpkv -capacity 4096 -server 127.0.0.1:9045
//
// Commands on stdin:
//
//	put <key> <value>     store/overwrite a value (padded to the value size)
//	get <key>             retrieve a value or ⊥
//	del <key>             delete a key
//	stats                 client/server cost counters
//	help                  this list
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dpstore/internal/block"
	"dpstore/internal/core/dpkvs"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func main() {
	var (
		capacity  = flag.Int("capacity", 4096, "design capacity (max live keys)")
		valueSize = flag.Int("valuesize", 64, "fixed value size in bytes")
		server    = flag.String("server", "", "optional blockstored address; empty = in-memory")
		seed      = flag.Int64("seed", 1, "client randomness seed")
	)
	flag.Parse()

	opts := dpkvs.Options{
		Capacity:  *capacity,
		ValueSize: *valueSize,
		Rand:      rng.New(*seed),
	}
	slots, blockSize, err := dpkvs.RequiredServer(opts)
	if err != nil {
		log.Fatalf("dpkv: %v", err)
	}

	var backing store.Server
	if *server != "" {
		r, err := store.Dial(*server)
		if err != nil {
			log.Fatalf("dpkv: %v", err)
		}
		defer r.Close()
		if r.Size() != slots || r.BlockSize() != blockSize {
			log.Fatalf("dpkv: server shape (%d,%d) but this capacity needs (%d,%d); start blockstored with -slots %d -blocksize %d",
				r.Size(), r.BlockSize(), slots, blockSize, slots, blockSize)
		}
		backing = r
	} else {
		m, err := store.NewMem(slots, blockSize)
		if err != nil {
			log.Fatalf("dpkv: %v", err)
		}
		backing = m
	}
	counting := store.NewCounting(backing)

	kv, err := dpkvs.Setup(counting, opts)
	if err != nil {
		log.Fatalf("dpkv: %v", err)
	}
	counting.Reset()
	fmt.Printf("dpkv: capacity %d, value size %d B, %d server slots × %d B, path depth %d (ε = O(log n))\n",
		*capacity, *valueSize, slots, blockSize, kv.Depth())
	fmt.Println("dpkv: type 'help' for commands")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("dpkv> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			val := strings.Join(fields[2:], " ")
			if len(val) > *valueSize {
				fmt.Printf("value longer than %d bytes\n", *valueSize)
				continue
			}
			padded := block.New(*valueSize)
			copy(padded, val)
			if err := kv.Put(fields[1], padded); err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Println("ok")
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, ok, err := kv.Get(fields[1])
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			if !ok {
				fmt.Println("⊥ (not found)")
				continue
			}
			fmt.Printf("%q\n", strings.TrimRight(string(v), "\x00"))
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			found, err := kv.Delete(fields[1])
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			fmt.Printf("deleted=%v\n", found)
		case "stats":
			st := counting.Stats()
			fmt.Printf("live keys:        %d\n", kv.Len())
			fmt.Printf("server ops:       %d down, %d up (%d B / %d B)\n",
				st.Downloads, st.Uploads, st.BytesDown, st.BytesUp)
			fmt.Printf("blocks per op:    %d (4 bucket queries × 3 transfers × depth %d)\n",
				kv.BlocksPerOp(), kv.Depth())
			fmt.Printf("client blocks:    %d now, %d max\n", kv.ClientBlocks(), kv.MaxClientBlocks())
			fmt.Printf("super root:       %d / %d\n", kv.SuperRootLoad(), kv.SuperCap())
		case "help":
			fmt.Println("put <key> <value> | get <key> | del <key> | stats | quit")
		case "quit", "exit":
			return
		default:
			fmt.Printf("unknown command %q (try 'help')\n", fields[0])
		}
	}
}
