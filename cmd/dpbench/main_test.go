package main

// Process-level smoke for the dpbench CLI — previously nothing exercised
// -format md (or -list) end to end, so an escaping or flag regression
// would only surface when a human regenerated EXPERIMENTS.md tables.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBench compiles dpbench once per test binary.
func buildBench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dpbench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build dpbench (no go toolchain in test env?): %v\n%s", err, out)
	}
	return bin
}

// TestFormatMarkdownSmoke: `dpbench -quick -run E4 -format md` exits 0
// and emits structurally valid GitHub-flavored markdown tables — every
// table row holds the same column count (counting unescaped pipes), and
// a separator row follows each header.
func TestFormatMarkdownSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildBench(t)
	out, err := exec.Command(bin, "-quick", "-run", "E4,E5", "-format", "md").CombinedOutput()
	if err != nil {
		t.Fatalf("dpbench -format md failed: %v\n%s", err, out)
	}
	cols := func(l string) int {
		n := 0
		for i := 0; i < len(l); i++ {
			if l[i] == '\\' {
				i++
				continue
			}
			if l[i] == '|' {
				n++
			}
		}
		return n - 1
	}
	lines := strings.Split(string(out), "\n")
	tables := 0
	for i := 0; i < len(lines); i++ {
		if !strings.HasPrefix(lines[i], "| ") {
			continue
		}
		// Header row: the next line must be the --- separator with the
		// same column count, and every following row must match it.
		width := cols(lines[i])
		if width < 1 {
			t.Fatalf("line %d: table with %d columns: %q", i, width, lines[i])
		}
		if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "| ---") {
			t.Fatalf("line %d: header not followed by a separator row: %q", i, lines[i])
		}
		tables++
		for ; i < len(lines) && strings.HasPrefix(lines[i], "| "); i++ {
			if got := cols(lines[i]); got != width {
				t.Fatalf("line %d: row has %d columns, want %d: %q", i, got, width, lines[i])
			}
		}
	}
	if tables == 0 {
		t.Fatalf("no markdown tables in output:\n%s", out)
	}
}

// TestListAndBadFlags: -list exits 0 and names every registered
// experiment; an unknown experiment ID exits non-zero with a usable
// message.
func TestListAndBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildBench(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("dpbench -list failed: %v\n%s", err, out)
	}
	for _, id := range []string{"E1", "E5", "E15"} {
		if !strings.Contains(string(out), id) {
			t.Fatalf("-list output missing %s:\n%s", id, out)
		}
	}
	out, err = exec.Command(bin, "-run", "E99").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "E99") {
		t.Fatalf("error message does not name the bad ID:\n%s", out)
	}
}
