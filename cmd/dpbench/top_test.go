package main

import (
	"os/exec"
	"strings"
	"testing"
	"time"

	"dpstore/internal/wire"
)

// fakeSource feeds topLoop a scripted sequence of snapshots.
type fakeSource struct {
	snaps [][]wire.StatsEntry
	i     int
}

func (f *fakeSource) Stats() ([]wire.StatsEntry, error) {
	s := f.snaps[f.i]
	if f.i < len(f.snaps)-1 {
		f.i++
	}
	return s, nil
}

// TestRenderTop: the renderer derives the acceptance rate from
// consecutive snapshots, renders v2 quantiles as durations, and dashes
// out extension fields a v1 daemon never sent.
func TestRenderTop(t *testing.T) {
	prev := []wire.StatsEntry{{Name: "default", Accepted: 100}}
	cur := []wire.StatsEntry{
		{
			Name: "default", Kind: wire.StatsKindProxy,
			Accepted: 300, Shed: 7, Inflight: 2, Queued: 1, Depth: 42,
			Requests: 300, P50Micros: 1500, P99Micros: 9000, MaxMicros: 12000,
			SyncMicros: 250,
		},
		{Name: "v1-tenant", Accepted: 5}, // all extension fields zero
	}
	var sb strings.Builder
	renderTop(&sb, prev, cur, 2*time.Second)
	out := sb.String()

	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	for _, col := range []string{"NS", "KIND", "ACC", "ACC/s", "SHED", "INFL", "Q", "P50", "P99", "MAX", "DEPTH", "SYNC"} {
		if !strings.Contains(lines[0], col) {
			t.Fatalf("header missing %q: %q", col, lines[0])
		}
	}
	row := lines[1]
	// (300-100)/2s = 100 ops/s; quantiles render as Go durations.
	for _, want := range []string{"default", "proxy", "300", "100", "1.5ms", "9ms", "12ms", "42", "250µs"} {
		if !strings.Contains(row, want) {
			t.Fatalf("row missing %q: %q", want, row)
		}
	}
	// The v1 tenant has no previous snapshot and no extension fields:
	// rate and quantiles dash out rather than showing zeros.
	if got := strings.Count(lines[2], "-"); got < 5 {
		t.Fatalf("v1 row should dash out rate+p50+p99+max+sync, got %d dashes: %q", got, lines[2])
	}
}

// TestTopLoopPlain: two refreshes against a scripted source emit two
// tables with no ANSI escapes in -plain mode.
func TestTopLoopPlain(t *testing.T) {
	src := &fakeSource{snaps: [][]wire.StatsEntry{
		{{Name: "default", Accepted: 10}},
		{{Name: "default", Accepted: 20}},
	}}
	var sb strings.Builder
	if err := topLoop(&sb, src, "test", time.Millisecond, 2, true); err != nil {
		t.Fatalf("topLoop: %v", err)
	}
	out := sb.String()
	if strings.Contains(out, "\033") {
		t.Fatalf("-plain output contains ANSI escapes:\n%q", out)
	}
	if got := strings.Count(out, "dpbench top —"); got != 2 {
		t.Fatalf("want 2 refresh headers, got %d:\n%s", got, out)
	}
	if got := strings.Count(out, "\nNS\t"); got == 0 {
		// tabwriter expands tabs; just check both tables carry the name.
		if got := strings.Count(out, "default"); got != 2 {
			t.Fatalf("want the namespace row in both refreshes:\n%s", out)
		}
	}
}

// TestTopSmoke: `dpbench top` against an in-process daemon — the full
// binary path: dial, v2 stats round trip, render, exit 0 after -n
// refreshes.
func TestTopSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	ln, err := serveInProcess(256, 64, 1, 8, 8)
	if err != nil {
		t.Fatalf("in-process daemon: %v", err)
	}
	defer ln.Close()

	bin := buildBench(t)
	out, err := exec.Command(bin, "top",
		"-addr", ln.Addr().String(), "-n", "2", "-interval", "50ms", "-plain").CombinedOutput()
	if err != nil {
		t.Fatalf("dpbench top failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"dpbench top —", "NS", "default", "block"} {
		if !strings.Contains(s, want) {
			t.Fatalf("top output missing %q:\n%s", want, s)
		}
	}
}
