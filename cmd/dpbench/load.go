// The load subcommand: an open-loop saturation harness against a
// blockstored daemon (or an in-process one), built on internal/workload.
//
//	dpbench load                                  # in-process daemon, 10s constant rate
//	dpbench load -schedule ramp -rate 500 -peak 20000 -duration 30s
//	dpbench load -addr 127.0.0.1:9045 -tenants 4 -sessions 2000
//	dpbench load -o BENCH_load.json               # append-ready trajectory row
//
// Latency is coordinated-omission-safe: each operation is charged from its
// INTENDED arrival on the schedule, so server stalls and queueing show up
// in p99/p999 exactly as real clients would see them. Shed operations
// (busy frames from the daemon's admission layer) are counted separately —
// a server surviving overload shows Achieved flattening while Shed grows
// and Errors stays zero.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/maphash"
	"net"
	"os"
	"runtime"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/store"
	"dpstore/internal/wire"
	"dpstore/internal/workload"
)

// loadRow is one trajectory data point in the BENCH_load.json series —
// the same envelope as BENCH_hotpath.json (name/cpus/iterations/ns_per_op)
// plus the open-loop rates and quantiles.
type loadRow struct {
	Name           string  `json:"name"`
	Cpus           int     `json:"cpus"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	Shed           int     `json:"shed"`
	Retries        int64   `json:"retries,omitempty"`
	Errors         int     `json:"errors"`
	P50Ns          int64   `json:"p50_ns"`
	P99Ns          int64   `json:"p99_ns"`
	P999Ns         int64   `json:"p999_ns"`
}

type loadDoc struct {
	Env struct {
		Go     string `json:"go"`
		OsArch string `json:"os_arch"`
	} `json:"env"`
	Benchmarks []loadRow `json:"benchmarks"`
}

func runLoad(argv []string) {
	fs := flag.NewFlagSet("dpbench load", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "", "daemon address (empty = serve an in-process memory-backed daemon)")
		slots     = fs.Int("slots", 4096, "store slots (shape for the in-process daemon, accepted from -addr daemons)")
		blockSize = fs.Int("blocksize", 64, "block size in bytes")
		schedule  = fs.String("schedule", "constant", "arrival schedule: constant, ramp, or burst")
		rate      = fs.Float64("rate", 2000, "arrival rate ops/sec (constant rate, ramp start, burst base)")
		peak      = fs.Float64("peak", 0, "peak rate ops/sec for ramp end / burst height (0 = 4× rate for ramp, 10× for burst)")
		period    = fs.Duration("period", 500*time.Millisecond, "burst schedule: period between burst onsets")
		burstLen  = fs.Duration("burstlen", 100*time.Millisecond, "burst schedule: burst duration within each period")
		duration  = fs.Duration("duration", 10*time.Second, "total run duration")
		sessions  = fs.Int("sessions", 256, "virtual client sessions")
		workers   = fs.Int("workers", 32, "bounded executor goroutines")
		conns     = fs.Int("conns", 8, "pooled connections per tenant namespace")
		tenants   = fs.Int("tenants", 1, "tenant namespaces to spread sessions over (tenant 0 is the default namespace)")
		writes    = fs.Int("writes", 10, "percent of operations that are uploads")
		inflight  = fs.Int("maxinflight", 0, "in-process daemon only: per-namespace admission limit (0 = none)")
		queue     = fs.Int("maxqueue", 0, "in-process daemon only: admission queue beyond -maxinflight")
		retries   = fs.Int("retry", 0, "retry busy-shed operations up to this many total attempts, honoring the server's RetryAfter hint with full jitter (0 = surface sheds)")
		retryBudg = fs.Duration("retrybudget", 2*time.Second, "with -retry: cap the summed backoff per operation")
		name      = fs.String("name", "", "benchmark row name (default Load<Schedule>)")
		outPath   = fs.String("o", "", "write/merge the trajectory row into this BENCH_load.json file")
	)
	fs.Parse(argv) //nolint:errcheck // ExitOnError

	var sched workload.Schedule
	rowName := *name
	switch *schedule {
	case "constant":
		sched = workload.ConstantRate(*rate, *duration)
		if rowName == "" {
			rowName = "LoadConstant"
		}
	case "ramp":
		p := *peak
		if p == 0 {
			p = 4 * *rate
		}
		sched = workload.Ramp(*rate, p, *duration)
		if rowName == "" {
			rowName = "LoadRamp"
		}
	case "burst":
		p := *peak
		if p == 0 {
			p = 10 * *rate
		}
		sched = workload.Burst(*rate, p, *period, *burstLen, *duration)
		if rowName == "" {
			rowName = "LoadBurst"
		}
	default:
		fmt.Fprintf(os.Stderr, "dpbench load: unknown -schedule %q (want constant, ramp, or burst)\n", *schedule)
		os.Exit(2)
	}
	if *tenants < 1 {
		fmt.Fprintln(os.Stderr, "dpbench load: -tenants must be ≥ 1")
		os.Exit(2)
	}

	target := *addr
	if target == "" {
		ln, err := serveInProcess(*slots, *blockSize, *tenants, *inflight, *queue)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench load: %v\n", err)
			os.Exit(1)
		}
		defer ln.Close()
		target = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "dpbench load: in-process daemon on %s\n", target)
	}

	pools := make([]*store.Pool, *tenants)
	for i := range pools {
		var p *store.Pool
		var err error
		if i == 0 {
			p, err = store.DialPool(target, *conns)
		} else {
			p, err = store.DialNamespacePool(target, tenantName(i), *slots, *blockSize, *conns)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench load: dialing tenant %d: %v\n", i, err)
			os.Exit(1)
		}
		if *retries > 1 {
			// Retried operations stay charged from their INTENDED arrival
			// (the retry loop runs inside Do), so backoff shows up in the
			// quantiles instead of being silently dropped — no coordinated
			// omission through the retry path either.
			p.SetRetryPolicy(store.RetryPolicy{MaxAttempts: *retries, Budget: *retryBudg})
		}
		defer p.Close()
		pools[i] = p
	}
	nSlots := pools[0].Size()
	blk := make(block.Block, pools[0].BlockSize())

	var seedHash maphash.Seed = maphash.MakeSeed()
	rep, err := workload.RunOpenLoop(workload.DriverOptions{
		Schedule: sched,
		Sessions: *sessions,
		Workers:  *workers,
		Do: func(session, seq int) error {
			p := pools[session%len(pools)]
			// Address from a per-(session, seq) hash: uniform, data-
			// independent, allocation-free.
			var h maphash.Hash
			h.SetSeed(seedHash)
			var b [16]byte
			binary.BigEndian.PutUint64(b[:8], uint64(session))
			binary.BigEndian.PutUint64(b[8:], uint64(seq))
			h.Write(b[:]) //nolint:errcheck // maphash never fails
			a := int(h.Sum64() % uint64(nSlots))
			if *writes > 0 && seq%100 < *writes {
				return p.Upload(a, blk)
			}
			_, err := p.Download(a)
			return err
		},
		IsShed: func(err error) bool { _, ok := wire.IsBusy(err); return ok },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpbench load: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("dpbench load: schedule=%s tenants=%d sessions=%d workers=%d conns=%d\n",
		*schedule, *tenants, *sessions, *workers, *conns)
	fmt.Printf("dpbench load: %s\n", rep)
	var retried int64
	for _, p := range pools {
		retried += p.Retries()
	}
	if *retries > 1 {
		fmt.Printf("dpbench load: retried %d busy-shed attempts (max %d attempts, %v budget)\n", retried, *retries, *retryBudg)
	}
	if rep.FirstErr != nil {
		fmt.Fprintf(os.Stderr, "dpbench load: first error: %v\n", rep.FirstErr)
	}

	if *outPath != "" {
		row := loadRow{
			Name:           rowName,
			Cpus:           runtime.GOMAXPROCS(0),
			Iterations:     rep.Done,
			NsPerOp:        float64(rep.Latency.Quantile(0.50).Nanoseconds()),
			OfferedPerSec:  rep.Offered,
			AchievedPerSec: rep.Achieved,
			Shed:           rep.Shed,
			Retries:        retried,
			Errors:         rep.Errors,
			P50Ns:          rep.Latency.Quantile(0.50).Nanoseconds(),
			P99Ns:          rep.Latency.Quantile(0.99).Nanoseconds(),
			P999Ns:         rep.Latency.Quantile(0.999).Nanoseconds(),
		}
		if err := mergeLoadRow(*outPath, row); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dpbench load: wrote %s\n", *outPath)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

func tenantName(i int) string { return fmt.Sprintf("load-%d", i) }

// serveInProcess starts a memory-backed daemon on a loopback listener,
// with the requested tenant namespaces pre-attached and admission control
// applied — the self-contained mode for trajectory recording and CI.
func serveInProcess(slots, blockSize, tenants, inflight, queue int) (net.Listener, error) {
	ns := store.NewNamespaces()
	for i := 0; i < tenants; i++ {
		mem, err := store.NewMem(slots, blockSize)
		if err != nil {
			return nil, err
		}
		nm := store.DefaultNamespace
		if i > 0 {
			nm = tenantName(i)
		}
		ns.Attach(nm, mem)
	}
	if inflight > 0 {
		ns.SetAdmission(store.AdmitOptions{MaxInflight: inflight, MaxQueue: queue})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go store.ServeNamespaces(ln, ns) //nolint:errcheck // torn down with the process
	return ln, nil
}

// mergeLoadRow appends (or replaces, by name) one trajectory row in the
// BENCH_load.json document, creating the file if needed — repeated runs
// with different schedules build up one comparable series.
func mergeLoadRow(path string, row loadRow) error {
	var doc loadDoc
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("parsing existing %s: %w", path, err)
		}
	}
	doc.Env.Go = runtime.Version()
	doc.Env.OsArch = runtime.GOOS + "/" + runtime.GOARCH
	replaced := false
	for i := range doc.Benchmarks {
		if doc.Benchmarks[i].Name == row.Name && doc.Benchmarks[i].Cpus == row.Cpus {
			doc.Benchmarks[i] = row
			replaced = true
		}
	}
	if !replaced {
		doc.Benchmarks = append(doc.Benchmarks, row)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
