// Command dpbench regenerates the paper-reproduction tables (experiments
// E1–E13; see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	dpbench                 # run every experiment at full scale
//	dpbench -run E5,E10     # run a subset
//	dpbench -quick          # small sizes / trial counts (seconds)
//	dpbench -seed 7         # change the reproduction seed
//	dpbench -list           # list experiments
//	dpbench -format json -o out.json   # machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dpstore/internal/exp"
)

// jsonExperiment is one experiment's results in the machine-readable
// output (-format json): the perf-trajectory file series (BENCH_*.json)
// is built from these, so the field set is part of the format.
type jsonExperiment struct {
	ID         string       `json:"id"`
	Title      string       `json:"title"`
	Reproduces string       `json:"reproduces"`
	Seconds    float64      `json:"seconds"`
	Tables     []*exp.Table `json:"tables"`
}

// jsonOutput is the top-level -format json document.
type jsonOutput struct {
	Seed        int64            `json:"seed"`
	Quick       bool             `json:"quick"`
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	NumCPU      int              `json:"num_cpu"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "load" {
		runLoad(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		runTop(os.Args[2:])
		return
	}
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick   = flag.Bool("quick", false, "shrink sizes and trial counts")
		seed    = flag.Int64("seed", 1, "reproduction seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		format  = flag.String("format", "text", "table format: text, md, or json")
		outPath = flag.String("o", "", "write results to this file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %-70s [%s]\n", e.ID, e.Title, e.Reproduces)
		}
		return
	}
	switch *format {
	case "text", "md", "json":
	default:
		fmt.Fprintf(os.Stderr, "dpbench: unknown format %q (want text, md, or json)\n", *format)
		os.Exit(2)
	}

	var selected []exp.Experiment
	if *runList == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		out = f
	}

	cfg := exp.Config{Seed: *seed, Quick: *quick}
	doc := jsonOutput{
		Seed:      *seed,
		Quick:     *quick,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if *format != "json" {
		fmt.Fprintf(out, "dpbench: seed=%d quick=%v — reproducing Patel–Persiano–Yeo, PODS'19\n\n", *seed, *quick)
	}
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *format == "json" {
			doc.Experiments = append(doc.Experiments, jsonExperiment{
				ID:         e.ID,
				Title:      e.Title,
				Reproduces: e.Reproduces,
				Seconds:    elapsed.Seconds(),
				Tables:     tables,
			})
			continue
		}
		fmt.Fprintf(out, "=== %s: %s  (reproduces %s)\n", e.ID, e.Title, e.Reproduces)
		for _, t := range tables {
			fmt.Fprintln(out)
			if *format == "md" {
				t.RenderMarkdown(out)
			} else {
				t.Render(out)
			}
		}
		fmt.Fprintf(out, "\n    [%s completed in %v]\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: encoding results: %v\n", err)
			os.Exit(1)
		}
	}
	if *outPath != "" {
		if err := out.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: writing %s: %v\n", *outPath, err)
			os.Exit(1)
		}
	}
}
