// Command dpbench regenerates the paper-reproduction tables (experiments
// E1–E13; see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	dpbench                 # run every experiment at full scale
//	dpbench -run E5,E10     # run a subset
//	dpbench -quick          # small sizes / trial counts (seconds)
//	dpbench -seed 7         # change the reproduction seed
//	dpbench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dpstore/internal/exp"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick   = flag.Bool("quick", false, "shrink sizes and trial counts")
		seed    = flag.Int64("seed", 1, "reproduction seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		format  = flag.String("format", "text", "table format: text or md")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %-70s [%s]\n", e.ID, e.Title, e.Reproduces)
		}
		return
	}

	var selected []exp.Experiment
	if *runList == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := exp.Config{Seed: *seed, Quick: *quick}
	fmt.Printf("dpbench: seed=%d quick=%v — reproducing Patel–Persiano–Yeo, PODS'19\n\n", *seed, *quick)
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s: %s  (reproduces %s)\n", e.ID, e.Title, e.Reproduces)
		for _, t := range tables {
			fmt.Println()
			if *format == "md" {
				t.RenderMarkdown(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
		}
		fmt.Printf("\n    [%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
