// The top subcommand: a live per-namespace view of a running daemon,
// polled over the wire protocol's stats frame (v2 when the daemon speaks
// it, degrading to v1 fields against older daemons).
//
//	dpbench top                                   # watch 127.0.0.1:9045
//	dpbench top -addr 10.0.0.5:9045 -interval 2s
//	dpbench top -n 5 -plain                       # 5 refreshes, append-only
//
// Each refresh renders one row per namespace: accepted/shed totals, the
// acceptance rate since the previous refresh, live inflight/queue gauges,
// service-time p50/p99 and max (whole-microsecond quantiles from the v2
// extension; dashes against a v1 daemon), the backing depth gauge (proxy
// stash occupancy or resync backlog), and the WAL's EWMA fsync latency.
// Everything shown is a data-independent aggregate — the same rule the
// daemon's /metrics endpoint obeys — so leaving top running against a
// production daemon observes load, never access patterns.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"dpstore/internal/store"
	"dpstore/internal/wire"
)

// topSource is the stats feed runTop polls — *store.Remote in production,
// a stub in the renderer tests.
type topSource interface {
	Stats() ([]wire.StatsEntry, error)
}

func runTop(argv []string) {
	fs := flag.NewFlagSet("dpbench top", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9045", "daemon address")
		interval = fs.Duration("interval", time.Second, "refresh interval")
		count    = fs.Int("n", 0, "exit after this many refreshes (0 = run until interrupted)")
		plain    = fs.Bool("plain", false, "append each refresh instead of redrawing in place (for pipes and logs)")
	)
	fs.Parse(argv) //nolint:errcheck // ExitOnError

	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "dpbench top: -interval must be > 0")
		os.Exit(2)
	}
	r, err := store.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpbench top: %v\n", err)
		os.Exit(1)
	}
	defer r.Close()

	if err := topLoop(os.Stdout, r, *addr, *interval, *count, *plain); err != nil {
		fmt.Fprintf(os.Stderr, "dpbench top: %v\n", err)
		os.Exit(1)
	}
}

// topLoop polls src every interval and renders refreshes to w, count
// times (0 = forever). Split from runTop so the smoke test can drive it
// in-process against a loopback daemon.
func topLoop(w io.Writer, src topSource, addr string, interval time.Duration, count int, plain bool) error {
	var prev []wire.StatsEntry
	last := time.Now()
	for i := 0; count == 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		cur, err := src.Stats()
		if err != nil {
			return err
		}
		now := time.Now()
		if !plain {
			// Home the cursor and clear below it — redraw in place
			// without flashing a full-screen erase.
			fmt.Fprint(w, "\033[H\033[J")
		}
		fmt.Fprintf(w, "dpbench top — %s — %s\n", addr, now.Format("15:04:05"))
		renderTop(w, prev, cur, now.Sub(last))
		prev, last = cur, now
	}
	return nil
}

// renderTop writes one refresh: a fixed-header table with one row per
// namespace. prev is the previous refresh's snapshot (nil on the first),
// used to derive the acceptance rate over elapsed.
func renderTop(w io.Writer, prev, cur []wire.StatsEntry, elapsed time.Duration) {
	prevAcc := make(map[string]uint64, len(prev))
	for _, e := range prev {
		prevAcc[e.Name] = e.Accepted
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NS\tKIND\tACC\tACC/s\tSHED\tINFL\tQ\tP50\tP99\tMAX\tDEPTH\tSYNC")
	for _, e := range cur {
		rate := "-"
		if before, ok := prevAcc[e.Name]; ok && elapsed > 0 && e.Accepted >= before {
			rate = fmt.Sprintf("%.0f", float64(e.Accepted-before)/elapsed.Seconds())
		}
		name := e.Name
		if name == "" {
			name = "default" // the default namespace's wire name is empty
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%d\t%d\t%d\t%s\t%s\t%s\t%d\t%s\n",
			name, statsKindName(e.Kind),
			e.Accepted, rate, e.Shed, e.Inflight, e.Queued,
			topMicros(e.P50Micros, e.Requests),
			topMicros(e.P99Micros, e.Requests),
			topMicros(e.MaxMicros, e.Requests),
			e.Depth, topMicros(e.SyncMicros, e.SyncMicros))
	}
	tw.Flush() //nolint:errcheck // writes to the caller's buffer/terminal
}

// topMicros renders a whole-microsecond latency, or a dash when the
// gate (typically the v2 Requests count) is zero — against a v1 daemon
// every extension field is zero and dashes beat misleading "0s" cells.
func topMicros(micros, gate uint64) string {
	if gate == 0 {
		return "-"
	}
	return (time.Duration(micros) * time.Microsecond).String()
}

// statsKindName decodes a wire.StatsKind* byte for human readers.
func statsKindName(k uint8) string {
	switch k {
	case wire.StatsKindProxy:
		return "proxy"
	case wire.StatsKindReplicated:
		return "repl"
	default:
		return "block"
	}
}
