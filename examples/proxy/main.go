// Command proxy demonstrates the concurrent multi-client privacy proxy:
// one DP-RAM instance, hosted behind a daemon, serving many wire clients
// at once.
//
// The deployment shape (CAOS-style): the daemon is the *trusted* proxy —
// it holds the scheme's stash and keys — while the backing block store
// underneath it is the untrusted party of the paper's model. Clients
// speak logical record accesses over TCP; the proxy's scheduler turns
// them into one scheme access each, in arrival order, with no
// same-address deduplication (deduping would leak which clients are
// after the same record), and its write-behind pipeline overlaps each
// access's overwrite round trip with the next access's read.
//
// Run it: go run ./examples/proxy
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"dpstore"
)

const (
	records    = 1 << 10
	recordSize = 64
	clients    = 8
	perClient  = 32
)

func main() {
	// --- daemon side: scheme over a pipelined backing store ------------
	db, err := dpstore.NewDatabase(records, recordSize)
	if err != nil {
		log.Fatal(err)
	}
	opts := dpstore.DPRAMOptions{Rand: dpstore.NewRand(42)}
	backing, err := dpstore.NewShardedMemServer(records, dpstore.DPRAMServerBlockSize(recordSize, opts), 8)
	if err != nil {
		log.Fatal(err)
	}
	pipe := dpstore.NewProxyPipeline(backing)
	scheme, err := dpstore.SetupDPRAM(db, pipe, opts)
	if err != nil {
		log.Fatal(err)
	}
	p := dpstore.NewProxy(scheme, dpstore.ProxyOptions{Pipeline: pipe})
	defer p.Close() //nolint:errcheck
	if err := p.Flush(); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go dpstore.ServeProxy(ln, p) //nolint:errcheck
	addr := ln.Addr().String()
	fmt.Printf("proxy daemon: DP-RAM over %d records × %d B at %s\n", records, recordSize, addr)

	// --- client side: concurrent wire sessions -------------------------
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := dpstore.DialProxy(addr)
			if err != nil {
				errs[c] = err
				return
			}
			defer conn.Close()
			base := c * (records / clients)
			for i := 0; i < perClient; i++ {
				rec := dpstore.NewBlock(recordSize)
				copy(rec, fmt.Sprintf("client %d note %d", c, i))
				if _, err := conn.Write(base+i, rec); err != nil {
					errs[c] = err
					return
				}
				got, err := conn.Read(base + i)
				if err != nil {
					errs[c] = err
					return
				}
				if string(got[:len(rec)]) != string(rec) {
					errs[c] = fmt.Errorf("client %d: record %d came back wrong", c, base+i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d clients × %d accesses served through one scheme instance (%d total)\n",
		clients, 2*perClient, p.Accesses())
	fmt.Println("every write read back correctly; physical addresses never crossed the wire")
}
