// DP-RAM over a real network socket.
//
// This example spins up the passive block server (the same code as
// cmd/blockstored) on a loopback TCP port, then runs the full encrypted
// DP-RAM client against it — demonstrating that the constructions are
// deployment-shaped, not simulation-only: the server is a separate party
// reachable only through download/upload messages.
package main

import (
	"fmt"
	"log"
	"net"

	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func main() {
	const n = 512
	const blockSize = 64

	opts := dpram.Options{Rand: rng.New(11)}
	serverBlockSize := dpram.ServerBlockSize(blockSize, opts)

	// Server side: a dumb block store behind a TCP listener.
	backing, err := store.NewMem(n, serverBlockSize)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go store.Serve(ln, backing) //nolint:errcheck // returns when ln closes
	fmt.Printf("block server listening on %s (%d slots × %d B)\n", ln.Addr(), n, serverBlockSize)

	// Client side: dial the server and run DP-RAM over the wire.
	remote, err := store.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	counting := store.NewCounting(remote)

	db, err := block.PatternDatabase(n, blockSize)
	if err != nil {
		log.Fatal(err)
	}
	ram, err := dpram.Setup(db, counting, opts)
	if err != nil {
		log.Fatal(err)
	}
	counting.Reset()

	// A burst of reads and writes across the socket.
	src := rng.New(12)
	const queries = 200
	for i := 0; i < queries; i++ {
		idx := src.Intn(n)
		if i%4 == 0 {
			if _, err := ram.Write(idx, block.Pattern(uint64(5000+i), blockSize)); err != nil {
				log.Fatal(err)
			}
		} else if _, err := ram.Read(idx); err != nil {
			log.Fatal(err)
		}
	}

	st := counting.Stats()
	fmt.Printf("%d queries over TCP: %.2f downloads + %.2f uploads per query\n",
		queries, float64(st.Downloads)/queries, float64(st.Uploads)/queries)
	fmt.Printf("wire traffic: %d B down, %d B up (ciphertexts only — the server never sees plaintext)\n",
		st.BytesDown, st.BytesUp)
	fmt.Printf("what the server learned: a DP-protected address sequence, ε = O(log n) (Theorem 6.1)\n")
}
