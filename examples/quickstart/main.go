// Quickstart: outsource a database to an untrusted in-memory server and
// access it through the paper's DP-RAM (Section 6) — constant overhead,
// 2 round trips per query, ε = Θ(log n) differential privacy.
package main

import (
	"fmt"
	"log"

	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func main() {
	const n = 1024
	const blockSize = 64

	// The plaintext database the client wants to outsource.
	db, err := block.PatternDatabase(n, blockSize)
	if err != nil {
		log.Fatal(err)
	}

	// The untrusted server: it stores ciphertexts and sees only addresses.
	opts := dpram.Options{Rand: rng.New(1)}
	srv, err := store.NewMem(n, dpram.ServerBlockSize(blockSize, opts))
	if err != nil {
		log.Fatal(err)
	}
	counting := store.NewCounting(srv)

	// Setup encrypts the database onto the server and seeds the stash.
	ram, err := dpram.Setup(db, counting, opts)
	if err != nil {
		log.Fatal(err)
	}
	counting.Reset()

	// Reads and writes, each exactly 2 downloads + 1 upload.
	if _, err := ram.Write(7, block.Pattern(999, blockSize)); err != nil {
		log.Fatal(err)
	}
	got, err := ram.Read(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read-back matches write: %v\n", block.CheckPattern(got, 999))

	for i := 0; i < 500; i++ {
		if _, err := ram.Read(i % n); err != nil {
			log.Fatal(err)
		}
	}
	st := counting.Stats()
	fmt.Printf("501 queries: %.2f downloads + %.2f uploads per query (independent of n = %d)\n",
		float64(st.Downloads)/501, float64(st.Uploads)/501, n)
	fmt.Printf("client stash: %d blocks (Φ(n) = %d); ε upper bound %.1f = Θ(log n)\n",
		ram.StashSize(), ram.StashParam(), ram.EpsUpperBound())
}
