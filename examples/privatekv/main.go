// Private contact discovery with DP-KVS (Section 7).
//
// The paper's introduction motivates private storage with "discovery of
// identities" [8]: a messaging service stores a directory mapping user
// handles to public keys; clients look up contacts without the server
// learning who is talking to whom. Obliviousness via ORAM would cost
// Θ(log n) blocks per lookup; the DP-KVS does it in O(log log n) blocks at
// ε = Θ(log n) — per the paper's thesis, the best privacy available at
// that price point.
package main

import (
	"fmt"
	"log"

	"dpstore/internal/block"
	"dpstore/internal/core/dpkvs"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func main() {
	const directorySize = 4096
	const keySize = 32 // public-key fingerprints

	opts := dpkvs.Options{
		Capacity:  directorySize,
		ValueSize: keySize,
		Rand:      rng.New(7),
	}
	slots, blockSize, err := dpkvs.RequiredServer(opts)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := store.NewMem(slots, blockSize)
	if err != nil {
		log.Fatal(err)
	}
	counting := store.NewCounting(srv)
	directory, err := dpkvs.Setup(counting, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Register users: handle → key fingerprint.
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for i, u := range users {
		fingerprint := block.Pattern(uint64(1000+i), keySize)
		if err := directory.Put(u, fingerprint); err != nil {
			log.Fatal(err)
		}
	}
	counting.Reset()

	// Look up a contact that exists...
	fp, ok, err := directory.Get("carol")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carol registered: %v (fingerprint %x…)\n", ok, fp[:8])

	// ...and one that does not. KVS must answer ⊥ for never-inserted keys —
	// and the server-side access pattern is identical either way.
	_, ok, err = directory.Get("mallory")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mallory registered: %v (⊥)\n", ok)

	st := counting.Stats()
	fmt.Printf("2 lookups cost %d block ops (%d per op = 12·s(n), s(n) = %d = Θ(log log n))\n",
		st.Ops(), directory.BlocksPerOp(), directory.Depth())
	fmt.Printf("an ORAM-based directory would pay Θ(log n) ≈ %d blocks per lookup instead\n",
		2*4*13) // 2·Z·(lg 4096 + 1)

	// Privacy: what the server learned is a DP-protected access pattern;
	// swapping any single lookup for any other changes the transcript
	// distribution by at most e^ε with ε = O(log n) (Theorem 7.5).
	fmt.Printf("client-side state: %d blocks, super root %d/%d\n",
		directory.ClientBlocks(), directory.SuperRootLoad(), directory.SuperCap())
}
