// Private ad retrieval with DP-IR (Section 5).
//
// The paper's introduction cites private advertisement systems [30]: a
// client fetches an ad matching an interest category without the server
// learning the category. Full PIR costs Θ(n) server work per request —
// untenable at ad-serving rates. DP-IR with a small error probability α
// fetches K = ⌈(1−α)n/(e^ε−1)⌉ blocks; at ε = Θ(log n), K is a small
// constant and a failed fetch (probability α) just means showing a house
// ad.
//
// This example sweeps the privacy/efficiency frontier to show the paper's
// headline: bandwidth collapses from Θ(n) to O(1) exactly as ε crosses
// Θ(log n), and the lower bound of Theorem 3.4 says nothing better exists.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"dpstore/internal/block"
	"dpstore/internal/core/dpir"
	"dpstore/internal/privacy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func main() {
	const nAds = 8192 // ad inventory, one block per interest category
	const alpha = 0.05

	db, err := block.PatternDatabase(nAds, block.DefaultSize)
	if err != nil {
		log.Fatal(err)
	}
	base, err := store.NewMemFrom(db)
	if err != nil {
		log.Fatal(err)
	}
	src := rng.New(3)

	fmt.Printf("ad inventory: %d categories, error budget α = %.2f (fallback: house ad)\n\n", nAds, alpha)
	fmt.Printf("%-10s %-10s %-14s %-14s %-12s\n", "ε", "ε/ln n", "blocks/query", "Thm 3.4 bound", "served OK")
	lgn := math.Log(float64(nAds))
	for _, eps := range []float64{2, lgn / 2, lgn, 1.5 * lgn} {
		counting := store.NewCounting(base)
		client, err := dpir.New(counting, dpir.Options{Epsilon: eps, Alpha: alpha, Rand: src.Split()})
		if err != nil {
			log.Fatal(err)
		}
		const requests = 400
		served := 0
		w := src.Split()
		for i := 0; i < requests; i++ {
			category := w.Intn(nAds)
			ad, err := client.Query(category)
			switch {
			case errors.Is(err, dpir.ErrBottom):
				// α branch: show a house ad instead.
			case err != nil:
				log.Fatal(err)
			case block.CheckPattern(ad, uint64(category)):
				served++
			default:
				log.Fatalf("wrong ad served for category %d", category)
			}
		}
		bound := privacy.DPIRLowerBound(nAds, eps, alpha, 0)
		fmt.Printf("%-10.2f %-10.2f %-14.1f %-14.1f %3d/%d\n",
			eps, eps/lgn,
			float64(counting.Stats().Downloads)/requests,
			bound, served, requests)
	}

	fmt.Printf("\nreading the table: below ε = ln n = %.1f the lower bound forces near-linear\n", lgn)
	fmt.Println("bandwidth; at ε = Θ(log n) a handful of blocks suffice — the best achievable")
	fmt.Println("privacy with small overhead (Theorems 3.4 + 5.1).")
}
