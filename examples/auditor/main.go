// The auditor: measure the privacy a storage scheme actually provides.
//
// This example plays the adversary of Definition 2.1. It samples access
// transcripts from two adjacent query workloads and estimates the (ε, δ)
// separating them — first for the paper's DP-IR (Algorithm 1), whose ε̂
// matches the Appendix B analysis, then for the tempting Section 4
// strawman, which the same estimator exposes as having δ ≈ 1 (no privacy),
// exactly as the paper warns.
package main

import (
	"fmt"
	"log"
	"math"

	"dpstore/internal/analysis"
	"dpstore/internal/baseline/strawman"
	"dpstore/internal/block"
	"dpstore/internal/core/dpir"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func main() {
	const n = 32
	const trials = 200000
	src := rng.New(21)

	db, err := block.PatternDatabase(n, block.DefaultSize)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := store.NewMemFrom(db)
	if err != nil {
		log.Fatal(err)
	}

	const q, qPrime = 3, 17
	fmt.Printf("auditing with %d sampled transcripts per world (query %d vs query %d, n = %d)\n\n",
		trials, q, qPrime, n)

	// --- World 1: the paper's DP-IR --------------------------------------
	client, err := dpir.New(srv, dpir.Options{
		Epsilon: math.Log(float64(n)), Alpha: 0.2, Rand: src.Split(),
	})
	if err != nil {
		log.Fatal(err)
	}
	classify := func(query int) string {
		set, _ := client.SampleSet(query)
		inQ, inQP := false, false
		for _, v := range set {
			if v == q {
				inQ = true
			}
			if v == qPrime {
				inQP = true
			}
		}
		return fmt.Sprintf("%v/%v", inQ, inQP)
	}
	pe := analysis.SamplePair(
		func() string { return classify(q) },
		func() string { return classify(qPrime) },
		trials,
	)
	fmt.Println("DP-IR (Algorithm 1, α = 0.2, ε = ln n):")
	fmt.Printf("  ε̂ (max transcript ratio)   = %.2f\n", pe.MaxRatioEps(50))
	fmt.Printf("  analytic achieved ε         = %.2f  (Appendix B: ln(1+(1−α)n/(αK)))\n", client.AchievedEps())
	fmt.Printf("  δ̂ at achieved ε + 0.5      = %.4f  (pure DP ⇒ ≈ 0)\n\n", pe.DeltaAt(client.AchievedEps()+0.5))

	// --- World 2: the Section 4 strawman ----------------------------------
	sm, err := strawman.New(srv, src.Split())
	if err != nil {
		log.Fatal(err)
	}
	test := func(query int) func() bool {
		return func() bool {
			for _, v := range sm.SampleSet(query) {
				if v == q {
					return true
				}
			}
			return false
		}
	}
	d := analysis.RunDistinguisher(test(q), test(qPrime), trials)
	fmt.Println("strawman (§4: query real w.p. 1, decoys w.p. 1/n):")
	fmt.Printf("  Pr[B_%d ∈ transcript | query %d]  = %.4f\n", q, q, d.TrueP)
	fmt.Printf("  Pr[B_%d ∈ transcript | query %d] = %.4f\n", q, qPrime, d.TrueQ)
	fmt.Printf("  distinguisher advantage          = %.4f\n", d.Advantage())
	fmt.Printf("  paper's floor (n−1)/n            = %.4f\n", strawman.DeltaFloor(n))
	fmt.Printf("  δ̂ even granting ε = ln n        = %.4f — no privacy at all\n",
		d.DeltaLowerBound(math.Log(float64(n))))
	fmt.Println("\nmoral (Section 4): with weak privacy targets, tempting constructions break;")
	fmt.Println("measure, don't assume.")
}
