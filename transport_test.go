package dpstore

// Transport-level integration tests: the batched hot paths of the
// constructions, measured in real request/response exchanges against a TCP
// loopback server. These pin the round-trip contract of the batch
// transport — the whole point of threading BatchServer through the stack.

import (
	"testing"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

// dialRemote connects a fresh Remote to a loopback server of the given
// shape.
func dialRemote(t *testing.T, slots, blockSize int) *store.Remote {
	t.Helper()
	r, err := store.Dial(startServer(t, slots, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestDPRAMRoundTripsOverTCP: a batched DP-RAM access is 2 round trips
// (one two-address read batch, one upload batch) where the per-block
// execution pays 3; retrieval-only mode is a single round trip. Setup
// collapses from n round trips to 1.
func TestDPRAMRoundTripsOverTCP(t *testing.T) {
	const n, queries = 64, 50
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	opts := dpram.Options{Rand: rng.New(7), Key: crypto.KeyFromSeed(7)}

	remote := dialRemote(t, n, dpram.ServerBlockSize(16, opts))
	base := remote.RoundTrips()
	c, err := dpram.Setup(db, remote, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := remote.RoundTrips() - base; got != 1 {
		t.Fatalf("batched setup took %d round trips, want 1", got)
	}
	base = remote.RoundTrips()
	for i := 0; i < queries; i++ {
		if _, err := c.Read(i % n); err != nil {
			t.Fatal(err)
		}
	}
	if got := remote.RoundTrips() - base; got != 2*queries {
		t.Fatalf("%d batched accesses took %d round trips, want %d", queries, got, 2*queries)
	}

	// The per-block equivalent of the same access sequence pays 3 per
	// query (2 downloads + 1 upload, one trip each).
	remotePB := dialRemote(t, n, dpram.ServerBlockSize(16, opts))
	pbOpts := opts
	pbOpts.Rand = rng.New(7)
	cPB, err := dpram.Setup(db, store.PerBlock(remotePB), pbOpts)
	if err != nil {
		t.Fatal(err)
	}
	base = remotePB.RoundTrips()
	for i := 0; i < queries; i++ {
		if _, err := cPB.Read(i % n); err != nil {
			t.Fatal(err)
		}
	}
	if got := remotePB.RoundTrips() - base; got != 3*queries {
		t.Fatalf("%d per-block accesses took %d round trips, want %d", queries, got, 3*queries)
	}

	// Retrieval-only mode: one download, hence one round trip, per query.
	roOpts := dpram.Options{Rand: rng.New(9), RetrievalOnly: true}
	remoteRO := dialRemote(t, n, dpram.ServerBlockSize(16, roOpts))
	cRO, err := dpram.Setup(db, remoteRO, roOpts)
	if err != nil {
		t.Fatal(err)
	}
	base = remoteRO.RoundTrips()
	for i := 0; i < queries; i++ {
		if _, err := cRO.Read(i % n); err != nil {
			t.Fatal(err)
		}
	}
	if got := remoteRO.RoundTrips() - base; got != queries {
		t.Fatalf("%d retrieval-only accesses took %d round trips, want %d", queries, got, queries)
	}
}

// TestPathORAMRoundTripsOverTCP: a batched Path ORAM access is 2 round
// trips (read path, evict path) instead of the 2·Z·(height+1) the
// per-block execution pays.
func TestPathORAMRoundTripsOverTCP(t *testing.T) {
	const n, queries = 64, 25
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	opts := pathoram.Options{Rand: rng.New(3), Key: crypto.KeyFromSeed(3)}
	slots, bs := pathoram.TreeShape(n, 16, opts)

	remote := dialRemote(t, slots, bs)
	o, err := pathoram.Setup(db, remote, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := remote.RoundTrips()
	for i := 0; i < queries; i++ {
		if _, err := o.Read(i % n); err != nil {
			t.Fatal(err)
		}
	}
	if got := remote.RoundTrips() - base; got != 2*queries {
		t.Fatalf("%d batched accesses took %d round trips, want %d", queries, got, 2*queries)
	}

	remotePB := dialRemote(t, slots, bs)
	pbOpts := opts
	pbOpts.Rand = rng.New(3)
	oPB, err := pathoram.Setup(db, store.PerBlock(remotePB), pbOpts)
	if err != nil {
		t.Fatal(err)
	}
	base = remotePB.RoundTrips()
	for i := 0; i < queries; i++ {
		if _, err := oPB.Read(i % n); err != nil {
			t.Fatal(err)
		}
	}
	perAccess := int64(oPB.BlocksPerAccess()) // 2·Z·(height+1), one trip per block
	if got := remotePB.RoundTrips() - base; got != perAccess*queries {
		t.Fatalf("%d per-block accesses took %d round trips, want %d", queries, got, perAccess*queries)
	}
}

// TestBatchedAndPerBlockAgree runs the same seeded DP-RAM workload batched
// and per-block and checks the answers and the metered overhead are
// identical: batching changes the framing of the transcript, never its
// content.
func TestBatchedAndPerBlockAgree(t *testing.T) {
	const n, queries = 32, 200
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	run := func(perBlock bool) ([]block.Block, store.Stats) {
		opts := dpram.Options{Rand: rng.New(42), Key: crypto.KeyFromSeed(5)}
		mem, err := store.NewMem(n, dpram.ServerBlockSize(16, opts))
		if err != nil {
			t.Fatal(err)
		}
		counting := store.NewCounting(mem)
		var srv store.Server = counting
		if perBlock {
			srv = store.PerBlock(counting)
		}
		c, err := dpram.Setup(db, srv, opts)
		if err != nil {
			t.Fatal(err)
		}
		counting.Reset()
		w := rng.New(77)
		out := make([]block.Block, 0, queries)
		for i := 0; i < queries; i++ {
			q := w.Intn(n)
			if w.Bernoulli(0.3) {
				prev, err := c.Write(q, block.Pattern(uint64(i), 16))
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, prev)
			} else {
				got, err := c.Read(q)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, got)
			}
		}
		return out, counting.Stats()
	}
	gotB, statsB := run(false)
	gotP, statsP := run(true)
	if statsB != statsP {
		t.Fatalf("batched stats %+v != per-block stats %+v", statsB, statsP)
	}
	if statsB.Ops() != 3*queries {
		t.Fatalf("ops = %d, want %d (exactly 3 per query)", statsB.Ops(), 3*queries)
	}
	for i := range gotB {
		if !gotB[i].Equal(gotP[i]) {
			t.Fatalf("query %d: batched and per-block answers differ", i)
		}
	}
}
