package dpstore

// IV-source freeze tests: the crypto-kernel counterpart of the transcript
// freeze. The zero-allocation crypto pass replaces the per-block
// crypto/rand IV read with a per-Cipher counter nonce, but under
// SetIVReader the cipher must keep drawing 16 IV bytes per sealed block
// from the injected reader in the exact order the old implementation did —
// otherwise seeded encrypted transcripts (and any replay tooling built on
// them) silently change meaning. These goldens were captured against the
// pre-kernel-swap implementation and pin, for a seeded encrypted run of
// each scheme:
//
//   - every server operation (read addresses, write addresses) in order,
//   - the uploaded bytes (DP-RAM, BucketRAM: full ciphertexts; Path ORAM:
//     the 16-byte IV prefix of every slot — eviction's stash-map iteration
//     order legitimately permutes which block lands in which slot, so full
//     slot bytes are not run-deterministic, but the IV consumed by slot k
//     of a batch is),
//   - every query's returned record bytes.
//
// Setup runs before the hasher is armed (the deterministic IV reader is
// injected after Setup), so the goldens cover the steady-state access path
// — exactly the part the batched kernels rewrite.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"testing"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/workload"
)

// ivPrefixLen is the length of the IV at the front of every ciphertext
// (AES block size; see crypto.Overhead = IV + MAC).
const ivPrefixLen = 16

// seededIVs is a deterministic io.Reader for SetIVReader: a 64-bit LCG
// emitting its high byte. Not random in any cryptographic sense — the
// point is exactly that the byte sequence is reproducible.
type seededIVs struct{ s uint64 }

func (r *seededIVs) Read(p []byte) (int, error) {
	for i := range p {
		r.s = r.s*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.s >> 56)
	}
	return len(p), nil
}

// ivFreezeStore is a Server+BatchServer over a Mem that feeds every
// operation — and the bytes that cross it — into one hash. Unlike
// trace.Recorder it is batch-native, so schemes execute their real batched
// shape, and it captures upload bytes, which the trace's (op, addr) view
// does not.
type ivFreezeStore struct {
	mem    *store.Mem
	h      hash.Hash
	armed  bool
	ivOnly bool // hash only the IV prefix of uploads, not full ciphertexts
}

func (s *ivFreezeStore) tag(op byte, addr int) {
	if !s.armed {
		return
	}
	var buf [9]byte
	buf[0] = op
	binary.BigEndian.PutUint64(buf[1:], uint64(addr))
	s.h.Write(buf[:])
}

func (s *ivFreezeStore) hashUpload(addr int, b block.Block) {
	if !s.armed {
		return
	}
	s.tag('W', addr)
	if s.ivOnly {
		s.h.Write(b[:ivPrefixLen])
	} else {
		s.h.Write(b)
	}
}

func (s *ivFreezeStore) Download(addr int) (block.Block, error) {
	s.tag('R', addr)
	return s.mem.Download(addr)
}

func (s *ivFreezeStore) Upload(addr int, b block.Block) error {
	s.hashUpload(addr, b)
	return s.mem.Upload(addr, b)
}

func (s *ivFreezeStore) ReadBatch(addrs []int) ([]block.Block, error) {
	for _, a := range addrs {
		s.tag('R', a)
	}
	return s.mem.ReadBatch(addrs)
}

func (s *ivFreezeStore) WriteBatch(ops []store.WriteOp) error {
	for _, op := range ops {
		s.hashUpload(op.Addr, op.Block)
	}
	return s.mem.WriteBatch(ops)
}

func (s *ivFreezeStore) Size() int      { return s.mem.Size() }
func (s *ivFreezeStore) BlockSize() int { return s.mem.BlockSize() }

// ivFrozenWorkload drives the same seeded mixed workload as frozenWorkload,
// folding the returned record bytes into the freeze hash.
func ivFrozenWorkload(t *testing.T, s *ivFreezeStore, src *rng.Source,
	access func(q workload.Query) (block.Block, error)) string {
	t.Helper()
	for k := 0; k < freezeQueries; k++ {
		q := workload.Query{Index: src.Intn(freezeN), Op: workload.Read}
		if src.Intn(4) == 0 {
			q.Op = workload.Write
			q.Data = block.Pattern(uint64(k), freezeBlockSize)
		}
		got, err := access(q)
		if err != nil {
			t.Fatal(err)
		}
		s.h.Write(got)
	}
	return hex.EncodeToString(s.h.Sum(nil))
}

type ivSetter interface{ SetIVReader(io.Reader) }

// armIVFreeze injects the deterministic IV stream and starts hashing.
func armIVFreeze(s *ivFreezeStore, c ivSetter) {
	c.SetIVReader(&seededIVs{s: 0x5eed})
	s.armed = true
}

// TestIVFreezeDPRAMEncrypted pins the encrypted DP-RAM steady state: full
// upload ciphertexts under a seeded key and IV stream.
func TestIVFreezeDPRAMEncrypted(t *testing.T) {
	const golden = "5ad6a2c4a4a8903bb42078fdc785bf12d13d25d16a56f61b942b884b909ccbfa"
	db, err := block.PatternDatabase(freezeN, freezeBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	opts := dpram.Options{Rand: rng.New(42), Key: crypto.KeyFromSeed(7)}
	mem, err := store.NewMem(freezeN, dpram.ServerBlockSize(freezeBlockSize, opts))
	if err != nil {
		t.Fatal(err)
	}
	s := &ivFreezeStore{mem: mem, h: sha256.New()}
	c, err := dpram.Setup(db, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	armIVFreeze(s, c)
	got := ivFrozenWorkload(t, s, rng.New(1007), c.Access)
	if got != golden {
		t.Fatalf("seeded encrypted DP-RAM run drifted:\n got %s\nwant %s\n(an IV draw moved, a ciphertext byte changed, or an op reordered)", got, golden)
	}
}

// TestIVFreezePathORAMEncrypted pins the encrypted Path ORAM steady state:
// per-slot IV prefixes (see the file comment for why not full slots) plus
// addresses and returned records.
func TestIVFreezePathORAMEncrypted(t *testing.T) {
	const golden = "a3f05200da106b7da97fa8ae33da6a23991065285a6ba8dbf6445b9b0f3e848a"
	db, err := block.PatternDatabase(freezeN, freezeBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	opts := pathoram.Options{Rand: rng.New(42), Key: crypto.KeyFromSeed(7)}
	slots, bs := pathoram.TreeShape(freezeN, freezeBlockSize, opts)
	mem, err := store.NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	s := &ivFreezeStore{mem: mem, h: sha256.New(), ivOnly: true}
	o, err := pathoram.Setup(db, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	armIVFreeze(s, o)
	got := ivFrozenWorkload(t, s, rng.New(1007), o.Access)
	if got != golden {
		t.Fatalf("seeded encrypted Path ORAM run drifted:\n got %s\nwant %s\n(an IV draw moved or an op reordered)", got, golden)
	}
}

// TestIVFreezeBucketRAMEncrypted pins the encrypted BucketRAM steady state
// (the Appendix E overwrite phase, which the batch kernels rewrite): full
// upload ciphertexts for a fixed overlapping repertoire.
func TestIVFreezeBucketRAMEncrypted(t *testing.T) {
	const golden = "7bb6350bb1729f0786b85a4065eeb1712a2190f3048ab3bf61428e5806295884"
	const (
		bBuckets = 48
		bNodes   = 64
		bSize    = 3
	)
	buckets := make([][]int, bBuckets)
	for i := range buckets {
		buckets[i] = []int{i % bNodes, (i*7 + 3) % bNodes, (i*13 + 5) % bNodes}
	}
	initial := make([]block.Block, bNodes)
	for a := range initial {
		initial[a] = block.Pattern(uint64(a), freezeBlockSize)
	}
	mem, err := store.NewMem(bNodes, crypto.CiphertextSize(freezeBlockSize))
	if err != nil {
		t.Fatal(err)
	}
	s := &ivFreezeStore{mem: mem, h: sha256.New()}
	r, err := dpram.NewBucketRAM(s, buckets, initial, freezeBlockSize,
		dpram.BucketOptions{Rand: rng.New(42), Key: crypto.KeyFromSeed(7)})
	if err != nil {
		t.Fatal(err)
	}
	armIVFreeze(s, r)
	src := rng.New(1007)
	for k := 0; k < freezeQueries; k++ {
		bi := src.Intn(bBuckets)
		var update func([]block.Block)
		if src.Intn(4) == 0 {
			pat := block.Pattern(uint64(k), freezeBlockSize)
			update = func(nodes []block.Block) { copy(nodes[0], pat) }
		}
		contents, err := r.Access(bi, update)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range contents {
			s.h.Write(b)
		}
	}
	if got := hex.EncodeToString(s.h.Sum(nil)); got != golden {
		t.Fatalf("seeded encrypted BucketRAM run drifted:\n got %s\nwant %s\n(an IV draw moved, a ciphertext byte changed, or an op reordered)", got, golden)
	}
}
