package dpstore

// Transport benchmarks: the same construction hot paths driven batched and
// per-block against an in-memory server and a real TCP loopback server.
// The roundtrips/op metric is the headline: batching collapses a query's
// fixed, privacy-independent address set into one frame per direction.
// Numbers are recorded in EXPERIMENTS.md §Transport.

import (
	"net"
	"testing"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

const transportN = 1 << 10

func benchRemote(b *testing.B, slots, blockSize int) *store.Remote {
	b.Helper()
	backing, err := store.NewMem(slots, blockSize)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go store.Serve(ln, backing) //nolint:errcheck
	r, err := store.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	return r
}

// rawReadBench measures a fixed 64-address read through srv's batch view.
func rawReadBench(b *testing.B, srv store.Server) {
	b.Helper()
	batch := store.AsBatch(srv)
	addrs := make([]int, 64)
	for i := range addrs {
		addrs[i] = (i * 17) % transportN
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batch.ReadBatch(addrs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportMemRead64Batched(b *testing.B) {
	b.ReportAllocs()
	m, err := store.NewMem(transportN, block.DefaultSize)
	if err != nil {
		b.Fatal(err)
	}
	rawReadBench(b, m)
}

func BenchmarkTransportMemRead64PerBlock(b *testing.B) {
	b.ReportAllocs()
	m, err := store.NewMem(transportN, block.DefaultSize)
	if err != nil {
		b.Fatal(err)
	}
	rawReadBench(b, store.PerBlock(m))
}

func BenchmarkTransportRemoteRead64Batched(b *testing.B) {
	b.ReportAllocs()
	rawReadBench(b, benchRemote(b, transportN, block.DefaultSize))
}

func BenchmarkTransportRemoteRead64PerBlock(b *testing.B) {
	b.ReportAllocs()
	rawReadBench(b, store.PerBlock(benchRemote(b, transportN, block.DefaultSize)))
}

// dpramRemoteBench measures a full DP-RAM access over loopback, reporting
// real wire round trips per access.
func dpramRemoteBench(b *testing.B, perBlock bool) {
	b.ReportAllocs()
	db, err := block.PatternDatabase(transportN, block.DefaultSize)
	if err != nil {
		b.Fatal(err)
	}
	opts := dpram.Options{Rand: rng.New(1), Key: crypto.KeyFromSeed(1)}
	remote := benchRemote(b, transportN, dpram.ServerBlockSize(block.DefaultSize, opts))
	var srv store.Server = remote
	if perBlock {
		srv = store.PerBlock(remote)
	}
	c, err := dpram.Setup(db, srv, opts)
	if err != nil {
		b.Fatal(err)
	}
	base := remote.RoundTrips()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(i % transportN); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(remote.RoundTrips()-base)/float64(b.N), "roundtrips/op")
}

func BenchmarkTransportDPRAMRemoteBatched(b *testing.B)  { dpramRemoteBench(b, false) }
func BenchmarkTransportDPRAMRemotePerBlock(b *testing.B) { dpramRemoteBench(b, true) }

// pathoramRemoteBench does the same for Path ORAM, whose per-access block
// count is Θ(log n) rather than O(1).
func pathoramRemoteBench(b *testing.B, perBlock bool) {
	b.ReportAllocs()
	db, err := block.PatternDatabase(transportN, block.DefaultSize)
	if err != nil {
		b.Fatal(err)
	}
	opts := pathoram.Options{Rand: rng.New(1), Key: crypto.KeyFromSeed(1)}
	slots, bs := pathoram.TreeShape(transportN, block.DefaultSize, opts)
	remote := benchRemote(b, slots, bs)
	var srv store.Server = remote
	if perBlock {
		srv = store.PerBlock(remote)
	}
	o, err := pathoram.Setup(db, srv, opts)
	if err != nil {
		b.Fatal(err)
	}
	base := remote.RoundTrips()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Read(i % transportN); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(remote.RoundTrips()-base)/float64(b.N), "roundtrips/op")
}

func BenchmarkTransportPathORAMRemoteBatched(b *testing.B)  { pathoramRemoteBench(b, false) }
func BenchmarkTransportPathORAMRemotePerBlock(b *testing.B) { pathoramRemoteBench(b, true) }
