package dpstore

// Transcript-freeze regression tests: the exact (op, address) server view
// of a seeded DP-RAM and Path ORAM run, pinned as a SHA-256 golden. The
// zero-allocation pass (pooled wire buffers, block slabs, scheme scratch
// reuse) must not move a single rng draw or reorder a single server
// operation — these goldens were captured BEFORE the pass and assert the
// transcripts stayed bit-identical after it. They extend the
// TestBatchedAndPerBlockAgree discipline with an absolute anchor: agreement
// tests catch batched-vs-per-block divergence, the freeze catches both
// sides drifting together.
//
// The hash covers the full per-operation transcript (trace.Transcript.Key:
// every download/upload with its address, in order) AND every query's
// returned record bytes, so a scratch-reuse bug that corrupts returned data
// without touching the trace is caught too.

import (
	"crypto/sha256"
	"encoding/hex"
	"net"
	"testing"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/proxy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/trace"
	"dpstore/internal/workload"
)

// freezeN and freezeQueries shape the frozen workload: large enough to
// exercise stash churn and path reuse, small enough to run in milliseconds.
const (
	freezeN         = 64
	freezeBlockSize = 16
	freezeQueries   = 200
)

// frozenWorkload drives q mixed seeded queries against access, feeding the
// returned record bytes and the recorded transcript into one hash.
func frozenWorkload(t *testing.T, rec *trace.Recorder, src *rng.Source,
	access func(q workload.Query) (block.Block, error)) string {
	t.Helper()
	h := sha256.New()
	for k := 0; k < freezeQueries; k++ {
		q := workload.Query{Index: src.Intn(freezeN), Op: workload.Read}
		if src.Intn(4) == 0 { // every 4th query is a write, on average
			q.Op = workload.Write
			q.Data = block.Pattern(uint64(k), freezeBlockSize)
		}
		got, err := access(q)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(got)
	}
	h.Write([]byte(rec.Transcript().Key()))
	return hex.EncodeToString(h.Sum(nil))
}

// TestTranscriptFreezeDPRAM pins the seeded DP-RAM transcript captured
// before the zero-allocation pass.
func TestTranscriptFreezeDPRAM(t *testing.T) {
	const golden = "34a289f67a900305767d3680bea4f5f2702f279f71adf6c9992e214e78669afd"
	db, err := block.PatternDatabase(freezeN, freezeBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := store.NewMem(freezeN, dpram.ServerBlockSize(freezeBlockSize, dpram.Options{DisableEncryption: true}))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(mem)
	c, err := dpram.Setup(db, rec, dpram.Options{Rand: rng.New(42), DisableEncryption: true})
	if err != nil {
		t.Fatal(err)
	}
	got := frozenWorkload(t, rec, rng.New(1007), c.Access)
	if got != golden {
		t.Fatalf("seeded DP-RAM transcript drifted:\n got %s\nwant %s\n(an rng draw moved or a returned record changed)", got, golden)
	}
}

// TestTranscriptFreezePathORAM pins the seeded Path ORAM transcript
// captured before the zero-allocation pass. Encryption is disabled so
// returned bytes are deterministic; the trace itself never depends on it.
func TestTranscriptFreezePathORAM(t *testing.T) {
	const golden = "c8b6ffa1ed6cac64f846e6590c7b153f273598bea76e4c828a61841903282709"
	db, err := block.PatternDatabase(freezeN, freezeBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	opts := pathoram.Options{Rand: rng.New(42), DisableEncryption: true}
	slots, bs := pathoram.TreeShape(freezeN, freezeBlockSize, opts)
	mem, err := store.NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(mem)
	o, err := pathoram.Setup(db, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := frozenWorkload(t, rec, rng.New(1007), o.Access)
	if got != golden {
		t.Fatalf("seeded Path ORAM transcript drifted:\n got %s\nwant %s\n(an rng draw moved or a returned record changed)", got, golden)
	}
}

// TestTranscriptFreezePartitionedDPRAM pins the P=4 partitioned DP-RAM
// server view: the frozen workload routed over four independent scheme
// instances (logical record u → partition u mod 4), each over its own
// recorded store with its own coin stream. The hash covers every returned
// record byte plus all four per-partition transcripts in partition order,
// so a drift in ANY partition's trace — or in the routing itself, which
// would move requests between partitions — trips the golden.
func TestTranscriptFreezePartitionedDPRAM(t *testing.T) {
	const golden = "cf9f05344a9e2f515c9cda0cfd25a7210cf7039757c89911799e6329232cd530"
	const parts = 4
	proxies := make([]*proxy.Proxy, parts)
	recs := make([]*trace.Recorder, parts)
	for i := range proxies {
		ni := store.ShardSlots(freezeN, parts, i)
		db, err := block.PatternDatabase(ni, freezeBlockSize)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := store.NewMem(ni, dpram.ServerBlockSize(freezeBlockSize, dpram.Options{DisableEncryption: true}))
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = trace.NewRecorder(mem)
		// The daemon's per-partition seed mixing: partition 0 reduces to
		// the plain seed, siblings draw decorrelated streams.
		c, err := dpram.Setup(db, recs[i], dpram.Options{
			Rand:              rng.New(int64(uint64(42) ^ uint64(i)*0xbf58476d1ce4e5b9)),
			DisableEncryption: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = proxy.New(c, proxy.Options{})
	}
	pt, err := proxy.NewPartitioned(proxies)
	if err != nil {
		t.Fatal(err)
	}
	defer pt.Close() //nolint:errcheck

	h := sha256.New()
	src := rng.New(1007)
	for k := 0; k < freezeQueries; k++ {
		q := workload.Query{Index: src.Intn(freezeN), Op: workload.Read}
		if src.Intn(4) == 0 {
			q.Op = workload.Write
			q.Data = block.Pattern(uint64(k), freezeBlockSize)
		}
		got, err := pt.Access(q)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(got)
	}
	for _, rec := range recs {
		h.Write([]byte(rec.Transcript().Key()))
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != golden {
		t.Fatalf("partitioned DP-RAM transcript drifted:\n got %s\nwant %s\n(a partition's trace moved, or the routing changed)", got, golden)
	}
}

// TestTranscriptFreezeRemote runs the frozen DP-RAM workload over the real
// TCP transport (Remote → serve loop → Mem) and asserts the same golden as
// the in-process run: the wire codecs and buffer pooling are transparent to
// the transcript AND to every returned byte. The Recorder sits behind the
// daemon, so this exercises encode → frame → decode end to end.
func TestTranscriptFreezeRemote(t *testing.T) {
	const golden = "34a289f67a900305767d3680bea4f5f2702f279f71adf6c9992e214e78669afd"
	db, err := block.PatternDatabase(freezeN, freezeBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := store.NewMem(freezeN, dpram.ServerBlockSize(freezeBlockSize, dpram.Options{DisableEncryption: true}))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(mem)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go store.Serve(ln, rec) //nolint:errcheck
	remote, err := store.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := dpram.Setup(db, remote, dpram.Options{Rand: rng.New(42), DisableEncryption: true})
	if err != nil {
		t.Fatal(err)
	}
	got := frozenWorkload(t, rec, rng.New(1007), c.Access)
	if got != golden {
		t.Fatalf("seeded DP-RAM transcript over TCP drifted:\n got %s\nwant %s", got, golden)
	}
}
