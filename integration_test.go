package dpstore

// End-to-end integration tests tying the layers together: constructions
// over real TCP sockets, transcript-structure checks through the trace
// recorder, and multi-client concurrency against one server process.

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/core/dpkvs"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/trace"
)

// startServer spins up a TCP block server and returns its address.
func startServer(t *testing.T, slots, blockSize int) string {
	t.Helper()
	backing, err := store.NewMem(slots, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go store.Serve(ln, backing) //nolint:errcheck
	return ln.Addr().String()
}

// TestDPKVSOverTCP runs the full DP-KVS stack against a networked server:
// the complete deployment path of cmd/blockstored + cmd/dpkv.
func TestDPKVSOverTCP(t *testing.T) {
	opts := dpkvs.Options{
		Capacity:  256,
		ValueSize: 32,
		Rand:      rng.New(1),
		Key:       crypto.KeyFromSeed(1),
	}
	slots, bs, err := dpkvs.RequiredServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, slots, bs)
	remote, err := store.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	kv, err := dpkvs.Setup(remote, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := kv.Put(fmt.Sprintf("user-%03d", i), block.Pattern(uint64(i), 32)); err != nil {
			t.Fatalf("put %d over TCP: %v", i, err)
		}
	}
	for i := 0; i < 64; i++ {
		v, ok, err := kv.Get(fmt.Sprintf("user-%03d", i))
		if err != nil || !ok {
			t.Fatalf("get %d over TCP: err=%v ok=%v", i, err, ok)
		}
		if !block.CheckPattern(v, uint64(i)) {
			t.Fatalf("value %d corrupted in transit", i)
		}
	}
	if _, ok, _ := kv.Get("user-999"); ok {
		t.Fatal("phantom key over TCP")
	}
	if found, err := kv.Delete("user-000"); err != nil || !found {
		t.Fatalf("delete over TCP: %v %v", err, found)
	}
}

// TestDPRAMTranscriptStructure verifies the exact adversary-view shape of
// Algorithm 3 through the trace recorder: every query is download,
// download, upload, with the second download and the upload at the same
// address (the overwrite pair (o_j, o_j)).
func TestDPRAMTranscriptStructure(t *testing.T) {
	const n = 64
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := store.NewMem(n, crypto.CiphertextSize(16))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(srv)
	c, err := dpram.Setup(db, rec, dpram.Options{Rand: rng.New(2), Key: crypto.KeyFromSeed(2)})
	if err != nil {
		t.Fatal(err)
	}
	rec.Reset()
	src := rng.New(3)
	const queries = 200
	for i := 0; i < queries; i++ {
		rec.Mark()
		idx := src.Intn(n)
		if i%3 == 0 {
			if _, err := c.Write(idx, block.Pattern(uint64(i), 16)); err != nil {
				t.Fatal(err)
			}
		} else if _, err := c.Read(idx); err != nil {
			t.Fatal(err)
		}
	}
	qs := rec.Queries()
	if len(qs) != queries {
		t.Fatalf("recorded %d queries, want %d", len(qs), queries)
	}
	for i, q := range qs {
		if len(q) != 3 {
			t.Fatalf("query %d has %d operations, want 3: %s", i, len(q), q.Key())
		}
		if q[0].Op != trace.OpDownload || q[1].Op != trace.OpDownload || q[2].Op != trace.OpUpload {
			t.Fatalf("query %d has wrong op pattern: %s", i, q.Key())
		}
		if q[1].Addr != q[2].Addr {
			t.Fatalf("query %d: overwrite pair mismatched: %s", i, q.Key())
		}
	}
}

// TestManyClientsOneServer runs several independent DP-RAM clients, each
// with its own region-free database, against one shared TCP server split
// into disjoint address ranges via an offset shim — exercising server
// concurrency under real construction traffic.
func TestManyClientsOneServer(t *testing.T) {
	const clients = 4
	const n = 64
	opts := dpram.Options{Rand: rng.New(4)}
	bs := dpram.ServerBlockSize(16, opts)
	addr := startServer(t, clients*n, bs)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			remote, err := store.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer remote.Close()
			region := &offsetServer{inner: remote, offset: cl * n, size: n}
			db, err := block.PatternDatabase(n, 16)
			if err != nil {
				errs <- err
				return
			}
			c, err := dpram.Setup(db, region, dpram.Options{
				Rand: rng.New(int64(100 + cl)),
				Key:  crypto.KeyFromSeed(uint64(cl)),
			})
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 100; i++ {
				got, err := c.Read(i % n)
				if err != nil {
					errs <- err
					return
				}
				if !block.CheckPattern(got, uint64(i%n)) {
					errs <- fmt.Errorf("client %d: record %d corrupted", cl, i%n)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// offsetServer exposes a window [offset, offset+size) of a larger server —
// the standard multi-tenant slicing of one physical store.
type offsetServer struct {
	inner  store.Server
	offset int
	size   int
}

func (o *offsetServer) Download(addr int) (block.Block, error) {
	if addr < 0 || addr >= o.size {
		return nil, store.ErrAddr
	}
	return o.inner.Download(o.offset + addr)
}

func (o *offsetServer) Upload(addr int, b block.Block) error {
	if addr < 0 || addr >= o.size {
		return store.ErrAddr
	}
	return o.inner.Upload(o.offset+addr, b)
}

func (o *offsetServer) Size() int      { return o.size }
func (o *offsetServer) BlockSize() int { return o.inner.BlockSize() }
