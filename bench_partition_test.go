package dpstore

// Partitioned-scheme throughput benchmarks: 16 closed-loop client
// sessions over ONE tenant striped across P independent DP-RAM instances,
// every instance running over its own store.Offset window of the SAME
// disk-like backend (1 ms reads, 2 ms writes, concurrent round trips
// overlap — queue depth > 1).
//
// A single scheme instance is one logical party: its state serializes
// every access, so adding clients cannot push throughput past ~1/readRTT
// even with the write-behind pipeline (see bench_proxy_test.go). What
// partitioning buys is P of those serial parties running concurrently —
// client u mod P routing keeps each party's trace independently oblivious
// — so closed-loop throughput at sufficient client count scales
// near-linearly in P until the device or the client pool saturates.
// Numbers are recorded in EXPERIMENTS.md §Partitioning.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/proxy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

// benchPartitionedClosedLoop drives b.N accesses from `clients` concurrent
// sessions through a P-way partitioned DP-RAM over one shared device.
func benchPartitionedClosedLoop(b *testing.B, parts, clients int) {
	b.Helper()
	opts := dpram.Options{Key: crypto.KeyFromSeed(1)}
	mem, err := store.NewMem(proxyBenchRecords, dpram.ServerBlockSize(proxyBenchRS, opts))
	if err != nil {
		b.Fatal(err)
	}
	// One physical device for ALL partitions: per-call sleeps with no lock
	// held, so the P schedulers' round trips overlap like a real disk or
	// network store serving a deep queue.
	device := store.AsBatch(&latencyBackend{inner: mem, read: proxyReadRTT, write: proxyWriteRTT})

	proxies := make([]*proxy.Proxy, parts)
	base := 0
	for i := 0; i < parts; i++ {
		ni := store.ShardSlots(proxyBenchRecords, parts, i)
		db, err := block.NewDatabase(ni, proxyBenchRS)
		if err != nil {
			b.Fatal(err)
		}
		win, err := store.NewOffset(device, base, ni)
		if err != nil {
			b.Fatal(err)
		}
		base += ni
		pipe := proxy.NewPipeline(win)
		o := opts
		// The daemon's per-partition seed mixing: decorrelated coin streams.
		o.Rand = rng.New(int64(uint64(1) ^ uint64(i)*0xbf58476d1ce4e5b9))
		scheme, err := dpram.Setup(db, pipe, o)
		if err != nil {
			b.Fatal(err)
		}
		proxies[i] = proxy.New(scheme, proxy.Options{Pipeline: pipe})
	}
	pt, err := proxy.NewPartitioned(proxies)
	if err != nil {
		b.Fatal(err)
	}
	defer pt.Close() //nolint:errcheck
	if err := pt.Flush(); err != nil {
		b.Fatal(err)
	}

	var wg sync.WaitGroup
	perClient := b.N/clients + 1
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				if _, err := pt.Read(rnd.Intn(proxyBenchRecords)); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkPartitionDiskLike: the P ∈ {1, 2, 4} striping sweep at 16
// clients over the seek/seek+sync backend. The P=1 row is the same
// deployment shape as BenchmarkProxyDiskLike's pipelined/16-client row
// (Offset window degenerate at [0, n)), anchoring the sweep to the
// single-scheme baseline.
func BenchmarkPartitionDiskLike(b *testing.B) {
	b.ReportAllocs()
	const clients = 16
	for _, parts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parts=%d/clients=%d", parts, clients), func(b *testing.B) {
			b.ReportAllocs()
			benchPartitionedClosedLoop(b, parts, clients)
		})
	}
}
