module dpstore

go 1.24
