package exp

import (
	"errors"
	"fmt"
	"math"

	"dpstore/internal/baseline/linearpir"
	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/baseline/strawman"
	"dpstore/internal/block"
	"dpstore/internal/core/dpir"
	"dpstore/internal/core/dpkvs"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/privacy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func init() {
	register(Experiment{
		ID:         "E11",
		Title:      "Head-to-head: every scheme at one database size",
		Reproduces: "Section 1 comparison narrative",
		Run:        runE11,
	})
	register(Experiment{
		ID:         "E13",
		Title:      "Round trips: recursive Path ORAM vs DP-RAM",
		Reproduces: "Section 1 discussion of Root ORAM [50]",
		Run:        runE13,
	})
}

func runE11(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 10
	}
	nOps := trials(cfg, 500)
	lgn := math.Log(float64(n))
	t := &Table{
		Title: fmt.Sprintf("E11 — all schemes at n = %d records (measured over %d ops)", n, nOps),
		Note: "The paper's thesis in one table: constant-overhead access costs ε = Θ(log n); " +
			"stronger privacy costs Θ(log n) overhead (ORAM) or Θ(n) server work (PIR).",
		Header: []string{"scheme", "ops/query", "roundtrips", "client blocks", "ε", "δ", "errors"},
	}

	db, err := block.PatternDatabase(n, block.DefaultSize)
	if err != nil {
		return nil, err
	}

	// Plaintext access.
	{
		srv, err := store.NewMemFrom(db)
		if err != nil {
			return nil, err
		}
		counting := store.NewCounting(srv)
		w := src.Split()
		for i := 0; i < nOps; i++ {
			if _, err := counting.Download(w.Intn(n)); err != nil {
				return nil, err
			}
		}
		t.AddRow("plaintext", ff(float64(counting.Stats().Ops())/float64(nOps)),
			"1", "0", "∞ (none)", "-", "0")
	}

	// DP-IR (Algorithm 1) at ε = ln n, α = 0.1.
	{
		srv, err := store.NewMemFrom(db)
		if err != nil {
			return nil, err
		}
		counting := store.NewCounting(srv)
		c, err := dpir.New(counting, dpir.Options{Epsilon: lgn, Alpha: 0.1, Rand: src.Split()})
		if err != nil {
			return nil, err
		}
		bottoms := 0
		w := src.Split()
		for i := 0; i < nOps; i++ {
			if _, err := c.Query(w.Intn(n)); errors.Is(err, dpir.ErrBottom) {
				bottoms++
			} else if err != nil {
				return nil, err
			}
		}
		t.AddRow("DP-IR (α=0.1)", ff(float64(counting.Stats().Ops())/float64(nOps)),
			"1", "0", ff(c.AchievedEps()), "0", fmt.Sprintf("%.1f%%", 100*float64(bottoms)/float64(nOps)))
	}

	// Strawman (insecure!).
	{
		srv, err := store.NewMemFrom(db)
		if err != nil {
			return nil, err
		}
		counting := store.NewCounting(srv)
		c, err := strawman.New(counting, src.Split())
		if err != nil {
			return nil, err
		}
		w := src.Split()
		for i := 0; i < nOps; i++ {
			if _, err := c.Query(w.Intn(n)); err != nil {
				return nil, err
			}
		}
		t.AddRow("strawman (§4, broken)", ff(float64(counting.Stats().Ops())/float64(nOps)),
			"1", "0", ff(lgn), ff4(strawman.DeltaFloor(n)), "0")
	}

	// DP-RAM.
	{
		opts := dpram.Options{Rand: src.Split(), Key: crypto.KeyFromSeed(11)}
		srv, err := store.NewMem(n, dpram.ServerBlockSize(block.DefaultSize, opts))
		if err != nil {
			return nil, err
		}
		counting := store.NewCounting(srv)
		c, err := dpram.Setup(db, counting, opts)
		if err != nil {
			return nil, err
		}
		counting.Reset()
		w := src.Split()
		for i := 0; i < nOps; i++ {
			if _, err := c.Read(w.Intn(n)); err != nil {
				return nil, err
			}
		}
		t.AddRow("DP-RAM", ff(float64(counting.Stats().Ops())/float64(nOps)),
			"2", fi(c.MaxStashSize()), "Θ(log n) [Thm 6.1]", "0", "0")
	}

	// DP-KVS.
	{
		opts := dpkvs.Options{Capacity: n, ValueSize: block.DefaultSize, Rand: src.Split(), Key: crypto.KeyFromSeed(12)}
		slots, bs, err := dpkvs.RequiredServer(opts)
		if err != nil {
			return nil, err
		}
		srv, err := store.NewMem(slots, bs)
		if err != nil {
			return nil, err
		}
		counting := store.NewCounting(srv)
		s, err := dpkvs.Setup(counting, opts)
		if err != nil {
			return nil, err
		}
		counting.Reset()
		w := src.Split()
		for i := 0; i < nOps; i++ {
			k := fmt.Sprintf("key-%05d", w.Intn(n))
			if i%2 == 0 {
				if err := s.Put(k, block.Pattern(uint64(i), block.DefaultSize)); err != nil {
					return nil, err
				}
			} else if _, _, err := s.Get(k); err != nil {
				return nil, err
			}
		}
		t.AddRow("DP-KVS", ff(float64(counting.Stats().Ops())/float64(nOps)),
			"8", fi(s.MaxClientBlocks()), "Θ(log n) [Thm 7.5]", "negl(n)", "0")
	}

	// Path ORAM.
	{
		opts := pathoram.Options{Rand: src.Split(), Key: crypto.KeyFromSeed(13)}
		slots, bs := pathoram.TreeShape(n, block.DefaultSize, opts)
		srv, err := store.NewMem(slots, bs)
		if err != nil {
			return nil, err
		}
		counting := store.NewCounting(srv)
		o, err := pathoram.Setup(db, counting, opts)
		if err != nil {
			return nil, err
		}
		counting.Reset()
		w := src.Split()
		for i := 0; i < nOps; i++ {
			if _, err := o.Read(w.Intn(n)); err != nil {
				return nil, err
			}
		}
		t.AddRow("Path ORAM", ff(float64(counting.Stats().Ops())/float64(nOps)),
			"2", fi(o.MaxStashSize()+n), "0", "negl(n)", "0")
	}

	// Recursive Path ORAM.
	{
		var counters []*store.Counting
		factory := func(level, slots, bs int) (store.Server, error) {
			m, err := store.NewMem(slots, bs)
			if err != nil {
				return nil, err
			}
			c := store.NewCounting(m)
			counters = append(counters, c)
			return c, nil
		}
		r, err := pathoram.SetupRecursive(db, factory, pathoram.RecursiveOptions{
			Inner: pathoram.Options{Rand: src.Split(), Key: crypto.KeyFromSeed(14)},
		})
		if err != nil {
			return nil, err
		}
		for _, c := range counters {
			c.Reset()
		}
		w := src.Split()
		for i := 0; i < nOps; i++ {
			if _, err := r.Read(w.Intn(n)); err != nil {
				return nil, err
			}
		}
		var totalOps int64
		for _, c := range counters {
			totalOps += c.Stats().Ops()
		}
		t.AddRow("Path ORAM (recursive)", ff(float64(totalOps)/float64(nOps)),
			ff(float64(r.RoundTrips())/float64(nOps)), fi(r.ClientState()), "0", "negl(n)", "0")
	}

	// Trivial PIR.
	{
		srv, err := store.NewMemFrom(db)
		if err != nil {
			return nil, err
		}
		counting := store.NewCounting(srv)
		p := linearpir.NewTrivial(counting)
		w := src.Split()
		q := nOps / 10
		if q == 0 {
			q = 1
		}
		for i := 0; i < q; i++ {
			if _, err := p.Query(w.Intn(n)); err != nil {
				return nil, err
			}
		}
		t.AddRow("trivial PIR", ff(float64(counting.Stats().Ops())/float64(q)),
			"1", "0", "0", "0", "0")
	}

	// 2-server XOR PIR.
	{
		s0, err := store.NewMemFrom(db)
		if err != nil {
			return nil, err
		}
		s1, err := store.NewMemFrom(db)
		if err != nil {
			return nil, err
		}
		c0, c1 := store.NewCounting(s0), store.NewCounting(s1)
		p, err := linearpir.NewTwoServerXOR(c0, c1, src.Split())
		if err != nil {
			return nil, err
		}
		w := src.Split()
		q := nOps / 10
		if q == 0 {
			q = 1
		}
		for i := 0; i < q; i++ {
			if _, err := p.Query(w.Intn(n)); err != nil {
				return nil, err
			}
		}
		perServer := float64(c0.Stats().Ops()+c1.Stats().Ops()) / (2 * float64(q))
		t.AddRow("2-server XOR PIR", ff(perServer)+"/server", "1", "0", "0 (1 corrupt)", "0", "0")
	}

	return []*Table{t}, nil
}

func runE13(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	t := &Table{
		Title: "E13 — round trips per access: recursive Path ORAM vs DP-RAM",
		Note: "The Section 1 claim against Root ORAM [50]: outsourcing the position map costs " +
			"Θ(log n) round trips; DP-RAM needs 2 with O(Φ(n)) client blocks.",
		Header: []string{"n", "ORAM levels", "ORAM roundtrips/access", "ORAM client blocks", "DP-RAM roundtrips", "DP-RAM client blocks", "bound log_c((1-α)n/e^ε), ε=ln n"},
	}
	for _, n := range sizes(cfg, 1<<8, 1<<10, 1<<12, 1<<14) {
		db, err := block.PatternDatabase(n, 16)
		if err != nil {
			return nil, err
		}
		r, err := pathoram.SetupRecursive(db, pathoram.MemFactory, pathoram.RecursiveOptions{
			Pack:   4,
			Cutoff: 8,
			Inner:  pathoram.Options{Rand: src.Split(), Key: crypto.KeyFromSeed(uint64(n))},
		})
		if err != nil {
			return nil, err
		}
		nOps := trials(cfg, 200)
		w := src.Split()
		for i := 0; i < nOps; i++ {
			if _, err := r.Read(w.Intn(n)); err != nil {
				return nil, err
			}
		}
		rtPerAccess := float64(r.RoundTrips()) / float64(nOps)

		opts := dpram.Options{Rand: src.Split(), Key: crypto.KeyFromSeed(uint64(n) + 1)}
		db2, err := block.PatternDatabase(n, 16)
		if err != nil {
			return nil, err
		}
		srv, err := store.NewMem(n, dpram.ServerBlockSize(16, opts))
		if err != nil {
			return nil, err
		}
		c, err := dpram.Setup(db2, srv, opts)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nOps; i++ {
			if _, err := c.Read(w.Intn(n)); err != nil {
				return nil, err
			}
		}
		t.AddRow(fi(n), fi(r.Levels()), ff(rtPerAccess), fi(r.ClientState()),
			"2", fi(c.MaxStashSize()),
			ff(privacy.DPRAMLowerBound(n, c.MaxStashSize()+1, math.Log(float64(n)), 0)))
	}
	return []*Table{t}, nil
}
