package exp

import (
	"fmt"
	"math"

	"dpstore/internal/analysis"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/exact"
	"dpstore/internal/privacy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "E5",
		Title:      "DP-RAM: constant cost and Φ(n)-bounded client stash",
		Reproduces: "Theorem 6.1 / Algorithms 2–3 / Lemma D.1",
		Run:        runE5,
	})
	register(Experiment{
		ID:         "E6",
		Title:      "DP-RAM empirical privacy at small n",
		Reproduces: "Theorem 6.1 privacy analysis (Section 6.1–6.5)",
		Run:        runE6,
	})
	register(Experiment{
		ID:         "E7",
		Title:      "DP-RAM lower-bound landscape log_c((1−α)n/e^ε)",
		Reproduces: "Theorem 3.7",
		Run:        runE7,
	})
}

func runE5(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	t := &Table{
		Title: "E5 — DP-RAM (Algorithms 2–3): exact per-query cost and stash behaviour",
		Note: "Theorem 6.1: 3 blocks and 2 round trips per query at every n; " +
			"Lemma D.1: stash stays O(Φ(n)) w.h.p. (Φ = ⌈lg n·lg lg n⌉ here).",
		Header: []string{"n", "Φ(n)", "down/query", "up/query", "roundtrips", "stash avg", "stash max", "3Φ ceiling"},
	}
	for _, n := range sizes(cfg, 1<<10, 1<<12, 1<<14, 1<<16) {
		db, err := block.PatternDatabase(n, block.DefaultSize)
		if err != nil {
			return nil, err
		}
		opts := dpram.Options{Rand: src.Split(), Key: crypto.KeyFromSeed(uint64(n))}
		srv, err := store.NewMem(n, dpram.ServerBlockSize(block.DefaultSize, opts))
		if err != nil {
			return nil, err
		}
		counting := store.NewCounting(srv)
		c, err := dpram.Setup(db, counting, opts)
		if err != nil {
			return nil, err
		}
		counting.Reset()
		q := trials(cfg, 10000)
		w := src.Split()
		var stashSum float64
		for i := 0; i < q; i++ {
			idx := w.Intn(n)
			if w.Bernoulli(0.3) {
				if _, err := c.Write(idx, block.Pattern(uint64(i), block.DefaultSize)); err != nil {
					return nil, err
				}
			} else {
				if _, err := c.Read(idx); err != nil {
					return nil, err
				}
			}
			stashSum += float64(c.StashSize())
		}
		st := counting.Stats()
		t.AddRow(fi(n), fi(c.StashParam()),
			ff(float64(st.Downloads)/float64(q)),
			ff(float64(st.Uploads)/float64(q)),
			"2",
			ff(stashSum/float64(q)), fi(c.MaxStashSize()), fi(3*c.StashParam()))
	}
	return []*Table{t}, nil
}

// e6Recorder captures (op, addr) pairs as a compact class key.
type e6Recorder struct {
	inner store.Server
	log   []byte
}

func (r *e6Recorder) Download(addr int) (block.Block, error) {
	b, err := r.inner.Download(addr)
	if err == nil {
		r.log = append(r.log, 'D', byte('0'+addr))
	}
	return b, err
}

func (r *e6Recorder) Upload(addr int, b block.Block) error {
	err := r.inner.Upload(addr, b)
	if err == nil {
		r.log = append(r.log, 'U', byte('0'+addr))
	}
	return err
}

func (r *e6Recorder) Size() int      { return r.inner.Size() }
func (r *e6Recorder) BlockSize() int { return r.inner.BlockSize() }

func runE6(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	const n = 4
	const phi = 2
	t := &Table{
		Title: fmt.Sprintf("E6 — DP-RAM ε at n = %d, p = %.2f (adjacent 2-query sequences, full transcript classes)", n, float64(phi)/n),
		Note: "ε exact is computed by exhaustive enumeration of the transcript Markov chain (internal/exact); " +
			"ε̂ is sampled from the production implementation. The Theorem 6.1 proof certifies " +
			"ε ≤ 3·ln(n²/p)+3·ln(n/p); one-sided mass 0 = pure DP.",
		Header: []string{"pair", "ε (exact)", "ε̂ (sampled)", "Thm 6.1 bound", "one-sided (exact)", "one-sided (sampled)"},
	}
	pairs := []struct {
		name string
		a, b workload.Sequence
	}{
		{"read idx differs", workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Read}},
			workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 2, Op: workload.Read}}},
		{"op differs", workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Read}},
			workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Write, Data: block.Pattern(9, block.DefaultSize)}}},
	}
	bound := privacy.DPRAMEpsUpperBound(n, float64(phi)/n)
	model := exact.NewDPRAM(n, phi)
	for _, pair := range pairs {
		exactRes := model.ComparePair(pair.a, pair.b)
		sample := func(s *rng.Source, seq workload.Sequence) func() string {
			db, _ := block.PatternDatabase(n, block.DefaultSize)
			return func() string {
				srv, _ := store.NewMem(n, block.DefaultSize)
				rec := &e6Recorder{inner: srv}
				c, err := dpram.Setup(db, rec, dpram.Options{
					Rand: s.Split(), StashParam: phi, DisableEncryption: true,
				})
				if err != nil {
					panic(err)
				}
				rec.log = nil
				for _, q := range seq {
					if _, err := c.Access(q); err != nil {
						panic(err)
					}
				}
				return string(rec.log)
			}
		}
		pe := analysis.SamplePair(sample(src.Split(), pair.a), sample(src.Split(), pair.b), trials(cfg, 150000))
		t.AddRow(pair.name, ff(exactRes.Eps), ff(pe.MaxRatioEps(30)), ff(bound),
			fg(exactRes.OneSided), fg(pe.OneSidedMass()))
	}
	return []*Table{t}, nil
}

func runE7(cfg Config) ([]*Table, error) {
	n := 1 << 20
	lgn := math.Log(float64(n))
	t := &Table{
		Title: fmt.Sprintf("E7 — Theorem 3.7 landscape at n = 2^20: required overhead log_c((1−α)n/e^ε)"),
		Note: "Two escape routes from the Ω(log n) ORAM bound: grow client storage c, or grow ε. " +
			"Our DP-RAM sits at (ε = Θ(log n), overhead 3); Path ORAM at (ε = 0, overhead 2Z·lg n).",
		Header: []string{"ε", "c = 2", "c = 16", "c = 1024", "remark"},
	}
	rows := []struct {
		eps    float64
		remark string
	}{
		{0, "oblivious (ORAM regime)"},
		{2, "constant ε"},
		{lgn / 2, "ε = ½·ln n"},
		{lgn, "ε = ln n — our DP-RAM (measured overhead 3)"},
		{2 * lgn, "ε = 2·ln n"},
	}
	for _, r := range rows {
		t.AddRow(ff(r.eps),
			ff(privacy.DPRAMLowerBound(n, 2, r.eps, 0)),
			ff(privacy.DPRAMLowerBound(n, 16, r.eps, 0)),
			ff(privacy.DPRAMLowerBound(n, 1024, r.eps, 0)),
			r.remark)
	}
	_ = cfg
	return []*Table{t}, nil
}
