// Package exp defines the reproduction experiments E1–E13 and the table
// renderer behind cmd/dpbench and EXPERIMENTS.md.
//
// The paper is a theory paper with no numbered tables or figures, so each
// experiment regenerates the quantity one of its theorems bounds and prints
// the measurement next to the analytic value (see DESIGN.md §4 for the
// index). Every experiment is deterministic given Config.Seed.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly.
	Seed int64
	// Quick shrinks database sizes and trial counts so the full suite runs
	// in seconds (used by benchmarks and smoke tests).
	Quick bool
}

// Table is one rendered result table. The json tags define the table's
// shape in dpbench -format json output (the BENCH_*.json file series).
type Table struct {
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return strings.TrimRight(sb.String(), " ")
	}
	fmt.Fprintf(w, "  %s\n", line(t.Header))
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "  %s\n", line(row))
	}
}

// mdCell escapes one table cell for GitHub-flavored markdown: a literal
// "|" would end the cell (silently shifting every column after it) and a
// newline would end the row, so both are neutralized. Applied to headers
// and cells; titles and notes only need the newline treatment (they are
// not table-structural) plus escaping of the emphasis markers that wrap
// them.
func mdCell(s string) string {
	s = strings.ReplaceAll(s, "|", `\|`)
	return strings.ReplaceAll(s, "\n", " ")
}

// mdProse escapes a title or note rendered inside **…** / _…_ emphasis.
func mdProse(s string) string {
	s = strings.ReplaceAll(s, "*", `\*`)
	s = strings.ReplaceAll(s, "_", `\_`)
	return strings.ReplaceAll(s, "\n", " ")
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table,
// used by dpbench -format=md to regenerate EXPERIMENTS.md sections.
// Cells are escaped so a "|" or newline in a value cannot break the
// table structure.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "**%s**\n\n", mdProse(t.Title))
	if t.Note != "" {
		fmt.Fprintf(w, "_%s_\n\n", mdProse(t.Note))
	}
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = mdCell(h)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, mdCell(c))
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
}

// Experiment is one reproduction unit.
type Experiment struct {
	ID         string
	Title      string
	Reproduces string
	Run        func(cfg Config) ([]*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware sort: E2 < E10.
		return idKey(out[i].ID) < idKey(out[j].ID)
	})
	return out
}

func idKey(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// --- formatting helpers ------------------------------------------------------

func fi(v int) string      { return fmt.Sprintf("%d", v) }
func f64(v int64) string   { return fmt.Sprintf("%d", v) }
func ff(v float64) string  { return fmt.Sprintf("%.2f", v) }
func ff4(v float64) string { return fmt.Sprintf("%.4f", v) }
func fg(v float64) string  { return fmt.Sprintf("%.3g", v) }

// sizes returns the experiment database sizes for the config.
func sizes(cfg Config, full ...int) []int {
	if !cfg.Quick {
		return full
	}
	out := make([]int, 0, len(full))
	for _, n := range full {
		if n > 1<<10 {
			n = 1 << 10
		}
		out = append(out, n)
	}
	// Deduplicate after clamping.
	seen := map[int]bool{}
	uniq := out[:0]
	for _, n := range out {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	return uniq
}

// trials scales a trial count down in quick mode.
func trials(cfg Config, full int) int {
	if cfg.Quick {
		q := full / 20
		if q < 200 {
			q = 200
		}
		return q
	}
	return full
}
