package exp

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registry holds %d experiments, want 15 (E1–E13 core + E14–E15 extensions)", len(all))
	}
	// IDs must be E1..E13 in numeric order.
	for i, e := range all {
		want := i + 1
		if idKey(e.ID) != want {
			t.Fatalf("position %d holds %s, want E%d", i, e.ID, want)
		}
		if e.Title == "" || e.Reproduces == "" || e.Run == nil {
			t.Fatalf("%s is underspecified", e.ID)
		}
	}
	if _, ok := ByID("E5"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID invented an experiment")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode; this
// is the end-to-end smoke test for the whole reproduction pipeline.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Header) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("%s produced an empty table", e.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("%s: row width %d != header width %d", e.ID, len(row), len(tb.Header))
					}
				}
				var sb strings.Builder
				tb.Render(&sb)
				if !strings.Contains(sb.String(), tb.Header[0]) {
					t.Fatalf("%s: render lost the header", e.ID)
				}
			}
		})
	}
}

// TestDeterministicAcrossRuns re-runs one statistical experiment with the
// same seed and demands identical tables.
func TestDeterministicAcrossRuns(t *testing.T) {
	render := func() string {
		e, _ := ByID("E5")
		tables, err := e.Run(Config{Seed: 42, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tb := range tables {
			tb.Render(&sb)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("E5 is not reproducible under a fixed seed")
	}
}

func TestSizesQuickClamp(t *testing.T) {
	got := sizes(Config{Quick: true}, 1<<8, 1<<12, 1<<16)
	if len(got) != 2 || got[0] != 1<<8 || got[1] != 1<<10 {
		t.Fatalf("quick sizes = %v", got)
	}
	full := sizes(Config{}, 1<<8, 1<<12)
	if len(full) != 2 || full[1] != 1<<12 {
		t.Fatalf("full sizes = %v", full)
	}
}

func TestTrialsScaling(t *testing.T) {
	if trials(Config{}, 1000) != 1000 {
		t.Fatal("full trials altered")
	}
	if v := trials(Config{Quick: true}, 100000); v != 5000 {
		t.Fatalf("quick trials = %d, want 5000", v)
	}
	if v := trials(Config{Quick: true}, 1000); v != 200 {
		t.Fatalf("quick floor = %d, want 200", v)
	}
}

// TestRenderMarkdownEscaping: values containing the characters that are
// structural in GitHub-flavored markdown — "|" ends a cell, "\n" ends a
// row, "*"/"_" toggle the emphasis wrapping titles and notes — must not
// break the rendered table: every line of the table body must keep the
// declared column count, and titles/notes must stay on one line.
func TestRenderMarkdownEscaping(t *testing.T) {
	tab := &Table{
		Title:  "hostile * title\nwith newline",
		Note:   "a note_with_underscores and a | pipe",
		Header: []string{"plain", "p|q", "multi\nline"},
	}
	tab.AddRow("1", "a|b", "x\ny")
	tab.AddRow("2", "`code|span`", "ok")
	var sb strings.Builder
	tab.RenderMarkdown(&sb)
	out := sb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var tableLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "| ") {
			tableLines = append(tableLines, l)
		}
	}
	if len(tableLines) != 2+len(tab.Rows) {
		t.Fatalf("markdown table has %d lines, want %d (a newline in a cell split a row?):\n%s",
			len(tableLines), 2+len(tab.Rows), out)
	}
	// Column count per line = number of UNESCAPED pipes minus one.
	cols := func(l string) int {
		n := 0
		for i := 0; i < len(l); i++ {
			if l[i] == '\\' {
				i++ // skip the escaped char
				continue
			}
			if l[i] == '|' {
				n++
			}
		}
		return n - 1
	}
	for i, l := range tableLines {
		if got := cols(l); got != len(tab.Header) {
			t.Fatalf("table line %d has %d columns, want %d (a | in a cell broke the row): %q",
				i, got, len(tab.Header), l)
		}
	}
	// Title and note must be intact single lines under their emphasis.
	if !strings.HasPrefix(lines[0], "**") || !strings.HasSuffix(lines[0], "**") {
		t.Fatalf("title line broken: %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "_") || !strings.HasSuffix(lines[2], "_") {
		t.Fatalf("note line broken: %q", lines[2])
	}
}

// TestRenderMarkdownAllExperiments: every table every experiment emits
// renders to a structurally valid markdown table at quick scale — the
// in-process half of the dpbench -format md smoke test.
func TestRenderMarkdownAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	cfg := Config{Seed: 1, Quick: true}
	for _, e := range All() {
		tables, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		for ti, tab := range tables {
			var sb strings.Builder
			tab.RenderMarkdown(&sb)
			for _, l := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
				if !strings.HasPrefix(l, "| ") {
					continue
				}
				n := 0
				for i := 0; i < len(l); i++ {
					if l[i] == '\\' {
						i++
						continue
					}
					if l[i] == '|' {
						n++
					}
				}
				if n-1 != len(tab.Header) {
					t.Fatalf("%s table %d: row has %d columns, want %d: %q", e.ID, ti, n-1, len(tab.Header), l)
				}
			}
		}
	}
}
