package exp

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registry holds %d experiments, want 15 (E1–E13 core + E14–E15 extensions)", len(all))
	}
	// IDs must be E1..E13 in numeric order.
	for i, e := range all {
		want := i + 1
		if idKey(e.ID) != want {
			t.Fatalf("position %d holds %s, want E%d", i, e.ID, want)
		}
		if e.Title == "" || e.Reproduces == "" || e.Run == nil {
			t.Fatalf("%s is underspecified", e.ID)
		}
	}
	if _, ok := ByID("E5"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID invented an experiment")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode; this
// is the end-to-end smoke test for the whole reproduction pipeline.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Header) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("%s produced an empty table", e.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("%s: row width %d != header width %d", e.ID, len(row), len(tb.Header))
					}
				}
				var sb strings.Builder
				tb.Render(&sb)
				if !strings.Contains(sb.String(), tb.Header[0]) {
					t.Fatalf("%s: render lost the header", e.ID)
				}
			}
		})
	}
}

// TestDeterministicAcrossRuns re-runs one statistical experiment with the
// same seed and demands identical tables.
func TestDeterministicAcrossRuns(t *testing.T) {
	render := func() string {
		e, _ := ByID("E5")
		tables, err := e.Run(Config{Seed: 42, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tb := range tables {
			tb.Render(&sb)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("E5 is not reproducible under a fixed seed")
	}
}

func TestSizesQuickClamp(t *testing.T) {
	got := sizes(Config{Quick: true}, 1<<8, 1<<12, 1<<16)
	if len(got) != 2 || got[0] != 1<<8 || got[1] != 1<<10 {
		t.Fatalf("quick sizes = %v", got)
	}
	full := sizes(Config{}, 1<<8, 1<<12)
	if len(full) != 2 || full[1] != 1<<12 {
		t.Fatalf("full sizes = %v", full)
	}
}

func TestTrialsScaling(t *testing.T) {
	if trials(Config{}, 1000) != 1000 {
		t.Fatal("full trials altered")
	}
	if v := trials(Config{Quick: true}, 100000); v != 5000 {
		t.Fatalf("quick trials = %d, want 5000", v)
	}
	if v := trials(Config{Quick: true}, 1000); v != 200 {
		t.Fatalf("quick floor = %d, want 200", v)
	}
}
