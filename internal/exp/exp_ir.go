package exp

import (
	"errors"
	"fmt"
	"math"

	"dpstore/internal/analysis"
	"dpstore/internal/baseline/strawman"
	"dpstore/internal/block"
	"dpstore/internal/core/dpir"
	"dpstore/internal/privacy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func init() {
	register(Experiment{
		ID:         "E1",
		Title:      "Errorless DP-IR floor: measured ops vs (1−δ)·n",
		Reproduces: "Theorem 3.3",
		Run:        runE1,
	})
	register(Experiment{
		ID:         "E2",
		Title:      "DP-IR with error: Algorithm 1 cost vs the Theorem 3.4 lower bound",
		Reproduces: "Theorems 3.4 and 5.1",
		Run:        runE2,
	})
	register(Experiment{
		ID:         "E3",
		Title:      "DP-IR construction: measured bandwidth, error rate and empirical ε",
		Reproduces: "Theorem 5.1 / Algorithm 1 / Appendix B",
		Run:        runE3,
	})
	register(Experiment{
		ID:         "E4",
		Title:      "Section 4 strawman: the distinguisher forcing δ ≥ (n−1)/n",
		Reproduces: "Section 4",
		Run:        runE4,
	})
	register(Experiment{
		ID:         "E12",
		Title:      "Multi-server DP-IR: one op per server at ε = ln(1+n/(D−1))",
		Reproduces: "Appendix C / Theorem C.1",
		Run:        runE12,
	})
}

func patternServer(n int) (*store.Counting, error) {
	db, err := block.PatternDatabase(n, block.DefaultSize)
	if err != nil {
		return nil, err
	}
	m, err := store.NewMemFrom(db)
	if err != nil {
		return nil, err
	}
	return store.NewCounting(m), nil
}

func runE1(cfg Config) ([]*Table, error) {
	t := &Table{
		Title:  "E1 — errorless DP-IR must scan: expected ops/query vs the (1−δ)·n bound",
		Note:   "Theorem 3.3: no privacy budget reduces the cost of an errorless DP-IR.",
		Header: []string{"n", "δ", "bound (1−δ)n", "measured ops/query", "ratio"},
	}
	for _, n := range sizes(cfg, 1<<10, 1<<12, 1<<14, 1<<16) {
		srv, err := patternServer(n)
		if err != nil {
			return nil, err
		}
		e := dpir.NewErrorless(srv)
		q := trials(cfg, 20)
		for i := 0; i < q; i++ {
			if _, err := e.Query(i % n); err != nil {
				return nil, err
			}
		}
		measured := float64(srv.Stats().Downloads) / float64(q)
		for _, delta := range []float64{0, math.Pow(2, -20)} {
			bound := privacy.DPIRErrorlessLowerBound(n, delta)
			t.AddRow(fi(n), fg(delta), ff(bound), ff(measured), ff(measured/bound))
		}
	}
	return []*Table{t}, nil
}

func runE2(cfg Config) ([]*Table, error) {
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 10
	}
	lgn := math.Log(float64(n))
	t := &Table{
		Title: fmt.Sprintf("E2 — DP-IR cost landscape at n = %d: K = ⌈(1−α)n/(e^ε−1)⌉ vs Ω((1−α−δ)n/e^ε)", n),
		Note: "Shape check: the construction tracks the lower bound within a constant factor at every ε; " +
			"cost collapses from Θ(n) to O(1) exactly when ε reaches Θ(log n).",
		Header: []string{"ε", "α", "lower bound", "K (Alg 1)", "K/bound", "achieved ε"},
	}
	for _, eps := range []float64{1, lgn / 2, lgn, 2 * lgn} {
		for _, alpha := range []float64{0.01, 0.10, 0.25} {
			k := privacy.DPIRDownloadCount(n, eps, alpha)
			lb := privacy.DPIRLowerBound(n, eps, alpha, 0)
			ratio := "-" // vacuous once the bound drops below one block
			if lb >= 1 {
				ratio = ff(float64(k) / lb)
			}
			t.AddRow(ff(eps), ff(alpha), ff(lb), fi(k), ratio,
				ff(privacy.DPIRAchievedEps(n, k, alpha)))
		}
	}
	return []*Table{t}, nil
}

func runE3(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 10
	}
	cost := &Table{
		Title:  fmt.Sprintf("E3a — Algorithm 1 at n = %d, ε = ln n: measured cost and error", n),
		Header: []string{"α", "K", "blocks/query (measured)", "⊥ rate (measured)", "achieved ε", "ln n"},
	}
	lgn := math.Log(float64(n))
	for _, alpha := range []float64{0.05, 0.1, 0.25} {
		srv, err := patternServer(n)
		if err != nil {
			return nil, err
		}
		c, err := dpir.New(srv, dpir.Options{Epsilon: lgn, Alpha: alpha, Rand: src.Split()})
		if err != nil {
			return nil, err
		}
		q := trials(cfg, 4000)
		bottoms := 0
		for i := 0; i < q; i++ {
			_, err := c.Query(i % n)
			switch {
			case errors.Is(err, dpir.ErrBottom):
				bottoms++
			case err != nil:
				return nil, err
			}
		}
		cost.AddRow(ff(alpha), fi(c.K()),
			ff(float64(srv.Stats().Downloads)/float64(q)),
			ff4(float64(bottoms)/float64(q)),
			ff(c.AchievedEps()), ff(lgn))
	}

	// Empirical ε at a size where transcript classes are well populated.
	nSmall := 32
	srvSmall, err := patternServer(nSmall)
	if err != nil {
		return nil, err
	}
	priv := &Table{
		Title: fmt.Sprintf("E3b — empirical privacy of Algorithm 1 at n = %d (transcript histogram over adjacent queries)", nSmall),
		Note: "ε̂ from the max transcript-class likelihood ratio; δ̂ slightly above the achieved ε should be ≈ 0 " +
			"(pure DP; the worst class sits at ratio exactly e^ε, so a slack absorbs sampling noise).",
		Header: []string{"α", "K", "achieved ε", "ε̂ (empirical)", "δ̂ at ε+0.5"},
	}
	for _, alpha := range []float64{0.1, 0.3} {
		c, err := dpir.New(srvSmall, dpir.Options{
			Epsilon: math.Log(float64(nSmall)), Alpha: alpha, Rand: src.Split(),
		})
		if err != nil {
			return nil, err
		}
		const q, qP = 3, 17
		classify := func(query int) string {
			set, _ := c.SampleSet(query)
			inQ, inQP := false, false
			for _, v := range set {
				if v == q {
					inQ = true
				}
				if v == qP {
					inQP = true
				}
			}
			return fmt.Sprintf("%v/%v", inQ, inQP)
		}
		pe := analysis.SamplePair(
			func() string { return classify(q) },
			func() string { return classify(qP) },
			trials(cfg, 200000),
		)
		priv.AddRow(ff(alpha), fi(c.K()), ff(c.AchievedEps()),
			ff(pe.MaxRatioEps(30)), fg(pe.DeltaAt(c.AchievedEps()+0.5)))
	}
	return []*Table{cost, priv}, nil
}

func runE4(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	t := &Table{
		Title:  "E4 — breaking the Section 4 strawman: advantage of the \"was B_q downloaded?\" test",
		Note:   "Perfect correctness and ≈2 blocks/query, but δ̂ ≥ (n−1)/n even granting ε = ln n: no privacy.",
		Header: []string{"n", "blocks/query", "advantage (measured)", "(n−1)/n", "δ̂ at ε = ln n"},
	}
	for _, n := range sizes(cfg, 1<<6, 1<<8, 1<<10, 1<<12) {
		srv, err := patternServer(n)
		if err != nil {
			return nil, err
		}
		c, err := strawman.New(srv, src.Split())
		if err != nil {
			return nil, err
		}
		q := trials(cfg, 2000)
		for i := 0; i < q; i++ {
			if _, err := c.Query(i % n); err != nil {
				return nil, err
			}
		}
		blocks := float64(srv.Stats().Downloads) / float64(q)

		const target = 1
		qPrime := n / 2
		test := func(query int) func() bool {
			return func() bool {
				for _, v := range c.SampleSet(query) {
					if v == target {
						return true
					}
				}
				return false
			}
		}
		d := analysis.RunDistinguisher(test(target), test(qPrime), trials(cfg, 30000))
		notIn := func(query int) func() bool {
			inner := test(query)
			return func() bool { return !inner() }
		}
		d2 := analysis.RunDistinguisher(notIn(qPrime), notIn(target), trials(cfg, 30000))
		t.AddRow(fi(n), ff(blocks), ff4(d.Advantage()), ff4(strawman.DeltaFloor(n)),
			ff4(d2.DeltaLowerBound(math.Log(float64(n)))))
	}
	return []*Table{t}, nil
}

func runE12(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 10
	}
	t := &Table{
		Title:  fmt.Sprintf("E12 — multi-server DP-IR at n = %d: per-server ops and privacy vs Theorem C.1", n),
		Note:   "Uniform-decoy scheme [49]: 1 op/server; bound = ((1−α)t−δ)n/e^ε ops at t = 1/D must not exceed D.",
		Header: []string{"D", "ops/server (measured)", "analytic ε", "analytic ε (n=32)", "ε̂ (empirical, n=32)", "C.1 bound (ops)"},
	}
	for _, d := range []int{2, 3, 5} {
		// Cost measurement at full n.
		db, err := block.PatternDatabase(n, block.DefaultSize)
		if err != nil {
			return nil, err
		}
		counters := make([]*store.Counting, d)
		servers := make([]store.Server, d)
		for i := range servers {
			m, err := store.NewMemFrom(db)
			if err != nil {
				return nil, err
			}
			counters[i] = store.NewCounting(m)
			servers[i] = counters[i]
		}
		mc, err := dpir.NewMulti(servers, src.Split())
		if err != nil {
			return nil, err
		}
		q := trials(cfg, 2000)
		for i := 0; i < q; i++ {
			if _, err := mc.Query(i % n); err != nil {
				return nil, err
			}
		}
		perServer := float64(counters[0].Stats().Downloads) / float64(q)

		// Empirical ε at small n where views are estimable.
		nSmall := 32
		dbS, err := block.PatternDatabase(nSmall, block.DefaultSize)
		if err != nil {
			return nil, err
		}
		serversS := make([]store.Server, d)
		for i := range serversS {
			m, err := store.NewMemFrom(dbS)
			if err != nil {
				return nil, err
			}
			serversS[i] = m
		}
		mcS, err := dpir.NewMulti(serversS, src.Split())
		if err != nil {
			return nil, err
		}
		const qA, qB = 5, 21
		classify := func(query int) string {
			v := mcS.SampleViews(query)[0]
			switch v {
			case qA:
				return "qA"
			case qB:
				return "qB"
			default:
				return "other"
			}
		}
		pe := analysis.SamplePair(
			func() string { return classify(qA) },
			func() string { return classify(qB) },
			trials(cfg, 300000),
		)
		bound := privacy.MultiServerDPIRLowerBound(n, mc.Eps(), 0, 0, 1/float64(d))
		t.AddRow(fi(d), ff(perServer), ff(mc.Eps()),
			ff(privacy.MultiServerDPIREps(nSmall, d)), ff(pe.MaxRatioEps(50)), ff(bound))
	}
	return []*Table{t}, nil
}
