package exp

import (
	"fmt"
	"math"

	"dpstore/internal/baseline/oramkvs"
	"dpstore/internal/block"
	"dpstore/internal/core/dpkvs"
	"dpstore/internal/core/twochoice"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func init() {
	register(Experiment{
		ID:         "E8",
		Title:      "One-choice vs two-choice max load",
		Reproduces: "Theorem A.1 / [41]",
		Run:        runE8,
	})
	register(Experiment{
		ID:         "E9",
		Title:      "Oblivious two-choice tree mapping: super-root load and linear storage",
		Reproduces: "Theorem 7.2 / Section 7.2",
		Run:        runE9,
	})
	register(Experiment{
		ID:         "E10",
		Title:      "DP-KVS: O(log log n) blocks per operation",
		Reproduces: "Theorems 7.1 and 7.5",
		Run:        runE10,
	})
}

func runE8(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	t := &Table{
		Title:  "E8 — max bin load, n balls into n bins",
		Note:   "The power of two choices: max load drops from Θ(log n/log log n) to Θ(log log n).",
		Header: []string{"n", "1 choice (measured)", "ln n/ln ln n", "2 choices (measured)", "lg lg n", "3 choices"},
	}
	for _, n := range sizes(cfg, 1<<12, 1<<14, 1<<16, 1<<18, 1<<20) {
		one := twochoice.MaxLoadOneChoice(src.Split(), n, n)
		two := twochoice.MaxLoadTwoChoice(src.Split(), n, n, 2)
		three := twochoice.MaxLoadTwoChoice(src.Split(), n, n, 3)
		ln := math.Log(float64(n))
		t.AddRow(fi(n), fi(one), ff(ln/math.Log(ln)), fi(two),
			ff(math.Log2(math.Log2(float64(n)))), fi(three))
	}
	return []*Table{t}, nil
}

func runE9(cfg Config) ([]*Table, error) {
	load := &Table{
		Title: "E9a — inserting n keys into the oblivious tree mapping",
		Note: "Theorem 7.2: the client-side super root stays far below Φ(n) = ω(log n); " +
			"no insertion fails at design capacity.",
		Header: []string{"n", "depth s(n)", "super-root load", "Φ(n)", "failures", "slot utilization"},
	}
	storage := &Table{
		Title:  "E9b — server storage: shared trees vs naive per-bucket padding",
		Note:   "Section 7.2: padding all n buckets to the max load needs Θ(n·log log n) storage; trees stay Θ(n).",
		Header: []string{"n", "tree nodes", "nodes/n", "padded slots", "padded/n"},
	}
	for _, n := range sizes(cfg, 1<<10, 1<<12, 1<<14, 1<<16, 1<<18) {
		geo, err := twochoice.NewGeometry(n, twochoice.DefaultLeavesPerTree(n), 2)
		if err != nil {
			return nil, err
		}
		m := twochoice.NewMapping(geo, crypto.KeyFromSeed(uint64(n)+uint64(cfg.Seed)), 0)
		failures := 0
		for i := 0; i < n; i++ {
			if _, err := m.InsertUint64(uint64(i)); err != nil {
				failures++
			}
		}
		load.AddRow(fi(n), fi(geo.Depth()), fi(m.SuperRootLoad()), fi(m.SuperCap()),
			fi(failures), ff(m.Utilization()))
		storage.AddRow(fi(n), fi(geo.Nodes()), ff(float64(geo.Nodes())/float64(n)),
			fi(geo.PaddedStorage()), ff(float64(geo.PaddedStorage())/float64(n)))
	}
	return []*Table{load, storage}, nil
}

func runE10(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	t := &Table{
		Title: "E10 — DP-KVS cost: measured blocks/op vs the Path ORAM alternative",
		Note: "Theorem 7.5: 12·s(n) = O(log log n) node blocks per operation at ε = O(log n); the " +
			"ORAM-KVS column is a real two-choice table inside Path ORAM (ε = 0) running the same ops.",
		Header: []string{"n", "s(n)", "blocks/op (measured)", "12·s(n)", "ORAM-KVS blocks/op (measured)", "client blocks (max)"},
	}
	for _, n := range sizes(cfg, 1<<8, 1<<10, 1<<12, 1<<14) {
		opts := dpkvs.Options{
			Capacity:  n,
			ValueSize: 16,
			Rand:      src.Split(),
			Key:       crypto.KeyFromSeed(uint64(n)),
		}
		slots, bs, err := dpkvs.RequiredServer(opts)
		if err != nil {
			return nil, err
		}
		srv, err := store.NewMem(slots, bs)
		if err != nil {
			return nil, err
		}
		counting := store.NewCounting(srv)
		s, err := dpkvs.Setup(counting, opts)
		if err != nil {
			return nil, err
		}
		counting.Reset()
		nOps := trials(cfg, 400)
		w := src.Split()
		for i := 0; i < nOps; i++ {
			k := fmt.Sprintf("key-%05d", w.Intn(n/2))
			switch i % 3 {
			case 0:
				if err := s.Put(k, block.Pattern(uint64(i), 16)); err != nil {
					return nil, err
				}
			case 1:
				if _, _, err := s.Get(k); err != nil {
					return nil, err
				}
			default:
				if _, _, err := s.Get(fmt.Sprintf("missing-%d", i)); err != nil {
					return nil, err
				}
			}
		}
		st := counting.Stats()
		measured := float64(st.Ops()) / float64(nOps)

		// The oblivious alternative, actually built and measured: a
		// two-choice hash table inside a Path ORAM (internal/baseline/
		// oramkvs), running the same operation mix.
		oOpts := oramkvs.Options{
			Capacity:  n,
			ValueSize: 16,
			Rand:      src.Split(),
			Key:       crypto.KeyFromSeed(uint64(n) + 1),
		}
		oSlots, oBS, err := oramkvs.RequiredServer(oOpts)
		if err != nil {
			return nil, err
		}
		oSrv, err := store.NewMem(oSlots, oBS)
		if err != nil {
			return nil, err
		}
		oCounting := store.NewCounting(oSrv)
		okvs, err := oramkvs.Setup(oCounting, oOpts)
		if err != nil {
			return nil, err
		}
		oCounting.Reset()
		for i := 0; i < nOps; i++ {
			k := fmt.Sprintf("key-%05d", w.Intn(n/2))
			switch i % 3 {
			case 0:
				if err := okvs.Put(k, block.Pattern(uint64(i), 16)); err != nil {
					return nil, err
				}
			case 1:
				if _, _, err := okvs.Get(k); err != nil {
					return nil, err
				}
			default:
				if _, _, err := okvs.Get(fmt.Sprintf("missing-%d", i)); err != nil {
					return nil, err
				}
			}
		}
		oramMeasured := float64(oCounting.Stats().Ops()) / float64(nOps)
		t.AddRow(fi(n), fi(s.Depth()), ff(measured), fi(12*s.Depth()),
			ff(oramMeasured), fi(s.MaxClientBlocks()))
	}
	return []*Table{t}, nil
}
