package exp

// Extension experiments beyond the core E1–E13 reproduction: E14 maps the
// measured block costs onto deployment presets (the paper's response-time
// motivation, quantified), and E15 ablates the design parameters DESIGN.md
// calls out (tree node capacity, DP-RAM stash parameter, Path ORAM bucket
// size, leaves per tree).

import (
	"fmt"
	"math"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpkvs"
	"dpstore/internal/core/dpram"
	"dpstore/internal/core/twochoice"
	"dpstore/internal/costmodel"
	"dpstore/internal/crypto"
	"dpstore/internal/mathx"
	"dpstore/internal/privacy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func init() {
	register(Experiment{
		ID:         "E14",
		Title:      "Deployment cost model: latency and throughput from measured block costs",
		Reproduces: "Section 1 motivation (response time / resource costs), extension",
		Run:        runE14,
	})
	register(Experiment{
		ID:         "E15",
		Title:      "Ablations: node capacity t, stash parameter Φ, ORAM bucket size Z",
		Reproduces: "design-choice sensitivity (extension)",
		Run:        runE15,
	})
}

func runE14(cfg Config) ([]*Table, error) {
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 16
	}
	const bs = 64
	lgn := math.Log2(float64(n))
	// Cost profiles from the analytic/measured per-query counts (E3, E5,
	// E10, E11): these are the exact counts the implementations produce.
	depth := mathx.FloorLog2(twochoice.DefaultLeavesPerTree(n)) + 1
	schemes := []costmodel.SchemeCost{
		{Name: "plaintext", BlocksMoved: 1, RoundTrips: 1, ServerBlocksTouched: 1, BlockBytes: bs},
		{Name: "DP-IR (ε=ln n, α=0.1)", BlocksMoved: 1, RoundTrips: 1, ServerBlocksTouched: 1, BlockBytes: bs},
		{Name: "DP-RAM", BlocksMoved: 3, RoundTrips: 2, ServerBlocksTouched: 3, BlockBytes: bs + 48},
		{Name: "DP-KVS", BlocksMoved: float64(12 * depth), RoundTrips: 8, ServerBlocksTouched: float64(12 * depth), BlockBytes: 4*(2+32+bs) + 48},
		{Name: "Path ORAM", BlocksMoved: 2 * 4 * (lgn + 1), RoundTrips: 2, ServerBlocksTouched: 2 * 4 * (lgn + 1), BlockBytes: bs + 60},
		{Name: "Path ORAM (recursive)", BlocksMoved: 4 * 4 * (lgn + 1), RoundTrips: lgn, ServerBlocksTouched: 4 * 4 * (lgn + 1), BlockBytes: bs + 60},
		{Name: "trivial PIR", BlocksMoved: float64(n), RoundTrips: 1, ServerBlocksTouched: float64(n), BlockBytes: bs},
		{Name: "2-server XOR PIR", BlocksMoved: 1, RoundTrips: 1, ServerBlocksTouched: float64(n) / 2, BlockBytes: bs},
	}
	var tables []*Table
	for _, d := range []costmodel.Deployment{costmodel.LAN, costmodel.WAN} {
		t := &Table{
			Title: fmt.Sprintf("E14 — estimated per-query cost at n = %d on %s (RTT %v, %.0f MB/s)",
				n, d.Name, d.RTT, d.BandwidthBps/1e6),
			Note:   "Latency = RTT·roundtrips + wire + server CPU; throughput = per-core queries/s (min of CPU and egress).",
			Header: []string{"scheme", "latency", "slowdown vs plaintext", "server qps"},
		}
		for _, s := range schemes {
			t.AddRow(s.Name, d.Latency(s).Round(10e3).String(), ff(d.Slowdown(s)),
				fmt.Sprintf("%.0f", d.ServerThroughput(s)))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runE15(cfg Config) ([]*Table, error) {
	src := rng.New(cfg.Seed)
	var tables []*Table

	// --- Ablation A: tree-mapping node capacity t --------------------------
	{
		n := 1 << 14
		if cfg.Quick {
			n = 1 << 10
		}
		t := &Table{
			Title: fmt.Sprintf("E15a — node capacity t ablation (tree mapping, n = %d keys)", n),
			Note: "Larger t absorbs collisions lower in the trees (smaller super root) but pads " +
				"every bucket transfer; the paper's Θ(1) leaves the constant free.",
			Header: []string{"t", "super-root load", "Φ(n)", "failures", "utilization", "server slots", "blocks/bucket"},
		}
		for _, nodeCap := range []int{1, 2, 4, 8} {
			geo, err := twochoice.NewGeometry(n, twochoice.DefaultLeavesPerTree(n), nodeCap)
			if err != nil {
				return nil, err
			}
			m := twochoice.NewMapping(geo, crypto.KeyFromSeed(uint64(nodeCap)), 0)
			failures := 0
			for i := 0; i < n; i++ {
				if _, err := m.InsertUint64(uint64(i)); err != nil {
					failures++
				}
			}
			t.AddRow(fi(nodeCap), fi(m.SuperRootLoad()), fi(m.SuperCap()), fi(failures),
				ff(m.Utilization()), fi(geo.Nodes()*nodeCap), fi(geo.Depth()))
		}
		tables = append(tables, t)
	}

	// --- Ablation B: DP-RAM stash parameter Φ ------------------------------
	{
		n := 1 << 12
		if cfg.Quick {
			n = 1 << 10
		}
		lg := int(math.Ceil(math.Log2(float64(n))))
		t := &Table{
			Title: fmt.Sprintf("E15b — DP-RAM stash parameter Φ ablation (n = %d)", n),
			Note: "Theorem 6.1 needs Φ(n) = ω(log n); larger Φ costs client memory and buys a " +
				"smaller certified ε constant (p = Φ/n enters the Lemma 6.4/6.5 factors as n/p).",
			Header: []string{"Φ", "stash avg", "stash max", "certified ε bound", "blocks/query"},
		}
		for _, phi := range []int{lg, lg * mathx.CeilLog2(lg), lg * lg, 4 * lg * lg} {
			if phi > n {
				continue
			}
			db, err := block.PatternDatabase(n, block.DefaultSize)
			if err != nil {
				return nil, err
			}
			opts := dpram.Options{Rand: src.Split(), StashParam: phi, Key: crypto.KeyFromSeed(uint64(phi))}
			srv, err := store.NewMem(n, dpram.ServerBlockSize(block.DefaultSize, opts))
			if err != nil {
				return nil, err
			}
			counting := store.NewCounting(srv)
			c, err := dpram.Setup(db, counting, opts)
			if err != nil {
				return nil, err
			}
			counting.Reset()
			q := trials(cfg, 5000)
			w := src.Split()
			var sum float64
			for i := 0; i < q; i++ {
				if _, err := c.Read(w.Intn(n)); err != nil {
					return nil, err
				}
				sum += float64(c.StashSize())
			}
			t.AddRow(fi(phi), ff(sum/float64(q)), fi(c.MaxStashSize()),
				ff(privacy.DPRAMEpsUpperBound(n, float64(phi)/float64(n))),
				ff(float64(counting.Stats().Ops())/float64(q)))
		}
		tables = append(tables, t)
	}

	// --- Ablation C: Path ORAM bucket size Z --------------------------------
	{
		n := 1 << 10
		t := &Table{
			Title:  fmt.Sprintf("E15c — Path ORAM bucket size Z ablation (n = %d)", n),
			Note:   "Z trades bandwidth (2·Z·(lg n+1) blocks/access) against stash pressure; Z = 4 is the standard point.",
			Header: []string{"Z", "blocks/access", "max stash", "server slots"},
		}
		for _, z := range []int{2, 4, 8} {
			db, err := block.PatternDatabase(n, block.DefaultSize)
			if err != nil {
				return nil, err
			}
			opts := pathoram.Options{Z: z, Rand: src.Split(), Key: crypto.KeyFromSeed(uint64(z))}
			slots, bsz := pathoram.TreeShape(n, block.DefaultSize, opts)
			srv, err := store.NewMem(slots, bsz)
			if err != nil {
				return nil, err
			}
			o, err := pathoram.Setup(db, srv, opts)
			if err != nil {
				return nil, err
			}
			q := trials(cfg, 3000)
			w := src.Split()
			for i := 0; i < q; i++ {
				if _, err := o.Read(w.Intn(n)); err != nil {
					return nil, err
				}
			}
			t.AddRow(fi(z), fi(o.BlocksPerAccess()), fi(o.MaxStashSize()), fi(slots))
		}
		tables = append(tables, t)
	}

	// --- Ablation D: DP-KVS leaves per tree L -------------------------------
	{
		n := 1 << 12
		if cfg.Quick {
			n = 1 << 10
		}
		t := &Table{
			Title: fmt.Sprintf("E15d — DP-KVS leaves-per-tree L ablation (n = %d)", n),
			Note: "L controls path depth s(n) = lg L + 1: taller trees cost more blocks per op but " +
				"give collisions more room before the super root.",
			Header: []string{"L", "depth s(n)", "blocks/op", "super root after n/2 puts", "server slots"},
		}
		defaultL := twochoice.DefaultLeavesPerTree(n)
		for _, l := range []int{defaultL / 2, defaultL, defaultL * 2} {
			if l < 2 {
				continue
			}
			opts := dpkvs.Options{
				Capacity:      n,
				ValueSize:     16,
				LeavesPerTree: l,
				Rand:          src.Split(),
				Key:           crypto.KeyFromSeed(uint64(l)),
			}
			slots, bsz, err := dpkvs.RequiredServer(opts)
			if err != nil {
				return nil, err
			}
			srv, err := store.NewMem(slots, bsz)
			if err != nil {
				return nil, err
			}
			counting := store.NewCounting(srv)
			s, err := dpkvs.Setup(counting, opts)
			if err != nil {
				return nil, err
			}
			counting.Reset()
			puts := n / 2
			if cfg.Quick {
				puts = n / 4
			}
			for i := 0; i < puts; i++ {
				if err := s.Put(fmt.Sprintf("key-%05d", i), block.Pattern(uint64(i), 16)); err != nil {
					return nil, err
				}
			}
			t.AddRow(fi(l), fi(s.Depth()),
				ff(float64(counting.Stats().Ops())/float64(puts)),
				fmt.Sprintf("%d/%d", s.SuperRootLoad(), s.SuperCap()), fi(slots))
		}
		tables = append(tables, t)
	}

	return tables, nil
}
