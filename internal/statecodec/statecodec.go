// Package statecodec holds the tiny binary codec the schemes' client-state
// serializers share: an appending writer convention (big-endian, magic
// tagged, length-free fixed fields) and an error-latching reader cursor.
// Integrity and atomicity belong to the storage layer underneath (the
// proxy journal CRC-frames every checkpoint; store.Durable checksums every
// page), so the codec is deliberately plain.
package statecodec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports state bytes that end before their declared content.
var ErrTruncated = errors.New("statecodec: truncated state")

// ErrTrailing reports state bytes that continue past their declared
// content — a sign the snapshot and the decoder disagree about the format.
var ErrTrailing = errors.New("statecodec: trailing bytes")

// Reader is a cursor over a state buffer that latches the first error, so
// decoders read linearly and check Err once (or at each variable-length
// boundary).
type Reader struct {
	data []byte
	err  error
}

// NewReader returns a cursor over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data) < n {
		r.err = fmt.Errorf("%w: want %d bytes, have %d", ErrTruncated, n, len(r.data))
		return nil
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

// Magic consumes 8 bytes and reports whether they equal want.
func (r *Reader) Magic(want [8]byte) bool {
	got := r.take(8)
	return r.err == nil && [8]byte(got) == want
}

// U64 consumes a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// U32 consumes a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U8 consumes one byte.
func (r *Reader) U8() byte {
	b := r.take(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

// Bytes consumes n raw bytes (aliasing the input buffer).
func (r *Reader) Bytes(n int) []byte { return r.take(n) }

// Drained returns nil exactly when the buffer was consumed completely and
// without error.
func (r *Reader) Drained() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.data))
	}
	return nil
}
