// Package trace captures adversary views.
//
// Definition 2.1 defines privacy over the transcript S(Q): everything the
// adversarial server sees while a query sequence executes. For a passive
// server in the balls-and-bins model that is exactly the ordered list of
// (operation, address) pairs — ciphertext contents are excluded from the
// view by the IND-CPA reduction discussed in Section 6.1. The Recorder
// wraps a store.Server and materializes that view, with query boundaries
// marked so per-query structure such as DP-RAM's (d_j, o_j) pairs can be
// recovered.
package trace

import (
	"strconv"
	"strings"
	"sync"

	"dpstore/internal/block"
	"dpstore/internal/store"
)

// Op distinguishes the two moves of Definition 3.1.
type Op byte

// Operation kinds.
const (
	OpDownload Op = 'D'
	OpUpload   Op = 'U'
)

// Access is one observed server operation.
type Access struct {
	Op   Op
	Addr int
}

// Transcript is an ordered adversary view of one or more queries.
type Transcript []Access

// Key renders a transcript as a compact, canonical string usable as a
// histogram class in the empirical privacy estimator. Example: "D3 U3 D7".
func (t Transcript) Key() string {
	var sb strings.Builder
	for i, a := range t {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteByte(byte(a.Op))
		sb.WriteString(strconv.Itoa(a.Addr))
	}
	return sb.String()
}

// Shape renders the transcript with the addresses erased: run-length
// encoded operation kinds, e.g. "D2 U1" for two downloads then an upload.
// The shape is the part of the adversary view that must be *identical* —
// not just identically distributed — across workloads for a correctly
// scheduled construction: every scheme in this module moves a fixed,
// data-independent number of blocks per query, so any shape divergence
// between two workloads (a shorter trace on colliding addresses, say, the
// signature of a deduplicating scheduler) is an access-pattern leak.
func (t Transcript) Shape() string {
	var sb strings.Builder
	for i := 0; i < len(t); {
		j := i
		for j < len(t) && t[j].Op == t[i].Op {
			j++
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteByte(byte(t[i].Op))
		sb.WriteString(strconv.Itoa(j - i))
		i = j
	}
	return sb.String()
}

// Addrs returns the set of distinct addresses the transcript touches.
func (t Transcript) Addrs() map[int]struct{} {
	m := make(map[int]struct{}, len(t))
	for _, a := range t {
		m[a.Addr] = struct{}{}
	}
	return m
}

// Contains reports whether the transcript operates on addr.
func (t Transcript) Contains(addr int) bool {
	for _, a := range t {
		if a.Addr == addr {
			return true
		}
	}
	return false
}

// Recorder wraps a store.Server, forwarding every operation while appending
// it to an in-memory transcript. Mark() inserts query boundaries.
type Recorder struct {
	inner store.Server

	mu     sync.Mutex
	trans  Transcript
	bounds []int // index into trans where each marked query begins
}

// NewRecorder wraps inner.
func NewRecorder(inner store.Server) *Recorder {
	return &Recorder{inner: inner}
}

// Download implements store.Server.
func (r *Recorder) Download(addr int) (block.Block, error) {
	b, err := r.inner.Download(addr)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.trans = append(r.trans, Access{Op: OpDownload, Addr: addr})
	r.mu.Unlock()
	return b, nil
}

// Upload implements store.Server.
func (r *Recorder) Upload(addr int, b block.Block) error {
	if err := r.inner.Upload(addr, b); err != nil {
		return err
	}
	r.mu.Lock()
	r.trans = append(r.trans, Access{Op: OpUpload, Addr: addr})
	r.mu.Unlock()
	return nil
}

// Size implements store.Server.
func (r *Recorder) Size() int { return r.inner.Size() }

// BlockSize implements store.Server.
func (r *Recorder) BlockSize() int { return r.inner.BlockSize() }

// Mark records a query boundary: all operations recorded after this call
// belong to the next query.
func (r *Recorder) Mark() {
	r.mu.Lock()
	r.bounds = append(r.bounds, len(r.trans))
	r.mu.Unlock()
}

// Transcript returns a copy of the full recorded view.
func (r *Recorder) Transcript() Transcript {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(Transcript(nil), r.trans...)
}

// Queries splits the view at the recorded Mark boundaries. Operations before
// the first Mark (for example, setup uploads) are dropped; callers that want
// them should call Mark before setup.
func (r *Recorder) Queries() []Transcript {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.bounds) == 0 {
		return nil
	}
	out := make([]Transcript, 0, len(r.bounds))
	for i, start := range r.bounds {
		end := len(r.trans)
		if i+1 < len(r.bounds) {
			end = r.bounds[i+1]
		}
		q := append(Transcript(nil), r.trans[start:end]...)
		out = append(out, q)
	}
	return out
}

// Reset clears the recorded view and boundaries.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.trans = nil
	r.bounds = nil
	r.mu.Unlock()
}
