package trace

import (
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/store"
)

func newRecorder(t *testing.T) (*Recorder, *store.Mem) {
	t.Helper()
	m, err := store.NewMem(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	return NewRecorder(m), m
}

func TestRecorderForwards(t *testing.T) {
	r, m := newRecorder(t)
	want := block.Pattern(3, 16)
	if err := r.Upload(2, want); err != nil {
		t.Fatal(err)
	}
	got, err := m.Download(2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("upload did not reach inner store")
	}
	got2, err := r.Download(2)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want) {
		t.Fatal("download through recorder mismatched")
	}
	if r.Size() != 8 || r.BlockSize() != 16 {
		t.Fatal("shape not forwarded")
	}
}

func TestRecorderCaptures(t *testing.T) {
	r, _ := newRecorder(t)
	r.Upload(1, block.New(16)) //nolint:errcheck
	r.Download(5)              //nolint:errcheck
	r.Download(1)              //nolint:errcheck
	tr := r.Transcript()
	want := Transcript{{OpUpload, 1}, {OpDownload, 5}, {OpDownload, 1}}
	if len(tr) != len(want) {
		t.Fatalf("transcript length %d, want %d", len(tr), len(want))
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, tr[i], want[i])
		}
	}
}

func TestRecorderIgnoresFailedOps(t *testing.T) {
	r, _ := newRecorder(t)
	if _, err := r.Download(99); err == nil {
		t.Fatal("expected error")
	}
	if err := r.Upload(99, block.New(16)); err == nil {
		t.Fatal("expected error")
	}
	if len(r.Transcript()) != 0 {
		t.Fatal("failed operations were recorded")
	}
}

func TestTranscriptKey(t *testing.T) {
	tr := Transcript{{OpDownload, 3}, {OpUpload, 3}, {OpDownload, 7}}
	if k := tr.Key(); k != "D3 U3 D7" {
		t.Fatalf("Key() = %q", k)
	}
	if k := (Transcript{}).Key(); k != "" {
		t.Fatalf("empty Key() = %q", k)
	}
}

func TestTranscriptAddrsContains(t *testing.T) {
	tr := Transcript{{OpDownload, 3}, {OpUpload, 3}, {OpDownload, 7}}
	addrs := tr.Addrs()
	if len(addrs) != 2 {
		t.Fatalf("addrs = %v", addrs)
	}
	if !tr.Contains(7) || tr.Contains(5) {
		t.Fatal("Contains wrong")
	}
}

func TestQueriesSplitting(t *testing.T) {
	r, _ := newRecorder(t)
	r.Upload(0, block.New(16)) //nolint:errcheck // pre-Mark setup op
	r.Mark()
	r.Download(1) //nolint:errcheck
	r.Download(2) //nolint:errcheck
	r.Mark()
	r.Download(3) //nolint:errcheck
	qs := r.Queries()
	if len(qs) != 2 {
		t.Fatalf("queries = %d, want 2", len(qs))
	}
	if qs[0].Key() != "D1 D2" || qs[1].Key() != "D3" {
		t.Fatalf("splits = %q, %q", qs[0].Key(), qs[1].Key())
	}
}

func TestQueriesWithoutMarks(t *testing.T) {
	r, _ := newRecorder(t)
	r.Download(1) //nolint:errcheck
	if qs := r.Queries(); qs != nil {
		t.Fatalf("expected nil, got %v", qs)
	}
}

func TestReset(t *testing.T) {
	r, _ := newRecorder(t)
	r.Mark()
	r.Download(1) //nolint:errcheck
	r.Reset()
	if len(r.Transcript()) != 0 || r.Queries() != nil {
		t.Fatal("Reset did not clear state")
	}
}

func TestTranscriptShape(t *testing.T) {
	cases := []struct {
		tr   Transcript
		want string
	}{
		{nil, ""},
		{Transcript{{OpDownload, 3}}, "D1"},
		{Transcript{{OpDownload, 3}, {OpDownload, 9}, {OpUpload, 3}}, "D2 U1"},
		{Transcript{{OpUpload, 1}, {OpDownload, 1}, {OpDownload, 2}, {OpUpload, 7}}, "U1 D2 U1"},
	}
	for _, c := range cases {
		if got := c.tr.Shape(); got != c.want {
			t.Errorf("Shape(%v) = %q, want %q", c.tr, got, c.want)
		}
	}
	// Shapes erase addresses: two transcripts with different addresses but
	// the same op structure collide, which is exactly the equivalence the
	// obliviousness regression tests compare under.
	a := Transcript{{OpDownload, 1}, {OpUpload, 2}}
	b := Transcript{{OpDownload, 8}, {OpUpload, 5}}
	if a.Shape() != b.Shape() {
		t.Fatal("shape must not depend on addresses")
	}
	if a.Key() == b.Key() {
		t.Fatal("keys must depend on addresses")
	}
}
