// Package stats provides the summary statistics and histogramming used to
// turn raw experiment measurements into the tables of EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	Median float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already sorted sample
// using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanInts is a convenience mean over integer samples.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// MaxInts returns the maximum of an integer sample (0 for empty).
func MaxInts(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// String renders a compact one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g min=%.4g med=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P95, s.Max)
}

// Counter is a frequency table over arbitrary string-keyed outcome classes.
// The empirical differential-privacy estimator histograms transcripts with
// it: each distinct adversary view is a class.
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Add increments class key.
func (c *Counter) Add(key string) {
	c.counts[key]++
	c.total++
}

// AddN increments class key by n.
func (c *Counter) AddN(key string, n int) {
	c.counts[key] += n
	c.total += n
}

// Count returns the count of class key.
func (c *Counter) Count(key string) int { return c.counts[key] }

// Total returns the number of observations.
func (c *Counter) Total() int { return c.total }

// Classes returns the class keys in deterministic (sorted) order.
func (c *Counter) Classes() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Prob returns the empirical probability of class key.
func (c *Counter) Prob(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// Histogram bins float64 observations into fixed-width buckets, for
// rendering distribution sketches (stash occupancy, bin loads).
type Histogram struct {
	Lo, Width float64
	Bins      []int
	N         int
}

// NewHistogram creates a histogram of nbins buckets covering [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Width: (hi - lo) / float64(nbins), Bins: make([]int, nbins)}
}

// Add records an observation; out-of-range values clamp into the end bins.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / h.Width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
	h.N++
}
