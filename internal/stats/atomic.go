package stats

import (
	"sync/atomic"
	"time"
)

// AtomicHist is the concurrent counterpart of LatencyHist: the same
// log-linear bucket layout, but every Record is a handful of atomic adds
// with no lock and no allocation, so many serve-loop goroutines can feed
// one histogram on the hot path. Quantiles are not computed here —
// SnapshotInto folds the live buckets into a plain LatencyHist, which
// owns the quantile math.
//
// The zero value is ready to use. Snapshots taken while writers are
// recording are internally consistent per bucket but may straddle
// concurrent Records (a snapshot is a moment-free aggregate, not a
// linearizable cut) — exactly the tolerance a metrics scrape has.
type AtomicHist struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// RecordValue adds one observation. Negative values clamp to 0, matching
// LatencyHist.
func (h *AtomicHist) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(uint64(v))].Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Record adds one duration observation in nanoseconds.
func (h *AtomicHist) Record(d time.Duration) { h.RecordValue(int64(d)) }

// Count returns the number of observations recorded so far. It walks the
// bucket array (no separate total is kept, so Count always agrees with
// the buckets a concurrent snapshot would see).
func (h *AtomicHist) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the running sum of recorded values.
func (h *AtomicHist) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded value (0 if empty).
func (h *AtomicHist) Max() int64 { return h.max.Load() }

// SnapshotInto folds the current contents into dst (which is Reset
// first). dst then answers quantile queries over everything recorded up
// to roughly now. The min carried into dst is the conservative lower
// bound of the lowest occupied bucket — AtomicHist does not track the
// exact min, and a lower bound keeps Quantile(0) from overstating.
func (h *AtomicHist) SnapshotInto(dst *LatencyHist) {
	dst.Reset()
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		dst.counts[i] += c
		dst.total += c
		if lo := histLowValue(i); lo < dst.min {
			dst.min = lo
		}
	}
	if dst.total == 0 {
		return
	}
	dst.sum = float64(h.sum.Load())
	if m := h.max.Load(); m > dst.max {
		dst.max = m
	}
}

// histLowValue returns the lowest value mapping to bucket i (the
// counterpart of histValue, which returns the highest).
func histLowValue(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	block := i/histSubCount - 1
	sub := uint64(i%histSubCount) + histSubCount
	return int64(sub << uint(block))
}
