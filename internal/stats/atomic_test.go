package stats

import (
	"math/rand"
	"sync"
	"testing"
)

// Recording the same stream into an AtomicHist and a LatencyHist must
// land in identical buckets — AtomicHist reuses the same index mapping,
// and SnapshotInto must reproduce count/sum/max and hence quantiles.
func TestAtomicHistMatchesLatencyHist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ah AtomicHist
	lh := NewLatencyHist()
	for i := 0; i < 50000; i++ {
		v := rng.Int63n(int64(1) << uint(10+rng.Intn(30)))
		ah.RecordValue(v)
		lh.RecordValue(v)
	}
	snap := NewLatencyHist()
	ah.SnapshotInto(snap)

	if snap.Count() != lh.Count() {
		t.Fatalf("count: atomic %d vs direct %d", snap.Count(), lh.Count())
	}
	if snap.Max() != lh.Max() {
		t.Fatalf("max: atomic %d vs direct %d", snap.Max(), lh.Max())
	}
	if snap.Mean() != lh.Mean() {
		t.Fatalf("mean: atomic %g vs direct %g", snap.Mean(), lh.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		a, d := snap.QuantileValue(q), lh.QuantileValue(q)
		// The only permitted divergence is at q→0: AtomicHist carries the
		// bucket's lower bound instead of the exact min, so its Quantile(0)
		// may sit at most one bucket-width below the exact answer.
		if q == 0 {
			if a > d {
				t.Fatalf("q=0: atomic %d overstates exact min %d", a, d)
			}
			continue
		}
		if a != d {
			t.Fatalf("q=%g: atomic %d vs direct %d", q, a, d)
		}
	}
}

func TestAtomicHistNegativeClampsToZero(t *testing.T) {
	var ah AtomicHist
	ah.RecordValue(-5)
	snap := NewLatencyHist()
	ah.SnapshotInto(snap)
	if snap.Count() != 1 || snap.Min() != 0 || snap.Max() != 0 {
		t.Fatalf("negative record: count=%d min=%d max=%d", snap.Count(), snap.Min(), snap.Max())
	}
}

func TestAtomicHistEmptySnapshot(t *testing.T) {
	var ah AtomicHist
	snap := NewLatencyHist()
	snap.RecordValue(42) // stale content must be cleared
	ah.SnapshotInto(snap)
	if snap.Count() != 0 || snap.QuantileValue(0.5) != 0 {
		t.Fatalf("empty snapshot not empty: count=%d", snap.Count())
	}
}

// Concurrent writers must lose no observations (the whole point of the
// atomic variant).
func TestAtomicHistConcurrent(t *testing.T) {
	var ah AtomicHist
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				ah.RecordValue(rng.Int63n(1 << 20))
			}
		}(int64(w))
	}
	wg.Wait()
	if got := ah.Count(); got != workers*per {
		t.Fatalf("lost observations: %d of %d", got, workers*per)
	}
	snap := NewLatencyHist()
	ah.SnapshotInto(snap)
	if snap.Count() != workers*per {
		t.Fatalf("snapshot lost observations: %d of %d", snap.Count(), workers*per)
	}
}

func BenchmarkAtomicHistRecord(b *testing.B) {
	var ah AtomicHist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ah.RecordValue(int64(i) & 0xFFFFF)
	}
}
