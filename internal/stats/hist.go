package stats

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// LatencyHist is an HDR-style log-linear histogram over non-negative
// int64 values (nanoseconds, in the load harness's use). Values are
// binned into 2^histSubBits linear sub-buckets per power-of-two range,
// which bounds the relative quantization error of any reported quantile
// by 1/2^histSubBits (≈1.6%) while keeping Record at O(1) with no
// allocation — the property an open-loop driver needs to record millions
// of latencies without perturbing the run it is measuring.
//
// The zero value is NOT usable; construct with NewLatencyHist. A
// LatencyHist is not safe for concurrent use: give each recording
// goroutine its own and Merge them afterwards (Merge is exact — the
// merged histogram is identical to one that recorded both streams).
type LatencyHist struct {
	counts []uint64
	total  uint64
	sum    float64 // running sum of recorded values, for Mean
	min    int64
	max    int64
}

const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits // linear sub-buckets per octave
	// histBuckets covers the full non-negative int64 range: values below
	// histSubCount map to themselves; every further octave e ∈
	// [histSubBits, 63) contributes histSubCount sub-buckets.
	histBuckets = (64 - histSubBits) * histSubCount
)

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{counts: make([]uint64, histBuckets), min: math.MaxInt64}
}

// histIndex maps a value to its bucket. The linear region [0, histSubCount)
// is exact; above it, the top histSubBits+1 bits of the value select the
// bucket, so buckets within one octave are equal-width and octaves double.
func histIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // position of the top set bit, ≥ histSubBits
	m := v >> (uint(e) - histSubBits)
	return (e-histSubBits+1)*histSubCount + int(m-histSubCount)
}

// histValue returns the highest value mapping to bucket i — the
// representative reported for quantiles, chosen so a reported quantile
// never understates the true one (conservative for tail latency).
func histValue(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	block := i/histSubCount - 1 // octave above the linear region, ≥ 0
	sub := uint64(i%histSubCount) + histSubCount
	lo := sub << uint(block)
	width := uint64(1) << uint(block)
	return int64(lo + width - 1)
}

// RecordValue adds one observation. Negative values clamp to 0 (a latency
// can go negative only through clock steps; losing its sign is the right
// degradation).
func (h *LatencyHist) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(uint64(v))]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Record adds one duration observation in nanoseconds.
func (h *LatencyHist) Record(d time.Duration) { h.RecordValue(int64(d)) }

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() uint64 { return h.total }

// Min returns the smallest recorded value (0 for an empty histogram).
func (h *LatencyHist) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 for an empty histogram).
func (h *LatencyHist) Max() int64 { return h.max }

// Mean returns the exact mean of the recorded values (not a bucket
// approximation; the sum is carried alongside the buckets).
func (h *LatencyHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// QuantileValue returns the q-quantile (0 ≤ q ≤ 1) of the recorded
// distribution, to within the histogram's ≈1.6% relative quantization
// error, biased upward (never understates). Returns 0 for an empty
// histogram. The exact recorded Min and Max clamp the answer, so
// Quantile(0) and Quantile(1) are exact.
func (h *LatencyHist) QuantileValue(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based: the smallest value v such
	// that at least ⌈q·total⌉ observations are ≤ v.
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := histValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Quantile returns QuantileValue as a time.Duration.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	return time.Duration(h.QuantileValue(q))
}

// Merge adds every observation of o into h. Merging is exact: recording
// two streams into separate histograms and merging equals recording both
// into one.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Clone returns an independent copy of h.
func (h *LatencyHist) Clone() *LatencyHist {
	c := &LatencyHist{
		counts: append([]uint64(nil), h.counts...),
		total:  h.total,
		sum:    h.sum,
		min:    h.min,
		max:    h.max,
	}
	return c
}

// NonzeroBuckets returns the occupied buckets as index → count. The
// index is the internal log-linear bucket number; BucketValue maps it
// back to a representative value. Exposed so snapshot layers can compare
// two histograms distribution-for-distribution.
func (h *LatencyHist) NonzeroBuckets() map[int]uint64 {
	out := make(map[int]uint64)
	for i, c := range h.counts {
		if c != 0 {
			out[i] = c
		}
	}
	return out
}

// BucketValue returns the highest value mapping to bucket index i (the
// representative histValue reports for quantiles).
func BucketValue(i int) int64 { return histValue(i) }

// Reset returns the histogram to its empty state, retaining the bucket
// array.
func (h *LatencyHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// String renders the standard latency summary line.
func (h *LatencyHist) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v max=%v",
		h.total, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), time.Duration(h.Max()))
}
