package stats

import (
	"math"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	want := math.Sqrt(2.5) // sample std of 1..5
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Quantile(sorted, 0) != 10 || Quantile(sorted, 1) != 40 {
		t.Fatal("extreme quantiles wrong")
	}
	if q := Quantile(sorted, 0.5); q != 25 {
		t.Fatalf("median of 10..40 = %v, want 25", q)
	}
	if q := Quantile(sorted, 1.0/3.0); math.Abs(q-20) > 1e-9 {
		t.Fatalf("q(1/3) = %v, want 20", q)
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMeanMaxInts(t *testing.T) {
	if MeanInts([]int{1, 2, 3}) != 2 {
		t.Fatal("MeanInts wrong")
	}
	if MeanInts(nil) != 0 {
		t.Fatal("MeanInts empty should be 0")
	}
	if MaxInts([]int{3, 9, 2}) != 9 {
		t.Fatal("MaxInts wrong")
	}
	if MaxInts([]int{-3, -9}) != -3 {
		t.Fatal("MaxInts with negatives wrong")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("a")
	c.Add("a")
	c.Add("b")
	c.AddN("c", 7)
	if c.Total() != 10 {
		t.Fatalf("total = %d, want 10", c.Total())
	}
	if c.Count("a") != 2 || c.Count("missing") != 0 {
		t.Fatal("counts wrong")
	}
	if p := c.Prob("c"); p != 0.7 {
		t.Fatalf("Prob(c) = %v, want 0.7", p)
	}
	cls := c.Classes()
	if len(cls) != 3 || cls[0] != "a" || cls[1] != "b" || cls[2] != "c" {
		t.Fatalf("classes = %v", cls)
	}
}

func TestCounterEmptyProb(t *testing.T) {
	if NewCounter().Prob("x") != 0 {
		t.Fatal("empty counter prob should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1.5, 9.9, -3, 15} {
		h.Add(x)
	}
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Bins[0] != 3 { // 0.5, 1.5 (width 2) and clamped -3
		t.Fatalf("bin 0 = %d, want 3", h.Bins[0])
	}
	if h.Bins[4] != 2 { // 9.9 and clamped 15
		t.Fatalf("bin 4 = %d, want 2", h.Bins[4])
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}
