package stats

import (
	"math"
	"sort"
	"testing"
	"time"

	"dpstore/internal/rng"
)

// histTolerance is the relative error budget for quantile assertions: the
// bucket quantization bound (1/2^histSubBits) plus slack for the
// conservative upward bias at bucket edges.
const histTolerance = 0.017

// oracleQuantile is the ground truth the histogram is checked against:
// the smallest sample value with at least ⌈q·n⌉ samples ≤ it.
func oracleQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// checkQuantiles records xs into a fresh histogram and asserts every
// probed quantile is within tolerance of the sorted-slice oracle, and
// never below it (the conservative-bias contract).
func checkQuantiles(t *testing.T, name string, xs []int64) *LatencyHist {
	t.Helper()
	h := NewLatencyHist()
	for _, x := range xs {
		h.RecordValue(x)
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 0.9999, 1} {
		want := oracleQuantile(sorted, q)
		got := h.QuantileValue(q)
		if got < want {
			t.Errorf("%s: q=%g: histogram %d understates oracle %d", name, q, got, want)
		}
		// Relative bound, with an absolute floor of one unit for the tiny
		// values where a 1-count difference dominates any ratio.
		tol := float64(want) * histTolerance
		if tol < 1 {
			tol = 1
		}
		if float64(got)-float64(want) > tol {
			t.Errorf("%s: q=%g: histogram %d vs oracle %d exceeds tolerance %.1f", name, q, got, want, tol)
		}
	}
	if h.Count() != uint64(len(xs)) {
		t.Errorf("%s: count %d, want %d", name, h.Count(), len(xs))
	}
	if got, want := h.Min(), sorted[0]; got != want {
		t.Errorf("%s: min %d, want %d", name, got, want)
	}
	if got, want := h.Max(), sorted[len(sorted)-1]; got != want {
		t.Errorf("%s: max %d, want %d", name, got, want)
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	if got, want := h.Mean(), sum/float64(len(xs)); math.Abs(got-want) > math.Abs(want)*1e-9 {
		t.Errorf("%s: mean %g, want %g", name, got, want)
	}
	return h
}

func TestHistUniform(t *testing.T) {
	src := rng.New(1)
	xs := make([]int64, 50_000)
	for i := range xs {
		xs[i] = int64(src.Intn(5_000_000)) // 0–5ms in ns
	}
	checkQuantiles(t, "uniform", xs)
}

func TestHistBimodal(t *testing.T) {
	// The adversarial case for averaged statistics: a fast mode at ~100µs
	// and a slow mode at ~80ms. The p99/p999 must land in the slow mode.
	src := rng.New(2)
	xs := make([]int64, 40_000)
	for i := range xs {
		if src.Bernoulli(0.02) {
			xs[i] = 80_000_000 + int64(src.Intn(5_000_000))
		} else {
			xs[i] = 100_000 + int64(src.Intn(20_000))
		}
	}
	h := checkQuantiles(t, "bimodal", xs)
	if p999 := h.QuantileValue(0.999); p999 < 80_000_000 {
		t.Errorf("bimodal p999 %d missed the slow mode", p999)
	}
	if p50 := h.QuantileValue(0.5); p50 > 1_000_000 {
		t.Errorf("bimodal p50 %d dragged into the slow mode", p50)
	}
}

func TestHistHeavyTail(t *testing.T) {
	// Pareto-ish tail spanning six orders of magnitude: x = m / u^(1/α).
	src := rng.New(3)
	xs := make([]int64, 60_000)
	for i := range xs {
		u := src.Float64()
		if u < 1e-7 {
			u = 1e-7
		}
		x := 1000.0 / math.Pow(u, 1/1.2)
		if x > 1e12 {
			x = 1e12
		}
		xs[i] = int64(x)
	}
	checkQuantiles(t, "heavy-tail", xs)
}

func TestHistSingleValue(t *testing.T) {
	xs := make([]int64, 10_000)
	for i := range xs {
		xs[i] = 777_777
	}
	h := checkQuantiles(t, "single-value", xs)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.QuantileValue(q); got != 777_777 {
			t.Errorf("single-value q=%g: got %d, want 777777 exactly", q, got)
		}
	}
}

func TestHistSmallAndEdgeValues(t *testing.T) {
	// The linear region must be exact, negatives clamp, and the extremes
	// must not panic or wrap.
	h := NewLatencyHist()
	for v := int64(0); v < 200; v++ {
		h.RecordValue(v)
	}
	h.RecordValue(-5)
	h.RecordValue(math.MaxInt64)
	if h.Count() != 202 {
		t.Fatalf("count %d, want 202", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("min %d, want 0 (clamped negative)", h.Min())
	}
	if h.Max() != math.MaxInt64 {
		t.Errorf("max %d, want MaxInt64", h.Max())
	}
	// In the exact region, the 25th percentile of 0..199 (+2 extremes).
	if got := h.QuantileValue(0.25); got < 45 || got > 55 {
		t.Errorf("q25 %d outside the exact linear region's expectation", got)
	}
}

func TestHistMergeMatchesCombinedRecording(t *testing.T) {
	src := rng.New(4)
	a, b, both := NewLatencyHist(), NewLatencyHist(), NewLatencyHist()
	for i := 0; i < 30_000; i++ {
		v := int64(src.Intn(10_000_000))
		if i%2 == 0 {
			a.RecordValue(v)
		} else {
			b.RecordValue(v)
		}
		both.RecordValue(v)
	}
	a.Merge(b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), both.Count())
	}
	if a.Min() != both.Min() || a.Max() != both.Max() {
		t.Errorf("merged min/max (%d,%d), want (%d,%d)", a.Min(), a.Max(), both.Min(), both.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := a.QuantileValue(q), both.QuantileValue(q); got != want {
			t.Errorf("q=%g: merged %d, combined %d (merge must be exact)", q, got, want)
		}
	}
	if math.Abs(a.Mean()-both.Mean()) > both.Mean()*1e-9 {
		t.Errorf("merged mean %g, combined %g", a.Mean(), both.Mean())
	}
	// Merging an empty or nil histogram is a no-op.
	before := a.QuantileValue(0.5)
	a.Merge(NewLatencyHist())
	a.Merge(nil)
	if a.QuantileValue(0.5) != before {
		t.Error("merging empty/nil changed the histogram")
	}
}

func TestHistReset(t *testing.T) {
	h := NewLatencyHist()
	for i := 0; i < 1000; i++ {
		h.RecordValue(int64(i) * 1000)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatalf("reset left state: count=%d min=%d max=%d mean=%g", h.Count(), h.Min(), h.Max(), h.Mean())
	}
	if h.QuantileValue(0.5) != 0 {
		t.Fatalf("reset histogram q50 = %d, want 0", h.QuantileValue(0.5))
	}
	// And it records correctly again afterwards.
	h.Record(3 * time.Millisecond)
	if h.Quantile(0.5) != 3*time.Millisecond {
		t.Fatalf("post-reset q50 = %v, want 3ms", h.Quantile(0.5))
	}
}

func TestHistIndexValueConsistency(t *testing.T) {
	// Every bucket's representative must map back into that bucket, and
	// bucket boundaries must be monotone — the invariants the quantile
	// walk relies on.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		v := histValue(i)
		if v <= prev && i > 0 {
			t.Fatalf("bucket %d representative %d not monotone (prev %d)", i, v, prev)
		}
		prev = v
		if v >= 0 && histIndex(uint64(v)) != i {
			t.Fatalf("histIndex(histValue(%d)) = %d", i, histIndex(uint64(v)))
		}
	}
}
