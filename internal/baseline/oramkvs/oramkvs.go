// Package oramkvs is the oblivious key-value store baseline the paper's
// Section 7 positions DP-KVS against: a classical two-choice hash table
// whose bins live inside a Path ORAM.
//
// Layout: b bins, each one ORAM block holding up to binCap (key, value)
// slots; a key hashes to two bins and lives in one of them (or in a small
// client-side stash on overflow). Every operation performs exactly four
// ORAM accesses (a read and a write per candidate bin), each costing
// 2·Z·(lg b + 1) blocks, for Θ(log n) blocks per KVS operation with full
// obliviousness (ε = 0). This is the cost DP-KVS's O(log log n) (at
// ε = Θ(log n)) improves on exponentially, and experiment E10 measures the
// two side by side. On the batched storage transport each ORAM access is 2
// round trips (read path, evict path), so a KVS operation costs 8 — the
// blocks-per-op gap is what separates the schemes, not framing.
package oramkvs

import (
	"errors"
	"fmt"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

// ErrFull reports an insertion that overflowed both bins and the client
// stash.
var ErrFull = errors.New("oramkvs: table full")

// ErrKeyTooLong reports a key exceeding MaxKeyLen.
var ErrKeyTooLong = errors.New("oramkvs: key exceeds MaxKeyLen")

// Options configures the store.
type Options struct {
	// Capacity is the design number of live keys. Bins = Capacity (load
	// factor is absorbed by binCap and the two choices).
	Capacity int
	// ValueSize is the fixed value size in bytes.
	ValueSize int
	// MaxKeyLen caps keys; zero selects 32.
	MaxKeyLen int
	// BinCap is the slot count per bin; zero selects 4 (two-choice max
	// load is Θ(log log n) w.h.p., but overflow spills to the client
	// stash, so a small constant suffices in practice).
	BinCap int
	// StashCap bounds the client overflow stash; zero selects 64.
	StashCap int
	// Key is the master key (zero = fresh).
	Key crypto.Key
	// Rand is required.
	Rand *rng.Source
}

func (o *Options) fill() error {
	if o.Capacity < 2 {
		return fmt.Errorf("oramkvs: capacity %d must be ≥ 2", o.Capacity)
	}
	if o.ValueSize < 1 {
		return fmt.Errorf("oramkvs: value size %d must be ≥ 1", o.ValueSize)
	}
	if o.MaxKeyLen == 0 {
		o.MaxKeyLen = 32
	}
	if o.MaxKeyLen < 1 || o.MaxKeyLen > 255 {
		return fmt.Errorf("oramkvs: MaxKeyLen %d outside [1,255]", o.MaxKeyLen)
	}
	if o.BinCap == 0 {
		o.BinCap = 4
	}
	if o.StashCap == 0 {
		o.StashCap = 64
	}
	if o.Rand == nil {
		return errors.New("oramkvs: Options.Rand is required")
	}
	return nil
}

func slotSize(maxKeyLen, valueSize int) int { return 2 + maxKeyLen + valueSize }

// RequiredServer returns the backing ORAM server shape.
func RequiredServer(opts Options) (slots, blockSize int, err error) {
	if err := (&opts).fill(); err != nil {
		return 0, 0, err
	}
	binBytes := opts.BinCap * slotSize(opts.MaxKeyLen, opts.ValueSize)
	s, bs := pathoram.TreeShape(opts.Capacity, binBytes, pathoram.Options{Rand: opts.Rand})
	return s, bs, nil
}

// Store is the ORAM-backed oblivious KVS.
type Store struct {
	oram  *pathoram.ORAM
	prf1  *crypto.PRF
	prf2  *crypto.PRF
	src   *rng.Source
	bins  int
	binSz int

	maxKeyLen int
	valueSize int
	binCap    int

	stash    map[string]block.Block
	stashCap int
	live     int
}

// Setup initializes an empty store over the server (shape per
// RequiredServer).
func Setup(server store.Server, opts Options) (*Store, error) {
	if err := (&opts).fill(); err != nil {
		return nil, err
	}
	key := opts.Key
	if key == (crypto.Key{}) {
		k, err := crypto.NewKey()
		if err != nil {
			return nil, err
		}
		key = k
	}
	binBytes := opts.BinCap * slotSize(opts.MaxKeyLen, opts.ValueSize)
	db, err := block.NewDatabase(opts.Capacity, binBytes)
	if err != nil {
		return nil, err
	}
	oram, err := pathoram.Setup(db, server, pathoram.Options{Key: key, Rand: opts.Rand.Split()})
	if err != nil {
		return nil, err
	}
	return &Store{
		oram:      oram,
		prf1:      crypto.NewPRF(key, "okvs-1"),
		prf2:      crypto.NewPRF(key, "okvs-2"),
		src:       opts.Rand,
		bins:      opts.Capacity,
		binSz:     binBytes,
		maxKeyLen: opts.MaxKeyLen,
		valueSize: opts.ValueSize,
		binCap:    opts.BinCap,
		stash:     make(map[string]block.Block),
		stashCap:  opts.StashCap,
	}, nil
}

// choices returns the two candidate bins. When the PRF choices collide,
// the second access targets a random decoy bin (real2 = false): the decoy
// keeps the two-access schedule uniform but must never store the key,
// since it changes per call.
func (s *Store) choices(u string) (c1, c2 int, real2 bool) {
	b := uint64(s.bins)
	c1 = int(s.prf1.EvalStringMod(u, b))
	c2 = int(s.prf2.EvalStringMod(u, b))
	if c1 != c2 {
		return c1, c2, true
	}
	return c1, s.src.IntnExcept(s.bins, c1), false
}

func (s *Store) slot(bin block.Block, i int) []byte {
	sz := slotSize(s.maxKeyLen, s.valueSize)
	return bin[i*sz : (i+1)*sz]
}

func (s *Store) findSlot(bin block.Block, u string) int {
	for i := 0; i < s.binCap; i++ {
		sl := s.slot(bin, i)
		if sl[0] != 0 && int(sl[1]) == len(u) && string(sl[2:2+len(u)]) == u {
			return i
		}
	}
	return -1
}

func (s *Store) freeSlot(bin block.Block) int {
	for i := 0; i < s.binCap; i++ {
		if s.slot(bin, i)[0] == 0 {
			return i
		}
	}
	return -1
}

func (s *Store) setSlot(bin block.Block, i int, u string, val block.Block) {
	sl := s.slot(bin, i)
	for j := range sl {
		sl[j] = 0
	}
	sl[0] = 1
	sl[1] = byte(len(u))
	copy(sl[2:], u)
	copy(sl[2+s.maxKeyLen:], val)
}

func (s *Store) clearSlot(bin block.Block, i int) {
	sl := s.slot(bin, i)
	for j := range sl {
		sl[j] = 0
	}
}

func (s *Store) valueOf(bin block.Block, i int) block.Block {
	sl := s.slot(bin, i)
	return block.Block(sl[2+s.maxKeyLen : 2+s.maxKeyLen+s.valueSize]).Copy()
}

// access performs the uniform two-ORAM-access schedule. mutate receives
// both fetched bins and returns the (possibly modified) bins to write
// back; writing identical contents is a fake update, so every operation
// type has the same view. Both bins are always rewritten.
func (s *Store) access(u string, mutate func(b1, b2 block.Block, real2 bool) error) error {
	if len(u) > s.maxKeyLen {
		return fmt.Errorf("%w: %d > %d", ErrKeyTooLong, len(u), s.maxKeyLen)
	}
	c1, c2, real2 := s.choices(u)
	b1, err := s.oram.Read(c1)
	if err != nil {
		return err
	}
	b2, err := s.oram.Read(c2)
	if err != nil {
		return err
	}
	if err := mutate(b1, b2, real2); err != nil {
		// Keep the schedule uniform even on logical failure.
		if _, werr := s.oram.Write(c1, b1); werr != nil {
			return werr
		}
		if _, werr := s.oram.Write(c2, b2); werr != nil {
			return werr
		}
		return err
	}
	if _, err := s.oram.Write(c1, b1); err != nil {
		return err
	}
	if _, err := s.oram.Write(c2, b2); err != nil {
		return err
	}
	return nil
}

// Get retrieves the value for u, with ok = false for ⊥.
func (s *Store) Get(u string) (val block.Block, ok bool, err error) {
	err = s.access(u, func(b1, b2 block.Block, real2 bool) error {
		if v, hit := s.stash[u]; hit {
			val, ok = v.Copy(), true
			return nil
		}
		if i := s.findSlot(b1, u); i >= 0 {
			val, ok = s.valueOf(b1, i), true
			return nil
		}
		if real2 {
			if i := s.findSlot(b2, u); i >= 0 {
				val, ok = s.valueOf(b2, i), true
			}
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return val, ok, nil
}

// Put inserts or updates u.
func (s *Store) Put(u string, val block.Block) error {
	if len(val) != s.valueSize {
		return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(val), s.valueSize)
	}
	return s.access(u, func(b1, b2 block.Block, real2 bool) error {
		if _, hit := s.stash[u]; hit {
			s.stash[u] = val.Copy()
			return nil
		}
		if i := s.findSlot(b1, u); i >= 0 {
			s.setSlot(b1, i, u, val)
			return nil
		}
		if real2 {
			if i := s.findSlot(b2, u); i >= 0 {
				s.setSlot(b2, i, u, val)
				return nil
			}
		}
		f1 := s.freeSlot(b1)
		f2 := -1
		if real2 {
			f2 = s.freeSlot(b2)
		}
		switch {
		case f1 >= 0 && (f2 < 0 || binLoad(b1, s) <= binLoad(b2, s)):
			s.setSlot(b1, f1, u, val)
		case f2 >= 0:
			s.setSlot(b2, f2, u, val)
		case len(s.stash) < s.stashCap:
			s.stash[u] = val.Copy()
		default:
			return fmt.Errorf("%w: key %q", ErrFull, u)
		}
		s.live++
		return nil
	})
}

func binLoad(bin block.Block, s *Store) int {
	load := 0
	for i := 0; i < s.binCap; i++ {
		if s.slot(bin, i)[0] != 0 {
			load++
		}
	}
	return load
}

// Delete removes u, reporting presence.
func (s *Store) Delete(u string) (found bool, err error) {
	err = s.access(u, func(b1, b2 block.Block, real2 bool) error {
		if _, hit := s.stash[u]; hit {
			delete(s.stash, u)
			s.live--
			found = true
			return nil
		}
		if i := s.findSlot(b1, u); i >= 0 {
			s.clearSlot(b1, i)
			s.live--
			found = true
			return nil
		}
		if real2 {
			if i := s.findSlot(b2, u); i >= 0 {
				s.clearSlot(b2, i)
				s.live--
				found = true
			}
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int { return s.live }

// StashLoad returns the client overflow stash occupancy.
func (s *Store) StashLoad() int { return len(s.stash) }

// BlocksPerOp returns the exact ORAM blocks moved per operation:
// 4 accesses (2 reads + 2 writes) × 2·Z·(height+1) each... each logical
// read/write is one full Path ORAM access, so 4 · BlocksPerAccess.
func (s *Store) BlocksPerOp() int { return 4 * s.oram.BlocksPerAccess() }

// ORAMStash exposes the Path ORAM stash size (client storage).
func (s *Store) ORAMStash() int { return s.oram.StashSize() }

// RoundTrips exposes the cumulative storage round trips of the backing
// ORAM (2 per access on the batched transport).
func (s *Store) RoundTrips() int64 { return s.oram.RoundTrips() }
