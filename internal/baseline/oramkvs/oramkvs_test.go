package oramkvs

import (
	"errors"
	"fmt"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func newStore(t *testing.T, capacity int) (*Store, *store.Counting) {
	t.Helper()
	opts := Options{
		Capacity:  capacity,
		ValueSize: 16,
		Rand:      rng.New(1),
		Key:       crypto.KeyFromSeed(1),
	}
	slots, bs, err := RequiredServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := store.NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	counting := store.NewCounting(srv)
	s, err := Setup(counting, opts)
	if err != nil {
		t.Fatal(err)
	}
	counting.Reset()
	return s, counting
}

func TestValidation(t *testing.T) {
	if _, _, err := RequiredServer(Options{Capacity: 1, ValueSize: 16, Rand: rng.New(1)}); err == nil {
		t.Fatal("capacity 1 accepted")
	}
	srv, _ := store.NewMem(16, 16)
	if _, err := Setup(srv, Options{Capacity: 16, ValueSize: 16}); err == nil {
		t.Fatal("nil Rand accepted")
	}
}

func TestPutGetDelete(t *testing.T) {
	s, _ := newStore(t, 64)
	if err := s.Put("alpha", block.Pattern(1, 16)); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("alpha")
	if err != nil || !ok || !block.CheckPattern(v, 1) {
		t.Fatalf("get: %v %v", err, ok)
	}
	if _, ok, _ := s.Get("missing"); ok {
		t.Fatal("phantom key")
	}
	found, err := s.Delete("alpha")
	if err != nil || !found {
		t.Fatalf("delete: %v %v", err, found)
	}
	if _, ok, _ := s.Get("alpha"); ok {
		t.Fatal("key survived delete")
	}
}

func TestWorkloadAgainstReference(t *testing.T) {
	s, _ := newStore(t, 128)
	ref := make(map[string]block.Block)
	src := rng.New(2)
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	for step := 0; step < 1500; step++ {
		k := keys[src.Intn(len(keys))]
		switch src.Intn(3) {
		case 0:
			v := block.Pattern(uint64(step), 16)
			if err := s.Put(k, v); err != nil {
				t.Fatalf("step %d put: %v", step, err)
			}
			ref[k] = v
		case 1:
			got, ok, err := s.Get(k)
			if err != nil {
				t.Fatalf("step %d get: %v", step, err)
			}
			want, refOK := ref[k]
			if ok != refOK || (ok && !got.Equal(want)) {
				t.Fatalf("step %d: mismatch on %q", step, k)
			}
		default:
			found, err := s.Delete(k)
			if err != nil {
				t.Fatalf("step %d del: %v", step, err)
			}
			if _, refOK := ref[k]; found != refOK {
				t.Fatalf("step %d: delete presence mismatch", step)
			}
			delete(ref, k)
		}
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len %d vs ref %d", step, s.Len(), len(ref))
		}
	}
}

func TestUniformCost(t *testing.T) {
	// Every operation costs exactly 4 ORAM accesses — obliviousness at the
	// schedule level.
	s, counting := newStore(t, 64)
	perOp := int64(s.BlocksPerOp())
	ops := []func() error{
		func() error { return s.Put("k", block.Pattern(1, 16)) },
		func() error { _, _, err := s.Get("k"); return err },
		func() error { _, _, err := s.Get("absent"); return err },
		func() error { _, err := s.Delete("nope"); return err },
	}
	for i, op := range ops {
		counting.Reset()
		if err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got := counting.Stats().Ops(); got != perOp {
			t.Fatalf("op %d moved %d blocks, want %d", i, got, perOp)
		}
	}
}

func TestCostIsLogN(t *testing.T) {
	// The contrast with DP-KVS: blocks/op grows with lg n.
	small, _ := newStore(t, 1<<6)
	large, _ := newStore(t, 1<<12)
	if large.BlocksPerOp() <= small.BlocksPerOp() {
		t.Fatal("ORAM KVS cost did not grow with n")
	}
}

func TestFillCapacityHalf(t *testing.T) {
	// Fill to half capacity (a comfortable two-choice load) and read back.
	s, _ := newStore(t, 256)
	for i := 0; i < 128; i++ {
		if err := s.Put(fmt.Sprintf("key-%03d", i), block.Pattern(uint64(i), 16)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 128; i++ {
		v, ok, err := s.Get(fmt.Sprintf("key-%03d", i))
		if err != nil || !ok || !block.CheckPattern(v, uint64(i)) {
			t.Fatalf("readback %d failed", i)
		}
	}
	if s.StashLoad() > 16 {
		t.Fatalf("overflow stash %d too large at half load", s.StashLoad())
	}
}

func TestKeyTooLong(t *testing.T) {
	s, _ := newStore(t, 64)
	long := make([]byte, 300)
	if err := s.Put(string(long), block.Pattern(1, 16)); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestValueSizeEnforced(t *testing.T) {
	s, _ := newStore(t, 64)
	if err := s.Put("k", block.New(4)); err == nil {
		t.Fatal("wrong-size value accepted")
	}
}
