package pathoram

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dpstore/internal/block"
	"dpstore/internal/store"
	"dpstore/internal/workload"
)

// Recursive is Path ORAM with recursively outsourced position maps: the
// data ORAM's position map is packed into blocks of a smaller ORAM, whose
// own map is packed into a yet smaller one, down to a client-held table of
// at most Cutoff entries. This is the configuration the paper's Section 1
// discussion of Root ORAM [50] refers to: small client storage is bought
// with Θ(log n) additional round trips per access, because every level of
// the recursion performs its own read-path/write-path pair.
type Recursive struct {
	data *ORAM
	maps []*ORAM // maps[0] backs data's positions; maps[j+1] backs maps[j]'s
	top  localPosMap
	pack int
}

// RecursiveOptions configures a Recursive ORAM.
type RecursiveOptions struct {
	// Pack is the number of positions packed per map block; zero selects 4.
	// Constant Pack gives Θ(log n) recursion depth.
	Pack int
	// Cutoff is the largest client-held top-level table; zero selects 16.
	Cutoff int
	// Inner configures every level's Path ORAM. Inner.Rand is required.
	Inner Options
}

// ServerFactory allocates a backing server of the given shape for one
// recursion level. Experiments pass factories that wrap each level in its
// own counting server.
type ServerFactory func(level, slots, blockSize int) (store.Server, error)

// MemFactory is a ServerFactory backed by in-memory servers.
func MemFactory(level, slots, blockSize int) (store.Server, error) {
	return store.NewMem(slots, blockSize)
}

// SetupRecursive builds the full recursion for db.
func SetupRecursive(db *block.Database, factory ServerFactory, opts RecursiveOptions) (*Recursive, error) {
	if opts.Inner.Rand == nil {
		return nil, errors.New("pathoram: RecursiveOptions.Inner.Rand is required")
	}
	pack := opts.Pack
	if pack == 0 {
		pack = 4
	}
	if pack < 2 {
		return nil, fmt.Errorf("pathoram: pack %d must be ≥ 2", pack)
	}
	cutoff := opts.Cutoff
	if cutoff == 0 {
		cutoff = 16
	}

	r := &Recursive{pack: pack}

	makeORAM := func(level int, d *block.Database) (*ORAM, error) {
		o := opts.Inner
		o.Rand = opts.Inner.Rand.Split()
		slots, bs := TreeShape(d.Len(), d.BlockSize(), o)
		srv, err := factory(level, slots, bs)
		if err != nil {
			return nil, fmt.Errorf("pathoram: allocating level-%d server: %w", level, err)
		}
		return Setup(d, srv, o)
	}

	data, err := makeORAM(0, db)
	if err != nil {
		return nil, err
	}
	r.data = data

	// Build map levels until the table fits the client.
	cur := data
	level := 1
	for {
		positions := cur.positions()
		if len(positions) <= cutoff {
			// cur keeps its local map; record its size for accounting.
			r.top = append(localPosMap(nil), positions...)
			break
		}
		mapDB, err := packPositions(positions, pack)
		if err != nil {
			return nil, err
		}
		m, err := makeORAM(level, mapDB)
		if err != nil {
			return nil, err
		}
		cur.setPositionMap(&oramPosMap{oram: m, pack: pack})
		r.maps = append(r.maps, m)
		cur = m
		level++
	}
	return r, nil
}

// packPositions builds the database of a map level: block g packs the
// positions of entries g·pack … g·pack+pack−1 as big-endian uint32s.
func packPositions(positions []int, pack int) (*block.Database, error) {
	nBlocks := (len(positions) + pack - 1) / pack
	if nBlocks < 2 {
		nBlocks = 2 // ORAM minimum; the tail block is unused padding
	}
	db, err := block.NewDatabase(nBlocks, 4*pack)
	if err != nil {
		return nil, err
	}
	for i, p := range positions {
		b := db.Get(i / pack)
		binary.BigEndian.PutUint32(b[4*(i%pack):], uint32(p))
	}
	return db, nil
}

// oramPosMap serves Swap(i, new) by a single read-modify-write access on
// the packed map ORAM.
type oramPosMap struct {
	oram *ORAM
	pack int
}

func (m *oramPosMap) Swap(i, newLeaf int) (int, error) {
	g, off := i/m.pack, i%m.pack
	var old int
	err := m.oram.access(g, func(cur block.Block) block.Block {
		old = int(binary.BigEndian.Uint32(cur[4*off:]))
		out := cur.Copy()
		binary.BigEndian.PutUint32(out[4*off:], uint32(newLeaf))
		return out
	})
	if err != nil {
		return 0, fmt.Errorf("pathoram: recursive position swap: %w", err)
	}
	return old, nil
}

// Read retrieves record i.
func (r *Recursive) Read(i int) (block.Block, error) {
	return r.data.Access(workload.Query{Index: i, Op: workload.Read})
}

// Write overwrites record i and returns the previous value.
func (r *Recursive) Write(i int, b block.Block) (block.Block, error) {
	return r.data.Write(i, b)
}

// Access performs one logical access, recursing through every map level.
func (r *Recursive) Access(q workload.Query) (block.Block, error) {
	return r.data.Access(q)
}

// Levels returns the number of ORAMs in the recursion (data + maps).
func (r *Recursive) Levels() int { return 1 + len(r.maps) }

// RoundTrips sums round trips across all levels.
func (r *Recursive) RoundTrips() int64 {
	total := r.data.RoundTrips()
	for _, m := range r.maps {
		total += m.RoundTrips()
	}
	return total
}

// Accesses returns logical (data-level) accesses.
func (r *Recursive) Accesses() int64 { return r.data.Accesses() }

// BlocksPerAccess sums the per-level path costs — the total blocks moved
// per logical access.
func (r *Recursive) BlocksPerAccess() int {
	total := r.data.BlocksPerAccess()
	for _, m := range r.maps {
		total += m.BlocksPerAccess()
	}
	return total
}

// ClientState returns the client-held entries: top-level table size plus
// current stash occupancy of every level.
func (r *Recursive) ClientState() int {
	total := len(r.top) + r.data.StashSize()
	for _, m := range r.maps {
		total += m.StashSize()
	}
	return total
}

// topLevelSize is exposed for tests.
func (r *Recursive) topLevelSize() int { return len(r.top) }
