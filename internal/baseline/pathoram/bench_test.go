package pathoram

import (
	"fmt"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func benchORAM(b *testing.B, n int, opts Options) *ORAM {
	b.Helper()
	db, err := block.PatternDatabase(n, block.DefaultSize)
	if err != nil {
		b.Fatal(err)
	}
	slots, bs := TreeShape(n, block.DefaultSize, opts)
	srv, err := store.NewMem(slots, bs)
	if err != nil {
		b.Fatal(err)
	}
	o, err := Setup(db, srv, opts)
	if err != nil {
		b.Fatal(err)
	}
	return o
}

func BenchmarkReadFlat(b *testing.B) {
	b.ReportAllocs()
	o := benchORAM(b, 1<<12, Options{Rand: rng.New(1), Key: crypto.KeyFromSeed(1)})
	b.ReportMetric(float64(o.BlocksPerAccess()), "blocks/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Read(i % (1 << 12)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadByZ is the bucket-size ablation.
func BenchmarkReadByZ(b *testing.B) {
	b.ReportAllocs()
	for _, z := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("Z=%d", z), func(b *testing.B) {
			b.ReportAllocs()
			o := benchORAM(b, 1<<10, Options{Z: z, Rand: rng.New(1), Key: crypto.KeyFromSeed(1)})
			b.ReportMetric(float64(o.BlocksPerAccess()), "blocks/op")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.Read(i % (1 << 10)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadRecursive(b *testing.B) {
	b.ReportAllocs()
	db, err := block.PatternDatabase(1<<12, 16)
	if err != nil {
		b.Fatal(err)
	}
	r, err := SetupRecursive(db, MemFactory, RecursiveOptions{
		Pack:   4,
		Cutoff: 8,
		Inner:  Options{Rand: rng.New(1), Key: crypto.KeyFromSeed(1)},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(r.BlocksPerAccess()), "blocks/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(i % (1 << 12)); err != nil {
			b.Fatal(err)
		}
	}
}
