package pathoram

import (
	"errors"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func newORAM(t *testing.T, n int, opts Options) (*ORAM, *store.Counting) {
	t.Helper()
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Rand == nil {
		opts.Rand = rng.New(1)
	}
	if opts.Key == (crypto.Key{}) && !opts.DisableEncryption {
		opts.Key = crypto.KeyFromSeed(1)
	}
	slots, bs := TreeShape(n, 16, opts)
	srv, err := store.NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	counting := store.NewCounting(srv)
	o, err := Setup(db, counting, opts)
	if err != nil {
		t.Fatal(err)
	}
	counting.Reset()
	return o, counting
}

func TestSetupValidation(t *testing.T) {
	db, _ := block.PatternDatabase(8, 16)
	slots, bs := TreeShape(8, 16, Options{})
	srv, _ := store.NewMem(slots, bs)
	if _, err := Setup(db, srv, Options{}); err == nil {
		t.Fatal("nil Rand accepted")
	}
	bad, _ := store.NewMem(slots-1, bs)
	if _, err := Setup(db, bad, Options{Rand: rng.New(1)}); err == nil {
		t.Fatal("wrong server shape accepted")
	}
}

func TestReadAfterSetup(t *testing.T) {
	n := 64
	o, _ := newORAM(t, n, Options{})
	for i := 0; i < n; i++ {
		b, err := o.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if !block.CheckPattern(b, uint64(i)) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestReadWriteAgainstReference(t *testing.T) {
	n := 64
	o, _ := newORAM(t, n, Options{})
	ref := make([]block.Block, n)
	for i := range ref {
		ref[i] = block.Pattern(uint64(i), 16)
	}
	src := rng.New(2)
	for step := 0; step < 3000; step++ {
		i := src.Intn(n)
		if src.Bernoulli(0.4) {
			v := block.Pattern(uint64(5000+step), 16)
			prev, err := o.Write(i, v)
			if err != nil {
				t.Fatal(err)
			}
			if !prev.Equal(ref[i]) {
				t.Fatalf("step %d: stale previous value", step)
			}
			ref[i] = v
		} else {
			got, err := o.Read(i)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref[i]) {
				t.Fatalf("step %d: Read(%d) diverged", step, i)
			}
		}
	}
}

func TestExactPathCost(t *testing.T) {
	for _, n := range []int{16, 256, 1024} {
		o, counting := newORAM(t, n, Options{})
		const queries = 100
		src := rng.New(3)
		for i := 0; i < queries; i++ {
			if _, err := o.Read(src.Intn(n)); err != nil {
				t.Fatal(err)
			}
		}
		st := counting.Stats()
		perPath := int64(o.Z() * (o.Height() + 1))
		if st.Downloads != queries*perPath || st.Uploads != queries*perPath {
			t.Fatalf("n=%d: ops = (%d,%d), want (%d,%d)",
				n, st.Downloads, st.Uploads, queries*perPath, queries*perPath)
		}
		if o.BlocksPerAccess() != int(2*perPath) {
			t.Fatalf("BlocksPerAccess = %d, want %d", o.BlocksPerAccess(), 2*perPath)
		}
	}
}

func TestOverheadIsLogarithmic(t *testing.T) {
	// Path ORAM blocks/access must grow linearly in lg n — the separation
	// from DP-RAM's constant 3.
	small, _ := newORAM(t, 1<<6, Options{})
	large, _ := newORAM(t, 1<<12, Options{})
	if large.BlocksPerAccess() <= small.BlocksPerAccess() {
		t.Fatal("ORAM cost did not grow with n")
	}
	// 2·Z·(lg n + 1): ratio should be ≈ 13/7.
	ratio := float64(large.BlocksPerAccess()) / float64(small.BlocksPerAccess())
	if ratio < 1.5 || ratio > 2.2 {
		t.Fatalf("cost ratio %v, want ≈ 13/7", ratio)
	}
}

func TestStashStaysSmall(t *testing.T) {
	n := 1 << 10
	o, _ := newORAM(t, n, Options{})
	src := rng.New(4)
	for i := 0; i < 5000; i++ {
		if _, err := o.Read(src.Intn(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Path ORAM stash is O(log n)·ω(1) w.h.p.; 60 is a generous ceiling
	// for n = 1024, Z = 4.
	if o.MaxStashSize() > 60 {
		t.Fatalf("max stash %d; eviction is broken", o.MaxStashSize())
	}
}

func TestRoundTripsTwoPerAccess(t *testing.T) {
	o, _ := newORAM(t, 64, Options{})
	src := rng.New(5)
	const queries = 50
	for i := 0; i < queries; i++ {
		if _, err := o.Read(src.Intn(64)); err != nil {
			t.Fatal(err)
		}
	}
	if o.RoundTrips() != 2*queries {
		t.Fatalf("round trips = %d, want %d", o.RoundTrips(), 2*queries)
	}
	if o.Accesses() != queries {
		t.Fatalf("accesses = %d", o.Accesses())
	}
}

func TestPlaintextModeWorks(t *testing.T) {
	n := 32
	o, _ := newORAM(t, n, Options{DisableEncryption: true})
	for i := 0; i < n; i++ {
		b, err := o.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if !block.CheckPattern(b, uint64(i)) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestWriteSizeValidation(t *testing.T) {
	o, _ := newORAM(t, 16, Options{})
	if _, err := o.Write(0, block.New(8)); err == nil {
		t.Fatal("wrong-size write accepted")
	}
	if _, err := o.Read(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := o.Read(16); err == nil {
		t.Fatal("overflow index accepted")
	}
}

// --- Recursive variant -------------------------------------------------------

func newRecursive(t *testing.T, n int, opts RecursiveOptions) *Recursive {
	t.Helper()
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Inner.Rand == nil {
		opts.Inner.Rand = rng.New(6)
	}
	if opts.Inner.Key == (crypto.Key{}) && !opts.Inner.DisableEncryption {
		opts.Inner.Key = crypto.KeyFromSeed(2)
	}
	r, err := SetupRecursive(db, MemFactory, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecursiveCorrectness(t *testing.T) {
	n := 128
	r := newRecursive(t, n, RecursiveOptions{})
	ref := make([]block.Block, n)
	for i := range ref {
		ref[i] = block.Pattern(uint64(i), 16)
	}
	src := rng.New(7)
	for step := 0; step < 1500; step++ {
		i := src.Intn(n)
		if src.Bernoulli(0.3) {
			v := block.Pattern(uint64(9000+step), 16)
			if _, err := r.Write(i, v); err != nil {
				t.Fatal(err)
			}
			ref[i] = v
		} else {
			got, err := r.Read(i)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref[i]) {
				t.Fatalf("step %d: Read(%d) diverged", step, i)
			}
		}
	}
}

func TestRecursiveDepthGrows(t *testing.T) {
	small := newRecursive(t, 64, RecursiveOptions{Pack: 4, Cutoff: 8})
	large := newRecursive(t, 4096, RecursiveOptions{Pack: 4, Cutoff: 8})
	if large.Levels() <= small.Levels() {
		t.Fatalf("levels did not grow: %d vs %d", small.Levels(), large.Levels())
	}
	if small.topLevelSize() > 8 || large.topLevelSize() > 8 {
		t.Fatal("top level exceeds cutoff")
	}
}

func TestRecursiveRoundTripsScaleWithLevels(t *testing.T) {
	n := 1024
	r := newRecursive(t, n, RecursiveOptions{Pack: 4, Cutoff: 8})
	src := rng.New(8)
	const queries = 50
	for i := 0; i < queries; i++ {
		if _, err := r.Read(src.Intn(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Every access touches each level exactly once: 2 round trips each.
	want := int64(2 * r.Levels() * queries)
	if r.RoundTrips() != want {
		t.Fatalf("round trips = %d, want %d (levels = %d)", r.RoundTrips(), want, r.Levels())
	}
	// This is the Root-ORAM comparison: round trips per access must exceed
	// the flat ORAM's 2 and DP-RAM's 2.
	if r.Levels() < 3 {
		t.Fatalf("recursion too shallow (%d levels) for n = %d", r.Levels(), n)
	}
}

func TestRecursiveClientStateSmall(t *testing.T) {
	n := 4096
	r := newRecursive(t, n, RecursiveOptions{Pack: 4, Cutoff: 8})
	src := rng.New(9)
	for i := 0; i < 500; i++ {
		if _, err := r.Read(src.Intn(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Client state = top table + stashes ≪ n.
	if st := r.ClientState(); st > n/8 {
		t.Fatalf("client state %d not sublinear in n = %d", st, n)
	}
}

func TestRecursiveValidation(t *testing.T) {
	db, _ := block.PatternDatabase(16, 16)
	if _, err := SetupRecursive(db, MemFactory, RecursiveOptions{}); err == nil {
		t.Fatal("nil Rand accepted")
	}
	if _, err := SetupRecursive(db, MemFactory, RecursiveOptions{Pack: 1, Inner: Options{Rand: rng.New(1)}}); err == nil {
		t.Fatal("pack=1 accepted")
	}
}

// TestFaultedEvictionPreservesStash: a failed path write must leave every
// placed block in the stash — the server path was not rewritten, so the
// stash holds the only current copies. A retry after the transient fault
// must still return the written value.
func TestFaultedEvictionPreservesStash(t *testing.T) {
	const n = 8
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rand: rng.New(4), Key: crypto.KeyFromSeed(4)}
	slots, bs := TreeShape(n, 16, opts)
	srv, err := store.NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	// Op schedule: setup = slots uploads; each access = perPath reads then
	// perPath writes. Fault the first write of the second access (the one
	// evicting the freshly written block).
	perPath := int64(4 * 4) // Z=4, height+1=4 at n=8
	failAt := int64(slots) + 2*perPath + perPath + 1
	faulty := store.NewFaulty(srv, failAt, nil)
	o, err := Setup(db, faulty, opts)
	if err != nil {
		t.Fatal(err)
	}
	if int64(o.Z()*(o.Height()+1)) != perPath {
		t.Fatalf("perPath = %d, want %d", o.Z()*(o.Height()+1), perPath)
	}
	want := block.Pattern(4242, 16)
	if _, err := o.Write(3, want); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(3); !errors.Is(err, store.ErrInjected) {
		t.Fatalf("faulted read: err = %v, want ErrInjected", err)
	}
	got, err := o.Read(3)
	if err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("retry returned stale data: eviction failure dropped the stash copy")
	}
}

// TestTransientFaultConsistency fuzzes the failure-recovery invariant: one
// transient fault is injected at each of a range of operation offsets, the
// faulted access is retried once, and every subsequent read must match a
// reference map — catching both lost updates and stale-copy resurrection
// from partially written paths.
func TestTransientFaultConsistency(t *testing.T) {
	const n, rounds = 16, 120
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	for offset := int64(1); offset <= 40; offset += 3 {
		opts := Options{Rand: rng.New(9), Key: crypto.KeyFromSeed(9)}
		slots, bs := TreeShape(n, 16, opts)
		srv, err := store.NewMem(slots, bs)
		if err != nil {
			t.Fatal(err)
		}
		faulty := store.NewFaulty(srv, int64(slots)+offset, nil)
		o, err := Setup(db, faulty, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := make(map[int]block.Block)
		for i := 0; i < n; i++ {
			ref[i] = block.Pattern(uint64(i), 16)
		}
		w := rng.New(offset)
		sawFault := false
		for r := 0; r < rounds; r++ {
			idx := w.Intn(n)
			if w.Bernoulli(0.4) {
				val := block.Pattern(uint64(1000+r), 16)
				_, err := o.Write(idx, val)
				if errors.Is(err, store.ErrInjected) {
					sawFault = true
					if _, err := o.Write(idx, val); err != nil {
						t.Fatalf("offset %d round %d: write retry failed: %v", offset, r, err)
					}
				} else if err != nil {
					t.Fatalf("offset %d round %d: write: %v", offset, r, err)
				}
				ref[idx] = val
			} else {
				got, err := o.Read(idx)
				if errors.Is(err, store.ErrInjected) {
					sawFault = true
					got, err = o.Read(idx)
				}
				if err != nil {
					t.Fatalf("offset %d round %d: read: %v", offset, r, err)
				}
				if !got.Equal(ref[idx]) {
					t.Fatalf("offset %d round %d: stale read of %d after transient fault", offset, r, idx)
				}
			}
		}
		if !sawFault {
			t.Fatalf("offset %d: fault never fired", offset)
		}
	}
}
