package pathoram

import (
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/trace"
)

// TestTranscriptIsAlwaysOnePath checks the structural obliviousness
// property: every access touches exactly the 2·Z·(height+1) slots of one
// root-to-leaf path — downloads first, then uploads of the same slots.
func TestTranscriptIsAlwaysOnePath(t *testing.T) {
	const n = 64
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rand: rng.New(1), Key: crypto.KeyFromSeed(1)}
	slots, bs := TreeShape(n, 16, opts)
	srv, err := store.NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(srv)
	o, err := Setup(db, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec.Reset()
	src := rng.New(2)
	for i := 0; i < 100; i++ {
		rec.Mark()
		if _, err := o.Read(src.Intn(n)); err != nil {
			t.Fatal(err)
		}
	}
	for qi, q := range rec.Queries() {
		perPath := o.Z() * (o.Height() + 1)
		if len(q) != 2*perPath {
			t.Fatalf("access %d touched %d slots, want %d", qi, len(q), 2*perPath)
		}
		// First half downloads, second half uploads, same slot sets.
		down := map[int]int{}
		up := map[int]int{}
		for i, a := range q {
			if i < perPath {
				if a.Op != trace.OpDownload {
					t.Fatalf("access %d op %d: expected download phase", qi, i)
				}
				down[a.Addr]++
			} else {
				if a.Op != trace.OpUpload {
					t.Fatalf("access %d op %d: expected upload phase", qi, i)
				}
				up[a.Addr]++
			}
		}
		if len(down) != perPath || len(up) != perPath {
			t.Fatalf("access %d revisited slots: %d down, %d up distinct", qi, len(down), len(up))
		}
		for addr := range down {
			if up[addr] != 1 {
				t.Fatalf("access %d: slot %d downloaded but not re-uploaded", qi, addr)
			}
		}
		// All slots belong to buckets of a single root-to-leaf path: the
		// bucket set must contain exactly height+1 nodes including root 0.
		buckets := map[int]bool{}
		for addr := range down {
			buckets[addr/o.Z()] = true
		}
		if len(buckets) != o.Height()+1 {
			t.Fatalf("access %d touched %d buckets, want %d", qi, len(buckets), o.Height()+1)
		}
		if !buckets[0] {
			t.Fatalf("access %d did not touch the root bucket", qi)
		}
		// Each non-root bucket's parent is also in the set (path property).
		for bkt := range buckets {
			if bkt == 0 {
				continue
			}
			if !buckets[(bkt-1)/2] {
				t.Fatalf("access %d: bucket %d present without its parent", qi, bkt)
			}
		}
	}
}

// TestPositionRemapFreshness checks that repeated accesses to one block
// touch different leaves over time (the remap that obliviousness rests on).
func TestPositionRemapFreshness(t *testing.T) {
	const n = 64
	db, _ := block.PatternDatabase(n, 16)
	opts := Options{Rand: rng.New(3), Key: crypto.KeyFromSeed(2)}
	slots, bs := TreeShape(n, 16, opts)
	srv, _ := store.NewMem(slots, bs)
	rec := trace.NewRecorder(srv)
	o, err := Setup(db, rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec.Reset()
	leafOf := func(q trace.Transcript) int {
		// The deepest bucket touched identifies the leaf.
		maxBkt := 0
		for _, a := range q {
			if b := a.Addr / o.Z(); b > maxBkt {
				maxBkt = b
			}
		}
		return maxBkt
	}
	seen := map[int]bool{}
	const accesses = 40
	for i := 0; i < accesses; i++ {
		rec.Mark()
		if _, err := o.Read(7); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range rec.Queries() {
		seen[leafOf(q)] = true
	}
	// 40 accesses over 64 leaves: expect many distinct paths; a static
	// path would mean the remap is broken.
	if len(seen) < 10 {
		t.Fatalf("only %d distinct leaves over %d accesses to one block; remap broken", len(seen), accesses)
	}
}
