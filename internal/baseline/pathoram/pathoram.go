// Package pathoram implements Path ORAM (Stefanov et al. [48]), the
// oblivious-RAM baseline the paper positions DP-RAM against.
//
// Path ORAM provides full obliviousness (ε = 0, δ = negl(n)) at the
// Ω(log n) overhead the ORAM lower bounds [27, 37] make unavoidable: every
// access reads and rewrites one root-to-leaf path of a binary tree with
// Z-slot buckets, moving 2·Z·(height+1) = Θ(log n) blocks. The recursive
// variant (see recursive.go) outsources the position map the way Root
// ORAM [50] does, paying Θ(log n) round trips per access — the comparison
// point for the paper's claim that DP-RAM needs only O(1) round trips and
// O(1) overhead at ε = Θ(log n).
package pathoram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dpstore/internal/block"
	"dpstore/internal/crypto"
	"dpstore/internal/mathx"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/workload"
)

// dummyID marks an empty slot.
const dummyID = ^uint64(0)

// slotHeader is the slot metadata: 8-byte id plus 4-byte position tag. Real
// blocks carry their current leaf assignment with them (the standard
// denormalization that lets eviction run without position-map lookups,
// which is what makes the recursive variant workable).
const slotHeader = 12

// Options configures a Path ORAM client.
type Options struct {
	// Z is the bucket size; zero selects the standard Z = 4.
	Z int
	// Key is the client master key (zero means sample fresh).
	Key crypto.Key
	// Rand is the coin source. Required.
	Rand *rng.Source
	// DisableEncryption stores plaintext slots while preserving the access
	// pattern; for measurement only.
	DisableEncryption bool
}

// positionMap abstracts where the client keeps pos[i]: a local slice for
// flat Path ORAM, or the next recursion level's ORAM.
type positionMap interface {
	// Swap sets pos[i] = newLeaf and returns the previous value.
	Swap(i, newLeaf int) (old int, err error)
}

type localPosMap []int

func (m localPosMap) Swap(i, newLeaf int) (int, error) {
	old := m[i]
	m[i] = newLeaf
	return old, nil
}

// stashEntry is a block waiting in the client stash, tagged with its
// current leaf assignment.
type stashEntry struct {
	pos  int
	data block.Block
}

// ORAM is a Path ORAM client. Not safe for concurrent use.
type ORAM struct {
	n         int
	z         int
	height    int // tree levels are 0 (root) .. height (leaves)
	numLeaves int
	server    store.BatchServer
	cipher    *crypto.Cipher
	key       crypto.Key // master key behind cipher; serialized by MarshalState
	pos       positionMap
	stash     map[int]stashEntry
	src       *rng.Source

	plainSize int
	slotPlain int
	plaintext bool

	// A path write that fails leaves the tree holding stale copies of the
	// blocks that were being evicted (the stash keeps the current ones).
	// The sealed rewrite is buffered here and replayed before the next
	// access, restoring the one-live-copy-per-block invariant as soon as
	// the transport heals; the stash entries in pendingEvict are released
	// only when the replay lands.
	pendingWrite []store.WriteOp
	pendingEvict []int

	// Per-access scratch, reused across accesses (ORAM is single-threaded).
	// BatchServer implementations never retain the caller's slices or blocks
	// past the call, so reuse is safe — with one exception: when a path
	// write fails, evict parks its op list (and the slab backing the parked
	// blocks: slotSlab in plaintext mode, ctSlab in encrypted mode) in
	// pendingWrite for replay, so those scratches are surrendered (nil'd)
	// there and reallocated lazily on the next access.
	pathBuf  []int           // pathNodes result
	addrBuf  []int           // read-phase address list
	opBuf    []store.WriteOp // eviction write ops
	evictBuf []int           // ids placed by the current eviction
	taken    map[int]bool    // ids already placed on the current path
	placed   []int           // per-bucket placement list
	ctView   [][]byte        // read-phase OpenBatch input lens
	ptSlab   []byte          // read-phase OpenBatch output (decrypted path)
	slotSlab []byte          // eviction slot plaintext staging (both modes)
	ctSlab   []byte          // eviction SealBatch output (encrypted mode)

	maxStash   int
	roundTrips int64
	accesses   int64
}

// TreeShape returns (slots, serverBlockSize) for a Path ORAM over n records
// of plainSize bytes: a binary tree with 2^⌈lg n⌉ leaves, Z slots per
// bucket, each slot an (id ‖ posTag ‖ payload) record, encrypted unless
// disabled.
func TreeShape(n, plainSize int, opts Options) (slots, blockSize int) {
	z := opts.Z
	if z == 0 {
		z = 4
	}
	leaves := mathx.NextPow2(n)
	nodes := 2*leaves - 1
	slotPlain := slotHeader + plainSize
	bs := slotPlain
	if !opts.DisableEncryption {
		bs = crypto.CiphertextSize(slotPlain)
	}
	return nodes * z, bs
}

// Setup builds a Path ORAM holding db on the given server, which must match
// TreeShape. Every block is assigned a uniform leaf and placed greedily
// into the deepest non-full bucket on its path; overflow starts in the
// stash (rare at Z = 4).
func Setup(db *block.Database, server store.Server, opts Options) (*ORAM, error) {
	if opts.Rand == nil {
		return nil, errors.New("pathoram: Options.Rand is required")
	}
	n := db.Len()
	if n < 2 {
		return nil, fmt.Errorf("pathoram: database must hold ≥ 2 records, got %d", n)
	}
	z := opts.Z
	if z == 0 {
		z = 4
	}
	wantSlots, wantBS := TreeShape(n, db.BlockSize(), opts)
	if server.Size() != wantSlots || server.BlockSize() != wantBS {
		return nil, fmt.Errorf("pathoram: server shape (%d,%d), want (%d,%d)",
			server.Size(), server.BlockSize(), wantSlots, wantBS)
	}
	leaves := mathx.NextPow2(n)
	o := &ORAM{
		n:         n,
		z:         z,
		height:    mathx.FloorLog2(leaves),
		numLeaves: leaves,
		server:    store.AsBatch(server),
		stash:     make(map[int]stashEntry),
		src:       opts.Rand,
		plainSize: db.BlockSize(),
		slotPlain: slotHeader + db.BlockSize(),
		plaintext: opts.DisableEncryption,
	}
	pm := make(localPosMap, n)
	for i := range pm {
		pm[i] = o.src.Intn(leaves)
	}
	o.pos = pm
	if !o.plaintext {
		key := opts.Key
		if key == (crypto.Key{}) {
			k, err := crypto.NewKey()
			if err != nil {
				return nil, err
			}
			key = k
		}
		o.key = key
		o.cipher = crypto.NewCipher(key)
	}

	// Initial placement, all client-side, then one bulk upload.
	occupancy := make([][]int, 2*leaves-1) // node → block ids
	for i := 0; i < n; i++ {
		placed := false
		for _, node := range o.pathNodes(pm[i]) { // deepest first
			if len(occupancy[node]) < z {
				occupancy[node] = append(occupancy[node], i)
				placed = true
				break
			}
		}
		if !placed {
			o.stash[i] = stashEntry{pos: pm[i], data: db.Get(i).Copy()}
		}
	}
	w := store.NewBatchWriter(o.server)
	for node, ids := range occupancy {
		for zi := 0; zi < z; zi++ {
			var sl block.Block
			if zi < len(ids) {
				id := ids[zi]
				sl = o.sealSlot(uint64(id), pm[id], db.Get(id))
			} else {
				sl = o.sealSlot(dummyID, 0, nil)
			}
			if err := w.Add(node*z+zi, sl); err != nil {
				return nil, fmt.Errorf("pathoram: setup upload: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return nil, fmt.Errorf("pathoram: setup upload: %w", err)
	}
	o.trackStash()
	return o, nil
}

// positions snapshots the local position map; only meaningful before an
// external map replaces it (recursion construction time).
func (o *ORAM) positions() []int {
	pm, ok := o.pos.(localPosMap)
	if !ok {
		panic("pathoram: positions() after position map replacement")
	}
	return append([]int(nil), pm...)
}

// setPositionMap replaces the position map. The new map must already hold
// the same assignments as the old one; the recursion constructor guarantees
// this by building the next level from positions().
func (o *ORAM) setPositionMap(pm positionMap) { o.pos = pm }

// pathNodes returns the tree node indices on the path of leaf, ordered
// deepest (leaf bucket) to root. Node 0 is the root; node i has children
// 2i+1 and 2i+2; leaf ℓ is node numLeaves−1+ℓ. The returned slice is the
// reusable o.pathBuf scratch: valid until the next pathNodes call, which
// every caller (the setup placement loop and access) respects.
func (o *ORAM) pathNodes(leaf int) []int {
	if cap(o.pathBuf) < o.height+1 {
		o.pathBuf = make([]int, 0, o.height+1)
	}
	nodes := o.pathBuf[:0]
	node := o.numLeaves - 1 + leaf
	for {
		nodes = append(nodes, node)
		if node == 0 {
			return nodes
		}
		node = (node - 1) / 2
	}
}

// stageSlot writes the (id ‖ posTag ‖ payload) slot plaintext into pt,
// which must be exactly slotPlain bytes. A nil payload stages a dummy with
// a cleared body so stale bytes never leak into a sealed slot.
func stageSlot(pt block.Block, id uint64, pos int, payload block.Block) {
	pt.SetUint64(id)
	binary.BigEndian.PutUint32(pt[8:12], uint32(pos))
	if payload != nil {
		copy(pt[slotHeader:], payload)
	} else {
		clear(pt[slotHeader:])
	}
}

// sealSlot allocates and seals one slot — the setup path, where the batch
// writer retains blocks until its flush.
func (o *ORAM) sealSlot(id uint64, pos int, payload block.Block) block.Block {
	pt := block.New(o.slotPlain)
	stageSlot(pt, id, pos, payload)
	if o.plaintext {
		return pt
	}
	return block.Block(o.cipher.Encrypt(pt))
}

// ingestSlot parses a decrypted slot and moves a real, not-yet-stashed
// block into the stash. pt is a view into per-access scratch (or the read
// slab), so the payload is copied only when it is actually kept — dummies
// and already-stashed duplicates cost nothing.
func (o *ORAM) ingestSlot(pt block.Block) {
	id := pt.Uint64()
	if id == dummyID {
		return
	}
	if _, ok := o.stash[int(id)]; !ok {
		pos := int(binary.BigEndian.Uint32(pt[8:12]))
		o.stash[int(id)] = stashEntry{pos: pos, data: block.Block(pt[slotHeader:]).Copy()}
	}
}

func (o *ORAM) trackStash() {
	if len(o.stash) > o.maxStash {
		o.maxStash = len(o.stash)
	}
}

// SetIVReader replaces the cipher's IV source so seeded tests can pin the
// exact slot IVs; see crypto.Cipher.SetIVReader. No-op in plaintext mode.
// Only tests should call it.
func (o *ORAM) SetIVReader(r io.Reader) {
	if o.cipher != nil {
		o.cipher.SetIVReader(r)
	}
}

// N returns the number of logical records.
func (o *ORAM) N() int { return o.n }

// RecordSize returns the plaintext record size in bytes.
func (o *ORAM) RecordSize() int { return o.plainSize }

// Z returns the bucket size.
func (o *ORAM) Z() int { return o.z }

// Height returns the tree height (levels − 1).
func (o *ORAM) Height() int { return o.height }

// BlocksPerAccess returns the exact blocks moved per access:
// 2·Z·(height+1).
func (o *ORAM) BlocksPerAccess() int { return 2 * o.z * (o.height + 1) }

// StashSize returns the current stash occupancy.
func (o *ORAM) StashSize() int { return len(o.stash) }

// MaxStashSize returns the stash high-water mark.
func (o *ORAM) MaxStashSize() int { return o.maxStash }

// RoundTrips returns the cumulative client–server round trips (one read
// batch plus one write batch per access, plus whatever the position map
// costs in the recursive variant).
func (o *ORAM) RoundTrips() int64 { return o.roundTrips }

// Accesses returns the number of completed accesses.
func (o *ORAM) Accesses() int64 { return o.accesses }

// Read retrieves record i.
func (o *ORAM) Read(i int) (block.Block, error) {
	return o.Access(workload.Query{Index: i, Op: workload.Read})
}

// Write overwrites record i and returns the previous value.
func (o *ORAM) Write(i int, b block.Block) (block.Block, error) {
	if len(b) != o.plainSize {
		return nil, fmt.Errorf("%w: got %d want %d", block.ErrSize, len(b), o.plainSize)
	}
	return o.Access(workload.Query{Index: i, Op: workload.Write, Data: b})
}

// Access performs one Path ORAM access: remap, read the old path into the
// stash, serve the request, evict the stash back onto the path.
func (o *ORAM) Access(q workload.Query) (block.Block, error) {
	var prev block.Block
	err := o.access(q.Index, func(cur block.Block) block.Block {
		prev = cur.Copy()
		if q.Op == workload.Write {
			return q.Data.Copy()
		}
		return cur
	})
	if err != nil {
		return nil, err
	}
	return prev, nil
}

// access is the generalized read-modify-write underlying Access; the
// recursive position map uses it to update packed position blocks in one
// physical access.
func (o *ORAM) access(i int, mutate func(cur block.Block) block.Block) error {
	if i < 0 || i >= o.n {
		return fmt.Errorf("pathoram: index %d out of range [0,%d)", i, o.n)
	}
	if err := o.flushPending(); err != nil {
		return err
	}
	newLeaf := o.src.Intn(o.numLeaves)
	oldLeaf, err := o.pos.Swap(i, newLeaf)
	if err != nil {
		return err
	}
	path := o.pathNodes(oldLeaf)

	// Read phase: the whole path in one ReadBatch — now genuinely one
	// round trip on a batch-capable transport, not just one in accounting.
	addrs := o.addrBuf[:0]
	for _, node := range path {
		for zi := 0; zi < o.z; zi++ {
			addrs = append(addrs, node*o.z+zi)
		}
	}
	o.addrBuf = addrs
	cts, err := o.server.ReadBatch(addrs)
	if err != nil {
		// The remap already happened but the block never left its old
		// path: roll the position back so a retry reads the right path.
		// (For the recursive variant this costs one extra map access, on
		// the failure path only.)
		if _, rerr := o.pos.Swap(i, oldLeaf); rerr != nil {
			return fmt.Errorf("pathoram: path read: %v; position rollback failed: %w", err, rerr)
		}
		return fmt.Errorf("pathoram: path read: %w", err)
	}
	// Open the whole path in one batch kernel call (verify-then-decrypt for
	// every slot before any stash mutation), then ingest slot by slot.
	if o.plaintext {
		for _, ct := range cts {
			o.ingestSlot(ct)
		}
	} else {
		view := o.ctView[:0]
		for _, ct := range cts {
			view = append(view, ct)
		}
		o.ctView = view
		pt, derr := o.cipher.OpenBatch(o.ptSlab[:0], view)
		if derr != nil {
			return fmt.Errorf("pathoram: decrypting slot: %w", derr)
		}
		o.ptSlab = pt
		for k := range cts {
			o.ingestSlot(block.Block(pt[k*o.slotPlain : (k+1)*o.slotPlain]))
		}
	}
	o.roundTrips++

	entry, ok := o.stash[i]
	if !ok {
		// The invariant places block i on path(oldLeaf) or in the stash, so
		// this indicates corruption.
		return fmt.Errorf("pathoram: block %d missing from path and stash", i)
	}
	entry.pos = newLeaf
	entry.data = mutate(entry.data)
	o.stash[i] = entry

	// Write phase (eviction): deepest bucket first, greedy.
	if err := o.evict(oldLeaf, path); err != nil {
		return err
	}
	o.roundTrips++
	o.accesses++
	o.trackStash()
	return nil
}

// evict writes the path back, placing each stash block into the deepest
// bucket its current position tag allows. All Z·(height+1) slot plaintexts
// are staged contiguously in the slot slab, sealed with one SealBatch
// kernel call (encrypted mode), and shipped as a single WriteBatch: one
// round trip for the whole write phase. The op list, placement bookkeeping,
// and slabs all come from per-ORAM scratch; see the ownership note on the
// scratch fields for the failed-write handoff.
func (o *ORAM) evict(leaf int, path []int) error {
	total := len(path) * o.z
	ops := o.opBuf[:0]
	evicted := o.evictBuf[:0]
	if o.taken == nil {
		o.taken = make(map[int]bool, total)
	}
	clear(o.taken)
	if cap(o.slotSlab) < total*o.slotPlain {
		o.slotSlab = make([]byte, total*o.slotPlain)
	}
	slab := o.slotSlab[:total*o.slotPlain]
	for li, node := range path {
		level := o.height - li // depth of this bucket
		placed := o.placed[:0]
		for id, e := range o.stash {
			if len(placed) == o.z {
				break
			}
			if !o.taken[id] && sameAncestor(e.pos, leaf, level, o.height) {
				placed = append(placed, id)
				o.taken[id] = true
			}
		}
		o.placed = placed
		for zi := 0; zi < o.z; zi++ {
			slot := len(ops)
			pt := block.Block(slab[slot*o.slotPlain : (slot+1)*o.slotPlain : (slot+1)*o.slotPlain])
			if zi < len(placed) {
				id := placed[zi]
				e := o.stash[id]
				stageSlot(pt, uint64(id), e.pos, e.data)
				evicted = append(evicted, id)
			} else {
				stageSlot(pt, dummyID, 0, nil)
			}
			// Plaintext mode uploads the staged slot directly; encrypted mode
			// patches in the sealed view after the batch kernel below.
			ops = append(ops, store.WriteOp{Addr: node*o.z + zi, Block: pt})
		}
	}
	if !o.plaintext {
		o.ctSlab = o.cipher.SealBatch(o.ctSlab[:0], slab, total, o.slotPlain)
		ctSize := crypto.CiphertextSize(o.slotPlain)
		for k := range ops {
			ops[k].Block = block.Block(o.ctSlab[k*ctSize : (k+1)*ctSize])
		}
	}
	o.opBuf, o.evictBuf = ops, evicted
	if err := o.server.WriteBatch(ops); err != nil {
		// The stash still holds every placed block, and the rewrite is
		// parked for replay: a failed path write must neither orphan data
		// that never reached the server nor leave stale tree copies behind
		// for a later read to resurrect. The parked ops — and the slab their
		// blocks live in (slotSlab in plaintext mode, ctSlab in encrypted
		// mode) — now belong to pendingWrite: surrender the scratches so the
		// next access cannot scribble over them.
		o.pendingWrite, o.pendingEvict = ops, evicted
		o.opBuf, o.evictBuf = nil, nil
		if o.plaintext {
			o.slotSlab = nil
		} else {
			o.ctSlab = nil
		}
		return fmt.Errorf("pathoram: path write: %w", err)
	}
	for _, id := range evicted {
		delete(o.stash, id)
	}
	for k := range ops {
		ops[k].Block = nil // don't pin sealed slots between accesses
	}
	return nil
}

// flushPending replays an interrupted path write. Replaying the full batch
// is idempotent: a partial first attempt applied a prefix of the same
// ciphertexts to the same slots.
func (o *ORAM) flushPending() error {
	if o.pendingWrite == nil {
		return nil
	}
	if err := o.server.WriteBatch(o.pendingWrite); err != nil {
		return fmt.Errorf("pathoram: replaying interrupted path write: %w", err)
	}
	o.roundTrips++
	for _, id := range o.pendingEvict {
		delete(o.stash, id)
	}
	o.pendingWrite, o.pendingEvict = nil, nil
	return nil
}

// sameAncestor reports whether leaves a and b share the ancestor at the
// given level (root = level 0) of a tree with the given height.
func sameAncestor(a, b, level, height int) bool {
	shift := uint(height - level)
	return a>>shift == b>>shift
}
