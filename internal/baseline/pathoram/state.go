// Client-state serialization for Path ORAM, flat and recursive.
//
// Unlike DP-RAM's stash-only client, a Path ORAM client carries the
// position map, the stash with per-block leaf tags, and possibly a parked
// path rewrite (pendingWrite) from an interrupted eviction. All of it is
// captured here so the durable proxy can checkpoint the scheme at an
// access boundary and Resume it over a crash-recovered store — including
// replaying the parked rewrite, whose idempotence argument (same
// ciphertexts to the same slots) is exactly the one flushPending already
// relies on for transient faults; the checkpoint extends it across process
// death. The coin source is not serialized for the same reason as in
// dpram: leaf assignments are fresh uniform draws, so a resumed client's
// transcript distribution — and its deterministic shape — is unchanged.
package pathoram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dpstore/internal/block"
	"dpstore/internal/crypto"
	"dpstore/internal/mathx"
	"dpstore/internal/statecodec"
	"dpstore/internal/store"
)

var (
	oramStateMagic      = [8]byte{'P', 'O', 'R', 'A', 'M', 'S', 'T', '1'}
	recursiveStateMagic = [8]byte{'P', 'O', 'R', 'A', 'M', 'R', 'C', '1'}
)

// ErrState reports client-state bytes that cannot be restored.
var ErrState = errors.New("pathoram: invalid client state")

const (
	oramFlagPlaintext = 1 << 0
	oramFlagLocalPos  = 1 << 1
)

// MarshalState serializes the ORAM client: shape, master key, position map
// (when held locally — a recursion level whose positions live in the next
// ORAM marks them absent), stash entries, counters, and any parked path
// rewrite. Sensitive: contains the key and plaintext records.
func (o *ORAM) MarshalState() ([]byte, error) {
	ids := make([]int, 0, len(o.stash))
	for id := range o.stash {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	out := make([]byte, 0, 64+4*o.n+len(ids)*(12+o.plainSize))
	out = append(out, oramStateMagic[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(o.n))
	out = binary.BigEndian.AppendUint32(out, uint32(o.z))
	out = binary.BigEndian.AppendUint32(out, uint32(o.numLeaves))
	out = binary.BigEndian.AppendUint32(out, uint32(o.plainSize))
	var flags byte
	if o.plaintext {
		flags |= oramFlagPlaintext
	}
	pm, local := o.pos.(localPosMap)
	if local {
		flags |= oramFlagLocalPos
	}
	out = append(out, flags)
	out = binary.BigEndian.AppendUint32(out, uint32(o.maxStash))
	out = binary.BigEndian.AppendUint64(out, uint64(o.roundTrips))
	out = binary.BigEndian.AppendUint64(out, uint64(o.accesses))
	out = append(out, o.key[:]...)
	if local {
		for _, p := range pm {
			out = binary.BigEndian.AppendUint32(out, uint32(p))
		}
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		e := o.stash[id]
		out = binary.BigEndian.AppendUint64(out, uint64(id))
		out = binary.BigEndian.AppendUint32(out, uint32(e.pos))
		out = append(out, e.data...)
	}
	// Parked path rewrite from an interrupted eviction, if any: the slot
	// ciphertexts are opaque server blocks of the server's block size.
	out = binary.BigEndian.AppendUint32(out, uint32(len(o.pendingWrite)))
	if len(o.pendingWrite) > 0 {
		out = binary.BigEndian.AppendUint32(out, uint32(o.server.BlockSize()))
		for _, op := range o.pendingWrite {
			out = binary.BigEndian.AppendUint64(out, uint64(op.Addr))
			out = append(out, op.Block...)
		}
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(o.pendingEvict)))
	for _, id := range o.pendingEvict {
		out = binary.BigEndian.AppendUint64(out, uint64(id))
	}
	return out, nil
}

// oramState is the decoded form of MarshalState's output.
type oramState struct {
	n, z, numLeaves, plainSize int
	plaintext, localPos        bool
	maxStash                   int
	roundTrips, accesses       int64
	key                        crypto.Key
	positions                  []int
	stash                      map[int]stashEntry
	pendingWrite               []store.WriteOp
	pendingEvict               []int
}

func decodeORAMState(data []byte) (*oramState, error) {
	r := statecodec.NewReader(data)
	if !r.Magic(oramStateMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrState)
	}
	st := &oramState{}
	st.n = int(r.U64())
	st.z = int(r.U32())
	st.numLeaves = int(r.U32())
	st.plainSize = int(r.U32())
	flags := r.U8()
	st.plaintext = flags&oramFlagPlaintext != 0
	st.localPos = flags&oramFlagLocalPos != 0
	st.maxStash = int(r.U32())
	st.roundTrips = int64(r.U64())
	st.accesses = int64(r.U64())
	copy(st.key[:], r.Bytes(crypto.KeySize))
	if r.Err() != nil {
		return nil, r.Err()
	}
	if st.n < 2 || st.z < 1 || st.numLeaves < 1 || st.plainSize <= 0 {
		return nil, fmt.Errorf("%w: implausible shape n=%d z=%d leaves=%d rec=%d", ErrState, st.n, st.z, st.numLeaves, st.plainSize)
	}
	if st.localPos {
		st.positions = make([]int, st.n)
		for i := range st.positions {
			p := int(r.U32())
			if r.Err() == nil && p >= st.numLeaves {
				return nil, fmt.Errorf("%w: position %d outside [0,%d)", ErrState, p, st.numLeaves)
			}
			st.positions[i] = p
		}
	}
	stashCount := int(r.U32())
	if r.Err() != nil || stashCount < 0 || stashCount > st.n {
		return nil, fmt.Errorf("%w: stash count %d", ErrState, stashCount)
	}
	st.stash = make(map[int]stashEntry, stashCount)
	for j := 0; j < stashCount; j++ {
		id := int(r.U64())
		pos := int(r.U32())
		data := r.Bytes(st.plainSize)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if id < 0 || id >= st.n || pos < 0 || pos >= st.numLeaves {
			return nil, fmt.Errorf("%w: stash entry id=%d pos=%d", ErrState, id, pos)
		}
		st.stash[id] = stashEntry{pos: pos, data: block.Block(data).Copy()}
	}
	pwCount := int(r.U32())
	if r.Err() != nil || pwCount < 0 {
		return nil, fmt.Errorf("%w: pending write count %d", ErrState, pwCount)
	}
	if pwCount > 0 {
		slotBS := int(r.U32())
		if r.Err() != nil || slotBS <= 0 {
			return nil, fmt.Errorf("%w: pending write block size", ErrState)
		}
		st.pendingWrite = make([]store.WriteOp, pwCount)
		for j := 0; j < pwCount; j++ {
			addr := int(r.U64())
			data := r.Bytes(slotBS)
			if r.Err() != nil {
				return nil, r.Err()
			}
			st.pendingWrite[j] = store.WriteOp{Addr: addr, Block: block.Block(data).Copy()}
		}
	}
	peCount := int(r.U32())
	if r.Err() != nil || peCount < 0 {
		return nil, fmt.Errorf("%w: pending evict count %d", ErrState, peCount)
	}
	st.pendingEvict = make([]int, peCount)
	for j := 0; j < peCount; j++ {
		st.pendingEvict[j] = int(r.U64())
	}
	if err := r.Drained(); err != nil {
		return nil, err
	}
	return st, nil
}

// RestoreState replaces the client's private state with a snapshot from an
// identically configured ORAM. A snapshot that carried no local position
// map (a recursion level) restores everything else and leaves the current
// position map in place — ResumeRecursive wires the levels back together.
func (o *ORAM) RestoreState(data []byte) error {
	st, err := decodeORAMState(data)
	if err != nil {
		return err
	}
	if st.n != o.n || st.z != o.z || st.numLeaves != o.numLeaves ||
		st.plainSize != o.plainSize || st.plaintext != o.plaintext {
		return fmt.Errorf("%w: snapshot shape (n=%d z=%d leaves=%d rec=%d pt=%v) does not match client (n=%d z=%d leaves=%d rec=%d pt=%v)",
			ErrState, st.n, st.z, st.numLeaves, st.plainSize, st.plaintext,
			o.n, o.z, o.numLeaves, o.plainSize, o.plaintext)
	}
	for _, op := range st.pendingWrite {
		if op.Addr < 0 || op.Addr >= o.server.Size() || len(op.Block) != o.server.BlockSize() {
			return fmt.Errorf("%w: pending write op addr=%d size=%d", ErrState, op.Addr, len(op.Block))
		}
	}
	if st.localPos {
		o.pos = localPosMap(st.positions)
	}
	o.stash = st.stash
	o.maxStash = st.maxStash
	o.roundTrips = st.roundTrips
	o.accesses = st.accesses
	o.key = st.key
	if !o.plaintext {
		o.cipher = crypto.NewCipher(st.key)
	}
	o.pendingWrite = st.pendingWrite
	o.pendingEvict = st.pendingEvict
	return nil
}

// Resume rebuilds a flat Path ORAM client from a MarshalState snapshot
// over a server that already holds the matching tree (for example, a
// crash-recovered store.Durable). Nothing is uploaded; a parked path
// rewrite in the snapshot is replayed before the next access, exactly as
// after a transient fault. Options supply the coin source (required) and
// the mode flags, which must match the snapshot; Key and Z come from the
// snapshot.
func Resume(server store.Server, state []byte, opts Options) (*ORAM, error) {
	if opts.Rand == nil {
		return nil, errors.New("pathoram: Options.Rand is required")
	}
	st, err := decodeORAMState(state)
	if err != nil {
		return nil, err
	}
	if !st.localPos {
		return nil, fmt.Errorf("%w: snapshot has no position map (a recursion level?); use ResumeRecursive", ErrState)
	}
	if opts.DisableEncryption != st.plaintext {
		return nil, fmt.Errorf("%w: snapshot plaintext=%v, options say %v", ErrState, st.plaintext, opts.DisableEncryption)
	}
	if opts.Z != 0 && opts.Z != st.z {
		return nil, fmt.Errorf("%w: snapshot Z=%d, options say %d", ErrState, st.z, opts.Z)
	}
	shapeOpts := opts
	shapeOpts.Z = st.z
	wantSlots, wantBS := TreeShape(st.n, st.plainSize, shapeOpts)
	if server.Size() != wantSlots || server.BlockSize() != wantBS {
		return nil, fmt.Errorf("pathoram: server shape (%d,%d), want (%d,%d)",
			server.Size(), server.BlockSize(), wantSlots, wantBS)
	}
	o := newORAMShell(server, st, opts)
	if err := o.RestoreState(state); err != nil {
		return nil, err
	}
	return o, nil
}

// newORAMShell builds an ORAM struct of the snapshot's shape with no
// client state yet (RestoreState fills it in).
func newORAMShell(server store.Server, st *oramState, opts Options) *ORAM {
	return &ORAM{
		n:         st.n,
		z:         st.z,
		height:    mathx.FloorLog2(st.numLeaves),
		numLeaves: st.numLeaves,
		server:    store.AsBatch(server),
		stash:     make(map[int]stashEntry),
		src:       opts.Rand,
		plainSize: st.plainSize,
		slotPlain: slotHeader + st.plainSize,
		plaintext: st.plaintext,
		pos:       localPosMap(nil),
	}
}

// --- Recursive ----------------------------------------------------------------

// MarshalState serializes the whole recursion: the packing factor, the
// top-table accounting copy, and every level's ORAM state. Only the last
// level carries a local position map; the others' positions live in the
// next level's blocks and are restored from the servers themselves.
func (r *Recursive) MarshalState() ([]byte, error) {
	levels := make([]*ORAM, 0, 1+len(r.maps))
	levels = append(levels, r.data)
	levels = append(levels, r.maps...)

	out := make([]byte, 0, 256)
	out = append(out, recursiveStateMagic[:]...)
	out = binary.BigEndian.AppendUint32(out, uint32(r.pack))
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.top)))
	for _, p := range r.top {
		out = binary.BigEndian.AppendUint32(out, uint32(p))
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(levels)))
	for _, o := range levels {
		st, err := o.MarshalState()
		if err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(st)))
		out = append(out, st...)
	}
	return out, nil
}

// ResumeRecursive rebuilds a recursive Path ORAM from a MarshalState
// snapshot. The factory must return the same backing servers (level by
// level, shape by shape) the construction was set up over — for a durable
// deployment, the reopened engines. Options must match the original
// construction; Inner.Rand is required and split per level exactly as
// SetupRecursive does.
func ResumeRecursive(state []byte, factory ServerFactory, opts RecursiveOptions) (*Recursive, error) {
	if opts.Inner.Rand == nil {
		return nil, errors.New("pathoram: RecursiveOptions.Inner.Rand is required")
	}
	rd := statecodec.NewReader(state)
	if !rd.Magic(recursiveStateMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrState)
	}
	pack := int(rd.U32())
	topLen := int(rd.U32())
	if rd.Err() != nil || pack < 2 || topLen < 0 {
		return nil, fmt.Errorf("%w: pack=%d topLen=%d", ErrState, pack, topLen)
	}
	top := make(localPosMap, topLen)
	for i := range top {
		top[i] = int(rd.U32())
	}
	levelCount := int(rd.U32())
	if rd.Err() != nil || levelCount < 1 {
		return nil, fmt.Errorf("%w: level count %d", ErrState, levelCount)
	}
	rec := &Recursive{pack: pack, top: top}
	levels := make([]*ORAM, levelCount)
	for li := 0; li < levelCount; li++ {
		stLen := int(rd.U32())
		raw := rd.Bytes(stLen)
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		st, err := decodeORAMState(raw)
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", li, err)
		}
		inner := opts.Inner
		inner.Rand = opts.Inner.Rand.Split()
		if st.localPos != (li == levelCount-1) {
			return nil, fmt.Errorf("%w: level %d localPos=%v", ErrState, li, st.localPos)
		}
		shapeOpts := inner
		shapeOpts.Z = st.z
		shapeOpts.DisableEncryption = st.plaintext
		slots, bs := TreeShape(st.n, st.plainSize, shapeOpts)
		srv, err := factory(li, slots, bs)
		if err != nil {
			return nil, fmt.Errorf("pathoram: reopening level-%d server: %w", li, err)
		}
		o := newORAMShell(srv, st, inner)
		if err := o.RestoreState(raw); err != nil {
			return nil, fmt.Errorf("level %d: %w", li, err)
		}
		levels[li] = o
	}
	if err := rd.Drained(); err != nil {
		return nil, err
	}
	// Wire the recursion back together: level i's positions live in level
	// i+1's blocks, the last level keeps its restored local map.
	for li := 0; li+1 < levelCount; li++ {
		levels[li].setPositionMap(&oramPosMap{oram: levels[li+1], pack: pack})
	}
	rec.data = levels[0]
	rec.maps = levels[1:]
	return rec, nil
}
