// Package strawman implements the tempting-but-insecure DP-IR construction
// of Section 4 of the paper, together with the distinguisher that breaks it.
//
// The strawman queries the wanted block with probability 1 and every other
// block independently with probability 1/n. It has O(1) expected bandwidth,
// perfect correctness, and no client state — and it is only (ε, δ)-DP with
// δ ≥ (n−1)/n, i.e. effectively no privacy: the event "block B_q was NOT
// downloaded" has probability 0 under query q and probability
// (1 − 1/n)·…≈ (n−1)/n-ish mass under any other query, so an adversary
// watching for the absence of B_q wins almost always. Experiment E4
// reproduces the attack numerically.
package strawman

import (
	"errors"
	"fmt"
	"sort"

	"dpstore/internal/block"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

// Client is the strawman DP-IR client.
type Client struct {
	server store.BatchServer
	n      int
	src    *rng.Source
}

// New creates a strawman client for the database held by server.
func New(server store.Server, src *rng.Source) (*Client, error) {
	if src == nil {
		return nil, errors.New("strawman: rand source is required")
	}
	n := server.Size()
	if n < 2 {
		return nil, fmt.Errorf("strawman: database must hold ≥ 2 records, got %d", n)
	}
	return &Client{server: store.AsBatch(server), n: n, src: src}, nil
}

// SampleSet returns the download set for query q without touching the
// server: q itself plus each other index independently with probability
// 1/n. The set is sorted.
func (c *Client) SampleSet(q int) []int {
	set := []int{q}
	p := 1 / float64(c.n)
	for j := 0; j < c.n; j++ {
		if j != q && c.src.Bernoulli(p) {
			set = append(set, j)
		}
	}
	sort.Ints(set)
	return set
}

// Query retrieves record q with perfect correctness and O(1) expected
// bandwidth — and broken privacy. The sampled set goes out as one batch;
// batching cannot rescue the construction (the distinguisher watches which
// addresses appear, not how they are framed).
func (c *Client) Query(q int) (block.Block, error) {
	if q < 0 || q >= c.n {
		return nil, fmt.Errorf("strawman: query %d out of range [0,%d)", q, c.n)
	}
	set := c.SampleSet(q)
	blocks, err := c.server.ReadBatch(set)
	if err != nil {
		return nil, fmt.Errorf("strawman: downloading: %w", err)
	}
	for i, j := range set {
		if j == q {
			return blocks[i], nil
		}
	}
	return nil, fmt.Errorf("strawman: query %d missing from its own sample set", q)
}

// DeltaFloor returns the analytic δ lower bound of Section 4 for database
// size n: any (ε, δ)-DP claim for the strawman must have δ ≥ (n−1)/n.
func DeltaFloor(n int) float64 { return float64(n-1) / float64(n) }
