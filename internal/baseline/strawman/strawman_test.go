package strawman

import (
	"math"
	"testing"

	"dpstore/internal/analysis"
	"dpstore/internal/block"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func newClient(t *testing.T, n int) (*Client, *store.Counting) {
	t.Helper()
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.NewMemFrom(db)
	if err != nil {
		t.Fatal(err)
	}
	counting := store.NewCounting(m)
	c, err := New(counting, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c, counting
}

func TestValidation(t *testing.T) {
	m, _ := store.NewMem(8, 16)
	if _, err := New(m, nil); err == nil {
		t.Fatal("nil rand accepted")
	}
	one, _ := store.NewMem(1, 16)
	if _, err := New(one, rng.New(1)); err == nil {
		t.Fatal("single-record database accepted")
	}
}

func TestPerfectCorrectness(t *testing.T) {
	n := 64
	c, _ := newClient(t, n)
	for q := 0; q < n; q++ {
		b, err := c.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !block.CheckPattern(b, uint64(q)) {
			t.Fatalf("query %d wrong", q)
		}
	}
	if _, err := c.Query(n); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestConstantExpectedBandwidth(t *testing.T) {
	n := 512
	c, counting := newClient(t, n)
	const queries = 500
	for i := 0; i < queries; i++ {
		if _, err := c.Query(i % n); err != nil {
			t.Fatal(err)
		}
	}
	avg := float64(counting.Stats().Downloads) / queries
	// Expected set size = 1 + (n−1)/n ≈ 2.
	if avg < 1.5 || avg > 2.5 {
		t.Fatalf("avg downloads %.2f, want ≈2", avg)
	}
}

func TestSampleSetAlwaysContainsQuery(t *testing.T) {
	c, _ := newClient(t, 32)
	for i := 0; i < 1000; i++ {
		set := c.SampleSet(7)
		found := false
		for _, v := range set {
			if v == 7 {
				found = true
			}
		}
		if !found {
			t.Fatal("set missing the real query — that is the whole attack surface")
		}
	}
}

// TestAttack reproduces the Section 4 analysis: the distinguisher "was the
// target block downloaded?" has advantage ≈ (n−1)/n, so any (ε, δ)-DP claim
// needs δ ≥ (n−1)/n · (1 − o(1)) — no privacy at all.
func TestAttack(t *testing.T) {
	n := 128
	c, _ := newClient(t, n)
	const q, qPrime = 3, 77
	test := func(query int) func() bool {
		return func() bool {
			set := c.SampleSet(query)
			for _, v := range set {
				if v == q {
					return true
				}
			}
			return false
		}
	}
	d := analysis.RunDistinguisher(test(q), test(qPrime), 50000)
	floor := DeltaFloor(n)
	if d.TrueP != 1 {
		t.Fatalf("Pr[B_q ∈ T | q] = %v, want exactly 1", d.TrueP)
	}
	if math.Abs(d.Advantage()-floor) > 0.02 {
		t.Fatalf("advantage %.4f, want ≈ (n−1)/n = %.4f", d.Advantage(), floor)
	}
	// Even granting a generous ε = ln n, δ must stay ≈ (n−1)/n because
	// Pr[B_q ∉ T | q] = 0 exactly: δ ≥ Pr[B_q ∉ T | q'] − e^ε·0.
	notIn := func(query int) func() bool {
		inner := test(query)
		return func() bool { return !inner() }
	}
	d2 := analysis.RunDistinguisher(notIn(qPrime), notIn(q), 50000)
	deltaAtLogN := d2.DeltaLowerBound(math.Log(float64(n)))
	if deltaAtLogN < floor-0.02 {
		t.Fatalf("δ lower bound %.4f at ε = ln n, want ≈ %.4f", deltaAtLogN, floor)
	}
}

func TestDeltaFloorFormula(t *testing.T) {
	if DeltaFloor(2) != 0.5 {
		t.Fatal("DeltaFloor(2) wrong")
	}
	if v := DeltaFloor(1000); math.Abs(v-0.999) > 1e-12 {
		t.Fatalf("DeltaFloor(1000) = %v", v)
	}
}
