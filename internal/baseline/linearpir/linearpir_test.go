package linearpir

import (
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

func newServer(t *testing.T, n int) *store.Mem {
	t.Helper()
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.NewMemFrom(db)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrivialCorrectness(t *testing.T) {
	n := 64
	p := NewTrivial(newServer(t, n))
	for q := 0; q < n; q++ {
		b, err := p.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !block.CheckPattern(b, uint64(q)) {
			t.Fatalf("query %d wrong", q)
		}
	}
	if _, err := p.Query(n); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestTrivialTouchesEverything(t *testing.T) {
	n := 128
	counting := store.NewCounting(newServer(t, n))
	p := NewTrivial(counting)
	if _, err := p.Query(3); err != nil {
		t.Fatal(err)
	}
	st := counting.Stats()
	if st.Downloads != int64(n) || st.TouchedUnique != n {
		t.Fatalf("stats = %+v, want full scan of %d", st, n)
	}
}

func TestTrivialObliviousness(t *testing.T) {
	// The access pattern must be identical for every query.
	n := 32
	rec := func(q int) string {
		m := newServer(t, n)
		r := recorderServer{inner: m}
		p := NewTrivial(&r)
		if _, err := p.Query(q); err != nil {
			t.Fatal(err)
		}
		return string(r.log)
	}
	if rec(0) != rec(17) {
		t.Fatal("trivial PIR transcript depends on the query")
	}
}

type recorderServer struct {
	inner store.Server
	log   []byte
}

func (r *recorderServer) Download(addr int) (block.Block, error) {
	b, err := r.inner.Download(addr)
	if err == nil {
		r.log = append(r.log, byte(addr), ',')
	}
	return b, err
}
func (r *recorderServer) Upload(addr int, b block.Block) error { return r.inner.Upload(addr, b) }
func (r *recorderServer) Size() int                            { return r.inner.Size() }
func (r *recorderServer) BlockSize() int                       { return r.inner.BlockSize() }

func TestTwoServerCorrectness(t *testing.T) {
	n := 64
	x, err := NewTwoServerXOR(newServer(t, n), newServer(t, n), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < n; q++ {
		b, err := x.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !block.CheckPattern(b, uint64(q)) {
			t.Fatalf("query %d wrong", q)
		}
	}
	if _, err := x.Query(-1); err == nil {
		t.Fatal("negative query accepted")
	}
}

func TestTwoServerValidation(t *testing.T) {
	if _, err := NewTwoServerXOR(newServer(t, 8), newServer(t, 8), nil); err == nil {
		t.Fatal("nil rand accepted")
	}
	if _, err := NewTwoServerXOR(newServer(t, 8), newServer(t, 16), rng.New(1)); err == nil {
		t.Fatal("mismatched replicas accepted")
	}
}

func TestTwoServerComputationIsLinear(t *testing.T) {
	// Each server touches ≈ n/2 blocks per query: server work stays Θ(n)
	// even though communication is O(1) — the PIR cost floor the paper
	// contrasts with.
	n := 256
	c0 := store.NewCounting(newServer(t, n))
	c1 := store.NewCounting(newServer(t, n))
	x, err := NewTwoServerXOR(c0, c1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const queries = 50
	for i := 0; i < queries; i++ {
		if _, err := x.Query(i % n); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range []*store.Counting{c0, c1} {
		avg := float64(c.Stats().Downloads) / queries
		if avg < float64(n)*0.4 || avg > float64(n)*0.6 {
			t.Fatalf("server %d does %.1f ops/query, want ≈ n/2 = %d", i, avg, n/2)
		}
	}
}

func TestTwoServerSingleViewIsUniform(t *testing.T) {
	// Against one corrupted server the subset is a uniform coin per block,
	// independent of the query: compare per-block inclusion rates across
	// two different queries.
	n := 16
	const trials = 20000
	rates := func(q int) []float64 {
		src := rng.New(3)
		counts := make([]int, n)
		for i := 0; i < trials; i++ {
			sel := make([]bool, n)
			for j := range sel {
				sel[j] = src.Bernoulli(0.5)
			}
			// Server 0's view is sel itself (before the △{q} flip, which
			// only server 1 sees).
			for j, in := range sel {
				if in {
					counts[j]++
				}
			}
		}
		out := make([]float64, n)
		for j, c := range counts {
			out[j] = float64(c) / trials
		}
		_ = q
		return out
	}
	r0 := rates(0)
	for j, r := range r0 {
		if r < 0.48 || r > 0.52 {
			t.Fatalf("block %d inclusion rate %.3f, want ≈0.5", j, r)
		}
	}
}
