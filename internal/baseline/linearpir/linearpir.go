// Package linearpir provides the two PIR baselines the paper positions its
// results against.
//
// Trivial single-server PIR downloads the whole database per query — the
// cost floor Theorem 3.3 proves unavoidable for errorless schemes, DP or
// not. The two-server XOR scheme of Chor–Goldreich–Kushilevitz–Sudan [19]
// achieves perfect (information-theoretic) privacy against one corrupted
// server with one block of reply per server, but each server still touches
// about half the database per query, so server computation remains Θ(n).
package linearpir

import (
	"errors"
	"fmt"

	"dpstore/internal/block"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

// Trivial is single-server linear-scan PIR: perfect privacy, perfect
// correctness, n operations per query.
type Trivial struct {
	server store.BatchServer
	n      int
}

// NewTrivial creates a trivial PIR client.
func NewTrivial(server store.Server) *Trivial {
	return &Trivial{server: store.AsBatch(server), n: server.Size()}
}

// Query downloads every record in batched scan windows and keeps record q.
// The access pattern is identical for every query, giving obliviousness
// (ε = 0, δ = 0); on a File-backed server each window becomes one
// sequential read, and client memory stays O(ScanWindow) at any n.
func (t *Trivial) Query(q int) (block.Block, error) {
	if q < 0 || q >= t.n {
		return nil, fmt.Errorf("linearpir: query %d out of range [0,%d)", q, t.n)
	}
	var want block.Block
	err := store.ScanRange(t.server, t.n, func(base int, blocks []block.Block) error {
		if q >= base && q < base+len(blocks) {
			want = blocks[q-base]
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("linearpir: scanning: %w", err)
	}
	return want, nil
}

// TwoServerXOR is the classic 2-server information-theoretic PIR: the
// client sends a uniform subset S ⊆ [n] to server 0 and S △ {q} to server
// 1; each server replies with the XOR of the requested blocks; the client
// XORs the two replies to recover B_q. Each server individually sees a
// uniform subset, independent of q: perfect privacy against one corrupted
// server.
type TwoServerXOR struct {
	servers [2]store.BatchServer
	n       int
	src     *rng.Source
}

// NewTwoServerXOR builds the client over two replicas of the database.
func NewTwoServerXOR(s0, s1 store.Server, src *rng.Source) (*TwoServerXOR, error) {
	if src == nil {
		return nil, errors.New("linearpir: rand source is required")
	}
	if s0.Size() != s1.Size() || s0.BlockSize() != s1.BlockSize() {
		return nil, fmt.Errorf("linearpir: replica shape mismatch: (%d,%d) vs (%d,%d)",
			s0.Size(), s0.BlockSize(), s1.Size(), s1.BlockSize())
	}
	return &TwoServerXOR{servers: [2]store.BatchServer{store.AsBatch(s0), store.AsBatch(s1)}, n: s0.Size(), src: src}, nil
}

// xorAnswer computes the server-side XOR over the selected blocks, fetching
// the subset in one batch. The download counter of a Counting wrapper
// therefore meters true server work.
func xorAnswer(s store.BatchServer, sel []bool, blockSize int) (block.Block, error) {
	addrs := make([]int, 0, len(sel)/2)
	for j, in := range sel {
		if in {
			addrs = append(addrs, j)
		}
	}
	acc := block.New(blockSize)
	err := store.ReadWindows(s, addrs, func(_ int, blocks []block.Block) error {
		for _, b := range blocks {
			for i := range acc {
				acc[i] ^= b[i]
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("linearpir: xor scan: %w", err)
	}
	return acc, nil
}

// Query retrieves record q with information-theoretic privacy.
func (t *TwoServerXOR) Query(q int) (block.Block, error) {
	if q < 0 || q >= t.n {
		return nil, fmt.Errorf("linearpir: query %d out of range [0,%d)", q, t.n)
	}
	sel0 := make([]bool, t.n)
	sel1 := make([]bool, t.n)
	for j := range sel0 {
		sel0[j] = t.src.Bernoulli(0.5)
		sel1[j] = sel0[j]
	}
	sel1[q] = !sel1[q]
	bs := t.servers[0].BlockSize()
	// Both subsets are fixed before any traffic, and the two servers are
	// independent parties (the non-collusion model), so the scans run
	// concurrently: latency is one server's scan, not the sum of both.
	sels := [2][]bool{sel0, sel1}
	var answers [2]block.Block
	err := store.Concurrently(2, func(i int) error {
		a, err := xorAnswer(t.servers[i], sels[i], bs)
		if err != nil {
			return err
		}
		answers[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := block.New(bs)
	for i := range out {
		out[i] = answers[0][i] ^ answers[1][i]
	}
	return out, nil
}
