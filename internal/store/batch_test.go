package store

import (
	"bufio"
	"errors"
	"net"
	"path/filepath"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/wire"
)

// Compile-time checks: every in-tree Server implements BatchServer
// natively.
var (
	_ BatchServer = (*Mem)(nil)
	_ BatchServer = (*File)(nil)
	_ BatchServer = (*Counting)(nil)
	_ BatchServer = (*Faulty)(nil)
	_ BatchServer = (*Remote)(nil)
)

// exerciseBatch runs a batch conformance suite against any server.
func exerciseBatch(t *testing.T, s Server, n, bs int) {
	t.Helper()
	b := AsBatch(s)
	if native, ok := s.(BatchServer); ok && BatchServer(native) != b {
		t.Fatal("AsBatch wrapped a native BatchServer")
	}

	// WriteBatch with duplicates: later op wins, like sequential uploads.
	ops := make([]WriteOp, 0, n+2)
	for i := 0; i < n; i++ {
		ops = append(ops, WriteOp{Addr: i, Block: block.Pattern(uint64(i), bs)})
	}
	ops = append(ops,
		WriteOp{Addr: 2, Block: block.Pattern(100, bs)},
		WriteOp{Addr: 2, Block: block.Pattern(200, bs)},
	)
	if err := b.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}

	// ReadBatch preserves request order, including duplicates and
	// non-monotonic addresses.
	addrs := []int{n - 1, 0, 2, 2, 1}
	got, err := b.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("got %d blocks, want %d", len(got), len(addrs))
	}
	wantID := func(a int) uint64 {
		if a == 2 {
			return 200
		}
		return uint64(a)
	}
	for i, a := range addrs {
		if !block.CheckPattern(got[i], wantID(a)) {
			t.Fatalf("block %d (addr %d) holds wrong data", i, a)
		}
	}
	// Returned blocks are independent copies: mutating one leaves its
	// duplicate and the store untouched.
	got[2][0] ^= 0xff
	if !block.CheckPattern(got[3], 200) {
		t.Fatal("duplicate addresses alias the same memory")
	}
	again, err := b.ReadBatch([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !block.CheckPattern(again[0], 200) {
		t.Fatal("ReadBatch returned aliased storage")
	}

	// Empty batches are no-ops.
	if blocks, err := b.ReadBatch(nil); err != nil || len(blocks) != 0 {
		t.Fatalf("empty ReadBatch: %v, %v", blocks, err)
	}
	if err := b.WriteBatch(nil); err != nil {
		t.Fatalf("empty WriteBatch: %v", err)
	}

	// Errors: any bad element fails the batch.
	if _, err := b.ReadBatch([]int{0, n}); err == nil {
		t.Fatal("out-of-range read batch accepted")
	}
	if err := b.WriteBatch([]WriteOp{{Addr: -1, Block: block.New(bs)}}); err == nil {
		t.Fatal("out-of-range write batch accepted")
	}
	if err := b.WriteBatch([]WriteOp{{Addr: 0, Block: block.New(bs + 1)}}); err == nil {
		t.Fatal("wrong-size write batch accepted")
	}
}

func TestMemBatchConformance(t *testing.T) {
	m, err := NewMem(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	exerciseBatch(t, m, 8, 32)
}

func TestFileBatchConformance(t *testing.T) {
	f, err := CreateFile(filepath.Join(t.TempDir(), "blocks.dat"), 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	exerciseBatch(t, f, 8, 32)
}

func TestCountingBatchConformance(t *testing.T) {
	m, _ := NewMem(8, 32)
	exerciseBatch(t, NewCounting(m), 8, 32)
}

func TestLoopAdapterConformance(t *testing.T) {
	m, _ := NewMem(8, 32)
	pb := PerBlock(m)
	if _, ok := pb.(BatchServer); ok {
		t.Fatal("PerBlock did not hide the native batch methods")
	}
	exerciseBatch(t, pb, 8, 32)
}

// TestFileBatchGapsAndRuns drives the coalescing paths: scattered
// singletons, a consecutive run, duplicates inside a run, and a gap that
// must split two runs (a regression guard against zero-filling the gap).
func TestFileBatchGapsAndRuns(t *testing.T) {
	const n, bs = 16, 8
	f, err := CreateFile(filepath.Join(t.TempDir(), "blocks.dat"), n, bs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < n; i++ {
		if err := f.Upload(i, block.Pattern(uint64(i), bs)); err != nil {
			t.Fatal(err)
		}
	}
	// Writes at 3, 3, and 5: addresses 3 and 5 coalesce-sort adjacent but
	// are NOT consecutive; slot 4 must keep its contents.
	if err := f.WriteBatch([]WriteOp{
		{Addr: 3, Block: block.Pattern(33, bs)},
		{Addr: 5, Block: block.Pattern(55, bs)},
		{Addr: 3, Block: block.Pattern(99, bs)},
	}); err != nil {
		t.Fatal(err)
	}
	want := map[int]uint64{3: 99, 4: 4, 5: 55}
	for a, id := range want {
		got, err := f.Download(a)
		if err != nil {
			t.Fatal(err)
		}
		if !block.CheckPattern(got, id) {
			t.Fatalf("slot %d corrupted by coalesced write", a)
		}
	}
	// A read spanning runs, gaps, and duplicates.
	got, err := f.ReadBatch([]int{9, 3, 4, 5, 3, 0, 15})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []uint64{9, 99, 4, 55, 99, 0, 15} {
		if !block.CheckPattern(got[i], id) {
			t.Fatalf("batch element %d wrong", i)
		}
	}
}

// TestFileBatchRunCap shrinks the run-buffer cap so a full-store batch is
// forced through the sub-run splitting, proving bounded-memory coalescing
// preserves contents, duplicate order, and the independent-copies contract.
func TestFileBatchRunCap(t *testing.T) {
	const n, bs = 32, 8
	old := fileMaxRunBytes
	fileMaxRunBytes = 3 * bs // three blocks per I/O
	defer func() { fileMaxRunBytes = old }()

	f, err := CreateFile(filepath.Join(t.TempDir(), "blocks.dat"), n, bs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Full-store write with a duplicate pair straddling typical splits.
	ops := make([]WriteOp, 0, n+1)
	for i := 0; i < n; i++ {
		ops = append(ops, WriteOp{Addr: i, Block: block.Pattern(uint64(i), bs)})
	}
	ops = append(ops, WriteOp{Addr: 7, Block: block.Pattern(777, bs)})
	if err := f.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}

	// Full-store read plus a duplicate.
	addrs := make([]int, 0, n+1)
	for i := 0; i < n; i++ {
		addrs = append(addrs, i)
	}
	addrs = append(addrs, 7)
	got, err := f.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := uint64(i)
		if i == 7 {
			want = 777
		}
		if !block.CheckPattern(got[i], want) {
			t.Fatalf("slot %d wrong after capped batch", i)
		}
	}
	// Duplicate is independent of the first occurrence.
	got[7][0] ^= 0xff
	if !block.CheckPattern(got[n], 777) {
		t.Fatal("duplicate aliases the first occurrence")
	}
}

// TestCountingBatchStatsMatchPerBlock pins the paper's overhead accounting
// to the transport: a batched access pattern and its per-block equivalent
// must report identical Stats (ops, bytes, unique addresses), so every
// experiment table is transport-independent.
func TestCountingBatchStatsMatchPerBlock(t *testing.T) {
	const n, bs = 32, 16
	reads := []int{5, 0, 5, 31, 7}
	writes := []int{3, 9, 3}

	run := func(batched bool) Stats {
		m, err := NewMem(n, bs)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCounting(m)
		if batched {
			if _, err := c.ReadBatch(reads); err != nil {
				t.Fatal(err)
			}
			ops := make([]WriteOp, len(writes))
			for i, a := range writes {
				ops[i] = WriteOp{Addr: a, Block: block.Pattern(uint64(a), bs)}
			}
			if err := c.WriteBatch(ops); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, a := range reads {
				if _, err := c.Download(a); err != nil {
					t.Fatal(err)
				}
			}
			for _, a := range writes {
				if err := c.Upload(a, block.Pattern(uint64(a), bs)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c.Stats()
	}

	if got, want := run(true), run(false); got != want {
		t.Fatalf("batched stats %+v != per-block stats %+v", got, want)
	}
}

// TestFaultyBatchOffsets checks the fault schedule counts batch elements as
// individual operations: offset k trips inside the batch containing op k,
// with the prefix of a write batch applied exactly as sequential uploads
// would have been.
func TestFaultyBatchOffsets(t *testing.T) {
	const n, bs = 8, 16
	for offset := int64(1); offset <= 6; offset++ {
		m, _ := NewMem(n, bs)
		f := NewFaulty(m, offset, nil)
		ops := make([]WriteOp, 4)
		for i := range ops {
			ops[i] = WriteOp{Addr: i, Block: block.Pattern(uint64(i+1), bs)}
		}
		werr := f.WriteBatch(ops)           // ops 1..4 (ticking stops at the fault)
		_, rerr := f.ReadBatch([]int{0, 1}) // the next 2 ops
		if offset <= 4 {
			if !errors.Is(werr, ErrInjected) {
				t.Fatalf("offset %d: write batch err = %v", offset, werr)
			}
			// Ops before the fault landed; ops at and after it did not.
			for i := 0; i < 4; i++ {
				got, err := m.Download(i)
				if err != nil {
					t.Fatal(err)
				}
				if applied := int64(i) < offset-1; applied != !got.IsZero() {
					t.Fatalf("offset %d: slot %d applied=%v, want %v", offset, i, !got.IsZero(), applied)
				}
			}
		} else {
			if werr != nil {
				t.Fatalf("offset %d: write batch err = %v", offset, werr)
			}
			if !errors.Is(rerr, ErrInjected) {
				t.Fatalf("offset %d: read batch err = %v", offset, rerr)
			}
		}
		// Ticking stops at the faulting op, exactly like a per-op caller
		// that aborts on first error: a failed write batch leaves the later
		// elements uncounted.
		want := offset
		if offset <= 4 {
			want = offset + 2
		}
		if f.Ops() != want {
			t.Fatalf("offset %d: ticked %d ops, want %d", offset, f.Ops(), want)
		}
	}
}

// TestRemoteBatchEndToEnd drives the batch frames through a real TCP
// loopback: one WriteBatch round trip, one ReadBatch round trip, contents
// intact, errors surfaced without poisoning the connection.
func TestRemoteBatchEndToEnd(t *testing.T) {
	backing, _ := NewMem(16, 32)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, backing) //nolint:errcheck // returns on listener close

	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	exerciseBatch(t, r, 16, 32)

	base := r.RoundTrips()
	ops := make([]WriteOp, 10)
	for i := range ops {
		ops[i] = WriteOp{Addr: i, Block: block.Pattern(uint64(i), 32)}
	}
	if err := r.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}
	addrs := make([]int, 10)
	for i := range addrs {
		addrs[i] = 9 - i
	}
	blocks, err := r.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		if !block.CheckPattern(blocks[i], uint64(a)) {
			t.Fatalf("block %d (addr %d) corrupted over the wire", i, a)
		}
	}
	if got := r.RoundTrips() - base; got != 2 {
		t.Fatalf("10 writes + 10 reads took %d round trips, want 2", got)
	}
	// The batch lands in the backing store, not just the wire.
	got, err := backing.Download(4)
	if err != nil {
		t.Fatal(err)
	}
	if !block.CheckPattern(got, 4) {
		t.Fatal("batched write did not reach the backing store")
	}
	// A failing batch reports the server-side error and leaves the
	// connection usable.
	if _, err := r.ReadBatch([]int{0, 99}); err == nil {
		t.Fatal("out-of-range batch accepted over the wire")
	}
	if _, err := r.ReadBatch([]int{0}); err != nil {
		t.Fatalf("connection unusable after batch error: %v", err)
	}
}

// TestDialRejectsInvalidShape: a hostile server must not be able to push a
// zero block size through the handshake (batch chunk sizing divides by it).
func TestDialRejectsInvalidShape(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.ReadFrame(bufio.NewReader(conn)); err != nil {
			return
		}
		wire.WriteFrame(conn, wire.EncodeInfo(wire.Info{Size: 8, BlockSize: 0})) //nolint:errcheck
	}()
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Fatal("Dial accepted a server reporting blockSize = 0")
	}
}

// TestRemoteChunkSizing checks both frame directions constrain a chunk:
// for blocks narrower than the 8-byte wire address, the request frame is
// the binding constraint, not the response.
func TestRemoteChunkSizing(t *testing.T) {
	r := &Remote{maxFrame: 4 + 800}
	if got := r.readChunk(100); got != 8 { // response-bound: 800/100
		t.Fatalf("readChunk = %d, want 8", got)
	}
	if got := r.readChunk(4); got != 100 { // request-bound: 800/8, not 800/4
		t.Fatalf("readChunk = %d, want 100", got)
	}
	if got := r.writeChunk(4); got != 66 { // 800/(8+4)
		t.Fatalf("writeChunk = %d, want 66", got)
	}
}

// TestRemoteWriteBatchRejectsRaggedBlocks: non-uniform block sizes cannot
// be framed and must fail client-side with the store's size error, never
// mis-split on the wire.
func TestRemoteWriteBatchRejectsRaggedBlocks(t *testing.T) {
	backing, _ := NewMem(8, 16)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, backing) //nolint:errcheck

	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	err = r.WriteBatch([]WriteOp{
		{Addr: 0, Block: block.New(8)},
		{Addr: 1, Block: block.New(24)},
	})
	if !errors.Is(err, block.ErrSize) {
		t.Fatalf("ragged write batch: err = %v, want block.ErrSize", err)
	}
	// Nothing reached the store, and the connection is still usable.
	b, err := backing.Download(0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsZero() {
		t.Fatal("ragged batch partially applied")
	}
	if err := r.WriteBatch([]WriteOp{{Addr: 0, Block: block.Pattern(1, 16)}}); err != nil {
		t.Fatalf("connection unusable after rejected batch: %v", err)
	}
}

// TestRemoteBatchChunking shrinks the Remote's frame budget so batches are
// forced to split, proving correctness is preserved when a batch exceeds
// MaxFrame (the 16 MiB production ceiling is impractical to exercise
// directly in a unit test).
func TestRemoteBatchChunking(t *testing.T) {
	const n, bs = 64, 32
	backing, _ := NewMem(n, bs)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, backing) //nolint:errcheck

	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.maxFrame = 4 + 5*(8+bs) // five write ops (and ⌊204/32⌋ = 6 reads) per frame

	ops := make([]WriteOp, n)
	addrs := make([]int, n)
	for i := range ops {
		ops[i] = WriteOp{Addr: i, Block: block.Pattern(uint64(i), bs)}
		addrs[i] = i
	}
	base := r.RoundTrips()
	if err := r.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}
	wantWrite := int64((n + 4) / 5)
	if got := r.RoundTrips() - base; got != wantWrite {
		t.Fatalf("chunked write batch took %d trips, want %d", got, wantWrite)
	}
	base = r.RoundTrips()
	blocks, err := r.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	wantRead := int64((n + 5) / 6)
	if got := r.RoundTrips() - base; got != wantRead {
		t.Fatalf("chunked read batch took %d trips, want %d", got, wantRead)
	}
	for i := range addrs {
		if !block.CheckPattern(blocks[i], uint64(i)) {
			t.Fatalf("chunked block %d corrupted", i)
		}
	}
}
