package store

import (
	"dpstore/internal/obs"
	"dpstore/internal/wire"
)

// Serve-loop and WAL instruments. Everything here is keyed by the frame
// TYPE byte or aggregated across the whole engine — never by an address,
// a record, or anything finer than the namespace name (which the limiter
// instruments in admission.go carry). See DESIGN.md §Observability.

// frameCounters maps every frame type byte to its counter, resolved once
// at init so the serve loop's per-request cost is a single indexed
// atomic increment. Tags outside the protocol share one "unknown"
// series — a hostile peer cannot mint counter cardinality.
var frameCounters = func() [256]*obs.Counter {
	var a [256]*obs.Counter
	unknown := obs.NewCounter("dpstore_serve_frames_total", obs.WithLabels("type", "unknown"))
	for i := range a {
		a[i] = unknown
	}
	for t := wire.MsgInfoReq; t <= wire.MsgStatsResp; t++ {
		a[t] = obs.NewCounter("dpstore_serve_frames_total", obs.WithLabels("type", wire.TypeName(t)))
	}
	return a
}()

// frameNames caches the symbolic names for slow-span labeling (the map
// lookup in wire.TypeName is fine off the hot path, but spans are built
// while the serve loop still holds the request).
var frameNames = func() [256]string {
	var a [256]string
	for i := range a {
		a[i] = wire.TypeName(byte(i))
	}
	return a
}()

// WAL engine instruments (store.Durable). All ClassTiming or timing-
// derived: fsync/apply counts depend on group-commit coalescing, which
// depends on arrival timing — the obliviousness suite asserts their
// existence, never their values.
var (
	obsWALAppend = obs.NewTimer("dpstore_wal_append_seconds",
		obs.WithHelp("WAL record append (buffered write, before sync)"))
	obsWALFsync = obs.NewTimer("dpstore_wal_fsync_seconds",
		obs.WithHelp("WAL datasync making a commit group durable"))
	obsWALApply = obs.NewTimer("dpstore_wal_apply_seconds",
		obs.WithHelp("applying a committed group to the backing store"))
	obsWALCommitGroup = obs.NewHist("dpstore_wal_commit_group_requests", obs.WithClass(obs.ClassTiming),
		obs.WithHelp("requests coalesced per WAL commit group"))
	obsWALCompactions = obs.NewCounter("dpstore_wal_compactions_total", obs.WithClass(obs.ClassTiming),
		obs.WithHelp("WAL compactions triggered by the size threshold"))
)

// Replica gauge registration (store.Replicated): per-replica state and
// resync backlog, labeled by the replica's public cluster-spec name.
func registerReplicaObs(r *Replicated) {
	for _, st := range r.ReplicaStatus() {
		name := st.Name
		obs.NewGaugeFunc("dpstore_replica_state", func() int64 {
			for _, st := range r.ReplicaStatus() {
				if st.Name == name {
					return int64(st.State)
				}
			}
			return -1
		}, obs.WithLabels("replica", name), obs.WithClass(obs.ClassLoad))
		obs.NewGaugeFunc("dpstore_replica_backlog_blocks", func() int64 {
			for _, st := range r.ReplicaStatus() {
				if st.Name == name {
					return int64(st.Dirty)
				}
			}
			return 0
		}, obs.WithLabels("replica", name), obs.WithClass(obs.ClassLoad))
	}
}
