package store

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"dpstore/internal/block"
)

// serveOn starts a wire daemon on a loopback listener serving backing as
// the default namespace with the given epoch, returning its address.
func serveOn(t *testing.T, backing Server, epoch uint64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	ns := NewNamespaces()
	ns.Attach(DefaultNamespace, backing)
	ns.SetEpoch(epoch)
	go ServeNamespaces(ln, ns) //nolint:errcheck
	return ln.Addr().String()
}

// TestResyncCheckWire: MsgResyncReq answers with the daemon's epoch and
// whether it matched the expectation — on any daemon, replicated or not.
func TestResyncCheckWire(t *testing.T) {
	m, err := NewMem(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	addr := serveOn(t, m, 7)
	rs, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	epoch, ok, err := rs.ResyncCheck(7)
	if err != nil || !ok || epoch != 7 {
		t.Fatalf("matching check: epoch=%d ok=%v err=%v", epoch, ok, err)
	}
	epoch, ok, err = rs.ResyncCheck(3)
	if err != nil || ok || epoch != 7 {
		t.Fatalf("mismatched check: epoch=%d ok=%v err=%v", epoch, ok, err)
	}
}

// TestReplicaStatusWire: a daemon whose default namespace is a Replicated
// serves MsgReplStatusReq; a plain daemon rejects it.
func TestReplicaStatusWire(t *testing.T) {
	mems := make([]*Mem, 2)
	specs := make([]ReplicaSpec, 2)
	for i := range specs {
		m, err := NewMem(8, 16)
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
		specs[i] = ReplicaSpec{Name: fmt.Sprintf("r%d", i), Backend: AsBatch(m)}
	}
	rep, err := NewReplicated(specs, ReplicatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close() //nolint:errcheck
	addr := serveOn(t, rep, 0)
	rs, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	sts, err := rs.ReplicaStatus()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 || sts[0].Name != "r0" || sts[1].Name != "r1" {
		t.Fatalf("status %+v", sts)
	}
	for _, st := range sts {
		if st.State != ReplicaUp {
			t.Fatalf("replica %s not up: %+v", st.Name, st)
		}
	}

	plain := serveOn(t, mems[0], 0)
	rp, err := Dial(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	if _, err := rp.ReplicaStatus(); err == nil {
		t.Fatal("plain daemon served a replica status")
	}
}

// TestDialClusterFailoverResync is the transport-level acceptance path
// in-process: three TCP daemons, a DialCluster front end with W=2, one
// daemon dying mid-load (listener + connections torn down), zero
// client-visible failures, then the daemon returning and being promoted
// after a full resync (epoch 0 = no durability claim).
func TestDialClusterFailoverResync(t *testing.T) {
	const slots, bs = 64, 16
	mems := make([]*Mem, 3)
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	conns := make([]chan net.Conn, 3)
	for i := range mems {
		m, err := NewMem(slots, bs)
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
		conns[i] = make(chan net.Conn, 64)
		ns := NewNamespaces()
		ns.Attach(DefaultNamespace, m)
		go func(ln net.Listener, ns *Namespaces, cc chan net.Conn) {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				select {
				case cc <- c:
				default:
				}
				go serveConn(c, ns)
			}
		}(ln, ns, conns[i])
	}
	cl, err := DialCluster(addrs, ClusterOptions{Replicated: ReplicatedOptions{
		WriteQuorum:      2,
		ProbeInterval:    2 * time.Millisecond,
		MaxProbeInterval: 20 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	shadow := make(map[int]block.Block)
	write := func(q int) {
		a := (q * 5) % slots
		b := block.Pattern(uint64(q), bs)
		if err := cl.Upload(a, b); err != nil {
			t.Fatalf("write %d: %v", q, err)
		}
		shadow[a] = b
	}
	for q := 0; q < 32; q++ {
		write(q)
	}

	// Kill daemon 0 (the sticky read replica): close its listener and
	// every accepted connection, so in-flight and future operations fail.
	lns[0].Close()
	for {
		select {
		case c := <-conns[0]:
			c.Close()
			continue
		default:
		}
		break
	}
	// Load continues: zero client-visible failures (reads fail over,
	// writes reach quorum on the two survivors).
	for q := 32; q < 64; q++ {
		write(q)
		a := (q * 3) % slots
		got, err := cl.Download(a)
		if err != nil {
			t.Fatalf("read %d during outage: %v", q, err)
		}
		want := shadow[a]
		if want == nil {
			want = block.New(bs)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d returned wrong data during outage", q)
		}
	}

	// Restart daemon 0 on the same address with an EMPTY store: epoch 0
	// means no durability claim, so the repair loop must full-copy.
	m0, err := NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	mems[0] = m0
	ln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addrs[0], err)
	}
	defer ln.Close()
	ns := NewNamespaces()
	ns.Attach(DefaultNamespace, m0)
	go ServeNamespaces(ln, ns) //nolint:errcheck

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && cl.ReplicaStatus()[0].State != ReplicaUp {
		time.Sleep(2 * time.Millisecond)
	}
	if st := cl.ReplicaStatus()[0]; st.State != ReplicaUp {
		t.Fatalf("replica 0 never promoted: %+v", cl.ReplicaStatus())
	}
	cl.Flush()
	// The restarted, resynced replica holds every acknowledged write.
	for a := 0; a < slots; a++ {
		want := shadow[a]
		if want == nil {
			want = block.New(bs)
		}
		got, err := m0.Download(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("resynced replica wrong at addr %d", a)
		}
	}
	// And serves reads again (sticky policy returns to the lowest Up
	// replica only after the current one fails; force it by killing 1).
	if _, err := cl.Download(0); err != nil {
		t.Fatal(err)
	}
}
