package store

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplicatedConvergenceStress reproduces the pipeline shape at the
// store level with decodable values: one writer goroutine issuing
// sequential WriteBatches (each value encodes its own write ordinal), a
// reader goroutine, and a replica that dies and rejoins mid-run. After
// promotion and Flush, every replica must hold, at every address, the
// value of the HIGHEST ordinal written there — divergence prints the
// ordinals, which pins whether a resync regression or a lost write
// happened.
func TestReplicatedConvergenceStress(t *testing.T) {
	const slots, bs, rounds, writes = 32, 8, 40, 300
	for round := 0; round < rounds; round++ {
		mems := make([]*Mem, 2)
		gates := make([]*gated, 2)
		specs := make([]ReplicaSpec, 2)
		for i := range specs {
			m, err := NewMem(slots, bs)
			if err != nil {
				t.Fatal(err)
			}
			mems[i] = m
			gates[i] = newGated(m)
			specs[i] = ReplicaSpec{Name: fmt.Sprintf("r%d", i), Backend: gates[i]}
		}
		r, err := NewReplicated(specs, ReplicatedOptions{
			WriteQuorum:      1,
			ReadPolicy:       ReadRotate,
			ProbeInterval:    100 * time.Microsecond,
			MaxProbeInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}

		latest := make([]uint64, slots) // highest ordinal acked per addr
		var done atomic.Bool
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // reader (the eject trigger)
			defer wg.Done()
			for !done.Load() {
				r.ReadBatch([]int{0, 1, 2}) //nolint:errcheck
			}
		}()
		for q := 1; q <= writes; q++ {
			if q == writes/3 {
				gates[1].broken.Store(true)
			}
			if q == 2*writes/3 {
				gates[1].broken.Store(false)
			}
			a := (q * 7) % slots
			v := make([]byte, bs)
			binary.BigEndian.PutUint64(v, uint64(q))
			ops := []WriteOp{{Addr: a, Block: v}}
			if q%5 == 0 {
				// A coalesced batch may hit one address twice; the LATER
				// duplicate must win everywhere, including in a dead
				// replica's backlog (the resync regression this pins).
				stale := make([]byte, bs)
				binary.BigEndian.PutUint64(stale, uint64(q)<<32)
				ops = []WriteOp{{Addr: a, Block: stale}, {Addr: a, Block: v}}
			}
			if err := r.WriteBatch(ops); err != nil {
				t.Fatalf("round %d write %d: %v (status %+v)", round, q, err, r.ReplicaStatus())
			}
			latest[a] = uint64(q)
		}
		done.Store(true)
		wg.Wait()
		waitState(t, r, 1, ReplicaUp)
		r.Flush()
		for a := 0; a < slots; a++ {
			for i, m := range mems {
				got, _ := m.Download(a)
				if ord := binary.BigEndian.Uint64(got); ord != latest[a] {
					t.Fatalf("round %d: replica %d addr %d holds ordinal %d, want %d (status %+v)",
						round, i, a, ord, latest[a], r.ReplicaStatus())
				}
			}
		}
		r.Close() //nolint:errcheck
	}
}
