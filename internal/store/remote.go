package store

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/obs"
	"dpstore/internal/wire"
)

// Remote is a BatchServer backed by a networked block server speaking the
// wire protocol. It lets every construction in this repository run
// unmodified against a real remote store (see cmd/blockstored and
// examples/remotestore). A ReadBatch or WriteBatch crosses the network
// once regardless of batch size (up to the MaxFrame ceiling, beyond which
// it transparently splits), which is where the constructions' batched hot
// paths turn into real latency wins. Requests on one Remote are
// serialized; open several connections — or a Pool — for parallelism. On a
// multi-tenant daemon, Open (or DialNamespace) points the connection at a
// named namespace; a Remote that never opens one speaks to the daemon's
// default namespace, exactly as before namespaces existed.
type Remote struct {
	mu         sync.Mutex
	conn       net.Conn
	r          *bufio.Reader
	w          *bufio.Writer
	info       wire.Info
	name       string // current namespace (DefaultNamespace until Open)
	roundTrips int64
	maxFrame   int // frame budget for batch splitting; wire.MaxFrame outside tests

	// Per-connection scratch for the batch hot path, guarded by mu like the
	// connection itself. encBuf holds the outgoing frame, readBuf the
	// incoming payload (ReadFrameInto grows it once to the steady-state
	// frame size, then reuses it); addrScratch/blockScratch stage WriteBatch
	// ops as the parallel slices the wire codec takes. Results returned to
	// callers never alias any of these — ReadBatch copies the payload into a
	// caller-owned slab before mu is released.
	encBuf       []byte
	readBuf      []byte
	addrScratch  []int
	blockScratch [][]byte

	// retry, when set via SetRetryPolicy, re-runs busy-shed public
	// operations instead of surfacing wire.BusyError (see retry.go). Set
	// before sharing the connection; nil means busy errors surface.
	retry *retrier
}

// run executes op under the connection's retry policy (or directly when
// none is armed).
func (rs *Remote) run(op func() error) error {
	if rs.retry == nil {
		return op()
	}
	return rs.retry.do(op)
}

// dialTimeout bounds connection establishment. An unbounded net.Dial
// against a black-holing address hangs for the kernel connect timeout
// (minutes) — unacceptable for interactive clients and fatal for a
// Replicated cluster's serial repair loop, which would stall every other
// replica's probe behind one unreachable host.
const dialTimeout = 10 * time.Second

// dialRaw opens the TCP connection without any handshake.
func dialRaw(addr string) (*Remote, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("store: dialing %s: %w", addr, err)
	}
	return &Remote{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), maxFrame: wire.MaxFrame}, nil
}

// Dial connects to a block server at addr ("host:port") and performs the
// info handshake against the daemon's default namespace.
func Dial(addr string) (*Remote, error) {
	rs, err := dialRaw(addr)
	if err != nil {
		return nil, err
	}
	resp, err := rs.roundTrip(wire.Frame{Type: wire.MsgInfoReq}, wire.MsgInfoResp)
	if err != nil {
		rs.conn.Close()
		return nil, err
	}
	info, err := wire.DecodeInfo(resp.Payload)
	if err != nil {
		rs.conn.Close()
		return nil, err
	}
	// A hostile or broken server must not be able to poison later
	// arithmetic (batch chunk sizing divides by the block size).
	if info.BlockSize == 0 || info.Size == 0 {
		rs.conn.Close()
		return nil, fmt.Errorf("store: server reported invalid shape (%d slots × %d B)", info.Size, info.BlockSize)
	}
	rs.info = info
	return rs, nil
}

// DialNamespace connects to a block server and opens the named namespace —
// the multi-tenant handshake. The open request is the handshake (no
// MsgInfoReq is sent), so it works against daemons that host no default
// namespace at all. Slots and blockSize are the shape a freshly created
// namespace should have; pass zeros to accept whatever shape the server
// already holds (or defaults to) for that name.
func DialNamespace(addr, name string, slots, blockSize int) (*Remote, error) {
	rs, err := dialRaw(addr)
	if err != nil {
		return nil, err
	}
	if err := rs.Open(name, slots, blockSize); err != nil {
		rs.conn.Close()
		return nil, err
	}
	return rs, nil
}

// Open switches this connection to the named namespace, creating it
// server-side when the daemon permits. Zero slots/blockSize defer the
// shape to the server. Concurrent operations issued while an Open is in
// flight may land in either namespace; callers that share a Remote across
// goroutines should open before fanning out (Pool does).
func (rs *Remote) Open(name string, slots, blockSize int) error {
	if slots < 0 || blockSize < 0 {
		return fmt.Errorf("store: invalid namespace shape %d × %d", slots, blockSize)
	}
	req, err := wire.EncodeOpenReq(wire.OpenReq{Name: name, Slots: uint64(slots), BlockSize: uint32(blockSize)})
	if err != nil {
		return err
	}
	resp, err := rs.roundTrip(req, wire.MsgOpenResp)
	if err != nil {
		return err
	}
	info, err := wire.DecodeOpenResp(resp.Payload)
	if err != nil {
		return err
	}
	// Same hostile-shape guard as Dial: later batch chunk sizing divides
	// by the block size.
	if info.BlockSize == 0 || info.Size == 0 {
		return fmt.Errorf("store: server reported invalid shape for %q (%d slots × %d B)", name, info.Size, info.BlockSize)
	}
	rs.mu.Lock()
	rs.info = info
	rs.name = name
	rs.mu.Unlock()
	return nil
}

// Namespace returns the namespace this connection currently speaks to.
func (rs *Remote) Namespace() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.name
}

// Epoch returns the recovery epoch the server reported in the handshake
// (0 for servers without durable state). A client that remembers the
// epoch of an earlier connection and sees a larger one here knows the
// server restarted — and therefore recovered from its log — in between.
func (rs *Remote) Epoch() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.info.Epoch
}

// Partitions returns the scheme-partition count the server reported in
// the handshake: ≥ 1 for a proxy-backed namespace, 0 for block namespaces
// and pre-partition servers (no partitioning claim).
func (rs *Remote) Partitions() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return int(rs.info.Partitions)
}

// shape returns the current namespace's store shape.
func (rs *Remote) shape() wire.Info {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.info
}

func (rs *Remote) roundTrip(req wire.Frame, want byte) (wire.Frame, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := wire.WriteFrame(rs.w, req); err != nil {
		return wire.Frame{}, err
	}
	if err := rs.w.Flush(); err != nil {
		return wire.Frame{}, fmt.Errorf("store: flushing request: %w", err)
	}
	rs.roundTrips++
	resp, err := wire.ReadFrame(rs.r)
	if err != nil {
		return wire.Frame{}, fmt.Errorf("store: reading response: %w", err)
	}
	if err := wire.AsError(resp, want); err != nil {
		return wire.Frame{}, err
	}
	return resp, nil
}

// hotRoundTripLocked performs one round trip with the pre-encoded frame
// already in rs.encBuf, reading the response into rs.readBuf. Callers must
// hold mu and must finish with the returned frame — whose payload aliases
// rs.readBuf — before releasing it.
func (rs *Remote) hotRoundTripLocked(want byte) (wire.Frame, error) {
	if _, err := rs.w.Write(rs.encBuf); err != nil {
		return wire.Frame{}, fmt.Errorf("store: writing request: %w", err)
	}
	if err := rs.w.Flush(); err != nil {
		return wire.Frame{}, fmt.Errorf("store: flushing request: %w", err)
	}
	rs.roundTrips++
	resp, buf, err := wire.ReadFrameInto(rs.r, rs.readBuf)
	rs.readBuf = buf
	if err != nil {
		return wire.Frame{}, fmt.Errorf("store: reading response: %w", err)
	}
	if err := wire.AsError(resp, want); err != nil {
		return wire.Frame{}, err
	}
	return resp, nil
}

// RoundTrips returns the number of request/response exchanges performed on
// this connection (including the handshake). Benchmarks use it to show the
// batch transport collapsing per-block chatter.
func (rs *Remote) RoundTrips() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.roundTrips
}

// Download implements Server.
func (rs *Remote) Download(addr int) (block.Block, error) {
	var out block.Block
	err := rs.run(func() error {
		resp, err := rs.roundTrip(wire.EncodeDownloadReq(uint64(addr)), wire.MsgDownloadResp)
		if err != nil {
			return err
		}
		out = block.Block(resp.Payload).Copy()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Upload implements Server.
func (rs *Remote) Upload(addr int, b block.Block) error {
	return rs.run(func() error {
		_, err := rs.roundTrip(wire.EncodeUploadReq(uint64(addr), b), wire.MsgUploadResp)
		return err
	})
}

// readChunk returns the largest address count whose MsgReadBatchReq and
// MsgReadBatchResp both still fit one frame (for tiny blocks the 8-byte
// request addresses, not the response blocks, are the binding constraint).
func (rs *Remote) readChunk(blockSize int) int {
	n := (rs.maxFrame - 4) / blockSize
	if req := (rs.maxFrame - 4) / 8; req < n {
		n = req
	}
	if n < 1 {
		n = 1
	}
	return n
}

// writeChunk returns the largest op count whose MsgWriteBatchReq still fits
// one frame.
func (rs *Remote) writeChunk(blockSize int) int {
	n := (rs.maxFrame - 4) / (8 + blockSize)
	if n < 1 {
		n = 1
	}
	return n
}

// ReadBatch implements BatchServer in one round trip (or ⌈N/chunk⌉ trips
// when the reply would overflow MaxFrame). The result is a caller-owned
// slab — two allocations per call regardless of batch size — filled
// straight from the response payload in the connection's reusable read
// buffer, which is why the whole batch runs under one mu acquisition.
func (rs *Remote) ReadBatch(addrs []int) ([]block.Block, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	if rs.retry != nil {
		// Retry the whole batch: a shed chunk never executed, and re-reading
		// already-delivered chunks is a pure (idempotent) cost.
		var out []block.Block
		err := rs.retry.do(func() error {
			var err error
			out, err = rs.readBatchOnce(addrs)
			return err
		})
		return out, err
	}
	return rs.readBatchOnce(addrs)
}

func (rs *Remote) readBatchOnce(addrs []int) ([]block.Block, error) {
	blockSize := int(rs.shape().BlockSize)
	chunk := rs.readChunk(blockSize)
	out := newSlab(len(addrs), blockSize)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for start := 0; start < len(addrs); start += chunk {
		end := start + chunk
		if end > len(addrs) {
			end = len(addrs)
		}
		rs.encBuf = wire.AppendReadBatchReq(rs.encBuf[:0], addrs[start:end])
		resp, err := rs.hotRoundTripLocked(wire.MsgReadBatchResp)
		if err != nil {
			return nil, err
		}
		count, size, body, err := wire.ReadBatchRespShape(resp.Payload)
		if err != nil {
			return nil, err
		}
		if count != end-start {
			return nil, fmt.Errorf("store: read batch returned %d blocks, want %d", count, end-start)
		}
		// The shape check guarantees uniform sizes, so checking the common
		// size pins every block: a hostile server must not be able to hand
		// short blocks to callers that index to BlockSize().
		if size != blockSize {
			return nil, fmt.Errorf("store: read batch returned %d B blocks, want %d", size, blockSize)
		}
		// Copy out of the frame payload while still holding mu: body
		// aliases rs.readBuf, which the next round trip overwrites.
		for i := start; i < end; i++ {
			o := (i - start) * size
			copy(out[i], body[o:o+size])
		}
	}
	return out, nil
}

// WriteBatch implements BatchServer in one round trip (split as needed to
// respect MaxFrame), staging each chunk in the connection's reusable
// scratch. The ops' blocks are read before the call returns and never
// retained.
func (rs *Remote) WriteBatch(ops []WriteOp) error {
	if len(ops) == 0 {
		return nil
	}
	if rs.retry != nil {
		// Replaying a half-applied batch is safe: WriteBatch sets absolute
		// values, so a second application converges to the same state.
		return rs.retry.do(func() error { return rs.writeBatchOnce(ops) })
	}
	return rs.writeBatchOnce(ops)
}

func (rs *Remote) writeBatchOnce(ops []WriteOp) error {
	// The batch frame layout relies on uniform block sizes; a ragged op
	// would silently mis-frame on the wire, so fail it here exactly as the
	// server would fail the per-block upload.
	blockSize := int(rs.shape().BlockSize)
	for _, op := range ops {
		if len(op.Block) != blockSize {
			return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(op.Block), blockSize)
		}
	}
	chunk := rs.writeChunk(blockSize)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	defer func() {
		// Drop the staged views so the scratch never pins a caller's block
		// past the call.
		for i := range rs.blockScratch {
			rs.blockScratch[i] = nil
		}
		rs.blockScratch = rs.blockScratch[:0]
		rs.addrScratch = rs.addrScratch[:0]
	}()
	for start := 0; start < len(ops); start += chunk {
		end := start + chunk
		if end > len(ops) {
			end = len(ops)
		}
		addrs, blocks := rs.addrScratch[:0], rs.blockScratch[:0]
		for _, op := range ops[start:end] {
			addrs = append(addrs, op.Addr)
			blocks = append(blocks, op.Block)
		}
		rs.addrScratch, rs.blockScratch = addrs, blocks
		var err error
		rs.encBuf, err = wire.AppendWriteBatchReq(rs.encBuf[:0], addrs, blocks)
		if err != nil {
			return err
		}
		if _, err := rs.hotRoundTripLocked(wire.MsgWriteBatchResp); err != nil {
			return err
		}
	}
	return nil
}

// ResyncCheck asks the server to confirm it still serves the given
// recovery epoch (one MsgResyncReq round trip). The repair loop of a
// Replicated cluster calls it right before streaming a resync, so a
// replica restarting between the redial and the stream is caught instead
// of receiving a backlog computed against its previous life.
func (rs *Remote) ResyncCheck(expect uint64) (epoch uint64, ok bool, err error) {
	resp, err := rs.roundTrip(wire.EncodeResyncReq(expect), wire.MsgResyncResp)
	if err != nil {
		return 0, false, err
	}
	ok, epoch, err = wire.DecodeResyncResp(resp.Payload)
	if err != nil {
		return 0, false, err
	}
	return epoch, ok, nil
}

// ReplicaStatus fetches the per-replica health of a replicated namespace
// (a daemon running with -replicate). Non-replicated namespaces answer
// with an error. The result uses the same ReplicaStatus type the
// in-process Replicated reports, so callers handle both identically
// (LastErr is in-process-only and stays empty over the wire).
func (rs *Remote) ReplicaStatus() ([]ReplicaStatus, error) {
	resp, err := rs.roundTrip(wire.Frame{Type: wire.MsgReplStatusReq}, wire.MsgReplStatusResp)
	if err != nil {
		return nil, err
	}
	wsts, err := wire.DecodeReplStatusResp(resp.Payload)
	if err != nil {
		return nil, err
	}
	out := make([]ReplicaStatus, len(wsts))
	for i, st := range wsts {
		out[i] = ReplicaStatus{
			Name:  st.Name,
			State: ReplicaState(st.State),
			Epoch: st.Epoch,
			Dirty: int(st.Dirty),
		}
	}
	return out, nil
}

// Stats fetches the daemon-wide namespace metrics snapshot (one
// MsgStatsReq round trip): admission counters, queue state, and backing
// gauges for every hosted namespace, regardless of which one this
// connection has open. Counters are cumulative since daemon start, so a
// monitor derives throughput from two snapshots. The request asks for
// the quantile-extended v2 frame; a pre-v2 daemon ignores the request
// payload and answers v1, in which case the extension fields come back
// zero (Requests == 0 is the tell).
func (rs *Remote) Stats() ([]wire.StatsEntry, error) {
	resp, err := rs.roundTrip(wire.EncodeStatsReq(wire.StatsVersionExt), wire.MsgStatsResp)
	if err != nil {
		return nil, err
	}
	return wire.DecodeStatsResp(resp.Payload)
}

// Size implements Server.
func (rs *Remote) Size() int { return int(rs.shape().Size) }

// BlockSize implements Server.
func (rs *Remote) BlockSize() int { return int(rs.shape().BlockSize) }

// Close closes the connection.
func (rs *Remote) Close() error { return rs.conn.Close() }

// Serve accepts connections on ln and serves the wire protocol against
// backing until ln is closed. Each connection is handled on its own
// goroutine; backing must be safe for concurrent use (all Servers in this
// package are). Batch requests execute through backing's native
// BatchServer implementation when it has one, so a Mem-, File- or
// Sharded-backed daemon keeps its single-lock / coalesced-I/O /
// parallel-shard fast path end to end. Serve is the single-tenant form of
// ServeNamespaces: backing becomes the default namespace, so pre-namespace
// clients are served unchanged, and open requests for other names are
// rejected (no factory is installed). Serve returns the listener's accept
// error, which is net.ErrClosed after a clean shutdown.
func Serve(ln net.Listener, backing Server) error {
	ns := NewNamespaces()
	ns.Attach(DefaultNamespace, backing)
	return ServeNamespaces(ln, ns)
}

// connScratch is one connection's reusable hot-path memory: the frame read
// buffer, the response frame build buffer, and the decoded batch views. All
// of it lives exactly as long as the connection and is only ever touched by
// its serve goroutine, so no locking or pooling is needed.
type connScratch struct {
	readBuf []byte    // incoming frame payloads (ReadFrameInto target)
	resp    []byte    // outgoing frame bytes, header included
	addrs   []int     // decoded batch addresses
	blocks  [][]byte  // decoded write-batch block views (alias readBuf)
	ops     []WriteOp // staged write ops handed to the backing store
}

// errorFrame builds a complete MsgError frame into the response buffer.
func (cs *connScratch) errorFrame(msg string) []byte {
	buf, off := wire.BeginFrame(cs.resp[:0], wire.MsgError)
	buf = append(buf, msg...)
	buf, _ = wire.EndFrame(buf, off) // an error message can't exceed MaxFrame
	cs.resp = buf
	return buf
}

func serveConn(conn net.Conn, ns *Namespaces) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	cs := &connScratch{}
	// The connection's current namespace; the zero tenant until an open
	// succeeds when the daemon has no default.
	cur := ns.lookup(DefaultNamespace)
	curName := DefaultNamespace
	lim := ns.limiterFor(curName)
	epoch := ns.Epoch()
	sl := obs.DefaultSlowLog()
	for {
		req, buf, err := wire.ReadFrameInto(r, cs.readBuf)
		cs.readBuf = buf
		if err != nil {
			return // EOF or broken peer: drop the connection
		}
		// One clock read and one indexed atomic increment per request —
		// the serve loop's entire unconditional telemetry cost. arrival
		// doubles as the admission queue-wait origin and the slow-span
		// origin.
		arrival := time.Now()
		frameCounters[req.Type].Inc()
		// Admission runs here, on the frame TYPE alone — the payload (and
		// with it every address) is still opaque bytes, which is what makes
		// the shed/accept pattern provably address-independent. A shed
		// request is answered with a busy frame and never touches a
		// backend.
		var admitted bool
		var svcStart time.Time
		if admittable(req.Type) && !cur.none() {
			start, ok, retry, depth := lim.admit(arrival)
			if !ok {
				raw := wire.AppendBusy(cs.resp[:0], retry, depth)
				cs.resp = raw
				if _, err := w.Write(raw); err != nil {
					return
				}
				if err := w.Flush(); err != nil {
					return
				}
				continue
			}
			admitted, svcStart = true, start
		}
		// The batch frames — the steady-state traffic — are served through
		// the per-connection scratch with zero per-request allocation;
		// everything else goes through the allocating cold path. Both
		// decode from cs.readBuf, which the next ReadFrameInto reuses, so
		// each request must be fully handled (response built or frame
		// encoded) before the next iteration — they are.
		if raw, handled := handleBatch(req, cur, cs); handled {
			_, err := w.Write(raw)
			if err == nil {
				err = w.Flush()
			}
			if admitted {
				svc := lim.release(svcStart)
				if sl.Enabled() {
					observeSlow(sl, arrival, curName, req.Type, svc)
				}
			}
			if err != nil {
				return
			}
			continue
		}
		var resp wire.Frame
		switch {
		case req.Type == wire.MsgOpenReq:
			resp, cur = handleOpen(req, ns, cur, epoch)
			if cur.name != curName {
				curName = cur.name
				lim = ns.limiterFor(curName)
			}
		case req.Type == wire.MsgStatsReq:
			resp = handleStats(ns, req.Payload)
		case cur.none():
			resp = wire.EncodeError("no namespace selected (send an open request first)")
		case cur.acc != nil:
			resp = handleAccess(req, cur.acc, epoch)
		default:
			resp = handle(req, cur.batch, epoch)
		}
		err = wire.WriteFrame(w, resp)
		if err == nil {
			err = w.Flush()
		}
		if admitted {
			svc := lim.release(svcStart)
			if sl.Enabled() {
				observeSlow(sl, arrival, curName, req.Type, svc)
			}
		}
		if err != nil {
			return
		}
	}
}

// observeSlow builds and offers a slow-request span — called only when
// the slow log is armed, so the steady-state serve loop never pays for
// the second clock read or the span construction.
func observeSlow(sl *obs.SlowLog, arrival time.Time, nsName string, frameType byte, svc time.Duration) {
	total := time.Since(arrival)
	if total < sl.Threshold() {
		return
	}
	sl.Observe(obs.Span{
		NS:      nsName,
		Frame:   frameNames[frameType],
		Queue:   total - svc,
		Service: svc,
		Total:   total,
	})
}

// handleStats answers the daemon-wide metrics probe. Like the replica
// status frame it describes the whole daemon, not the connection's
// namespace, and is never subject to admission — a saturated daemon must
// stay observable. The request payload carries the stats protocol
// version the client wants (empty = v1, preserving old clients);
// unknown versions degrade to v1 rather than erroring.
func handleStats(ns *Namespaces, reqPayload []byte) wire.Frame {
	entries := ns.Stats()
	var resp wire.Frame
	var err error
	if wire.StatsReqVersion(reqPayload) >= wire.StatsVersionExt {
		resp, err = wire.EncodeStatsRespExt(entries)
	} else {
		resp, err = wire.EncodeStatsResp(entries)
	}
	if err != nil {
		return wire.EncodeError(err.Error())
	}
	return resp
}

// handleBatch serves the two batch frames against a block-backed namespace
// using the connection's scratch, returning the complete response frame
// bytes (which alias cs.resp) and true; any other frame — or a batch frame
// against a proxy-backed or unselected namespace, which must keep its
// existing rejection — reports false and falls to the cold path.
func handleBatch(req wire.Frame, cur tenant, cs *connScratch) ([]byte, bool) {
	if cur.none() || cur.acc != nil {
		return nil, false
	}
	backing := cur.batch
	switch req.Type {
	case wire.MsgReadBatchReq:
		var err error
		cs.addrs, err = wire.DecodeReadBatchReqInto(cs.addrs[:0], req.Payload)
		if err != nil {
			return cs.errorFrame(err.Error()), true
		}
		blockSize := backing.BlockSize()
		if 4+int64(len(cs.addrs))*int64(blockSize) > wire.MaxFrame {
			return cs.errorFrame(fmt.Sprintf(
				"read batch of %d × %d B blocks exceeds the %d B frame limit",
				len(cs.addrs), blockSize, wire.MaxFrame)), true
		}
		buf, off := wire.BeginFrame(cs.resp[:0], wire.MsgReadBatchResp)
		buf = wire.AppendBatchCount(buf, len(cs.addrs))
		cs.resp = buf
		if ab, ok := backing.(BatchAppender); ok {
			// Zero-copy: the store appends its slots straight into the
			// response frame.
			buf, err = ab.AppendReadBatch(buf, cs.addrs)
			cs.resp = buf
			if err != nil {
				return cs.errorFrame(err.Error()), true
			}
		} else {
			blocks, err := backing.ReadBatch(cs.addrs)
			if err != nil {
				return cs.errorFrame(err.Error()), true
			}
			for _, b := range blocks {
				buf = append(buf, b...)
			}
			cs.resp = buf
		}
		buf, err = wire.EndFrame(buf, off)
		cs.resp = buf
		if err != nil {
			return cs.errorFrame(err.Error()), true
		}
		return buf, true
	case wire.MsgWriteBatchReq:
		var err error
		cs.addrs, cs.blocks, err = wire.DecodeWriteBatchReqInto(cs.addrs[:0], cs.blocks[:0], req.Payload)
		if err != nil {
			return cs.errorFrame(err.Error()), true
		}
		if cap(cs.ops) < len(cs.addrs) {
			cs.ops = make([]WriteOp, len(cs.addrs))
		}
		ops := cs.ops[:len(cs.addrs)]
		for i := range ops {
			ops[i] = WriteOp{Addr: cs.addrs[i], Block: block.Block(cs.blocks[i])}
		}
		if err := backing.WriteBatch(ops); err != nil {
			return cs.errorFrame(err.Error()), true
		}
		buf, off := wire.BeginFrame(cs.resp[:0], wire.MsgWriteBatchResp)
		buf, _ = wire.EndFrame(buf, off) // empty payload can't exceed MaxFrame
		cs.resp = buf
		return buf, true
	}
	return nil, false
}

// handleOpen resolves an open request against the registry. On success the
// connection's current namespace switches to the opened one; on failure it
// stays where it was (the client's session is not torn down by a rejected
// open).
func handleOpen(req wire.Frame, ns *Namespaces, cur tenant, epoch uint64) (wire.Frame, tenant) {
	open, err := wire.DecodeOpenReq(req.Payload)
	if err != nil {
		return wire.EncodeError(err.Error()), cur
	}
	if open.Slots > uint64(int(^uint(0)>>1)) {
		return wire.EncodeError("requested slot count overflows the server"), cur
	}
	t, err := ns.openTenant(open.Name, int(open.Slots), int(open.BlockSize))
	if err != nil {
		return wire.EncodeError(err.Error()), cur
	}
	slots, blockSize := t.shape()
	info := wire.Info{
		Size:      uint64(slots),
		BlockSize: uint32(blockSize),
		Epoch:     epoch,
	}
	if t.acc != nil {
		info.Partitions = accessorPartitions(t.acc)
	}
	return wire.EncodeOpenResp(info), t
}

// handleAccess serves one frame against a proxy-backed namespace: only the
// info handshake and logical access frames exist there. Everything else —
// in particular every block frame — is rejected, because hiding the
// physical store from clients is the proxy deployment's trust boundary.
func handleAccess(req wire.Frame, acc Accessor, epoch uint64) wire.Frame {
	switch req.Type {
	case wire.MsgInfoReq:
		return wire.EncodeInfo(wire.Info{
			Size:       uint64(acc.Records()),
			BlockSize:  uint32(acc.RecordSize()),
			Epoch:      epoch,
			Partitions: accessorPartitions(acc),
		})
	case wire.MsgAccessReq:
		areq, err := wire.DecodeAccessReq(req.Payload)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		if areq.Index >= uint64(acc.Records()) {
			return wire.EncodeError(fmt.Sprintf(
				"record index %d out of range [0,%d)", areq.Index, acc.Records()))
		}
		if areq.Write && len(areq.Data) != acc.RecordSize() {
			return wire.EncodeError(fmt.Sprintf(
				"record is %d bytes, want %d", len(areq.Data), acc.RecordSize()))
		}
		val, err := acc.AccessRecord(int(areq.Index), areq.Write, block.Block(areq.Data))
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodeAccessResp(val)
	default:
		return wire.EncodeError("namespace is proxy-backed: block frames are not served")
	}
}

func handle(req wire.Frame, backing BatchServer, epoch uint64) wire.Frame {
	switch req.Type {
	case wire.MsgInfoReq:
		return wire.EncodeInfo(wire.Info{
			Size:      uint64(backing.Size()),
			BlockSize: uint32(backing.BlockSize()),
			Epoch:     epoch,
		})
	case wire.MsgDownloadReq:
		addr, err := wire.DecodeDownloadReq(req.Payload)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		b, err := backing.Download(int(addr))
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.Frame{Type: wire.MsgDownloadResp, Payload: b}
	case wire.MsgUploadReq:
		addr, data, err := wire.DecodeUploadReq(req.Payload)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		if err := backing.Upload(int(addr), block.Block(data)); err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.Frame{Type: wire.MsgUploadResp}
	case wire.MsgReadBatchReq:
		addrs, err := wire.DecodeReadBatchReq(req.Payload)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		if 4+int64(len(addrs))*int64(backing.BlockSize()) > wire.MaxFrame {
			return wire.EncodeError(fmt.Sprintf(
				"read batch of %d × %d B blocks exceeds the %d B frame limit",
				len(addrs), backing.BlockSize(), wire.MaxFrame))
		}
		blocks, err := backing.ReadBatch(addrs)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		raw := make([][]byte, len(blocks))
		for i, b := range blocks {
			raw[i] = b
		}
		return wire.EncodeReadBatchResp(raw)
	case wire.MsgWriteBatchReq:
		addrs, blocks, err := wire.DecodeWriteBatchReq(req.Payload)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		ops := make([]WriteOp, len(addrs))
		for i := range addrs {
			ops[i] = WriteOp{Addr: addrs[i], Block: block.Block(blocks[i])}
		}
		if err := backing.WriteBatch(ops); err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.Frame{Type: wire.MsgWriteBatchResp}
	case wire.MsgResyncReq:
		expect, err := wire.DecodeResyncReq(req.Payload)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodeResyncResp(expect == epoch, epoch)
	case wire.MsgReplStatusReq:
		rep, ok := backing.(replicaStatusReporter)
		if !ok {
			return wire.EncodeError("namespace is not replicated: no replica status to report")
		}
		sts := rep.ReplicaStatus()
		out := make([]wire.ReplicaStatus, len(sts))
		for i, st := range sts {
			out[i] = wire.ReplicaStatus{Name: st.Name, State: uint8(st.State), Epoch: st.Epoch, Dirty: uint64(st.Dirty)}
		}
		resp, err := wire.EncodeReplStatusResp(out)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return resp
	case wire.MsgAccessReq:
		return wire.EncodeError("namespace is block-backed: logical access frames need a proxy-backed namespace")
	default:
		return wire.EncodeError(fmt.Sprintf("unknown message type %d", req.Type))
	}
}

// replicaStatusReporter is the serve loop's view of a replicated backing
// store (store.Replicated implements it); daemons hosting one export the
// cluster's health via MsgReplStatusReq.
type replicaStatusReporter interface {
	ReplicaStatus() []ReplicaStatus
}

// partitionReporter is the serve loop's view of an accessor that stripes
// its logical address space over P independent scheme instances
// (proxy.Partitioned implements it). Accessors without the method are one
// scheme instance, so the handshake reports 1.
type partitionReporter interface {
	Partitions() int
}

func accessorPartitions(acc Accessor) uint32 {
	if pr, ok := acc.(partitionReporter); ok {
		return uint32(pr.Partitions())
	}
	return 1
}
