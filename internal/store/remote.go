package store

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"dpstore/internal/block"
	"dpstore/internal/wire"
)

// Remote is a Server backed by a networked block server speaking the wire
// protocol. It lets every construction in this repository run unmodified
// against a real remote store (see cmd/blockstored and examples/remotestore).
// Requests on one Remote are serialized; open several connections for
// parallelism.
type Remote struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	info wire.Info
}

// Dial connects to a block server at addr ("host:port") and performs the
// info handshake.
func Dial(addr string) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("store: dialing %s: %w", addr, err)
	}
	rs := &Remote{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	resp, err := rs.roundTrip(wire.Frame{Type: wire.MsgInfoReq}, wire.MsgInfoResp)
	if err != nil {
		conn.Close()
		return nil, err
	}
	info, err := wire.DecodeInfo(resp.Payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	rs.info = info
	return rs, nil
}

func (rs *Remote) roundTrip(req wire.Frame, want byte) (wire.Frame, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := wire.WriteFrame(rs.w, req); err != nil {
		return wire.Frame{}, err
	}
	if err := rs.w.Flush(); err != nil {
		return wire.Frame{}, fmt.Errorf("store: flushing request: %w", err)
	}
	resp, err := wire.ReadFrame(rs.r)
	if err != nil {
		return wire.Frame{}, fmt.Errorf("store: reading response: %w", err)
	}
	if err := wire.AsError(resp, want); err != nil {
		return wire.Frame{}, err
	}
	return resp, nil
}

// Download implements Server.
func (rs *Remote) Download(addr int) (block.Block, error) {
	resp, err := rs.roundTrip(wire.EncodeDownloadReq(uint64(addr)), wire.MsgDownloadResp)
	if err != nil {
		return nil, err
	}
	return block.Block(resp.Payload).Copy(), nil
}

// Upload implements Server.
func (rs *Remote) Upload(addr int, b block.Block) error {
	_, err := rs.roundTrip(wire.EncodeUploadReq(uint64(addr), b), wire.MsgUploadResp)
	return err
}

// Size implements Server.
func (rs *Remote) Size() int { return int(rs.info.Size) }

// BlockSize implements Server.
func (rs *Remote) BlockSize() int { return int(rs.info.BlockSize) }

// Close closes the connection.
func (rs *Remote) Close() error { return rs.conn.Close() }

// Serve accepts connections on ln and serves the wire protocol against
// backing until ln is closed. Each connection is handled on its own
// goroutine; backing must be safe for concurrent use (all Servers in this
// package are). Serve returns the listener's accept error, which is
// net.ErrClosed after a clean shutdown.
func Serve(ln net.Listener, backing Server) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, backing)
	}
}

func serveConn(conn net.Conn, backing Server) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		req, err := wire.ReadFrame(r)
		if err != nil {
			return // EOF or broken peer: drop the connection
		}
		resp := handle(req, backing)
		if err := wire.WriteFrame(w, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func handle(req wire.Frame, backing Server) wire.Frame {
	switch req.Type {
	case wire.MsgInfoReq:
		return wire.EncodeInfo(wire.Info{
			Size:      uint64(backing.Size()),
			BlockSize: uint32(backing.BlockSize()),
		})
	case wire.MsgDownloadReq:
		addr, err := wire.DecodeDownloadReq(req.Payload)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		b, err := backing.Download(int(addr))
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.Frame{Type: wire.MsgDownloadResp, Payload: b}
	case wire.MsgUploadReq:
		addr, data, err := wire.DecodeUploadReq(req.Payload)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		if err := backing.Upload(int(addr), block.Block(data)); err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.Frame{Type: wire.MsgUploadResp}
	default:
		return wire.EncodeError(fmt.Sprintf("unknown message type %d", req.Type))
	}
}
