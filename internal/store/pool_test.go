package store

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"dpstore/internal/block"
)

func poolServer(t *testing.T, slots, blockSize int) string {
	t.Helper()
	backing, err := NewShardedMem(slots, blockSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, backing) //nolint:errcheck
	return ln.Addr().String()
}

func TestPoolBasics(t *testing.T) {
	addr := poolServer(t, 64, 16)
	p, err := DialPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Conns() != 4 || p.Size() != 64 || p.BlockSize() != 16 {
		t.Fatalf("pool shape = %d conns, %d × %d", p.Conns(), p.Size(), p.BlockSize())
	}
	if err := p.Upload(9, block.Pattern(9, 16)); err != nil {
		t.Fatal(err)
	}
	got, err := p.Download(9)
	if err != nil {
		t.Fatal(err)
	}
	if !block.CheckPattern(got, 9) {
		t.Fatal("pool read-back mismatch")
	}
	ops := []WriteOp{{Addr: 1, Block: block.Pattern(1, 16)}, {Addr: 2, Block: block.Pattern(2, 16)}}
	if err := p.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}
	blocks, err := p.ReadBatch([]int{1, 2, 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []uint64{1, 2, 9} {
		if !block.CheckPattern(blocks[i], id) {
			t.Fatalf("batch pos %d mismatch", i)
		}
	}
	if p.RoundTrips() == 0 {
		t.Fatal("round trips not counted")
	}
}

func TestPoolRejectsBadConfig(t *testing.T) {
	if _, err := DialPool("127.0.0.1:1", 0); err == nil {
		t.Fatal("zero-width pool accepted")
	}
	if _, err := NewPool(2, func() (*Remote, error) { return nil, errors.New("nope") }); err == nil {
		t.Fatal("dial failure swallowed")
	}
}

// TestPoolConcurrentClients runs many goroutine clients through one Pool
// against a live daemon: requests must interleave correctly (each client
// sees exactly its own writes at its own addresses).
func TestPoolConcurrentClients(t *testing.T) {
	const slots, bs, clients, iters = 96, 16, 12, 25
	addr := poolServer(t, slots, bs)
	p, err := DialPool(addr, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]int, 0, slots/clients)
			for a := c; a < slots; a += clients {
				mine = append(mine, a)
			}
			for i := 0; i < iters; i++ {
				ops := make([]WriteOp, len(mine))
				for j, a := range mine {
					ops[j] = WriteOp{Addr: a, Block: block.Pattern(uint64(c)<<20|uint64(i)<<10|uint64(a), bs)}
				}
				if err := p.WriteBatch(ops); err != nil {
					errs[c] = err
					return
				}
				blocks, err := p.ReadBatch(mine)
				if err != nil {
					errs[c] = err
					return
				}
				for j, a := range mine {
					if !block.CheckPattern(blocks[j], uint64(c)<<20|uint64(i)<<10|uint64(a)) {
						errs[c] = fmt.Errorf("client %d iter %d: slot %d corrupted", c, i, a)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPoolNamespace pins DialNamespacePool: every pooled connection lands
// in the same tenant namespace.
func TestPoolNamespace(t *testing.T) {
	ns := NewNamespaces()
	ns.SetFactory(4, func(name string, slots, blockSize int) (Server, error) {
		return NewShardedMem(slots, blockSize, 2)
	})
	addr := serveRegistry(t, ns)
	p, err := DialNamespacePool(addr, "tenant", 32, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 32 || p.BlockSize() != 16 {
		t.Fatalf("namespace pool shape = %d × %d, want 32 × 16", p.Size(), p.BlockSize())
	}
	// The pool's connections share one backend: a write through one conn
	// is visible through the others (exercised by cycling > Conns() ops).
	for i := 0; i < 3*p.Conns(); i++ {
		if err := p.Upload(5, block.Pattern(uint64(i), 16)); err != nil {
			t.Fatal(err)
		}
		got, err := p.Download(5)
		if err != nil {
			t.Fatal(err)
		}
		if !block.CheckPattern(got, uint64(i)) {
			t.Fatalf("iteration %d: pooled namespace connections disagree", i)
		}
	}
	// Only one namespace was created for the whole pool.
	if _, err := DialNamespacePool(addr, "t2", 8, 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := DialNamespacePool(addr, "t3", 8, 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := DialNamespacePool(addr, "t4", 8, 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := DialNamespacePool(addr, "t5", 8, 8, 1); err == nil {
		t.Fatal("cap should be exhausted: pool must not create one namespace per connection")
	}
}
