package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpstore/internal/obs"
	"dpstore/internal/stats"
	"dpstore/internal/wire"
)

// Admission control and load shedding for the serve loop.
//
// Each namespace gets its own limiter: at most MaxInflight requests
// execute concurrently, at most MaxQueue more wait behind them, and
// everything beyond that is refused with an explicit MsgBusyResp carrying
// a retry hint — the server sheds instead of stalling, so a saturating
// tenant sees bounded latency plus busy signals rather than an unbounded
// queue, and CANNOT starve other namespaces (their limiters are
// independent, and every connection keeps its own serve goroutine).
//
// The privacy constraint shapes where the decision happens: admit runs on
// the frame type and the limiter's counters BEFORE any payload is
// decoded, so whether a request is accepted, queued, or shed is
// independent of which addresses it touches. The busy/accepted pattern an
// adversary observes is a function of load shape only — exactly the
// information the access-pattern leakage model already concedes (see
// docs/WIRE.md §10 and the exact-trace regression in
// admission_oblivious_test.go).

// AdmitOptions configures per-namespace admission control. The zero value
// disables shedding: requests are still counted (so stats work) but never
// refused.
type AdmitOptions struct {
	// MaxInflight is how many admitted requests may execute concurrently
	// per namespace. 0 disables admission control for the namespace.
	MaxInflight int
	// MaxQueue is how many further requests may wait for an execution
	// slot before the server starts shedding. 0 with MaxInflight > 0
	// means no waiting room: anything beyond MaxInflight is shed
	// immediately.
	MaxQueue int
}

// limiter is one namespace's admission state. Limiters exist for every
// namespace that has served traffic — counting-only when admission is
// disabled — so the stats snapshot is uniform either way.
//
// The limiter owns two sets of instruments on purpose. The private
// atomics and histograms back the per-daemon wire stats snapshot (tests
// and `dpbench top` want counts scoped to THIS server's lifetime); the
// obs instruments feed the process-wide registry behind /metrics. Both
// record the same events; neither can substitute for the other.
type limiter struct {
	tokens   chan struct{} // execution slots; nil = admission disabled
	limit    int
	queueCap int

	mu     sync.Mutex
	queued int

	accepted atomic.Uint64
	shed     atomic.Uint64
	inflight atomic.Int64
	ewmaNs   atomic.Int64 // EWMA of admitted-request service time

	service   stats.AtomicHist // admit → release (execute + flush), ns
	queueWait stats.AtomicHist // time spent waiting for a slot, ns

	obsAccepted  *obs.Counter
	obsShed      *obs.Counter
	obsService   *obs.Timer
	obsQueueWait *obs.Timer
}

func newLimiter(name string, opts AdmitOptions) *limiter {
	l := &limiter{
		limit:        opts.MaxInflight,
		queueCap:     opts.MaxQueue,
		obsAccepted:  obs.NewCounter("dpstore_admission_accepted_total", obs.WithLabels("ns", name)),
		obsShed:      obs.NewCounter("dpstore_admission_shed_total", obs.WithLabels("ns", name)),
		obsService:   obs.NewTimer("dpstore_serve_request_seconds", obs.WithLabels("ns", name)),
		obsQueueWait: obs.NewTimer("dpstore_admission_queue_wait_seconds", obs.WithLabels("ns", name)),
	}
	if opts.MaxInflight > 0 {
		l.tokens = make(chan struct{}, opts.MaxInflight)
		for i := 0; i < opts.MaxInflight; i++ {
			l.tokens <- struct{}{}
		}
	}
	return l
}

// admit claims an execution slot, waiting in the bounded queue when all
// slots are busy. arrival is when the request's frame finished reading —
// the serve loop's one clock read per request; admit only reads the
// clock again on the queued path, where the wait is the thing being
// measured. ok=false means the request was shed: the caller must answer
// with a busy frame built from retryAfter and depth and MUST NOT execute
// the request. ok=true obliges the caller to invoke release(start)
// exactly once after the response has been written, where start is the
// slot-grant time admit returned. No closure is minted — the serve
// loop's steady state stays allocation-free.
func (l *limiter) admit(arrival time.Time) (start time.Time, ok bool, retryAfter time.Duration, depth int) {
	if l.tokens == nil {
		// Counting-only: measure, never refuse.
		l.inflight.Add(1)
		return arrival, true, 0, 0
	}
	start = arrival
	select {
	case <-l.tokens:
	default:
		// All slots busy: join the bounded wait queue or shed.
		l.mu.Lock()
		if l.queued >= l.queueCap {
			depth = l.queued
			l.mu.Unlock()
			l.shed.Add(1)
			l.obsShed.Inc()
			return time.Time{}, false, l.retryHint(depth), depth
		}
		l.queued++
		l.mu.Unlock()
		<-l.tokens
		l.mu.Lock()
		l.queued--
		l.mu.Unlock()
		start = time.Now()
		wait := start.Sub(arrival)
		l.queueWait.Record(wait)
		l.obsQueueWait.Observe(wait)
	}
	l.inflight.Add(1)
	return start, true, 0, 0
}

// release completes an admitted request: records it and, when admission
// is enabled, returns the execution slot. It returns the service time
// (slot grant to release) for the caller's slow-span accounting.
func (l *limiter) release(start time.Time) time.Duration {
	d := l.finish(start)
	if l.tokens != nil {
		l.tokens <- struct{}{}
	}
	return d
}

// finish records one completed request: counters, the service-time
// histograms, and the EWMA (α = 1/8) the retry hint is derived from. The
// EWMA update is a load/store race under concurrency — acceptable for a
// smoothing gauge.
func (l *limiter) finish(start time.Time) time.Duration {
	l.accepted.Add(1)
	l.obsAccepted.Inc()
	l.inflight.Add(-1)
	d := time.Since(start)
	sample := int64(d)
	l.service.RecordValue(sample)
	l.obsService.Observe(d)
	old := l.ewmaNs.Load()
	l.ewmaNs.Store(old + (sample-old)/8)
	return d
}

// retryHint estimates when capacity is likely again: the time for the
// current queue (plus this request) to drain at the observed service
// rate, clamped to [1ms, 2s] so a cold EWMA still produces a sane hint
// and a stalled server cannot park clients forever.
func (l *limiter) retryHint(depth int) time.Duration {
	ewma := time.Duration(l.ewmaNs.Load())
	hint := ewma * time.Duration(depth+1) / time.Duration(l.limit)
	if hint < time.Millisecond {
		hint = time.Millisecond
	}
	if hint > 2*time.Second {
		hint = 2 * time.Second
	}
	return hint
}

// snapshot fills the admission half of a stats entry, including the v2
// quantile extension (folded out of the live histograms; cold path).
func (l *limiter) snapshot(e *wire.StatsEntry) {
	e.Accepted = l.accepted.Load()
	e.Shed = l.shed.Load()
	e.Inflight = uint32(l.inflight.Load())
	l.mu.Lock()
	e.Queued = uint32(l.queued)
	l.mu.Unlock()
	e.Limit = uint32(l.limit)
	e.QueueCap = uint32(l.queueCap)

	h := stats.NewLatencyHist()
	l.service.SnapshotInto(h)
	e.Requests = h.Count()
	e.P50Micros = ceilMicros(h.QuantileValue(0.50))
	e.P90Micros = ceilMicros(h.QuantileValue(0.90))
	e.P99Micros = ceilMicros(h.QuantileValue(0.99))
	e.P999Micros = ceilMicros(h.QuantileValue(0.999))
	e.MaxMicros = ceilMicros(h.Max())
	l.queueWait.SnapshotInto(h)
	e.QueueP99Micros = ceilMicros(h.QuantileValue(0.99))
}

// ceilMicros converts nanoseconds to whole microseconds, rounding up so
// a nonzero latency never reports as zero (consistent with the
// histogram's own conservative upward bias).
func ceilMicros(ns int64) uint64 {
	if ns <= 0 {
		return 0
	}
	return uint64(ns+999) / 1000
}

// SetAdmission installs admission control: every namespace (current and
// future) gets its own limiter with these options, so one tenant
// saturating its slots sheds its own overload without touching anyone
// else's capacity. Call before serving; limiters already handed to live
// connections keep their old options.
func (ns *Namespaces) SetAdmission(opts AdmitOptions) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.admit = opts
	for name := range ns.limiters {
		ns.limiters[name] = newLimiter(name, opts)
	}
}

// limiterFor returns (creating on first use) the named namespace's
// limiter.
func (ns *Namespaces) limiterFor(name string) *limiter {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	l, ok := ns.limiters[name]
	if !ok {
		l = newLimiter(name, ns.admit)
		ns.limiters[name] = l
	}
	return l
}

// depthReporter lets a backing expose one load-relevant depth gauge: the
// proxy's stash occupancy, a replicated cluster's resync backlog.
type depthReporter interface {
	LoadDepth() uint64
}

// syncLatencyReporter exposes a durable backing's observed WAL fsync
// latency (EWMA). store.Durable and store.Sharded implement it.
type syncLatencyReporter interface {
	SyncLatency() time.Duration
}

// Stats snapshots every registered namespace: admission counters from its
// limiter plus whatever gauges its backend exposes. Entries are sorted by
// name so two snapshots line up positionally.
func (ns *Namespaces) Stats() []wire.StatsEntry {
	ns.mu.Lock()
	type row struct {
		name string
		t    tenant
		lim  *limiter
	}
	rows := make([]row, 0, len(ns.m))
	for name, t := range ns.m {
		l, ok := ns.limiters[name]
		if !ok {
			l = newLimiter(name, ns.admit)
			ns.limiters[name] = l
		}
		rows = append(rows, row{name, t, l})
	}
	ns.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	// Gauges are read outside the registry lock: a backend's depth or
	// latency probe may itself take locks.
	entries := make([]wire.StatsEntry, 0, len(rows))
	for _, r := range rows {
		e := wire.StatsEntry{Name: r.name}
		r.lim.snapshot(&e)
		switch {
		case r.t.acc != nil:
			e.Kind = wire.StatsKindProxy
			if d, ok := r.t.acc.(depthReporter); ok {
				e.Depth = d.LoadDepth()
			}
		case r.t.batch != nil:
			e.Kind = wire.StatsKindBlock
			if rep, ok := r.t.batch.(replicaStatusReporter); ok {
				e.Kind = wire.StatsKindReplicated
				for _, st := range rep.ReplicaStatus() {
					e.Depth += uint64(st.Dirty)
				}
			} else if d, ok := r.t.batch.(depthReporter); ok {
				e.Depth = d.LoadDepth()
			}
			if s, ok := r.t.batch.(syncLatencyReporter); ok {
				e.SyncMicros = uint64(s.SyncLatency().Microseconds())
			}
		}
		entries = append(entries, e)
	}
	return entries
}

// admittable reports whether a frame type is subject to admission
// control: the data-plane frames that execute against a backend. Control
// frames — handshakes, opens, health probes — always pass, so a saturated
// namespace stays observable. The classification depends only on the
// type byte; no payload has been decoded when it runs.
func admittable(t byte) bool {
	switch t {
	case wire.MsgDownloadReq, wire.MsgUploadReq,
		wire.MsgReadBatchReq, wire.MsgWriteBatchReq,
		wire.MsgAccessReq:
		return true
	}
	return false
}
