package store_test

// Obliviousness regression for replication (external test package: the
// trace recorder imports store). Replication must be invisible in the
// adversary view:
//
//  1. A scheme run over Replicated(2) produces bit-identical per-query
//     traces to the same run over a single Mem — replication changes
//     where blocks live, never which (op, address) sequence the scheme
//     emits (dpram AND pathoram, two seeds).
//  2. Ejecting a replica mid-run leaves every per-query trace shape (and
//     the full trace, bit-exactly) unchanged — failover retries the same
//     address multiset, so a replica death is invisible both to the
//     client and in trace shape (the leak a naive "skip the dead
//     replica's portion" failover would introduce).
//  3. Replica choice carries no address information: every replica sees
//     the identical upload sequence (writes fan out in order), and under
//     the sticky policy the non-chosen replica sees zero downloads.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/trace"
	"dpstore/internal/workload"
)

// scheme is the slice of proxy.Scheme both constructions satisfy.
type scheme interface {
	Access(q workload.Query) (block.Block, error)
}

// gate wraps a Server with a togglable failure switch.
type gate struct {
	inner  store.Server
	broken atomic.Bool
}

func (g *gate) Download(addr int) (block.Block, error) {
	if g.broken.Load() {
		return nil, fmt.Errorf("gate: broken")
	}
	return g.inner.Download(addr)
}

func (g *gate) Upload(addr int, b block.Block) error {
	if g.broken.Load() {
		return fmt.Errorf("gate: broken")
	}
	return g.inner.Upload(addr, b)
}

func (g *gate) Size() int      { return g.inner.Size() }
func (g *gate) BlockSize() int { return g.inner.BlockSize() }

// physShape returns the backing-store shape the scheme needs.
func physShape(t *testing.T, kind string, n, rs int, seed int64) (int, int) {
	t.Helper()
	switch kind {
	case "dpram":
		return n, crypto.CiphertextSize(rs)
	case "pathoram":
		return pathoram.TreeShape(n, rs, pathoram.Options{Rand: rng.New(seed)})
	}
	t.Fatalf("unknown scheme kind %q", kind)
	return 0, 0
}

// setupOn builds the named scheme over srv with deterministic coins.
func setupOn(t *testing.T, kind string, n, rs int, seed int64, srv store.Server) scheme {
	t.Helper()
	db, err := block.PatternDatabase(n, rs)
	if err != nil {
		t.Fatal(err)
	}
	switch kind {
	case "dpram":
		c, err := dpram.Setup(db, srv, dpram.Options{Rand: rng.New(seed), Key: crypto.KeyFromSeed(uint64(seed))})
		if err != nil {
			t.Fatal(err)
		}
		return c
	case "pathoram":
		o, err := pathoram.Setup(db, srv, pathoram.Options{Rand: rng.New(seed), Key: crypto.KeyFromSeed(uint64(seed))})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	t.Fatalf("unknown scheme kind %q", kind)
	return nil
}

// requests derives a fixed mixed read/write sequence.
func requests(seed int64, n, rs, count int) []workload.Query {
	src := rng.New(seed + 77)
	reqs := make([]workload.Query, count)
	for i := range reqs {
		reqs[i] = workload.Query{Index: src.Intn(n), Op: workload.Read}
		if i%2 == 1 {
			reqs[i].Op = workload.Write
			reqs[i].Data = block.Pattern(uint64(i), rs)
		}
	}
	return reqs
}

// runTraced executes the request sequence over a recorder-wrapped server
// and returns the per-query transcripts.
func runTraced(t *testing.T, kind string, n, rs int, seed int64, backing store.Server, breakAt int, g *gate) []trace.Transcript {
	t.Helper()
	rec := trace.NewRecorder(backing)
	sch := setupOn(t, kind, n, rs, seed, rec)
	for i, q := range requests(seed, n, rs, 24) {
		if g != nil && i == breakAt {
			g.broken.Store(true)
		}
		rec.Mark()
		if _, err := sch.Access(q); err != nil {
			t.Fatalf("%s seed %d: access %d failed: %v", kind, seed, i, err)
		}
	}
	return rec.Queries()
}

// newReplicated2 builds a 2-replica cluster over fresh Mems (optionally
// gating replica 0) with a fast probe cadence.
func newReplicated2(t *testing.T, slots, bs, quorum int, gateFirst bool) (*store.Replicated, *gate) {
	t.Helper()
	specs := make([]store.ReplicaSpec, 2)
	var g *gate
	for i := range specs {
		m, err := store.NewMem(slots, bs)
		if err != nil {
			t.Fatal(err)
		}
		var backend store.Server = m
		if i == 0 && gateFirst {
			g = &gate{inner: m}
			backend = g
		}
		specs[i] = store.ReplicaSpec{Name: fmt.Sprintf("r%d", i), Backend: store.AsBatch(backend)}
	}
	r, err := store.NewReplicated(specs, store.ReplicatedOptions{
		WriteQuorum:      quorum,
		ProbeInterval:    time.Millisecond,
		MaxProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() }) //nolint:errcheck
	return r, g
}

// TestReplicatedTraceEqualsMem: per-query traces over Replicated(2) are
// bit-identical (so in particular shape-identical) to a single Mem, for
// dpram and pathoram at two seeds.
func TestReplicatedTraceEqualsMem(t *testing.T) {
	const n, rs = 64, 16
	for _, kind := range []string{"dpram", "pathoram"} {
		for _, seed := range []int64{1, 2} {
			slots, bs := physShape(t, kind, n, rs, seed)
			single, err := store.NewMem(slots, bs)
			if err != nil {
				t.Fatal(err)
			}
			base := runTraced(t, kind, n, rs, seed, single, -1, nil)
			cluster, _ := newReplicated2(t, slots, bs, 2, false)
			repl := runTraced(t, kind, n, rs, seed, cluster, -1, nil)
			if len(base) != len(repl) {
				t.Fatalf("%s seed %d: %d vs %d queries", kind, seed, len(base), len(repl))
			}
			for q := range base {
				if bs, rs := base[q].Shape(), repl[q].Shape(); bs != rs {
					t.Fatalf("%s seed %d query %d: shape %q over Mem vs %q over Replicated(2)",
						kind, seed, q, bs, rs)
				}
				if bk, rk := base[q].Key(), repl[q].Key(); bk != rk {
					t.Fatalf("%s seed %d query %d: trace diverges: %q vs %q", kind, seed, q, bk, rk)
				}
			}
		}
	}
}

// TestReplicatedShapeInvariance: ejecting the read replica mid-run (its
// gate starts failing before access 12) leaves every per-query shape —
// and the whole trace, bit-exactly — identical to the unbroken baseline,
// while every access still succeeds.
func TestReplicatedShapeInvariance(t *testing.T) {
	const n, rs, breakAt = 64, 16, 12
	for _, kind := range []string{"dpram", "pathoram"} {
		for _, seed := range []int64{1, 2} {
			slots, bs := physShape(t, kind, n, rs, seed)
			single, err := store.NewMem(slots, bs)
			if err != nil {
				t.Fatal(err)
			}
			base := runTraced(t, kind, n, rs, seed, single, -1, nil)
			cluster, g := newReplicated2(t, slots, bs, 1, true)
			broken := runTraced(t, kind, n, rs, seed, cluster, breakAt, g)
			if len(base) != len(broken) {
				t.Fatalf("%s seed %d: %d vs %d queries", kind, seed, len(base), len(broken))
			}
			for q := range base {
				if bs, ks := base[q].Shape(), broken[q].Shape(); bs != ks {
					t.Fatalf("%s seed %d query %d: shape %q healthy vs %q with replica 0 ejected — replica failure leaked into the trace shape",
						kind, seed, q, bs, ks)
				}
				if bk, kk := base[q].Key(), broken[q].Key(); bk != kk {
					t.Fatalf("%s seed %d query %d: trace diverges under ejection", kind, seed, q)
				}
			}
			if st := cluster.ReplicaStatus()[0]; st.State == store.ReplicaUp {
				t.Fatalf("%s seed %d: gated replica still up — the test never exercised failover", kind, seed)
			}
		}
	}
}

// TestReplicatedReplicaViewLeak: what each replica itself sees. The
// upload sequence must be identical on every replica (fan-out preserves
// order and content), and under the sticky policy the non-chosen replica
// must see zero downloads — replica choice is made before any address is
// known, so no download placement can encode data.
func TestReplicatedReplicaViewLeak(t *testing.T) {
	const n, rs = 64, 16
	kind, seed := "dpram", int64(3)
	slots, bs := physShape(t, kind, n, rs, seed)
	recs := make([]*trace.Recorder, 2)
	specs := make([]store.ReplicaSpec, 2)
	for i := range specs {
		m, err := store.NewMem(slots, bs)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = trace.NewRecorder(m)
		specs[i] = store.ReplicaSpec{Name: fmt.Sprintf("r%d", i), Backend: store.AsBatch(recs[i])}
	}
	cluster, err := store.NewReplicated(specs, store.ReplicatedOptions{WriteQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close() //nolint:errcheck
	sch := setupOn(t, kind, n, rs, seed, cluster)
	for _, q := range requests(seed, n, rs, 24) {
		if _, err := sch.Access(q); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Flush()

	uploads := func(tr trace.Transcript) trace.Transcript {
		var out trace.Transcript
		for _, a := range tr {
			if a.Op == trace.OpUpload {
				out = append(out, a)
			}
		}
		return out
	}
	u0, u1 := uploads(recs[0].Transcript()), uploads(recs[1].Transcript())
	if u0.Key() != u1.Key() {
		t.Fatal("replicas saw different upload sequences — fan-out reordered or dropped writes")
	}
	if len(u0) == 0 {
		t.Fatal("no uploads recorded; test is vacuous")
	}
	// Sticky seed 0 → replica 0 serves all downloads; replica 1 none.
	for _, a := range recs[1].Transcript() {
		if a.Op == trace.OpDownload {
			t.Fatalf("sticky policy leaked a download to the non-chosen replica (addr %d)", a.Addr)
		}
	}
}
