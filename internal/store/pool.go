package store

import (
	"fmt"

	"dpstore/internal/block"
)

// Pool is a BatchServer that multiplexes operations over N independent
// connections to one block server, so many goroutine clients — for
// example, the DP-RAM or DP-IR instances of distinct users sharing a
// daemon — issue requests concurrently instead of serializing on a single
// Remote's request/response lock. An idle connection is claimed per call
// and returned when the call completes; with C concurrent callers and N
// connections, min(C, N) requests are in flight at once and the rest queue
// fairly on the pool instead of head-of-line blocking behind one socket.
//
// All connections speak to the same namespace, so a Pool is shape-stable:
// Size and BlockSize are pinned at construction. A Pool is safe for
// concurrent use; Close it only after all operations have returned.
type Pool struct {
	idle      chan *Remote
	all       []*Remote
	size      int
	blockSize int
	epoch     uint64

	// retry, when set via SetRetryPolicy, re-runs busy-shed operations
	// (see retry.go). Each attempt claims a fresh connection, so a client
	// backing off releases its pool slot while it sleeps.
	retry *retrier
}

// run executes op on a claimed connection under the pool's retry policy.
// The connection is claimed per attempt, not per operation: between busy
// retries the slot goes back to the idle set for other callers.
func (p *Pool) run(op func(r *Remote) error) error {
	attempt := func() error {
		r := p.get()
		defer p.put(r)
		return op(r)
	}
	if p.retry == nil {
		return attempt()
	}
	return p.retry.do(attempt)
}

// NewPool builds a pool of conns connections, each produced by dial. Use
// it to pool namespace-opened connections:
//
//	NewPool(8, func() (*Remote, error) {
//		return DialNamespace(addr, "tenant-42", slots, blockSize)
//	})
//
// All dialed connections must report one shape (they are expected to
// target the same store). On any dial error the already-opened connections
// are closed and the error returned.
func NewPool(conns int, dial func() (*Remote, error)) (*Pool, error) {
	if conns <= 0 {
		return nil, fmt.Errorf("store: pool needs at least one connection, got %d", conns)
	}
	p := &Pool{idle: make(chan *Remote, conns), all: make([]*Remote, 0, conns)}
	for i := 0; i < conns; i++ {
		r, err := dial()
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("store: dialing pool connection %d: %w", i, err)
		}
		if i == 0 {
			p.size, p.blockSize, p.epoch = r.Size(), r.BlockSize(), r.Epoch()
		} else if r.Size() != p.size || r.BlockSize() != p.blockSize {
			r.Close()
			p.Close()
			return nil, fmt.Errorf("store: pool connection %d has shape %d × %d, want %d × %d",
				i, r.Size(), r.BlockSize(), p.size, p.blockSize)
		} else if r.Epoch() != p.epoch {
			// The server restarted between two of our dials: the pool would
			// straddle a recovery boundary, with some connections' written
			// state possibly rolled back under the others. Refuse; the
			// caller re-dials against the (now stable) new epoch.
			r.Close()
			p.Close()
			return nil, fmt.Errorf("store: pool connection %d reports epoch %d, connection 0 saw %d (server restarted mid-dial)",
				i, r.Epoch(), p.epoch)
		}
		p.all = append(p.all, r)
		p.idle <- r
	}
	return p, nil
}

// DialPool connects a pool of conns connections to the default namespace
// of the block server at addr.
func DialPool(addr string, conns int) (*Pool, error) {
	return NewPool(conns, func() (*Remote, error) { return Dial(addr) })
}

// DialNamespacePool connects a pool of conns connections, all opened onto
// the named namespace (see DialNamespace for the slots/blockSize
// semantics).
func DialNamespacePool(addr, name string, slots, blockSize, conns int) (*Pool, error) {
	return NewPool(conns, func() (*Remote, error) {
		return DialNamespace(addr, name, slots, blockSize)
	})
}

// get claims an idle connection, blocking until one frees up.
func (p *Pool) get() *Remote { return <-p.idle }

// put returns a connection to the idle set.
func (p *Pool) put(r *Remote) { p.idle <- r }

// Download implements Server.
func (p *Pool) Download(addr int) (block.Block, error) {
	var out block.Block
	err := p.run(func(r *Remote) error {
		var err error
		out, err = r.Download(addr)
		return err
	})
	return out, err
}

// Upload implements Server.
func (p *Pool) Upload(addr int, b block.Block) error {
	return p.run(func(r *Remote) error { return r.Upload(addr, b) })
}

// ReadBatch implements BatchServer; the whole batch rides one connection
// (one round trip up to the frame ceiling, like Remote).
func (p *Pool) ReadBatch(addrs []int) ([]block.Block, error) {
	var out []block.Block
	err := p.run(func(r *Remote) error {
		var err error
		out, err = r.ReadBatch(addrs)
		return err
	})
	return out, err
}

// WriteBatch implements BatchServer.
func (p *Pool) WriteBatch(ops []WriteOp) error {
	return p.run(func(r *Remote) error { return r.WriteBatch(ops) })
}

// Size implements Server.
func (p *Pool) Size() int { return p.size }

// BlockSize implements Server.
func (p *Pool) BlockSize() int { return p.blockSize }

// Conns returns the pool width N.
func (p *Pool) Conns() int { return len(p.all) }

// Epoch returns the server recovery epoch every pooled connection
// handshook against (NewPool rejects a mid-dial epoch change).
func (p *Pool) Epoch() uint64 { return p.epoch }

// RoundTrips sums the round trips of every pooled connection (including
// handshakes).
func (p *Pool) RoundTrips() int64 {
	var total int64
	for _, r := range p.all {
		total += r.RoundTrips()
	}
	return total
}

// Close closes every pooled connection. In-flight operations on other
// goroutines will fail; callers should quiesce first.
func (p *Pool) Close() error {
	var first error
	for _, r := range p.all {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
