package store

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// DefaultNamespace is the namespace a connection speaks to before (or
// without ever) sending an open request — the implicit tenant of every
// pre-namespace client.
const DefaultNamespace = ""

// ErrNamespace reports a namespace open that the registry refused.
var ErrNamespace = errors.New("store: namespace rejected")

// Namespaces is a concurrent registry of named block stores hosted by one
// daemon. Each namespace is an independent Server — its own address space,
// its own locks — so tenants sharing a daemon contend only on the registry
// map (one mutex acquisition per open, none per block operation).
//
// Namespaces are either attached up front (Attach, AttachAccessor) or
// created on demand at the first open naming them, when a factory is
// installed (SetFactory). The zero value is unusable; construct with
// NewNamespaces.
//
// A namespace is backed either by a block store (Attach) — clients speak
// download/upload/batch frames against raw addresses — or by an Accessor
// (AttachAccessor) — clients speak only logical record accesses and the
// physical store stays hidden behind the proxy. The two are mutually
// exclusive per name.
type Namespaces struct {
	mu      sync.Mutex
	m       map[string]tenant
	factory func(name string, slots, blockSize int) (Server, error)
	created int
	max     int
	epoch   uint64

	// Admission control (see admission.go): one limiter per namespace,
	// created lazily with the registry-wide options.
	admit    AdmitOptions
	limiters map[string]*limiter
}

// tenant is one hosted namespace: exactly one of the two backends is set.
// name is the key it is registered under (the serve loop uses it to find
// the namespace's admission limiter after an open).
type tenant struct {
	name  string
	batch BatchServer // block-backed namespace
	acc   Accessor    // proxy-backed namespace
}

// none reports an unregistered (zero) tenant.
func (t tenant) none() bool { return t.batch == nil && t.acc == nil }

// NewNamespaces returns an empty registry.
func NewNamespaces() *Namespaces {
	return &Namespaces{m: make(map[string]tenant), limiters: make(map[string]*limiter)}
}

// SetEpoch sets the recovery epoch the serve loop reports in every info
// and open handshake. A durable daemon passes the value BumpEpoch returned
// at startup; the zero default means "no durability claim", which is what
// pre-epoch clients and in-memory daemons see.
func (ns *Namespaces) SetEpoch(e uint64) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.epoch = e
}

// Epoch returns the registry's recovery epoch.
func (ns *Namespaces) Epoch() uint64 {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.epoch
}

// Attach registers s under name, replacing any previous registration.
// Attached namespaces do not count against the factory's creation cap.
func (ns *Namespaces) Attach(name string, s Server) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.m[name] = tenant{name: name, batch: AsBatch(s)}
}

// AttachAccessor registers a proxy-backed namespace under name, replacing
// any previous registration. Connections that open it can issue only
// logical access frames; block frames are rejected, keeping the physical
// store invisible to clients.
func (ns *Namespaces) AttachAccessor(name string, a Accessor) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.m[name] = tenant{name: name, acc: a}
}

// SetFactory installs the on-demand creation path: an open naming an
// unregistered namespace calls factory with the client's requested shape
// (zeros mean "factory's choice"). At most max namespaces are created this
// way; further misses are rejected, bounding how many stores a hostile
// client can make the daemon build. The requested shape itself is
// client-controlled input: the factory must bound it (see the -maxbytes
// budget in cmd/blockstored) before allocating.
func (ns *Namespaces) SetFactory(max int, factory func(name string, slots, blockSize int) (Server, error)) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.factory = factory
	ns.max = max
}

// Get returns the block store registered under name, if any. Proxy-backed
// namespaces report false: they have no client-visible block store.
func (ns *Namespaces) Get(name string) (BatchServer, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	t := ns.m[name]
	return t.batch, t.batch != nil
}

// GetAccessor returns the accessor registered under name, if any.
func (ns *Namespaces) GetAccessor(name string) (Accessor, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	t := ns.m[name]
	return t.acc, t.acc != nil
}

// lookup returns the tenant registered under name (zero tenant if none).
func (ns *Namespaces) lookup(name string) tenant {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.m[name]
}

// Names returns the registered namespace names, in no particular order.
func (ns *Namespaces) Names() []string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	names := make([]string, 0, len(ns.m))
	for name := range ns.m {
		names = append(names, name)
	}
	return names
}

// Open resolves name for a client that requested the given shape (zeros
// mean "no preference"), returning the namespace's block store. Opening a
// proxy-backed namespace through this method is an error — use openTenant
// (the serve loop's path), which hands back the accessor. See openTenant
// for the creation semantics.
func (ns *Namespaces) Open(name string, slots, blockSize int) (BatchServer, error) {
	t, err := ns.openTenant(name, slots, blockSize)
	if err != nil {
		return nil, err
	}
	if t.batch == nil {
		return nil, fmt.Errorf("%w: namespace %q is proxy-backed, not a block store", ErrNamespace, name)
	}
	return t.batch, nil
}

// openTenant resolves name for a client that requested the given shape
// (zeros mean "no preference"). An existing namespace is returned as long
// as the requested shape does not contradict its actual one — for a
// proxy-backed namespace the shape compared against is the logical one. A
// missing namespace is created through the factory when one is installed
// and the creation cap has room. The factory runs outside the registry
// lock — it may allocate gigabytes or create files — and concurrent
// first-opens of the same name are collapsed to one winner.
func (ns *Namespaces) openTenant(name string, slots, blockSize int) (tenant, error) {
	ns.mu.Lock()
	if t, ok := ns.m[name]; ok {
		ns.mu.Unlock()
		if err := t.checkShape(name, slots, blockSize); err != nil {
			return tenant{}, err
		}
		return t, nil
	}
	factory := ns.factory
	if factory == nil {
		ns.mu.Unlock()
		return tenant{}, fmt.Errorf("%w: unknown namespace %q", ErrNamespace, name)
	}
	if ns.created >= ns.max {
		ns.mu.Unlock()
		return tenant{}, fmt.Errorf("%w: namespace cap %d reached, cannot create %q", ErrNamespace, ns.max, name)
	}
	// Reserve the slot before building the backend so a burst of opens
	// cannot overshoot the cap, then release the lock for the (possibly
	// slow) factory call.
	ns.created++
	ns.mu.Unlock()

	backend, err := factory(name, slots, blockSize)
	if err != nil {
		ns.mu.Lock()
		ns.created--
		ns.mu.Unlock()
		return tenant{}, fmt.Errorf("%w: creating %q: %v", ErrNamespace, name, err)
	}

	ns.mu.Lock()
	if t, ok := ns.m[name]; ok {
		// A concurrent open of the same name won the race; keep its
		// backend, refund our reservation, and discard ours (closing it
		// if the factory built something closable, e.g. file shards).
		// The winner's shape still has to satisfy *this* caller's
		// request, exactly as the existing-namespace path checks.
		ns.created--
		ns.mu.Unlock()
		if c, ok := backend.(io.Closer); ok {
			c.Close() //nolint:errcheck
		}
		if err := t.checkShape(name, slots, blockSize); err != nil {
			return tenant{}, err
		}
		return t, nil
	}
	defer ns.mu.Unlock()
	t := tenant{name: name, batch: AsBatch(backend)}
	ns.m[name] = t
	return t, nil
}

// shape returns the tenant's client-visible shape: the store's physical
// one for block namespaces, the scheme's logical one for proxy-backed
// namespaces.
func (t tenant) shape() (slots, blockSize int) {
	if t.acc != nil {
		return t.acc.Records(), t.acc.RecordSize()
	}
	return t.batch.Size(), t.batch.BlockSize()
}

// checkShape verifies a client's requested shape (zeros = no preference)
// against the tenant's actual one. A nil error means the tenant satisfies
// the request.
func (t tenant) checkShape(name string, slots, blockSize int) error {
	haveSlots, haveBS := t.shape()
	if slots != 0 && slots != haveSlots {
		return fmt.Errorf("%w: %q holds %d slots, client wants %d", ErrNamespace, name, haveSlots, slots)
	}
	if blockSize != 0 && blockSize != haveBS {
		return fmt.Errorf("%w: %q has %d B blocks, client wants %d", ErrNamespace, name, haveBS, blockSize)
	}
	return nil
}

// ServeNamespaces accepts connections on ln and serves the wire protocol
// against the registry until ln is closed. A connection starts in
// DefaultNamespace (requests fail until an open succeeds if no default is
// registered) and may switch namespaces with open requests at any point.
// Returns the listener's accept error, net.ErrClosed after a clean
// shutdown.
func ServeNamespaces(ln net.Listener, ns *Namespaces) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, ns)
	}
}
