package store

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// DefaultNamespace is the namespace a connection speaks to before (or
// without ever) sending an open request — the implicit tenant of every
// pre-namespace client.
const DefaultNamespace = ""

// ErrNamespace reports a namespace open that the registry refused.
var ErrNamespace = errors.New("store: namespace rejected")

// Namespaces is a concurrent registry of named block stores hosted by one
// daemon. Each namespace is an independent Server — its own address space,
// its own locks — so tenants sharing a daemon contend only on the registry
// map (one mutex acquisition per open, none per block operation).
//
// Namespaces are either attached up front (Attach) or created on demand at
// the first open naming them, when a factory is installed (SetFactory).
// The zero value is unusable; construct with NewNamespaces.
type Namespaces struct {
	mu      sync.Mutex
	m       map[string]BatchServer
	factory func(name string, slots, blockSize int) (Server, error)
	created int
	max     int
}

// NewNamespaces returns an empty registry.
func NewNamespaces() *Namespaces {
	return &Namespaces{m: make(map[string]BatchServer)}
}

// Attach registers s under name, replacing any previous registration.
// Attached namespaces do not count against the factory's creation cap.
func (ns *Namespaces) Attach(name string, s Server) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.m[name] = AsBatch(s)
}

// SetFactory installs the on-demand creation path: an open naming an
// unregistered namespace calls factory with the client's requested shape
// (zeros mean "factory's choice"). At most max namespaces are created this
// way; further misses are rejected, bounding how many stores a hostile
// client can make the daemon build. The requested shape itself is
// client-controlled input: the factory must bound it (see the -maxbytes
// budget in cmd/blockstored) before allocating.
func (ns *Namespaces) SetFactory(max int, factory func(name string, slots, blockSize int) (Server, error)) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.factory = factory
	ns.max = max
}

// Get returns the namespace registered under name, if any.
func (ns *Namespaces) Get(name string) (BatchServer, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	s, ok := ns.m[name]
	return s, ok
}

// Names returns the registered namespace names, in no particular order.
func (ns *Namespaces) Names() []string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	names := make([]string, 0, len(ns.m))
	for name := range ns.m {
		names = append(names, name)
	}
	return names
}

// Open resolves name for a client that requested the given shape (zeros
// mean "no preference"). An existing namespace is returned as long as the
// requested shape does not contradict its actual one; a missing namespace
// is created through the factory when one is installed and the creation
// cap has room. The factory runs outside the registry lock — it may
// allocate gigabytes or create files — and concurrent first-opens of the
// same name are collapsed to one winner.
func (ns *Namespaces) Open(name string, slots, blockSize int) (BatchServer, error) {
	ns.mu.Lock()
	if s, ok := ns.m[name]; ok {
		ns.mu.Unlock()
		if err := checkShape(name, s, slots, blockSize); err != nil {
			return nil, err
		}
		return s, nil
	}
	factory := ns.factory
	if factory == nil {
		ns.mu.Unlock()
		return nil, fmt.Errorf("%w: unknown namespace %q", ErrNamespace, name)
	}
	if ns.created >= ns.max {
		ns.mu.Unlock()
		return nil, fmt.Errorf("%w: namespace cap %d reached, cannot create %q", ErrNamespace, ns.max, name)
	}
	// Reserve the slot before building the backend so a burst of opens
	// cannot overshoot the cap, then release the lock for the (possibly
	// slow) factory call.
	ns.created++
	ns.mu.Unlock()

	backend, err := factory(name, slots, blockSize)
	if err != nil {
		ns.mu.Lock()
		ns.created--
		ns.mu.Unlock()
		return nil, fmt.Errorf("%w: creating %q: %v", ErrNamespace, name, err)
	}

	ns.mu.Lock()
	if s, ok := ns.m[name]; ok {
		// A concurrent open of the same name won the race; keep its
		// backend, refund our reservation, and discard ours (closing it
		// if the factory built something closable, e.g. file shards).
		// The winner's shape still has to satisfy *this* caller's
		// request, exactly as the existing-namespace path checks.
		ns.created--
		ns.mu.Unlock()
		if c, ok := backend.(io.Closer); ok {
			c.Close() //nolint:errcheck
		}
		if err := checkShape(name, s, slots, blockSize); err != nil {
			return nil, err
		}
		return s, nil
	}
	defer ns.mu.Unlock()
	s := AsBatch(backend)
	ns.m[name] = s
	return s, nil
}

// checkShape verifies a client's requested shape (zeros = no preference)
// against a namespace's actual one. A nil error means s satisfies the
// request.
func checkShape(name string, s Server, slots, blockSize int) error {
	if slots != 0 && slots != s.Size() {
		return fmt.Errorf("%w: %q holds %d slots, client wants %d", ErrNamespace, name, s.Size(), slots)
	}
	if blockSize != 0 && blockSize != s.BlockSize() {
		return fmt.Errorf("%w: %q has %d B blocks, client wants %d", ErrNamespace, name, s.BlockSize(), blockSize)
	}
	return nil
}

// ServeNamespaces accepts connections on ln and serves the wire protocol
// against the registry until ln is closed. A connection starts in
// DefaultNamespace (requests fail until an open succeeds if no default is
// registered) and may switch namespaces with open requests at any point.
// Returns the listener's accept error, net.ErrClosed after a clean
// shutdown.
func ServeNamespaces(ln net.Listener, ns *Namespaces) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, ns)
	}
}
