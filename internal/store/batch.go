package store

import (
	"sync"

	"dpstore/internal/block"
)

// WriteOp is one element of a WriteBatch: store Block at Addr. Ops apply in
// order, so a batch containing the same address twice leaves the later
// block behind — exactly as the equivalent Upload sequence would.
type WriteOp struct {
	Addr  int
	Block block.Block
}

// BatchServer extends Server with multi-block operations. A batch is
// transcript-equivalent to issuing its operations one by one — the same
// multiset of (op, address) pairs reaches the server, so the paper's DP and
// obliviousness arguments are unaffected — but it crosses the client–server
// boundary once instead of N times. Over the wire (Remote) that collapses N
// round trips into one; locally it amortizes lock acquisitions (Mem) and
// coalesces disk I/O (File).
//
// Addresses may repeat within a batch. ReadBatch returns independent copies
// in request order. On error, WriteBatch may have applied a prefix of its
// ops (mirroring the per-op equivalent, which also stops at the failure).
type BatchServer interface {
	Server
	// ReadBatch returns copies of the blocks at addrs, in order.
	ReadBatch(addrs []int) ([]block.Block, error)
	// WriteBatch applies ops in order.
	WriteBatch(ops []WriteOp) error
}

// AsBatch returns s as a BatchServer: s itself when it implements the
// interface natively, otherwise a loop adapter. The adapter issues the
// batch's operations one by one in order, so metering and transcript
// recording wrappers that only implement Server observe the exact
// per-operation view the paper's model is stated in.
func AsBatch(s Server) BatchServer {
	if b, ok := s.(BatchServer); ok {
		return b
	}
	return &loopBatch{s}
}

// PerBlock hides any native batch support of s, forcing AsBatch back onto
// the one-op-per-call path. Benchmarks and tests use it to compare batched
// and per-block execution of the same construction against the same server.
func PerBlock(s Server) Server { return perBlockOnly{s} }

type perBlockOnly struct{ Server }

type loopBatch struct{ Server }

func (l *loopBatch) ReadBatch(addrs []int) ([]block.Block, error) {
	out := make([]block.Block, len(addrs))
	for i, a := range addrs {
		b, err := l.Download(a)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

func (l *loopBatch) WriteBatch(ops []WriteOp) error {
	for _, op := range ops {
		if err := l.Upload(op.Addr, op.Block); err != nil {
			return err
		}
	}
	return nil
}

// ScanWindow bounds how many blocks the window helpers below materialize
// client-side at once: a full scan or bulk setup issues ⌈n/ScanWindow⌉
// batch calls and folds each window before the next, keeping client memory
// O(window) at any database size while preserving the batched-I/O win.
const ScanWindow = 4096

// ReadWindows fetches addrs through s in ScanWindow-bounded batches,
// calling fn(start, blocks) per window with start the window's offset into
// addrs. Used by constructions whose per-query address set can be large
// (linear scans, low-ε DP-IR decoy sets).
func ReadWindows(s BatchServer, addrs []int, fn func(start int, blocks []block.Block) error) error {
	for start := 0; start < len(addrs); start += ScanWindow {
		end := start + ScanWindow
		if end > len(addrs) {
			end = len(addrs)
		}
		blocks, err := s.ReadBatch(addrs[start:end])
		if err != nil {
			return err
		}
		if err := fn(start, blocks); err != nil {
			return err
		}
	}
	return nil
}

// ScanRange runs the full scan 0..n-1 through ReadWindows-style windows
// without ever materializing the O(n) address set; fn receives each
// window's base address and blocks.
func ScanRange(s BatchServer, n int, fn func(base int, blocks []block.Block) error) error {
	buf := make([]int, 0, ScanWindow)
	for base := 0; base < n; base += ScanWindow {
		end := base + ScanWindow
		if end > n {
			end = n
		}
		buf = buf[:0]
		for a := base; a < end; a++ {
			buf = append(buf, a)
		}
		blocks, err := s.ReadBatch(buf)
		if err != nil {
			return err
		}
		if err := fn(base, blocks); err != nil {
			return err
		}
	}
	return nil
}

// Concurrently runs f(0), …, f(n−1) in parallel goroutines, waits for all
// of them, and returns the lowest-index error. Multi-server constructions
// use it to fan one request out across independent, non-colluding servers:
// latency becomes one round trip to the slowest server instead of the sum
// of n sequential trips. Callers must flip any client coins before calling
// so the coin-draw order stays deterministic.
func Concurrently(n int, f func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BatchWriter accumulates WriteOps and flushes a WriteBatch every
// ScanWindow ops — the bounded-memory bulk-upload path the constructions'
// setup routines share. Callers must Flush at the end.
type BatchWriter struct {
	s   BatchServer
	ops []WriteOp
}

// NewBatchWriter returns a writer buffering onto s.
func NewBatchWriter(s BatchServer) *BatchWriter {
	return &BatchWriter{s: s, ops: make([]WriteOp, 0, ScanWindow)}
}

// Add buffers one op, flushing if the window is full.
func (w *BatchWriter) Add(addr int, b block.Block) error {
	w.ops = append(w.ops, WriteOp{Addr: addr, Block: b})
	if len(w.ops) == ScanWindow {
		return w.Flush()
	}
	return nil
}

// Flush writes the buffered ops, if any.
func (w *BatchWriter) Flush() error {
	if len(w.ops) == 0 {
		return nil
	}
	err := w.s.WriteBatch(w.ops)
	w.ops = w.ops[:0]
	return err
}
