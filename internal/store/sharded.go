package store

import (
	"fmt"
	"time"

	"dpstore/internal/block"
)

// Sharded stripes a logical address space over K independently locked
// sub-stores, so concurrent clients stop serializing on one mutex: with K
// shards, up to K operations proceed in parallel, one per shard lock (and,
// for disk-backed shards, one per spindle/file handle).
//
// Striping is round-robin: logical address a lives in shard a mod K at
// local slot a div K. Round-robin has two properties the constructions
// need. First, any address multiset — uniform decoy sets, tree paths,
// sequential scans — spreads across shards near-evenly, so no access
// pattern concentrates on one lock. Second, a contiguous logical range
// maps to a contiguous local range within every shard, so the File
// backend's run-coalescing survives sharding: a ScanRange window becomes K
// sequential reads executing concurrently instead of one.
//
// A sharded batch is transcript-equivalent to the unsharded one: the same
// (op, address) multiset reaches storage, and a repeated address always
// routes to the same shard in submission order, preserving read-your-write
// and last-write-wins semantics within a batch. Only the physical layout —
// invisible to the paper's adversary, who observes logical addresses at
// the wire — changes.
type Sharded struct {
	shards    []BatchServer
	n         int
	blockSize int
	// parallelMin is the total batch size at which a batch is partitioned
	// and its sub-batches fanned out on goroutines. Below it the batch
	// runs per-op on the caller's goroutine — each op holds only its own
	// shard's lock for one copy, so concurrent clients still scale, but
	// neither partition bookkeeping nor goroutine dispatch (~1 µs/shard)
	// is paid on work that costs less than the dispatch. Zero means
	// always partition and fan out.
	parallelMin int
}

// memParallelMin is the default parallelism threshold for in-memory
// shards: below ~128 addresses the batch's memcpy work is cheaper than
// partition + dispatch, so small per-query batches (DP-RAM's pair, Path
// ORAM's path) stay on the caller's goroutine while scan windows fan out.
const memParallelMin = 128

// ShardSlots returns the number of slots shard i of k holds when a logical
// address space of n slots is striped round-robin — ⌈(n−i)/k⌉. Use it to
// size the sub-stores handed to NewSharded (for example, K files).
func ShardSlots(n, k, i int) int {
	return (n - i + k - 1) / k
}

// NewSharded stripes a logical address space over the given sub-stores.
// All shards must share one block size, and shard i must hold exactly
// ShardSlots(n, k, i) slots for the logical size n = Σ sizes; the
// round-robin layout is a bijection only for that shape.
//
// Sub-batches of every size execute concurrently, the right default for
// I/O-bound shards (files, remotes) whose per-operation latency dwarfs
// goroutine dispatch; for in-memory shards use NewShardedMem or raise
// SetParallelMin.
func NewSharded(shards []Server) (*Sharded, error) {
	k := len(shards)
	if k == 0 {
		return nil, fmt.Errorf("store: sharded server needs at least one shard")
	}
	n := 0
	blockSize := shards[0].BlockSize()
	for i, sh := range shards {
		if sh.BlockSize() != blockSize {
			return nil, fmt.Errorf("store: shard %d block size %d, want %d", i, sh.BlockSize(), blockSize)
		}
		n += sh.Size()
	}
	s := &Sharded{shards: make([]BatchServer, k), n: n, blockSize: blockSize}
	for i, sh := range shards {
		if want := ShardSlots(n, k, i); sh.Size() != want {
			return nil, fmt.Errorf("store: shard %d holds %d slots, want %d for %d striped over %d", i, sh.Size(), want, n, k)
		}
		s.shards[i] = AsBatch(sh)
	}
	return s, nil
}

// NewShardedMem creates an in-memory sharded server: n zeroed slots of
// blockSize bytes striped over k independently locked Mem stores.
func NewShardedMem(n, blockSize, k int) (*Sharded, error) {
	if k <= 0 {
		return nil, fmt.Errorf("store: shard count %d must be positive", k)
	}
	if n < k {
		return nil, fmt.Errorf("store: %d slots cannot stripe over %d shards", n, k)
	}
	shards := make([]Server, k)
	for i := range shards {
		m, err := NewMem(ShardSlots(n, k, i), blockSize)
		if err != nil {
			return nil, err
		}
		shards[i] = m
	}
	s, err := NewSharded(shards)
	if err != nil {
		return nil, err
	}
	s.parallelMin = memParallelMin
	return s, nil
}

// SetParallelMin sets the total batch size at which sub-batches fan out
// onto goroutines instead of executing sequentially (0 = always fan out).
// Tune it to the shard medium: 0 for shards that block on I/O, higher for
// pure in-memory shards where tiny sub-batches cost less than a dispatch.
// Not safe to call concurrently with operations.
func (s *Sharded) SetParallelMin(minAddrs int) { s.parallelMin = minAddrs }

// Shards returns the stripe width K.
func (s *Sharded) Shards() int { return len(s.shards) }

// SyncLatency reports the slowest shard's observed WAL fsync latency
// (zero when no shard is durable) — the whole stripe commits no faster
// than its slowest member.
func (s *Sharded) SyncLatency() time.Duration {
	var worst time.Duration
	for _, sh := range s.shards {
		if r, ok := sh.(syncLatencyReporter); ok {
			if l := r.SyncLatency(); l > worst {
				worst = l
			}
		}
	}
	return worst
}

// Size implements Server.
func (s *Sharded) Size() int { return s.n }

// BlockSize implements Server.
func (s *Sharded) BlockSize() int { return s.blockSize }

func (s *Sharded) check(addr int) error {
	if addr < 0 || addr >= s.n {
		return fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, s.n)
	}
	return nil
}

// Download implements Server, touching only the owning shard's lock.
func (s *Sharded) Download(addr int) (block.Block, error) {
	if err := s.check(addr); err != nil {
		return nil, err
	}
	return s.shards[addr%len(s.shards)].Download(addr / len(s.shards))
}

// Upload implements Server, touching only the owning shard's lock.
func (s *Sharded) Upload(addr int, b block.Block) error {
	if err := s.check(addr); err != nil {
		return err
	}
	return s.shards[addr%len(s.shards)].Upload(addr/len(s.shards), b)
}

// partition splits a logical address list into per-shard local address
// lists plus, for each, the positions those addresses came from, so results
// can be scattered back into request order.
func (s *Sharded) partition(addrs []int) (local [][]int, pos [][]int, err error) {
	k := len(s.shards)
	counts := make([]int, k)
	for _, a := range addrs {
		if err := s.check(a); err != nil {
			return nil, nil, err
		}
		counts[a%k]++
	}
	local = make([][]int, k)
	pos = make([][]int, k)
	for i, c := range counts {
		if c > 0 {
			local[i] = make([]int, 0, c)
			pos[i] = make([]int, 0, c)
		}
	}
	for i, a := range addrs {
		local[a%k] = append(local[a%k], a/k)
		pos[a%k] = append(pos[a%k], i)
	}
	return local, pos, nil
}

// busyShards lists the shards a partition actually touches.
func busyShards[T any](local [][]T) []int {
	busy := make([]int, 0, len(local))
	for i, l := range local {
		if len(l) > 0 {
			busy = append(busy, i)
		}
	}
	return busy
}

// ReadBatch implements BatchServer: the batch is partitioned by shard and
// the per-shard sub-batches execute concurrently, one goroutine per busy
// shard — or sequentially for batches under the parallelism threshold
// (see SetParallelMin), which still touches each shard's lock only
// briefly. Results come back in request order.
func (s *Sharded) ReadBatch(addrs []int) ([]block.Block, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	k := len(s.shards)
	if len(addrs) < s.parallelMin {
		// Small batch: the partition bookkeeping costs more than it
		// saves, so read per-op in submission order — each access grabs
		// only its own shard's lock for the one copy.
		out := make([]block.Block, len(addrs))
		for i, a := range addrs {
			if err := s.check(a); err != nil {
				return nil, err
			}
			b, err := s.shards[a%k].Download(a / k)
			if err != nil {
				return nil, err
			}
			out[i] = b
		}
		return out, nil
	}
	local, pos, err := s.partition(addrs)
	if err != nil {
		return nil, err
	}
	out := make([]block.Block, len(addrs))
	scatter := func(shard int) error {
		blocks, err := s.shards[shard].ReadBatch(local[shard])
		if err != nil {
			return err
		}
		for j, p := range pos[shard] {
			out[p] = blocks[j]
		}
		return nil
	}
	busy := busyShards(local)
	if len(busy) == 1 {
		if err := scatter(busy[0]); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := Concurrently(len(busy), func(i int) error { return scatter(busy[i]) }); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteBatch implements BatchServer. Every op is validated (address range
// and block size) before any shard is touched, so a rejected batch leaves
// the store unmodified; after validation the per-shard sub-batches execute
// concurrently. A repeated address keeps its submission order — it always
// lands in the same shard's sub-batch, which applies in order — so
// last-write-wins matches the sequential semantics.
func (s *Sharded) WriteBatch(ops []WriteOp) error {
	if len(ops) == 0 {
		return nil
	}
	k := len(s.shards)
	if len(ops) < s.parallelMin {
		// Small batch: validate everything first (all-or-nothing on
		// rejection, like the partitioned path), then apply per-op.
		for _, op := range ops {
			if err := s.check(op.Addr); err != nil {
				return err
			}
			if len(op.Block) != s.blockSize {
				return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(op.Block), s.blockSize)
			}
		}
		for _, op := range ops {
			if err := s.shards[op.Addr%k].Upload(op.Addr/k, op.Block); err != nil {
				return err
			}
		}
		return nil
	}
	counts := make([]int, k)
	for _, op := range ops {
		if err := s.check(op.Addr); err != nil {
			return err
		}
		if len(op.Block) != s.blockSize {
			return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(op.Block), s.blockSize)
		}
		counts[op.Addr%k]++
	}
	local := make([][]WriteOp, k)
	for i, c := range counts {
		if c > 0 {
			local[i] = make([]WriteOp, 0, c)
		}
	}
	for _, op := range ops {
		sh := op.Addr % k
		local[sh] = append(local[sh], WriteOp{Addr: op.Addr / k, Block: op.Block})
	}
	busy := busyShards(local)
	if len(busy) == 1 {
		return s.shards[busy[0]].WriteBatch(local[busy[0]])
	}
	return Concurrently(len(busy), func(i int) error {
		return s.shards[busy[i]].WriteBatch(local[busy[i]])
	})
}
