package store

import (
	"net"
	"testing"
)

// TestHandshakeReportsEpoch: a registry with an epoch set reports it in
// both the info and the open handshake, Remote exposes it, and a Pool over
// the same daemon carries it too.
func TestHandshakeReportsEpoch(t *testing.T) {
	m, err := NewMem(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	ns := NewNamespaces()
	ns.Attach(DefaultNamespace, m)
	ns.Attach("tenant", m)
	ns.SetEpoch(42)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ServeNamespaces(ln, ns) //nolint:errcheck
	addr := ln.Addr().String()

	rs, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.Epoch() != 42 {
		t.Fatalf("info handshake epoch = %d, want 42", rs.Epoch())
	}
	nrs, err := DialNamespace(addr, "tenant", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer nrs.Close()
	if nrs.Epoch() != 42 {
		t.Fatalf("open handshake epoch = %d, want 42", nrs.Epoch())
	}
	pool, err := DialPool(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Epoch() != 42 {
		t.Fatalf("pool epoch = %d, want 42", pool.Epoch())
	}
}

// TestHandshakeDefaultEpochZero: a registry without SetEpoch reports 0 —
// the "no durability claim" value pre-epoch clients always saw.
func TestHandshakeDefaultEpochZero(t *testing.T) {
	m, err := NewMem(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, m) //nolint:errcheck
	rs, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0", rs.Epoch())
	}
}
