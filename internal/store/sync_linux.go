//go:build linux

package store

import (
	"os"
	"syscall"
)

// datasync flushes file data (and the size metadata needed to reach it)
// without forcing unrelated metadata out — fdatasync(2). On the WAL hot
// path this is measurably cheaper than fsync on ext4 while giving the same
// guarantee the commit protocol needs: the appended record bytes are on
// stable storage before the batch is acknowledged.
func datasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
