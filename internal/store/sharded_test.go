package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dpstore/internal/block"
)

func TestShardSlotsPartition(t *testing.T) {
	for _, n := range []int{1, 7, 16, 1000} {
		for k := 1; k <= n && k <= 20; k++ {
			sum := 0
			for i := 0; i < k; i++ {
				sum += ShardSlots(n, k, i)
			}
			if sum != n {
				t.Fatalf("ShardSlots(%d, %d, ·) sums to %d, want %d", n, k, sum, n)
			}
		}
	}
}

func TestShardedMatchesMem(t *testing.T) {
	const n, bs = 103, 16 // odd size: shards differ in length
	for _, k := range []int{1, 2, 4, 7, 16} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ref, err := NewMem(n, bs)
			if err != nil {
				t.Fatal(err)
			}
			sh, err := NewShardedMem(n, bs, k)
			if err != nil {
				t.Fatal(err)
			}
			if sh.Size() != n || sh.BlockSize() != bs || sh.Shards() != k {
				t.Fatalf("shape = (%d, %d, %d), want (%d, %d, %d)",
					sh.Size(), sh.BlockSize(), sh.Shards(), n, bs, k)
			}
			rng := rand.New(rand.NewSource(int64(k)))
			// Interleave per-op and batched traffic on both servers and
			// demand bit-identical behavior throughout.
			for iter := 0; iter < 200; iter++ {
				switch rng.Intn(4) {
				case 0:
					a := rng.Intn(n)
					b := block.Pattern(uint64(rng.Int63()), bs)
					if err := ref.Upload(a, b); err != nil {
						t.Fatal(err)
					}
					if err := sh.Upload(a, b); err != nil {
						t.Fatal(err)
					}
				case 1:
					a := rng.Intn(n)
					want, err := ref.Download(a)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sh.Download(a)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Fatalf("Download(%d) mismatch", a)
					}
				case 2:
					ops := make([]WriteOp, rng.Intn(32))
					for i := range ops {
						// Duplicates included: last-write-wins must hold.
						ops[i] = WriteOp{Addr: rng.Intn(n), Block: block.Pattern(uint64(rng.Int63()), bs)}
					}
					if err := ref.WriteBatch(ops); err != nil {
						t.Fatal(err)
					}
					if err := sh.WriteBatch(ops); err != nil {
						t.Fatal(err)
					}
				default:
					addrs := make([]int, rng.Intn(40))
					for i := range addrs {
						addrs[i] = rng.Intn(n)
					}
					want, err := ref.ReadBatch(addrs)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sh.ReadBatch(addrs)
					if err != nil {
						t.Fatal(err)
					}
					for i := range addrs {
						if !got[i].Equal(want[i]) {
							t.Fatalf("ReadBatch pos %d (addr %d) mismatch", i, addrs[i])
						}
					}
				}
			}
			// Full sweep: every logical slot identical.
			for a := 0; a < n; a++ {
				want, _ := ref.Download(a)
				got, err := sh.Download(a)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("final sweep: slot %d mismatch", a)
				}
			}
		})
	}
}

func TestShardedRejectsBadShapes(t *testing.T) {
	if _, err := NewShardedMem(8, 16, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewShardedMem(3, 16, 4); err == nil {
		t.Error("n<k accepted")
	}
	if _, err := NewSharded(nil); err == nil {
		t.Error("no shards accepted")
	}
	a, _ := NewMem(4, 16)
	b, _ := NewMem(4, 32)
	if _, err := NewSharded([]Server{a, b}); err == nil {
		t.Error("mismatched block sizes accepted")
	}
	// 4+4 slots striped over 2 shards is fine; 5+3 is not a round-robin
	// layout.
	c, _ := NewMem(5, 16)
	d, _ := NewMem(3, 16)
	if _, err := NewSharded([]Server{c, d}); err == nil {
		t.Error("non-striped shard sizes accepted")
	}
}

func TestShardedErrorPaths(t *testing.T) {
	s, err := NewShardedMem(10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Download(10); !errors.Is(err, ErrAddr) {
		t.Errorf("Download(10) err = %v, want ErrAddr", err)
	}
	if err := s.Upload(-1, block.New(8)); !errors.Is(err, ErrAddr) {
		t.Errorf("Upload(-1) err = %v, want ErrAddr", err)
	}
	if _, err := s.ReadBatch([]int{0, 3, 11}); !errors.Is(err, ErrAddr) {
		t.Errorf("ReadBatch err = %v, want ErrAddr", err)
	}
	if err := s.WriteBatch([]WriteOp{{Addr: 1, Block: block.New(4)}}); !errors.Is(err, block.ErrSize) {
		t.Errorf("WriteBatch short block err = %v, want ErrSize", err)
	}
	// A rejected batch must leave the store untouched (validated before any
	// shard is written).
	if err := s.Upload(2, block.Pattern(7, 8)); err != nil {
		t.Fatal(err)
	}
	err = s.WriteBatch([]WriteOp{
		{Addr: 2, Block: block.New(8)},
		{Addr: 99, Block: block.New(8)},
	})
	if !errors.Is(err, ErrAddr) {
		t.Fatalf("mixed batch err = %v, want ErrAddr", err)
	}
	got, err := s.Download(2)
	if err != nil {
		t.Fatal(err)
	}
	if !block.CheckPattern(got, 7) {
		t.Error("rejected WriteBatch modified the store")
	}
	// Empty batches are no-ops.
	if out, err := s.ReadBatch(nil); err != nil || out != nil {
		t.Errorf("empty ReadBatch = (%v, %v), want (nil, nil)", out, err)
	}
	if err := s.WriteBatch(nil); err != nil {
		t.Errorf("empty WriteBatch err = %v", err)
	}
}

// TestShardedConcurrentClients hammers one sharded store from many
// goroutines with disjoint per-client address sets and checks bit-exact
// read-your-writes under -race.
func TestShardedConcurrentClients(t *testing.T) {
	const n, bs, clients, iters = 257, 16, 8, 60
	s, err := NewShardedMem(n, bs, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			mine := make([]int, 0, n/clients+1)
			for a := c; a < n; a += clients {
				mine = append(mine, a)
			}
			last := make(map[int]uint64)
			for i := 0; i < iters; i++ {
				ops := make([]WriteOp, 0, len(mine))
				for _, a := range mine {
					id := uint64(c)<<32 | uint64(i)<<16 | uint64(a)
					ops = append(ops, WriteOp{Addr: a, Block: block.Pattern(id, bs)})
					last[a] = id
				}
				if err := s.WriteBatch(ops); err != nil {
					errs[c] = err
					return
				}
				probe := mine[rng.Intn(len(mine))]
				got, err := s.Download(probe)
				if err != nil {
					errs[c] = err
					return
				}
				if !block.CheckPattern(got, last[probe]) {
					errs[c] = fmt.Errorf("client %d: slot %d lost its write", c, probe)
					return
				}
				blocks, err := s.ReadBatch(mine)
				if err != nil {
					errs[c] = err
					return
				}
				for j, a := range mine {
					if !block.CheckPattern(blocks[j], last[a]) {
						errs[c] = fmt.Errorf("client %d: batch read of slot %d stale", c, a)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
