package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpstore/internal/block"
)

// gated wraps a BatchServer with a switchable failure mode, so tests
// control exactly when a replica is "dead" and when it comes back —
// unlike Faulty, whose schedule is fixed at construction.
type gated struct {
	inner  BatchServer
	broken atomic.Bool
	reads  atomic.Int64
	writes atomic.Int64
}

var errGated = errors.New("store: replica gate closed")

func newGated(inner Server) *gated { return &gated{inner: AsBatch(inner)} }

func (g *gated) Download(addr int) (block.Block, error) {
	if g.broken.Load() {
		return nil, errGated
	}
	g.reads.Add(1)
	return g.inner.Download(addr)
}

func (g *gated) Upload(addr int, b block.Block) error {
	if g.broken.Load() {
		return errGated
	}
	g.writes.Add(1)
	return g.inner.Upload(addr, b)
}

func (g *gated) ReadBatch(addrs []int) ([]block.Block, error) {
	if g.broken.Load() {
		return nil, errGated
	}
	g.reads.Add(int64(len(addrs)))
	return g.inner.ReadBatch(addrs)
}

func (g *gated) WriteBatch(ops []WriteOp) error {
	if g.broken.Load() {
		return errGated
	}
	g.writes.Add(int64(len(ops)))
	return g.inner.WriteBatch(ops)
}

func (g *gated) Size() int      { return g.inner.Size() }
func (g *gated) BlockSize() int { return g.inner.BlockSize() }

// newTestCluster builds a Replicated over n gated Mems with a fast probe
// cadence, returning the cluster, the gates, and the raw Mems.
func newTestCluster(t *testing.T, replicas, slots, blockSize int, opts ReplicatedOptions) (*Replicated, []*gated, []*Mem) {
	t.Helper()
	gates := make([]*gated, replicas)
	mems := make([]*Mem, replicas)
	specs := make([]ReplicaSpec, replicas)
	for i := range specs {
		m, err := NewMem(slots, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
		gates[i] = newGated(m)
		specs[i] = ReplicaSpec{Name: fmt.Sprintf("r%d", i), Backend: gates[i]}
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 2 * time.Millisecond
	}
	if opts.MaxProbeInterval == 0 {
		opts.MaxProbeInterval = 20 * time.Millisecond
	}
	r, err := NewReplicated(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() }) //nolint:errcheck
	return r, gates, mems
}

// waitState polls until the named replica reaches the wanted state.
func waitState(t *testing.T, r *Replicated, idx int, want ReplicaState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.ReplicaStatus()[idx].State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("replica %d never reached %v (status %+v)", idx, want, r.ReplicaStatus())
}

// TestReplicatedMatchesMem: with all replicas healthy, the cluster is
// bit-identical to a single Mem under a mixed read/write workload, and
// every replica converges to the same contents.
func TestReplicatedMatchesMem(t *testing.T) {
	const slots, bs = 64, 16
	r, _, mems := newTestCluster(t, 3, slots, bs, ReplicatedOptions{})
	shadow, err := NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 200; q++ {
		addr := (q * 7) % slots
		if q%3 == 0 {
			b := block.Pattern(uint64(q), bs)
			if err := r.Upload(addr, b); err != nil {
				t.Fatalf("upload %d: %v", q, err)
			}
			if err := shadow.Upload(addr, b); err != nil {
				t.Fatal(err)
			}
		} else {
			got, err := r.Download(addr)
			if err != nil {
				t.Fatalf("download %d: %v", q, err)
			}
			want, _ := shadow.Download(addr)
			if !bytes.Equal(got, want) {
				t.Fatalf("q%d addr %d: got %x want %x", q, addr, got, want)
			}
		}
	}
	r.Flush()
	for i, m := range mems {
		for a := 0; a < slots; a++ {
			want, _ := shadow.Download(a)
			got, _ := m.Download(a)
			if !bytes.Equal(got, want) {
				t.Fatalf("replica %d diverged at addr %d", i, a)
			}
		}
	}
}

// TestReplicatedQuorumSemantics: W=2 over 3 replicas tolerates one dead
// replica with zero write failures; with two dead, writes fail with
// ErrQuorum; W=N fails as soon as one replica is down.
func TestReplicatedQuorumSemantics(t *testing.T) {
	const slots, bs = 16, 8
	t.Run("W2N3-one-dead", func(t *testing.T) {
		r, gates, _ := newTestCluster(t, 3, slots, bs, ReplicatedOptions{WriteQuorum: 2})
		gates[1].broken.Store(true)
		for q := 0; q < 20; q++ {
			if err := r.Upload(q%slots, block.Pattern(uint64(q), bs)); err != nil {
				t.Fatalf("write %d failed with one dead replica: %v", q, err)
			}
		}
	})
	t.Run("W2N3-two-dead", func(t *testing.T) {
		r, gates, _ := newTestCluster(t, 3, slots, bs, ReplicatedOptions{WriteQuorum: 2})
		gates[1].broken.Store(true)
		gates[2].broken.Store(true)
		// First writes eject the two dead replicas; after ejection the
		// quorum is provably unreachable and the error must be ErrQuorum.
		var lastErr error
		for q := 0; q < 10; q++ {
			lastErr = r.Upload(0, block.Pattern(uint64(q), bs))
		}
		if !errors.Is(lastErr, ErrQuorum) {
			t.Fatalf("want ErrQuorum with 2/3 dead, got %v", lastErr)
		}
	})
	t.Run("WN-one-dead", func(t *testing.T) {
		r, gates, _ := newTestCluster(t, 2, slots, bs, ReplicatedOptions{WriteQuorum: 2})
		gates[1].broken.Store(true)
		var lastErr error
		for q := 0; q < 5; q++ {
			lastErr = r.Upload(0, block.Pattern(uint64(q), bs))
		}
		if !errors.Is(lastErr, ErrQuorum) {
			t.Fatalf("want ErrQuorum at W=N with a dead replica, got %v", lastErr)
		}
	})
}

// TestReplicatedReadFailover: the sticky read replica dying mid-workload
// is invisible to the caller — the same read succeeds on the next
// replica — and the dead replica serves nothing until it is revived and
// resynced (sticky ejection).
func TestReplicatedReadFailover(t *testing.T) {
	const slots, bs = 32, 8
	r, gates, _ := newTestCluster(t, 3, slots, bs, ReplicatedOptions{WriteQuorum: 2})
	for a := 0; a < slots; a++ {
		if err := r.Upload(a, block.Pattern(uint64(a), bs)); err != nil {
			t.Fatal(err)
		}
	}
	// Sticky with seed 0 reads from replica 0.
	if _, err := r.Download(3); err != nil {
		t.Fatal(err)
	}
	if got := gates[0].reads.Load(); got == 0 {
		t.Fatal("sticky policy did not read from replica 0")
	}
	before1 := gates[1].reads.Load()

	gates[0].broken.Store(true)
	for a := 0; a < slots; a++ {
		got, err := r.Download(a)
		if err != nil {
			t.Fatalf("read %d during failover: %v", a, err)
		}
		if !bytes.Equal(got, block.Pattern(uint64(a), bs)) {
			t.Fatalf("read %d returned wrong data during failover", a)
		}
	}
	if gates[1].reads.Load() == before1 {
		t.Fatal("failover did not move reads to replica 1")
	}
	waitState(t, r, 0, ReplicaDown)

	// Sticky ejection: replica 0 must not serve reads again while broken,
	// even though probes keep firing.
	reads0 := gates[0].reads.Load()
	for a := 0; a < 8; a++ {
		if _, err := r.Download(a); err != nil {
			t.Fatal(err)
		}
	}
	if gates[0].reads.Load() != reads0 {
		t.Fatal("ejected replica served a read before promotion")
	}
}

// TestReplicatedResyncDirty: a replica that dies, misses writes, and
// returns is streamed exactly its backlog and promoted; after promotion
// its contents match the survivors and it serves reads again.
func TestReplicatedResyncDirty(t *testing.T) {
	const slots, bs = 64, 8
	r, gates, mems := newTestCluster(t, 2, slots, bs, ReplicatedOptions{WriteQuorum: 1, Seed: 0})
	for a := 0; a < slots; a++ {
		if err := r.Upload(a, block.Pattern(uint64(a), bs)); err != nil {
			t.Fatal(err)
		}
	}
	r.Flush()
	gates[1].broken.Store(true)
	// Miss a batch of writes (some overwriting, some new) — these fail on
	// replica 1 and land in its backlog.
	for q := 0; q < 40; q++ {
		if err := r.Upload((q*3)%slots, block.Pattern(1000+uint64(q), bs)); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, r, 1, ReplicaDown)
	if st := r.ReplicaStatus()[1]; st.Dirty == 0 {
		t.Fatal("down replica has an empty backlog despite missed writes")
	}
	writesBefore := gates[1].writes.Load()
	gates[1].broken.Store(false)
	waitState(t, r, 1, ReplicaUp)
	if st := r.ReplicaStatus()[1]; st.Dirty != 0 {
		t.Fatalf("promoted replica still has %d backlog entries", st.Dirty)
	}
	// The resync stream wrote only the backlog, not the whole store.
	streamed := gates[1].writes.Load() - writesBefore
	if streamed == 0 || streamed > 40 {
		t.Fatalf("dirty resync streamed %d writes, want 1..40", streamed)
	}
	r.Flush()
	for a := 0; a < slots; a++ {
		want, _ := mems[0].Download(a)
		got, _ := mems[1].Download(a)
		if !bytes.Equal(got, want) {
			t.Fatalf("resynced replica diverges at addr %d", a)
		}
	}
}

// TestReplicatedResyncUnderLoad: writes keep flowing WHILE the resync
// stream runs; the freshness rule must keep the live writes (newer) from
// being overwritten by the backlog (older). The gate's write counter
// throttle forces the stream and the live path to interleave.
func TestReplicatedResyncUnderLoad(t *testing.T) {
	const slots, bs = 256, 8
	r, gates, mems := newTestCluster(t, 2, slots, bs, ReplicatedOptions{WriteQuorum: 1})
	for a := 0; a < slots; a++ {
		if err := r.Upload(a, block.Pattern(uint64(a), bs)); err != nil {
			t.Fatal(err)
		}
	}
	r.Flush()
	gates[1].broken.Store(true)
	for a := 0; a < slots; a++ {
		if err := r.Upload(a, block.Pattern(5000+uint64(a), bs)); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, r, 1, ReplicaDown)

	// Revive, and concurrently overwrite a moving window of addresses.
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	var liveErr error
	go func() {
		defer wg.Done()
		for q := 0; ; q++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.Upload(q%slots, block.Pattern(9000+uint64(q), bs)); err != nil {
				liveErr = err
				return
			}
		}
	}()
	gates[1].broken.Store(false)
	waitState(t, r, 1, ReplicaUp)
	close(stop)
	wg.Wait()
	if liveErr != nil {
		t.Fatalf("live writes during resync failed: %v", liveErr)
	}
	r.Flush()
	for a := 0; a < slots; a++ {
		want, _ := mems[0].Download(a)
		got, _ := mems[1].Download(a)
		if !bytes.Equal(got, want) {
			t.Fatalf("replica diverges at addr %d after resync under load: got %x want %x", a, got, want)
		}
	}
}

// TestReplicatedRotatePolicy: ReadRotate spreads reads across all Up
// replicas (every replica serves some), and ejection shrinks the
// rotation set without client-visible failures.
func TestReplicatedRotatePolicy(t *testing.T) {
	const slots, bs = 16, 8
	r, gates, _ := newTestCluster(t, 3, slots, bs, ReplicatedOptions{WriteQuorum: 2, ReadPolicy: ReadRotate})
	for a := 0; a < slots; a++ {
		if err := r.Upload(a, block.Pattern(uint64(a), bs)); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 30; q++ {
		if _, err := r.Download(q % slots); err != nil {
			t.Fatal(err)
		}
	}
	for i, g := range gates {
		if g.reads.Load() == 0 {
			t.Fatalf("rotate policy never read from replica %d", i)
		}
	}
	gates[2].broken.Store(true)
	for q := 0; q < 30; q++ {
		if _, err := r.Download(q % slots); err != nil {
			t.Fatalf("rotate read %d during failover: %v", q, err)
		}
	}
}

// TestReplicatedReadYourWrites: a read immediately after an acknowledged
// write must return the new data even under the rotate policy, where the
// read may land on a replica that acked later than the quorum pair.
func TestReplicatedReadYourWrites(t *testing.T) {
	const slots, bs = 8, 8
	r, _, _ := newTestCluster(t, 3, slots, bs, ReplicatedOptions{WriteQuorum: 2, ReadPolicy: ReadRotate})
	for q := 0; q < 300; q++ {
		want := block.Pattern(uint64(q), bs)
		if err := r.Upload(q%slots, want); err != nil {
			t.Fatal(err)
		}
		got, err := r.Download(q % slots)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("q%d: read-your-writes violated: got %x want %x", q, got, want)
		}
	}
}

// TestReplicatedConcurrent: racing readers and writers over a cluster
// with a replica dying and rejoining mid-run — no client-visible errors,
// and all replicas converge (run under -race).
func TestReplicatedConcurrent(t *testing.T) {
	const slots, bs, clients, perClient = 64, 8, 8, 50
	r, gates, mems := newTestCluster(t, 3, slots, bs, ReplicatedOptions{WriteQuorum: 2, ReadPolicy: ReadRotate})
	for a := 0; a < slots; a++ {
		if err := r.Upload(a, block.Pattern(uint64(a), bs)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				addr := (c*perClient + q) % slots
				if q%2 == 0 {
					if _, err := r.Download(addr); err != nil {
						errs[c] = err
						return
					}
				} else if err := r.Upload(addr, block.Pattern(uint64(c*1000+q), bs)); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	// Kill replica 1 mid-run, then revive it.
	time.Sleep(2 * time.Millisecond)
	gates[1].broken.Store(true)
	time.Sleep(5 * time.Millisecond)
	gates[1].broken.Store(false)
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d observed a failure: %v", c, err)
		}
	}
	waitState(t, r, 1, ReplicaUp)
	r.Flush()
	for a := 0; a < slots; a++ {
		want, _ := mems[0].Download(a)
		for i := 1; i < 3; i++ {
			got, _ := mems[i].Download(a)
			if !bytes.Equal(got, want) {
				t.Fatalf("replica %d diverges at addr %d after concurrent run", i, a)
			}
		}
	}
}

// hangable wraps a BatchServer whose WriteBatch can be made to block
// (a black-holed connection, not an erroring one) until released.
type hangable struct {
	inner   BatchServer
	hung    atomic.Bool
	release chan struct{}
}

func (h *hangable) maybeHang() {
	if h.hung.Load() {
		<-h.release
	}
}

func (h *hangable) Download(addr int) (block.Block, error) { return h.inner.Download(addr) }
func (h *hangable) Upload(addr int, b block.Block) error {
	h.maybeHang()
	return h.inner.Upload(addr, b)
}
func (h *hangable) ReadBatch(addrs []int) ([]block.Block, error) { return h.inner.ReadBatch(addrs) }
func (h *hangable) WriteBatch(ops []WriteOp) error {
	h.maybeHang()
	return h.inner.WriteBatch(ops)
}
func (h *hangable) Size() int      { return h.inner.Size() }
func (h *hangable) BlockSize() int { return h.inner.BlockSize() }

// TestReplicatedHungReplica: a replica that HANGS (no error, ever) must
// not stall cluster writes — once its queue fills, the cluster ejects it
// and keeps acking at quorum; after the hang clears, resync converges it.
func TestReplicatedHungReplica(t *testing.T) {
	const slots, bs = 64, 8
	hang := &hangable{release: make(chan struct{})}
	mems := make([]*Mem, 3)
	specs := make([]ReplicaSpec, 3)
	for i := range specs {
		m, err := NewMem(slots, bs)
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
		var backend BatchServer = AsBatch(m)
		if i == 2 {
			hang.inner = backend
			backend = hang
		}
		specs[i] = ReplicaSpec{Name: fmt.Sprintf("r%d", i), Backend: backend}
	}
	r, err := NewReplicated(specs, ReplicatedOptions{
		WriteQuorum:      2,
		ProbeInterval:    2 * time.Millisecond,
		MaxProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close() //nolint:errcheck

	hang.hung.Store(true)
	// Enough writes to fill the hung replica's queue (depth 64 + the one
	// its writer is stuck inside) and trip the bypass. Must complete
	// promptly — a stalled fan-out would hang this loop forever.
	done := make(chan error, 1)
	go func() {
		for q := 0; q < 100; q++ {
			if err := r.Upload(q%slots, block.Pattern(uint64(q), bs)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write failed during hang: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cluster writes stalled behind one hung replica")
	}
	if st := r.ReplicaStatus()[2]; st.State != ReplicaDown || st.LastErr == "" {
		t.Fatalf("hung replica not ejected with a cause: %+v", st)
	}

	// Clear the hang; the stuck writer drains, resync streams the
	// backlog, and the replica converges with the survivors.
	hang.hung.Store(false)
	close(hang.release)
	waitState(t, r, 2, ReplicaUp)
	r.Flush()
	for a := 0; a < slots; a++ {
		want, _ := mems[0].Download(a)
		got, _ := mems[2].Download(a)
		if !bytes.Equal(got, want) {
			t.Fatalf("hung replica diverges at addr %d after recovery", a)
		}
	}
}

// epochGated is a gated backend that also reports a recovery epoch,
// standing in for a durable remote replica.
type epochGated struct {
	*gated
	epoch uint64
}

func (e *epochGated) Epoch() uint64 { return e.epoch }

// TestReplicatedEpochRegressionForcesFullCopy: a redialed replica whose
// epoch went BACKWARDS (its durable directory was wiped — a fresh dir
// boots at epoch 1) must be rebuilt with a full copy, not trusted to
// hold its previously acknowledged writes. The wiped store here is
// empty, so a backlog-only resync would leave every address outside the
// down-window zeroed; the test fails on exactly that.
func TestReplicatedEpochRegressionForcesFullCopy(t *testing.T) {
	const slots, bs = 64, 8
	m0, err := NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	mOld, err := NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	gOld := &epochGated{gated: newGated(mOld), epoch: 5}
	var mNew *Mem
	specs := []ReplicaSpec{
		{Name: "r0", Backend: AsBatch(m0)},
		{Name: "r1", Backend: gOld, Redial: func() (BatchServer, error) {
			// The "restarted on a wiped directory" daemon: empty store,
			// epoch reset to 1 < 5.
			m, err := NewMem(slots, bs)
			if err != nil {
				return nil, err
			}
			mNew = m
			return &epochGated{gated: newGated(m), epoch: 1}, nil
		}},
	}
	r, err := NewReplicated(specs, ReplicatedOptions{
		WriteQuorum:      1,
		ProbeInterval:    2 * time.Millisecond,
		MaxProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close() //nolint:errcheck
	for a := 0; a < slots; a++ {
		if err := r.Upload(a, block.Pattern(uint64(a), bs)); err != nil {
			t.Fatal(err)
		}
	}
	r.Flush()
	// Kill r1; miss only TWO writes, so a backlog-only resync would
	// restore 2 addresses and leave 62 zeroed on the wiped store.
	gOld.broken.Store(true)
	for q := 0; q < 2; q++ {
		if err := r.Upload(q, block.Pattern(9000+uint64(q), bs)); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, r, 1, ReplicaDown)
	waitState(t, r, 1, ReplicaUp) // redial (epoch 5→1) + resync + promote
	if st := r.ReplicaStatus()[1]; st.Epoch != 1 {
		t.Fatalf("promoted epoch %d, want the redialed 1", st.Epoch)
	}
	r.Flush()
	for a := 0; a < slots; a++ {
		want, _ := m0.Download(a)
		got, _ := mNew.Download(a)
		if !bytes.Equal(got, want) {
			t.Fatalf("wiped replica diverges at addr %d: epoch regression was not treated as a full-copy case", a)
		}
	}
}

// TestReplicatedValidation: malformed batches are rejected up front and
// must NOT eject healthy replicas.
func TestReplicatedValidation(t *testing.T) {
	const slots, bs = 8, 8
	r, _, _ := newTestCluster(t, 2, slots, bs, ReplicatedOptions{})
	if err := r.Upload(slots, block.New(bs)); !errors.Is(err, ErrAddr) {
		t.Fatalf("out-of-range upload: %v", err)
	}
	if err := r.Upload(0, block.New(bs-1)); !errors.Is(err, block.ErrSize) {
		t.Fatalf("ragged upload: %v", err)
	}
	if _, err := r.ReadBatch([]int{-1}); !errors.Is(err, ErrAddr) {
		t.Fatalf("out-of-range read: %v", err)
	}
	for _, st := range r.ReplicaStatus() {
		if st.State != ReplicaUp {
			t.Fatalf("caller bug ejected replica %s", st.Name)
		}
	}
	if err := r.Upload(0, block.Pattern(1, bs)); err != nil {
		t.Fatalf("cluster broken after rejected batches: %v", err)
	}
}

// TestReplicatedShapeMismatch: construction fails when replicas disagree
// on shape, and quorum bounds are enforced.
func TestReplicatedShapeMismatch(t *testing.T) {
	a, _ := NewMem(8, 8)
	b, _ := NewMem(16, 8)
	if _, err := NewReplicated([]ReplicaSpec{{Backend: AsBatch(a)}, {Backend: AsBatch(b)}}, ReplicatedOptions{}); err == nil {
		t.Fatal("mismatched replica shapes accepted")
	}
	c, _ := NewMem(8, 8)
	if _, err := NewReplicated([]ReplicaSpec{{Backend: AsBatch(c)}}, ReplicatedOptions{WriteQuorum: 2}); err == nil {
		t.Fatal("quorum larger than cluster accepted")
	}
	if _, err := NewReplicated(nil, ReplicatedOptions{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

// TestReplicatedClosed: operations after Close fail with
// ErrReplicatedClosed rather than hanging or panicking.
func TestReplicatedClosed(t *testing.T) {
	r, _, _ := newTestCluster(t, 2, 8, 8, ReplicatedOptions{})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Upload(0, block.New(8)); !errors.Is(err, ErrReplicatedClosed) {
		t.Fatalf("upload after close: %v", err)
	}
	if _, err := r.Download(0); !errors.Is(err, ErrReplicatedClosed) {
		t.Fatalf("download after close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
