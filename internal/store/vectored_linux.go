//go:build linux && (amd64 || arm64)

package store

// Vectored page I/O — the real preadv(2)/pwritev(2) implementation. A
// coalesced run of N blocks becomes ONE syscall that scatters straight into
// the N caller buffers (or gathers straight out of them), with no staging
// copy in between: the File/Durable batch paths go from one large
// memcpy'd transfer per run to zero-copy.
//
// The build tag mirrors the sync_linux.go/sync_other.go split but is
// narrower: the raw syscall splits the file offset into pos_l/pos_h
// longs, and this file hard-codes the 64-bit-long convention (the whole
// offset rides in pos_l; pos_from_hilo shifts pos_h out of range). 32-bit
// Linux would need a genuine hi/lo split, so it takes the portable
// fallback instead — see the fallback matrix in DESIGN.md §HotPath.
//
// Error semantics match os.File.ReadAt/WriteAt: EINTR restarts, partial
// transfers resume where they stopped, and a zero-byte read inside the
// requested range reports io.ErrUnexpectedEOF.

import (
	"io"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// vectoredIO reports which path this build uses (surfaced by daemons and
// recorded in benchmark environments, so numbers are attributable).
const vectoredIO = true

// iovMax is the kernel's UIO_MAXIOV: the most iovecs one vectored call
// accepts. Longer runs are issued in windows of this size.
const iovMax = 1024

// vectorizer holds the reusable iovec scratch for one store's run I/O. It
// is guarded by the owning store's I/O mutex, like the run buffers it
// replaces.
type vectorizer struct {
	iovs []syscall.Iovec
}

// readv fills bufs, in order, from the contiguous file range starting at
// off: one preadv per iovMax window, scattering directly into bufs.
func (v *vectorizer) readv(f *os.File, bufs [][]byte, off int64) error {
	return v.transfer(f, bufs, off, syscall.SYS_PREADV)
}

// writev writes bufs, in order, to the contiguous file range starting at
// off: one pwritev per iovMax window, gathering directly from bufs.
func (v *vectorizer) writev(f *os.File, bufs [][]byte, off int64) error {
	return v.transfer(f, bufs, off, syscall.SYS_PWRITEV)
}

// transfer is the shared scatter/gather loop. idx/inner track resume
// position across partial transfers and EINTR restarts.
func (v *vectorizer) transfer(f *os.File, bufs [][]byte, off int64, trap uintptr) error {
	fd := f.Fd()
	idx, inner := 0, 0
	for idx < len(bufs) {
		v.iovs = v.iovs[:0]
		for i := idx; i < len(bufs) && len(v.iovs) < iovMax; i++ {
			b := bufs[i]
			if i == idx {
				b = b[inner:]
			}
			if len(b) == 0 {
				continue
			}
			iov := syscall.Iovec{Base: &b[0]}
			iov.SetLen(len(b))
			v.iovs = append(v.iovs, iov)
		}
		if len(v.iovs) == 0 {
			break // nothing left but empty buffers
		}
		// On 64-bit the kernel takes the position entirely from pos_l;
		// pos_from_hilo shifts pos_h out of the loff_t (the build tag pins
		// us to 64-bit longs).
		n, _, errno := syscall.Syscall6(trap, fd,
			uintptr(unsafe.Pointer(&v.iovs[0])), uintptr(len(v.iovs)),
			uintptr(off), 0, 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return errno
		}
		if n == 0 {
			if trap == syscall.SYS_PWRITEV {
				return io.ErrShortWrite
			}
			return io.ErrUnexpectedEOF
		}
		off += int64(n)
		adv := int(n)
		for adv > 0 {
			rem := len(bufs[idx]) - inner
			if adv < rem {
				inner += adv
				adv = 0
			} else {
				adv -= rem
				idx++
				inner = 0
			}
		}
	}
	runtime.KeepAlive(f)
	return nil
}
