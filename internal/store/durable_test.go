package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"dpstore/internal/block"
)

func fillBlock(size int, seed byte) block.Block {
	b := block.New(size)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// TestDurableRoundTrip: basic Server/BatchServer semantics on the engine.
func TestDurableRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "store")
	d, err := CreateDurable(base, 16, 32, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Size() != 16 || d.BlockSize() != 32 {
		t.Fatalf("shape = %d × %d", d.Size(), d.BlockSize())
	}
	// Fresh slots read back zeroed.
	got, err := d.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block.New(32)) {
		t.Fatal("fresh slot not zeroed")
	}
	b := fillBlock(32, 7)
	if err := d.Upload(5, b); err != nil {
		t.Fatal(err)
	}
	got, err = d.Download(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("read-your-write failed")
	}
	// Batch with duplicates: last write wins, reads in request order.
	ops := []WriteOp{
		{Addr: 1, Block: fillBlock(32, 1)},
		{Addr: 2, Block: fillBlock(32, 2)},
		{Addr: 1, Block: fillBlock(32, 9)},
	}
	if err := d.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}
	blocks, err := d.ReadBatch([]int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blocks[0], fillBlock(32, 2)) || !bytes.Equal(blocks[1], fillBlock(32, 9)) {
		t.Fatal("batch semantics broken")
	}
	// Bounds and size validation.
	if err := d.Upload(16, b); err == nil {
		t.Fatal("out-of-range upload accepted")
	}
	if err := d.Upload(0, block.New(31)); err == nil {
		t.Fatal("short block accepted")
	}
}

// TestDurableMatchesMem: a random batched workload through the engine is
// bit-identical to the same workload through Mem.
func TestDurableMatchesMem(t *testing.T) {
	base := filepath.Join(t.TempDir(), "store")
	d, err := CreateDurable(base, 64, 24, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m, err := NewMem(64, 24)
	if err != nil {
		t.Fatal(err)
	}
	rnd := uint64(12345)
	next := func(n int) int {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return int(rnd>>33) % n
	}
	for round := 0; round < 50; round++ {
		ops := make([]WriteOp, 1+next(8))
		for i := range ops {
			ops[i] = WriteOp{Addr: next(64), Block: fillBlock(24, byte(next(256)))}
		}
		if err := d.WriteBatch(ops); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteBatch(ops); err != nil {
			t.Fatal(err)
		}
	}
	addrs := make([]int, 64)
	for i := range addrs {
		addrs[i] = i
	}
	dB, err := d.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := m.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if !bytes.Equal(dB[i], mB[i]) {
			t.Fatalf("slot %d diverges from Mem", i)
		}
	}
}

// TestDurablePersistsAcrossReopen: acknowledged writes survive Close/Open,
// and a clean shutdown leaves an empty WAL (nothing to replay).
func TestDurablePersistsAcrossReopen(t *testing.T) {
	base := filepath.Join(t.TempDir(), "store")
	d, err := CreateDurable(base, 8, 16, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := fillBlock(16, 3)
	if err := d.Upload(2, want); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(base + ".wal"); err != nil || st.Size() != walHdrSize {
		t.Fatalf("clean close left WAL at %d bytes (err %v), want %d", st.Size(), err, walHdrSize)
	}
	d2, err := OpenDurable(base, 8, 16, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Download(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("write did not survive reopen")
	}
	// Shape mismatch on open is rejected.
	if _, err := OpenDurable(base, 8, 32, DurableOptions{}); err == nil {
		t.Fatal("wrong block size accepted")
	}
}

// TestDurableReplayRepairsTornPage: a page torn AFTER its WAL record was
// acknowledged (crash between fsync(wal) and the page write completing)
// must be repaired by replay on the next open.
func TestDurableReplayRepairsTornPage(t *testing.T) {
	base := filepath.Join(t.TempDir(), "store")
	d, err := CreateDurable(base, 8, 16, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := fillBlock(16, 5)
	if err := d.Upload(4, want); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: abandon the engine without Close (the WAL still
	// holds the record) and tear the page on disk.
	pageOff := int64(pagesHdrSize) + 4*int64(16+pageTrailer)
	f, err := os.OpenFile(base+".pages", os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xDE, 0xAD}, pageOff+3); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d2, err := OpenDurable(base, 8, 16, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Download(4)
	if err != nil {
		t.Fatalf("replay did not repair the torn page: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("replayed page holds wrong data")
	}
}

// TestDurableDetectsCorruptPage: a corrupted page NOT covered by any WAL
// record must fail its checksum on read, never return garbage.
func TestDurableDetectsCorruptPage(t *testing.T) {
	base := filepath.Join(t.TempDir(), "store")
	d, err := CreateDurable(base, 8, 16, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Upload(1, fillBlock(16, 2)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // clean close: WAL empty
		t.Fatal(err)
	}
	f, err := os.OpenFile(base+".pages", os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(pagesHdrSize)+1*int64(16+pageTrailer)+2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d2, err := OpenDurable(base, 8, 16, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.Download(1); err == nil {
		t.Fatal("corrupt page returned without error")
	} else if _, err2 := d2.Download(0); err2 != nil {
		t.Fatalf("healthy page rejected: %v", err2)
	}
}

// TestDurableHeaderValidation: corrupt header and version skew are
// rejected with ErrCorrupt, not misread.
func TestDurableHeaderValidation(t *testing.T) {
	base := filepath.Join(t.TempDir(), "store")
	d, err := CreateDurable(base, 4, 8, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	f, err := os.OpenFile(base+".pages", os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0x77}, 9); err != nil { // inside version field
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenDurable(base, 4, 8, DurableOptions{}); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

// TestDurableMigratesLegacyFile: a headerless CreateFile-format store is
// migrated to the page format on open, preserving every slot.
func TestDurableMigratesLegacyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blocks.dat")
	legacy, err := CreateFile(path, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]block.Block, 8)
	for i := range want {
		want[i] = fillBlock(16, byte(10*i))
		if err := legacy.Upload(i, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDurable(path, 8, 16, DurableOptions{})
	if err != nil {
		t.Fatalf("legacy migration failed: %v", err)
	}
	defer d.Close()
	for i := range want {
		got, err := d.Download(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("slot %d lost in migration", i)
		}
	}
	// The legacy file is gone; the engine files replace it.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("legacy file still present after migration")
	}
	if _, err := os.Stat(path + ".pages"); err != nil {
		t.Fatal("pages file missing after migration")
	}
	// OpenOrCreateDurable on the migrated base keeps the data.
	d.Close()
	d2, err := OpenOrCreateDurable(path, 8, 16, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[3]) {
		t.Fatal("migrated data lost on second open")
	}
}

// TestDurableCompaction: the WAL is truncated back to its header once it
// outgrows the limit, and the data stays intact (including across reopen).
func TestDurableCompaction(t *testing.T) {
	base := filepath.Join(t.TempDir(), "store")
	d, err := CreateDurable(base, 8, 64, DurableOptions{WALLimit: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 100; round++ {
		if err := d.Upload(round%8, fillBlock(64, byte(round))); err != nil {
			t.Fatal(err)
		}
		if sz := d.WALSize(); sz > 2048+4096 { // one record of slack
			t.Fatalf("WAL grew to %d despite 2048 limit", sz)
		}
	}
	got, err := d.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fillBlock(64, 99)) { // round 99 wrote addr 99%8 = 3
		t.Fatal("post-compaction data wrong")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(base, 8, 64, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err = d2.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fillBlock(64, 99)) {
		t.Fatal("data lost across compacted reopen")
	}
}

// TestDurableShardedComposition: K engines under Sharded behave like Mem.
func TestDurableShardedComposition(t *testing.T) {
	dir := t.TempDir()
	const n, bs, k = 37, 16, 4
	subs := make([]Server, k)
	for i := range subs {
		d, err := CreateDurable(filepath.Join(dir, fmt.Sprintf("s%d", i)), ShardSlots(n, k, i), bs, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		subs[i] = d
	}
	sh, err := NewSharded(subs)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMem(n, bs)
	for i := 0; i < n; i++ {
		b := fillBlock(bs, byte(3*i))
		if err := sh.Upload(i, b); err != nil {
			t.Fatal(err)
		}
		if err := m.Upload(i, b); err != nil {
			t.Fatal(err)
		}
	}
	addrs := make([]int, n)
	for i := range addrs {
		addrs[i] = n - 1 - i
	}
	sB, err := sh.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	mB, _ := m.ReadBatch(addrs)
	for i := range addrs {
		if !bytes.Equal(sB[i], mB[i]) {
			t.Fatalf("sharded durable slot %d diverges", addrs[i])
		}
	}
}

// TestDurableSyncModes: SyncNone still persists after an explicit Sync and
// a clean Close; SyncEach works end to end.
func TestDurableSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncEach, SyncNone} {
		base := filepath.Join(t.TempDir(), "store")
		d, err := CreateDurable(base, 4, 8, DurableOptions{Sync: mode})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Upload(1, fillBlock(8, 9)); err != nil {
			t.Fatal(err)
		}
		if mode == SyncNone {
			if err := d.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		d2, err := OpenDurable(base, 4, 8, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := d2.Download(1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fillBlock(8, 9)) {
			t.Fatalf("mode %d lost data", mode)
		}
		d2.Close()
	}
}

// TestEpochPersistence: BumpEpoch counts monotonically across "restarts"
// and survives corruption detection.
func TestEpochPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epoch")
	if e, err := LoadEpoch(path); err != nil || e != 0 {
		t.Fatalf("fresh epoch = %d, %v", e, err)
	}
	for want := uint64(1); want <= 3; want++ {
		got, err := BumpEpoch(path)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bump %d returned %d", want, got)
		}
	}
	if e, err := LoadEpoch(path); err != nil || e != 3 {
		t.Fatalf("reload epoch = %d, %v", e, err)
	}
	if err := os.WriteFile(path, []byte("garbage....."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEpoch(path); err == nil {
		t.Fatal("corrupt epoch file accepted")
	}
}

// TestRegistryPersistence: namespace records round-trip; missing file is
// empty; version skew rejected.
func TestRegistryPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "namespaces.json")
	if recs, err := LoadRegistry(path); err != nil || recs != nil {
		t.Fatalf("fresh registry = %v, %v", recs, err)
	}
	want := []NamespaceRecord{
		{Name: "tenant-a", Slots: 128, BlockSize: 64},
		{Name: "weird name \x00✓", Slots: 16, BlockSize: 32},
	}
	if err := SaveRegistry(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("registry round trip: got %v want %v", got, want)
	}
	if err := os.WriteFile(path, []byte(`{"version":99,"namespaces":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegistry(path); err == nil {
		t.Fatal("future registry version accepted")
	}
}

// TestWALRecordCodec: record encode/decode round-trips and rejects every
// corruption class replay depends on detecting.
func TestWALRecordCodec(t *testing.T) {
	d := newDurable("x", 8, 16, DurableOptions{})
	ops := []WriteOp{{Addr: 1, Block: fillBlock(16, 1)}, {Addr: 7, Block: fillBlock(16, 2)}}
	rec := d.encodeWALRecord(ops)
	body := rec[4:]
	got, ok := d.decodeWALRecord(body)
	if !ok || len(got) != 2 || got[0].Addr != 1 || got[1].Addr != 7 ||
		!bytes.Equal(got[0].Block, ops[0].Block) {
		t.Fatal("round trip failed")
	}
	// Flip one payload byte: CRC must fail.
	bad := append([]byte(nil), body...)
	bad[10] ^= 1
	if _, ok := d.decodeWALRecord(bad); ok {
		t.Fatal("corrupt record accepted")
	}
	// Out-of-range address with a fixed-up CRC: shape check must fail.
	bad = append([]byte(nil), body...)
	binary.BigEndian.PutUint64(bad[4:], 99)
	binary.BigEndian.PutUint32(bad[len(bad)-4:], crc32.Checksum(bad[:len(bad)-4], castagnoli))
	if _, ok := d.decodeWALRecord(bad); ok {
		t.Fatal("out-of-range address accepted")
	}
	// Truncated.
	if _, ok := d.decodeWALRecord(body[:len(body)-3]); ok {
		t.Fatal("truncated record accepted")
	}
}
