package store

import (
	"testing"

	"dpstore/internal/block"
)

func newOffsetFixture(t *testing.T) (*Mem, *Offset) {
	t.Helper()
	mem, err := NewMem(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewOffset(AsBatch(mem), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return mem, off
}

func fill(b byte, n int) block.Block {
	blk := make(block.Block, n)
	for i := range blk {
		blk[i] = b
	}
	return blk
}

// TestOffsetTranslation: single ops land at base+addr in the inner store,
// and the window reports its own shape.
func TestOffsetTranslation(t *testing.T) {
	mem, off := newOffsetFixture(t)
	if off.Size() != 3 || off.BlockSize() != 8 || off.Base() != 4 {
		t.Fatalf("window shape %d × %d at %d", off.Size(), off.BlockSize(), off.Base())
	}
	if err := off.Upload(2, fill(0xAB, 8)); err != nil {
		t.Fatal(err)
	}
	got, err := mem.Download(6)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatalf("inner slot 6 = %x, want AB", got[0])
	}
	back, err := off.Download(2)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != 0xAB {
		t.Fatalf("window slot 2 = %x, want AB", back[0])
	}
	// Slots outside the window are untouched and unreachable.
	for _, addr := range []int{-1, 3} {
		if _, err := off.Download(addr); err == nil {
			t.Fatalf("download %d accepted outside [0,3)", addr)
		}
		if err := off.Upload(addr, fill(0, 8)); err == nil {
			t.Fatalf("upload %d accepted outside [0,3)", addr)
		}
	}
}

// TestOffsetBatches: batch ops translate every address and never mutate
// the caller's op slice (the write-behind pipeline retains its ops).
func TestOffsetBatches(t *testing.T) {
	mem, off := newOffsetFixture(t)
	ops := []WriteOp{{Addr: 0, Block: fill(1, 8)}, {Addr: 2, Block: fill(3, 8)}}
	if err := off.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}
	if ops[0].Addr != 0 || ops[1].Addr != 2 {
		t.Fatalf("caller ops mutated: %d, %d", ops[0].Addr, ops[1].Addr)
	}
	for inner, want := range map[int]byte{4: 1, 6: 3} {
		got, err := mem.Download(inner)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("inner slot %d = %d, want %d", inner, got[0], want)
		}
	}
	blocks, err := off.ReadBatch([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0][0] != 3 || blocks[1][0] != 1 {
		t.Fatalf("batch read %d, %d", blocks[0][0], blocks[1][0])
	}
	if _, err := off.ReadBatch([]int{0, 3}); err == nil {
		t.Fatal("batch read past the window accepted")
	}
	if err := off.WriteBatch([]WriteOp{{Addr: -1, Block: fill(0, 8)}}); err == nil {
		t.Fatal("batch write below the window accepted")
	}
}

// TestOffsetValidation: a window must fit entirely inside the inner store.
func TestOffsetValidation(t *testing.T) {
	mem, err := NewMem(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ base, n int }{{-1, 2}, {0, 0}, {8, 3}, {10, 1}} {
		if _, err := NewOffset(AsBatch(mem), tc.base, tc.n); err == nil {
			t.Fatalf("window [%d,+%d) over 10 slots accepted", tc.base, tc.n)
		}
	}
	// Adjacent windows tile the store exactly.
	a, err := NewOffset(AsBatch(mem), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOffset(AsBatch(mem), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Upload(4, fill(7, 8)); err != nil {
		t.Fatal(err)
	}
	if err := b.Upload(0, fill(9, 8)); err != nil {
		t.Fatal(err)
	}
	x, _ := mem.Download(4)
	y, _ := mem.Download(5)
	if x[0] != 7 || y[0] != 9 {
		t.Fatalf("tiling broke: %d, %d", x[0], y[0])
	}
}
