//go:build !linux || !(amd64 || arm64)

package store

// Portable fallback for the vectored run I/O: semantically identical to
// vectored_linux.go but implemented as ONE ReadAt/WriteAt per run through a
// reusable staging buffer — which is exactly the pre-vectored behavior of
// the File and Durable batch paths, so platforms without preadv/pwritev
// keep their previous performance characteristics to the syscall.

import (
	"fmt"
	"os"
)

// vectoredIO reports which path this build uses.
const vectoredIO = false

// vectorizer holds the reusable staging buffer for one store's run I/O,
// guarded by the owning store's I/O mutex.
type vectorizer struct {
	scratch []byte
}

// stage returns the staging buffer grown to n bytes.
func (v *vectorizer) stage(n int) []byte {
	if cap(v.scratch) < n {
		v.scratch = make([]byte, n)
	}
	return v.scratch[:n]
}

// readv fills bufs, in order, from the contiguous file range starting at
// off: one ReadAt into the staging buffer, then a scatter copy.
func (v *vectorizer) readv(f *os.File, bufs [][]byte, off int64) error {
	need := 0
	for _, b := range bufs {
		need += len(b)
	}
	if need == 0 {
		return nil
	}
	buf := v.stage(need)
	if _, err := f.ReadAt(buf, off); err != nil {
		return err
	}
	pos := 0
	for _, b := range bufs {
		pos += copy(b, buf[pos:])
	}
	return nil
}

// writev writes bufs, in order, to the contiguous file range starting at
// off: a gather copy into the staging buffer, then one WriteAt.
func (v *vectorizer) writev(f *os.File, bufs [][]byte, off int64) error {
	need := 0
	for _, b := range bufs {
		need += len(b)
	}
	if need == 0 {
		return nil
	}
	buf := v.stage(need)
	pos := 0
	for _, b := range bufs {
		pos += copy(buf[pos:], b)
	}
	if n, err := f.WriteAt(buf, off); err != nil {
		return err
	} else if n != need {
		return fmt.Errorf("store: short run write: %d of %d bytes", n, need)
	}
	return nil
}
