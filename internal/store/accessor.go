package store

import "dpstore/internal/block"

// Accessor is a logical record-access endpoint: the serving surface of a
// privacy proxy (internal/proxy) hosting a scheme instance — DP-RAM,
// BucketRAM, Path ORAM — on behalf of many concurrent clients. Where a
// Server exposes the raw physical address space of Definition 3.1, an
// Accessor exposes only the scheme's logical one: Records() records of
// RecordSize() bytes each, read and written by index. The physical store
// behind the scheme stays entirely server-side, which is the point of the
// proxy deployment shape — clients never see (and so can never leak or
// correlate) physical addresses.
//
// Implementations must be safe for concurrent use: the serve loop invokes
// AccessRecord from one goroutine per connection.
type Accessor interface {
	// Records returns the number of logical records n.
	Records() int
	// RecordSize returns the fixed logical record size in bytes.
	RecordSize() int
	// AccessRecord performs one logical access. For reads (write == false,
	// data nil) it returns the current record value; for writes it stores
	// data and returns the previous value.
	AccessRecord(index int, write bool, data block.Block) (block.Block, error)
}
