package store_test

// The obliviousness regression for load shedding (docs/DESIGN.md §Load):
// whether a request is accepted, queued, or shed must depend only on
// queue state — never on the addresses the request carries. The test
// saturates a one-slot namespace with two workloads of identical arrival
// structure but maximally different address structure (every request
// hitting ONE hot record vs. all-distinct uniform addresses) and asserts
// the adversary views are identical: same number of requests shed, same
// number accepted, and the backend trace SHAPE — the run-length encoded
// op sequence of Definition 2.1's transcript with addresses erased —
// exactly equal. A shed policy that peeked at addresses (deduplicating
// hot keys, say, or hashing the address into the drop decision) would
// shed different counts across the two workloads and fail here.

import (
	"net"
	"sync"
	"testing"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/trace"
	"dpstore/internal/wire"
)

// gateServer blocks Downloads while armed, holding the admission slot of
// the request inside it so a wave of contenders resolves deterministically:
// with MaxInflight=1 and MaxQueue=q, exactly q contenders queue (their
// slots cannot free while the holder is parked) and the rest shed.
type gateServer struct {
	store.Server
	mu      sync.Mutex
	armed   bool
	gate    chan struct{}
	entered chan struct{}
}

func (g *gateServer) Download(addr int) (block.Block, error) {
	g.mu.Lock()
	hold := g.armed
	gate := g.gate
	g.mu.Unlock()
	if hold {
		g.entered <- struct{}{}
		<-gate
	}
	return g.Server.Download(addr)
}

func (g *gateServer) arm() {
	g.mu.Lock()
	g.armed = true
	g.gate = make(chan struct{})
	g.mu.Unlock()
}

// open releases the parked holder and stops gating (the queued contenders
// that run next pass straight through).
func (g *gateServer) open() {
	g.mu.Lock()
	g.armed = false
	gate := g.gate
	g.mu.Unlock()
	close(gate)
}

// shedView is the adversary-visible outcome of one saturation run.
type shedView struct {
	shape    string
	accepted uint64
	shed     uint64
	perWave  []int // busy responses per wave, in wave order
}

// runShedWorkload saturates a fresh one-slot daemon with waves of
// contending downloads at the given addresses and returns the adversary
// view. addrs[w][0] is the wave's holder; the rest contend while the
// holder is parked inside the backend.
func runShedWorkload(t *testing.T, addrs [][]int) shedView {
	t.Helper()
	const maxQueue = 2

	mem, err := store.NewMem(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(mem)
	gated := &gateServer{Server: rec, entered: make(chan struct{}, 1)}
	ns := store.NewNamespaces()
	ns.Attach(store.DefaultNamespace, gated)
	ns.SetAdmission(store.AdmitOptions{MaxInflight: 1, MaxQueue: maxQueue})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go store.ServeNamespaces(ln, ns) //nolint:errcheck

	// One connection per contender so every request has its own serve
	// goroutine racing for the namespace's admission slot.
	conns := make([]*store.Remote, len(addrs[0]))
	for i := range conns {
		c, err := store.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}

	view := shedView{}
	for _, wave := range addrs {
		gated.arm()
		holderDone := make(chan error, 1)
		go func() {
			_, err := conns[0].Download(wave[0])
			holderDone <- err
		}()
		<-gated.entered // the slot is held and the backend parked

		var wg sync.WaitGroup
		busy := make(chan struct{}, len(wave))
		fail := make(chan error, len(wave))
		for i := 1; i < len(wave); i++ {
			wg.Add(1)
			go func(c *store.Remote, addr int) {
				defer wg.Done()
				_, err := c.Download(addr)
				if _, isBusy := wire.IsBusy(err); isBusy {
					busy <- struct{}{}
				} else if err != nil {
					fail <- err
				}
			}(conns[i], wave[i])
		}
		// Exactly len(wave)-1-maxQueue contenders must shed: the queue
		// cannot drain while the holder is parked, so once that many busy
		// responses arrive the remaining contenders are provably queued.
		wantShed := len(wave) - 1 - maxQueue
		for got := 0; got < wantShed; {
			select {
			case <-busy:
				got++
			case err := <-fail:
				t.Fatalf("contender failed with a non-busy error: %v", err)
			case <-time.After(10 * time.Second):
				t.Fatalf("saw %d busy responses, want %d", got, wantShed)
			}
		}
		gated.open()
		if err := <-holderDone; err != nil {
			t.Fatalf("holder failed: %v", err)
		}
		wg.Wait()
		close(busy)
		extra := 0
		for range busy {
			extra++
		}
		if extra != 0 {
			t.Fatalf("%d extra busy responses after the deterministic %d", extra, wantShed)
		}
		view.perWave = append(view.perWave, wantShed)
	}

	sts, err := conns[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 {
		t.Fatalf("stats entries %d, want 1", len(sts))
	}
	view.accepted = sts[0].Accepted
	view.shed = sts[0].Shed
	view.shape = rec.Transcript().Shape()
	return view
}

func TestShedDecisionIsAddressOblivious(t *testing.T) {
	const waves, perWave = 4, 8

	// Hot-spot workload: every request in every wave downloads record 7.
	hot := make([][]int, waves)
	for w := range hot {
		hot[w] = make([]int, perWave)
		for i := range hot[w] {
			hot[w][i] = 7
		}
	}

	// Uniform workload: all-distinct addresses from a fixed seed.
	src := rng.New(42)
	uniform := make([][]int, waves)
	for w := range uniform {
		uniform[w] = make([]int, perWave)
		for i := range uniform[w] {
			uniform[w][i] = src.Intn(256)
		}
	}

	hotView := runShedWorkload(t, hot)
	uniView := runShedWorkload(t, uniform)

	if hotView.shape != uniView.shape {
		t.Errorf("backend trace shapes diverge:\n  hot-spot: %s\n  uniform:  %s\n(the shed layer leaked address structure into the adversary view)",
			hotView.shape, uniView.shape)
	}
	if hotView.accepted != uniView.accepted || hotView.shed != uniView.shed {
		t.Errorf("shed/accept counts diverge: hot-spot %d/%d vs uniform %d/%d",
			hotView.accepted, hotView.shed, uniView.accepted, uniView.shed)
	}
	// And both match the deterministic prediction: per wave, 1 holder +
	// MaxQueue queued execute, the remaining contenders shed.
	if want := uint64(waves * 3); hotView.accepted != want {
		t.Errorf("accepted %d, want %d", hotView.accepted, want)
	}
	if want := uint64(waves * (perWave - 3)); hotView.shed != want {
		t.Errorf("shed %d, want %d", hotView.shed, want)
	}
}
