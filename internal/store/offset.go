package store

import (
	"fmt"

	"dpstore/internal/block"
)

// Offset is a BatchServer view of a contiguous sub-range of another
// store: addresses [0, n) map to [base, base+n) of the inner store. It is
// how P partitioned scheme instances share ONE physical backend (file,
// sharded, durable engine, or replica cluster) without seeing each
// other's slots: the daemon carves the total physical address space into
// per-partition windows and hands each scheme its own Offset view, so the
// file/sharded/replicated composition underneath applies once, not per
// partition.
//
// The view adds no locking of its own — the inner store's concurrency
// contract carries through unchanged, which is exactly what the
// partitioned proxy needs (per-partition schedulers issuing overlapping
// batches into one shard-locked or pooled backend).
type Offset struct {
	inner BatchServer
	base  int
	n     int
}

// NewOffset returns the [base, base+n) window of inner. The window must
// lie entirely inside the inner store.
func NewOffset(inner BatchServer, base, n int) (*Offset, error) {
	if base < 0 || n <= 0 || base+n > inner.Size() {
		return nil, fmt.Errorf("store: offset window [%d,%d) outside store of %d slots", base, base+n, inner.Size())
	}
	return &Offset{inner: inner, base: base, n: n}, nil
}

// check validates a window-local address.
func (o *Offset) check(addr int) error {
	if addr < 0 || addr >= o.n {
		return fmt.Errorf("store: address %d out of range [0,%d)", addr, o.n)
	}
	return nil
}

// Download implements Server.
func (o *Offset) Download(addr int) (block.Block, error) {
	if err := o.check(addr); err != nil {
		return nil, err
	}
	return o.inner.Download(o.base + addr)
}

// Upload implements Server.
func (o *Offset) Upload(addr int, b block.Block) error {
	if err := o.check(addr); err != nil {
		return err
	}
	return o.inner.Upload(o.base+addr, b)
}

// ReadBatch implements BatchServer. The translated address slice is a
// fresh allocation per call: the window is driven by at most a handful of
// long-lived goroutines (a partition's scheduler and pipeline writer),
// never a per-request hot path.
func (o *Offset) ReadBatch(addrs []int) ([]block.Block, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	shifted := make([]int, len(addrs))
	for i, a := range addrs {
		if err := o.check(a); err != nil {
			return nil, err
		}
		shifted[i] = o.base + a
	}
	return o.inner.ReadBatch(shifted)
}

// WriteBatch implements BatchServer. The caller's ops are never mutated:
// the translated batch is staged in a fresh slice.
func (o *Offset) WriteBatch(ops []WriteOp) error {
	if len(ops) == 0 {
		return nil
	}
	shifted := make([]WriteOp, len(ops))
	for i, op := range ops {
		if err := o.check(op.Addr); err != nil {
			return err
		}
		shifted[i] = WriteOp{Addr: o.base + op.Addr, Block: op.Block}
	}
	return o.inner.WriteBatch(shifted)
}

// Size implements Server: the window length, not the inner store's size.
func (o *Offset) Size() int { return o.n }

// BlockSize implements Server.
func (o *Offset) BlockSize() int { return o.inner.BlockSize() }

// Base returns the window's first inner-store address.
func (o *Offset) Base() int { return o.base }
