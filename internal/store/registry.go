package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// This file holds the small durable-state helpers the daemon composes
// around the Durable engine: a crash-safe recovery-epoch counter and a
// persisted namespace registry. Both use the atomic-rename discipline
// (write temp, fsync, rename, fsync dir), so a crash at any point leaves
// either the old file or the new one — never a torn mixture.

// WriteFileAtomic writes data to path atomically and durably.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: renaming %s: %w", tmp, err)
	}
	return syncDir(filepath.Dir(path))
}

// --- recovery epoch ----------------------------------------------------------

// epochFileSize is the epoch file layout: value u64 ‖ crc u32.
const epochFileSize = 12

// LoadEpoch reads the recovery epoch stored at path; a missing file is
// epoch 0 (a store that has never been opened durably).
func LoadEpoch(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: reading epoch %s: %w", path, err)
	}
	if len(data) != epochFileSize ||
		crc32.Checksum(data[:8], castagnoli) != binary.BigEndian.Uint32(data[8:12]) {
		return 0, fmt.Errorf("%w: epoch file %s", ErrCorrupt, path)
	}
	return binary.BigEndian.Uint64(data[:8]), nil
}

// BumpEpoch increments the recovery epoch at path (creating it at 1) and
// persists it atomically. The daemon calls it once per startup, so every
// process incarnation — clean restart or crash recovery — is
// distinguishable by the epoch it reports in the wire handshake.
func BumpEpoch(path string) (uint64, error) {
	cur, err := LoadEpoch(path)
	if err != nil {
		return 0, err
	}
	next := cur + 1
	data := make([]byte, epochFileSize)
	binary.BigEndian.PutUint64(data[:8], next)
	binary.BigEndian.PutUint32(data[8:12], crc32.Checksum(data[:8], castagnoli))
	if err := WriteFileAtomic(path, data); err != nil {
		return 0, err
	}
	return next, nil
}

// --- namespace registry ------------------------------------------------------

// NamespaceRecord is one persisted namespace: enough to recreate the
// tenant (and find its backing files) after a restart. For block
// namespaces only the shape matters. A record with Proxy set instead
// describes a proxy-backed namespace — Slots/BlockSize are then the
// LOGICAL records × record bytes, Proxy names the scheme, and Partitions
// records the stripe width P — so a restart can refuse flags that
// disagree with the striping the on-disk journals and physical layout
// were built under (resuming P partitions as P' would scramble every
// logical address).
type NamespaceRecord struct {
	Name       string `json:"name"`
	Slots      int    `json:"slots"`
	BlockSize  int    `json:"blockSize"`
	Proxy      string `json:"proxy,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
}

// registryFile is the JSON envelope, versioned like every other on-disk
// format the engine owns.
type registryFile struct {
	Version    int               `json:"version"`
	Namespaces []NamespaceRecord `json:"namespaces"`
}

// SaveRegistry persists the factory-created namespace records atomically.
func SaveRegistry(path string, recs []NamespaceRecord) error {
	data, err := json.MarshalIndent(registryFile{Version: 1, Namespaces: recs}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding registry: %w", err)
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// LoadRegistry reads the persisted namespace records; a missing file is an
// empty registry.
func LoadRegistry(path string) ([]NamespaceRecord, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading registry %s: %w", path, err)
	}
	var rf registryFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return nil, fmt.Errorf("store: decoding registry %s: %w", path, err)
	}
	if rf.Version != 1 {
		return nil, fmt.Errorf("store: registry %s is version %d, this build reads 1", path, rf.Version)
	}
	return rf.Namespaces, nil
}
