package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dpstore/internal/block"
)

// File is a disk-backed Server storing n fixed-size slots contiguously in a
// single file. Slot i lives at byte offset i·blockSize. It models the
// realistic deployment where the untrusted server persists the outsourced
// database; the access-pattern leakage the paper protects against is
// identical whether slots live in RAM or on disk.
type File struct {
	mu        sync.Mutex
	f         *os.File
	n         int
	blockSize int
}

// CreateFile creates (or truncates) path as a file server with n zeroed
// slots of blockSize bytes. The sized file (and its directory entry) are
// fsynced before CreateFile returns, so a crash right after creation can
// never leave a half-sized store for a later OpenFile to reject.
//
// File remains the fast, NON-durable backend: individual Uploads are not
// synced, the layout carries no header, version, or checksums, and a torn
// write can corrupt a slot in place. Deployments that need acknowledged
// writes to survive crashes use Durable, which adds a versioned checksummed
// header, per-page CRCs, and a write-ahead log — and can migrate a legacy
// File store on open.
func CreateFile(path string, n, blockSize int) (*File, error) {
	if n <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("store: invalid file store shape n=%d blockSize=%d", n, blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", path, err)
	}
	if err := f.Truncate(int64(n) * int64(blockSize)); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: sizing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, n: n, blockSize: blockSize}, nil
}

// OpenFile opens an existing file server created by CreateFile. The caller
// must supply the same shape it was created with; the size is validated.
func OpenFile(path string, n, blockSize int) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	if st.Size() != int64(n)*int64(blockSize) {
		f.Close()
		return nil, fmt.Errorf("store: %s has size %d, want %d", path, st.Size(), int64(n)*int64(blockSize))
	}
	return &File{f: f, n: n, blockSize: blockSize}, nil
}

// Download implements Server.
func (s *File) Download(addr int) (block.Block, error) {
	if addr < 0 || addr >= s.n {
		return nil, fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, s.n)
	}
	b := block.New(s.blockSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.ReadAt(b, int64(addr)*int64(s.blockSize)); err != nil {
		return nil, fmt.Errorf("store: reading slot %d: %w", addr, err)
	}
	return b, nil
}

// Upload implements Server.
func (s *File) Upload(addr int, b block.Block) error {
	if addr < 0 || addr >= s.n {
		return fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, s.n)
	}
	if len(b) != s.blockSize {
		return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(b), s.blockSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.WriteAt(b, int64(addr)*int64(s.blockSize)); err != nil {
		return fmt.Errorf("store: writing slot %d: %w", addr, err)
	}
	return nil
}

// fileMaxRunBytes caps the I/O buffer a coalesced run may use: a
// full-database batch still runs as a handful of large sequential
// transfers, but memory stays bounded no matter the store size. A var so
// tests can shrink it to exercise the splitting.
var fileMaxRunBytes = 1 << 20

// maxRunBlocks returns the run-split granularity in blocks.
func (s *File) maxRunBlocks() int {
	m := fileMaxRunBytes / s.blockSize
	if m < 1 {
		m = 1
	}
	return m
}

// ReadBatch implements BatchServer. Requested addresses are processed in
// sorted order and coalesced into runs of consecutive (or duplicate)
// slots, each served by one large sequential ReadAt bounded by
// fileMaxRunBytes — a full-database scan (linear PIR) becomes a few
// sequential reads instead of n seeks. Returned blocks are independent
// copies, like Download's, written straight into request order.
func (s *File) ReadBatch(addrs []int) ([]block.Block, error) {
	for _, a := range addrs {
		if a < 0 || a >= s.n {
			return nil, fmt.Errorf("%w: %d (size %d)", ErrAddr, a, s.n)
		}
	}
	order := make([]int, len(addrs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return addrs[order[a]] < addrs[order[b]] })
	out := make([]block.Block, len(addrs))
	maxRun := s.maxRunBlocks()
	var scratch []byte
	s.mu.Lock()
	defer s.mu.Unlock()
	for start := 0; start < len(order); {
		end := start + 1
		for end < len(order) && addrs[order[end]]-addrs[order[end-1]] <= 1 &&
			addrs[order[end]]-addrs[order[start]] < maxRun {
			end++
		}
		base := addrs[order[start]]
		last := addrs[order[end-1]]
		need := (last - base + 1) * s.blockSize
		if cap(scratch) < need {
			scratch = make([]byte, need)
		}
		buf := scratch[:need]
		if _, err := s.f.ReadAt(buf, int64(base)*int64(s.blockSize)); err != nil {
			return nil, fmt.Errorf("store: reading slots [%d,%d]: %w", base, last, err)
		}
		for _, oi := range order[start:end] {
			off := (addrs[oi] - base) * s.blockSize
			out[oi] = block.Block(buf[off : off+s.blockSize]).Copy()
		}
		start = end
	}
	return out, nil
}

// WriteBatch implements BatchServer with the same coalescing: ops are
// stably sorted by address (preserving batch order among duplicates, so
// the last write to an address wins) and consecutive slots are flushed in
// one WriteAt each.
func (s *File) WriteBatch(ops []WriteOp) error {
	for _, op := range ops {
		if op.Addr < 0 || op.Addr >= s.n {
			return fmt.Errorf("%w: %d (size %d)", ErrAddr, op.Addr, s.n)
		}
		if len(op.Block) != s.blockSize {
			return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(op.Block), s.blockSize)
		}
	}
	sorted := append([]WriteOp(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	maxRun := s.maxRunBlocks()
	var scratch []byte
	s.mu.Lock()
	defer s.mu.Unlock()
	for start := 0; start < len(sorted); {
		end := start + 1
		// Consecutive or duplicate addresses extend the run, capped so the
		// buffer stays bounded; any slice of a run still covers its address
		// span gaplessly, so splitting is safe, and in-order application
		// keeps last-write-wins for duplicates across the split.
		for end < len(sorted) && sorted[end].Addr-sorted[end-1].Addr <= 1 &&
			sorted[end].Addr-sorted[start].Addr < maxRun {
			end++
		}
		base := sorted[start].Addr
		last := sorted[end-1].Addr
		need := (last - base + 1) * s.blockSize
		if cap(scratch) < need {
			scratch = make([]byte, need)
		}
		buf := scratch[:need]
		for _, op := range sorted[start:end] {
			copy(buf[(op.Addr-base)*s.blockSize:], op.Block)
		}
		if _, err := s.f.WriteAt(buf, int64(base)*int64(s.blockSize)); err != nil {
			return fmt.Errorf("store: writing slots [%d,%d]: %w", base, last, err)
		}
		start = end
	}
	return nil
}

// Size implements Server.
func (s *File) Size() int { return s.n }

// BlockSize implements Server.
func (s *File) BlockSize() int { return s.blockSize }

// Sync flushes all written slots to stable storage. File never syncs on
// the write path (that is Durable's job); callers that accept
// crash-loses-recent-writes semantics but want a durable checkpoint —
// bulk loads, clean daemon shutdown — call Sync explicitly.
func (s *File) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing file store: %w", err)
	}
	return nil
}

// Close syncs and releases the underlying file, so a cleanly shut down
// store is on disk even though individual writes never fsynced.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: syncing file store on close: %w", err)
	}
	return s.f.Close()
}
