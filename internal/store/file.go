package store

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync"

	"dpstore/internal/block"
)

// File is a disk-backed Server storing n fixed-size slots contiguously in a
// single file. Slot i lives at byte offset i·blockSize. It models the
// realistic deployment where the untrusted server persists the outsourced
// database; the access-pattern leakage the paper protects against is
// identical whether slots live in RAM or on disk.
type File struct {
	mu        sync.Mutex
	f         *os.File
	n         int
	blockSize int

	// Batch-path scratch, guarded by mu: the vectored-I/O state (iovecs on
	// Linux, the staging buffer elsewhere), the sorted composite keys, and
	// the per-run buffer list handed to readv/writev.
	vec  vectorizer
	keys []uint64
	bufs [][]byte
}

// CreateFile creates (or truncates) path as a file server with n zeroed
// slots of blockSize bytes. The sized file (and its directory entry) are
// fsynced before CreateFile returns, so a crash right after creation can
// never leave a half-sized store for a later OpenFile to reject.
//
// File remains the fast, NON-durable backend: individual Uploads are not
// synced, the layout carries no header, version, or checksums, and a torn
// write can corrupt a slot in place. Deployments that need acknowledged
// writes to survive crashes use Durable, which adds a versioned checksummed
// header, per-page CRCs, and a write-ahead log — and can migrate a legacy
// File store on open.
func CreateFile(path string, n, blockSize int) (*File, error) {
	if n <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("store: invalid file store shape n=%d blockSize=%d", n, blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", path, err)
	}
	if err := f.Truncate(int64(n) * int64(blockSize)); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: sizing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, n: n, blockSize: blockSize}, nil
}

// OpenFile opens an existing file server created by CreateFile. The caller
// must supply the same shape it was created with; the size is validated.
func OpenFile(path string, n, blockSize int) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	if st.Size() != int64(n)*int64(blockSize) {
		f.Close()
		return nil, fmt.Errorf("store: %s has size %d, want %d", path, st.Size(), int64(n)*int64(blockSize))
	}
	return &File{f: f, n: n, blockSize: blockSize}, nil
}

// Download implements Server.
func (s *File) Download(addr int) (block.Block, error) {
	if addr < 0 || addr >= s.n {
		return nil, fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, s.n)
	}
	b := block.New(s.blockSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.ReadAt(b, int64(addr)*int64(s.blockSize)); err != nil {
		return nil, fmt.Errorf("store: reading slot %d: %w", addr, err)
	}
	return b, nil
}

// Upload implements Server.
func (s *File) Upload(addr int, b block.Block) error {
	if addr < 0 || addr >= s.n {
		return fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, s.n)
	}
	if len(b) != s.blockSize {
		return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(b), s.blockSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.WriteAt(b, int64(addr)*int64(s.blockSize)); err != nil {
		return fmt.Errorf("store: writing slot %d: %w", addr, err)
	}
	return nil
}

// fileMaxRunBytes caps the I/O buffer a coalesced run may use: a
// full-database batch still runs as a handful of large sequential
// transfers, but memory stays bounded no matter the store size. A var so
// tests can shrink it to exercise the splitting.
var fileMaxRunBytes = 1 << 20

// maxRunBlocks returns the run-split granularity in blocks.
func (s *File) maxRunBlocks() int {
	m := fileMaxRunBytes / s.blockSize
	if m < 1 {
		m = 1
	}
	return m
}

// sortedAccessors returns addrAt/idxAt views of the batch's addresses in
// sorted order, stable by request index. The fast path packs (addr ‖ index)
// into the reusable uint64 key scratch (see sortKeys' bounds discussion);
// shapes beyond the packing limits fall back to an allocated order slice.
// Callers hold s.mu.
func (s *File) sortedAccessors(addrs []int) (addrAt, idxAt func(k int) int) {
	packed := len(addrs) < 1<<sortKeyBits
	if packed {
		s.keys = s.keys[:0]
		for i, a := range addrs {
			if a >= 1<<(64-sortKeyBits) {
				packed = false
				break
			}
			s.keys = append(s.keys, uint64(a)<<sortKeyBits|uint64(i))
		}
	}
	if packed {
		keys := s.keys
		slices.Sort(keys)
		return func(k int) int { return int(keys[k] >> sortKeyBits) },
			func(k int) int { return int(keys[k] & (1<<sortKeyBits - 1)) }
	}
	order := make([]int, len(addrs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return addrs[order[a]] < addrs[order[b]] })
	return func(k int) int { return addrs[order[k]] }, func(k int) int { return order[k] }
}

// ReadBatch implements BatchServer. Requested addresses are processed in
// sorted order and coalesced into runs of consecutive (or duplicate)
// slots, each served by one vectored read bounded by fileMaxRunBytes that
// scatters straight into the result slab (one preadv syscall per run on
// Linux; one sequential ReadAt plus a staging copy elsewhere) — a
// full-database scan (linear PIR) stays a few sequential transfers instead
// of n seeks. Returned blocks are independent copies carved from one slab,
// written straight into request order; duplicates are read once and copied
// client-side.
func (s *File) ReadBatch(addrs []int) ([]block.Block, error) {
	for _, a := range addrs {
		if a < 0 || a >= s.n {
			return nil, fmt.Errorf("%w: %d (size %d)", ErrAddr, a, s.n)
		}
	}
	out := newSlab(len(addrs), s.blockSize)
	maxRun := s.maxRunBlocks()
	s.mu.Lock()
	defer s.mu.Unlock()
	addrAt, idxAt := s.sortedAccessors(addrs)
	for start := 0; start < len(addrs); {
		end := start + 1
		for end < len(addrs) && addrAt(end)-addrAt(end-1) <= 1 &&
			addrAt(end)-addrAt(start) < maxRun {
			end++
		}
		base, last := addrAt(start), addrAt(end-1)
		// One buffer per distinct slot, in file order: runs extend only by
		// address gaps of ≤ 1, so [base,last] is covered gaplessly and the
		// scatter destinations are the request-order slab blocks themselves.
		s.bufs = s.bufs[:0]
		prev := -1
		for k := start; k < end; k++ {
			if a := addrAt(k); a != prev {
				s.bufs = append(s.bufs, out[idxAt(k)])
				prev = a
			}
		}
		if err := s.vec.readv(s.f, s.bufs, int64(base)*int64(s.blockSize)); err != nil {
			return nil, fmt.Errorf("store: reading slots [%d,%d]: %w", base, last, err)
		}
		// Duplicates: filled from the first occurrence, not the disk.
		for k := start + 1; k < end; k++ {
			if addrAt(k) == addrAt(k-1) {
				copy(out[idxAt(k)], out[idxAt(k-1)])
			}
		}
		start = end
	}
	return out, nil
}

// WriteBatch implements BatchServer with the same coalescing: ops are
// stably sorted by address and consecutive slots are flushed by one
// vectored write per run, gathering directly from the ops' blocks (one
// pwritev syscall on Linux; a staging copy plus one WriteAt elsewhere).
// Duplicate addresses within a run are deduplicated to the last op — a
// vectored write lands each buffer at consecutive file offsets, so the
// earlier duplicates must not occupy a slot — which preserves the batch's
// last-write-wins semantics exactly.
func (s *File) WriteBatch(ops []WriteOp) error {
	for _, op := range ops {
		if op.Addr < 0 || op.Addr >= s.n {
			return fmt.Errorf("%w: %d (size %d)", ErrAddr, op.Addr, s.n)
		}
		if len(op.Block) != s.blockSize {
			return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(op.Block), s.blockSize)
		}
	}
	maxRun := s.maxRunBlocks()
	s.mu.Lock()
	defer s.mu.Unlock()
	addrAt, idxAt := s.sortedAccessorsOps(ops)
	for start := 0; start < len(ops); {
		end := start + 1
		// Consecutive or duplicate addresses extend the run, capped so one
		// transfer stays bounded; any slice of a run still covers its
		// address span gaplessly, so splitting is safe.
		for end < len(ops) && addrAt(end)-addrAt(end-1) <= 1 &&
			addrAt(end)-addrAt(start) < maxRun {
			end++
		}
		base, last := addrAt(start), addrAt(end-1)
		s.bufs = s.bufs[:0]
		for k := start; k < end; {
			j := k
			for j+1 < end && addrAt(j+1) == addrAt(k) {
				j++ // stable sort: the last duplicate is the batch's last write
			}
			s.bufs = append(s.bufs, ops[idxAt(j)].Block)
			k = j + 1
		}
		if err := s.vec.writev(s.f, s.bufs, int64(base)*int64(s.blockSize)); err != nil {
			return fmt.Errorf("store: writing slots [%d,%d]: %w", base, last, err)
		}
		start = end
	}
	return nil
}

// sortedAccessorsOps is sortedAccessors over a WriteOp slice.
func (s *File) sortedAccessorsOps(ops []WriteOp) (addrAt, idxAt func(k int) int) {
	packed := len(ops) < 1<<sortKeyBits
	if packed {
		s.keys = s.keys[:0]
		for i := range ops {
			a := ops[i].Addr
			if a >= 1<<(64-sortKeyBits) {
				packed = false
				break
			}
			s.keys = append(s.keys, uint64(a)<<sortKeyBits|uint64(i))
		}
	}
	if packed {
		keys := s.keys
		slices.Sort(keys)
		return func(k int) int { return int(keys[k] >> sortKeyBits) },
			func(k int) int { return int(keys[k] & (1<<sortKeyBits - 1)) }
	}
	order := make([]int, len(ops))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ops[order[a]].Addr < ops[order[b]].Addr })
	return func(k int) int { return ops[order[k]].Addr }, func(k int) int { return order[k] }
}

// Size implements Server.
func (s *File) Size() int { return s.n }

// BlockSize implements Server.
func (s *File) BlockSize() int { return s.blockSize }

// Sync flushes all written slots to stable storage. File never syncs on
// the write path (that is Durable's job); callers that accept
// crash-loses-recent-writes semantics but want a durable checkpoint —
// bulk loads, clean daemon shutdown — call Sync explicitly.
func (s *File) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing file store: %w", err)
	}
	return nil
}

// Close syncs and releases the underlying file, so a cleanly shut down
// store is on disk even though individual writes never fsynced.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: syncing file store on close: %w", err)
	}
	return s.f.Close()
}
