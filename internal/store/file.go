package store

import (
	"fmt"
	"os"
	"sync"

	"dpstore/internal/block"
)

// File is a disk-backed Server storing n fixed-size slots contiguously in a
// single file. Slot i lives at byte offset i·blockSize. It models the
// realistic deployment where the untrusted server persists the outsourced
// database; the access-pattern leakage the paper protects against is
// identical whether slots live in RAM or on disk.
type File struct {
	mu        sync.Mutex
	f         *os.File
	n         int
	blockSize int
}

// CreateFile creates (or truncates) path as a file server with n zeroed
// slots of blockSize bytes.
func CreateFile(path string, n, blockSize int) (*File, error) {
	if n <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("store: invalid file store shape n=%d blockSize=%d", n, blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", path, err)
	}
	if err := f.Truncate(int64(n) * int64(blockSize)); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: sizing %s: %w", path, err)
	}
	return &File{f: f, n: n, blockSize: blockSize}, nil
}

// OpenFile opens an existing file server created by CreateFile. The caller
// must supply the same shape it was created with; the size is validated.
func OpenFile(path string, n, blockSize int) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	if st.Size() != int64(n)*int64(blockSize) {
		f.Close()
		return nil, fmt.Errorf("store: %s has size %d, want %d", path, st.Size(), int64(n)*int64(blockSize))
	}
	return &File{f: f, n: n, blockSize: blockSize}, nil
}

// Download implements Server.
func (s *File) Download(addr int) (block.Block, error) {
	if addr < 0 || addr >= s.n {
		return nil, fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, s.n)
	}
	b := block.New(s.blockSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.ReadAt(b, int64(addr)*int64(s.blockSize)); err != nil {
		return nil, fmt.Errorf("store: reading slot %d: %w", addr, err)
	}
	return b, nil
}

// Upload implements Server.
func (s *File) Upload(addr int, b block.Block) error {
	if addr < 0 || addr >= s.n {
		return fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, s.n)
	}
	if len(b) != s.blockSize {
		return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(b), s.blockSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.WriteAt(b, int64(addr)*int64(s.blockSize)); err != nil {
		return fmt.Errorf("store: writing slot %d: %w", addr, err)
	}
	return nil
}

// Size implements Server.
func (s *File) Size() int { return s.n }

// BlockSize implements Server.
func (s *File) BlockSize() int { return s.blockSize }

// Close releases the underlying file.
func (s *File) Close() error { return s.f.Close() }
