package store

// Multi-tenant daemon stress test, designed to run under -race (CI does):
// many concurrent clients hammer one serve loop with a mix of per-op and
// batch frames across two namespaces that deliberately reuse the same
// logical addresses, then every byte is verified. It pins the two
// guarantees a multi-tenant deployment lives on: no cross-tenant bleed and
// bit-exact read-your-writes under full concurrency.

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"dpstore/internal/block"
)

func TestStressConcurrentTenants(t *testing.T) {
	const (
		clients = 16
		perNS   = clients / 2 // clients per namespace
		slots   = 240
		bs      = 24
		iters   = 30
	)

	// Two tenants with identical shapes: "alpha" sharded, "beta" single-
	// lock, so the stress covers both backend flavors behind one daemon.
	ns := NewNamespaces()
	alpha, err := NewShardedMem(slots, bs, 4)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	ns.Attach("alpha", alpha)
	ns.Attach("beta", beta)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go ServeNamespaces(ln, ns) //nolint:errcheck
	addr := ln.Addr().String()

	// stamp is the content written by client c at address a, iteration i:
	// namespace, owner, iteration and address are all baked into the
	// pattern id, so any bleed (cross-tenant or cross-client) flips the
	// pattern check.
	stamp := func(nsIdx, c, i, a int) uint64 {
		return uint64(nsIdx)<<40 | uint64(c)<<32 | uint64(i)<<16 | uint64(a)
	}
	names := [2]string{"alpha", "beta"}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			nsIdx := c % 2
			owner := c / 2 // 0..perNS-1 within the namespace
			r, err := DialNamespace(addr, names[nsIdx], slots, bs)
			if err != nil {
				errs[c] = err
				return
			}
			defer r.Close()
			// The client owns addresses ≡ owner (mod perNS) in its
			// namespace. The same logical addresses are owned by another
			// client in the *other* namespace — the bleed detector.
			mine := make([]int, 0, slots/perNS)
			for a := owner; a < slots; a += perNS {
				mine = append(mine, a)
			}
			last := make(map[int]uint64)
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < iters; i++ {
				// Write phase: batch frames on even iterations, per-op
				// upload frames on odd ones.
				if i%2 == 0 {
					ops := make([]WriteOp, len(mine))
					for j, a := range mine {
						id := stamp(nsIdx, owner, i, a)
						ops[j] = WriteOp{Addr: a, Block: block.Pattern(id, bs)}
						last[a] = id
					}
					if err := r.WriteBatch(ops); err != nil {
						errs[c] = err
						return
					}
				} else {
					for _, a := range mine {
						if rng.Intn(2) == 0 {
							continue // leave the previous iteration's value
						}
						id := stamp(nsIdx, owner, i, a)
						if err := r.Upload(a, block.Pattern(id, bs)); err != nil {
							errs[c] = err
							return
						}
						last[a] = id
					}
				}
				// Read phase: alternate batch and per-op download frames.
				if i%2 == 0 {
					blocks, err := r.ReadBatch(mine)
					if err != nil {
						errs[c] = err
						return
					}
					for j, a := range mine {
						if !block.CheckPattern(blocks[j], last[a]) {
							errs[c] = fmt.Errorf("client %d (%s): batch read of slot %d not bit-exact", c, names[nsIdx], a)
							return
						}
					}
				} else {
					a := mine[rng.Intn(len(mine))]
					got, err := r.Download(a)
					if err != nil {
						errs[c] = err
						return
					}
					if !block.CheckPattern(got, last[a]) {
						errs[c] = fmt.Errorf("client %d (%s): download of slot %d not bit-exact", c, names[nsIdx], a)
						return
					}
				}
			}
			// Final sweep of everything the client owns.
			blocks, err := r.ReadBatch(mine)
			if err != nil {
				errs[c] = err
				return
			}
			for j, a := range mine {
				if !block.CheckPattern(blocks[j], last[a]) {
					errs[c] = fmt.Errorf("client %d (%s): final sweep slot %d not bit-exact", c, names[nsIdx], a)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Cross-tenant bleed check from a fresh connection per namespace:
	// every slot must carry its own namespace's tag (bits 40+ of the
	// pattern id distinguish the tenants; owner and address derive from
	// the slot).
	for nsIdx, name := range names {
		r, err := DialNamespace(addr, name, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]int, slots)
		for a := range all {
			all[a] = a
		}
		blocks, err := r.ReadBatch(all)
		if err != nil {
			t.Fatal(err)
		}
		for a, b := range blocks {
			id := b.Uint64()
			if int(id>>40) != nsIdx || int(id)&0xffff != a || int(id>>32)&0xff != a%perNS {
				t.Fatalf("%s slot %d holds foreign id %#x", name, a, id)
			}
			if !block.CheckPattern(b, id) {
				t.Fatalf("%s slot %d corrupted", name, a)
			}
		}
		r.Close()
	}
}
