package store

import (
	"fmt"
)

// ClusterOptions configures DialCluster.
type ClusterOptions struct {
	// Namespace is the namespace to open on every replica daemon (the
	// default namespace when empty). All replicas must report one shape.
	Namespace string
	// Slots and BlockSize are the shape a created namespace should have
	// (zeros defer to the servers), exactly like DialNamespace.
	Slots, BlockSize int
	// Replicated carries the quorum, read policy, and probe cadence.
	Replicated ReplicatedOptions
}

// DialCluster connects to every replica daemon in addrs and assembles a
// Replicated over them: quorum writes fan to all daemons, reads are
// served by one (data-independent choice), and a daemon that dies is
// redialed, resynchronized, and promoted by the repair loop. Each
// replica's initial epoch is taken from its handshake; a replica that
// later reports epoch 0 after a redial (no durability claim — it may
// have restarted empty) or an epoch BELOW the one it was last promoted
// at (its durable state was wiped or replaced) is rebuilt with a full
// copy, while a durable replica at the same or a later epoch is
// resynchronized from the missed-write backlog alone, since a durable
// daemon's acknowledged writes survive its restarts.
//
// An unreachable daemon at dial time is an error: the caller should know
// its cluster is whole before serving. (Failures after that are the
// failover machinery's job.)
func DialCluster(addrs []string, opts ClusterOptions) (*Replicated, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("store: cluster needs at least one replica address")
	}
	// Duplicate addresses would let one daemon ack the quorum twice,
	// silently voiding the W-of-N durability claim (W "replicas" on one
	// machine). An operator typo should fail loudly at startup.
	seen := make(map[string]struct{}, len(addrs))
	for _, a := range addrs {
		if _, dup := seen[a]; dup {
			return nil, fmt.Errorf("store: duplicate replica address %s (each quorum ack must come from a distinct daemon)", a)
		}
		seen[a] = struct{}{}
	}
	dial := func(addr string) (*Remote, error) {
		if opts.Namespace == "" && opts.Slots == 0 && opts.BlockSize == 0 {
			return Dial(addr)
		}
		return DialNamespace(addr, opts.Namespace, opts.Slots, opts.BlockSize)
	}
	specs := make([]ReplicaSpec, 0, len(addrs))
	closeAll := func() {
		for _, s := range specs {
			if c, ok := s.Backend.(interface{ Close() error }); ok {
				c.Close() //nolint:errcheck
			}
		}
	}
	for _, addr := range addrs {
		addr := addr
		r, err := dial(addr)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("store: dialing cluster replica %s: %w", addr, err)
		}
		specs = append(specs, ReplicaSpec{
			Name:    addr,
			Backend: r,
			Redial:  func() (BatchServer, error) { return dial(addr) },
		})
	}
	rep, err := NewReplicated(specs, opts.Replicated)
	if err != nil {
		closeAll()
		return nil, err
	}
	return rep, nil
}
