package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dpstore/internal/block"
)

// This file implements replication as a first-class store subsystem: a
// Replicated BatchServer that fans writes to N replicas with a write
// quorum, serves reads from one replica chosen by a data-INDEPENDENT
// policy, ejects dead replicas, and resynchronizes them when they return
// — all behind the same BatchServer interface every construction, the
// proxy Pipeline, and the wire serve loop already speak.
//
// The privacy argument mirrors the multi-server DP-IR setting (our
// dpir.Multi, Theorem 5.x constructions): the paper's model already
// assumes D ≥ 2 non-colluding replicas, and each replica's view must on
// its own satisfy the DP/obliviousness guarantee. Replication must
// therefore never let REPLICA CHOICE become a side channel:
//
//   - Writes fan out to every replica identically, so each replica's
//     upload trace is the construction's upload trace, unchanged.
//   - The read replica is chosen by health state and a seeded counter
//     only — never by address, block contents, or any other per-request
//     data. Under ReadSticky one replica sees the full download trace and
//     the others see none of it; under ReadRotate each replica sees a
//     health-and-round-robin-determined subsample. In both cases the
//     selection function's inputs are (health events, request ordinal),
//     both of which the adversary observes anyway.
//   - Failover re-issues the SAME address multiset to the next replica,
//     so the client-visible transcript — and the per-query trace shape
//     any replica sees — is invariant across replica failures (pinned by
//     TestReplicatedShapeInvariance).
//
// Consistency model: a WriteBatch is acknowledged once WriteQuorum
// replicas in the Up state have durably applied it (for remote replicas
// backed by the WAL engine, their ack is itself post-fsync). An ack from
// a replica that is Down or still resynchronizing NEVER counts toward
// the quorum — that is the epoch rule: a replica is promoted to Up at a
// recorded epoch, and once its connection dies or its epoch changes it
// must complete a resync before its acks count again. Reads are served
// only by Up replicas that have applied every acknowledged write (a
// per-replica applied-sequence watermark; the read path waits for the
// chosen replica to catch up, which changes timing but never the trace).
//
// Resync: while a replica is Down, every write it misses is recorded in
// a per-replica dirty map (freshest block per address — the only state a
// rejoining replica needs, bounded by the store size). The repair
// goroutine probes Down replicas with exponential backoff; on a
// successful probe (for remote replicas: a redial, with a ResyncCheck
// round trip pinning the epoch against restart races) the replica enters
// Syncing: new writes flow to it again (not counted toward quorum), the
// repair goroutine streams the dirty backlog — or, when the replica
// cannot prove it kept its pre-crash state (epoch 0 after a redial), a
// full copy from a healthy peer — in ScanWindow batches, and a final
// atomic promotion makes it read-eligible. Writes racing the stream are
// protected by a per-replica freshness set: an address written by the
// live path after Syncing began is skipped by the stream (the live write
// is newer), serialized by a per-replica sync mutex.
const (
	// replicatedQueueDepth bounds each replica's in-order write queue
	// before WriteBatch callers feel backpressure.
	replicatedQueueDepth = 64

	// defaultProbeInterval and maxProbeInterval bound the repair loop's
	// exponential backoff between probes of a Down replica.
	defaultProbeInterval = 25 * time.Millisecond
	defaultMaxProbe      = time.Second

	// enqueueTimeout is how long a write fan-out will wait on one
	// replica's full queue before declaring the replica unresponsive and
	// ejecting it. The full queue is the cluster's backpressure — a
	// merely SLOW replica gets the queue depth plus this grace period to
	// catch up, which it does unless it is truly wedged (a black-holed
	// connection blocking its writer inside a TCP send with no error to
	// fail fast on). Without the bound, one wedged replica would stall
	// every cluster write behind sendMu for the TCP timeout (minutes);
	// without the grace, a replica that is healthy but briefly starved
	// would be spuriously ejected and churned through resync.
	enqueueTimeout = time.Second
)

// ErrReplicatedClosed reports an operation on a closed Replicated.
var ErrReplicatedClosed = errors.New("store: replicated cluster closed")

// ErrNoReplicas reports a read with no Up replica to serve it.
var ErrNoReplicas = errors.New("store: no replica available")

// ErrQuorum reports a write that could not gather its quorum.
var ErrQuorum = errors.New("store: write quorum not reached")

// ReadPolicy selects how Replicated picks the replica serving a read.
// Both policies are data-independent: the choice is a function of replica
// health and a per-cluster counter only, never of addresses or contents.
type ReadPolicy int

const (
	// ReadSticky serves every read from one replica (seed-chosen) until
	// it fails, then fails over to the next Up replica and sticks there.
	// One replica sees the full download trace; the others see none.
	ReadSticky ReadPolicy = iota
	// ReadRotate rotates reads across Up replicas round-robin from a
	// seeded start, spreading read load N-ways (the fan-out win measured
	// in EXPERIMENTS.md §Replication).
	ReadRotate
)

// ReplicaState is one replica's position in the failover/resync machine.
type ReplicaState int

const (
	// ReplicaUp: fully caught up; receives writes (acks count toward the
	// quorum) and is eligible to serve reads.
	ReplicaUp ReplicaState = iota
	// ReplicaSyncing: reachable again and receiving new writes, but the
	// missed-write backlog is still streaming; acks do not count and
	// reads are not served from it.
	ReplicaSyncing
	// ReplicaDown: unreachable or failed; writes are recorded in its
	// dirty backlog, reads never touch it, the repair loop probes it.
	ReplicaDown
)

// String returns the state's wire/status name.
func (s ReplicaState) String() string {
	switch s {
	case ReplicaUp:
		return "up"
	case ReplicaSyncing:
		return "syncing"
	case ReplicaDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ReplicaSpec describes one member of a Replicated cluster.
type ReplicaSpec struct {
	// Name identifies the replica in status reports ("replica0" when empty).
	Name string
	// Backend is the replica's store. Must match the other replicas' shape.
	Backend BatchServer
	// Redial, when set, rebuilds the backend after a failure (the TCP
	// case: the old connection is dead, a new one must be dialed). When
	// nil the repair loop probes the existing backend (the in-process
	// case: the backend object survives transient faults).
	Redial func() (BatchServer, error)
}

// ReplicatedOptions configures a Replicated cluster.
type ReplicatedOptions struct {
	// WriteQuorum is W: a write is acknowledged after W Up replicas
	// applied it. 0 means majority (N/2+1). W=N gives read-anywhere
	// strictness at the price of availability; W<N tolerates N-W dead
	// replicas with zero write failures.
	WriteQuorum int
	// ReadPolicy is the data-independent read-replica selection policy.
	ReadPolicy ReadPolicy
	// Seed offsets the initial read-replica choice (sticky) or rotation
	// phase (rotate), so distinct clusters spread load without any
	// per-request data entering the choice.
	Seed int64
	// ProbeInterval is the repair loop's initial backoff between probes
	// of a Down replica (default 25ms, doubling to MaxProbeInterval).
	ProbeInterval time.Duration
	// MaxProbeInterval caps the backoff (default 1s).
	MaxProbeInterval time.Duration
}

// ReplicaStatus is one replica's externally visible health snapshot.
type ReplicaStatus struct {
	Name  string
	State ReplicaState
	// Epoch is the recovery epoch the replica was last promoted at (0
	// for replicas making no durability claim).
	Epoch uint64
	// Dirty is the resync backlog: distinct addresses holding writes the
	// replica has missed.
	Dirty int
	// LastErr is the failure that caused the most recent ejection
	// (empty for a replica that has never been ejected, and cleared on
	// promotion). In-process diagnostic only; not carried on the wire.
	LastErr string
}

// epocher is the optional epoch surface of a replica backend (Remote and
// Pool implement it; in-process stores do not and report 0).
type epocher interface{ Epoch() uint64 }

// resyncChecker is the optional pre-stream epoch pin of a replica
// backend (Remote implements it via MsgResyncReq). It confirms the
// backend still serves the given epoch, closing the race where a replica
// restarts between the repair loop's redial and its resync stream.
type resyncChecker interface {
	ResyncCheck(expect uint64) (epoch uint64, ok bool, err error)
}

// replica is one cluster member's runtime state.
type replica struct {
	name   string
	redial func() (BatchServer, error)
	jobs   chan repJob
	wdone  chan struct{}

	// syncMu serializes live write application against resync-stream
	// windows on this replica's backend, so a stream window can never
	// overwrite an address a newer live write already landed.
	syncMu sync.Mutex

	// The fields below are guarded by Replicated.mu.
	state    ReplicaState
	backend  BatchServer
	epoch    uint64
	applied  uint64             // highest write seq applied (or accounted to dirty)
	enqueued uint64             // highest seq handed (or about to be handed) to the queue
	drained  uint64             // highest seq the writer has finished processing
	dirty    map[int]dirtyEntry // writes missed while Down (freshest per addr)
	fresh    map[int]uint64     // addr → highest seq live-applied since Syncing began
	needFul  bool               // next resync must be a full copy
	lastErr  string             // cause of the most recent ejection
	probeAt  time.Time          // next probe due
	backoff  time.Duration
}

// dirtyEntry is one backlogged write: the block plus the cluster write
// sequence that produced it, so a backlog insert can never replace a
// newer value with an older one regardless of which path (in-order
// queue drain or the full-queue bypass) recorded it, and the resync
// stream can prove an entry it just landed was not superseded before
// deleting it.
type dirtyEntry struct {
	seq  uint64
	data block.Block
}

// shunt records ops in the replica's backlog, newest sequence wins.
// The comparison is <=, not <: a batch may carry the same address twice
// (the pipeline coalesces eviction batches), and applying it in order
// leaves the LATER duplicate behind — the backlog must agree, or the
// resync stream re-installs the earlier duplicate on the rejoining
// replica while every live replica holds the later one. Callers hold
// Replicated.mu.
func (rep *replica) shunt(ops []WriteOp, seq uint64) {
	for _, op := range ops {
		if e, ok := rep.dirty[op.Addr]; !ok || e.seq <= seq {
			rep.dirty[op.Addr] = dirtyEntry{seq: seq, data: op.Block}
		}
	}
}

// noteApplied advances the replica's accounted-sequence watermark.
// Callers hold Replicated.mu. max() rather than assignment: the
// full-queue bypass accounts a batch out of order, ahead of jobs still
// draining through the queue.
func (rep *replica) noteApplied(seq uint64) {
	if seq > rep.applied {
		rep.applied = seq
	}
}

// repJob is one entry in a replica's in-order write queue.
type repJob struct {
	ops []WriteOp
	seq uint64
	res *fanResult
}

// fanResult collects per-replica outcomes for one fanned-out WriteBatch.
// ack() counts an Up replica's successful apply; miss() counts a failure
// or a non-Up apply. The waiter is released as soon as the quorum is
// reached (stragglers keep applying in their queues) or provably
// unreachable.
type fanResult struct {
	mu     sync.Mutex
	acks   int
	misses int
	need   int
	total  int
	ok     bool
	done   chan struct{}
	closed bool
}

func newFanResult(need, total int) *fanResult {
	return &fanResult{need: need, total: total, done: make(chan struct{})}
}

func (f *fanResult) ack() {
	f.mu.Lock()
	f.acks++
	if f.acks >= f.need && !f.closed {
		f.ok, f.closed = true, true
		close(f.done)
	}
	f.mu.Unlock()
}

func (f *fanResult) miss() {
	f.mu.Lock()
	f.misses++
	if f.total-f.misses < f.need && !f.closed {
		f.closed = true
		close(f.done)
	}
	f.mu.Unlock()
}

// wait blocks until the quorum is reached or unreachable.
func (f *fanResult) wait() (acks int, ok bool) {
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.acks, f.ok
}

// Replicated is a BatchServer fronting N replica stores: quorum writes,
// data-independent read selection with automatic failover, and
// epoch-aware resync of rejoining replicas. See the file comment for the
// full model. Safe for concurrent use; Close only after callers quiesce.
type Replicated struct {
	size      int
	blockSize int
	quorum    int
	policy    ReadPolicy
	probeInit time.Duration
	probeMax  time.Duration

	// sendMu serializes write-sequence assignment with the fanout
	// enqueue, so every replica's queue receives the same batches in the
	// same order even when WriteBatch callers race (the same discipline
	// as proxy.Pipeline.sendMu).
	sendMu sync.Mutex

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on replica state/applied changes
	reps   []*replica
	seq    uint64 // last assigned write sequence
	ackSeq uint64 // highest quorum-acknowledged write sequence
	cursor uint64 // rotation counter (ReadRotate)
	sticky int    // current read replica (ReadSticky)
	closed bool

	probeWake chan struct{}
	probeStop chan struct{}
	probeDone chan struct{}
}

// NewReplicated builds a cluster over the given replicas. All backends
// must report the same shape. See ReplicatedOptions for the quorum and
// read-policy semantics.
func NewReplicated(specs []ReplicaSpec, opts ReplicatedOptions) (*Replicated, error) {
	if len(specs) == 0 {
		return nil, errors.New("store: replicated cluster needs at least one replica")
	}
	quorum := opts.WriteQuorum
	if quorum == 0 {
		quorum = len(specs)/2 + 1
	}
	if quorum < 1 || quorum > len(specs) {
		return nil, fmt.Errorf("store: write quorum %d out of range [1,%d]", quorum, len(specs))
	}
	probeInit := opts.ProbeInterval
	if probeInit <= 0 {
		probeInit = defaultProbeInterval
	}
	probeMax := opts.MaxProbeInterval
	if probeMax <= 0 {
		probeMax = defaultMaxProbe
	}
	r := &Replicated{
		quorum:    quorum,
		policy:    opts.ReadPolicy,
		probeInit: probeInit,
		probeMax:  probeMax,
		probeWake: make(chan struct{}, 1),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	for i, spec := range specs {
		if spec.Backend == nil {
			return nil, fmt.Errorf("store: replica %d has no backend", i)
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("replica%d", i)
		}
		if i == 0 {
			r.size, r.blockSize = spec.Backend.Size(), spec.Backend.BlockSize()
			if r.size <= 0 || r.blockSize <= 0 {
				return nil, fmt.Errorf("store: replica %q reports invalid shape %d × %d", name, r.size, r.blockSize)
			}
		} else if spec.Backend.Size() != r.size || spec.Backend.BlockSize() != r.blockSize {
			return nil, fmt.Errorf("store: replica %q has shape %d × %d, want %d × %d",
				name, spec.Backend.Size(), spec.Backend.BlockSize(), r.size, r.blockSize)
		}
		rep := &replica{
			name:    name,
			redial:  spec.Redial,
			backend: spec.Backend,
			jobs:    make(chan repJob, replicatedQueueDepth),
			wdone:   make(chan struct{}),
			dirty:   make(map[int]dirtyEntry),
		}
		if e, ok := spec.Backend.(epocher); ok {
			rep.epoch = e.Epoch()
		}
		r.reps = append(r.reps, rep)
	}
	// Seeded, data-independent starting choice: which replica serves the
	// sticky reads (or the rotation phase). Normalize a negative seed.
	seed := opts.Seed % int64(len(r.reps))
	if seed < 0 {
		seed += int64(len(r.reps))
	}
	r.sticky = int(seed)
	r.cursor = uint64(seed)
	for _, rep := range r.reps {
		go r.runWriter(rep)
	}
	go r.runRepair()
	registerReplicaObs(r)
	return r, nil
}

// Size implements Server.
func (r *Replicated) Size() int { return r.size }

// BlockSize implements Server.
func (r *Replicated) BlockSize() int { return r.blockSize }

// Quorum returns the configured write quorum W.
func (r *Replicated) Quorum() int { return r.quorum }

// ReplicaStatus returns a health snapshot of every replica, in cluster
// order. The wire serve loop exports it via MsgReplStatusReq on daemons
// running a replicated namespace.
func (r *Replicated) ReplicaStatus() []ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ReplicaStatus, len(r.reps))
	for i, rep := range r.reps {
		out[i] = ReplicaStatus{Name: rep.name, State: rep.state, Epoch: rep.epoch, Dirty: len(rep.dirty), LastErr: rep.lastErr}
	}
	return out
}

// validate rejects malformed batches before fanout: a bad address or a
// ragged block would fail on EVERY replica and eject the whole healthy
// cluster for a caller bug.
func (r *Replicated) validate(addrs []int, ops []WriteOp) error {
	for _, a := range addrs {
		if a < 0 || a >= r.size {
			return fmt.Errorf("%w: %d (size %d)", ErrAddr, a, r.size)
		}
	}
	for _, op := range ops {
		if op.Addr < 0 || op.Addr >= r.size {
			return fmt.Errorf("%w: %d (size %d)", ErrAddr, op.Addr, r.size)
		}
		if len(op.Block) != r.blockSize {
			return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(op.Block), r.blockSize)
		}
	}
	return nil
}

// WriteBatch implements BatchServer: assign the batch a cluster-wide
// sequence number, enqueue it on every replica's in-order queue, and
// return once WriteQuorum Up replicas have applied it. Replicas that are
// Down record the batch in their dirty backlog (counted as a miss); a
// replica whose apply fails is ejected. The ops are copied — callers may
// reuse their buffers immediately, as with every other store.
func (r *Replicated) WriteBatch(ops []WriteOp) error {
	if len(ops) == 0 {
		return nil
	}
	if err := r.validate(nil, ops); err != nil {
		return err
	}
	cp := make([]WriteOp, len(ops))
	for i, op := range ops {
		cp[i] = WriteOp{Addr: op.Addr, Block: op.Block.Copy()}
	}
	r.sendMu.Lock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.sendMu.Unlock()
		return ErrReplicatedClosed
	}
	r.seq++
	seq := r.seq
	res := newFanResult(r.quorum, len(r.reps))
	r.mu.Unlock()
	for _, rep := range r.reps {
		// A Down replica's jobs would only transit the queue to be
		// shunted by its writer — and a WEDGED writer (hung inside a
		// dead connection's send) never drains the queue at all, so the
		// backlog is recorded here directly. The shunt shares the lock
		// hold with the state check: the promotion gate (also under mu)
		// either runs after and sees the new backlog (demotes), or ran
		// before and this branch is not taken.
		r.mu.Lock()
		if rep.state == ReplicaDown {
			rep.shunt(cp, seq)
			rep.noteApplied(seq)
			r.mu.Unlock()
			r.cond.Broadcast()
			res.miss()
			continue
		}
		// Record the enqueue intent BEFORE the send: the repair loop's
		// queue-drain barrier reads this under mu, and recording after
		// the send would let it flip to Syncing between the two and
		// stream the backlog while this job is still queued behind it.
		prevEnqueued := rep.enqueued
		rep.enqueued = seq
		r.mu.Unlock()
		select {
		case rep.jobs <- repJob{ops: cp, seq: seq, res: res}:
			continue
		default:
		}
		// Queue full: give the replica a bounded grace period (the
		// cluster's backpressure — a slow-but-alive replica drains well
		// within it), then declare it unresponsive and eject. Blocking
		// indefinitely would stall EVERY cluster write behind one
		// black-holed replica, defeating the W-of-N availability claim;
		// the batch goes to the backlog instead (sequence-tagged, so
		// older queued jobs draining later can never overwrite it).
		timer := time.NewTimer(enqueueTimeout)
		select {
		case rep.jobs <- repJob{ops: cp, seq: seq, res: res}:
			timer.Stop()
		case <-timer.C:
			r.mu.Lock()
			if rep.state != ReplicaDown {
				rep.state = ReplicaDown
				rep.lastErr = "write queue full (replica unresponsive)"
				rep.backoff = r.probeInit
				rep.probeAt = time.Now().Add(rep.backoff)
			}
			rep.shunt(cp, seq)
			rep.noteApplied(seq)
			// The job never entered the queue: roll the enqueue intent
			// back (sendMu serializes senders, so nothing advanced it in
			// between) or the drain barrier would wait for a drain that
			// can never happen.
			rep.enqueued = prevEnqueued
			r.mu.Unlock()
			r.cond.Broadcast()
			r.wakeRepair()
			// Tear down the suspect connection so the wedged writer
			// errors out and drains the queue — resolving the quorum
			// votes of every batch parked in it.
			r.unblockWedged(rep)
			res.miss()
		}
	}
	r.sendMu.Unlock()

	acks, ok := res.wait()
	if !ok {
		return fmt.Errorf("%w: %d/%d acks, need %d", ErrQuorum, acks, len(r.reps), r.quorum)
	}
	r.mu.Lock()
	if seq > r.ackSeq {
		r.ackSeq = seq
	}
	r.mu.Unlock()
	return nil
}

// ReadBatch implements BatchServer: pick one replica by the configured
// data-independent policy, wait until it has applied every acknowledged
// write (read-your-writes across the whole cluster), and read. A failing
// replica is ejected and the SAME batch retries on the next Up replica,
// so a replica failure is invisible to the caller — both in the result
// and in the trace shape.
func (r *Replicated) ReadBatch(addrs []int) ([]block.Block, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	if err := r.validate(addrs, nil); err != nil {
		return nil, err
	}
	for {
		rep, backend, err := r.pickRead()
		if err != nil {
			return nil, err
		}
		blocks, rerr := backend.ReadBatch(addrs)
		if rerr == nil {
			return blocks, nil
		}
		r.eject(rep, backend, rerr)
	}
}

// pickRead chooses the read replica per policy and blocks until it is
// caught up to the acknowledged-write watermark. The choice depends only
// on replica health and the rotation counter — the addresses being read
// are not in scope here at all.
func (r *Replicated) pickRead() (*replica, BatchServer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, nil, ErrReplicatedClosed
		}
		ups := make([]int, 0, len(r.reps))
		for i, rep := range r.reps {
			if rep.state == ReplicaUp {
				ups = append(ups, i)
			}
		}
		if len(ups) == 0 {
			return nil, nil, fmt.Errorf("%w: all %d replicas down or syncing", ErrNoReplicas, len(r.reps))
		}
		var idx int
		switch r.policy {
		case ReadRotate:
			idx = ups[int(r.cursor%uint64(len(ups)))]
			r.cursor++
		default: // ReadSticky
			if r.reps[r.sticky].state == ReplicaUp {
				idx = r.sticky
			} else {
				// Sticky failover: advance to the next Up replica (in
				// cluster order, wrapping) and stick there.
				idx = ups[0]
				for _, u := range ups {
					if u > r.sticky {
						idx = u
						break
					}
				}
				r.sticky = idx
			}
		}
		rep := r.reps[idx]
		watermark := r.ackSeq
		// Wait for the chosen replica to catch up; if it leaves Up while
		// we wait, re-pick from scratch. The wait is BOUNDED: an Up
		// replica whose writer is wedged inside a black-holed connection
		// never errors and never advances, and an unbounded wait here
		// would hang reads for the kernel TCP timeout — the same hazard
		// enqueueTimeout bounds on the write path. On timeout the
		// laggard is ejected (its suspect backend closed so the wedged
		// writer unblocks and drains) and the pick restarts.
		if rep.state == ReplicaUp && rep.applied < watermark {
			deadline := time.Now().Add(enqueueTimeout)
			for rep.state == ReplicaUp && rep.applied < watermark && !r.closed {
				if !time.Now().Before(deadline) {
					rep.state = ReplicaDown
					rep.lastErr = "read watermark wait timed out (replica not applying writes)"
					rep.backoff = r.probeInit
					rep.probeAt = time.Now().Add(rep.backoff)
					break
				}
				// Re-armed every iteration: a one-shot wake can be lost
				// to an unrelated broadcast arriving just before it
				// fires (nobody in Wait at that instant), which would
				// turn this bounded wait back into an indefinite hang
				// in an otherwise idle cluster.
				wake := time.AfterFunc(time.Until(deadline)+time.Millisecond, r.cond.Broadcast)
				r.cond.Wait()
				wake.Stop()
			}
			if rep.state != ReplicaUp {
				// Release mu around the teardown: closing a backend is
				// I/O, and unblockWedged re-acquires mu itself.
				r.mu.Unlock()
				r.cond.Broadcast()
				r.wakeRepair()
				r.unblockWedged(rep)
				r.mu.Lock()
				continue
			}
		}
		if r.closed {
			return nil, nil, ErrReplicatedClosed
		}
		return rep, rep.backend, nil
	}
}

// unblockWedged closes a redialed replica's current backend. A writer
// wedged inside a black-holed connection's send only returns when the
// connection is torn down; closing it converts the wedge into an error,
// so the writer drains its queue (resolving every queued batch's quorum
// vote as a miss) instead of holding W=N callers hostage for the kernel
// TCP timeout. In-process backends (no redial) have no connection to
// tear down and are left alone.
func (r *Replicated) unblockWedged(rep *replica) {
	if rep.redial == nil {
		return
	}
	r.mu.Lock()
	backend := rep.backend
	r.mu.Unlock()
	r.closeBackend(backend)
}

// eject marks a replica Down after an observed failure (sticky ejection:
// it serves nothing until a probe and a resync bring it back) and wakes
// the repair loop. The failure only counts if it came from the replica's
// CURRENT backend: a read that raced a redial-and-promote cycle errors
// on the replaced (closed) connection, and demoting the freshly revived
// replica for that stale failure would churn it — or, with the rest of
// the cluster down, wrongly fail the caller.
func (r *Replicated) eject(rep *replica, observed BatchServer, cause error) {
	r.mu.Lock()
	if rep.backend == observed && rep.state != ReplicaDown {
		rep.state = ReplicaDown
		rep.lastErr = cause.Error()
		rep.backoff = r.probeInit
		rep.probeAt = time.Now().Add(rep.backoff)
	}
	r.mu.Unlock()
	r.cond.Broadcast()
	r.wakeRepair()
}

// Download implements Server via ReadBatch.
func (r *Replicated) Download(addr int) (block.Block, error) {
	blocks, err := r.ReadBatch([]int{addr})
	if err != nil {
		return nil, err
	}
	return blocks[0], nil
}

// Upload implements Server via WriteBatch.
func (r *Replicated) Upload(addr int, b block.Block) error {
	return r.WriteBatch([]WriteOp{{Addr: addr, Block: b}})
}

// runWriter is one replica's apply loop: it drains the in-order queue,
// applying batches to the backend (Up/Syncing) or recording them in the
// dirty backlog (Down). A failed apply ejects the replica and converts
// the batch to backlog — the write is not lost, just deferred to resync.
func (r *Replicated) runWriter(rep *replica) {
	defer close(rep.wdone)
	for j := range rep.jobs {
		r.mu.Lock()
		if rep.state == ReplicaDown {
			// Shunt to the backlog INSIDE the same lock hold that read
			// the state: a separate re-acquisition would leave a window
			// for the repair goroutine to stream-and-promote in between,
			// and backlog inserted into an Up replica is never repaired.
			rep.shunt(j.ops, j.seq)
			rep.noteApplied(j.seq)
			rep.drained = j.seq
			r.mu.Unlock()
			r.cond.Broadcast()
			j.res.miss()
			continue
		}
		backend := rep.backend
		r.mu.Unlock()

		rep.syncMu.Lock()
		err := backend.WriteBatch(j.ops)
		r.mu.Lock()
		if err != nil {
			wasDown := rep.state == ReplicaDown
			rep.state = ReplicaDown
			rep.lastErr = err.Error()
			if !wasDown {
				rep.backoff = r.probeInit
				rep.probeAt = time.Now().Add(rep.backoff)
			}
			rep.shunt(j.ops, j.seq)
			rep.noteApplied(j.seq)
			rep.drained = j.seq
			r.mu.Unlock()
			rep.syncMu.Unlock()
			r.cond.Broadcast()
			r.wakeRepair()
			j.res.miss()
			continue
		}
		countsTowardQuorum := rep.state == ReplicaUp
		if rep.state == ReplicaSyncing {
			// The live write supersedes anything OLDER the resync stream
			// holds for these addresses; record the applied sequence so
			// the stream skips exactly the superseded entries (a NEWER
			// backlog entry — possible via the full-queue bypass — must
			// still be streamed), and drop the not-newer ones.
			for _, op := range j.ops {
				rep.fresh[op.Addr] = j.seq
				if e, ok := rep.dirty[op.Addr]; ok && e.seq <= j.seq {
					delete(rep.dirty, op.Addr)
				}
			}
		}
		rep.noteApplied(j.seq)
		rep.drained = j.seq
		r.mu.Unlock()
		rep.syncMu.Unlock()
		r.cond.Broadcast()
		if countsTowardQuorum {
			j.res.ack()
		} else {
			j.res.miss()
		}
	}
}

// escalateBackoffLocked grows a replica's probe backoff toward the cap.
// Used by repair-CYCLE failures (stream errors, promotion-gate demotes),
// so a persistently broken replica decays to MaxProbeInterval instead of
// churning redial+stream at a constant rate; a FRESH ejection resets to
// ProbeInterval instead, since the first retry should be prompt. Callers
// hold Replicated.mu.
func (r *Replicated) escalateBackoffLocked(rep *replica) {
	rep.backoff *= 2
	if rep.backoff < r.probeInit {
		rep.backoff = r.probeInit
	}
	if rep.backoff > r.probeMax {
		rep.backoff = r.probeMax
	}
	rep.probeAt = time.Now().Add(rep.backoff)
}

// wakeRepair nudges the repair loop without blocking.
func (r *Replicated) wakeRepair() {
	select {
	case r.probeWake <- struct{}{}:
	default:
	}
}

// runRepair is the repair goroutine: it probes Down replicas on an
// exponential backoff and, when one answers, resynchronizes and promotes
// it while the cluster keeps serving.
func (r *Replicated) runRepair() {
	defer close(r.probeDone)
	timer := time.NewTimer(r.probeInit)
	defer timer.Stop()
	for {
		select {
		case <-r.probeStop:
			return
		case <-r.probeWake:
		case <-timer.C:
		}
		next := r.probeDue()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(next)
	}
}

// probeDue probes every Down replica whose backoff has elapsed and
// returns how long until the next one is due.
func (r *Replicated) probeDue() time.Duration {
	now := time.Now()
	next := r.probeMax
	for _, rep := range r.reps {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return r.probeMax
		}
		due := rep.state == ReplicaDown && !rep.probeAt.After(now)
		if rep.state == ReplicaDown && rep.probeAt.After(now) {
			if d := time.Until(rep.probeAt); d < next {
				next = d
			}
		}
		r.mu.Unlock()
		if !due {
			continue
		}
		if !r.tryRevive(rep) {
			r.mu.Lock()
			r.escalateBackoffLocked(rep)
			if d := time.Until(rep.probeAt); d < next {
				next = d
			}
			r.mu.Unlock()
		} else if d := r.probeInit; d < next {
			next = d
		}
	}
	if next <= 0 {
		next = r.probeInit
	}
	return next
}

// tryRevive probes one Down replica and, on success, runs the full
// resync-and-promote sequence. Returns false when the replica stays Down.
func (r *Replicated) tryRevive(rep *replica) bool {
	// Step 1: reach the replica. Remote replicas are redialed (the old
	// connection died with them); in-process replicas are probed with a
	// constant-address read — address 0 always, so the probe itself is
	// data-independent.
	backend := rep.backend
	var newEpoch uint64
	needFull := false
	if rep.redial != nil {
		nb, err := rep.redial()
		if err != nil {
			return false
		}
		if nb.Size() != r.size || nb.BlockSize() != r.blockSize {
			r.closeBackend(nb)
			return false
		}
		backend = nb
		if e, ok := nb.(epocher); ok {
			newEpoch = e.Epoch()
		}
		// Epoch rule: a redialed replica that cannot prove durability
		// (epoch 0) may have restarted with empty state — only a full
		// copy makes it safe. A durable replica at the SAME epoch is the
		// same incarnation (a connection blip), and at a LATER epoch it
		// restarted and recovered its WAL — either way it kept every
		// write it ever acknowledged, and everything since the failure
		// is in our dirty backlog, so the backlog alone resynchronizes
		// it. An epoch REGRESSION means the durable state was wiped or
		// replaced (a fresh -data dir boots at epoch 1): nothing it once
		// acked can be assumed present, so it gets a full copy. (A wipe
		// that lands back on the exact recorded epoch is indistinguishable
		// from a blip without an incarnation id — see DESIGN.md
		// §Replication for the caveat.)
		r.mu.Lock()
		lastEpoch := rep.epoch
		r.mu.Unlock()
		needFull = newEpoch == 0 || newEpoch < lastEpoch
	} else {
		if _, err := backend.ReadBatch([]int{0}); err != nil {
			return false
		}
		r.mu.Lock()
		newEpoch = rep.epoch
		r.mu.Unlock()
	}
	// Step 2: pin the epoch before streaming (remote backends). A
	// replica restarting between our dial and the stream would otherwise
	// receive a backlog computed against its previous life.
	if rc, ok := backend.(resyncChecker); ok {
		ep, match, err := rc.ResyncCheck(newEpoch)
		if err != nil || !match || ep != newEpoch {
			r.closeBackendIfRedialed(rep, backend)
			return false
		}
	}

	// Step 3: enter Syncing — new writes flow to the replica again (via
	// its queue), the stream below fills in everything it missed.
	r.mu.Lock()
	if r.closed || rep.state != ReplicaDown {
		r.mu.Unlock()
		r.closeBackendIfRedialed(rep, backend)
		return true
	}
	rep.state = ReplicaSyncing
	old := rep.backend
	rep.backend = backend
	rep.fresh = make(map[int]uint64)
	if needFull || rep.needFul {
		rep.needFul = true
	}
	full := rep.needFul
	syncFrom := rep.enqueued
	r.mu.Unlock()
	if old != backend {
		r.closeBackend(old)
	}

	// Queue-drain barrier: the backlog may hold entries NEWER than jobs
	// still sitting in the replica's queue (a write recorded straight to
	// the backlog while the queue was draining Down-state jobs). If the
	// stream ran now, a queued older job applying afterwards would
	// overwrite the streamed newer value. Wait until the writer has
	// processed everything enqueued up to the flip — from here on, the
	// queue holds only post-flip jobs, each newer than every backlog
	// entry it overlaps.
	r.mu.Lock()
	for rep.state == ReplicaSyncing && rep.drained < syncFrom && !r.closed {
		r.cond.Wait()
	}
	stillSyncing := rep.state == ReplicaSyncing && !r.closed
	r.mu.Unlock()
	if !stillSyncing {
		// Demoted while draining (a failure or the full-queue timeout);
		// the backlog is intact, the next probe retries.
		return false
	}

	// Step 4: stream. Failure demotes back to Down (backlog preserved —
	// entries are deleted only after their window lands) and the next
	// probe retries.
	var err error
	if full {
		err = r.streamFull(rep, backend)
	} else {
		err = r.streamDirty(rep, backend)
	}
	if err != nil {
		r.mu.Lock()
		rep.state = ReplicaDown
		rep.lastErr = err.Error()
		r.escalateBackoffLocked(rep)
		rep.fresh = nil
		r.mu.Unlock()
		r.cond.Broadcast()
		return false
	}

	// Step 5: atomic promotion. syncMu excludes a live write landing
	// between the stream's last window and the flip, so at this instant
	// every newer write is either applied or queued. The flip is gated on
	// the replica still being Syncing with an EMPTY backlog: a live write
	// that failed in the window after the stream's last batch has already
	// demoted the replica to Down and recorded itself in the backlog, and
	// promoting over that would leave an Up replica permanently missing
	// an acknowledged write (reads routed to it would serve stale data
	// with no repair ever scheduled). Demote-and-retry instead.
	rep.syncMu.Lock()
	r.mu.Lock()
	if rep.state != ReplicaSyncing || len(rep.dirty) != 0 {
		rep.state = ReplicaDown
		rep.fresh = nil
		r.escalateBackoffLocked(rep)
		r.mu.Unlock()
		rep.syncMu.Unlock()
		r.cond.Broadcast()
		return false
	}
	rep.state = ReplicaUp
	rep.epoch = newEpoch
	rep.fresh = nil
	rep.needFul = false
	rep.lastErr = ""
	rep.backoff = 0
	r.mu.Unlock()
	rep.syncMu.Unlock()
	r.cond.Broadcast()
	return true
}

// streamDirty writes the missed-write backlog to the rejoining replica
// in ScanWindow batches, skipping addresses the live path has already
// re-written (they are newer). Entries leave the backlog only when their
// window has landed, so a mid-stream failure loses nothing.
func (r *Replicated) streamDirty(rep *replica, backend BatchServer) error {
	// Entries above this watermark were recorded AFTER the stream began
	// (the full-queue bypass path) and may be newer than writes still
	// draining through the replica's queue — streaming them now could be
	// undone by an older queued job landing later. Leave them in the
	// backlog: the promotion gate sees a non-empty backlog, demotes, and
	// the next resync round (with an advanced watermark, after the queue
	// has drained past them) streams them safely.
	r.mu.Lock()
	watermark := r.seq
	r.mu.Unlock()
	for {
		rep.syncMu.Lock()
		r.mu.Lock()
		ops := make([]WriteOp, 0, ScanWindow)
		seqs := make([]uint64, 0, ScanWindow)
		for addr, e := range rep.dirty {
			if f, ok := rep.fresh[addr]; ok && f >= e.seq {
				// A live write at or past this entry already landed on
				// the replica; the entry is superseded.
				delete(rep.dirty, addr)
				continue
			}
			if e.seq > watermark {
				continue // next round's work (see above)
			}
			ops = append(ops, WriteOp{Addr: addr, Block: e.data})
			seqs = append(seqs, e.seq)
			if len(ops) == ScanWindow {
				break
			}
		}
		r.mu.Unlock()
		if len(ops) == 0 {
			rep.syncMu.Unlock()
			return nil
		}
		if err := backend.WriteBatch(ops); err != nil {
			rep.syncMu.Unlock()
			return err
		}
		r.mu.Lock()
		for i, op := range ops {
			// Delete only the exact entry that landed: a concurrent
			// full-queue bypass may have recorded a NEWER backlog entry
			// for this address (demoting the replica — the promotion
			// gate will catch that), and deleting it here would lose
			// the newer write from the backlog for good.
			if e, ok := rep.dirty[op.Addr]; ok && e.seq == seqs[i] {
				delete(rep.dirty, op.Addr)
			}
		}
		r.mu.Unlock()
		rep.syncMu.Unlock()
	}
}

// streamFull copies the entire array from a healthy Up peer to the
// rejoining replica, window by window, skipping live-written addresses.
// The scan is address-ordered 0..size-1 — a data-independent pattern by
// construction (the peer's extra trace is a full linear scan, the same
// for every workload). The backlog is cleared as the copy covers it.
func (r *Replicated) streamFull(rep *replica, backend BatchServer) error {
	// Every write the rejoining replica ever missed has a sequence number
	// at or below the current one; a peer that has applied up to here
	// holds a superset of the backlog, so copying its state (and clearing
	// the backlog as the copy covers it) can never lose a write to a
	// lagging peer.
	r.mu.Lock()
	watermark := r.seq
	r.mu.Unlock()
	buf := make([]int, 0, ScanWindow)
	for base := 0; base < r.size; base += ScanWindow {
		end := base + ScanWindow
		if end > r.size {
			end = r.size
		}
		buf = buf[:0]
		for a := base; a < end; a++ {
			buf = append(buf, a)
		}
		src, err := r.readPeer(rep, buf, watermark)
		if err != nil {
			return err
		}
		rep.syncMu.Lock()
		r.mu.Lock()
		ops := make([]WriteOp, 0, len(buf))
		for i, a := range buf {
			if _, newer := rep.fresh[a]; newer {
				continue
			}
			ops = append(ops, WriteOp{Addr: a, Block: src[i]})
		}
		r.mu.Unlock()
		if len(ops) > 0 {
			if err := backend.WriteBatch(ops); err != nil {
				rep.syncMu.Unlock()
				return err
			}
		}
		r.mu.Lock()
		for _, a := range buf {
			// The copy supersedes backlog entries at or below the
			// stream watermark; an entry above it was recorded by a
			// concurrent full-queue bypass (which also demoted the
			// replica) and must survive for the next resync round.
			if _, newer := rep.fresh[a]; !newer {
				if e, ok := rep.dirty[a]; ok && e.seq <= watermark {
					delete(rep.dirty, a)
				}
			}
		}
		r.mu.Unlock()
		rep.syncMu.Unlock()
	}
	return nil
}

// readPeer reads addrs from some Up replica that has applied every write
// up to watermark (for the full-copy stream), failing over exactly like
// the client read path.
func (r *Replicated) readPeer(syncing *replica, addrs []int, watermark uint64) ([]block.Block, error) {
	for {
		r.mu.Lock()
		var peer *replica
		// Bounded like the client read path: a wedged Up peer that never
		// applies (and never errors) must not freeze the repair
		// goroutine — and with it every other replica's revival — for
		// the kernel TCP timeout. On deadline the laggard is ejected and
		// the scan re-picks.
		deadline := time.Now().Add(enqueueTimeout)
		for {
			if r.closed {
				r.mu.Unlock()
				return nil, ErrReplicatedClosed
			}
			peer = nil
			for _, rep := range r.reps {
				if rep != syncing && rep.state == ReplicaUp {
					peer = rep
					break
				}
			}
			if peer == nil {
				r.mu.Unlock()
				return nil, fmt.Errorf("%w: no healthy peer to copy from", ErrNoReplicas)
			}
			if peer.applied >= watermark {
				break
			}
			if !time.Now().Before(deadline) {
				peer.state = ReplicaDown
				peer.lastErr = "resync source wait timed out (peer not applying writes)"
				peer.backoff = r.probeInit
				peer.probeAt = time.Now().Add(peer.backoff)
				r.mu.Unlock()
				r.cond.Broadcast()
				r.unblockWedged(peer)
				r.mu.Lock()
				deadline = time.Now().Add(enqueueTimeout)
				continue
			}
			wake := time.AfterFunc(time.Until(deadline)+time.Millisecond, r.cond.Broadcast)
			r.cond.Wait()
			wake.Stop()
		}
		backend := peer.backend
		r.mu.Unlock()
		blocks, err := backend.ReadBatch(addrs)
		if err == nil {
			return blocks, nil
		}
		r.eject(peer, backend, err)
	}
}

// closeBackend closes a backend if it is closable (a Remote connection).
func (r *Replicated) closeBackend(b BatchServer) {
	if c, ok := b.(interface{ Close() error }); ok {
		c.Close() //nolint:errcheck
	}
}

// closeBackendIfRedialed discards a freshly dialed backend that will not
// be installed (only redialed backends are ours to close).
func (r *Replicated) closeBackendIfRedialed(rep *replica, b BatchServer) {
	if rep.redial != nil {
		r.closeBackend(b)
	}
}

// Flush blocks until every enqueued write has been applied or accounted
// to a dirty backlog on every replica — after it returns, all Up
// replicas hold identical contents. Tests and shutdown paths use it.
func (r *Replicated) Flush() {
	r.mu.Lock()
	seq := r.seq
	for {
		done := true
		for _, rep := range r.reps {
			if rep.applied < seq {
				done = false
				break
			}
		}
		if done || r.closed {
			r.mu.Unlock()
			return
		}
		r.cond.Wait()
	}
}

// Close stops the repair loop and the replica writers and closes every
// redialed backend. Callers must have quiesced (no in-flight operations),
// like Pipeline.Close.
func (r *Replicated) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
	close(r.probeStop)
	<-r.probeDone
	r.sendMu.Lock()
	for _, rep := range r.reps {
		close(rep.jobs)
	}
	r.sendMu.Unlock()
	// Close redialed backends BEFORE waiting for the writers: a writer
	// wedged inside a black-holed connection's send only unblocks when
	// that connection is torn down, so waiting first would hang shutdown
	// for the kernel TCP timeout. Closing under mu keeps the snapshot
	// consistent with any concurrent backend swap.
	for _, rep := range r.reps {
		if rep.redial != nil {
			r.mu.Lock()
			backend := rep.backend
			r.mu.Unlock()
			r.closeBackend(backend)
		}
	}
	for _, rep := range r.reps {
		<-rep.wdone
	}
	return nil
}
