package store

import (
	"net"
	"path/filepath"
	"testing"

	"dpstore/internal/block"
)

func BenchmarkMemDownload(b *testing.B) {
	b.ReportAllocs()
	m, err := NewMem(1024, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Download(i % 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemUpload(b *testing.B) {
	b.ReportAllocs()
	m, err := NewMem(1024, 64)
	if err != nil {
		b.Fatal(err)
	}
	blk := block.Pattern(1, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Upload(i%1024, blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountingOverhead(b *testing.B) {
	b.ReportAllocs()
	m, err := NewMem(1024, 64)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCounting(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Download(i % 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileDownload(b *testing.B) {
	b.ReportAllocs()
	f, err := CreateFile(filepath.Join(b.TempDir(), "bench.dat"), 1024, 64)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Download(i % 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemoteRoundTrip(b *testing.B) {
	b.ReportAllocs()
	backing, err := NewMem(1024, 64)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, backing) //nolint:errcheck
	r, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Download(i % 1024); err != nil {
			b.Fatal(err)
		}
	}
}
