package store_test

// Crash-recovery harness: the WALTap hook simulates a process crash at a
// configurable WAL byte offset — optionally leaving a torn prefix of the
// in-flight record on disk, the way a real crash mid-append would — and
// the test loops that offset across a whole scheme workload (the same
// offset-sweep discipline as dpram's TestTransientFaultConsistency, but
// for durability instead of transport faults).
//
// The invariant under test is the engine's durability contract: after
// reopening (WAL replay + torn-tail discard), the store is BIT-IDENTICAL
// to the last acknowledged state, tracked by a Mem shadow that applies
// exactly the batches the engine acknowledged. The workloads are real
// scheme executions — DP-RAM and Path ORAM — so the acknowledged batches
// have the exact shapes (setup bulk upload, per-access overwrite, path
// rewrite) a deployed daemon produces.

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

// errSimulatedCrash marks the injected failure.
var errSimulatedCrash = errors.New("simulated crash")

// crashTap fails the WAL append that would extend the log past failAt,
// writing only `torn` bytes of it (the torn tail a real crash leaves).
type crashTap struct {
	failAt int64
	torn   int
	fired  bool
}

func (c *crashTap) Append(off int64, rec []byte) ([]byte, error) {
	if off+int64(len(rec)) <= c.failAt {
		return rec, nil
	}
	c.fired = true
	t := c.torn
	if t > len(rec) {
		t = len(rec)
	}
	return rec[:t], errSimulatedCrash
}

// crashStore shadows a Durable with a Mem that receives exactly the
// acknowledged batches: the ground truth for "last acked state".
type crashStore struct {
	d      *store.Durable
	shadow *store.Mem
}

func newCrashStore(t *testing.T, base string, n, blockSize int, tap store.WALTap) *crashStore {
	t.Helper()
	d, err := store.CreateDurable(base, n, blockSize, store.DurableOptions{Tap: tap})
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.NewMem(n, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return &crashStore{d: d, shadow: m}
}

func (c *crashStore) Download(addr int) (block.Block, error) { return c.d.Download(addr) }
func (c *crashStore) ReadBatch(addrs []int) ([]block.Block, error) {
	return c.d.ReadBatch(addrs)
}
func (c *crashStore) Size() int      { return c.d.Size() }
func (c *crashStore) BlockSize() int { return c.d.BlockSize() }

func (c *crashStore) Upload(addr int, b block.Block) error {
	return c.WriteBatch([]store.WriteOp{{Addr: addr, Block: b}})
}

// WriteBatch forwards to the engine and mirrors ACKNOWLEDGED batches into
// the shadow. An error means the engine did not ack — by the durability
// contract the batch must then be invisible after recovery, so the shadow
// skips it.
func (c *crashStore) WriteBatch(ops []store.WriteOp) error {
	if err := c.d.WriteBatch(ops); err != nil {
		return err
	}
	return c.shadow.WriteBatch(ops)
}

// verifyRecovered reopens the crashed engine and compares every slot
// against the shadow.
func verifyRecovered(t *testing.T, base string, shadow *store.Mem, label string) {
	t.Helper()
	d, err := store.OpenDurable(base, shadow.Size(), shadow.BlockSize(), store.DurableOptions{})
	if err != nil {
		t.Fatalf("%s: recovery open failed: %v", label, err)
	}
	defer d.Close()
	addrs := make([]int, shadow.Size())
	for i := range addrs {
		addrs[i] = i
	}
	got, err := d.ReadBatch(addrs)
	if err != nil {
		t.Fatalf("%s: reading recovered store: %v", label, err)
	}
	want, err := shadow.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: slot %d diverges from last acked state after recovery", label, i)
		}
	}
}

// dpramWorkload runs setup + accesses over the given server, stopping at
// the first error (the simulated crash surfaces through the scheme as an
// ordinary storage failure).
func dpramWorkload(t *testing.T, cs *crashStore, seed int64) {
	t.Helper()
	const n, recSize = 64, 24
	db, err := block.NewDatabase(n, recSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		copy(db.Get(i), fmt.Sprintf("rec-%03d", i))
	}
	opts := dpram.Options{Rand: rng.New(seed), StashParam: 8}
	cl, err := dpram.Setup(db, cs, opts)
	if err != nil {
		if errors.Is(err, errSimulatedCrash) {
			return
		}
		t.Fatal(err)
	}
	for q := 0; q < 48; q++ {
		var aerr error
		if q%3 == 0 {
			rec := block.New(recSize)
			copy(rec, fmt.Sprintf("upd-%03d", q))
			_, aerr = cl.Write(q%n, rec)
		} else {
			_, aerr = cl.Read((q * 7) % n)
		}
		if aerr != nil {
			return // crashed: the harness verifies recovery next
		}
	}
}

// pathoramWorkload is the Path ORAM counterpart: path rewrites are the
// largest, most state-entangled batches in the module.
func pathoramWorkload(t *testing.T, cs *crashStore, seed int64) {
	t.Helper()
	const n, recSize = 16, 16
	db, err := block.NewDatabase(n, recSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		copy(db.Get(i), fmt.Sprintf("oram-%02d", i))
	}
	opts := pathoram.Options{Rand: rng.New(seed)}
	o, err := pathoram.Setup(db, cs, opts)
	if err != nil {
		if errors.Is(err, errSimulatedCrash) {
			return
		}
		t.Fatal(err)
	}
	for q := 0; q < 24; q++ {
		var aerr error
		if q%2 == 0 {
			rec := block.New(recSize)
			copy(rec, fmt.Sprintf("new-%02d", q))
			_, aerr = o.Write(q%n, rec)
		} else {
			_, aerr = o.Read((q * 5) % n)
		}
		if aerr != nil {
			return
		}
	}
}

// partitionedWorkload stripes one 64-record tenant over four independent
// DP-RAM instances, each running over its own store.Offset window of the
// SAME crash-injected engine — the daemon's -partitions layout. All four
// partitions append to one WAL, so a crash lands mid-batch of exactly one
// partition while the acked state of its siblings, interleaved through the
// same log, must recover bit-identical too.
func partitionedWorkload(t *testing.T, cs *crashStore, seed int64) {
	t.Helper()
	const n, recSize, parts = 64, 24, 4
	cls := make([]*dpram.Client, parts)
	base := 0
	for i := 0; i < parts; i++ {
		ni := store.ShardSlots(n, parts, i)
		db, err := block.NewDatabase(ni, recSize)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < ni; j++ {
			copy(db.Get(j), fmt.Sprintf("p%d-%03d", i, j))
		}
		win, err := store.NewOffset(cs, base, ni)
		if err != nil {
			t.Fatal(err)
		}
		base += ni
		// The daemon's per-partition seed mixing: decorrelated coin
		// streams from one tenant seed.
		opts := dpram.Options{Rand: rng.New(int64(uint64(seed) ^ uint64(i)*0xbf58476d1ce4e5b9)), StashParam: 8}
		cl, err := dpram.Setup(db, win, opts)
		if err != nil {
			if errors.Is(err, errSimulatedCrash) {
				return
			}
			t.Fatal(err)
		}
		cls[i] = cl
	}
	for q := 0; q < 64; q++ {
		u := (q * 11) % n // visits every partition
		cl, local := cls[u%parts], u/parts
		var aerr error
		if q%3 == 0 {
			rec := block.New(recSize)
			copy(rec, fmt.Sprintf("upd-%03d", q))
			_, aerr = cl.Write(local, rec)
		} else {
			_, aerr = cl.Read(local)
		}
		if aerr != nil {
			return // crashed: the harness verifies recovery next
		}
	}
}

// shapeFor returns the physical store shape a workload needs.
func shapeFor(scheme string) (n, blockSize int) {
	switch scheme {
	case "dpram":
		return 64, dpram.ServerBlockSize(24, dpram.Options{})
	case "pathoram":
		return pathoram.TreeShape(16, 16, pathoram.Options{})
	case "partitioned":
		// 4 × ShardSlots(64, 4, i) windows tile the same 64 slots the
		// single-scheme dpram workload uses.
		return 64, dpram.ServerBlockSize(24, dpram.Options{})
	}
	panic("unknown scheme")
}

func runWorkload(t *testing.T, scheme string, cs *crashStore, seed int64) {
	switch scheme {
	case "dpram":
		dpramWorkload(t, cs, seed)
	case "pathoram":
		pathoramWorkload(t, cs, seed)
	case "partitioned":
		partitionedWorkload(t, cs, seed)
	}
}

// TestCrashRecoveryTornWAL is the torn-write loop: for each scheme, crash
// the WAL at a sweep of byte offsets × torn-prefix lengths covering the
// whole workload (setup included), recover, and require bit-identity with
// the acked shadow. This is the test the CI crash gate runs twice.
func TestCrashRecoveryTornWAL(t *testing.T) {
	const crashPoints = 24 // offsets per scheme per torn length
	for _, scheme := range []string{"dpram", "pathoram", "partitioned"} {
		t.Run(scheme, func(t *testing.T) {
			n, blockSize := shapeFor(scheme)
			// Dry run with an unreachable crash offset to learn the total
			// WAL bytes the workload appends.
			dry := &crashTap{failAt: 1 << 40}
			cs := newCrashStore(t, filepath.Join(t.TempDir(), "dry"), n, blockSize, dry)
			runWorkload(t, scheme, cs, 42)
			total := cs.d.WALSize()
			if err := cs.d.Close(); err != nil {
				t.Fatal(err)
			}
			if total < 1024 {
				t.Fatalf("workload appended only %d WAL bytes; harness mis-wired", total)
			}
			step := total / crashPoints
			if step < 1 {
				step = 1
			}
			for _, torn := range []int{0, 1, 7, 64} {
				for off := int64(1); off < total; off += step {
					label := fmt.Sprintf("%s/off=%d/torn=%d", scheme, off, torn)
					tap := &crashTap{failAt: off, torn: torn}
					base := filepath.Join(t.TempDir(), "crash")
					cs := newCrashStore(t, base, n, blockSize, tap)
					runWorkload(t, scheme, cs, 42)
					if !tap.fired {
						t.Fatalf("%s: tap never fired (offset past workload?)", label)
					}
					// Abandon without Close — that is the crash — and verify.
					verifyRecovered(t, base, cs.shadow, label)
				}
			}
		})
	}
}

// TestCrashRecoveryCleanRun: the same harness with no crash — the full
// workload lands, closes cleanly, and recovery is a no-op that still
// matches the shadow (guards the harness itself against false positives).
func TestCrashRecoveryCleanRun(t *testing.T) {
	for _, scheme := range []string{"dpram", "pathoram", "partitioned"} {
		n, blockSize := shapeFor(scheme)
		base := filepath.Join(t.TempDir(), "clean")
		cs := newCrashStore(t, base, n, blockSize, nil)
		runWorkload(t, scheme, cs, 42)
		if err := cs.d.Close(); err != nil {
			t.Fatal(err)
		}
		verifyRecovered(t, base, cs.shadow, scheme+"/clean")
	}
}
