package store

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dpstore/internal/wire"
)

// RetryPolicy makes busy-shed operations retry instead of surfacing
// wire.BusyError to the caller. The daemon's admission control sheds a
// frame before decoding it and attaches a RetryAfter hint sized to its
// current queue depth; until now clients decoded that hint and dropped it
// on the floor. A policy closes the loop: honor the hint as the backoff
// floor, add full jitter so a synchronized client herd doesn't re-arrive
// as one spike, cap the attempts, and bound the total time spent.
//
// Retrying whole operations is safe because every block-layer op is
// idempotent: Download/ReadBatch are pure reads, Upload/WriteBatch set
// absolute values (a replay after a half-observed first attempt converges
// to the same state). The shed itself happens before the server decodes
// the payload, so a shed attempt definitively did not execute.
//
// The zero policy retries nothing; use DefaultRetryPolicy for sane knobs.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first. 0 or
	// 1 disables retrying.
	MaxAttempts int
	// Budget bounds the summed backoff sleep across one operation; once
	// spent, the next busy error surfaces to the caller. 0 means no
	// budget cap.
	Budget time.Duration
	// MinBackoff floors the per-attempt backoff base when the server's
	// RetryAfter hint is zero or absent (default 1ms).
	MinBackoff time.Duration
	// MaxBackoff caps the per-attempt backoff base (default 250ms).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy retries up to 8 attempts over at most 2 s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 8, Budget: 2 * time.Second}
}

func (rp RetryPolicy) enabled() bool { return rp.MaxAttempts > 1 }

func (rp RetryPolicy) minBackoff() time.Duration {
	if rp.MinBackoff > 0 {
		return rp.MinBackoff
	}
	return time.Millisecond
}

func (rp RetryPolicy) maxBackoff() time.Duration {
	if rp.MaxBackoff > 0 {
		return rp.MaxBackoff
	}
	return 250 * time.Millisecond
}

// retrier runs operations under a RetryPolicy with its own jitter source
// (the global rand would contend across pooled connections).
type retrier struct {
	policy RetryPolicy
	mu     sync.Mutex
	rng    *rand.Rand
	sleep  func(time.Duration) // test seam; time.Sleep when nil
	// retries counts busy-shed attempts that were retried (not the ones
	// that surfaced); the load harness reports it.
	retries int64
}

func newRetrier(rp RetryPolicy) *retrier {
	return &retrier{policy: rp, rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

func (rt *retrier) jitter(base time.Duration) time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if base <= 0 {
		return 0
	}
	return time.Duration(rt.rng.Int63n(int64(base)))
}

func (rt *retrier) addRetry() {
	rt.mu.Lock()
	rt.retries++
	rt.mu.Unlock()
}

func (rt *retrier) Retries() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.retries
}

// do runs op, retrying busy errors per the policy. Each busy attempt
// sleeps a full-jitter draw from [0, base), where base starts at
// max(hint, MinBackoff), doubles per attempt, and is capped by
// MaxBackoff. Non-busy errors surface immediately; so does a busy error
// once attempts run out or the next backoff no longer fits the remaining
// budget.
func (rt *retrier) do(op func() error) error {
	var spent time.Duration
	backoff := rt.policy.minBackoff()
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		hint, busy := wire.IsBusy(err)
		if !busy || attempt >= rt.policy.MaxAttempts {
			return err
		}
		base := backoff
		if hint > base {
			base = hint
		}
		if max := rt.policy.maxBackoff(); base > max {
			base = max
		}
		if budget := rt.policy.Budget; budget > 0 && base > budget-spent {
			return fmt.Errorf("store: retry budget %v exhausted after %d attempts: %w", budget, attempt, err)
		}
		d := rt.jitter(base)
		spent += d
		rt.addRetry()
		if rt.sleep != nil {
			rt.sleep(d)
		} else {
			time.Sleep(d)
		}
		if backoff < rt.policy.maxBackoff() {
			backoff *= 2
		}
	}
}

// SetRetryPolicy arms busy-retry on every public operation of the pool.
// Call it before sharing the pool across goroutines; the retry loop
// claims a fresh connection per attempt, so one shed client backing off
// does not pin a pool slot.
func (p *Pool) SetRetryPolicy(rp RetryPolicy) {
	if rp.enabled() {
		p.retry = newRetrier(rp)
	} else {
		p.retry = nil
	}
}

// Retries reports how many busy-shed attempts the pool has retried (0
// without a policy).
func (p *Pool) Retries() int64 {
	if p.retry == nil {
		return 0
	}
	return p.retry.Retries()
}

// SetRetryPolicy arms busy-retry on every public operation of this
// connection. Call it before sharing the Remote across goroutines.
func (rs *Remote) SetRetryPolicy(rp RetryPolicy) {
	if rp.enabled() {
		rs.retry = newRetrier(rp)
	} else {
		rs.retry = nil
	}
}

// Retries reports how many busy-shed attempts this connection has
// retried (0 without a policy).
func (rs *Remote) Retries() int64 {
	if rs.retry == nil {
		return 0
	}
	return rs.retry.Retries()
}
