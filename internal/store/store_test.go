package store

import (
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"dpstore/internal/block"
)

// exercise runs a common conformance suite against any Server.
func exercise(t *testing.T, s Server, n, bs int) {
	t.Helper()
	if s.Size() != n || s.BlockSize() != bs {
		t.Fatalf("shape = (%d,%d), want (%d,%d)", s.Size(), s.BlockSize(), n, bs)
	}
	// Fresh slots read back zero.
	b, err := s.Download(0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsZero() {
		t.Fatal("fresh slot not zero")
	}
	// Round trip.
	want := block.Pattern(123, bs)
	if err := s.Upload(n-1, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Download(n - 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("round trip mismatch")
	}
	// Download returns a copy: mutating it must not affect the store.
	got[0] ^= 0xff
	again, _ := s.Download(n - 1)
	if !again.Equal(want) {
		t.Fatal("Download returned aliased storage")
	}
	// Upload copies: mutating the source later must not affect the store.
	src := block.Pattern(7, bs)
	if err := s.Upload(1, src); err != nil {
		t.Fatal(err)
	}
	src[0] ^= 0xff
	b1, _ := s.Download(1)
	if !b1.Equal(block.Pattern(7, bs)) {
		t.Fatal("Upload kept a reference to caller memory")
	}
	// Address range errors.
	if _, err := s.Download(-1); err == nil {
		t.Fatal("negative address accepted")
	}
	if _, err := s.Download(n); err == nil {
		t.Fatal("address == size accepted")
	}
	if err := s.Upload(n, want); err == nil {
		t.Fatal("upload out of range accepted")
	}
	// Size errors.
	if err := s.Upload(0, block.New(bs+1)); err == nil {
		t.Fatal("wrong-size upload accepted")
	}
}

func TestMemConformance(t *testing.T) {
	m, err := NewMem(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	exercise(t, m, 8, 32)
}

func TestMemRejectsBadShape(t *testing.T) {
	if _, err := NewMem(0, 32); err == nil {
		t.Fatal("accepted zero slots")
	}
	if _, err := NewMem(4, 0); err == nil {
		t.Fatal("accepted zero block size")
	}
}

func TestNewMemFrom(t *testing.T) {
	db, _ := block.PatternDatabase(4, 16)
	m, err := NewMemFrom(db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b, _ := m.Download(i)
		if !block.CheckPattern(b, uint64(i)) {
			t.Fatalf("slot %d does not hold pattern", i)
		}
	}
	// Mutating db afterwards must not affect the server.
	db.Get(0)[0] ^= 0xff
	b, _ := m.Download(0)
	if !block.CheckPattern(b, 0) {
		t.Fatal("server aliases the source database")
	}
}

func TestFileConformance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	f, err := CreateFile(path, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	exercise(t, f, 8, 32)
}

func TestFilePersistsAcrossOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	f, err := CreateFile(path, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := block.Pattern(5, 16)
	if err := f.Upload(2, want); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := OpenFile(path, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := g.Download(2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("data did not persist")
	}
}

func TestOpenFileValidatesShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	f, _ := CreateFile(path, 4, 16)
	f.Close()
	if _, err := OpenFile(path, 5, 16); err == nil {
		t.Fatal("wrong shape accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing"), 4, 16); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCountingMeters(t *testing.T) {
	m, _ := NewMem(8, 16)
	c := NewCounting(m)
	exercise(t, c, 8, 16) // conformance holds through the wrapper

	c.Reset()
	b := block.Pattern(1, 16)
	for i := 0; i < 3; i++ {
		if _, err := c.Download(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Upload(5, b); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Downloads != 3 || st.Uploads != 1 {
		t.Fatalf("ops = (%d,%d), want (3,1)", st.Downloads, st.Uploads)
	}
	if st.Ops() != 4 {
		t.Fatalf("Ops() = %d, want 4", st.Ops())
	}
	if st.BytesDown != 48 || st.BytesUp != 16 {
		t.Fatalf("bytes = (%d,%d), want (48,16)", st.BytesDown, st.BytesUp)
	}
	if st.TouchedUnique != 2 {
		t.Fatalf("touched = %d, want 2", st.TouchedUnique)
	}
	// Failed operations are not counted.
	if _, err := c.Download(100); err == nil {
		t.Fatal("expected error")
	}
	if c.Stats().Downloads != 3 {
		t.Fatal("failed download was counted")
	}
	c.Reset()
	if c.Stats().Ops() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCountingConcurrent(t *testing.T) {
	m, _ := NewMem(16, 16)
	c := NewCounting(m)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := c.Download(i % 16); err != nil {
					t.Error(err)
					return
				}
				if err := c.Upload(i%16, block.New(16)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Downloads != 800 || st.Uploads != 800 {
		t.Fatalf("ops = (%d,%d), want (800,800)", st.Downloads, st.Uploads)
	}
}

func TestRemoteOverLoopback(t *testing.T) {
	backing, _ := NewMem(8, 32)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, backing) //nolint:errcheck // returns on listener close

	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	exercise(t, r, 8, 32)

	// Writes through the remote are visible in the backing store.
	want := block.Pattern(9, 32)
	if err := r.Upload(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := backing.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("remote upload did not reach backing store")
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	backing, _ := NewMem(32, 16)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, backing) //nolint:errcheck

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := Dial(ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close()
			for i := 0; i < 50; i++ {
				addr := (g*8 + i) % 32
				if err := r.Upload(addr, block.Pattern(uint64(addr), 16)); err != nil {
					t.Error(err)
					return
				}
				b, err := r.Download(addr)
				if err != nil {
					t.Error(err)
					return
				}
				if !block.CheckPattern(b, uint64(addr)) {
					t.Errorf("slot %d corrupted", addr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRemoteServerSideErrors(t *testing.T) {
	backing, _ := NewMem(4, 16)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, backing) //nolint:errcheck

	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Download(99); err == nil {
		t.Fatal("out-of-range download succeeded over the wire")
	}
	// The connection must survive a server-side error.
	if _, err := r.Download(0); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestMemQuickAgainstMap(t *testing.T) {
	// Property: Mem behaves like a map from address to last uploaded value.
	m, _ := NewMem(16, 16)
	ref := make(map[int]block.Block)
	f := func(addr uint8, id uint64, write bool) bool {
		a := int(addr) % 16
		if write {
			b := block.Pattern(id, 16)
			if err := m.Upload(a, b); err != nil {
				return false
			}
			ref[a] = b
			return true
		}
		got, err := m.Download(a)
		if err != nil {
			return false
		}
		want, ok := ref[a]
		if !ok {
			return got.IsZero()
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErrAddrWrapped(t *testing.T) {
	m, _ := NewMem(2, 16)
	_, err := m.Download(5)
	if !errors.Is(err, ErrAddr) {
		t.Fatalf("err = %v, want ErrAddr", err)
	}
}
