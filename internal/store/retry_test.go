package store

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/wire"
	"dpstore/internal/workload"
)

// busyAfter returns an op that fails busy (with the given hint) for the
// first n calls, then succeeds, counting calls.
func busyAfter(n int, hint time.Duration, calls *int) func() error {
	return func() error {
		*calls++
		if *calls <= n {
			return fmt.Errorf("op: %w", &wire.BusyError{RetryAfter: hint, Queued: 3})
		}
		return nil
	}
}

// TestRetrierHonorsHint: the backoff base is the server hint (when above
// the floor) and every sleep is a full-jitter draw strictly below it.
func TestRetrierHonorsHint(t *testing.T) {
	rt := newRetrier(RetryPolicy{MaxAttempts: 5})
	var sleeps []time.Duration
	rt.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	calls := 0
	if err := rt.do(busyAfter(3, 5*time.Millisecond, &calls)); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("op ran %d times, want 4", calls)
	}
	if rt.Retries() != 3 {
		t.Fatalf("counted %d retries, want 3", rt.Retries())
	}
	for i, d := range sleeps {
		if d < 0 || d >= 5*time.Millisecond {
			t.Fatalf("sleep %d = %v outside [0, 5ms)", i, d)
		}
	}
}

// TestRetrierNonBusyPassthrough: only busy errors retry.
func TestRetrierNonBusyPassthrough(t *testing.T) {
	rt := newRetrier(RetryPolicy{MaxAttempts: 5})
	rt.sleep = func(time.Duration) {}
	boom := errors.New("boom")
	calls := 0
	err := rt.do(func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err %v after %d calls", err, calls)
	}
	if rt.Retries() != 0 {
		t.Fatalf("counted %d retries", rt.Retries())
	}
}

// TestRetrierAttemptCap: a persistently busy server surfaces the busy
// error after exactly MaxAttempts tries.
func TestRetrierAttemptCap(t *testing.T) {
	rt := newRetrier(RetryPolicy{MaxAttempts: 3})
	rt.sleep = func(time.Duration) {}
	calls := 0
	err := rt.do(busyAfter(1000, time.Millisecond, &calls))
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
	if _, busy := wire.IsBusy(err); !busy {
		t.Fatalf("surfaced error is not busy: %v", err)
	}
}

// TestRetrierBudget: the summed backoff never exceeds Budget, and
// exhausting it surfaces a budget error that still chains to BusyError.
func TestRetrierBudget(t *testing.T) {
	rt := newRetrier(RetryPolicy{MaxAttempts: 1000, Budget: 10 * time.Millisecond, MinBackoff: 8 * time.Millisecond})
	var total time.Duration
	rt.sleep = func(d time.Duration) { total += d }
	calls := 0
	err := rt.do(busyAfter(1000000, 0, &calls))
	if err == nil {
		t.Fatal("budget never tripped")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("error %v does not name the budget", err)
	}
	if _, busy := wire.IsBusy(err); !busy {
		t.Fatalf("budget error does not chain to the busy cause: %v", err)
	}
	if total > 10*time.Millisecond {
		t.Fatalf("slept %v past the 10ms budget", total)
	}
	if calls >= 1000 {
		t.Fatalf("attempt cap reached before budget (%d calls)", calls)
	}
}

// gateStore blocks Download(0) until the gate closes, so a MaxInflight=1
// admission layer sheds every other request with busy frames for as long
// as the gate holds — a deterministic overload window.
type gateStore struct {
	*Mem
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (g *gateStore) Download(addr int) (block.Block, error) {
	if addr == 0 {
		g.once.Do(func() { close(g.entered) })
		<-g.gate
	}
	return g.Mem.Download(addr)
}

// startGateDaemon serves one namespace with MaxInflight=1/MaxQueue=0
// admission over a gateStore and returns the address and the gate.
func startGateDaemon(t *testing.T) (addr string, g *gateStore) {
	t.Helper()
	mem, err := NewMem(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	g = &gateStore{Mem: mem, gate: make(chan struct{}), entered: make(chan struct{})}
	ns := NewNamespaces()
	ns.Attach(DefaultNamespace, g)
	ns.SetAdmission(AdmitOptions{MaxInflight: 1, MaxQueue: 0})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go ServeNamespaces(ln, ns) //nolint:errcheck // torn down with the listener
	return ln.Addr().String(), g
}

// occupyGate claims the single admission slot with a Download(0) that
// blocks on the gate, and returns once the server has it in flight.
func occupyGate(t *testing.T, addr string, g *gateStore) {
	t.Helper()
	occ, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { occ.Close() })
	go occ.Download(0) //nolint:errcheck // unblocked and discarded at gate close
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("occupier never reached the store")
	}
}

// TestPoolRetryRidesOutOverload: with a retry policy, a pool completes
// operations through a shedding window with zero client-visible busy
// errors; without one, the same window surfaces sheds.
func TestPoolRetryRidesOutOverload(t *testing.T) {
	addr, g := startGateDaemon(t)
	occupyGate(t, addr, g)

	pool, err := DialPool(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.SetRetryPolicy(RetryPolicy{MaxAttempts: 200, Budget: 10 * time.Second, MinBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond})

	// First, confirm the window sheds a policy-less client.
	bare, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.Download(1); err == nil {
		t.Fatal("overloaded daemon served a second request")
	} else if _, busy := wire.IsBusy(err); !busy {
		t.Fatalf("unexpected shed error: %v", err)
	}

	time.AfterFunc(50*time.Millisecond, func() { close(g.gate) })
	if _, err := pool.Download(1); err != nil {
		t.Fatalf("retrying pool surfaced: %v", err)
	}
	if pool.Retries() == 0 {
		t.Fatal("overload window produced no retries")
	}
}

// TestRetryLatencyChargedFromIntendedArrival: retried operations are
// charged from their INTENDED schedule arrival, so time spent backing off
// through an overload window appears in the quantiles — the retry path
// must not reintroduce coordinated omission. Every op is offered in the
// first ~10ms while the daemon sheds everything; the gate opens at 60ms;
// honest accounting therefore puts the median at tens of milliseconds.
func TestRetryLatencyChargedFromIntendedArrival(t *testing.T) {
	addr, g := startGateDaemon(t)
	occupyGate(t, addr, g)

	pool, err := DialPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.SetRetryPolicy(RetryPolicy{MaxAttempts: 500, Budget: 20 * time.Second, MinBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond})

	time.AfterFunc(60*time.Millisecond, func() { close(g.gate) })
	// 16 ops at 2000/s: all intended arrivals land in the first 8ms, all
	// completions after the 60ms gate.
	rep, err := workload.RunOpenLoop(workload.DriverOptions{
		Schedule: workload.ConstantRate(2000, 8*time.Millisecond),
		Sessions: 4,
		Workers:  4,
		Do: func(session, seq int) error {
			_, err := pool.Download(1 + (session+seq)%8)
			return err
		},
		IsShed: func(err error) bool { _, ok := wire.IsBusy(err); return ok },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 || rep.Shed > 0 {
		t.Fatalf("retry-armed run surfaced %d errors, %d sheds (first: %v)", rep.Errors, rep.Shed, rep.FirstErr)
	}
	if p50 := rep.Latency.Quantile(0.50); p50 < 25*time.Millisecond {
		t.Fatalf("median latency %v, want ≥ 25ms: retried ops are not being charged from intended arrival", p50)
	}
	if pool.Retries() == 0 {
		t.Fatal("overload window produced no retries")
	}
}
