package store

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"dpstore/internal/block"
)

// serveRegistry starts a ServeNamespaces daemon on a loopback listener and
// returns its address.
func serveRegistry(t *testing.T, ns *Namespaces) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go ServeNamespaces(ln, ns) //nolint:errcheck
	return ln.Addr().String()
}

// TestServeBackwardCompatible pins the acceptance criterion that a
// pre-namespace client (plain Dial, MsgInfoReq handshake only) works
// unchanged against the namespace-aware serve loop.
func TestServeBackwardCompatible(t *testing.T) {
	backing, err := NewMem(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, backing) //nolint:errcheck

	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != 16 || r.BlockSize() != 8 {
		t.Fatalf("shape = %d × %d, want 16 × 8", r.Size(), r.BlockSize())
	}
	if r.Namespace() != DefaultNamespace {
		t.Fatalf("namespace = %q, want default", r.Namespace())
	}
	want := block.Pattern(3, 8)
	if err := r.Upload(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := r.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("read-back mismatch through default namespace")
	}
	// A single-tenant daemon has no factory: opening another namespace
	// must fail without killing the session.
	if err := r.Open("other", 0, 0); err == nil {
		t.Fatal("single-tenant daemon created a namespace")
	}
	if got, err := r.Download(3); err != nil || !got.Equal(want) {
		t.Fatalf("session degraded after rejected open: %v", err)
	}
}

func TestNamespaceOpenFlow(t *testing.T) {
	ns := NewNamespaces()
	pre, err := NewMem(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	ns.Attach("alpha", pre)
	ns.SetFactory(2, func(name string, slots, blockSize int) (Server, error) {
		if slots == 0 {
			slots = 8
		}
		if blockSize == 0 {
			blockSize = 8
		}
		return NewMem(slots, blockSize)
	})
	addr := serveRegistry(t, ns)

	// No default namespace: operations before an open must fail cleanly.
	bare, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial succeeded against a daemon with no default namespace")
	}

	// Attached namespace, shape deferred to the server.
	a, err := DialNamespace(addr, "alpha", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Size() != 32 || a.BlockSize() != 16 || a.Namespace() != "alpha" {
		t.Fatalf("alpha shape = %d × %d (%q)", a.Size(), a.BlockSize(), a.Namespace())
	}

	// Shape contradiction on an existing namespace is rejected.
	if _, err := DialNamespace(addr, "alpha", 32, 99); err == nil {
		t.Fatal("mismatched block size accepted for existing namespace")
	}
	// Matching explicit shape is fine.
	a2, err := DialNamespace(addr, "alpha", 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	a2.Close()

	// On-demand creation with a client-requested shape.
	b, err := DialNamespace(addr, "beta", 64, 24)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Size() != 64 || b.BlockSize() != 24 {
		t.Fatalf("beta shape = %d × %d, want 64 × 24", b.Size(), b.BlockSize())
	}

	// Tenants are isolated: the same address holds different data.
	if err := a.Upload(5, block.Pattern(111, 16)); err != nil {
		t.Fatal(err)
	}
	if err := b.Upload(5, block.Pattern(222, 24)); err != nil {
		t.Fatal(err)
	}
	ga, err := a.Download(5)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := b.Download(5)
	if err != nil {
		t.Fatal(err)
	}
	if !block.CheckPattern(ga, 111) || !block.CheckPattern(gb, 222) {
		t.Fatal("cross-namespace bleed at shared address")
	}

	// Factory defaults apply when the client requests zeros.
	c, err := DialNamespace(addr, "gamma", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Size() != 8 || c.BlockSize() != 8 {
		t.Fatalf("gamma shape = %d × %d, want factory default 8 × 8", c.Size(), c.BlockSize())
	}

	// The creation cap (2) is now exhausted; a third dynamic namespace is
	// refused, but re-opening existing ones still works.
	if _, err := DialNamespace(addr, "delta", 0, 0); err == nil {
		t.Fatal("namespace cap not enforced")
	}
	c2, err := DialNamespace(addr, "gamma", 0, 0)
	if err != nil {
		t.Fatalf("re-open of created namespace failed: %v", err)
	}
	c2.Close()

	// One connection can hop namespaces mid-session.
	if err := a.Open("beta", 0, 0); err != nil {
		t.Fatal(err)
	}
	if a.BlockSize() != 24 {
		t.Fatalf("after hop, block size = %d, want 24", a.BlockSize())
	}
	got, err := a.Download(5)
	if err != nil {
		t.Fatal(err)
	}
	if !block.CheckPattern(got, 222) {
		t.Fatal("hopped connection did not see beta's data")
	}
}

func TestNamespaceOpenRejectsOversizedName(t *testing.T) {
	ns := NewNamespaces()
	def, _ := NewMem(4, 8)
	ns.Attach(DefaultNamespace, def)
	addr := serveRegistry(t, ns)
	r, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Open(strings.Repeat("x", 300), 0, 0); err == nil {
		t.Fatal("oversized namespace name accepted")
	}
}

func TestNamespacesRegistry(t *testing.T) {
	ns := NewNamespaces()
	if _, err := ns.Open("missing", 0, 0); !errors.Is(err, ErrNamespace) {
		t.Fatalf("open without factory: err = %v, want ErrNamespace", err)
	}
	m, _ := NewMem(4, 8)
	ns.Attach("a", m)
	if s, ok := ns.Get("a"); !ok || s.Size() != 4 {
		t.Fatal("Get after Attach failed")
	}
	if got := ns.Names(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Names = %v, want [a]", got)
	}
	// Factory errors are surfaced and refund the creation cap.
	calls := 0
	ns.SetFactory(1, func(name string, slots, blockSize int) (Server, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("boom")
		}
		return NewMem(2, 8)
	})
	if _, err := ns.Open("b", 0, 0); err == nil {
		t.Fatal("factory error swallowed")
	}
	if _, err := ns.Open("b", 0, 0); err != nil {
		t.Fatalf("cap slot not refunded after factory failure: %v", err)
	}
}

// TestNamespacesConcurrentFirstOpen races many first-opens of one name and
// requires that exactly one backend wins — every opener must observe the
// same store.
func TestNamespacesConcurrentFirstOpen(t *testing.T) {
	ns := NewNamespaces()
	ns.SetFactory(1, func(name string, slots, blockSize int) (Server, error) {
		return NewMem(8, 8)
	})
	const racers = 16
	got := make([]BatchServer, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := ns.Open("shared", 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent first-opens returned distinct backends")
		}
	}
	// The cap was 1 and the race must have consumed exactly one slot:
	// a different name is now refused.
	if _, err := ns.Open("other", 0, 0); err == nil {
		t.Fatal("cap overshot by racing first-opens")
	}
}

// TestShardedOverWire runs a sharded backend behind the daemon: the serve
// loop must dispatch batches to the native sharded fast path and behave
// exactly like an unsharded store at the wire.
func TestShardedOverWire(t *testing.T) {
	sh, err := NewShardedMem(50, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, sh) //nolint:errcheck
	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ops := make([]WriteOp, 50)
	addrs := make([]int, 50)
	for i := range ops {
		ops[i] = WriteOp{Addr: i, Block: block.Pattern(uint64(i), 8)}
		addrs[i] = i
	}
	if err := r.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}
	blocks, err := r.ReadBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if !block.CheckPattern(b, uint64(i)) {
			t.Fatalf("slot %d mismatch through sharded daemon", i)
		}
	}
	if _, err := r.ReadBatch([]int{51}); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}
