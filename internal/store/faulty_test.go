package store

import (
	"errors"
	"testing"

	"dpstore/internal/block"
)

func TestFaultyFailsExactlyOnce(t *testing.T) {
	m, _ := NewMem(4, 16)
	f := NewFaulty(m, 3, nil)
	for i := 1; i <= 6; i++ {
		_, err := f.Download(0)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: err = %v, want ErrInjected", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("op %d unexpectedly failed: %v", i, err)
		}
	}
	if f.Ops() != 6 {
		t.Fatalf("ops = %d, want 6", f.Ops())
	}
}

func TestFaultyCountsUploads(t *testing.T) {
	m, _ := NewMem(4, 16)
	f := NewFaulty(m, 2, nil)
	if _, err := f.Download(0); err != nil {
		t.Fatal(err)
	}
	if err := f.Upload(0, block.New(16)); !errors.Is(err, ErrInjected) {
		t.Fatalf("second op (upload) should fail, got %v", err)
	}
}

func TestFaultyFailFrom(t *testing.T) {
	m, _ := NewMem(4, 16)
	f := NewFaulty(m, 2, nil).FailFrom()
	if _, err := f.Download(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Download(0); err == nil {
			t.Fatal("crashed server recovered")
		}
	}
}

func TestFaultyCustomError(t *testing.T) {
	custom := errors.New("boom")
	m, _ := NewMem(4, 16)
	f := NewFaulty(m, 1, custom)
	if _, err := f.Download(0); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want custom error", err)
	}
}

func TestFaultyZeroNeverFails(t *testing.T) {
	m, _ := NewMem(4, 16)
	f := NewFaulty(m, 0, nil)
	for i := 0; i < 100; i++ {
		if _, err := f.Download(0); err != nil {
			t.Fatal(err)
		}
	}
}
