package store

import (
	"net"
	"sync"
	"testing"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/wire"
)

func TestLimiterCountingOnlyNeverSheds(t *testing.T) {
	l := newLimiter("t", AdmitOptions{}) // admission disabled
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start, ok, _, _ := l.admit(time.Now())
			if !ok {
				t.Error("counting-only limiter shed a request")
				return
			}
			l.release(start)
		}()
	}
	wg.Wait()
	if got := l.accepted.Load(); got != 50 {
		t.Errorf("accepted %d, want 50", got)
	}
	if got := l.shed.Load(); got != 0 {
		t.Errorf("shed %d, want 0", got)
	}
	if got := l.inflight.Load(); got != 0 {
		t.Errorf("inflight %d after all released, want 0", got)
	}
}

func TestLimiterShedsPastQueue(t *testing.T) {
	l := newLimiter("t", AdmitOptions{MaxInflight: 1, MaxQueue: 1})

	// Occupy the single slot.
	holderStart, ok, _, _ := l.admit(time.Now())
	if !ok {
		t.Fatal("first admit shed")
	}

	// Fill the single queue slot with a blocked waiter.
	waiterDone := make(chan struct{})
	waiterIn := make(chan struct{})
	go func() {
		defer close(waiterDone)
		// Signal once we are definitely queued: admit blocks, so signal
		// first and rely on the main goroutine polling the queue gauge.
		close(waiterIn)
		start, ok, _, _ := l.admit(time.Now())
		if !ok {
			t.Error("queued request was shed")
			return
		}
		l.release(start)
	}()
	<-waiterIn
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		q := l.queued
		l.mu.Unlock()
		if q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Slot busy, queue full: the next request must shed with a sane hint.
	start, ok, retry, depth := l.admit(time.Now())
	if ok {
		l.release(start)
		t.Fatal("admit succeeded past a full queue")
	}
	if depth != 1 {
		t.Errorf("shed reported queue depth %d, want 1", depth)
	}
	if retry < time.Millisecond || retry > 2*time.Second {
		t.Errorf("retry hint %v outside [1ms, 2s]", retry)
	}
	if got := l.shed.Load(); got != 1 {
		t.Errorf("shed counter %d, want 1", got)
	}

	// Releasing the holder drains the waiter.
	l.release(holderStart)
	select {
	case <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not drain after release")
	}
	if got := l.accepted.Load(); got != 2 {
		t.Errorf("accepted %d, want 2", got)
	}
}

func TestLimiterSnapshot(t *testing.T) {
	l := newLimiter("t", AdmitOptions{MaxInflight: 3, MaxQueue: 7})
	start, ok, _, _ := l.admit(time.Now())
	if !ok {
		t.Fatal("admit shed")
	}
	var e wire.StatsEntry
	l.snapshot(&e)
	if e.Inflight != 1 || e.Limit != 3 || e.QueueCap != 7 {
		t.Errorf("snapshot %+v, want inflight=1 limit=3 queueCap=7", e)
	}
	l.release(start)
	l.snapshot(&e)
	if e.Accepted != 1 || e.Inflight != 0 {
		t.Errorf("snapshot after release %+v, want accepted=1 inflight=0", e)
	}
}

func TestAdmittableIsControlPlaneSafe(t *testing.T) {
	for _, typ := range []byte{wire.MsgInfoReq, wire.MsgOpenReq, wire.MsgResyncReq, wire.MsgReplStatusReq, wire.MsgStatsReq} {
		if admittable(typ) {
			t.Errorf("control frame %d subject to admission (a saturated daemon would go dark)", typ)
		}
	}
	for _, typ := range []byte{wire.MsgDownloadReq, wire.MsgUploadReq, wire.MsgReadBatchReq, wire.MsgWriteBatchReq, wire.MsgAccessReq} {
		if !admittable(typ) {
			t.Errorf("data frame %d bypasses admission", typ)
		}
	}
}

// blockingStore parks every Download on a gate channel so a test can hold
// the admission slot open deliberately.
type blockingStore struct {
	Server
	gate    chan struct{}
	entered chan struct{}
}

func (b *blockingStore) Download(addr int) (block.Block, error) {
	b.entered <- struct{}{}
	<-b.gate
	return b.Server.Download(addr)
}

// TestServeShedsWithBusyFrame drives the full wire path: a server with one
// admission slot and no queue, a request parked inside the backend, and a
// second request that must come back as a typed *BusyError — while control
// frames (info, stats) still answer.
func TestServeShedsWithBusyFrame(t *testing.T) {
	mem, err := NewMem(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	gated := &blockingStore{Server: mem, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	ns := NewNamespaces()
	ns.Attach(DefaultNamespace, gated)
	ns.SetAdmission(AdmitOptions{MaxInflight: 1, MaxQueue: 0})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ServeNamespaces(ln, ns) //nolint:errcheck

	holder, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	holderDone := make(chan error, 1)
	go func() {
		_, err := holder.Download(3)
		holderDone <- err
	}()
	<-gated.entered // the slot is now provably held

	other, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	_, err = other.Download(5)
	retry, busy := wire.IsBusy(err)
	if !busy {
		t.Fatalf("expected a busy error, got %v", err)
	}
	if retry < time.Millisecond {
		t.Errorf("busy retry hint %v below the floor", retry)
	}

	// The same connection stays healthy: control frames answer while the
	// namespace is saturated, and data frames work again after release.
	if _, err := other.Stats(); err != nil {
		t.Fatalf("stats during saturation: %v", err)
	}
	close(gated.gate)
	if err := <-holderDone; err != nil {
		t.Fatalf("held download failed: %v", err)
	}
	if _, err := other.Download(5); err != nil {
		t.Fatalf("download after release: %v", err)
	}

	sts, err := other.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 {
		t.Fatalf("stats entries %d, want 1", len(sts))
	}
	e := sts[0]
	if e.Kind != wire.StatsKindBlock || e.Accepted != 2 || e.Shed != 1 || e.Limit != 1 {
		t.Errorf("stats entry %+v, want block kind, accepted=2, shed=1, limit=1", e)
	}
}
