package store

import (
	"errors"
	"sync"

	"dpstore/internal/block"
)

// ErrInjected is the default failure returned by a Faulty server.
var ErrInjected = errors.New("store: injected fault")

// Faulty wraps a Server and fails a chosen operation, for fault-injection
// tests: constructions must surface server failures as errors (never
// panic, never silently corrupt), and test suites use Faulty to prove it
// at every operation offset.
type Faulty struct {
	inner Server
	batch BatchServer // inner's batch view; the loop adapter when not native

	mu        sync.Mutex
	count     int64
	failAt    int64 // 1-based operation index to fail; 0 disables
	failEvery bool  // fail failAt and every operation after it
	err       error
}

// NewFaulty wraps inner; the returned server fails operation number failAt
// (1-based, counting downloads and uploads together) with err. A zero
// failAt never fails; a nil err uses ErrInjected.
func NewFaulty(inner Server, failAt int64, err error) *Faulty {
	if err == nil {
		err = ErrInjected
	}
	return &Faulty{inner: inner, batch: AsBatch(inner), failAt: failAt, err: err}
}

// FailFrom makes every operation at or after failAt fail (a crashed
// server rather than a transient blip).
func (f *Faulty) FailFrom() *Faulty {
	f.mu.Lock()
	f.failEvery = true
	f.mu.Unlock()
	return f
}

// Ops returns the number of operations attempted so far.
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

func (f *Faulty) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if f.failAt == 0 {
		return nil
	}
	if f.count == f.failAt || (f.failEvery && f.count > f.failAt) {
		return f.err
	}
	return nil
}

// Download implements Server.
func (f *Faulty) Download(addr int) (block.Block, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.Download(addr)
}

// Upload implements Server.
func (f *Faulty) Upload(addr int, b block.Block) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.Upload(addr, b)
}

// ReadBatch implements BatchServer. Each address in the batch counts as
// one operation against the fault schedule, so a test tuned to "fail the
// k-th block operation" trips at the same point whether the construction
// runs batched or per-block.
func (f *Faulty) ReadBatch(addrs []int) ([]block.Block, error) {
	for range addrs {
		if err := f.tick(); err != nil {
			return nil, err
		}
	}
	return f.batch.ReadBatch(addrs)
}

// WriteBatch implements BatchServer, ticking once per op. When the fault
// fires at op k, the preceding k ops are still applied — matching the
// per-block equivalent, where uploads before the failure have already
// landed.
func (f *Faulty) WriteBatch(ops []WriteOp) error {
	for k := range ops {
		if err := f.tick(); err != nil {
			if k > 0 {
				if werr := f.batch.WriteBatch(ops[:k]); werr != nil {
					return werr
				}
			}
			return err
		}
	}
	return f.batch.WriteBatch(ops)
}

// Size implements Server.
func (f *Faulty) Size() int { return f.inner.Size() }

// BlockSize implements Server.
func (f *Faulty) BlockSize() int { return f.inner.BlockSize() }
