package store

import "dpstore/internal/block"

// Slab allocation for batch results: every ReadBatch in this package used
// to allocate one block.Block per address, which made per-block allocation
// the top line of the allocation profile (≈40% of objects on the remote
// hot path came from Mem.ReadBatch alone). A slab carves all n blocks out
// of one backing array, so a batch result costs exactly two allocations —
// the backing bytes and the header slice — independent of batch size.
//
// # Ownership rules (the decode→apply handoff)
//
//   - The slab is the caller's. BatchServer's contract ("ReadBatch returns
//     copies") is unchanged: the caller may retain and mutate the returned
//     blocks indefinitely, and the store never touches them again.
//   - Blocks within one slab share a backing array. Each is capacity-capped
//     to its own extent, so an append through one block can never bleed into
//     its neighbor — but retaining a single block pins the whole batch's
//     backing (len(addrs)·blockSize bytes, bounded by the request the caller
//     itself made, never by MaxFrame or another tenant's batch).
//   - Producers (Mem, File, Durable, Remote) must fully overwrite every
//     block before returning the slab; a slab never carries recycled bytes
//     because it is freshly allocated, and it is never pooled precisely
//     because ownership transfers to the caller.
type slab []block.Block

// newSlab returns n blocks of size bytes carved from one backing array in
// exactly two allocations. The blocks are zeroed, contiguous, and
// capacity-capped to size.
func newSlab(n, size int) slab {
	if n == 0 {
		return nil
	}
	backing := make([]byte, n*size)
	out := make(slab, n)
	for i := range out {
		out[i] = block.Block(backing[i*size : (i+1)*size : (i+1)*size])
	}
	return out
}

// VectoredIO reports whether this build issues coalesced batch runs as
// single preadv/pwritev syscalls or through the portable staging-buffer
// fallback — see the fallback matrix in DESIGN.md §HotPath. Daemons log it
// at startup so recorded measurements are attributable to a build flavor.
func VectoredIO() bool { return vectoredIO }

// BatchAppender is the serve loop's zero-copy read fast path: append the
// blocks at addrs, in order, directly onto dst — straight into the response
// frame buffer, with no intermediate slab at all. Implementations must
// either append exactly len(addrs) blocks of BlockSize() bytes or return dst
// unchanged alongside the error (no partial appends), and must not retain
// dst. Stores without it fall back to ReadBatch plus a copy.
type BatchAppender interface {
	AppendReadBatch(dst []byte, addrs []int) ([]byte, error)
}
