package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpstore/internal/block"
)

// Durable is a crash-safe disk-backed BatchServer: the storage engine the
// daemon runs on when data must survive process death. Where File trades
// durability for speed (no fsync, no checksums), Durable guarantees that
// every acknowledged WriteBatch is recoverable after a crash at any byte
// boundary, and that a torn page write can never corrupt previously
// acknowledged data:
//
//   - Pages file (<base>.pages): a versioned, checksummed header followed
//     by n fixed-size pages, each a blockSize-byte payload plus a CRC32C
//     trailer. A page whose checksum fails is reported as corruption, never
//     silently returned.
//
//   - Write-ahead log (<base>.wal): every WriteBatch is encoded as one
//     checksummed record and appended to the log. The record is made
//     durable (fsync) BEFORE any page is touched, so a crash mid-page-write
//     is repaired by replaying the log; a crash mid-log-append leaves a
//     torn tail that replay detects (CRC or shape mismatch) and discards —
//     the batch was never acknowledged, so discarding it is correct.
//
//   - Group commit: concurrent WriteBatch calls queued behind one fsync
//     ride the same log flush — the committer goroutine drains whatever has
//     accumulated, appends all records, syncs once, applies all pages, and
//     wakes every waiter. This amortizes the fsync exactly the way the
//     batch transport amortizes round trips: durability per batch, not per
//     caller.
//
//   - Snapshot + truncate compaction: once the log exceeds WALLimit, the
//     committer fsyncs the pages file (making every applied record durable
//     in place) and truncates the log back to its header. Replay after a
//     crash during compaction is idempotent — records re-apply the same
//     payloads to the same pages.
//
// One WriteBatch is one log record, so a batch is ATOMIC across crashes:
// after recovery either all of its ops are visible or none. (The in-memory
// Servers apply batches all-or-nothing on validation failure; Durable
// extends that to torn-write crashes, which is what the schemes'
// fault-atomicity invariants need from a restartable store.)
//
// A Durable is safe for concurrent use. Compose it per shard with Sharded
// for a striped durable store (cmd/blockstored -data -shards).
type Durable struct {
	base      string
	n         int
	blockSize int
	pageSize  int // blockSize + pageTrailer
	opts      DurableOptions

	pages *os.File
	wal   *os.File

	// pageMu serializes page I/O (reads, applies, compaction) exactly like
	// File's mutex; the WAL append path has its own serialization through
	// the committer goroutine. It also guards the batch-path scratch below:
	// the vectored-I/O state, the per-run buffer list, and the CRC staging
	// buffer that rides interleaved with page payloads (a page on disk is
	// payload ‖ CRC32C, so a vectored run alternates payload and checksum
	// buffers).
	pageMu sync.Mutex
	vec    vectorizer
	bufs   [][]byte
	crcBuf []byte

	// sendMu guards the request channel against a Close racing in-flight
	// senders: senders hold it shared for the duration of the send, Close
	// takes it exclusively before closing the channel. (Callers are told
	// to quiesce before Close; this makes a violation an error return
	// instead of a send-on-closed-channel panic.)
	sendMu sync.RWMutex

	mu      sync.Mutex
	sticky  error // a failed log append/sync poisons the engine
	closed  bool
	walSize int64

	// Committer-goroutine-only group-commit pacing state: an EWMA of the
	// log sync latency, and a decaying estimate of concurrent writers.
	// syncGauge mirrors syncEWMA atomically for SyncLatency (the metrics
	// endpoint reads it from other goroutines).
	syncEWMA  time.Duration
	demand    int
	syncGauge atomic.Int64

	reqs  chan *walReq
	apply chan applyGroup
	done  chan struct{}
}

// applyGroup is one synced commit round handed from the committer to the
// applier: its records are durable in the log; the applier writes the
// pages and wakes the waiters. A nil reqs slice with a non-nil drained
// channel is a barrier (compaction waits on it).
type applyGroup struct {
	reqs    []*walReq
	drained chan struct{}
}

// SyncMode selects the WAL durability discipline.
type SyncMode int

const (
	// SyncGroup (the default) fsyncs once per commit round: all WriteBatch
	// calls waiting while a flush is in progress share the next fsync.
	SyncGroup SyncMode = iota
	// SyncEach fsyncs every WriteBatch individually — the per-write
	// baseline the durability benchmarks compare group commit against.
	SyncEach
	// SyncNone never fsyncs on the write path; durability is only
	// guaranteed after Sync or Close. For bulk loads and benchmarks.
	SyncNone
)

// WALTap intercepts WAL appends — the crash-injection hook the torn-write
// recovery tests are built on. Append receives the log offset the record
// will land at and the encoded record; it may return a prefix of the
// record (simulating a torn write: only those bytes reach the file) and/or
// an error (simulating the crash itself: the engine writes whatever was
// returned, then poisons itself without acknowledging the batch).
type WALTap interface {
	Append(off int64, record []byte) ([]byte, error)
}

// DurableOptions configures the engine.
type DurableOptions struct {
	// Sync selects the WAL durability discipline; zero is SyncGroup.
	Sync SyncMode
	// WALLimit is the log size (bytes) that triggers snapshot+truncate
	// compaction; zero selects 8 MiB.
	WALLimit int64
	// Tap, when non-nil, intercepts WAL appends. Crash-recovery tests
	// only; leave nil in production.
	Tap WALTap
}

const (
	pageTrailer    = 4 // CRC32C per page
	pagesHdrSize   = 40
	walHdrSize     = 16
	defaultWALSize = 8 << 20
)

var (
	pagesMagic = [8]byte{'D', 'P', 'S', 'T', 'P', 'G', 'S', '1'}
	walMagic   = [8]byte{'D', 'P', 'S', 'T', 'W', 'A', 'L', '1'}
)

// engineVersion is the on-disk format version of both files.
const engineVersion = 1

// castagnoli is the CRC32C table used for every checksum in the engine.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports on-disk corruption the engine detected (bad magic,
// version, header checksum, or page checksum).
var ErrCorrupt = errors.New("store: durable store corrupt")

// walReq is one WriteBatch waiting on the committer — or, with snapshot
// set, a Sync request: the committer is the only goroutine allowed to
// truncate the log, so explicit snapshots ride the same queue instead of
// racing it.
type walReq struct {
	rec      []byte
	ops      []WriteOp
	snapshot bool
	done     chan error
}

// CreateDurable creates a durable store at base (files <base>.pages and
// <base>.wal, truncating any existing ones) with n zeroed slots of
// blockSize bytes.
func CreateDurable(base string, n, blockSize int, opts DurableOptions) (*Durable, error) {
	if n <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("store: invalid durable store shape n=%d blockSize=%d", n, blockSize)
	}
	d := newDurable(base, n, blockSize, opts)
	pages, err := os.OpenFile(d.pagesPath(), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", d.pagesPath(), err)
	}
	d.pages = pages
	if err := d.initPages(); err != nil {
		pages.Close()
		return nil, err
	}
	if err := d.createWAL(); err != nil {
		pages.Close()
		return nil, err
	}
	if err := syncDir(filepath.Dir(base)); err != nil {
		d.pages.Close()
		d.wal.Close()
		return nil, err
	}
	d.start()
	return d, nil
}

// OpenDurable opens an existing durable store at base, replaying the
// write-ahead log so the pages reflect every acknowledged batch, and
// compacting the log. A file in the legacy headerless File format (exactly
// n·blockSize bytes, as CreateFile lays out) is migrated in place to the
// versioned page format — the one-way upgrade path for stores that predate
// the engine.
func OpenDurable(base string, n, blockSize int, opts DurableOptions) (*Durable, error) {
	if n <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("store: invalid durable store shape n=%d blockSize=%d", n, blockSize)
	}
	d := newDurable(base, n, blockSize, opts)
	if err := d.openPages(); err != nil {
		return nil, err
	}
	if err := d.openWAL(); err != nil {
		d.pages.Close()
		return nil, err
	}
	if err := d.replay(); err != nil {
		d.pages.Close()
		d.wal.Close()
		return nil, err
	}
	d.start()
	return d, nil
}

// OpenOrCreateDurable opens base if its pages file exists (in either the
// engine or the legacy format) and creates it otherwise.
func OpenOrCreateDurable(base string, n, blockSize int, opts DurableOptions) (*Durable, error) {
	if _, err := os.Stat(base + ".pages"); err == nil {
		return OpenDurable(base, n, blockSize, opts)
	}
	// A bare legacy File at base itself is also an open path: migrate it.
	if st, err := os.Stat(base); err == nil && !st.IsDir() {
		return OpenDurable(base, n, blockSize, opts)
	}
	return CreateDurable(base, n, blockSize, opts)
}

func newDurable(base string, n, blockSize int, opts DurableOptions) *Durable {
	if opts.WALLimit <= 0 {
		opts.WALLimit = defaultWALSize
	}
	return &Durable{
		base:      base,
		n:         n,
		blockSize: blockSize,
		pageSize:  blockSize + pageTrailer,
		opts:      opts,
		reqs:      make(chan *walReq, 64),
		apply:     make(chan applyGroup, 4),
		done:      make(chan struct{}),
	}
}

func (d *Durable) pagesPath() string { return d.base + ".pages" }
func (d *Durable) walPath() string   { return d.base + ".wal" }

// start launches the commit pipeline: the committer (log append + sync)
// and the applier (page writes + acks).
func (d *Durable) start() {
	go d.committer()
	go d.applier()
}

// --- headers -----------------------------------------------------------------

// encodePagesHeader lays out the pages header: magic ‖ version u32 ‖
// blockSize u32 ‖ n u64 ‖ reserved u64 ‖ crc u32.
func (d *Durable) encodePagesHeader() []byte {
	h := make([]byte, pagesHdrSize)
	copy(h[:8], pagesMagic[:])
	binary.BigEndian.PutUint32(h[8:12], engineVersion)
	binary.BigEndian.PutUint32(h[12:16], uint32(d.blockSize))
	binary.BigEndian.PutUint64(h[16:24], uint64(d.n))
	binary.BigEndian.PutUint32(h[pagesHdrSize-4:], crc32.Checksum(h[:pagesHdrSize-4], castagnoli))
	return h
}

func encodeWALHeader() []byte {
	h := make([]byte, walHdrSize)
	copy(h[:8], walMagic[:])
	binary.BigEndian.PutUint32(h[8:12], engineVersion)
	binary.BigEndian.PutUint32(h[12:16], crc32.Checksum(h[:12], castagnoli))
	return h
}

// initPages writes the header plus n zeroed-payload pages (with valid
// checksums) and syncs.
func (d *Durable) initPages() error {
	if _, err := d.pages.WriteAt(d.encodePagesHeader(), 0); err != nil {
		return fmt.Errorf("store: writing pages header: %w", err)
	}
	zero := d.sealPage(make([]byte, d.blockSize))
	const windowPages = 1024
	buf := make([]byte, 0, windowPages*d.pageSize)
	off := int64(pagesHdrSize)
	for i := 0; i < d.n; i++ {
		buf = append(buf, zero...)
		if len(buf) == cap(buf) || i == d.n-1 {
			if _, err := d.pages.WriteAt(buf, off); err != nil {
				return fmt.Errorf("store: zeroing pages: %w", err)
			}
			off += int64(len(buf))
			buf = buf[:0]
		}
	}
	if err := d.pages.Sync(); err != nil {
		return fmt.Errorf("store: syncing pages: %w", err)
	}
	return nil
}

func (d *Durable) createWAL() error {
	wal, err := os.OpenFile(d.walPath(), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", d.walPath(), err)
	}
	if _, err := wal.WriteAt(encodeWALHeader(), 0); err != nil {
		wal.Close()
		return fmt.Errorf("store: writing WAL header: %w", err)
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	d.wal = wal
	d.walSize = walHdrSize
	return nil
}

// openPages opens and validates the pages file, migrating a legacy
// headerless File store when it finds one.
func (d *Durable) openPages() error {
	path := d.pagesPath()
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		// No .pages file: look for a legacy File-format store at base.
		if st, lerr := os.Stat(d.base); lerr == nil && st.Size() == int64(d.n)*int64(d.blockSize) {
			if err := d.migrateLegacy(); err != nil {
				return err
			}
		} else {
			return fmt.Errorf("store: opening %s: %w", path, err)
		}
	}
	pages, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: opening %s: %w", path, err)
	}
	hdr := make([]byte, pagesHdrSize)
	if _, err := io.ReadFull(io.NewSectionReader(pages, 0, pagesHdrSize), hdr); err != nil {
		pages.Close()
		return fmt.Errorf("%w: %s header unreadable: %v", ErrCorrupt, path, err)
	}
	if [8]byte(hdr[:8]) != pagesMagic {
		pages.Close()
		return fmt.Errorf("%w: %s has no engine magic (not created by CreateDurable, and not a legacy store of this shape)", ErrCorrupt, path)
	}
	if crc32.Checksum(hdr[:pagesHdrSize-4], castagnoli) != binary.BigEndian.Uint32(hdr[pagesHdrSize-4:]) {
		pages.Close()
		return fmt.Errorf("%w: %s header checksum mismatch", ErrCorrupt, path)
	}
	if v := binary.BigEndian.Uint32(hdr[8:12]); v != engineVersion {
		pages.Close()
		return fmt.Errorf("%w: %s is format version %d, this engine reads %d", ErrCorrupt, path, v, engineVersion)
	}
	bs := int(binary.BigEndian.Uint32(hdr[12:16]))
	n := int(binary.BigEndian.Uint64(hdr[16:24]))
	if bs != d.blockSize || n != d.n {
		pages.Close()
		return fmt.Errorf("store: %s holds %d slots × %d B, caller wants %d × %d", path, n, bs, d.n, d.blockSize)
	}
	st, err := pages.Stat()
	if err != nil {
		pages.Close()
		return fmt.Errorf("store: stat %s: %w", path, err)
	}
	if want := int64(pagesHdrSize) + int64(d.n)*int64(d.pageSize); st.Size() != want {
		pages.Close()
		return fmt.Errorf("%w: %s has size %d, want %d", ErrCorrupt, path, st.Size(), want)
	}
	d.pages = pages
	return nil
}

// migrateLegacy converts a headerless CreateFile-format store at base into
// the engine's page format, atomically: the converted copy is built at a
// temp path, synced, and renamed to <base>.pages; the legacy file is
// removed only after the rename lands. A crash mid-migration leaves either
// the legacy file (retry migrates again) or the finished pages file.
func (d *Durable) migrateLegacy() error {
	legacy, err := os.Open(d.base)
	if err != nil {
		return fmt.Errorf("store: opening legacy store %s: %w", d.base, err)
	}
	defer legacy.Close()
	tmp := d.pagesPath() + ".tmp"
	out, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	defer os.Remove(tmp)
	if _, err := out.WriteAt(d.encodePagesHeader(), 0); err != nil {
		out.Close()
		return fmt.Errorf("store: migrating %s: %w", d.base, err)
	}
	raw := make([]byte, d.blockSize)
	off := int64(pagesHdrSize)
	for i := 0; i < d.n; i++ {
		if _, err := io.ReadFull(io.NewSectionReader(legacy, int64(i)*int64(d.blockSize), int64(d.blockSize)), raw); err != nil {
			out.Close()
			return fmt.Errorf("store: migrating %s: reading slot %d: %w", d.base, i, err)
		}
		if _, err := out.WriteAt(d.sealPage(raw), off); err != nil {
			out.Close()
			return fmt.Errorf("store: migrating %s: writing page %d: %w", d.base, i, err)
		}
		off += int64(d.pageSize)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return fmt.Errorf("store: migrating %s: %w", d.base, err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("store: migrating %s: %w", d.base, err)
	}
	if err := os.Rename(tmp, d.pagesPath()); err != nil {
		return fmt.Errorf("store: migrating %s: %w", d.base, err)
	}
	if err := os.Remove(d.base); err != nil {
		return fmt.Errorf("store: removing migrated legacy store: %w", err)
	}
	return syncDir(filepath.Dir(d.base))
}

// openWAL opens (or creates) the log and validates its header.
func (d *Durable) openWAL() error {
	if _, err := os.Stat(d.walPath()); errors.Is(err, os.ErrNotExist) {
		return d.createWAL()
	}
	wal, err := os.OpenFile(d.walPath(), os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: opening %s: %w", d.walPath(), err)
	}
	hdr := make([]byte, walHdrSize)
	if _, err := io.ReadFull(io.NewSectionReader(wal, 0, walHdrSize), hdr); err != nil {
		wal.Close()
		return fmt.Errorf("%w: %s header unreadable: %v", ErrCorrupt, d.walPath(), err)
	}
	if [8]byte(hdr[:8]) != walMagic ||
		crc32.Checksum(hdr[:12], castagnoli) != binary.BigEndian.Uint32(hdr[12:16]) {
		wal.Close()
		return fmt.Errorf("%w: %s has an invalid WAL header", ErrCorrupt, d.walPath())
	}
	if v := binary.BigEndian.Uint32(hdr[8:12]); v != engineVersion {
		wal.Close()
		return fmt.Errorf("%w: %s is WAL version %d, this engine reads %d", ErrCorrupt, d.walPath(), v, engineVersion)
	}
	d.wal = wal
	return nil
}

// replay applies every intact log record to the pages file, truncates the
// log at the first torn or corrupt record (which by the commit protocol
// was never acknowledged), then compacts: pages fsync, log truncated to
// its header. After replay the store is exactly the last acknowledged
// state.
func (d *Durable) replay() error {
	st, err := d.wal.Stat()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", d.walPath(), err)
	}
	size := st.Size()
	off := int64(walHdrSize)
	var lenBuf [4]byte
	for off < size {
		if size-off < 4 {
			break // torn length prefix
		}
		if _, err := d.wal.ReadAt(lenBuf[:], off); err != nil {
			return fmt.Errorf("store: reading WAL at %d: %w", off, err)
		}
		recLen := int64(binary.BigEndian.Uint32(lenBuf[:]))
		if recLen < 4+pageTrailer || off+4+recLen > size {
			break // torn or nonsense record
		}
		rec := make([]byte, recLen)
		if _, err := d.wal.ReadAt(rec, off+4); err != nil {
			return fmt.Errorf("store: reading WAL record at %d: %w", off, err)
		}
		ops, ok := d.decodeWALRecord(rec)
		if !ok {
			break // corrupt record: crashed mid-append, batch unacknowledged
		}
		if err := d.applyPages(ops); err != nil {
			return err
		}
		off += 4 + recLen
	}
	// Compact: make the applied records durable in the pages, then drop
	// the log (including any torn tail).
	if err := d.compact(); err != nil {
		return fmt.Errorf("store: after replay: %w", err)
	}
	return nil
}

// --- WAL records -------------------------------------------------------------

// encodeWALRecord lays one WriteBatch out as:
//
//	length u32 ‖ count u32 ‖ count × addr u64 ‖ count × payload ‖ crc u32
//
// where length covers everything after itself and crc covers everything
// between length and itself.
func (d *Durable) encodeWALRecord(ops []WriteOp) []byte {
	body := 4 + len(ops)*(8+d.blockSize) + 4
	rec := make([]byte, 4+body)
	binary.BigEndian.PutUint32(rec[0:4], uint32(body))
	binary.BigEndian.PutUint32(rec[4:8], uint32(len(ops)))
	p := 8
	for _, op := range ops {
		binary.BigEndian.PutUint64(rec[p:], uint64(op.Addr))
		p += 8
	}
	for _, op := range ops {
		copy(rec[p:], op.Block)
		p += d.blockSize
	}
	binary.BigEndian.PutUint32(rec[p:], crc32.Checksum(rec[4:p], castagnoli))
	return rec
}

// decodeWALRecord parses a record body (everything after the length
// prefix), returning ok=false for any shape, bound, or checksum violation.
func (d *Durable) decodeWALRecord(rec []byte) ([]WriteOp, bool) {
	if len(rec) < 4+pageTrailer {
		return nil, false
	}
	crcOff := len(rec) - 4
	if crc32.Checksum(rec[:crcOff], castagnoli) != binary.BigEndian.Uint32(rec[crcOff:]) {
		return nil, false
	}
	count := int(binary.BigEndian.Uint32(rec[0:4]))
	if count < 0 || 4+count*(8+d.blockSize)+4 != len(rec) {
		return nil, false
	}
	ops := make([]WriteOp, count)
	addrOff, dataOff := 4, 4+count*8
	for i := range ops {
		a := binary.BigEndian.Uint64(rec[addrOff+8*i:])
		if a >= uint64(d.n) {
			return nil, false
		}
		ops[i] = WriteOp{
			Addr:  int(a),
			Block: block.Block(rec[dataOff+i*d.blockSize : dataOff+(i+1)*d.blockSize]),
		}
	}
	return ops, true
}

// --- page I/O ----------------------------------------------------------------

// sealPage returns payload ‖ CRC32C(payload).
func (d *Durable) sealPage(payload []byte) []byte {
	page := make([]byte, d.pageSize)
	copy(page, payload)
	binary.BigEndian.PutUint32(page[d.blockSize:], crc32.Checksum(payload, castagnoli))
	return page
}

func (d *Durable) pageOff(addr int) int64 {
	return int64(pagesHdrSize) + int64(addr)*int64(d.pageSize)
}

// sortKeyBits is the index width of the composite (addr ‖ index) sort
// keys: sorting plain uint64s is several times cheaper than a reflective
// sort.SliceStable over WriteOp structs, and packing the original index
// into the low bits makes the integer sort stable by construction
// (duplicate addresses order by submission index).
const sortKeyBits = 20

// sortKeys builds and sorts the composite keys for count ops addressed by
// addrOf. Returns nil when the shape exceeds the packing bounds (caller
// falls back to a stable struct sort) — unreachable for real stores (2^43
// slots, 2^20 ops per round) but kept exact.
func sortKeys(count int, addrOf func(i int) int) []uint64 {
	if count >= 1<<sortKeyBits {
		return nil
	}
	keys := make([]uint64, count)
	for i := 0; i < count; i++ {
		a := addrOf(i)
		if a >= 1<<(64-sortKeyBits) {
			return nil
		}
		keys[i] = uint64(a)<<sortKeyBits | uint64(i)
	}
	slices.Sort(keys)
	return keys
}

// applyPages writes the ops' pages, coalescing address-sorted runs into
// one vectored write each like File does. No fsync: durability comes from
// the already-synced log record. Caller need not hold pageMu; applyPages
// takes it.
func (d *Durable) applyPages(ops []WriteOp) error {
	count := len(ops)
	var addrAt func(k int) int
	var opAt func(k int) WriteOp
	if keys := sortKeys(count, func(i int) int { return ops[i].Addr }); keys != nil {
		addrAt = func(k int) int { return int(keys[k] >> sortKeyBits) }
		opAt = func(k int) WriteOp { return ops[keys[k]&(1<<sortKeyBits-1)] }
	} else {
		sorted := append([]WriteOp(nil), ops...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
		addrAt = func(k int) int { return sorted[k].Addr }
		opAt = func(k int) WriteOp { return sorted[k] }
	}
	maxRun := fileMaxRunBytes / d.pageSize
	if maxRun < 1 {
		maxRun = 1
	}
	d.pageMu.Lock()
	defer d.pageMu.Unlock()
	for start := 0; start < count; {
		end := start + 1
		for end < count && addrAt(end)-addrAt(end-1) <= 1 &&
			addrAt(end)-addrAt(start) < maxRun {
			end++
		}
		base, last := addrAt(start), addrAt(end-1)
		// Gather the run directly from the ops' blocks, alternating each
		// payload with its 4-byte CRC trailer from the staging buffer — the
		// on-disk page layout — so a run is one vectored write with no page
		// assembly copy. Duplicate addresses collapse to the last op (a
		// vectored write lands buffers at consecutive offsets, so earlier
		// duplicates must not occupy a slot), preserving last-write-wins.
		// Every page in [base,last] is covered because consecutive run
		// members differ by at most one address.
		if need := (last - base + 1) * pageTrailer; cap(d.crcBuf) < need {
			d.crcBuf = make([]byte, need)
		}
		d.bufs = d.bufs[:0]
		pages := 0
		for k := start; k < end; {
			j := k
			for j+1 < end && addrAt(j+1) == addrAt(k) {
				j++ // stable sort: the last duplicate is the batch's last write
			}
			op := opAt(j)
			crc := d.crcBuf[pages*pageTrailer : (pages+1)*pageTrailer]
			binary.BigEndian.PutUint32(crc, crc32.Checksum(op.Block, castagnoli))
			d.bufs = append(d.bufs, op.Block, crc)
			pages++
			k = j + 1
		}
		if err := d.vec.writev(d.pages, d.bufs, d.pageOff(base)); err != nil {
			return fmt.Errorf("store: writing pages [%d,%d]: %w", base, last, err)
		}
		start = end
	}
	return nil
}

// --- committer ---------------------------------------------------------------

// groupCap bounds how many queued batches one commit round may merge; far
// above anything the 64-deep request channel can hold, it only guards a
// pathological backlog from building an unbounded apply list.
const groupCap = 256

// committer appends log records and makes them durable, one sync per
// group — the group-commit heart of the engine. Synced groups are handed
// to the applier, so the NEXT group's log write and sync overlap the
// PREVIOUS group's page writes: on a device where the sync dominates,
// page-apply time disappears from the critical path entirely.
func (d *Durable) committer() {
	defer close(d.apply)
	for {
		first, ok := <-d.reqs
		if !ok {
			return
		}
		if first.snapshot {
			d.doSnapshot(first)
			continue
		}
		group := []*walReq{first}
		var snaps []*walReq
		closing := false
		if d.opts.Sync != SyncEach {
			// Group commit: everything already queued rides this sync.
		gather:
			for len(group) < groupCap {
				select {
				case more, ok := <-d.reqs:
					if !ok {
						closing = true
						break gather
					}
					if more.snapshot {
						snaps = append(snaps, more)
						continue
					}
					group = append(group, more)
				default:
					break gather
				}
			}
			// Adaptive pacing: if the previous round proved there are
			// concurrent writers (group > 1), most of them are being woken
			// by the applier's acks RIGHT NOW and will resubmit within a
			// fraction of one sync latency. Waiting that fraction grows
			// the group toward the full client count, so each sync is
			// amortized over ~C batches instead of the 2–3 that happen to
			// be queued when the round opens. A lone writer (prevGroup
			// ≤ 1) never waits — no latency tax on the uncontended path.
			// The wait stops as soon as the group reaches the demand
			// estimate — a decaying maximum of recent round sizes — so a
			// full house never burns the window idling, while a slow
			// resubmitter does not collapse the estimate for everyone.
			if !closing && len(group) < d.demand {
				window := d.syncEWMA / 2
				if window > 0 {
					timer := time.NewTimer(window)
				paced:
					for len(group) < d.demand {
						select {
						case more, ok := <-d.reqs:
							if !ok {
								closing = true
								break paced
							}
							if more.snapshot {
								snaps = append(snaps, more)
								continue
							}
							group = append(group, more)
						case <-timer.C:
							break paced
						}
					}
					timer.Stop()
				}
			}
		}
		if len(group) >= d.demand {
			d.demand = len(group)
		} else {
			d.demand = (3*d.demand + len(group)) / 4
		}
		d.commit(group)
		for _, s := range snaps {
			d.doSnapshot(s)
		}
		if closing {
			return
		}
	}
}

// compact makes every applied page durable and truncates the log back to
// its header — the single implementation of the snapshot protocol. The
// order is load-bearing: pages fsync BEFORE log truncate, so a crash
// between the two steps leaves at worst a replayable log, never pages
// that silently lost their protection. Callers must guarantee no group is
// mid-apply: the committer calls it after drainApplier, the open path
// before the pipeline starts, Close after it has exited.
func (d *Durable) compact() error {
	d.pageMu.Lock()
	err := d.pages.Sync()
	d.pageMu.Unlock()
	if err != nil {
		return fmt.Errorf("store: syncing pages: %w", err)
	}
	if err := d.wal.Truncate(walHdrSize); err != nil {
		return fmt.Errorf("store: truncating WAL: %w", err)
	}
	if err := d.wal.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	d.mu.Lock()
	d.walSize = walHdrSize
	d.mu.Unlock()
	return nil
}

// doSnapshot services one Sync request on the committer goroutine: drain
// the applier, force the pages durable, truncate the log.
func (d *Durable) doSnapshot(s *walReq) {
	d.drainApplier()
	err := d.compact()
	if err != nil {
		err = d.poison(fmt.Errorf("store: snapshot: %w", err))
	}
	s.done <- err
}

// commit makes one group's records durable and forwards it to the
// applier. An append or sync failure poisons the engine and fails the
// group's waiters directly — their batches are not acknowledged, and the
// on-disk tail, whatever made it out, will be discarded by replay.
func (d *Durable) commit(group []*walReq) {
	obsWALCommitGroup.Record(int64(len(group)))
	if err := d.appendAndSync(group); err != nil {
		err = d.poison(err)
		for _, r := range group {
			r.done <- err
		}
		return
	}
	d.apply <- applyGroup{reqs: group}
	d.maybeCompact()
}

// applier writes the synced groups' pages and wakes their waiters, in
// commit order. One merged applyPages call per group: the whole round's
// ops sort and coalesce together (stable, so cross-batch duplicate
// addresses keep last-write-wins), costing one lock acquisition and
// run-length WriteAts instead of per-batch ones.
func (d *Durable) applier() {
	defer close(d.done)
	for g := range d.apply {
		if g.reqs == nil {
			close(g.drained)
			continue
		}
		var ops []WriteOp
		if len(g.reqs) == 1 {
			ops = g.reqs[0].ops
		} else {
			total := 0
			for _, r := range g.reqs {
				total += len(r.ops)
			}
			ops = make([]WriteOp, 0, total)
			for _, r := range g.reqs {
				ops = append(ops, r.ops...)
			}
		}
		t0 := time.Now()
		err := d.applyPages(ops)
		obsWALApply.Since(t0)
		if err != nil {
			err = d.poison(err)
		}
		for _, r := range g.reqs {
			r.done <- err
		}
	}
}

// poison latches the first fatal error and returns the sticky value.
func (d *Durable) poison(err error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sticky == nil {
		d.sticky = fmt.Errorf("store: durable commit failed: %w", err)
	}
	return d.sticky
}

// drainApplier inserts a barrier into the apply stream and waits for it:
// afterwards every previously synced group's pages are written. Called by
// the committer (compaction) and the close path.
func (d *Durable) drainApplier() {
	barrier := applyGroup{drained: make(chan struct{})}
	d.apply <- barrier
	<-barrier.drained
}

// appendAndSync writes the group's records contiguously at the log tail
// and makes them durable per the sync mode.
func (d *Durable) appendAndSync(group []*walReq) error {
	tAppend := time.Now()
	d.mu.Lock()
	off := d.walSize
	d.mu.Unlock()
	var buf []byte
	if len(group) == 1 {
		buf = group[0].rec
	} else {
		total := 0
		for _, r := range group {
			total += len(r.rec)
		}
		buf = make([]byte, 0, total)
		for _, r := range group {
			buf = append(buf, r.rec...)
		}
	}
	if tap := d.opts.Tap; tap != nil {
		torn, terr := tap.Append(off, buf)
		if terr != nil {
			if len(torn) > 0 {
				d.wal.WriteAt(torn, off) //nolint:errcheck // simulated torn tail
			}
			return terr
		}
		buf = torn
	}
	if _, err := d.wal.WriteAt(buf, off); err != nil {
		return fmt.Errorf("store: appending WAL: %w", err)
	}
	if d.opts.Sync != SyncNone {
		t0 := time.Now()
		obsWALAppend.Observe(t0.Sub(tAppend))
		if err := datasync(d.wal); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
		// EWMA (α = 1/4) of sync latency, read only by the committer;
		// mirrored into the atomic gauge for SyncLatency.
		fsync := time.Since(t0)
		obsWALFsync.Observe(fsync)
		d.syncEWMA += (fsync - d.syncEWMA) / 4
		d.syncGauge.Store(int64(d.syncEWMA))
	} else {
		obsWALAppend.Since(tAppend)
	}
	d.mu.Lock()
	d.walSize = off + int64(len(buf))
	d.mu.Unlock()
	return nil
}

// maybeCompact snapshots and truncates the log once it outgrows WALLimit.
// Runs on the committer goroutine, so no new records can interleave; the
// applier is drained first, because truncating the log before a synced
// group's pages are written would un-protect exactly the records that
// still need replay.
func (d *Durable) maybeCompact() {
	d.mu.Lock()
	over := d.walSize > d.opts.WALLimit
	d.mu.Unlock()
	if !over {
		return
	}
	obsWALCompactions.Inc()
	d.drainApplier()
	if err := d.compact(); err != nil {
		d.poison(fmt.Errorf("store: WAL compaction failed: %w", err)) //nolint:errcheck
	}
}

// --- Server / BatchServer ----------------------------------------------------

// Size implements Server.
func (d *Durable) Size() int { return d.n }

// BlockSize implements Server.
func (d *Durable) BlockSize() int { return d.blockSize }

// Download implements Server.
func (d *Durable) Download(addr int) (block.Block, error) {
	blocks, err := d.ReadBatch([]int{addr})
	if err != nil {
		return nil, err
	}
	return blocks[0], nil
}

// Upload implements Server.
func (d *Durable) Upload(addr int, b block.Block) error {
	return d.WriteBatch([]WriteOp{{Addr: addr, Block: b}})
}

// ReadBatch implements BatchServer with File-style run coalescing over
// pages; every page's checksum is verified before its payload is returned.
func (d *Durable) ReadBatch(addrs []int) ([]block.Block, error) {
	if err := d.gate(); err != nil {
		return nil, err
	}
	for _, a := range addrs {
		if a < 0 || a >= d.n {
			return nil, fmt.Errorf("%w: %d (size %d)", ErrAddr, a, d.n)
		}
	}
	var order []int
	if keys := sortKeys(len(addrs), func(i int) int { return addrs[i] }); keys != nil {
		order = make([]int, len(keys))
		for i, k := range keys {
			order[i] = int(k & (1<<sortKeyBits - 1))
		}
	} else {
		order = make([]int, len(addrs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return addrs[order[a]] < addrs[order[b]] })
	}
	out := newSlab(len(addrs), d.blockSize)
	maxRun := fileMaxRunBytes / d.pageSize
	if maxRun < 1 {
		maxRun = 1
	}
	d.pageMu.Lock()
	defer d.pageMu.Unlock()
	for start := 0; start < len(order); {
		end := start + 1
		for end < len(order) && addrs[order[end]]-addrs[order[end-1]] <= 1 &&
			addrs[order[end]]-addrs[order[start]] < maxRun {
			end++
		}
		base := addrs[order[start]]
		last := addrs[order[end-1]]
		// Scatter the run directly into the result slab, each payload
		// alternating with its CRC trailer into the staging buffer (the
		// on-disk page layout): one vectored read per run, no page assembly
		// copy. Duplicates are read once and filled from the first
		// occurrence afterwards.
		if need := (last - base + 1) * pageTrailer; cap(d.crcBuf) < need {
			d.crcBuf = make([]byte, need)
		}
		d.bufs = d.bufs[:0]
		pages, prev := 0, -1
		for k := start; k < end; k++ {
			oi := order[k]
			if addrs[oi] == prev {
				continue
			}
			prev = addrs[oi]
			d.bufs = append(d.bufs, out[oi], d.crcBuf[pages*pageTrailer:(pages+1)*pageTrailer])
			pages++
		}
		if err := d.vec.readv(d.pages, d.bufs, d.pageOff(base)); err != nil {
			return nil, fmt.Errorf("store: reading pages [%d,%d]: %w", base, last, err)
		}
		pages, prev = 0, -1
		for k := start; k < end; k++ {
			oi := order[k]
			if addrs[oi] == prev {
				copy(out[oi], out[order[k-1]])
				continue
			}
			prev = addrs[oi]
			crc := d.crcBuf[pages*pageTrailer : (pages+1)*pageTrailer]
			pages++
			if crc32.Checksum(out[oi], castagnoli) != binary.BigEndian.Uint32(crc) {
				return nil, fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, addrs[oi])
			}
		}
		start = end
	}
	return out, nil
}

// WriteBatch implements BatchServer: the whole batch becomes one WAL
// record — atomic across crashes — made durable before any page is
// written, and acknowledged only once both have happened.
func (d *Durable) WriteBatch(ops []WriteOp) error {
	if len(ops) == 0 {
		return nil
	}
	if err := d.gate(); err != nil {
		return err
	}
	for _, op := range ops {
		if op.Addr < 0 || op.Addr >= d.n {
			return fmt.Errorf("%w: %d (size %d)", ErrAddr, op.Addr, d.n)
		}
		if len(op.Block) != d.blockSize {
			return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(op.Block), d.blockSize)
		}
	}
	cp := make([]WriteOp, len(ops))
	for i, op := range ops {
		cp[i] = WriteOp{Addr: op.Addr, Block: op.Block.Copy()}
	}
	req := &walReq{rec: d.encodeWALRecord(cp), ops: cp, done: make(chan error, 1)}
	if err := d.send(req); err != nil {
		return err
	}
	return <-req.done
}

// send enqueues a request onto the commit queue, failing (instead of
// panicking) if it races a Close.
func (d *Durable) send(req *walReq) error {
	d.sendMu.RLock()
	defer d.sendMu.RUnlock()
	if err := d.gate(); err != nil {
		return err
	}
	d.reqs <- req
	return nil
}

// gate is the common closed/poisoned check.
func (d *Durable) gate() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sticky != nil {
		return d.sticky
	}
	if d.closed {
		return fmt.Errorf("store: durable store %s is closed", d.base)
	}
	return nil
}

// SyncLatency returns the engine's observed WAL fsync latency (EWMA,
// α = 1/4), zero until the first synced commit or under SyncNone. The
// metrics endpoint exports it per namespace — a climbing value is the
// earliest warning that the disk, not the CPU, is the bottleneck.
func (d *Durable) SyncLatency() time.Duration {
	return time.Duration(d.syncGauge.Load())
}

// WALSize returns the current log size in bytes (header included); tests
// and operators use it to observe compaction.
func (d *Durable) WALSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.walSize
}

// Sync forces everything acknowledged so far durable into the pages file
// and compacts the log — the explicit snapshot point (SyncNone callers use
// it after bulk loads). It rides the commit queue, so it orders cleanly
// after every WriteBatch that returned before it was called.
func (d *Durable) Sync() error {
	if err := d.gate(); err != nil {
		return err
	}
	req := &walReq{snapshot: true, done: make(chan error, 1)}
	if err := d.send(req); err != nil {
		return err
	}
	return <-req.done
}

// Close drains the committer, snapshots the pages, truncates the log, and
// closes both files. A cleanly closed store replays nothing on reopen.
func (d *Durable) Close() error {
	d.mu.Lock()
	already := d.closed
	d.closed = true
	d.mu.Unlock()
	if already {
		return nil
	}
	// Exclusive sendMu waits out any sender that passed the gate before
	// closed was set, so the channel close below cannot race a send.
	d.sendMu.Lock()
	close(d.reqs)
	d.sendMu.Unlock()
	<-d.done
	var first error
	d.mu.Lock()
	poisoned := d.sticky != nil
	d.mu.Unlock()
	if !poisoned {
		// Snapshot so a clean shutdown needs no replay. (A poisoned engine
		// skips this: its WAL tail is the authoritative record of what was
		// — and was not — acknowledged.)
		if err := d.compact(); err != nil && first == nil {
			first = err
		}
	}
	if err := d.wal.Close(); err != nil && first == nil {
		first = err
	}
	if err := d.pages.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir %s: %w", dir, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: syncing dir %s: %w", dir, err)
	}
	return nil
}

// Wait compile-time interface checks.
var (
	_ BatchServer = (*Durable)(nil)
	_ io.Closer   = (*Durable)(nil)
)
