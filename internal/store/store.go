// Package store implements the passive storage server of the paper's model.
//
// Definition 3.1 restricts client–server interaction to two moves: download
// the ball at a server address, and upload a ball to a server address. The
// Server interface is exactly that. The package ships four implementations:
//
//   - Mem: an in-memory array, the workhorse for experiments;
//   - File: a disk-backed array (one fixed-size slot per record);
//   - Counting: a wrapper that meters operations and bytes, giving the
//     "overhead" columns of every experiment table;
//   - Remote: a TCP client speaking the wire protocol of package wire,
//     paired with Serve, so the constructions run unchanged against a real
//     networked server (cmd/blockstored).
//
// Because the server is passive, any Server implementation is automatically
// consistent with the balls-and-bins lower bounds: the transcript of an
// execution is precisely the sequence of Download/Upload calls.
package store

import (
	"errors"
	"fmt"
	"sync"

	"dpstore/internal/block"
)

// ErrAddr reports an out-of-range server address.
var ErrAddr = errors.New("store: address out of range")

// Server is the passive storage party server_m of Definition 3.1. Addresses
// are zero-based. Implementations must be safe for concurrent use.
type Server interface {
	// Download returns a copy of the block at addr.
	Download(addr int) (block.Block, error)
	// Upload stores a copy of b at addr.
	Upload(addr int, b block.Block) error
	// Size returns the number of addressable slots m.
	Size() int
	// BlockSize returns the fixed slot size in bytes.
	BlockSize() int
}

// Mem is an in-memory Server.
type Mem struct {
	mu        sync.RWMutex
	blockSize int
	slots     []block.Block
}

// NewMem creates an in-memory server with n zeroed slots of blockSize bytes.
func NewMem(n, blockSize int) (*Mem, error) {
	if n <= 0 {
		return nil, fmt.Errorf("store: slot count %d must be positive", n)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("store: block size %d must be positive", blockSize)
	}
	m := &Mem{blockSize: blockSize, slots: make([]block.Block, n)}
	for i := range m.slots {
		m.slots[i] = block.New(blockSize)
	}
	return m, nil
}

// NewMemFrom creates an in-memory server initialized with the blocks of db.
// The server copies the database, so later mutation of db is invisible.
func NewMemFrom(db *block.Database) (*Mem, error) {
	m, err := NewMem(db.Len(), db.BlockSize())
	if err != nil {
		return nil, err
	}
	for i := 0; i < db.Len(); i++ {
		copy(m.slots[i], db.Get(i))
	}
	return m, nil
}

// Download implements Server.
func (m *Mem) Download(addr int) (block.Block, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if addr < 0 || addr >= len(m.slots) {
		return nil, fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, len(m.slots))
	}
	return m.slots[addr].Copy(), nil
}

// Upload implements Server.
func (m *Mem) Upload(addr int, b block.Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr < 0 || addr >= len(m.slots) {
		return fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, len(m.slots))
	}
	if len(b) != m.blockSize {
		return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(b), m.blockSize)
	}
	copy(m.slots[addr], b)
	return nil
}

// Size implements Server.
func (m *Mem) Size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.slots)
}

// BlockSize implements Server.
func (m *Mem) BlockSize() int { return m.blockSize }

// Stats is a snapshot of the traffic a Counting server has seen.
type Stats struct {
	Downloads     int64
	Uploads       int64
	BytesDown     int64
	BytesUp       int64
	TouchedUnique int // distinct addresses operated on since the last Reset
}

// Ops returns total operations (downloads + uploads), the paper's unit of
// overhead.
func (s Stats) Ops() int64 { return s.Downloads + s.Uploads }

// Counting wraps a Server and meters its traffic. All experiment tables are
// produced by sandwiching a Counting server between a construction and its
// backing store.
type Counting struct {
	inner Server

	mu      sync.Mutex
	stats   Stats
	touched map[int]struct{}
}

// NewCounting wraps inner with a fresh meter.
func NewCounting(inner Server) *Counting {
	return &Counting{inner: inner, touched: make(map[int]struct{})}
}

// Download implements Server.
func (c *Counting) Download(addr int) (block.Block, error) {
	b, err := c.inner.Download(addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.Downloads++
	c.stats.BytesDown += int64(len(b))
	c.touched[addr] = struct{}{}
	c.mu.Unlock()
	return b, nil
}

// Upload implements Server.
func (c *Counting) Upload(addr int, b block.Block) error {
	if err := c.inner.Upload(addr, b); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Uploads++
	c.stats.BytesUp += int64(len(b))
	c.touched[addr] = struct{}{}
	c.mu.Unlock()
	return nil
}

// Size implements Server.
func (c *Counting) Size() int { return c.inner.Size() }

// BlockSize implements Server.
func (c *Counting) BlockSize() int { return c.inner.BlockSize() }

// Stats returns a snapshot of the meter.
func (c *Counting) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.TouchedUnique = len(c.touched)
	return s
}

// Reset zeroes the meter.
func (c *Counting) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
	c.touched = make(map[int]struct{})
}
