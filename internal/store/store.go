// Package store implements the passive storage server of the paper's model.
//
// Definition 3.1 restricts client–server interaction to two moves: download
// the ball at a server address, and upload a ball to a server address. The
// Server interface is exactly that. The package ships four implementations:
//
//   - Mem: an in-memory array, the workhorse for experiments;
//   - File: a disk-backed array (one fixed-size slot per record);
//   - Counting: a wrapper that meters operations and bytes, giving the
//     "overhead" columns of every experiment table;
//   - Remote: a TCP client speaking the wire protocol of package wire,
//     paired with Serve, so the constructions run unchanged against a real
//     networked server (cmd/blockstored).
//
// Because the server is passive, any Server implementation is automatically
// consistent with the balls-and-bins lower bounds: the transcript of an
// execution is precisely the sequence of Download/Upload calls.
package store

import (
	"errors"
	"fmt"
	"sync"

	"dpstore/internal/block"
)

// ErrAddr reports an out-of-range server address.
var ErrAddr = errors.New("store: address out of range")

// Server is the passive storage party server_m of Definition 3.1. Addresses
// are zero-based. Implementations must be safe for concurrent use.
type Server interface {
	// Download returns a copy of the block at addr.
	Download(addr int) (block.Block, error)
	// Upload stores a copy of b at addr.
	Upload(addr int, b block.Block) error
	// Size returns the number of addressable slots m.
	Size() int
	// BlockSize returns the fixed slot size in bytes.
	BlockSize() int
}

// Mem is an in-memory Server.
type Mem struct {
	mu        sync.RWMutex
	blockSize int
	slots     []block.Block
}

// NewMem creates an in-memory server with n zeroed slots of blockSize bytes.
func NewMem(n, blockSize int) (*Mem, error) {
	if n <= 0 {
		return nil, fmt.Errorf("store: slot count %d must be positive", n)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("store: block size %d must be positive", blockSize)
	}
	m := &Mem{blockSize: blockSize, slots: make([]block.Block, n)}
	for i := range m.slots {
		m.slots[i] = block.New(blockSize)
	}
	return m, nil
}

// NewMemFrom creates an in-memory server initialized with the blocks of db.
// The server copies the database, so later mutation of db is invisible.
func NewMemFrom(db *block.Database) (*Mem, error) {
	m, err := NewMem(db.Len(), db.BlockSize())
	if err != nil {
		return nil, err
	}
	for i := 0; i < db.Len(); i++ {
		copy(m.slots[i], db.Get(i))
	}
	return m, nil
}

// Download implements Server.
func (m *Mem) Download(addr int) (block.Block, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if addr < 0 || addr >= len(m.slots) {
		return nil, fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, len(m.slots))
	}
	return m.slots[addr].Copy(), nil
}

// Upload implements Server.
func (m *Mem) Upload(addr int, b block.Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr < 0 || addr >= len(m.slots) {
		return fmt.Errorf("%w: %d (size %d)", ErrAddr, addr, len(m.slots))
	}
	if len(b) != m.blockSize {
		return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(b), m.blockSize)
	}
	copy(m.slots[addr], b)
	return nil
}

// ReadBatch implements BatchServer under a single lock acquisition. The
// returned blocks are carved from one slab (two allocations per batch, not
// one per block); see slab.go for the ownership rules.
func (m *Mem) ReadBatch(addrs []int) ([]block.Block, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, a := range addrs {
		if a < 0 || a >= len(m.slots) {
			return nil, fmt.Errorf("%w: %d (size %d)", ErrAddr, a, len(m.slots))
		}
	}
	out := newSlab(len(addrs), m.blockSize)
	for i, a := range addrs {
		copy(out[i], m.slots[a])
	}
	return out, nil
}

// AppendReadBatch implements BatchAppender: the serve loop's zero-copy read
// path appends the requested slots directly onto the response buffer, under
// the same single lock acquisition as ReadBatch. All addresses are
// validated before any byte is appended, so dst is returned unchanged on
// error.
func (m *Mem) AppendReadBatch(dst []byte, addrs []int) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, a := range addrs {
		if a < 0 || a >= len(m.slots) {
			return dst, fmt.Errorf("%w: %d (size %d)", ErrAddr, a, len(m.slots))
		}
	}
	for _, a := range addrs {
		dst = append(dst, m.slots[a]...)
	}
	return dst, nil
}

// WriteBatch implements BatchServer under a single lock acquisition. All
// ops are validated before any slot is written, so a failed batch leaves
// the store untouched.
func (m *Mem) WriteBatch(ops []WriteOp) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, op := range ops {
		if op.Addr < 0 || op.Addr >= len(m.slots) {
			return fmt.Errorf("%w: %d (size %d)", ErrAddr, op.Addr, len(m.slots))
		}
		if len(op.Block) != m.blockSize {
			return fmt.Errorf("%w: got %d want %d", block.ErrSize, len(op.Block), m.blockSize)
		}
	}
	for _, op := range ops {
		copy(m.slots[op.Addr], op.Block)
	}
	return nil
}

// Size implements Server.
func (m *Mem) Size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.slots)
}

// BlockSize implements Server.
func (m *Mem) BlockSize() int { return m.blockSize }

// Stats is a snapshot of the traffic a Counting server has seen.
type Stats struct {
	Downloads     int64
	Uploads       int64
	BytesDown     int64
	BytesUp       int64
	TouchedUnique int // distinct addresses operated on since the last Reset
}

// Ops returns total operations (downloads + uploads), the paper's unit of
// overhead.
func (s Stats) Ops() int64 { return s.Downloads + s.Uploads }

// Counting wraps a Server and meters its traffic. All experiment tables are
// produced by sandwiching a Counting server between a construction and its
// backing store.
type Counting struct {
	inner Server
	batch BatchServer // inner's batch view; the loop adapter when not native

	mu      sync.Mutex
	stats   Stats
	touched map[int]struct{}
}

// NewCounting wraps inner with a fresh meter.
func NewCounting(inner Server) *Counting {
	return &Counting{inner: inner, batch: AsBatch(inner), touched: make(map[int]struct{})}
}

// Download implements Server.
func (c *Counting) Download(addr int) (block.Block, error) {
	b, err := c.inner.Download(addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.Downloads++
	c.stats.BytesDown += int64(len(b))
	c.touched[addr] = struct{}{}
	c.mu.Unlock()
	return b, nil
}

// Upload implements Server.
func (c *Counting) Upload(addr int, b block.Block) error {
	if err := c.inner.Upload(addr, b); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Uploads++
	c.stats.BytesUp += int64(len(b))
	c.touched[addr] = struct{}{}
	c.mu.Unlock()
	return nil
}

// ReadBatch implements BatchServer, metering the batch as len(addrs)
// downloads — one block operation per address, the paper's unit of
// overhead — so batched and per-block executions of the same access
// pattern report identical Stats.
//
// A batch that fails is metered as zero operations, like a failed
// Download. (A per-block caller meters the successful prefix before the
// failing op; the batch layer cannot see how far the inner server got, so
// Stats diverge from the per-block equivalent only on failed batches —
// never on any completed access.)
func (c *Counting) ReadBatch(addrs []int) ([]block.Block, error) {
	blocks, err := c.batch.ReadBatch(addrs)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	for i, a := range addrs {
		c.stats.Downloads++
		c.stats.BytesDown += int64(len(blocks[i]))
		c.touched[a] = struct{}{}
	}
	c.mu.Unlock()
	return blocks, nil
}

// WriteBatch implements BatchServer, metered as len(ops) uploads.
func (c *Counting) WriteBatch(ops []WriteOp) error {
	if err := c.batch.WriteBatch(ops); err != nil {
		return err
	}
	c.mu.Lock()
	for _, op := range ops {
		c.stats.Uploads++
		c.stats.BytesUp += int64(len(op.Block))
		c.touched[op.Addr] = struct{}{}
	}
	c.mu.Unlock()
	return nil
}

// Size implements Server.
func (c *Counting) Size() int { return c.inner.Size() }

// BlockSize implements Server.
func (c *Counting) BlockSize() int { return c.inner.BlockSize() }

// Stats returns a snapshot of the meter.
func (c *Counting) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.TouchedUnique = len(c.touched)
	return s
}

// Reset zeroes the meter.
func (c *Counting) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
	c.touched = make(map[int]struct{})
}
