package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed request's trace: where its time went, split into
// queue wait (admission) and service (execute + flush). It carries the
// namespace and frame type only — per the address-independence rule, a
// span never names a block address or payload.
type Span struct {
	Time    time.Time     `json:"time"`
	NS      string        `json:"ns"`
	Frame   string        `json:"frame"`
	Queue   time.Duration `json:"queue_ns"`
	Service time.Duration `json:"service_ns"`
	Total   time.Duration `json:"total_ns"`
}

const slowLogCap = 128

// SlowLog keeps a ring of the most recent spans whose total latency
// crossed an atomic threshold, and optionally emits a structured log
// line per slow request. A zero threshold disables it entirely; the hot
// path's only cost when disabled is one atomic load (Enabled).
type SlowLog struct {
	threshold atomic.Int64
	slow      atomic.Uint64 // total spans admitted past the threshold

	mu   sync.Mutex
	ring [slowLogCap]Span
	n    int // total spans written into the ring
	logf func(format string, args ...any)
}

var defaultSlowLog SlowLog

// DefaultSlowLog returns the process-wide slow-request ring the serve
// loop feeds.
func DefaultSlowLog() *SlowLog { return &defaultSlowLog }

// SetThreshold arms the slow log: spans with Total ≥ d are kept. d ≤ 0
// disables.
func (sl *SlowLog) SetThreshold(d time.Duration) { sl.threshold.Store(int64(d)) }

// Threshold returns the current threshold (0 = disabled).
func (sl *SlowLog) Threshold() time.Duration { return time.Duration(sl.threshold.Load()) }

// Enabled reports whether any span could be admitted — the hot path's
// cheap pre-check before computing durations.
func (sl *SlowLog) Enabled() bool { return sl.threshold.Load() > 0 }

// SetLogf installs a structured-log sink called once per admitted span
// (nil silences it; the ring still fills).
func (sl *SlowLog) SetLogf(f func(format string, args ...any)) {
	sl.mu.Lock()
	sl.logf = f
	sl.mu.Unlock()
}

// Count returns the number of spans admitted past the threshold since
// process start.
func (sl *SlowLog) Count() uint64 { return sl.slow.Load() }

// Observe offers a span; it is kept only if the slow log is armed and
// sp.Total crosses the threshold. Callers on hot paths should pre-check
// Enabled() to skip building the span at all.
func (sl *SlowLog) Observe(sp Span) {
	t := sl.threshold.Load()
	if t <= 0 || int64(sp.Total) < t {
		return
	}
	if sp.Time.IsZero() {
		sp.Time = time.Now()
	}
	sl.slow.Add(1)
	sl.mu.Lock()
	sl.ring[sl.n%slowLogCap] = sp
	sl.n++
	logf := sl.logf
	sl.mu.Unlock()
	if logf != nil {
		logf("slow request: ns=%s frame=%s total=%v queue=%v service=%v",
			sp.NS, sp.Frame, sp.Total, sp.Queue, sp.Service)
	}
}

// Recent returns the retained spans, newest first.
func (sl *SlowLog) Recent() []Span {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	n := sl.n
	if n > slowLogCap {
		n = slowLogCap
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sl.ring[(sl.n-1-i)%slowLogCap])
	}
	return out
}
