package obs

import (
	"dpstore/internal/stats"
)

// Sample is one exported series at a moment: identity (name + rendered
// labels), its contract (kind/class), and its value. Histograms and
// timers carry their full non-empty bucket contents so two samples can
// be compared bucket-for-bucket — the obliviousness regression's
// equality is over the distribution, not a lossy summary.
type Sample struct {
	Name   string
	Labels []Label
	Key    string // name{k=v,...} — unique series identity
	Kind   Kind
	Class  Class

	Value   int64             // counter (as int64) or gauge value
	Count   uint64            // hist/timer observation count
	Sum     int64             // hist/timer value sum
	Max     int64             // hist/timer max
	Buckets map[int]uint64    // hist/timer non-empty buckets, index → count
	hist    stats.LatencyHist // private copy backing Quantile
}

// Quantile returns the q-quantile of a hist/timer sample (0 otherwise).
func (s *Sample) Quantile(q float64) int64 {
	if s.Kind != KindHist && s.Kind != KindTimer {
		return 0
	}
	return s.hist.QuantileValue(q)
}

// Snapshot returns every registered series in registration order.
// Function gauges are read at snapshot time.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	keys := append([]string(nil), r.keys...)
	byKey := make(map[string]*instrument, len(keys))
	for k, ins := range r.by {
		byKey[k] = ins
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(keys))
	scratch := stats.NewLatencyHist()
	for _, k := range keys {
		ins := byKey[k]
		s := Sample{Name: ins.name, Labels: ins.labels, Key: k, Kind: ins.kind, Class: ins.class}
		switch ins.kind {
		case KindCounter:
			s.Value = int64(ins.counter.Value())
		case KindGauge:
			s.Value = ins.gauge.Value()
		case KindHist:
			ins.hist.SnapshotInto(scratch)
			fillHistSample(&s, scratch)
		case KindTimer:
			ins.timer.SnapshotInto(scratch)
			fillHistSample(&s, scratch)
		}
		out = append(out, s)
	}
	return out
}

func fillHistSample(s *Sample, h *stats.LatencyHist) {
	s.Count = h.Count()
	s.Sum = int64(h.Mean() * float64(h.Count()))
	s.Max = h.Max()
	s.Buckets = h.NonzeroBuckets()
	s.hist = *h.Clone()
}

// Delta returns after minus before as a map keyed by series identity.
// Series present only in after appear as-is; counters/hist counts
// subtract, gauges carry the after value (occupancy has no meaningful
// delta). A series present in before but absent in after is impossible
// (instruments are never unregistered) and is ignored.
func Delta(before, after []Sample) map[string]Sample {
	prev := make(map[string]*Sample, len(before))
	for i := range before {
		prev[before[i].Key] = &before[i]
	}
	out := make(map[string]Sample, len(after))
	for _, s := range after {
		if b, ok := prev[s.Key]; ok {
			switch s.Kind {
			case KindCounter:
				s.Value -= b.Value
			case KindHist, KindTimer:
				s.Count -= b.Count
				s.Sum -= b.Sum
				buckets := make(map[int]uint64, len(s.Buckets))
				for i, c := range s.Buckets {
					if d := c - b.Buckets[i]; d != 0 {
						buckets[i] = d
					}
				}
				s.Buckets = buckets
			}
		}
		out[s.Key] = s
	}
	return out
}
