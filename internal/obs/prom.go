package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the content type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

var summaryQuantiles = []struct {
	q     float64
	label string
}{
	{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}, {0.999, "0.999"},
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges render one series each;
// histograms and timers render as summaries (quantile series plus _sum
// and _count), with timers converted from nanoseconds to seconds. Series
// are grouped by metric name with the TYPE comment emitted once per
// name, as the format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	// Group by name, keeping the registration order of first appearance.
	order := make([]string, 0, len(snap))
	groups := make(map[string][]*Sample, len(snap))
	for i := range snap {
		s := &snap[i]
		if _, ok := groups[s.Name]; !ok {
			order = append(order, s.Name)
		}
		groups[s.Name] = append(groups[s.Name], s)
	}
	for _, name := range order {
		group := groups[name]
		sort.SliceStable(group, func(i, j int) bool { return group[i].Key < group[j].Key })
		promType := "counter"
		switch group[0].Kind {
		case KindGauge:
			promType = "gauge"
		case KindHist, KindTimer:
			promType = "summary"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, promType); err != nil {
			return err
		}
		for _, s := range group {
			if err := writePromSample(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSample(w io.Writer, s *Sample) error {
	switch s.Kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, promLabels(s.Labels, "", ""), uint64(s.Value))
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Value)
		return err
	}
	// Summary: timers are recorded in nanoseconds, exported in seconds;
	// plain hists (batch sizes) export raw values.
	scale := 1.0
	if s.Kind == KindTimer {
		scale = 1e-9
	}
	for _, sq := range summaryQuantiles {
		v := float64(s.Quantile(sq.q)) * scale
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			s.Name, promLabels(s.Labels, "quantile", sq.label), formatFloat(v)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		s.Name, promLabels(s.Labels, "", ""), formatFloat(float64(s.Sum)*scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Count)
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for _, l := range labels {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
		n++
	}
	if extraKey != "" {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
