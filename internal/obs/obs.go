// Package obs is the address-oblivious telemetry core: named atomic
// counters, gauges, and histogram-backed timers that every layer of the
// serve stack records into, plus Prometheus text exposition and a
// slow-request ring.
//
// The load-bearing rule, inherited from the paper's adversary model (the
// storage server observes the access sequence): no instrument may key on
// a block address, record content, or any per-tenant cardinality beyond
// the namespace name. Instruments carry a Class so the obliviousness
// regression suite can assert what must be bit-identical across access
// patterns (ClassExact) versus what is only allowed to exist
// (timing/occupancy). The allowed label keys are pinned by
// LabelWhitelist; anything outside it fails the regression, which is how
// an accidentally address-keyed instrument is caught before it ships.
//
// Record/Inc/Set on every instrument is allocation-free and safe for
// concurrent use; registration (NewCounter etc.) takes a lock and is
// meant for init-time or per-namespace setup, not per-request paths.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpstore/internal/stats"
)

// Kind is the instrument's shape: how it is exported.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHist  // histogram over dimensionless values (batch sizes, counts)
	KindTimer // histogram over durations, exported in seconds
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHist:
		return "hist"
	case KindTimer:
		return "timer"
	}
	return "unknown"
}

// Class is the instrument's obliviousness contract — what the regression
// suite may assert about its value across access-pattern permutations.
type Class uint8

const (
	// ClassExact values are pure functions of the public request sequence
	// (counts of requests, accesses, and the data-independent batch shapes
	// the schemes emit). The hot-spot-vs-uniform regression asserts these
	// are bit-identical across access patterns.
	ClassExact Class = iota
	// ClassTiming values depend on wall-clock durations (latency quantiles,
	// fsync counts under coalescing). Only their existence and label set
	// are asserted, never their values.
	ClassTiming
	// ClassLoad values are instantaneous occupancy (inflight, queue depth,
	// stash depth) — scheduling-dependent. Existence-only, like timing.
	ClassLoad
	// ClassRouting values are keyed by the public routing index (partition
	// number, replica name) — information the server already holds by
	// construction. Existence-only across patterns (per-partition counts
	// are pattern-dependent by design; the partition map itself is public).
	ClassRouting
)

func (c Class) String() string {
	switch c {
	case ClassExact:
		return "exact"
	case ClassTiming:
		return "timing"
	case ClassLoad:
		return "load"
	case ClassRouting:
		return "routing"
	}
	return "unknown"
}

// LabelWhitelist is the complete set of label keys any instrument may
// carry. "quantile" is reserved for the exposition layer's summary
// series. The obliviousness regression fails on any key outside this
// set — per-address or per-record labels cannot exist by construction.
var LabelWhitelist = map[string]bool{
	"ns":        true, // namespace name (the one permitted tenant dimension)
	"type":      true, // wire frame type name
	"partition": true, // public routing index
	"replica":   true, // replica name from the cluster spec
	"quantile":  true,
}

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value. When registered with a read function
// (NewGaugeFunc), the function wins and Set is ignored.
type Gauge struct {
	v  atomic.Int64
	mu sync.Mutex // guards fn replacement
	fn func() int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value (calling the read function if set).
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return g.v.Load()
}

func (g *Gauge) setFunc(fn func() int64) {
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// Hist is a histogram over dimensionless non-negative values (batch
// sizes, group sizes). Record is allocation-free and concurrent.
type Hist struct {
	h stats.AtomicHist
}

// Record adds one observation.
func (h *Hist) Record(v int64) { h.h.RecordValue(v) }

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.h.Count() }

// SnapshotInto folds the current contents into dst.
func (h *Hist) SnapshotInto(dst *stats.LatencyHist) { h.h.SnapshotInto(dst) }

// Timer is a histogram over durations, recorded in nanoseconds and
// exported in seconds. Observe is allocation-free and concurrent.
type Timer struct {
	h stats.AtomicHist
}

// Observe adds one duration observation.
func (t *Timer) Observe(d time.Duration) { t.h.RecordValue(int64(d)) }

// Since observes the time elapsed since t0.
func (t *Timer) Since(t0 time.Time) { t.h.RecordValue(int64(time.Since(t0))) }

// Count returns the number of observations.
func (t *Timer) Count() uint64 { return t.h.Count() }

// SnapshotInto folds the current contents into dst (nanosecond values).
func (t *Timer) SnapshotInto(dst *stats.LatencyHist) { t.h.SnapshotInto(dst) }

// instrument is one registered series: a name, a rendered label set, and
// exactly one of the four value holders.
type instrument struct {
	name   string
	labels []Label // sorted by key
	kind   Kind
	class  Class
	help   string

	counter *Counter
	gauge   *Gauge
	hist    *Hist
	timer   *Timer
}

// Label is one key=value pair on an instrument.
type Label struct {
	Key, Value string
}

type options struct {
	labels []Label
	class  Class
	hasCls bool
	help   string
}

// Option configures instrument registration.
type Option func(*options)

// WithLabels attaches key/value label pairs (must be an even count of
// strings; keys should be in LabelWhitelist).
func WithLabels(kv ...string) Option {
	return func(o *options) {
		for i := 0; i+1 < len(kv); i += 2 {
			o.labels = append(o.labels, Label{Key: kv[i], Value: kv[i+1]})
		}
	}
}

// WithClass overrides the kind's default obliviousness class
// (counters/hists default to ClassExact, timers to ClassTiming, gauges
// to ClassLoad).
func WithClass(c Class) Option {
	return func(o *options) { o.class = c; o.hasCls = true }
}

// WithHelp attaches a HELP line for the Prometheus exposition.
func WithHelp(h string) Option {
	return func(o *options) { o.help = h }
}

// Registry holds instruments. Get-or-create is keyed by name plus the
// sorted label set, so a re-registration (e.g. a test rebuilding a
// namespace) returns the same series rather than a duplicate.
type Registry struct {
	mu   sync.Mutex
	by   map[string]*instrument
	keys []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*instrument)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every layer records into.
func Default() *Registry { return defaultRegistry }

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func buildOpts(kind Kind, opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	sort.SliceStable(o.labels, func(i, j int) bool { return o.labels[i].Key < o.labels[j].Key })
	if !o.hasCls {
		switch kind {
		case KindTimer:
			o.class = ClassTiming
		case KindGauge:
			o.class = ClassLoad
		default:
			o.class = ClassExact
		}
	}
	return o
}

// get returns the instrument for (name, labels), creating it if absent.
// Creating with a different kind than an existing series is a
// programming error; the existing instrument wins and the mismatched
// holder is nil — callers would nil-panic fast, in tests.
func (r *Registry) get(name string, kind Kind, opts []Option) *instrument {
	o := buildOpts(kind, opts)
	key := seriesKey(name, o.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if ins, ok := r.by[key]; ok {
		return ins
	}
	ins := &instrument{name: name, labels: o.labels, kind: kind, class: o.class, help: o.help}
	switch kind {
	case KindCounter:
		ins.counter = &Counter{}
	case KindGauge:
		ins.gauge = &Gauge{}
	case KindHist:
		ins.hist = &Hist{}
	case KindTimer:
		ins.timer = &Timer{}
	}
	r.by[key] = ins
	r.keys = append(r.keys, key)
	return ins
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string, opts ...Option) *Counter {
	return r.get(name, KindCounter, opts).counter
}

// Gauge returns the named settable gauge, creating it if absent.
func (r *Registry) Gauge(name string, opts ...Option) *Gauge {
	return r.get(name, KindGauge, opts).gauge
}

// GaugeFunc registers (or re-points) a gauge whose value is read from fn
// at exposition time. Re-registering the same series replaces the
// function — the newest live object wins, which is what a restarted
// namespace or rebuilt proxy needs.
func (r *Registry) GaugeFunc(name string, fn func() int64, opts ...Option) {
	g := r.get(name, KindGauge, opts).gauge
	g.setFunc(fn)
}

// Hist returns the named histogram, creating it if absent.
func (r *Registry) Hist(name string, opts ...Option) *Hist {
	return r.get(name, KindHist, opts).hist
}

// Timer returns the named timer, creating it if absent.
func (r *Registry) Timer(name string, opts ...Option) *Timer {
	return r.get(name, KindTimer, opts).timer
}

// Package-level conveniences on the Default registry.

// NewCounter returns the named counter on the Default registry.
func NewCounter(name string, opts ...Option) *Counter { return Default().Counter(name, opts...) }

// NewGauge returns the named gauge on the Default registry.
func NewGauge(name string, opts ...Option) *Gauge { return Default().Gauge(name, opts...) }

// NewGaugeFunc registers a function-backed gauge on the Default registry.
func NewGaugeFunc(name string, fn func() int64, opts ...Option) {
	Default().GaugeFunc(name, fn, opts...)
}

// NewHist returns the named histogram on the Default registry.
func NewHist(name string, opts ...Option) *Hist { return Default().Hist(name, opts...) }

// NewTimer returns the named timer on the Default registry.
func NewTimer(name string, opts ...Option) *Timer { return Default().Timer(name, opts...) }
