package obs

import (
	"bufio"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", WithLabels("ns", "a"))
	b := r.Counter("x_total", WithLabels("ns", "a"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("x_total", WithLabels("ns", "b"))
	if a == c {
		t.Fatal("different labels must be a distinct series")
	}
	a.Inc()
	a.Add(2)
	if a.Value() != 3 || c.Value() != 0 {
		t.Fatalf("values: a=%d c=%d", a.Value(), c.Value())
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("y_total", WithLabels("type", "read", "ns", "a"))
	b := r.Counter("y_total", WithLabels("ns", "a", "type", "read"))
	if a != b {
		t.Fatal("label order must not create distinct series")
	}
}

func TestDefaultClasses(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total")
	r.Gauge("g")
	r.Hist("h")
	r.Timer("t_seconds")
	r.Hist("h2", WithClass(ClassTiming))
	classes := map[string]Class{}
	for _, s := range r.Snapshot() {
		classes[s.Name] = s.Class
	}
	want := map[string]Class{
		"c_total": ClassExact, "g": ClassLoad, "h": ClassExact,
		"t_seconds": ClassTiming, "h2": ClassTiming,
	}
	for name, cls := range want {
		if classes[name] != cls {
			t.Errorf("%s: class %v, want %v", name, classes[name], cls)
		}
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", func() int64 { return 1 })
	r.GaugeFunc("depth", func() int64 { return 2 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 2 {
		t.Fatalf("re-registered gauge func must win: %+v", snap)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total")
	h := r.Timer("lat_seconds")
	c.Add(5)
	h.Observe(time.Millisecond)
	before := r.Snapshot()
	c.Add(3)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	after := r.Snapshot()
	d := Delta(before, after)
	if d["req_total"].Value != 3 {
		t.Fatalf("counter delta = %d, want 3", d["req_total"].Value)
	}
	if d["lat_seconds"].Count != 2 {
		t.Fatalf("timer delta count = %d, want 2", d["lat_seconds"].Count)
	}
	var total uint64
	for _, n := range d["lat_seconds"].Buckets {
		total += n
	}
	if total != 2 {
		t.Fatalf("timer delta buckets sum to %d, want 2", total)
	}
}

// The exposition output must be parseable line-by-line with the expected
// shapes: TYPE comments once per metric, summaries with quantile series
// plus _sum/_count, and timers scaled to seconds.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dp_req_total", WithLabels("ns", "alpha")).Add(7)
	r.Counter("dp_req_total", WithLabels("ns", "beta")).Add(9)
	r.Gauge("dp_inflight").Set(-2)
	tm := r.Timer("dp_lat_seconds")
	for i := 0; i < 100; i++ {
		tm.Observe(time.Duration(i+1) * time.Millisecond)
	}
	r.Hist("dp_batch").Record(32)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE dp_req_total counter\n",
		`dp_req_total{ns="alpha"} 7` + "\n",
		`dp_req_total{ns="beta"} 9` + "\n",
		"# TYPE dp_inflight gauge\n",
		"dp_inflight -2\n",
		"# TYPE dp_lat_seconds summary\n",
		"dp_lat_seconds_count 100\n",
		"# TYPE dp_batch summary\n",
		"dp_batch_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE dp_req_total") != 1 {
		t.Error("TYPE comment must appear exactly once per metric name")
	}
	// p50 of 1..100ms in seconds must be ~0.05, never < 0.05 (conservative
	// upward bias) and within the 1.6% quantization error.
	var p50 float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `dp_lat_seconds{quantile="0.5"}`) {
			fmt.Sscanf(strings.Fields(line)[1], "%g", &p50)
		}
	}
	if p50 < 0.05 || p50 > 0.052 {
		t.Errorf("timer p50 = %g s, want ~0.05", p50)
	}
	// Every non-comment line must be "name{...} value".
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if f := strings.Fields(line); len(f) != 2 {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", WithLabels("ns", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `ns="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

func TestSlowLog(t *testing.T) {
	var sl SlowLog
	if sl.Enabled() {
		t.Fatal("zero slowlog must be disabled")
	}
	sl.Observe(Span{Total: time.Hour}) // disabled: dropped
	if sl.Count() != 0 {
		t.Fatal("disabled slowlog must drop spans")
	}
	var lines []string
	sl.SetLogf(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	sl.SetThreshold(10 * time.Millisecond)
	sl.Observe(Span{NS: "a", Frame: "read_batch", Total: 5 * time.Millisecond})
	sl.Observe(Span{NS: "b", Frame: "read_batch", Total: 15 * time.Millisecond})
	if sl.Count() != 1 {
		t.Fatalf("slow count = %d, want 1", sl.Count())
	}
	rec := sl.Recent()
	if len(rec) != 1 || rec[0].NS != "b" {
		t.Fatalf("recent = %+v", rec)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "ns=b") {
		t.Fatalf("logf lines = %v", lines)
	}
	// Overflow the ring; newest-first order must hold.
	for i := 0; i < slowLogCap+10; i++ {
		sl.Observe(Span{NS: fmt.Sprintf("n%d", i), Total: time.Second})
	}
	rec = sl.Recent()
	if len(rec) != slowLogCap {
		t.Fatalf("ring len = %d, want %d", len(rec), slowLogCap)
	}
	if rec[0].NS != fmt.Sprintf("n%d", slowLogCap+9) {
		t.Fatalf("newest-first violated: %s", rec[0].NS)
	}
}

func TestLabelWhitelistIsClosed(t *testing.T) {
	for _, k := range []string{"ns", "type", "partition", "replica", "quantile"} {
		if !LabelWhitelist[k] {
			t.Errorf("whitelist missing %q", k)
		}
	}
	if len(LabelWhitelist) != 5 {
		t.Errorf("whitelist grew to %d keys — additions need an obliviousness argument", len(LabelWhitelist))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTimerObserve(b *testing.B) {
	tm := NewRegistry().Timer("bench_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Observe(time.Duration(i))
	}
}
