package block

import (
	"testing"
	"testing/quick"
)

func TestNewIsZeroed(t *testing.T) {
	b := New(32)
	if len(b) != 32 {
		t.Fatalf("len = %d, want 32", len(b))
	}
	if !b.IsZero() {
		t.Fatal("new block is not zero")
	}
}

func TestCopyIndependence(t *testing.T) {
	b := Pattern(7, 16)
	c := b.Copy()
	if !b.Equal(c) {
		t.Fatal("copy differs from original")
	}
	c[0] ^= 0xff
	if b.Equal(c) {
		t.Fatal("mutating copy changed original")
	}
}

func TestCopyNil(t *testing.T) {
	var b Block
	if b.Copy() != nil {
		t.Fatal("copy of nil should be nil")
	}
}

func TestEqualNilSemantics(t *testing.T) {
	var nilBlk Block
	empty := Block{}
	if nilBlk.Equal(empty) {
		t.Fatal("nil block must not equal empty non-nil block")
	}
	if !nilBlk.Equal(nil) {
		t.Fatal("nil must equal nil")
	}
	if !empty.Equal(Block{}) {
		t.Fatal("empty must equal empty")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := New(16)
		b.SetUint64(v)
		return b.Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternDeterministic(t *testing.T) {
	a := Pattern(42, 64)
	b := Pattern(42, 64)
	if !a.Equal(b) {
		t.Fatal("Pattern is not deterministic")
	}
	c := Pattern(43, 64)
	if a.Equal(c) {
		t.Fatal("different ids produced identical patterns")
	}
}

func TestCheckPattern(t *testing.T) {
	b := Pattern(9, 32)
	if !CheckPattern(b, 9) {
		t.Fatal("CheckPattern rejected valid pattern")
	}
	if CheckPattern(b, 10) {
		t.Fatal("CheckPattern accepted wrong id")
	}
	b[20] ^= 1
	if CheckPattern(b, 9) {
		t.Fatal("CheckPattern accepted corrupted block")
	}
	if CheckPattern(Block{1, 2}, 0) {
		t.Fatal("CheckPattern accepted short block")
	}
}

func TestPatternPanicsOnTinySize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size < MinSize")
		}
	}()
	Pattern(1, 4)
}

func TestDatabaseShape(t *testing.T) {
	if _, err := NewDatabase(0, 16); err == nil {
		t.Fatal("accepted empty database")
	}
	if _, err := NewDatabase(4, 2); err == nil {
		t.Fatal("accepted block size below MinSize")
	}
	db, err := NewDatabase(5, 16)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 5 || db.BlockSize() != 16 {
		t.Fatalf("shape = (%d,%d), want (5,16)", db.Len(), db.BlockSize())
	}
}

func TestDatabaseSetRejectsWrongSize(t *testing.T) {
	db, _ := NewDatabase(2, 16)
	if err := db.Set(0, New(8)); err == nil {
		t.Fatal("Set accepted wrong-size block")
	}
	if err := db.Set(1, Pattern(1, 16)); err != nil {
		t.Fatal(err)
	}
	if !CheckPattern(db.Get(1), 1) {
		t.Fatal("Set did not store the block")
	}
}

func TestPatternDatabase(t *testing.T) {
	db, err := PatternDatabase(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		if !CheckPattern(db.Get(i), uint64(i)) {
			t.Fatalf("block %d is not Pattern(%d)", i, i)
		}
	}
}

func TestDatabaseCloneIsDeep(t *testing.T) {
	db, _ := PatternDatabase(3, 16)
	c := db.Clone()
	c.Get(0)[0] ^= 0xff
	if !CheckPattern(db.Get(0), 0) {
		t.Fatal("mutating clone changed original")
	}
}
