// Package block defines the fixed-size record ("ball") type used by every
// storage primitive in this repository.
//
// The paper's lower bounds are stated in the balls-and-bins model
// (Definition 3.1): each database record is an immutable, opaque ball of a
// fixed size, optionally tagged with a small mutable metadata key. A Block is
// the concrete representation of one ball: a fixed-length byte slice. All
// primitives (DP-IR, DP-RAM, DP-KVS, Path ORAM, PIR) move whole Blocks
// between a client and a passive server; none of them ever inspects ball
// contents, which is exactly the opacity assumption the model requires.
package block

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultSize is the record size used by examples and benchmarks when the
// caller does not specify one. 64 bytes keeps experiment memory footprints
// small while remaining a realistic key-value record size.
const DefaultSize = 64

// MinSize is the smallest usable block size. Eight bytes are needed so a
// block can carry a uint64 self-identifier in tests and demo payloads.
const MinSize = 8

// ErrSize reports a block whose length does not match the store's configured
// block size.
var ErrSize = errors.New("block: size mismatch")

// Block is one fixed-size database record. A nil Block represents "no data"
// (for example, a KVS lookup that returned ⊥).
type Block []byte

// New returns a zeroed block of the given size.
func New(size int) Block {
	return make(Block, size)
}

// Copy returns an independent copy of b. Copy of a nil block is nil.
func (b Block) Copy() Block {
	if b == nil {
		return nil
	}
	c := make(Block, len(b))
	copy(c, b)
	return c
}

// Equal reports whether two blocks hold identical bytes. Two nil blocks are
// equal; a nil block never equals a non-nil one, even an empty one.
func (b Block) Equal(o Block) bool {
	if (b == nil) != (o == nil) {
		return false
	}
	return bytes.Equal(b, o)
}

// IsZero reports whether every byte of the block is zero. A nil block is
// zero.
func (b Block) IsZero() bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// SetUint64 writes v into the first eight bytes of the block, big-endian.
// It panics if the block is shorter than MinSize; fixed-size records are
// sized at construction time, so a short block is a programming error.
func (b Block) SetUint64(v uint64) {
	binary.BigEndian.PutUint64(b[:8], v)
}

// Uint64 reads the value written by SetUint64.
func (b Block) Uint64() uint64 {
	return binary.BigEndian.Uint64(b[:8])
}

// Pattern returns a size-byte block whose contents are a deterministic
// function of id: the first 8 bytes carry id itself and the remainder is a
// cheap id-seeded byte pattern. Experiments use Pattern blocks so that
// correctness of retrievals can be verified without keeping a full reference
// copy of the database.
func Pattern(id uint64, size int) Block {
	if size < MinSize {
		panic(fmt.Sprintf("block: Pattern size %d < MinSize %d", size, MinSize))
	}
	b := New(size)
	b.SetUint64(id)
	x := id*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	for i := 8; i < size; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

// CheckPattern reports whether b is exactly Pattern(id, len(b)).
func CheckPattern(b Block, id uint64) bool {
	if len(b) < MinSize {
		return false
	}
	return b.Equal(Pattern(id, len(b)))
}

// Database is an ordered collection of equally sized blocks, the D = (B_1,
// ..., B_n) of Section 2.1. Indexing is zero-based in code; the paper's
// record B_i corresponds to db.Get(i-1).
type Database struct {
	blockSize int
	blocks    []Block
}

// NewDatabase creates a database of n zeroed blocks of the given size.
func NewDatabase(n, blockSize int) (*Database, error) {
	if n <= 0 {
		return nil, fmt.Errorf("block: database size %d must be positive", n)
	}
	if blockSize < MinSize {
		return nil, fmt.Errorf("block: block size %d < MinSize %d", blockSize, MinSize)
	}
	d := &Database{blockSize: blockSize, blocks: make([]Block, n)}
	for i := range d.blocks {
		d.blocks[i] = New(blockSize)
	}
	return d, nil
}

// PatternDatabase creates a database of n blocks where block i holds
// Pattern(i, blockSize). It is the standard test/benchmark corpus.
func PatternDatabase(n, blockSize int) (*Database, error) {
	d, err := NewDatabase(n, blockSize)
	if err != nil {
		return nil, err
	}
	for i := range d.blocks {
		d.blocks[i] = Pattern(uint64(i), blockSize)
	}
	return d, nil
}

// Len returns the number of records.
func (d *Database) Len() int { return len(d.blocks) }

// BlockSize returns the fixed record size in bytes.
func (d *Database) BlockSize() int { return d.blockSize }

// Get returns the block at index i (zero-based). The returned slice aliases
// the database; callers that mutate it should Copy first.
func (d *Database) Get(i int) Block { return d.blocks[i] }

// Set replaces the block at index i. The block must match the database block
// size.
func (d *Database) Set(i int, b Block) error {
	if len(b) != d.blockSize {
		return fmt.Errorf("%w: got %d want %d", ErrSize, len(b), d.blockSize)
	}
	d.blocks[i] = b
	return nil
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	c := &Database{blockSize: d.blockSize, blocks: make([]Block, len(d.blocks))}
	for i, b := range d.blocks {
		c.blocks[i] = b.Copy()
	}
	return c
}
