// Package privacy encodes the paper's differential-privacy definitions and
// every analytic bound its theorems state, so experiment tables can print a
// "paper bound" column next to each measurement.
//
// Definition 2.1 ((ε, δ)-differentially private access): for all adjacent
// query sequences Q1, Q2 (Hamming distance exactly 1) and all view sets S,
//
//	Pr[S(Q1) ∈ S] ≤ e^ε · Pr[S(Q2) ∈ S] + δ.
package privacy

import (
	"fmt"
	"math"
)

// Params is a differential-privacy budget (ε, δ). δ = 0 is pure DP.
type Params struct {
	Eps   float64
	Delta float64
}

// Pure reports whether the budget is pure differential privacy (δ = 0).
func (p Params) Pure() bool { return p.Delta == 0 }

// Validate checks parameter sanity: ε ≥ 0 and δ ∈ [0, 1].
func (p Params) Validate() error {
	if math.IsNaN(p.Eps) || p.Eps < 0 {
		return fmt.Errorf("privacy: ε = %v must be ≥ 0", p.Eps)
	}
	if math.IsNaN(p.Delta) || p.Delta < 0 || p.Delta > 1 {
		return fmt.Errorf("privacy: δ = %v must be in [0,1]", p.Delta)
	}
	return nil
}

// String renders the budget.
func (p Params) String() string {
	if p.Pure() {
		return fmt.Sprintf("ε=%.3f", p.Eps)
	}
	return fmt.Sprintf("ε=%.3f δ=%.3g", p.Eps, p.Delta)
}

// Compose applies basic sequential composition over k mechanisms: budgets
// add. The DP-KVS proof (Theorem 7.1) composes 2·k(n) bucket queries this
// way.
func Compose(p Params, k int) Params {
	return Params{Eps: p.Eps * float64(k), Delta: p.Delta * float64(k)}
}

// Satisfies reports whether a pointwise likelihood pair (pA, pB) respects
// the (ε, δ) inequality in both directions.
func Satisfies(p Params, pA, pB float64) bool {
	return pA <= math.Exp(p.Eps)*pB+p.Delta && pB <= math.Exp(p.Eps)*pA+p.Delta
}

// --- Lower bounds -----------------------------------------------------------

// DPIRErrorlessLowerBound is Theorem 3.3: an errorless (ε, δ)-DP-IR in the
// balls-and-bins model performs at least (1−δ)·n expected operations per
// query, for every ε ≥ 0.
func DPIRErrorlessLowerBound(n int, delta float64) float64 {
	return (1 - delta) * float64(n)
}

// DPIRLowerBound is Theorem 3.4: an (ε, δ)-DP-IR with error probability
// α > 0 performs at least (n−1)·(1−α−δ)/e^ε expected operations per query
// (the exact constant from the theorem's proof).
func DPIRLowerBound(n int, eps, alpha, delta float64) float64 {
	v := float64(n-1) * (1 - alpha - delta) / math.Exp(eps)
	if v < 0 {
		return 0
	}
	return v
}

// DPRAMLowerBound is Theorem 3.7: an ε-DP-RAM with error α and client
// storage for c ≥ 2 balls performs Ω(log_c((1−α)·n/e^ε)) expected amortized
// operations per query. The returned value is the log_c expression itself
// (the bound up to the hidden constant), floored at 0.
func DPRAMLowerBound(n, c int, eps, alpha float64) float64 {
	if c < 2 {
		c = 2
	}
	arg := (1 - alpha) * float64(n) / math.Exp(eps)
	if arg <= 1 {
		return 0
	}
	return math.Log(arg) / math.Log(float64(c))
}

// MultiServerDPIRLowerBound is Theorem C.1: a D-server (ε, δ)-DP-IR with a
// fraction t of servers corrupted and error α < 1 − δ/t performs at least
// ((1−α)·t − δ)·n/e^ε expected operations. Floored at 0.
func MultiServerDPIRLowerBound(n int, eps, alpha, delta, t float64) float64 {
	v := ((1-alpha)*t - delta) * float64(n) / math.Exp(eps)
	if v < 0 {
		return 0
	}
	return v
}

// MinEpsForConstantOverhead inverts Theorem 3.4: for a DP-IR to touch at
// most k blocks with error α and δ = 0, the privacy budget must satisfy
// ε ≥ ln((n−1)(1−α)/k). This is the "constant overhead forces ε = Ω(log n)"
// headline. Returns 0 when the constraint is vacuous.
func MinEpsForConstantOverhead(n, k int, alpha float64) float64 {
	if k <= 0 {
		k = 1
	}
	arg := float64(n-1) * (1 - alpha) / float64(k)
	if arg <= 1 {
		return 0
	}
	return math.Log(arg)
}

// --- Upper-bound parameterizations ------------------------------------------

// DPIRDownloadCount is the K of Algorithm 1: K = ⌈(1−α)·n/(e^ε − 1)⌉,
// clamped into [1, n]. K is the number of blocks downloaded per query.
func DPIRDownloadCount(n int, eps, alpha float64) int {
	den := math.Exp(eps) - 1
	if den <= 0 {
		return n
	}
	k := int(math.Ceil((1 - alpha) * float64(n) / den))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// DPIRAchievedEps is the privacy budget Algorithm 1 actually attains with a
// given K, from the proof of Theorem 5.1 (Appendix B):
//
//	e^ε = (1−α)·n/(α·K) + 1.
//
// α must be positive: with α = 0 the scheme is not differentially private
// for K < n (that is exactly the Section 4 strawman failure).
func DPIRAchievedEps(n, k int, alpha float64) float64 {
	if alpha <= 0 {
		return math.Inf(1)
	}
	return math.Log(1 + (1-alpha)*float64(n)/(alpha*float64(k)))
}

// DPRAMEpsUpperBound is the ε certified by the proof of Theorem 6.1: the
// transcript-probability ratio of two adjacent sequences is bounded by the
// per-position factors of Lemmas 6.4 (n²/p) and 6.5 (n/p) at the three
// positions identified by Lemma 6.7, giving
//
//	e^ε ≤ (n²/p)³ · (n/p)³  ⇒  ε ≤ 3·ln(n²/p) + 3·ln(n/p).
//
// With p = Φ/n this is Θ(log n). The bound is loose but explicit; the
// empirical estimate of experiment E6 sits far below it.
func DPRAMEpsUpperBound(n int, p float64) float64 {
	if p <= 0 || p > 1 {
		return math.Inf(1)
	}
	nf := float64(n)
	return 3*math.Log(nf*nf/p) + 3*math.Log(nf/p)
}

// MultiServerDPIREps is the exact pure-DP budget of the uniform-decoy
// D-server scheme of Appendix C's setting (one corrupted server): the
// corrupted server sees the real index with probability 1/D + (1−1/D)/n and
// any fixed other index with probability (1−1/D)/n, so
//
//	e^ε = 1 + n/(D−1).
func MultiServerDPIREps(n, d int) float64 {
	if d < 2 {
		return math.Inf(1)
	}
	return math.Log(1 + float64(n)/float64(d-1))
}
