package privacy

import (
	"math"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	good := []Params{{0, 0}, {1.5, 0}, {10, 0.5}, {0, 1}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", p, err)
		}
	}
	bad := []Params{{-1, 0}, {0, -0.1}, {0, 1.1}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", p)
		}
	}
}

func TestPureAndString(t *testing.T) {
	if !(Params{Eps: 1}).Pure() {
		t.Fatal("δ=0 should be pure")
	}
	if (Params{Eps: 1, Delta: 0.1}).Pure() {
		t.Fatal("δ>0 should not be pure")
	}
	if s := (Params{Eps: 1}).String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestCompose(t *testing.T) {
	p := Compose(Params{Eps: 0.5, Delta: 0.01}, 4)
	if p.Eps != 2 || math.Abs(p.Delta-0.04) > 1e-12 {
		t.Fatalf("Compose = %+v", p)
	}
}

func TestSatisfies(t *testing.T) {
	// ratio e: satisfied iff ε ≥ 1.
	if !Satisfies(Params{Eps: 1}, math.E*0.1, 0.1) {
		t.Fatal("should satisfy at ε=1")
	}
	if Satisfies(Params{Eps: 0.5}, math.E*0.1, 0.1) {
		t.Fatal("should fail at ε=0.5")
	}
	// δ slack rescues it.
	if !Satisfies(Params{Eps: 0.5, Delta: 0.2}, math.E*0.1, 0.1) {
		t.Fatal("δ slack should rescue")
	}
}

func TestDPIRErrorlessLowerBound(t *testing.T) {
	if got := DPIRErrorlessLowerBound(1000, 0); got != 1000 {
		t.Fatalf("errorless bound = %v, want 1000", got)
	}
	if got := DPIRErrorlessLowerBound(1000, 0.25); got != 750 {
		t.Fatalf("errorless bound with δ = %v, want 750", got)
	}
}

func TestDPIRLowerBoundShape(t *testing.T) {
	n := 1 << 16
	// Constant ε: bound is Θ(n).
	atConst := DPIRLowerBound(n, 1, 0.1, 0)
	if atConst < float64(n)/10 {
		t.Fatalf("bound at ε=1 is %v; should be Θ(n)", atConst)
	}
	// ε = ln n: bound collapses to O(1).
	atLogN := DPIRLowerBound(n, math.Log(float64(n)), 0.1, 0)
	if atLogN > 1 {
		t.Fatalf("bound at ε=ln n is %v; should be ≤ 1", atLogN)
	}
	// Monotone decreasing in ε.
	if atLogN >= atConst {
		t.Fatal("bound not decreasing in ε")
	}
	// Never negative.
	if DPIRLowerBound(n, 0, 0.9, 0.9) != 0 {
		t.Fatal("bound should floor at 0")
	}
}

func TestDPRAMLowerBoundShape(t *testing.T) {
	n := 1 << 20
	// ε=0, c=2: the classic Ω(log n) ORAM bound.
	base := DPRAMLowerBound(n, 2, 0, 0)
	if math.Abs(base-20) > 0.01 {
		t.Fatalf("bound at ε=0, c=2 = %v, want ≈20", base)
	}
	// ε = ln n kills the bound: constant overhead becomes possible.
	if DPRAMLowerBound(n, 2, math.Log(float64(n)), 0) > 0.01 {
		t.Fatal("bound at ε=ln n should vanish")
	}
	// Bigger client storage weakens the bound.
	if DPRAMLowerBound(n, 1024, 0, 0) >= base {
		t.Fatal("bound should shrink with client storage")
	}
	// c < 2 clamps.
	if DPRAMLowerBound(n, 0, 0, 0) != base {
		t.Fatal("c clamp broken")
	}
}

func TestMultiServerLowerBound(t *testing.T) {
	n := 1024
	v := MultiServerDPIRLowerBound(n, 0, 0, 0, 0.5)
	if v != 512 {
		t.Fatalf("bound = %v, want 512", v)
	}
	if MultiServerDPIRLowerBound(n, 0, 1, 0, 0.5) != 0 {
		t.Fatal("α=1 should floor bound at 0")
	}
}

func TestMinEpsForConstantOverhead(t *testing.T) {
	n := 1 << 20
	eps := MinEpsForConstantOverhead(n, 4, 0.1)
	// Must be Θ(log n): between 0.5·ln n and 1.5·ln n here.
	ln := math.Log(float64(n))
	if eps < 0.5*ln || eps > 1.5*ln {
		t.Fatalf("min ε = %v, want Θ(ln n = %v)", eps, ln)
	}
	// Vacuous when k ≥ n.
	if MinEpsForConstantOverhead(10, 100, 0) != 0 {
		t.Fatal("vacuous case should be 0")
	}
	if MinEpsForConstantOverhead(100, 0, 0) <= 0 {
		t.Fatal("k=0 should clamp to 1 and give a positive bound")
	}
}

func TestDPIRDownloadCount(t *testing.T) {
	n := 1 << 14
	// ε = ln n ⇒ K = ⌈(1−α)·n/(n−1)⌉ = small constant.
	k := DPIRDownloadCount(n, math.Log(float64(n)), 0.1)
	if k < 1 || k > 2 {
		t.Fatalf("K at ε=ln n is %d, want 1 or 2", k)
	}
	// ε = 0 ⇒ denominator 0 ⇒ full scan.
	if DPIRDownloadCount(n, 0, 0.1) != n {
		t.Fatal("ε=0 should force full scan")
	}
	// Monotone: larger ε never increases K.
	prev := n + 1
	for _, eps := range []float64{0.5, 1, 2, 4, 8, 12} {
		k := DPIRDownloadCount(n, eps, 0.1)
		if k > prev {
			t.Fatalf("K not monotone at ε=%v", eps)
		}
		if k < 1 || k > n {
			t.Fatalf("K=%d outside [1,n]", k)
		}
		prev = k
	}
}

func TestDPIRAchievedEps(t *testing.T) {
	n := 1 << 14
	k := DPIRDownloadCount(n, math.Log(float64(n)), 0.25)
	eps := DPIRAchievedEps(n, k, 0.25)
	// Achieved ε should be Θ(log n): requested + ln(1/α) slack.
	ln := math.Log(float64(n))
	if eps < 0.5*ln || eps > 2.5*ln {
		t.Fatalf("achieved ε = %v, want Θ(ln n = %v)", eps, ln)
	}
	// α = 0 is undefined (the strawman failure): +Inf.
	if !math.IsInf(DPIRAchievedEps(n, k, 0), 1) {
		t.Fatal("α=0 must yield +Inf")
	}
	// More downloads ⇒ better (smaller) ε.
	if DPIRAchievedEps(n, 2*k, 0.25) >= eps {
		t.Fatal("achieved ε should shrink with K")
	}
}

func TestDPRAMEpsUpperBound(t *testing.T) {
	n := 1 << 16
	p := 64.0 / float64(n)
	eps := DPRAMEpsUpperBound(n, p)
	ln := math.Log(float64(n))
	// 3·ln(n²/p) + 3·ln(n/p) with p = Φ/n is ≈ 15·ln n; just check Θ(log n).
	if eps < 3*ln || eps > 30*ln {
		t.Fatalf("ε upper bound = %v, want Θ(ln n = %v)", eps, ln)
	}
	if !math.IsInf(DPRAMEpsUpperBound(n, 0), 1) {
		t.Fatal("p=0 must yield +Inf")
	}
}

func TestMultiServerDPIREps(t *testing.T) {
	n := 1024
	e2 := MultiServerDPIREps(n, 2)
	e5 := MultiServerDPIREps(n, 5)
	if e5 >= e2 {
		t.Fatal("more servers should give better ε")
	}
	want := math.Log(1 + float64(n))
	if math.Abs(e2-want) > 1e-12 {
		t.Fatalf("ε(D=2) = %v, want %v", e2, want)
	}
	if !math.IsInf(MultiServerDPIREps(n, 1), 1) {
		t.Fatal("single server must be +Inf")
	}
}
