package proxy

import (
	"strconv"

	"dpstore/internal/obs"
)

// Proxy and pipeline instruments. The scheduler and pipeline aggregates
// are ClassExact where they count data-independent work (every access is
// one scheme invocation; per-access batch shapes are fixed by the
// scheme's parameters, which is what the transcript-shape regressions
// already pin) and ClassTiming where coalescing makes them depend on
// arrival timing (checkpoint bursts, write-behind flush sizes).

var (
	obsAccesses = obs.NewCounter("dpstore_proxy_accesses_total",
		obs.WithHelp("logical record accesses executed by proxy schedulers"))
	obsCheckpoint = obs.NewTimer("dpstore_proxy_checkpoint_seconds",
		obs.WithHelp("scheme-state checkpoint (marshal + journal append + release)"))
	obsCheckpointBurst = obs.NewHist("dpstore_proxy_checkpoint_burst_accesses", obs.WithClass(obs.ClassTiming),
		obs.WithHelp("accesses sharing one checkpoint in journaled mode"))

	obsPipeReadBlocks = obs.NewHist("dpstore_pipeline_read_batch_blocks",
		obs.WithHelp("blocks per scheme-issued pipeline read batch"))
	obsPipeWriteOps = obs.NewHist("dpstore_pipeline_write_batch_ops",
		obs.WithHelp("ops per scheme-issued pipeline write batch"))
	obsPipeRead = obs.NewTimer("dpstore_pipeline_read_seconds",
		obs.WithHelp("pipeline read-batch round trip to the backing store"))
	obsPipeFlushOps = obs.NewHist("dpstore_pipeline_flush_ops", obs.WithClass(obs.ClassTiming),
		obs.WithHelp("ops coalesced per write-behind flush"))
	obsPipeFlush = obs.NewTimer("dpstore_pipeline_flush_seconds",
		obs.WithHelp("write-behind flush round trip to the backing store"))
)

// RegisterObs exports this proxy's occupancy gauges on the process
// registry, labeled by its public partition index (0 for an
// unpartitioned proxy). Re-registering an index re-points the gauges at
// the newest proxy — what a daemon restart or test rebuild wants.
func (p *Proxy) RegisterObs(partition int) {
	lbl := strconv.Itoa(partition)
	obs.NewGaugeFunc("dpstore_proxy_queue_depth",
		func() int64 { return int64(p.QueueDepth()) },
		obs.WithLabels("partition", lbl))
	obs.NewGaugeFunc("dpstore_proxy_stash_depth",
		func() int64 { return int64(p.StashDepth()) },
		obs.WithLabels("partition", lbl))
}
