package proxy

// Obliviousness regression tests: the proxy must not let concurrency
// change what the backing store sees. Three invariants are pinned, each
// the one a tempting "optimization" would break:
//
//  1. Client-identity independence: permuting WHICH session issues each
//     request (holding the global arrival order fixed) leaves the
//     physical trace bit-identical. Per-session caching or affinity would
//     break this.
//  2. Workload-shape independence: a maximally colliding (hot-spot)
//     workload and an all-distinct (uniform) one produce per-request
//     traces of exactly the same shape and total length. Same-address
//     deduplication — merging two in-flight requests for one record —
//     would shorten the hot-spot trace and leak request equality; this
//     is the test that would have caught it.
//  3. No dedup under real concurrency: with 16 goroutine sessions racing,
//     the metered op count is exactly (accesses × ops-per-access),
//     collisions or not.

import (
	"fmt"
	"sync"
	"testing"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/trace"
	"dpstore/internal/workload"
)

// markingScheme marks a query boundary on the recorder before every
// access, so the recorded view splits per request.
type markingScheme struct {
	Scheme
	rec *trace.Recorder
}

func (m markingScheme) Access(q workload.Query) (block.Block, error) {
	m.rec.Mark()
	return m.Scheme.Access(q)
}

// tracedProxy builds the named scheme over a trace-recorded in-memory
// store and serves it from a strictly serialized proxy (exact trace
// comparison needs a deterministic operation order, which write-behind
// deliberately gives up).
func tracedProxy(t *testing.T, kind string, n, rs int, seed int64) (*Proxy, *trace.Recorder) {
	t.Helper()
	db, err := block.PatternDatabase(n, rs)
	if err != nil {
		t.Fatal(err)
	}
	var scheme Scheme
	var rec *trace.Recorder
	switch kind {
	case "dpram":
		srv, err := store.NewMem(n, crypto.CiphertextSize(rs))
		if err != nil {
			t.Fatal(err)
		}
		rec = trace.NewRecorder(srv)
		scheme, err = dpram.Setup(db, rec, dpram.Options{Rand: rng.New(seed), Key: crypto.KeyFromSeed(uint64(seed))})
		if err != nil {
			t.Fatal(err)
		}
	case "pathoram":
		opts := pathoram.Options{Rand: rng.New(seed), Key: crypto.KeyFromSeed(uint64(seed))}
		slots, bs := pathoram.TreeShape(n, rs, opts)
		srv, err := store.NewMem(slots, bs)
		if err != nil {
			t.Fatal(err)
		}
		rec = trace.NewRecorder(srv)
		scheme, err = pathoram.Setup(db, rec, opts)
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown scheme kind %q", kind)
	}
	p := New(markingScheme{Scheme: scheme, rec: rec}, Options{})
	t.Cleanup(func() { p.Close() }) //nolint:errcheck
	return p, rec
}

// fixedRequests derives a deterministic request sequence: indices from the
// seeded source, ops alternating read/write.
func fixedRequests(seed int64, n, rs, count int) []workload.Query {
	src := rng.New(seed + 1000)
	reqs := make([]workload.Query, count)
	for t := range reqs {
		reqs[t] = workload.Query{Index: src.Intn(n), Op: workload.Read}
		if t%2 == 1 {
			reqs[t].Op = workload.Write
			reqs[t].Data = block.Pattern(uint64(t), rs)
		}
	}
	return reqs
}

// TestProxyTraceInvariantUnderClientPermutation: same requests, same
// global arrival order, different session attribution — the adversary
// view must be byte-identical (invariant 1).
func TestProxyTraceInvariantUnderClientPermutation(t *testing.T) {
	const n, rs, count, clients = 64, 16, 48, 4
	assignments := map[string]func(int) int{
		"round-robin": func(t int) int { return t % clients },
		"blocked":     func(t int) int { return t / (count / clients) },
		"reversed":    func(t int) int { return clients - 1 - t%clients },
	}
	for _, kind := range []string{"dpram", "pathoram"} {
		for _, seed := range []int64{1, 2} {
			reqs := fixedRequests(seed, n, rs, count)
			var baseline, baselineName string
			for name, assign := range assignments {
				p, rec := tracedProxy(t, kind, n, rs, seed)
				sessions := make([]*Session, clients)
				for i := range sessions {
					sessions[i] = p.NewSession()
				}
				for i, q := range reqs {
					if _, err := sessions[assign(i)].Access(q); err != nil {
						t.Fatalf("%s seed %d %s: request %d: %v", kind, seed, name, i, err)
					}
				}
				key := rec.Transcript().Key()
				if baseline == "" {
					baseline, baselineName = key, name
				} else if key != baseline {
					t.Fatalf("%s seed %d: trace under %q differs from %q — client identity leaked into the adversary view",
						kind, seed, name, baselineName)
				}
			}
		}
	}
}

// TestProxyTraceShapeHotspotVsUniform: a workload where every request
// collides on one record and a workload where none do must produce
// per-request traces of identical shape and identical total length
// (invariant 2 — the dedup catcher), at two fixed seeds.
func TestProxyTraceShapeHotspotVsUniform(t *testing.T) {
	const n, rs, count = 64, 16, 40
	for _, kind := range []string{"dpram", "pathoram"} {
		for _, seed := range []int64{3, 4} {
			run := func(index func(int) int) []trace.Transcript {
				p, rec := tracedProxy(t, kind, n, rs, seed)
				sess := p.NewSession()
				for i := 0; i < count; i++ {
					q := workload.Query{Index: index(i), Op: workload.Read}
					if i%2 == 1 {
						q.Op = workload.Write
						q.Data = block.Pattern(uint64(i), rs)
					}
					if _, err := sess.Access(q); err != nil {
						t.Fatalf("%s seed %d: request %d: %v", kind, seed, i, err)
					}
				}
				return rec.Queries()
			}
			hot := run(func(int) int { return 0 })       // all 40 requests collide
			uni := run(func(i int) int { return i % n }) // none collide
			if len(hot) != count || len(uni) != count {
				t.Fatalf("%s seed %d: recorded %d/%d request traces, want %d", kind, seed, len(hot), len(uni), count)
			}
			var hotOps, uniOps int
			for i := range hot {
				if hs, us := hot[i].Shape(), uni[i].Shape(); hs != us {
					t.Fatalf("%s seed %d: request %d shape %q (hot-spot) vs %q (uniform) — the trace shape depends on logical collisions",
						kind, seed, i, hs, us)
				}
				hotOps += len(hot[i])
				uniOps += len(uni[i])
			}
			if hotOps != uniOps {
				t.Fatalf("%s seed %d: %d total ops under hot-spot vs %d under uniform — dedup-style leak",
					kind, seed, hotOps, uniOps)
			}
		}
	}
}

// TestProxyNoDedupUnderConcurrency: 16 racing sessions all hammering the
// same record must cost exactly as many physical ops as 16 sessions on
// distinct records (invariant 3, under the pipelined scheduler and -race).
func TestProxyNoDedupUnderConcurrency(t *testing.T) {
	const sessions, perSession, n, rs = 16, 6, 64, 16
	run := func(index func(s int) int) int64 {
		db, err := block.PatternDatabase(n, rs)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := store.NewMem(n, crypto.CiphertextSize(rs))
		if err != nil {
			t.Fatal(err)
		}
		counting := store.NewCounting(mem)
		pipe := NewPipeline(counting)
		scheme, err := dpram.Setup(db, pipe, dpram.Options{Rand: rng.New(9), Key: crypto.KeyFromSeed(9)})
		if err != nil {
			t.Fatal(err)
		}
		p := New(scheme, Options{Pipeline: pipe})
		defer p.Close() //nolint:errcheck
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		counting.Reset()

		var wg sync.WaitGroup
		errs := make([]error, sessions)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := p.NewSession()
				for i := 0; i < perSession; i++ {
					if _, err := sess.Read(index(s)); err != nil {
						errs[s] = fmt.Errorf("session %d: %w", s, err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		return counting.Stats().Ops()
	}
	hot := run(func(int) int { return 0 })   // every in-flight request collides
	uni := run(func(s int) int { return s }) // none collide
	// DP-RAM moves exactly 3 blocks per access (2 downloads + 1 upload).
	want := int64(sessions * perSession * 3)
	if hot != want || uni != want {
		t.Fatalf("ops: hot-spot %d, uniform %d, want exactly %d each — op count must not depend on collisions",
			hot, uni, want)
	}
}
