package proxy

import (
	"fmt"
	"strconv"

	"dpstore/internal/block"
	"dpstore/internal/obs"
	"dpstore/internal/store"
	"dpstore/internal/workload"
)

// Partitioned fronts P independent scheme instances — each with its own
// stash, position map, master key, and coin stream, each behind its own
// Proxy scheduler — as one store.Accessor over the combined logical
// address space. Logical record u routes to partition u mod P at
// partition-local index u div P, the same striping rule store.Sharded
// applies one level down at the block layer.
//
// This is the CAOS answer to the proxy's honest limit: one scheme is one
// logical party, so a single tenant's accesses can never overlap each
// other through one instance. With P instances they overlap whenever they
// hit different partitions — which, for the data-independent routing rule
// above, is a function of the logical addresses alone, never of the data
// or of which session asked.
//
// Leakage: the composed physical trace is exactly the interleaving of P
// per-partition traces, so the adversary learns (1) each partition's
// trace — oblivious by the per-scheme guarantee, since each instance runs
// the unmodified construction over its own window — and (2) which
// partition each request routed to, i.e. u mod P. That partition index is
// the same function of the logical address that store.Sharded's shard
// index is of the physical address (DESIGN.md §Sharding): data-
// independent, collision-blind (no same-address dedup happens in any
// partition's scheduler), and identical for any two workloads whose
// routing sequences agree. The partitioned obliviousness tests pin
// exactly this: same routing sequence ⇒ bit-identical per-partition
// traces, hot-spot or uniform.
//
// What must NOT be shared is everything the schemes' privacy proofs treat
// as per-party secret state: stashes, position maps, keys, coin streams.
// A shared stash would make one partition's overflow visible in another
// partition's trace length; a shared coin stream would correlate the
// partitions' decoy draws, letting an adversary who sees the composed
// trace separate coin-driven from query-driven accesses across
// partitions. The same goes for cipher state: each partition owns its own
// crypto.Cipher, so each draws an independent random IV prefix and counts
// its nonce counter alone — sharing one cipher would serialize every
// partition's sealing on a single atomic counter, and sharing a prefix
// without sharing the counter would reuse CTR nonces across partitions.
// NewPartitioned therefore takes fully constructed, fully independent
// Proxy instances and only routes between them.
type Partitioned struct {
	parts      []*Proxy
	records    int
	recordSize int

	// partAccesses[i] counts accesses routed to partition i — ClassRouting:
	// the partition index of every access is public by construction (the
	// adversary sees which physical window each batch lands in), so
	// exporting its distribution leaks nothing the trace does not.
	partAccesses []*obs.Counter
}

// NewPartitioned assembles a partitioned accessor over parts. Every part
// must serve the same record size, and part i must hold exactly
// store.ShardSlots(total, P, i) records — the slot counts the routing
// rule u ↦ (u mod P, u div P) produces — so that every logical address in
// [0, total) maps to a valid partition-local index and none maps past a
// partition's end.
func NewPartitioned(parts []*Proxy) (*Partitioned, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("proxy: partitioned accessor needs at least one partition")
	}
	total := 0
	for _, p := range parts {
		total += p.Records()
	}
	rs := parts[0].RecordSize()
	for i, p := range parts {
		if p.RecordSize() != rs {
			return nil, fmt.Errorf("proxy: partition %d serves %d B records, partition 0 serves %d B", i, p.RecordSize(), rs)
		}
		if want := store.ShardSlots(total, len(parts), i); p.Records() != want {
			return nil, fmt.Errorf("proxy: partition %d holds %d records, striping %d over %d partitions needs %d",
				i, p.Records(), total, len(parts), want)
		}
	}
	counters := make([]*obs.Counter, len(parts))
	for i := range parts {
		counters[i] = obs.NewCounter("dpstore_partition_accesses_total",
			obs.WithLabels("partition", strconv.Itoa(i)), obs.WithClass(obs.ClassRouting))
	}
	return &Partitioned{parts: parts, records: total, recordSize: rs, partAccesses: counters}, nil
}

// Partitions returns P. The serve loop exports it in the handshake; it is
// part of the deployment shape, not a secret (the adversary sees the
// partition index of every access anyway).
func (pt *Partitioned) Partitions() int { return len(pt.parts) }

// Part returns partition i's Proxy (tests and the daemon's shutdown path
// use it; routing callers should go through Access/AccessRecord).
func (pt *Partitioned) Part(i int) *Proxy { return pt.parts[i] }

// Records implements store.Accessor: the combined logical record count.
func (pt *Partitioned) Records() int { return pt.records }

// RecordSize implements store.Accessor.
func (pt *Partitioned) RecordSize() int { return pt.recordSize }

// route maps a logical address to (partition, partition-local index).
func (pt *Partitioned) route(u int) (part, local int) {
	p := len(pt.parts)
	return u % p, u / p
}

// Access executes one logical access on the owning partition. Accesses to
// different partitions run on independent schedulers and genuinely
// overlap; accesses to one partition serialize in arrival order there,
// with no dedup — each partition keeps the full obliviousness contract of
// a single Proxy.
func (pt *Partitioned) Access(q workload.Query) (block.Block, error) {
	if q.Index < 0 || q.Index >= pt.records {
		return nil, fmt.Errorf("proxy: index %d out of range [0,%d)", q.Index, pt.records)
	}
	part, local := pt.route(q.Index)
	pt.partAccesses[part].Inc()
	q.Index = local
	return pt.parts[part].Access(q)
}

// Read retrieves record u.
func (pt *Partitioned) Read(u int) (block.Block, error) {
	return pt.Access(workload.Query{Index: u, Op: workload.Read})
}

// Write overwrites record u and returns the previous value.
func (pt *Partitioned) Write(u int, b block.Block) (block.Block, error) {
	return pt.Access(workload.Query{Index: u, Op: workload.Write, Data: b})
}

// AccessRecord implements store.Accessor — the serve loop's entry point.
func (pt *Partitioned) AccessRecord(index int, write bool, data block.Block) (block.Block, error) {
	q := workload.Query{Index: index, Op: workload.Read}
	if write {
		q.Op = workload.Write
		q.Data = data
	}
	return pt.Access(q)
}

// Accesses sums the scheme accesses executed across all partitions.
func (pt *Partitioned) Accesses() int64 {
	var total int64
	for _, p := range pt.parts {
		total += p.Accesses()
	}
	return total
}

// Checkpoints sums the durable checkpoints written across all partitions
// (0 for non-durable partitions).
func (pt *Partitioned) Checkpoints() int64 {
	var total int64
	for _, p := range pt.parts {
		total += p.Checkpoints()
	}
	return total
}

// StashDepth sums the partitions' stash occupancies — the total client
// memory the striped deployment is holding.
func (pt *Partitioned) StashDepth() int {
	total := 0
	for _, p := range pt.parts {
		total += p.StashDepth()
	}
	return total
}

// LoadDepth implements the serve loop's depth gauge, mirroring
// Proxy.LoadDepth: the summed stash occupancy.
func (pt *Partitioned) LoadDepth() uint64 { return uint64(pt.StashDepth()) }

// Epoch returns the deployment's recovery epoch: the maximum over the
// partitions' journal epochs (they are bumped together at startup, so a
// healthy deployment reports one value; 0 when no partition is durable).
func (pt *Partitioned) Epoch() uint64 {
	var e uint64
	for _, p := range pt.parts {
		if pe := p.Epoch(); pe > e {
			e = pe
		}
	}
	return e
}

// Flush waits until every partition's issued writes have landed on the
// backing store (see Proxy.Flush for the quiescence caveat).
func (pt *Partitioned) Flush() error {
	for i, p := range pt.parts {
		if err := p.Flush(); err != nil {
			return fmt.Errorf("proxy: flushing partition %d: %w", i, err)
		}
	}
	return nil
}

// Close closes every partition, returning the first error but closing the
// rest regardless — a failed checkpoint on one partition must not leave
// the others' writer goroutines running.
func (pt *Partitioned) Close() error {
	var first error
	for i, p := range pt.parts {
		if err := p.Close(); err != nil && first == nil {
			first = fmt.Errorf("proxy: closing partition %d: %w", i, err)
		}
	}
	return first
}
