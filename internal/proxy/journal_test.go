package proxy

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/store"
)

func mkCheckpoint(tag byte, pending int) Checkpoint {
	ck := Checkpoint{State: bytes.Repeat([]byte{tag}, 40)}
	for i := 0; i < pending; i++ {
		b := block.New(16)
		b[0] = tag + byte(i)
		ck.Pending = append(ck.Pending, store.WriteOp{Addr: i, Block: b})
	}
	return ck
}

// TestJournalRoundTrip: append checkpoints, reopen, get the newest back,
// with the epoch bumped per open.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, ck, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ck != nil {
		t.Fatal("fresh journal returned a checkpoint")
	}
	if j.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d", j.Epoch())
	}
	for tag := byte(1); tag <= 3; tag++ {
		if err := j.Append(mkCheckpoint(tag, int(tag))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, ck2, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Epoch() != 2 {
		t.Fatalf("second epoch = %d", j2.Epoch())
	}
	if ck2 == nil || ck2.State[0] != 3 || len(ck2.Pending) != 3 {
		t.Fatalf("recovered wrong checkpoint: %+v", ck2)
	}
	if ck2.Pending[2].Block[0] != 3+2 {
		t.Fatal("pending block content lost")
	}
}

// TestJournalTornTail: a torn or corrupted trailing record is discarded;
// the previous intact checkpoint survives.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(mkCheckpoint(7, 2)); err != nil {
		t.Fatal(err)
	}
	good := j.Size()
	if err := j.Append(mkCheckpoint(9, 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	for name, mutate := range map[string]func([]byte) []byte{
		"torn":    func(d []byte) []byte { return d[:good+5] },                     // mid-record cut
		"corrupt": func(d []byte) []byte { d[good+6] ^= 0xFF; return d },           // payload bit flip
		"lenlie":  func(d []byte) []byte { d[good+1] = 0x7F; return d[:len(d)-2] }, // huge length + short file
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		broken := filepath.Join(t.TempDir(), "broken")
		if err := os.WriteFile(broken, mutate(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		j2, ck, err := OpenJournal(broken, 0)
		if err != nil {
			t.Fatalf("%s: open failed: %v", name, err)
		}
		if ck == nil || ck.State[0] != 7 || len(ck.Pending) != 2 {
			t.Fatalf("%s: recovered %+v, want the tag-7 checkpoint", name, ck)
		}
		j2.Close()
	}
}

// TestJournalCompaction: the log never grows past limit + one record, and
// compaction preserves the newest checkpoint.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _, err := OpenJournal(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for tag := byte(1); tag <= 100; tag++ {
		if err := j.Append(mkCheckpoint(tag, 4)); err != nil {
			t.Fatal(err)
		}
		if j.Size() > 4096 {
			t.Fatalf("journal at %d bytes despite 4096 limit", j.Size())
		}
	}
	j.Close()
	_, ck, err := OpenJournal(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.State[0] != 100 {
		t.Fatalf("compaction lost the newest checkpoint: %+v", ck)
	}
}

// TestReplayPending applies the pending set onto a store, idempotently.
func TestReplayPending(t *testing.T) {
	m, _ := store.NewMem(8, 16)
	ck := mkCheckpoint(5, 3)
	for i := 0; i < 2; i++ { // twice: replay must be idempotent
		if err := ReplayPending(m, &ck); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Download(2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5+2 {
		t.Fatal("pending write not applied")
	}
	if err := ReplayPending(m, nil); err != nil {
		t.Fatal("nil checkpoint should be a no-op")
	}
}

// TestPipelineJournaledHold: in journaled mode writes are invisible to the
// inner store until Release, while reads see them through the overlay; the
// snapshot lists them freshest-per-address in sequence order.
func TestPipelineJournaledHold(t *testing.T) {
	mem, _ := store.NewMem(8, 8)
	counting := store.NewCounting(mem)
	p := NewJournaledPipeline(counting)
	b1, b2 := block.New(8), block.New(8)
	b1[0], b2[0] = 1, 2
	if err := p.WriteBatch([]store.WriteOp{{Addr: 3, Block: b1}}); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteBatch([]store.WriteOp{{Addr: 3, Block: b2}, {Addr: 5, Block: b1}}); err != nil {
		t.Fatal(err)
	}
	// Overlay serves the held writes; the store has seen none of them.
	got, err := p.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatal("overlay missed a held write")
	}
	if up := counting.Stats().Uploads; up != 0 {
		t.Fatalf("%d uploads leaked past the barrier", up)
	}
	ops, seq := p.PendingSnapshot()
	if seq != 3 || len(ops) != 2 || ops[0].Addr != 3 || ops[0].Block[0] != 2 || ops[1].Addr != 5 {
		t.Fatalf("snapshot = %v seq %d", ops, seq)
	}
	p.Release(seq)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if up := counting.Stats().Uploads; up == 0 {
		t.Fatal("release did not let writes land")
	}
	got, err = mem.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatal("landed write has wrong value")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineJournaledDiscardOnClose: writes never covered by a release
// are dropped — not flushed — when the pipeline dies, because flushing
// unjournaled writes would desynchronize store and journal.
func TestPipelineJournaledDiscardOnClose(t *testing.T) {
	mem, _ := store.NewMem(8, 8)
	counting := store.NewCounting(mem)
	p := NewJournaledPipeline(counting)
	b := block.New(8)
	b[0] = 9
	if err := p.WriteBatch([]store.WriteOp{{Addr: 1, Block: b}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if up := counting.Stats().Uploads; up != 0 {
		t.Fatalf("%d unjournaled uploads reached the store at close", up)
	}
	got, _ := mem.Download(1)
	if got[0] != 0 {
		t.Fatal("discarded write landed anyway")
	}
}
