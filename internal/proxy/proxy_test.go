package proxy

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/wire"
)

// newDPRAMProxy builds a DP-RAM over backing (wrapped in a Pipeline when
// pipelined), fully flushed, served by a fresh proxy.
func newDPRAMProxy(t testing.TB, db *block.Database, backing store.Server, seed int64, pipelined bool) *Proxy {
	t.Helper()
	opts := dpram.Options{Rand: rng.New(seed), Key: crypto.KeyFromSeed(uint64(seed))}
	var pipe *Pipeline
	server := store.AsBatch(backing)
	if pipelined {
		pipe = NewPipeline(server)
		server = pipe
	}
	scheme, err := dpram.Setup(db, server, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := New(scheme, Options{Pipeline: pipe})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() }) //nolint:errcheck
	return p
}

func dpramMem(t testing.TB, n, recordSize int) (*block.Database, store.Server) {
	t.Helper()
	db, err := block.PatternDatabase(n, recordSize)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := store.NewMem(n, crypto.CiphertextSize(recordSize))
	if err != nil {
		t.Fatal(err)
	}
	return db, srv
}

// TestProxyReadWrite: the basic single-caller contract, serialized and
// pipelined.
func TestProxyReadWrite(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		t.Run(fmt.Sprintf("pipelined=%v", pipelined), func(t *testing.T) {
			const n, rs = 64, 24
			db, srv := dpramMem(t, n, rs)
			p := newDPRAMProxy(t, db, srv, 1, pipelined)
			if p.Records() != n || p.RecordSize() != rs {
				t.Fatalf("shape = %d × %d, want %d × %d", p.Records(), p.RecordSize(), n, rs)
			}
			got, err := p.Read(7)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(db.Get(7)) {
				t.Fatal("read returned wrong initial value")
			}
			want := block.Pattern(999, rs)
			prev, err := p.Write(7, want)
			if err != nil {
				t.Fatal(err)
			}
			if !prev.Equal(db.Get(7)) {
				t.Fatal("write returned wrong previous value")
			}
			for k := 0; k < 8; k++ { // read-your-write through any pipeline state
				got, err = p.Read(7)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("read %d after write returned stale value", k)
				}
			}
			// Hostile inputs are rejected before touching the scheme.
			if _, err := p.Read(n); err == nil {
				t.Fatal("out-of-range read accepted")
			}
			if _, err := p.Write(0, block.New(rs+1)); err == nil {
				t.Fatal("wrong-size write accepted")
			}
		})
	}
}

// TestProxyConcurrentSessions: 16 sessions over one pipelined scheme, each
// owning a disjoint record range — every session must read back exactly
// what it wrote, proving response routing never crosses sessions.
func TestProxyConcurrentSessions(t *testing.T) {
	const sessions, perSession, rs = 16, 8, 24
	const n = sessions * perSession
	db, srv := dpramMem(t, n, rs)
	p := newDPRAMProxy(t, db, srv, 2, true)

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := p.NewSession()
			base := s * perSession
			for i := 0; i < perSession; i++ {
				want := block.Pattern(uint64(1000*s+i), rs)
				if _, err := sess.Write(base+i, want); err != nil {
					errs[s] = err
					return
				}
				got, err := sess.Read(base + i)
				if err != nil {
					errs[s] = err
					return
				}
				if !got.Equal(want) {
					errs[s] = fmt.Errorf("session %d read a foreign value at record %d", s, base+i)
					return
				}
			}
			if sess.Accesses() != 2*perSession {
				errs[s] = fmt.Errorf("session %d metered %d accesses, want %d", s, sess.Accesses(), 2*perSession)
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Accesses(); got != 2*sessions*perSession {
		t.Fatalf("proxy executed %d accesses, want %d", got, 2*sessions*perSession)
	}
}

// slowMem delays every batch by a fixed latency (outside any lock), so
// write-behind jobs stay in flight long enough for reads to overlap them.
type slowMem struct {
	*store.Mem
	delay time.Duration
}

func (s *slowMem) ReadBatch(addrs []int) ([]block.Block, error) {
	time.Sleep(s.delay)
	return s.Mem.ReadBatch(addrs)
}

func (s *slowMem) WriteBatch(ops []store.WriteOp) error {
	time.Sleep(s.delay)
	return s.Mem.WriteBatch(ops)
}

// TestPipelineOverlayConsistency hammers one address with writes and reads
// through a slow store: every read must observe the latest write accepted
// before it, whether served from the wire or the pending overlay.
func TestPipelineOverlayConsistency(t *testing.T) {
	m, err := store.NewMem(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(&slowMem{Mem: m, delay: 200 * time.Microsecond})
	for i := 0; i < 200; i++ {
		want := block.Pattern(uint64(i), 16)
		if err := pipe.WriteBatch([]store.WriteOp{{Addr: 3, Block: want}}); err != nil {
			t.Fatal(err)
		}
		got, err := pipe.ReadBatch([]int{3, 4, 3})
		if err != nil {
			t.Fatal(err)
		}
		if !got[0].Equal(want) || !got[2].Equal(want) {
			t.Fatalf("iteration %d: read served a stale value", i)
		}
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if pipe.PendingWrites() != 0 {
		t.Fatalf("%d pending writes after Flush", pipe.PendingWrites())
	}
	// After the flush the inner store itself must hold the final value.
	got, err := m.Download(3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(block.Pattern(199, 16)) {
		t.Fatal("inner store stale after Flush")
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.WriteBatch([]store.WriteOp{{Addr: 0, Block: block.New(16)}}); !errors.Is(err, ErrPipelineClosed) {
		t.Fatalf("write after close: err = %v, want ErrPipelineClosed", err)
	}
}

// TestPipelineConcurrentWritersOrder: racing WriteBatch callers (legal —
// Pipeline is exported as a general BatchServer) must land in seq order:
// whatever value a quiesced read observes through the overlay is the
// value the inner store holds after Flush. A seq/channel-order mismatch
// would let an older write overwrite a newer one.
func TestPipelineConcurrentWritersOrder(t *testing.T) {
	m, err := store.NewMem(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(&slowMem{Mem: m, delay: 20 * time.Microsecond})
	defer pipe.Close() //nolint:errcheck
	for iter := 0; iter < 40; iter++ {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					b := block.Pattern(uint64(iter*10000+g*100+i), 16)
					if err := pipe.WriteBatch([]store.WriteOp{{Addr: 0, Block: b}}); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		before, err := pipe.ReadBatch([]int{0}) // freshest accepted write, via overlay
		if err != nil {
			t.Fatal(err)
		}
		if err := pipe.Flush(); err != nil {
			t.Fatal(err)
		}
		after, err := m.Download(0)
		if err != nil {
			t.Fatal(err)
		}
		if !after.Equal(before[0]) {
			t.Fatalf("iteration %d: inner store landed a stale write over a newer one", iter)
		}
	}
}

// TestProxyOverTCP runs the full deployment shape: a Path ORAM behind a
// proxy daemon, concurrent wire clients, and the block-frame trust
// boundary.
func TestProxyOverTCP(t *testing.T) {
	const n, rs = 32, 24
	db, err := block.PatternDatabase(n, rs)
	if err != nil {
		t.Fatal(err)
	}
	oopts := pathoram.Options{Rand: rng.New(7), Key: crypto.KeyFromSeed(7)}
	slots, bs := pathoram.TreeShape(n, rs, oopts)
	backing, err := store.NewMem(slots, bs)
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(store.AsBatch(backing))
	oram, err := pathoram.Setup(db, pipe, oopts)
	if err != nil {
		t.Fatal(err)
	}
	p := New(oram, Options{Pipeline: pipe})
	defer p.Close() //nolint:errcheck

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, p) //nolint:errcheck
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs[s] = err
				return
			}
			defer c.Close()
			if c.Records() != n || c.RecordSize() != rs {
				errs[s] = fmt.Errorf("handshake shape = %d × %d", c.Records(), c.RecordSize())
				return
			}
			base := s * (n / 4)
			want := block.Pattern(uint64(500+s), rs)
			if _, err := c.Write(base, want); err != nil {
				errs[s] = err
				return
			}
			got, err := c.Read(base)
			if err != nil {
				errs[s] = err
				return
			}
			if !got.Equal(want) {
				errs[s] = fmt.Errorf("client %d read a stale or foreign value", s)
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The trust boundary: a block-protocol client may handshake (it sees
	// the logical shape) but every block frame must be rejected.
	rc, err := store.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Size() != n || rc.BlockSize() != rs {
		t.Fatalf("block handshake reported %d × %d, want logical %d × %d", rc.Size(), rc.BlockSize(), n, rs)
	}
	var re *wire.RemoteError
	if _, err := rc.Download(0); !errors.As(err, &re) {
		t.Fatalf("download on proxy namespace: err = %v, want a server-side rejection", err)
	}
	if err := rc.Upload(0, block.New(rs)); !errors.As(err, &re) {
		t.Fatalf("upload on proxy namespace: err = %v, want a server-side rejection", err)
	}
	if _, err := rc.ReadBatch([]int{0, 1}); !errors.As(err, &re) {
		t.Fatalf("read batch on proxy namespace: err = %v, want a server-side rejection", err)
	}
}

// TestProxyNamespaceOverTCP hosts a proxy and a block store side by side
// on one daemon and opens each by name.
func TestProxyNamespaceOverTCP(t *testing.T) {
	const n, rs = 16, 16
	db, srv := dpramMem(t, n, rs)
	opts := dpram.Options{Rand: rng.New(3), Key: crypto.KeyFromSeed(3)}
	scheme, err := dpram.Setup(db, srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := New(scheme, Options{})
	defer p.Close() //nolint:errcheck

	blocks, err := store.NewMem(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	ns := store.NewNamespaces()
	ns.AttachAccessor("tenants/alice", p)
	ns.Attach("raw", blocks)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go store.ServeNamespaces(ln, ns) //nolint:errcheck
	addr := ln.Addr().String()

	c, err := DialNamespace(addr, "tenants/alice")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db.Get(5)) {
		t.Fatal("proxy namespace served the wrong record")
	}

	// The block namespace still works, and opening the proxy namespace
	// with the block client is allowed only as far as the handshake.
	rc, err := store.DialNamespace(addr, "raw", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Download(0); err != nil {
		t.Fatal(err)
	}
	// A proxy client pointed at a block namespace handshakes (the open
	// reports the store's shape) but its access frames must be rejected
	// server-side.
	pc, err := DialNamespace(addr, "raw")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	var re *wire.RemoteError
	if _, err := pc.Read(0); !errors.As(err, &re) {
		t.Fatalf("access frame on block namespace: err = %v, want a server-side rejection", err)
	}
}
