package proxy

import (
	"net"

	"dpstore/internal/store"
)

// Serve accepts connections on ln and serves the proxy as the default
// namespace of a wire-protocol daemon until ln closes. Clients speak the
// info handshake plus logical access frames (MsgAccessReq/Resp); every
// block frame is rejected — the physical store behind the scheme is not
// reachable over this listener, which is the proxy deployment's trust
// boundary. Each connection is one client session served concurrently;
// the proxy's scheduler provides the serialization.
//
// To host a proxy alongside block namespaces (or several proxies), build
// a store.Namespaces registry, AttachAccessor the proxies, and call
// store.ServeNamespaces directly; Serve is the single-tenant form.
func Serve(ln net.Listener, p *Proxy) error {
	ns := store.NewNamespaces()
	ns.AttachAccessor(store.DefaultNamespace, p)
	return store.ServeNamespaces(ln, ns)
}
