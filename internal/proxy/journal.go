package proxy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"dpstore/internal/block"
	"dpstore/internal/statecodec"
	"dpstore/internal/store"
)

// Journal is the proxy's durable checkpoint log: an append-only file of
// CRC-framed records, each a complete Checkpoint (scheme client state plus
// the acked-but-unflushed physical writes at that instant). Recovery needs
// only the LAST intact record — every record is a full snapshot, not a
// delta — so compaction is trivial: when the log outgrows its limit, it is
// rewritten (atomically, via rename) to hold just the newest record.
//
// The commit protocol the scheduler follows makes the journal the single
// source of truth for what was acknowledged:
//
//  1. run the scheme accesses (their writes are HELD by the journaled
//     Pipeline, visible to the scheme through the pending overlay but not
//     yet on the store);
//  2. Append a checkpoint capturing the post-access scheme state and the
//     held writes;
//  3. Release the pipeline barrier (the writes may now land);
//  4. acknowledge the clients.
//
// A crash before 2 completes leaves the store consistent with the
// PREVIOUS checkpoint (the held writes never landed); a crash after 2 is
// repaired by restoring the state and replaying Pending — idempotent, the
// same ciphertexts to the same slots. Torn tails from a crash mid-append
// fail the CRC and are discarded at open, which is correct: their
// accesses were never acknowledged.
//
// The journal also owns the proxy's recovery epoch, bumped on every open
// and reported through the wire handshake.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	limit int64
	size  int64
	epoch uint64
	last  []byte // encoded payload of the newest checkpoint, for compaction
}

// Checkpoint is one recoverable proxy state: everything needed to resume
// serving over a crash-recovered physical store.
type Checkpoint struct {
	// State is the scheme's MarshalState snapshot.
	State []byte
	// Pending holds the acked-but-unflushed physical writes at snapshot
	// time, freshest per address in sequence order. Recovery replays them
	// onto the store before the scheme resumes.
	Pending []store.WriteOp
}

// ErrJournal reports a journal file the codec cannot use.
var ErrJournal = errors.New("proxy: invalid journal")

const (
	journalHdrSize     = 24
	defaultJournalSize = 64 << 20
)

var journalMagic = [8]byte{'D', 'P', 'S', 'T', 'J', 'N', 'L', '1'}

const journalVersion = 1

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// encodeJournalHeader lays out magic ‖ version u32 ‖ epoch u64 ‖ crc u32.
func encodeJournalHeader(epoch uint64) []byte {
	h := make([]byte, journalHdrSize)
	copy(h[:8], journalMagic[:])
	binary.BigEndian.PutUint32(h[8:12], journalVersion)
	binary.BigEndian.PutUint64(h[12:20], epoch)
	binary.BigEndian.PutUint32(h[20:24], crc32.Checksum(h[:20], journalCRC))
	return h
}

// encodeCheckpoint lays out a record payload:
//
//	stateLen u32 ‖ state ‖ pendingCount u32 ‖ blockSize u32 ‖
//	count × (addr u64 ‖ block)
func encodeCheckpoint(ck Checkpoint) ([]byte, error) {
	blockSize := 0
	if len(ck.Pending) > 0 {
		blockSize = len(ck.Pending[0].Block)
		if blockSize == 0 {
			return nil, fmt.Errorf("%w: zero-sized pending block", ErrJournal)
		}
	}
	size := 4 + len(ck.State) + 8 + len(ck.Pending)*(8+blockSize)
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint32(out, uint32(len(ck.State)))
	out = append(out, ck.State...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(ck.Pending)))
	out = binary.BigEndian.AppendUint32(out, uint32(blockSize))
	for _, op := range ck.Pending {
		if len(op.Block) != blockSize {
			return nil, fmt.Errorf("%w: ragged pending block (%d B, want %d)", ErrJournal, len(op.Block), blockSize)
		}
		out = binary.BigEndian.AppendUint64(out, uint64(op.Addr))
		out = append(out, op.Block...)
	}
	return out, nil
}

// decodeCheckpoint parses a record payload.
func decodeCheckpoint(payload []byte) (*Checkpoint, error) {
	r := statecodec.NewReader(payload)
	stateLen := int(r.U32())
	if r.Err() != nil || stateLen < 0 {
		return nil, fmt.Errorf("%w: state length", ErrJournal)
	}
	state := r.Bytes(stateLen)
	count := int(r.U32())
	blockSize := int(r.U32())
	if r.Err() != nil || count < 0 || (count > 0 && blockSize <= 0) {
		return nil, fmt.Errorf("%w: pending shape count=%d blockSize=%d", ErrJournal, count, blockSize)
	}
	ck := &Checkpoint{State: append([]byte(nil), state...)}
	ck.Pending = make([]store.WriteOp, count)
	for i := 0; i < count; i++ {
		addr := int(r.U64())
		data := r.Bytes(blockSize)
		if r.Err() != nil {
			return nil, r.Err()
		}
		ck.Pending[i] = store.WriteOp{Addr: addr, Block: block.Block(data).Copy()}
	}
	if err := r.Drained(); err != nil {
		return nil, err
	}
	return ck, nil
}

// OpenJournal opens (or creates) the checkpoint journal at path, returning
// the newest intact checkpoint (nil for a fresh journal — the caller runs
// scheme setup and appends the first one). Opening bumps the recovery
// epoch and compacts: the file is atomically rewritten to hold the new
// header plus that one checkpoint, discarding history and any torn tail.
// limit ≤ 0 selects 64 MiB.
func OpenJournal(path string, limit int64) (*Journal, *Checkpoint, error) {
	if limit <= 0 {
		limit = defaultJournalSize
	}
	j := &Journal{path: path, limit: limit}

	var ck *Checkpoint
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		j.epoch = 1
	case err != nil:
		return nil, nil, fmt.Errorf("proxy: reading journal %s: %w", path, err)
	default:
		epoch, last, derr := scanJournal(data)
		if derr != nil {
			return nil, nil, fmt.Errorf("%w: %s: %v", ErrJournal, path, derr)
		}
		j.epoch = epoch + 1
		j.last = last
		if last != nil {
			if ck, derr = decodeCheckpoint(last); derr != nil {
				return nil, nil, fmt.Errorf("%w: %s: %v", ErrJournal, path, derr)
			}
		}
	}
	if err := j.rewrite(); err != nil {
		return nil, nil, err
	}
	return j, ck, nil
}

// scanJournal validates the header and walks the records, returning the
// stored epoch and the payload of the last intact record (nil if none). A
// torn or corrupt record ends the walk — everything before it stands.
func scanJournal(data []byte) (epoch uint64, last []byte, err error) {
	if len(data) < journalHdrSize {
		return 0, nil, errors.New("short header")
	}
	hdr := data[:journalHdrSize]
	if [8]byte(hdr[:8]) != journalMagic ||
		crc32.Checksum(hdr[:20], journalCRC) != binary.BigEndian.Uint32(hdr[20:24]) {
		return 0, nil, errors.New("bad header")
	}
	if v := binary.BigEndian.Uint32(hdr[8:12]); v != journalVersion {
		return 0, nil, fmt.Errorf("journal version %d, this build reads %d", v, journalVersion)
	}
	epoch = binary.BigEndian.Uint64(hdr[12:20])
	rest := data[journalHdrSize:]
	for len(rest) >= 4 {
		recLen := int(binary.BigEndian.Uint32(rest[:4]))
		if recLen < 4 || len(rest)-4 < recLen {
			break // torn tail
		}
		rec := rest[4 : 4+recLen]
		crcOff := recLen - 4
		if crc32.Checksum(rec[:crcOff], journalCRC) != binary.BigEndian.Uint32(rec[crcOff:]) {
			break // corrupt (mid-append crash): unacknowledged, discard
		}
		last = rec[:crcOff]
		rest = rest[4+recLen:]
	}
	return epoch, last, nil
}

// rewrite atomically replaces the journal file with header + newest
// checkpoint — the compaction primitive, also used at open (epoch bump)
// and when the log outgrows its limit. Caller holds j.mu or has exclusive
// access.
func (j *Journal) rewrite() error {
	buf := encodeJournalHeader(j.epoch)
	if j.last != nil {
		buf = append(buf, frameRecord(j.last)...)
	}
	if err := store.WriteFileAtomic(j.path, buf); err != nil {
		return err
	}
	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(j.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("proxy: reopening journal %s: %w", j.path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("proxy: stat journal %s: %w", j.path, err)
	}
	j.f = f
	j.size = st.Size()
	return nil
}

// frameRecord wraps a payload as length u32 ‖ payload ‖ crc u32.
func frameRecord(payload []byte) []byte {
	rec := make([]byte, 0, 4+len(payload)+4)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)+4))
	rec = append(rec, payload...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.Checksum(payload, journalCRC))
	return rec
}

// Epoch returns the recovery epoch of this journal incarnation.
func (j *Journal) Epoch() uint64 { return j.epoch }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append makes ck durable: encoded, CRC-framed, appended, fsynced. When
// the log would outgrow its limit the append becomes a compacting rewrite
// instead (same durability, one atomic rename). Append returns only once
// the checkpoint is on stable storage — the caller may then release held
// writes and acknowledge clients.
func (j *Journal) Append(ck Checkpoint) error {
	payload, err := encodeCheckpoint(ck)
	if err != nil {
		return err
	}
	rec := frameRecord(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("%w: journal closed", ErrJournal)
	}
	if j.size+int64(len(rec)) > j.limit {
		j.last = payload
		return j.rewrite()
	}
	if _, err := j.f.WriteAt(rec, j.size); err != nil {
		return fmt.Errorf("proxy: appending journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("proxy: syncing journal: %w", err)
	}
	j.size += int64(len(rec))
	j.last = payload
	return nil
}

// Size returns the current journal file size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// ReplayPending applies a recovered checkpoint's pending writes to the
// physical store — the recovery step between reopening the store and
// resuming the scheme. Idempotent: the ops carry the same ciphertexts to
// the same slots whether or not a prefix already landed before the crash.
func ReplayPending(backing store.BatchServer, ck *Checkpoint) error {
	if ck == nil || len(ck.Pending) == 0 {
		return nil
	}
	if err := backing.WriteBatch(ck.Pending); err != nil {
		return fmt.Errorf("proxy: replaying %d pending writes: %w", len(ck.Pending), err)
	}
	return nil
}

var _ io.Closer = (*Journal)(nil)
