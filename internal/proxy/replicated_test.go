package proxy

// The tentpole integration test at the proxy layer: many concurrent
// client sessions run over a Pipeline whose backing store is a
// store.Replicated cluster; one replica is killed mid-load and later
// revived. The proxy's clients must observe ZERO failed accesses — the
// cluster absorbs the failure below the pipeline — and the revived
// replica must be resynchronized and promoted while load continues.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

// switchable wraps a BatchServer with a togglable failure gate (the
// proxy-layer twin of the store package's test gate, which is not
// exported).
type switchable struct {
	inner  store.BatchServer
	broken atomic.Bool
}

var errSwitch = errors.New("proxy test: replica gate closed")

func (s *switchable) Download(addr int) (block.Block, error) {
	if s.broken.Load() {
		return nil, errSwitch
	}
	return s.inner.Download(addr)
}

func (s *switchable) Upload(addr int, b block.Block) error {
	if s.broken.Load() {
		return errSwitch
	}
	return s.inner.Upload(addr, b)
}

func (s *switchable) ReadBatch(addrs []int) ([]block.Block, error) {
	if s.broken.Load() {
		return nil, errSwitch
	}
	return s.inner.ReadBatch(addrs)
}

func (s *switchable) WriteBatch(ops []store.WriteOp) error {
	if s.broken.Load() {
		return errSwitch
	}
	return s.inner.WriteBatch(ops)
}

func (s *switchable) Size() int      { return s.inner.Size() }
func (s *switchable) BlockSize() int { return s.inner.BlockSize() }

// TestProxyOverReplicatedKillOneReplica: 8 sessions of mixed reads and
// writes over Proxy → Pipeline → Replicated(3, W=2); replica 1 dies at
// mid-load and comes back; every access of every session must succeed,
// and after promotion all three replicas hold identical ciphertext
// arrays.
func TestProxyOverReplicatedKillOneReplica(t *testing.T) {
	const n, rs, sessions, perSession = 64, 16, 8, 40
	db, err := block.PatternDatabase(n, rs)
	if err != nil {
		t.Fatal(err)
	}
	physBS := crypto.CiphertextSize(rs)
	mems := make([]*store.Mem, 3)
	gates := make([]*switchable, 3)
	specs := make([]store.ReplicaSpec, 3)
	for i := range specs {
		m, err := store.NewMem(n, physBS)
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = m
		gates[i] = &switchable{inner: store.AsBatch(m)}
		specs[i] = store.ReplicaSpec{Name: fmt.Sprintf("r%d", i), Backend: gates[i]}
	}
	cluster, err := store.NewReplicated(specs, store.ReplicatedOptions{
		WriteQuorum:      2,
		ReadPolicy:       store.ReadRotate,
		ProbeInterval:    time.Millisecond,
		MaxProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close() //nolint:errcheck

	pipe := NewPipeline(cluster)
	scheme, err := dpram.Setup(db, pipe, dpram.Options{Rand: rng.New(11), Key: crypto.KeyFromSeed(11)})
	if err != nil {
		t.Fatal(err)
	}
	p := New(scheme, Options{Pipeline: pipe})
	defer p.Close() //nolint:errcheck
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	var accesses atomic.Int64
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := p.NewSession()
			for q := 0; q < perSession; q++ {
				idx := (s*perSession + q) % n
				var err error
				if q%2 == 0 {
					_, err = sess.Read(idx)
				} else {
					_, err = sess.Write(idx, block.Pattern(uint64(s*1000+q), rs))
				}
				if err != nil {
					errs[s] = fmt.Errorf("session %d access %d: %w", s, q, err)
					return
				}
				accesses.Add(1)
			}
		}(s)
	}
	// Kill replica 1 once load is flowing, revive it while load continues.
	for accesses.Load() < sessions*perSession/4 {
		time.Sleep(100 * time.Microsecond)
	}
	gates[1].broken.Store(true)
	for accesses.Load() < sessions*perSession/2 {
		time.Sleep(100 * time.Microsecond)
	}
	gates[1].broken.Store(false)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("proxy client observed a failed access: %v", err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	// Wait for the revived replica to be promoted, then require
	// bit-identical replicas.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && cluster.ReplicaStatus()[1].State != store.ReplicaUp {
		time.Sleep(time.Millisecond)
	}
	if st := cluster.ReplicaStatus()[1]; st.State != store.ReplicaUp {
		t.Fatalf("killed replica never promoted back: %+v", cluster.ReplicaStatus())
	}
	cluster.Flush()
	for a := 0; a < n; a++ {
		want, _ := mems[0].Download(a)
		for i := 1; i < 3; i++ {
			got, _ := mems[i].Download(a)
			if !bytes.Equal(got, want) {
				b2, _ := mems[2].Download(a)
				t.Fatalf("replica %d diverges at slot %d after rejoin\nstatus=%+v\nr0[:8]=%x r%d[:8]=%x r2[:8]=%x",
					i, a, cluster.ReplicaStatus(), want[:8], i, got[:8], b2[:8])
			}
		}
	}
}
