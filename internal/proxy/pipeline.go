package proxy

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/store"
)

// pipelineDepth bounds how many write jobs may be queued behind the writer
// goroutine before WriteBatch applies backpressure.
const pipelineDepth = 64

// coalesceCap bounds how many ops one flush may merge into a single inner
// WriteBatch (the Remote transport re-chunks at MaxFrame anyway; this cap
// keeps a burst from building one enormous in-memory batch).
const coalesceCap = 1024

// writeRetries is how many times a failed flush is retried before the
// pipeline declares the store unreachable and poisons itself. Replaying a
// write batch is idempotent — the same ciphertexts go to the same slots —
// so retrying after a partially applied attempt is safe, the same argument
// Path ORAM's interrupted-path-write replay rests on.
const writeRetries = 8

// ErrPipelineClosed reports an operation on a closed Pipeline.
var ErrPipelineClosed = errors.New("proxy: pipeline closed")

// Pipeline is a write-behind store.BatchServer wrapper: WriteBatch
// enqueues the ops to a background writer goroutine and returns
// immediately, so the caller's next ReadBatch overlaps the write's round
// trip — over a store.Pool the two ride separate connections and the
// overlap is real wall-clock time. This is what lets the proxy scheduler
// pipeline scheme accesses: while access k's eviction/overwrite lands,
// access k+1's read phase is already on the wire, halving the round trips
// on the critical path without touching any scheme's code.
//
// Consistency: a read of an address with a write still in flight is served
// the pending data (the physical read is still issued — the access pattern
// a construction emits must reach the store unchanged, collisions
// included; only the returned bytes are overlaid). The overlay snapshot is
// taken before the physical read is issued, so a missing pending entry
// proves the write was fully acknowledged before the read went out.
//
// Failure: a flush that keeps failing after retries poisons the pipeline —
// every later operation returns the sticky error. Transient faults are
// absorbed by the retry loop and never reach the scheme, preserving the
// schemes' fault-atomicity invariants (they released state on the strength
// of our nil return; the pending buffer holds the only fresh copy until
// the write truly lands).
//
// A Pipeline is safe for concurrent use. Close only after the callers have
// quiesced (the Proxy does this: its scheduler is the sole caller and has
// exited before Close).
type Pipeline struct {
	inner store.BatchServer

	// sendMu serializes seq assignment with the channel send, so the
	// writer receives jobs in seq order even when WriteBatch callers
	// race. (It cannot be p.mu: a sender blocked on a full jobs channel
	// must not hold the lock the writer's flush needs to drain it.)
	sendMu sync.Mutex

	mu       sync.Mutex
	cond     *sync.Cond
	pending  map[int]pendingBlock // addr → freshest not-yet-landed write
	seq      uint64
	inFlight int // enqueued-but-not-flushed ops
	sticky   error
	closed   bool

	// journaled mode: the writer may only flush ops whose seq is covered
	// by the release barrier — i.e. ops a durable checkpoint has recorded.
	// See NewJournaledPipeline.
	journaled bool
	released  uint64

	jobs chan job
	done chan struct{}
}

// pendingBlock is one not-yet-landed write; seq orders multiple in-flight
// writes to the same address so only the final landing clears the entry.
type pendingBlock struct {
	seq  uint64
	data block.Block
}

// job is one enqueued WriteBatch, with per-op sequence numbers.
type job struct {
	ops  []store.WriteOp
	seqs []uint64
}

// NewPipeline wraps inner with a write-behind stage and starts its writer
// goroutine. inner must be safe for concurrent use (every Server in this
// module is); to overlap round trips over TCP, hand it a store.Pool of at
// least two connections.
func NewPipeline(inner store.BatchServer) *Pipeline {
	p := &Pipeline{
		inner:   inner,
		pending: make(map[int]pendingBlock),
		jobs:    make(chan job, pipelineDepth),
		done:    make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	go p.writer()
	return p
}

// NewJournaledPipeline wraps inner with a write-behind stage already in
// journaled (write-hold) mode; see SetJournaled.
func NewJournaledPipeline(inner store.BatchServer) *Pipeline {
	p := NewPipeline(inner)
	p.SetJournaled()
	return p
}

// SetJournaled switches the pipeline into journaled (write-hold) mode: the
// writer goroutine flushes an op to the inner store only once Release has
// advanced past its sequence number. The durable proxy uses this to keep
// physical writes OFF the store until the checkpoint describing them —
// scheme state plus the pending ops themselves — is durable in the
// journal: a crash before the checkpoint then leaves the store exactly
// consistent with the previous checkpoint, and a crash after it is
// repaired by replaying the journal's pending ops. Reads still see the
// held writes through the pending overlay, so the scheme's
// read-your-writes view is unchanged.
//
// Call it at a quiescent point (after setup flush, before serving); it is
// not synchronized against in-flight WriteBatch calls.
func (p *Pipeline) SetJournaled() {
	p.mu.Lock()
	p.journaled = true
	p.mu.Unlock()
}

// Journaled reports whether the pipeline is in write-hold mode.
func (p *Pipeline) Journaled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.journaled
}

// Release advances the flush barrier: every held op with seq ≤ upTo may
// now reach the inner store. The proxy calls it right after the journal
// append that recorded those ops returns.
func (p *Pipeline) Release(upTo uint64) {
	p.mu.Lock()
	if upTo > p.released {
		p.released = upTo
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// PendingSnapshot returns the acked-but-unflushed writes (freshest per
// address, in sequence order — replaying them in that order reproduces
// the same final store state as the full write history) together with the
// highest sequence number assigned so far, which is what the caller hands
// to Release once the snapshot is durable.
func (p *Pipeline) PendingSnapshot() ([]store.WriteOp, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	type entry struct {
		seq  uint64
		addr int
	}
	entries := make([]entry, 0, len(p.pending))
	for addr, pb := range p.pending {
		entries = append(entries, entry{seq: pb.seq, addr: addr})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	ops := make([]store.WriteOp, len(entries))
	for i, e := range entries {
		// The block is owned by the pipeline and never mutated after entry
		// (flushes only delete map entries), so aliasing is safe for the
		// synchronous encode that follows.
		ops[i] = store.WriteOp{Addr: e.addr, Block: p.pending[e.addr].data}
	}
	return ops, p.seq
}

// poison marks the pipeline dead with err (first error wins) and wakes
// every waiter. The proxy uses it when a checkpoint fails: unjournaled
// writes must never reach the store, so the pipeline cannot continue.
func (p *Pipeline) poison(err error) {
	p.mu.Lock()
	if p.sticky == nil {
		p.sticky = err
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// writer drains the job queue, coalescing whatever is already queued into
// one inner WriteBatch — consecutive accesses' evictions merge into a
// single round trip, which keeps the write path off the critical path even
// when writes are slower than reads (the disk-with-sync case).
func (p *Pipeline) writer() {
	defer close(p.done)
	for {
		j, ok := <-p.jobs
		if !ok {
			return
		}
		ops, seqs := j.ops, j.seqs
	coalesce:
		for len(ops) < coalesceCap {
			select {
			case more, ok := <-p.jobs:
				if !ok {
					p.dispatch(ops, seqs)
					return
				}
				ops = append(ops, more.ops...)
				seqs = append(seqs, more.seqs...)
			default:
				break coalesce
			}
		}
		p.dispatch(ops, seqs)
	}
}

// dispatch flushes one coalesced group, first honoring the journaled-mode
// release barrier: ops not yet covered by a durable checkpoint wait here.
// If the barrier can never advance (poisoned, or closed with a checkpoint
// missing), the group is DISCARDED rather than flushed — unjournaled
// writes reaching the store would desynchronize it from the journal, which
// is exactly the corruption the barrier exists to prevent; the accesses
// that produced them were never acknowledged.
func (p *Pipeline) dispatch(ops []store.WriteOp, seqs []uint64) {
	if len(seqs) > 0 && !p.waitReleased(seqs[len(seqs)-1]) {
		p.discard(ops, seqs)
		return
	}
	p.flush(ops, seqs)
}

// waitReleased blocks until the release barrier covers maxSeq, returning
// false when that will never happen.
func (p *Pipeline) waitReleased(maxSeq uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if !p.journaled || p.released >= maxSeq {
			return true
		}
		if p.sticky != nil || p.closed {
			return false
		}
		p.cond.Wait()
	}
}

// discard drops a never-released group, keeping the accounting honest so
// Flush and PendingWrites converge.
func (p *Pipeline) discard(ops []store.WriteOp, seqs []uint64) {
	p.mu.Lock()
	for i, op := range ops {
		if pb, ok := p.pending[op.Addr]; ok && pb.seq == seqs[i] {
			delete(p.pending, op.Addr)
		}
	}
	p.inFlight -= len(ops)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// flush lands one coalesced batch, retrying transient failures, then
// clears the pending entries it proved durable.
func (p *Pipeline) flush(ops []store.WriteOp, seqs []uint64) {
	obsPipeFlushOps.Record(int64(len(ops)))
	t0 := time.Now()
	var err error
	for attempt := 0; attempt <= writeRetries; attempt++ {
		if err = p.inner.WriteBatch(ops); err == nil {
			break
		}
	}
	obsPipeFlush.Since(t0)
	p.mu.Lock()
	if err != nil {
		if p.sticky == nil {
			p.sticky = fmt.Errorf("proxy: write-behind flush failed after %d attempts: %w", writeRetries+1, err)
		}
	} else {
		for i, op := range ops {
			if pb, ok := p.pending[op.Addr]; ok && pb.seq == seqs[i] {
				delete(p.pending, op.Addr)
			}
		}
	}
	p.inFlight -= len(ops)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// ReadBatch implements store.BatchServer: the physical read always goes to
// the inner store (same addresses, same order — the access pattern is the
// privacy object and must not change), and any address with an in-flight
// write has its returned bytes overlaid with the pending data.
func (p *Pipeline) ReadBatch(addrs []int) ([]block.Block, error) {
	p.mu.Lock()
	if err := p.gate(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	var overlay map[int]block.Block
	for _, a := range addrs {
		if pb, ok := p.pending[a]; ok {
			if overlay == nil {
				overlay = make(map[int]block.Block)
			}
			overlay[a] = pb.data
		}
	}
	p.mu.Unlock()

	obsPipeReadBlocks.Record(int64(len(addrs)))
	t0 := time.Now()
	blocks, err := p.inner.ReadBatch(addrs)
	obsPipeRead.Since(t0)
	if err != nil {
		return nil, err
	}
	for i, a := range addrs {
		if b, ok := overlay[a]; ok {
			blocks[i] = b.Copy()
		}
	}
	return blocks, nil
}

// WriteBatch implements store.BatchServer: record the ops as pending and
// hand them to the writer. The blocks are copied — callers may reuse their
// buffers the moment this returns, exactly as with a synchronous store. The
// copies are carved from one slab per batch (the job and its seqs genuinely
// transfer to the writer goroutine, so unlike the synchronous stores'
// scratch they cannot be reused — but the per-op block allocations can
// still collapse into one backing array).
func (p *Pipeline) WriteBatch(ops []store.WriteOp) error {
	if len(ops) == 0 {
		return nil
	}
	obsPipeWriteOps.Record(int64(len(ops)))
	cp := make([]store.WriteOp, len(ops))
	seqs := make([]uint64, len(ops))
	backing := 0
	for _, op := range ops {
		backing += len(op.Block)
	}
	buf := make([]byte, 0, backing)
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	p.mu.Lock()
	if err := p.gate(); err != nil {
		p.mu.Unlock()
		return err
	}
	for i, op := range ops {
		p.seq++
		start := len(buf)
		buf = append(buf, op.Block...)
		cp[i] = store.WriteOp{Addr: op.Addr, Block: block.Block(buf[start:len(buf):len(buf)])}
		seqs[i] = p.seq
		p.pending[op.Addr] = pendingBlock{seq: p.seq, data: cp[i].Block}
	}
	p.inFlight += len(ops)
	p.mu.Unlock()
	p.jobs <- job{ops: cp, seqs: seqs}
	return nil
}

// gate is the common closed/poisoned check; callers hold p.mu.
func (p *Pipeline) gate() error {
	if p.sticky != nil {
		return p.sticky
	}
	if p.closed {
		return ErrPipelineClosed
	}
	return nil
}

// Download implements store.Server via ReadBatch, so the overlay holds for
// per-block callers too.
func (p *Pipeline) Download(addr int) (block.Block, error) {
	blocks, err := p.ReadBatch([]int{addr})
	if err != nil {
		return nil, err
	}
	return blocks[0], nil
}

// Upload implements store.Server via WriteBatch.
func (p *Pipeline) Upload(addr int, b block.Block) error {
	return p.WriteBatch([]store.WriteOp{{Addr: addr, Block: b}})
}

// Size implements store.Server.
func (p *Pipeline) Size() int { return p.inner.Size() }

// BlockSize implements store.Server.
func (p *Pipeline) BlockSize() int { return p.inner.BlockSize() }

// Flush blocks until every enqueued write has landed (or the pipeline is
// poisoned) and returns the sticky error, if any. Call it after bulk
// setup, and before trusting the inner store's contents.
func (p *Pipeline) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.inFlight > 0 && p.sticky == nil {
		p.cond.Wait()
	}
	return p.sticky
}

// PendingWrites returns the number of enqueued-but-not-landed ops.
func (p *Pipeline) PendingWrites() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inFlight
}

// Close drains the writer and shuts the pipeline down, returning the
// sticky error if the drain (or any earlier flush) failed. Callers must
// have quiesced first: a WriteBatch racing Close panics on the closed
// channel by design rather than losing data silently.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast() // wake a writer parked on the release barrier
	if !already {
		close(p.jobs)
	}
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sticky
}
