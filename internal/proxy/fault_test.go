package proxy

// Fault injection for the concurrency stack: 16 proxy sessions over a
// store.Pool to a daemon whose backing store is a store.Faulty — the
// layering a production deployment degrades through (scheme → pipeline →
// pool → TCP → injected storage faults). The invariants, extending the
// fault_test.go patterns of dpram/pathoram up through the proxy:
//
//   - a fault surfaces to exactly the session whose request tripped it,
//     as an error (never a panic, never a foreign session's data);
//   - scheme state survives transient faults: once the storage heals,
//     every session's reads return its own last written value;
//   - transient write faults are absorbed by the pipeline's replay and
//     never disturb any session at all;
//   - a permanently dead store poisons the proxy cleanly (errors
//     everywhere, Close returns).

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

const (
	faultSessions   = 16
	faultPerSession = 4
	faultRecords    = faultSessions * faultPerSession
	faultRS         = 16
)

// faultStack builds the full stack over an injected-fault store behind a
// real daemon: Faulty(Mem) ← TCP ← Pool(4) ← Pipeline ← DP-RAM ← Proxy.
// Setup costs exactly faultRecords upload ops, so failAt offsets above
// that land in the access phase.
func faultStack(t *testing.T, failAt int64, failFrom bool) (*Proxy, *store.Faulty) {
	t.Helper()
	mem, err := store.NewMem(faultRecords, crypto.CiphertextSize(faultRS))
	if err != nil {
		t.Fatal(err)
	}
	faulty := store.NewFaulty(mem, failAt, nil)
	if failFrom {
		faulty.FailFrom()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go store.Serve(ln, faulty) //nolint:errcheck

	pool, err := store.DialPool(ln.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })

	db, err := block.PatternDatabase(faultRecords, faultRS)
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(pool)
	scheme, err := dpram.Setup(db, pipe, dpram.Options{Rand: rng.New(11), Key: crypto.KeyFromSeed(11)})
	if err != nil {
		t.Fatalf("setup must precede the fault: %v", err)
	}
	p := New(scheme, Options{Pipeline: pipe})
	t.Cleanup(func() { p.Close() }) //nolint:errcheck
	if err := p.Flush(); err != nil {
		t.Fatalf("setup flush: %v", err)
	}
	return p, faulty
}

// TestProxyFaultTransient drives the 16 sessions through a transient
// fault injected at several offsets of the concurrent access phase. A
// session absorbs errors by retrying (the transport healed by then);
// afterwards every session must read back exactly its own final values.
func TestProxyFaultTransient(t *testing.T) {
	// Setup = faultRecords ops; accesses cost 3 ops each. Offsets probe
	// the start, middle and end of the storm.
	for _, offset := range []int64{1, 3, 40, 97, 150} {
		t.Run(fmt.Sprintf("offset=%d", offset), func(t *testing.T) {
			p, _ := faultStack(t, int64(faultRecords)+offset, false)
			var wg sync.WaitGroup
			errs := make([]error, faultSessions)
			for s := 0; s < faultSessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					sess := p.NewSession()
					base := s * faultPerSession
					for i := 0; i < faultPerSession; i++ {
						want := block.Pattern(uint64(7000+100*s+i), faultRS)
						if err := retry(func() error {
							_, err := sess.Write(base+i, want)
							return err
						}); err != nil {
							errs[s] = fmt.Errorf("session %d write %d: %w", s, i, err)
							return
						}
						var got block.Block
						if err := retry(func() error {
							var err error
							got, err = sess.Read(base + i)
							return err
						}); err != nil {
							errs[s] = fmt.Errorf("session %d read %d: %w", s, i, err)
							return
						}
						if !got.Equal(want) {
							errs[s] = fmt.Errorf("session %d observed foreign or stale data at record %d", s, base+i)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			// Quiesced: the scheme state must have survived the fault — a
			// final serial sweep sees every session's last value.
			if err := p.Flush(); err != nil {
				t.Fatal(err)
			}
			for s := 0; s < faultSessions; s++ {
				for i := 0; i < faultPerSession; i++ {
					got, err := p.Read(s*faultPerSession + i)
					if err != nil {
						t.Fatalf("post-fault sweep: %v", err)
					}
					if !got.Equal(block.Pattern(uint64(7000+100*s+i), faultRS)) {
						t.Fatalf("record %d stale after transient fault", s*faultPerSession+i)
					}
				}
			}
		})
	}
}

// retry absorbs a handful of transient errors; the fault schedule in
// these tests injects a single blip, so a bounded retry always clears.
func retry(f func() error) error {
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		if err = f(); err == nil {
			return nil
		}
	}
	return err
}

// TestPipelineAbsorbsTransientWriteFault pins the pipeline's replay
// semantics in isolation: a write op that fails once is retried until it
// lands, the scheme never sees the error, and the inner store ends up
// current.
func TestPipelineAbsorbsTransientWriteFault(t *testing.T) {
	mem, err := store.NewMem(8, faultRS)
	if err != nil {
		t.Fatal(err)
	}
	faulty := store.NewFaulty(mem, 2, nil) // fail the second op ever
	pipe := NewPipeline(store.AsBatch(faulty))
	defer pipe.Close() //nolint:errcheck
	want := block.Pattern(42, faultRS)
	if err := pipe.WriteBatch([]store.WriteOp{
		{Addr: 1, Block: block.Pattern(41, faultRS)},
		{Addr: 2, Block: want}, // this op trips the fault on the first attempt
	}); err != nil {
		t.Fatalf("write-behind surfaced a transient fault: %v", err)
	}
	if err := pipe.Flush(); err != nil {
		t.Fatalf("flush after transient fault: %v", err)
	}
	got, err := mem.Download(2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("replayed write never landed")
	}
}

// TestProxyFaultPermanent kills the store mid-run for good: sessions get
// errors (not panics, not stale "successes" that vanish), the pipeline
// poisons itself after its retries, and Close still returns.
func TestProxyFaultPermanent(t *testing.T) {
	p, _ := faultStack(t, int64(faultRecords)+20, true)
	var wg sync.WaitGroup
	var failures int64
	var mu sync.Mutex
	for s := 0; s < faultSessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := p.NewSession()
			for i := 0; i < faultPerSession; i++ {
				if _, err := sess.Read(s % faultRecords); err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
				}
			}
		}(s)
	}
	wg.Wait()
	if failures == 0 {
		t.Fatal("permanent fault never surfaced to any session")
	}
	// Close must drain cleanly even with the store dead; the sticky
	// pipeline error (if the writer hit the fault) is an acceptable
	// return, a hang or panic is not.
	if err := p.Close(); err != nil && !errors.Is(err, ErrPipelineClosed) {
		t.Logf("close after permanent fault returned (expected) error: %v", err)
	}
	if _, err := p.Read(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: err = %v, want ErrClosed", err)
	}
}
