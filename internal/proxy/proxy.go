// Package proxy is the concurrent multi-client serving layer for the
// privacy schemes: N clients share one scheme instance (DP-RAM, BucketRAM,
// Path ORAM) through a trusted proxy that serializes scheme-state
// mutations while pipelining the storage round trips underneath.
//
// This is the deployment shape of CAOS (Ordean–Ryan–Galindo) and of every
// "oblivious cloud storage" system built on a stateful client: the
// scheme's stash and position map are one logical party, so a scheduler
// goroutine owns the scheme and drains a request queue; concurrency lives
// below (the Pipeline overlapping round trips over a store.Pool) and above
// (any number of sessions enqueueing requests), never inside the scheme.
//
// Obliviousness under concurrency is the design constraint everything here
// bends around: the proxy issues exactly one real scheme access per queued
// request, in arrival order, with NO same-address deduplication and no
// request reordering. Deduplicating two in-flight requests for the same
// logical record — the classic "optimization" — would make the physical
// trace length a function of logical-address collisions, leaking equality
// of concurrent requests to the storage server. The regression tests in
// oblivious_test.go pin this: the trace the backing store sees depends
// only on the number and arrival order of requests, never on which
// sessions issued them or whether their addresses collide.
package proxy

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dpstore/internal/block"
	"dpstore/internal/workload"
)

// Scheme is the stateful single-client privacy construction the proxy
// multiplexes: one logical access per call, not safe for concurrent use —
// exactly the contract of dpram.Client and pathoram.ORAM, both of which
// satisfy this interface unmodified.
type Scheme interface {
	// N returns the number of logical records.
	N() int
	// RecordSize returns the plaintext record size in bytes.
	RecordSize() int
	// Access performs one logical access and returns the record value
	// (previous value for writes).
	Access(q workload.Query) (block.Block, error)
}

// ErrClosed reports an access against a closed proxy.
var ErrClosed = errors.New("proxy: closed")

// DurableScheme is a Scheme whose client state can be checkpointed — the
// contract journaled proxies require. dpram.Client and pathoram.ORAM both
// satisfy it.
type DurableScheme interface {
	Scheme
	// MarshalState serializes the scheme's private client state (stash,
	// position map, keys) at an access boundary.
	MarshalState() ([]byte, error)
}

// checkpointBurst bounds how many queued requests the scheduler executes
// between two checkpoints in journaled mode. Every request in a burst
// still gets its own scheme access, in arrival order, with no dedup — the
// burst changes only how many accesses share one journal fsync, the
// proxy-level analogue of the engine's group commit. Acks are withheld
// until the shared checkpoint is durable, so the durability contract per
// request is unchanged. The bound also caps how many held write jobs can
// queue behind the pipeline barrier, keeping well clear of the pipeline's
// backpressure depth (a blocked scheduler could otherwise deadlock against
// the writer it has not yet released).
const checkpointBurst = 16

// Options configures a Proxy.
type Options struct {
	// Queue is the request queue capacity: how many client requests may
	// wait behind the scheduler before Access applies backpressure. Zero
	// selects 64.
	Queue int
	// Pipeline ties the write-behind stage's lifecycle to the proxy:
	// Close drains and closes it, Flush waits on it. If the scheme was
	// set up over a Pipeline, it MUST be passed here — otherwise Flush
	// is a silent no-op and Close leaks the writer goroutine with writes
	// possibly still in flight. Leave nil only when the scheme writes
	// synchronously to its store; the proxy is then strictly serialized
	// (each access's write lands before the next access's read is
	// issued), which is what the exact-trace obliviousness tests use.
	Pipeline *Pipeline
}

// request is one queued client access.
type request struct {
	q    workload.Query
	resp chan result
}

type result struct {
	b   block.Block
	err error
}

// Proxy serves one Scheme to any number of concurrent callers. It
// implements store.Accessor, so a daemon can host it as a proxy-backed
// namespace (see Serve / store.Namespaces.AttachAccessor).
type Proxy struct {
	scheme     Scheme
	pipe       *Pipeline
	journal    *Journal
	records    int
	recordSize int

	reqs      chan request
	schedDone chan struct{}

	closeMu sync.RWMutex
	closed  bool
	senders sync.WaitGroup

	stickyMu sync.Mutex
	sticky   error // a failed checkpoint poisons the proxy

	accesses    atomic.Int64
	checkpoints atomic.Int64
	stashDepth  atomic.Int64 // scheme stash occupancy after the last access
}

// stashReporter is the scheduler's view of a scheme that exposes its
// stash occupancy (dpram.Client and pathoram.ORAM both do). The gauge is
// operational only — it is read by the proxy operator's metrics endpoint,
// never sent to the storage server, so exporting it does not widen the
// leakage to the adversary the schemes defend against.
type stashReporter interface {
	StashSize() int
}

// New starts a proxy serving scheme. The scheme must not be used directly
// once the proxy owns it — the scheduler goroutine is its only caller.
func New(scheme Scheme, opts Options) *Proxy {
	queue := opts.Queue
	if queue <= 0 {
		queue = 64
	}
	p := &Proxy{
		scheme:     scheme,
		pipe:       opts.Pipeline,
		records:    scheme.N(),
		recordSize: scheme.RecordSize(),
		reqs:       make(chan request, queue),
		schedDone:  make(chan struct{}),
	}
	go p.scheduler()
	return p
}

// NewDurable starts a journaled proxy: every access's effects — scheme
// state mutation AND physical writes — are made durable in the journal
// before the access is acknowledged, following the commit protocol on
// Journal. Requirements: the scheme was set up (or resumed) over
// opts.Pipeline, opts.Pipeline wraps the recovered physical store, and the
// journal already holds (or is about to receive, via the daemon's initial
// append) a checkpoint consistent with that store. The pipeline is
// switched into journaled write-hold mode here if it is not already.
func NewDurable(scheme DurableScheme, opts Options, journal *Journal) (*Proxy, error) {
	if journal == nil {
		return nil, errors.New("proxy: NewDurable requires a journal")
	}
	if opts.Pipeline == nil {
		return nil, errors.New("proxy: NewDurable requires the scheme's pipeline (synchronous writes would land before their checkpoint)")
	}
	opts.Pipeline.SetJournaled()
	queue := opts.Queue
	if queue <= 0 {
		queue = 64
	}
	p := &Proxy{
		scheme:     scheme,
		pipe:       opts.Pipeline,
		journal:    journal,
		records:    scheme.N(),
		recordSize: scheme.RecordSize(),
		reqs:       make(chan request, queue),
		schedDone:  make(chan struct{}),
	}
	go p.scheduler()
	return p, nil
}

// scheduler owns the scheme: requests execute one at a time in arrival
// order. One queued request is exactly one scheme access — no dedup, no
// reordering, no batching of "equal" requests (see the package comment for
// why that would be a privacy bug, not an optimization).
//
// In journaled mode the scheduler additionally group-commits durability:
// it drains up to checkpointBurst queued requests, executes each as its
// own access, writes ONE checkpoint covering them all, releases the
// pipeline barrier, and only then acknowledges them. The physical trace is
// identical to the non-journaled schedule (same accesses, same order);
// only the ack timing and the fsync amortization differ.
func (p *Proxy) scheduler() {
	defer close(p.schedDone)
	for req := range p.reqs {
		if p.journal == nil {
			b, err := p.scheme.Access(req.q)
			p.accesses.Add(1)
			obsAccesses.Inc()
			p.updateStash()
			req.resp <- result{b: b, err: err}
			continue
		}
		burst := []request{req}
	gather:
		for len(burst) < checkpointBurst {
			select {
			case more, ok := <-p.reqs:
				if !ok {
					break gather // closing: finish this burst, then exit
				}
				burst = append(burst, more)
			default:
				break gather
			}
		}
		if err := p.stickyErr(); err != nil {
			// A previous checkpoint failed: the scheme's in-memory state
			// has already diverged from the journal (its held writes were
			// discarded). Running more accesses — and above all writing
			// more checkpoints — would persist that divergence; fail the
			// queued requests instead.
			for _, r := range burst {
				r.resp <- result{err: err}
			}
			continue
		}
		obsCheckpointBurst.Record(int64(len(burst)))
		results := make([]result, len(burst))
		for i, r := range burst {
			b, err := r.run(p)
			results[i] = result{b: b, err: err}
		}
		if err := p.checkpoint(); err != nil {
			// The accesses happened in memory but their durability could
			// not be secured: fail them all (their held writes will be
			// discarded, the store stays at the previous checkpoint) and
			// poison the proxy — serving on would ack state that cannot
			// survive a restart.
			p.poison(err)
			for i := range results {
				results[i] = result{err: err}
			}
		}
		for i, r := range burst {
			r.resp <- results[i]
		}
	}
}

// run executes one request against the scheme.
func (r request) run(p *Proxy) (block.Block, error) {
	b, err := p.scheme.Access(r.q)
	p.accesses.Add(1)
	obsAccesses.Inc()
	p.updateStash()
	return b, err
}

// updateStash refreshes the stash gauge from the scheme. Called only from
// the scheduler goroutine, right after an access — the one point where
// the scheme is quiescent and its stash well-defined.
func (p *Proxy) updateStash() {
	if sr, ok := p.scheme.(stashReporter); ok {
		p.stashDepth.Store(int64(sr.StashSize()))
	}
}

// checkpoint makes the current scheme state and all held writes durable,
// then releases them to the store — steps 2 and 3 of the Journal commit
// protocol.
func (p *Proxy) checkpoint() error {
	t0 := time.Now()
	state, err := p.scheme.(DurableScheme).MarshalState()
	if err != nil {
		return fmt.Errorf("proxy: marshaling scheme state: %w", err)
	}
	pending, seq := p.pipe.PendingSnapshot()
	if err := p.journal.Append(Checkpoint{State: state, Pending: pending}); err != nil {
		return fmt.Errorf("proxy: checkpoint: %w", err)
	}
	p.pipe.Release(seq)
	p.checkpoints.Add(1)
	obsCheckpoint.Since(t0)
	return nil
}

// poison marks the proxy (and its pipeline) permanently failed.
func (p *Proxy) poison(err error) {
	p.stickyMu.Lock()
	if p.sticky == nil {
		p.sticky = err
	}
	p.stickyMu.Unlock()
	p.pipe.poison(err)
}

// stickyErr returns the poisoning error, if any.
func (p *Proxy) stickyErr() error {
	p.stickyMu.Lock()
	defer p.stickyMu.Unlock()
	return p.sticky
}

// Access enqueues one logical access and blocks until the scheduler has
// executed it. Safe for any number of concurrent callers; requests are
// served in arrival order.
func (p *Proxy) Access(q workload.Query) (block.Block, error) {
	if q.Index < 0 || q.Index >= p.records {
		return nil, fmt.Errorf("proxy: index %d out of range [0,%d)", q.Index, p.records)
	}
	if q.Op == workload.Write && len(q.Data) != p.recordSize {
		return nil, fmt.Errorf("%w: got %d want %d", block.ErrSize, len(q.Data), p.recordSize)
	}
	if err := p.stickyErr(); err != nil {
		return nil, err
	}
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		return nil, ErrClosed
	}
	p.senders.Add(1)
	p.closeMu.RUnlock()
	defer p.senders.Done()

	req := request{q: q, resp: make(chan result, 1)}
	p.reqs <- req
	res := <-req.resp
	return res.b, res.err
}

// Read retrieves record i.
func (p *Proxy) Read(i int) (block.Block, error) {
	return p.Access(workload.Query{Index: i, Op: workload.Read})
}

// Write overwrites record i and returns the previous value.
func (p *Proxy) Write(i int, b block.Block) (block.Block, error) {
	return p.Access(workload.Query{Index: i, Op: workload.Write, Data: b})
}

// Records implements store.Accessor.
func (p *Proxy) Records() int { return p.records }

// RecordSize implements store.Accessor.
func (p *Proxy) RecordSize() int { return p.recordSize }

// AccessRecord implements store.Accessor — the serve loop's entry point.
func (p *Proxy) AccessRecord(index int, write bool, data block.Block) (block.Block, error) {
	q := workload.Query{Index: index, Op: workload.Read}
	if write {
		q.Op = workload.Write
		q.Data = data
	}
	return p.Access(q)
}

// Partitions reports a single-scheme proxy as one partition, so the serve
// loop's handshake advertises a partition count for every proxy-backed
// namespace (Partitioned overrides this with P).
func (p *Proxy) Partitions() int { return 1 }

// Accesses returns the number of scheme accesses executed so far.
func (p *Proxy) Accesses() int64 { return p.accesses.Load() }

// StashDepth returns the scheme's stash occupancy as of the last access
// (0 when the scheme exposes no stash). A stash that grows without bound
// under load is the canonical ORAM failure mode; this gauge is how an
// operator sees it coming.
func (p *Proxy) StashDepth() int { return int(p.stashDepth.Load()) }

// QueueDepth returns how many requests are waiting for the scheduler
// right now.
func (p *Proxy) QueueDepth() int { return len(p.reqs) }

// LoadDepth implements the serve loop's depth gauge (store's
// depthReporter): the stash occupancy, the proxy-backed namespace's most
// load-relevant depth.
func (p *Proxy) LoadDepth() uint64 { return uint64(p.StashDepth()) }

// Flush waits until every write the scheme has issued so far has landed on
// the backing store (a no-op without a Pipeline: writes were synchronous).
// It makes no claim about requests still queued or in flight — quiesce
// your own senders first, as after bulk setup or at the end of a test.
func (p *Proxy) Flush() error {
	if p.pipe != nil {
		return p.pipe.Flush()
	}
	return nil
}

// Close stops accepting requests, waits for the queued ones to finish, and
// drains the attached pipeline. Concurrent Access calls either complete or
// return ErrClosed. A journaled proxy writes one final checkpoint (empty
// pending set) after the pipeline drains, so a clean shutdown replays
// nothing on the next start, then closes the journal.
func (p *Proxy) Close() error {
	p.closeMu.Lock()
	already := p.closed
	p.closed = true
	p.closeMu.Unlock()
	if already {
		// Idempotent like Pipeline.Close and Durable.Close: the first
		// Close owns the final checkpoint; later calls just wait it out.
		<-p.schedDone
		return nil
	}
	p.senders.Wait() // every admitted request has been answered
	close(p.reqs)
	<-p.schedDone
	if p.pipe == nil {
		return nil
	}
	err := p.pipe.Close()
	if p.journal != nil {
		if err == nil && p.stickyErr() == nil {
			// Pipeline drained clean: record the quiesced state. The
			// scheduler has exited, so reading the scheme here is safe.
			if state, merr := p.scheme.(DurableScheme).MarshalState(); merr == nil {
				if aerr := p.journal.Append(Checkpoint{State: state}); aerr != nil && err == nil {
					err = aerr
				}
			} else {
				err = merr
			}
		}
		if cerr := p.journal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Epoch returns the journal's recovery epoch (0 for a non-durable proxy).
func (p *Proxy) Epoch() uint64 {
	if p.journal == nil {
		return 0
	}
	return p.journal.Epoch()
}

// Checkpoints returns how many durable checkpoints have been written since
// start (0 for a non-durable proxy).
func (p *Proxy) Checkpoints() int64 { return p.checkpoints.Load() }

// Session is one client's handle on a shared proxy. Sessions add no
// privacy state — that is the point: the trace must not depend on which
// session issued a request — but they meter per-client traffic and give
// each wire connection or goroutine an owned endpoint.
type Session struct {
	p        *Proxy
	accesses atomic.Int64
}

// NewSession returns a new client handle.
func (p *Proxy) NewSession() *Session { return &Session{p: p} }

// Access enqueues one access on behalf of this session.
func (s *Session) Access(q workload.Query) (block.Block, error) {
	b, err := s.p.Access(q)
	s.accesses.Add(1)
	return b, err
}

// Read retrieves record i.
func (s *Session) Read(i int) (block.Block, error) {
	return s.Access(workload.Query{Index: i, Op: workload.Read})
}

// Write overwrites record i and returns the previous value.
func (s *Session) Write(i int, b block.Block) (block.Block, error) {
	return s.Access(workload.Query{Index: i, Op: workload.Write, Data: b})
}

// Accesses returns how many accesses this session has issued.
func (s *Session) Accesses() int64 { return s.accesses.Load() }
