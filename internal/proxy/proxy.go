// Package proxy is the concurrent multi-client serving layer for the
// privacy schemes: N clients share one scheme instance (DP-RAM, BucketRAM,
// Path ORAM) through a trusted proxy that serializes scheme-state
// mutations while pipelining the storage round trips underneath.
//
// This is the deployment shape of CAOS (Ordean–Ryan–Galindo) and of every
// "oblivious cloud storage" system built on a stateful client: the
// scheme's stash and position map are one logical party, so a scheduler
// goroutine owns the scheme and drains a request queue; concurrency lives
// below (the Pipeline overlapping round trips over a store.Pool) and above
// (any number of sessions enqueueing requests), never inside the scheme.
//
// Obliviousness under concurrency is the design constraint everything here
// bends around: the proxy issues exactly one real scheme access per queued
// request, in arrival order, with NO same-address deduplication and no
// request reordering. Deduplicating two in-flight requests for the same
// logical record — the classic "optimization" — would make the physical
// trace length a function of logical-address collisions, leaking equality
// of concurrent requests to the storage server. The regression tests in
// oblivious_test.go pin this: the trace the backing store sees depends
// only on the number and arrival order of requests, never on which
// sessions issued them or whether their addresses collide.
package proxy

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dpstore/internal/block"
	"dpstore/internal/workload"
)

// Scheme is the stateful single-client privacy construction the proxy
// multiplexes: one logical access per call, not safe for concurrent use —
// exactly the contract of dpram.Client and pathoram.ORAM, both of which
// satisfy this interface unmodified.
type Scheme interface {
	// N returns the number of logical records.
	N() int
	// RecordSize returns the plaintext record size in bytes.
	RecordSize() int
	// Access performs one logical access and returns the record value
	// (previous value for writes).
	Access(q workload.Query) (block.Block, error)
}

// ErrClosed reports an access against a closed proxy.
var ErrClosed = errors.New("proxy: closed")

// Options configures a Proxy.
type Options struct {
	// Queue is the request queue capacity: how many client requests may
	// wait behind the scheduler before Access applies backpressure. Zero
	// selects 64.
	Queue int
	// Pipeline ties the write-behind stage's lifecycle to the proxy:
	// Close drains and closes it, Flush waits on it. If the scheme was
	// set up over a Pipeline, it MUST be passed here — otherwise Flush
	// is a silent no-op and Close leaks the writer goroutine with writes
	// possibly still in flight. Leave nil only when the scheme writes
	// synchronously to its store; the proxy is then strictly serialized
	// (each access's write lands before the next access's read is
	// issued), which is what the exact-trace obliviousness tests use.
	Pipeline *Pipeline
}

// request is one queued client access.
type request struct {
	q    workload.Query
	resp chan result
}

type result struct {
	b   block.Block
	err error
}

// Proxy serves one Scheme to any number of concurrent callers. It
// implements store.Accessor, so a daemon can host it as a proxy-backed
// namespace (see Serve / store.Namespaces.AttachAccessor).
type Proxy struct {
	scheme     Scheme
	pipe       *Pipeline
	records    int
	recordSize int

	reqs      chan request
	schedDone chan struct{}

	closeMu sync.RWMutex
	closed  bool
	senders sync.WaitGroup

	accesses atomic.Int64
}

// New starts a proxy serving scheme. The scheme must not be used directly
// once the proxy owns it — the scheduler goroutine is its only caller.
func New(scheme Scheme, opts Options) *Proxy {
	queue := opts.Queue
	if queue <= 0 {
		queue = 64
	}
	p := &Proxy{
		scheme:     scheme,
		pipe:       opts.Pipeline,
		records:    scheme.N(),
		recordSize: scheme.RecordSize(),
		reqs:       make(chan request, queue),
		schedDone:  make(chan struct{}),
	}
	go p.scheduler()
	return p
}

// scheduler owns the scheme: requests execute one at a time in arrival
// order. One queued request is exactly one scheme access — no dedup, no
// reordering, no batching of "equal" requests (see the package comment for
// why that would be a privacy bug, not an optimization).
func (p *Proxy) scheduler() {
	defer close(p.schedDone)
	for req := range p.reqs {
		b, err := p.scheme.Access(req.q)
		p.accesses.Add(1)
		req.resp <- result{b: b, err: err}
	}
}

// Access enqueues one logical access and blocks until the scheduler has
// executed it. Safe for any number of concurrent callers; requests are
// served in arrival order.
func (p *Proxy) Access(q workload.Query) (block.Block, error) {
	if q.Index < 0 || q.Index >= p.records {
		return nil, fmt.Errorf("proxy: index %d out of range [0,%d)", q.Index, p.records)
	}
	if q.Op == workload.Write && len(q.Data) != p.recordSize {
		return nil, fmt.Errorf("%w: got %d want %d", block.ErrSize, len(q.Data), p.recordSize)
	}
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		return nil, ErrClosed
	}
	p.senders.Add(1)
	p.closeMu.RUnlock()
	defer p.senders.Done()

	req := request{q: q, resp: make(chan result, 1)}
	p.reqs <- req
	res := <-req.resp
	return res.b, res.err
}

// Read retrieves record i.
func (p *Proxy) Read(i int) (block.Block, error) {
	return p.Access(workload.Query{Index: i, Op: workload.Read})
}

// Write overwrites record i and returns the previous value.
func (p *Proxy) Write(i int, b block.Block) (block.Block, error) {
	return p.Access(workload.Query{Index: i, Op: workload.Write, Data: b})
}

// Records implements store.Accessor.
func (p *Proxy) Records() int { return p.records }

// RecordSize implements store.Accessor.
func (p *Proxy) RecordSize() int { return p.recordSize }

// AccessRecord implements store.Accessor — the serve loop's entry point.
func (p *Proxy) AccessRecord(index int, write bool, data block.Block) (block.Block, error) {
	q := workload.Query{Index: index, Op: workload.Read}
	if write {
		q.Op = workload.Write
		q.Data = data
	}
	return p.Access(q)
}

// Accesses returns the number of scheme accesses executed so far.
func (p *Proxy) Accesses() int64 { return p.accesses.Load() }

// Flush waits until every write the scheme has issued so far has landed on
// the backing store (a no-op without a Pipeline: writes were synchronous).
// It makes no claim about requests still queued or in flight — quiesce
// your own senders first, as after bulk setup or at the end of a test.
func (p *Proxy) Flush() error {
	if p.pipe != nil {
		return p.pipe.Flush()
	}
	return nil
}

// Close stops accepting requests, waits for the queued ones to finish, and
// drains the attached pipeline. Concurrent Access calls either complete or
// return ErrClosed.
func (p *Proxy) Close() error {
	p.closeMu.Lock()
	already := p.closed
	p.closed = true
	p.closeMu.Unlock()
	if !already {
		p.senders.Wait() // every admitted request has been answered
		close(p.reqs)
	}
	<-p.schedDone
	if p.pipe != nil {
		return p.pipe.Close()
	}
	return nil
}

// Session is one client's handle on a shared proxy. Sessions add no
// privacy state — that is the point: the trace must not depend on which
// session issued a request — but they meter per-client traffic and give
// each wire connection or goroutine an owned endpoint.
type Session struct {
	p        *Proxy
	accesses atomic.Int64
}

// NewSession returns a new client handle.
func (p *Proxy) NewSession() *Session { return &Session{p: p} }

// Access enqueues one access on behalf of this session.
func (s *Session) Access(q workload.Query) (block.Block, error) {
	b, err := s.p.Access(q)
	s.accesses.Add(1)
	return b, err
}

// Read retrieves record i.
func (s *Session) Read(i int) (block.Block, error) {
	return s.Access(workload.Query{Index: i, Op: workload.Read})
}

// Write overwrites record i and returns the previous value.
func (s *Session) Write(i int, b block.Block) (block.Block, error) {
	return s.Access(workload.Query{Index: i, Op: workload.Write, Data: b})
}

// Accesses returns how many accesses this session has issued.
func (s *Session) Accesses() int64 { return s.accesses.Load() }
