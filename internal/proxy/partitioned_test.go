package proxy

// Partitioned obliviousness regressions. The claim partitioning makes
// (partitioned.go's doc) is exactly decomposable: the composed physical
// trace is the interleaving of P per-partition traces, each oblivious on
// its own, plus the partition index of every request — a data-independent
// function (u mod P) of the logical address. Four invariants pin it:
//
//  1. Client-identity independence survives partitioning: permuting WHICH
//     session issues each request leaves every per-partition transcript
//     bit-identical (the partitioned analogue of invariant 1 in
//     oblivious_test.go).
//  2. Workload-shape independence per partition: two workloads with the
//     SAME routing sequence — maximally colliding vs all-distinct within
//     a partition — produce identical per-request trace shapes there and
//     empty traces everywhere else. Cross-partition state sharing or
//     same-address dedup would break it.
//  3. Decomposition: each partition's transcript equals, byte for byte,
//     the transcript of an independent single-scheme proxy run over that
//     partition's local query subsequence. The adversary learns nothing
//     from the composition beyond the routing indices.
//  4. Resume independence: each partition checkpoints and resumes from
//     ITS OWN serialized state; data striped across partitions survives a
//     full marshal/resume cycle.

import (
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/trace"
	"dpstore/internal/workload"
)

// partSeed mirrors the daemon's per-partition seed mixing (partition 0
// reduces to the plain seed).
func partSeed(seed int64, i int) int64 {
	return int64(uint64(seed) ^ uint64(i)*0xbf58476d1ce4e5b9)
}

// tracedPartitioned builds a P-way partitioned deployment of the named
// scheme, every partition over its own trace-recorded in-memory store
// with its own key and coin stream, each proxy strictly serialized (exact
// trace comparison needs a deterministic operation order).
func tracedPartitioned(t *testing.T, kind string, parts, n, rs int, seed int64) (*Partitioned, []*trace.Recorder) {
	t.Helper()
	proxies := make([]*Proxy, parts)
	recs := make([]*trace.Recorder, parts)
	for i := range proxies {
		ni := store.ShardSlots(n, parts, i)
		proxies[i], recs[i] = tracedProxy(t, kind, ni, rs, partSeed(seed, i))
	}
	pt, err := NewPartitioned(proxies)
	if err != nil {
		t.Fatal(err)
	}
	return pt, recs
}

// TestPartitionedValidation: the constructor refuses shapes the routing
// rule cannot address.
func TestPartitionedValidation(t *testing.T) {
	if _, err := NewPartitioned(nil); err == nil {
		t.Fatal("empty partition list accepted")
	}
	mk := func(n, rs int) *Proxy {
		p, _ := tracedProxy(t, "dpram", n, rs, 1)
		return p
	}
	// 3 partitions of 5 records each: striping 15 over 3 needs exactly
	// (5,5,5), so equal sizes pass…
	if _, err := NewPartitioned([]*Proxy{mk(5, 16), mk(5, 16), mk(5, 16)}); err != nil {
		t.Fatal(err)
	}
	// …but (6,5,4) is not the stripe layout of 15 over 3.
	if _, err := NewPartitioned([]*Proxy{mk(6, 16), mk(5, 16), mk(4, 16)}); err == nil {
		t.Fatal("non-stripe slot split accepted")
	}
	if _, err := NewPartitioned([]*Proxy{mk(5, 16), mk(5, 32)}); err == nil {
		t.Fatal("mismatched record sizes accepted")
	}
}

// TestPartitionedRoutingAndData: logical addresses round-trip through the
// striping, and every access lands on (only) the owning partition's
// scheduler.
func TestPartitionedRoutingAndData(t *testing.T) {
	const parts, n, rs = 4, 64, 16
	pt, _ := tracedPartitioned(t, "dpram", parts, n, rs, 7)
	if pt.Records() != n || pt.RecordSize() != rs || pt.Partitions() != parts {
		t.Fatalf("shape %d × %d over %d partitions", pt.Records(), pt.RecordSize(), pt.Partitions())
	}
	for u := 0; u < n; u++ {
		if _, err := pt.Write(u, block.Pattern(uint64(1000+u), rs)); err != nil {
			t.Fatalf("write %d: %v", u, err)
		}
	}
	for u := 0; u < n; u++ {
		got, err := pt.Read(u)
		if err != nil {
			t.Fatalf("read %d: %v", u, err)
		}
		if !got.Equal(block.Pattern(uint64(1000+u), rs)) {
			t.Fatalf("record %d corrupted across the striping", u)
		}
	}
	// 2n accesses striped evenly: each partition executed exactly 2n/P.
	for i := 0; i < parts; i++ {
		if got := pt.Part(i).Accesses(); got != 2*n/parts {
			t.Fatalf("partition %d executed %d accesses, want %d", i, got, 2*n/parts)
		}
	}
	if _, err := pt.Read(n); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := pt.Read(-1); err == nil {
		t.Fatal("negative read accepted")
	}
}

// TestPartitionedTraceInvariantUnderClientPermutation: same requests,
// same global arrival order, different session attribution — every
// partition's adversary view must be byte-identical (invariant 1 at
// P=4, both schemes, two seeds).
func TestPartitionedTraceInvariantUnderClientPermutation(t *testing.T) {
	const parts, n, rs, count, clients = 4, 64, 16, 48, 4
	assignments := map[string]func(int) int{
		"round-robin": func(t int) int { return t % clients },
		"blocked":     func(t int) int { return t / (count / clients) },
		"reversed":    func(t int) int { return clients - 1 - t%clients },
	}
	for _, kind := range []string{"dpram", "pathoram"} {
		for _, seed := range []int64{1, 2} {
			reqs := fixedRequests(seed, n, rs, count)
			var baseline []string
			var baselineName string
			for name, assign := range assignments {
				pt, recs := tracedPartitioned(t, kind, parts, n, rs, seed)
				// Serialized issue order; the "session" is attribution
				// only, exactly as in the unpartitioned test — the
				// partitioned accessor has no per-session state to leak,
				// and this pins that it never grows any.
				for i, q := range reqs {
					_ = assign(i)
					if _, err := pt.Access(q); err != nil {
						t.Fatalf("%s seed %d %s: request %d: %v", kind, seed, name, i, err)
					}
				}
				keys := make([]string, parts)
				for i, rec := range recs {
					keys[i] = rec.Transcript().Key()
				}
				if baseline == nil {
					baseline, baselineName = keys, name
					continue
				}
				for i := range keys {
					if keys[i] != baseline[i] {
						t.Fatalf("%s seed %d: partition %d trace under %q differs from %q",
							kind, seed, i, name, baselineName)
					}
				}
			}
		}
	}
}

// TestPartitionedHotspotVsUniformSameRouting: two workloads with the SAME
// routing sequence (every request hits partition 0) but opposite
// collision structure — all colliding on record 0 vs all distinct local
// records — must produce identical per-request trace shapes on partition
// 0 and leave the other partitions' traces empty. This is the dedup
// catcher composed with routing: the trace may depend on u mod P, never
// on anything else about u.
func TestPartitionedHotspotVsUniformSameRouting(t *testing.T) {
	const parts, n, rs, count = 4, 64, 16, 32
	for _, kind := range []string{"dpram", "pathoram"} {
		for _, seed := range []int64{3, 4} {
			run := func(index func(int) int) []trace.Transcript {
				pt, recs := tracedPartitioned(t, kind, parts, n, rs, seed)
				for i := 0; i < count; i++ {
					q := workload.Query{Index: index(i), Op: workload.Read}
					if i%2 == 1 {
						q.Op = workload.Write
						q.Data = block.Pattern(uint64(i), rs)
					}
					if _, err := pt.Access(q); err != nil {
						t.Fatalf("%s seed %d: request %d: %v", kind, seed, i, err)
					}
				}
				for p := 1; p < parts; p++ {
					if qs := recs[p].Queries(); len(qs) != 0 {
						t.Fatalf("%s seed %d: partition %d served %d requests of a partition-0-only workload",
							kind, seed, p, len(qs))
					}
				}
				return recs[0].Queries()
			}
			hot := run(func(int) int { return 0 })                  // all collide on record 0
			uni := run(func(i int) int { return (i % 16) * parts }) // distinct locals, same partition
			if len(hot) != count || len(uni) != count {
				t.Fatalf("%s seed %d: recorded %d/%d request traces, want %d", kind, seed, len(hot), len(uni), count)
			}
			var hotOps, uniOps int
			for i := range hot {
				if hs, us := hot[i].Shape(), uni[i].Shape(); hs != us {
					t.Fatalf("%s seed %d: request %d shape %q (hot-spot) vs %q (uniform) on partition 0",
						kind, seed, i, hs, us)
				}
				hotOps += len(hot[i])
				uniOps += len(uni[i])
			}
			if hotOps != uniOps {
				t.Fatalf("%s seed %d: %d ops hot-spot vs %d uniform — dedup-style leak inside a partition",
					kind, seed, hotOps, uniOps)
			}
		}
	}
}

// TestPartitionedDecomposition: each partition's transcript is byte-equal
// to an independent single-scheme run over the same local subsequence.
// The composed deployment adds NOTHING to the adversary view beyond the
// routing indices — the leakage argument of partitioned.go, tested
// exactly.
func TestPartitionedDecomposition(t *testing.T) {
	const parts, n, rs, count = 4, 64, 16, 60
	for _, kind := range []string{"dpram", "pathoram"} {
		for _, seed := range []int64{5, 6} {
			reqs := fixedRequests(seed, n, rs, count)

			// Composed run.
			pt, recs := tracedPartitioned(t, kind, parts, n, rs, seed)
			for i, q := range reqs {
				if _, err := pt.Access(q); err != nil {
					t.Fatalf("%s seed %d: request %d: %v", kind, seed, i, err)
				}
			}

			// Per-partition local subsequences, exactly as the router
			// derived them.
			local := make([][]workload.Query, parts)
			for _, q := range reqs {
				lq := q
				lq.Index = q.Index / parts
				local[q.Index%parts] = append(local[q.Index%parts], lq)
			}

			// Independent single-scheme replays with the same per-partition
			// seeds over the same local shapes.
			for i := 0; i < parts; i++ {
				ni := store.ShardSlots(n, parts, i)
				solo, soloRec := tracedProxy(t, kind, ni, rs, partSeed(seed, i))
				for j, q := range local[i] {
					if _, err := solo.Access(q); err != nil {
						t.Fatalf("%s seed %d: solo partition %d request %d: %v", kind, seed, i, j, err)
					}
				}
				if got, want := recs[i].Transcript().Key(), soloRec.Transcript().Key(); got != want {
					t.Fatalf("%s seed %d: partition %d transcript diverges from an independent run — composition leaks more than the routing",
						kind, seed, i)
				}
			}
		}
	}
}

// TestPartitionedResume: every partition marshals and resumes from its
// own serialized state; the striped database survives the cycle intact.
func TestPartitionedResume(t *testing.T) {
	const parts, n, rs = 4, 32, 16
	servers := make([]*store.Mem, parts)
	schemes := make([]DurableScheme, parts)
	proxies := make([]*Proxy, parts)
	for i := range proxies {
		ni := store.ShardSlots(n, parts, i)
		db, err := block.NewDatabase(ni, rs)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := store.NewMem(ni, crypto.CiphertextSize(rs))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = mem
		c, err := dpram.Setup(db, mem, dpram.Options{
			Rand: rng.New(partSeed(11, i)),
			Key:  crypto.KeyFromSeed(uint64(partSeed(11, i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		schemes[i] = c
		proxies[i] = New(c, Options{})
	}
	pt, err := NewPartitioned(proxies)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		if _, err := pt.Write(u, block.Pattern(uint64(500+u), rs)); err != nil {
			t.Fatalf("write %d: %v", u, err)
		}
	}
	if err := pt.Close(); err != nil {
		t.Fatal(err)
	}

	// Marshal each partition's state and resume P fresh scheme instances
	// over the same physical arrays — the daemon's restart path in
	// miniature, one (state, window) pair per partition.
	resumed := make([]*Proxy, parts)
	for i := range resumed {
		state, err := schemes[i].MarshalState()
		if err != nil {
			t.Fatalf("partition %d marshal: %v", i, err)
		}
		c, err := dpram.Resume(servers[i], state, dpram.Options{Rand: rng.New(partSeed(12, i))})
		if err != nil {
			t.Fatalf("partition %d resume: %v", i, err)
		}
		resumed[i] = New(c, Options{})
	}
	pt2, err := NewPartitioned(resumed)
	if err != nil {
		t.Fatal(err)
	}
	defer pt2.Close() //nolint:errcheck
	for u := 0; u < n; u++ {
		got, err := pt2.Read(u)
		if err != nil {
			t.Fatalf("resumed read %d: %v", u, err)
		}
		if !got.Equal(block.Pattern(uint64(500+u), rs)) {
			t.Fatalf("record %d lost across the per-partition resume", u)
		}
	}
}

// TestPartitionedAggregates: the composed gauges sum their partitions.
func TestPartitionedAggregates(t *testing.T) {
	const parts, n, rs = 2, 16, 16
	pt, _ := tracedPartitioned(t, "dpram", parts, n, rs, 21)
	for u := 0; u < n; u++ {
		if _, err := pt.Read(u); err != nil {
			t.Fatal(err)
		}
	}
	var want int64
	for i := 0; i < parts; i++ {
		want += pt.Part(i).Accesses()
	}
	if got := pt.Accesses(); got != want || got != int64(n) {
		t.Fatalf("aggregate accesses %d, partition sum %d, want %d", got, want, n)
	}
	if pt.Epoch() != 0 || pt.Checkpoints() != 0 {
		t.Fatalf("ephemeral deployment reports epoch %d, %d checkpoints", pt.Epoch(), pt.Checkpoints())
	}
	if err := pt.Flush(); err != nil {
		t.Fatal(err)
	}
}
