package proxy_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"dpstore/internal/baseline/pathoram"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/proxy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/trace"
	"dpstore/internal/workload"
)

const (
	recN    = 64
	recSize = 24
)

// buildDurableProxy mirrors the daemon's -proxy -data flow: durable
// engine, journal, setup-or-recover, journaled proxy. Returns the proxy
// and the engine (so tests can close it to simulate the process dying).
func buildDurableProxy(t *testing.T, dir string, scheme string, seed int64) (*proxy.Proxy, *store.Durable) {
	t.Helper()
	var slots, physBS int
	ramOpts := dpram.Options{Rand: rng.New(seed), StashParam: 8}
	oramOpts := pathoram.Options{Rand: rng.New(seed)}
	switch scheme {
	case "dpram":
		slots, physBS = recN, dpram.ServerBlockSize(recSize, ramOpts)
	case "pathoram":
		slots, physBS = pathoram.TreeShape(recN, recSize, oramOpts)
	}
	backing, err := store.OpenOrCreateDurable(filepath.Join(dir, "blocks"), slots, physBS, store.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	journal, ck, err := proxy.OpenJournal(filepath.Join(dir, "proxy.journal"), 0)
	if err != nil {
		t.Fatal(err)
	}
	pipe := proxy.NewPipeline(backing)
	var ds proxy.DurableScheme
	if ck != nil {
		if err := proxy.ReplayPending(backing, ck); err != nil {
			t.Fatal(err)
		}
		switch scheme {
		case "dpram":
			ds, err = dpram.Resume(pipe, ck.State, ramOpts)
		case "pathoram":
			ds, err = pathoram.Resume(pipe, ck.State, oramOpts)
		}
		if err != nil {
			t.Fatal(err)
		}
	} else {
		db, derr := block.NewDatabase(recN, recSize)
		if derr != nil {
			t.Fatal(derr)
		}
		switch scheme {
		case "dpram":
			ds, err = dpram.Setup(db, pipe, ramOpts)
		case "pathoram":
			ds, err = pathoram.Setup(db, pipe, oramOpts)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := pipe.Flush(); err != nil {
			t.Fatal(err)
		}
		state, serr := ds.MarshalState()
		if serr != nil {
			t.Fatal(serr)
		}
		if err := journal.Append(proxy.Checkpoint{State: state}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := proxy.NewDurable(ds, proxy.Options{Pipeline: pipe}, journal)
	if err != nil {
		t.Fatal(err)
	}
	return p, backing
}

func recValue(tag string, i int) block.Block {
	b := block.New(recSize)
	copy(b, fmt.Sprintf("%s-%04d", tag, i))
	return b
}

// TestDurableProxyRecovery: acked writes through a journaled proxy are
// readable after an unclean restart (no proxy.Close, no final checkpoint)
// for both schemes, and the recovery epoch advances.
func TestDurableProxyRecovery(t *testing.T) {
	for _, scheme := range []string{"dpram", "pathoram"} {
		t.Run(scheme, func(t *testing.T) {
			dir := t.TempDir()
			p, backing := buildDurableProxy(t, dir, scheme, 1)
			if p.Epoch() != 1 {
				t.Fatalf("first epoch = %d", p.Epoch())
			}
			want := make(map[int]block.Block)
			for q := 0; q < 40; q++ {
				i := (q * 13) % recN
				v := recValue("gen1", q)
				if _, err := p.Write(i, v); err != nil {
					t.Fatal(err)
				}
				want[i] = v
			}
			if p.Checkpoints() == 0 {
				t.Fatal("journaled proxy wrote no checkpoints")
			}
			// Simulated crash: quiesce the pipeline's in-flight I/O so the
			// two engine incarnations don't race on the files (an artifact
			// of crashing in-process; the SIGKILL integration test covers
			// the real overlap), then abandon the proxy WITHOUT Close — no
			// final checkpoint, no clean WAL truncation.
			if err := p.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := backing.Close(); err != nil {
				t.Fatal(err)
			}

			p2, backing2 := buildDurableProxy(t, dir, scheme, 2)
			defer backing2.Close()
			if p2.Epoch() != 2 {
				t.Fatalf("recovered epoch = %d", p2.Epoch())
			}
			for i, v := range want {
				got, err := p2.Read(i)
				if err != nil {
					t.Fatalf("read %d after recovery: %v", i, err)
				}
				if !bytes.Equal(got, v) {
					t.Fatalf("record %d lost across restart: got %q want %q", i, got, v)
				}
			}
			// Never-written records are still zero.
			got, err := p2.Read(1) // 13k mod 64 is never 1 (13 invertible mod 64, q<40... 1*13^-1 mod 64 = 5*1? check: 13*5=65≡1, so q=5 writes i=1)
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := want[1]; ok {
				if !bytes.Equal(got, v) {
					t.Fatalf("record 1: got %q want %q", got, v)
				}
			} else if !bytes.Equal(got, block.New(recSize)) {
				t.Fatalf("unwritten record 1 is %q", got)
			}
			// The recovered proxy keeps serving: write, crash again, reread.
			v := recValue("gen2", 0)
			if _, err := p2.Write(7, v); err != nil {
				t.Fatal(err)
			}
			if err := p2.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := backing2.Close(); err != nil {
				t.Fatal(err)
			}
			p3, backing3 := buildDurableProxy(t, dir, scheme, 3)
			defer backing3.Close()
			got, err = p3.Read(7)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, v) {
				t.Fatalf("second-generation write lost: got %q want %q", got, v)
			}
			// Quiesce before the deferred engine close: even a read issues
			// scheme writes (overwrite phase / eviction) through the
			// write-behind pipeline.
			if err := p3.Flush(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableProxyCleanShutdown: Close writes the final checkpoint; the
// next generation recovers with an empty pending set and full data.
func TestDurableProxyCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	p, backing := buildDurableProxy(t, dir, "dpram", 1)
	v := recValue("clean", 3)
	if _, err := p.Write(3, v); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := backing.Close(); err != nil {
		t.Fatal(err)
	}
	p2, backing2 := buildDurableProxy(t, dir, "dpram", 2)
	defer backing2.Close()
	got, err := p2.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatalf("clean shutdown lost data: got %q want %q", got, v)
	}
}

// --- recovery obliviousness regression ---------------------------------------

// workloadQueries is the fixed workload both runs execute: a deliberately
// skewed mix (hot record, collisions, writes) — the kind of pattern that
// exposes schedulers or recovery paths whose trace depends on data.
func workloadQueries() []workload.Query {
	qs := make([]workload.Query, 0, 32)
	for q := 0; q < 32; q++ {
		switch {
		case q%4 == 0:
			qs = append(qs, workload.Query{Index: 5, Op: workload.Read}) // hot spot
		case q%4 == 1:
			qs = append(qs, workload.Query{Index: (q * 11) % recN, Op: workload.Write, Data: recValue("w", q)})
		default:
			qs = append(qs, workload.Query{Index: (q * 3) % recN, Op: workload.Read})
		}
	}
	return qs
}

// runShapes executes the workload against a scheme over a trace recorder,
// optionally checkpoint+restarting (restore into a fresh client, fresh
// coins) after `split` queries. It returns the per-query trace shapes.
func runShapes(t *testing.T, scheme string, split int) []string {
	t.Helper()
	var slots, physBS int
	ramOpts := dpram.Options{Rand: rng.New(7), StashParam: 8}
	oramOpts := pathoram.Options{Rand: rng.New(7)}
	switch scheme {
	case "dpram":
		slots, physBS = recN, dpram.ServerBlockSize(recSize, ramOpts)
	case "pathoram":
		slots, physBS = pathoram.TreeShape(recN, recSize, oramOpts)
	}
	mem, err := store.NewMem(slots, physBS)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(mem)
	db, err := block.NewDatabase(recN, recSize)
	if err != nil {
		t.Fatal(err)
	}
	var cur proxy.DurableScheme
	switch scheme {
	case "dpram":
		cur, err = dpram.Setup(db, rec, ramOpts)
	case "pathoram":
		cur, err = pathoram.Setup(db, rec, oramOpts)
	}
	if err != nil {
		t.Fatal(err)
	}
	qs := workloadQueries()
	for qi, q := range qs {
		if qi == split {
			// Checkpoint + "restart": marshal, then resume into a brand-new
			// client over the same recorded server with FRESH coins (seed
			// 99) — exactly what a recovering daemon does. The resumed
			// client's trace shape must be indistinguishable from the
			// uninterrupted run's.
			state, merr := cur.MarshalState()
			if merr != nil {
				t.Fatal(merr)
			}
			switch scheme {
			case "dpram":
				r := ramOpts
				r.Rand = rng.New(99)
				cur, err = dpram.Resume(rec, state, r)
			case "pathoram":
				o := oramOpts
				o.Rand = rng.New(99)
				cur, err = pathoram.Resume(rec, state, o)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		rec.Mark()
		if _, err := cur.Access(q); err != nil {
			t.Fatal(err)
		}
	}
	queries := rec.Queries()
	shapes := make([]string, len(queries))
	for i, q := range queries {
		shapes[i] = q.Shape()
	}
	return shapes
}

// TestRecoveryShapeInvariance: the per-query trace shapes of a workload
// resumed after checkpoint+restart are IDENTICAL to the shapes of the same
// workload run uninterrupted, for DP-RAM and Path ORAM, at several restart
// points. Recovery must not leak through the access pattern: a resume that
// issued extra reads, replayed writes inside the request stream, or
// shortened an access would show up here as a shape divergence.
func TestRecoveryShapeInvariance(t *testing.T) {
	for _, scheme := range []string{"dpram", "pathoram"} {
		t.Run(scheme, func(t *testing.T) {
			baseline := runShapes(t, scheme, -1) // uninterrupted
			for _, split := range []int{1, 16, 31} {
				resumed := runShapes(t, scheme, split)
				if len(resumed) != len(baseline) {
					t.Fatalf("split %d: %d queries recorded, want %d", split, len(resumed), len(baseline))
				}
				for i := range baseline {
					if resumed[i] != baseline[i] {
						t.Fatalf("split %d query %d: resumed shape %q != uninterrupted %q (recovery leaks via access pattern)",
							split, i, resumed[i], baseline[i])
					}
				}
			}
		})
	}
}
