package proxy

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"dpstore/internal/block"
	"dpstore/internal/wire"
)

// Client is the wire-protocol client for a proxy-backed namespace: logical
// record reads and writes, one round trip each, with the physical access
// pattern handled entirely server-side. Requests on one Client are
// serialized; open one Client per concurrent session (each is one
// connection, and the daemon serves connections concurrently).
type Client struct {
	mu         sync.Mutex
	conn       net.Conn
	r          *bufio.Reader
	w          *bufio.Writer
	records    int
	recordSize int
	epoch      uint64
	partitions int
	roundTrips int64
}

// Dial connects to a proxy daemon at addr and performs the info handshake
// against its default namespace.
func Dial(addr string) (*Client, error) {
	return dial(addr, "")
}

// DialNamespace connects and opens the named proxy-backed namespace on a
// multi-tenant daemon. The name must identify an attached proxy (the
// daemon's open-to-create factory only builds block namespaces, which
// this client cannot use): against a factory-equipped daemon a missing
// or mistyped name is created as a block store and every access then
// fails with "namespace is block-backed" — the handshake alone cannot
// tell the two tenant kinds apart.
func DialNamespace(addr, name string) (*Client, error) {
	return dial(addr, name)
}

func dial(addr, name string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: dialing %s: %w", addr, err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	req := wire.Frame{Type: wire.MsgInfoReq}
	want := wire.MsgInfoResp
	if name != "" {
		req, err = wire.EncodeOpenReq(wire.OpenReq{Name: name})
		if err != nil {
			conn.Close()
			return nil, err
		}
		want = wire.MsgOpenResp
	}
	resp, err := c.roundTrip(req, want)
	if err != nil {
		conn.Close()
		return nil, err
	}
	info, err := wire.DecodeInfo(resp.Payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	// A hostile daemon must not hand us a shape that breaks the response
	// validation below (or a later caller's indexing).
	if info.Size == 0 || info.BlockSize == 0 || info.Size > uint64(int(^uint(0)>>1)) {
		conn.Close()
		return nil, fmt.Errorf("proxy: server reported invalid shape (%d records × %d B)", info.Size, info.BlockSize)
	}
	c.records, c.recordSize, c.epoch = int(info.Size), int(info.BlockSize), info.Epoch
	c.partitions = int(info.Partitions)
	return c, nil
}

// Epoch returns the recovery epoch the daemon reported in the handshake
// (0 for a non-durable daemon). A client comparing epochs across
// connections detects daemon restarts — and therefore recoveries.
func (c *Client) Epoch() uint64 { return c.epoch }

// Partitions returns the scheme-partition count the daemon reported in
// the handshake (1 for an unpartitioned proxy, 0 for a pre-partition
// daemon making no claim). Purely informational for clients — routing is
// entirely server-side.
func (c *Client) Partitions() int { return c.partitions }

func (c *Client) roundTrip(req wire.Frame, want byte) (wire.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteFrame(c.w, req); err != nil {
		return wire.Frame{}, err
	}
	if err := c.w.Flush(); err != nil {
		return wire.Frame{}, fmt.Errorf("proxy: flushing request: %w", err)
	}
	c.roundTrips++
	resp, err := wire.ReadFrame(c.r)
	if err != nil {
		return wire.Frame{}, fmt.Errorf("proxy: reading response: %w", err)
	}
	if err := wire.AsError(resp, want); err != nil {
		return wire.Frame{}, err
	}
	return resp, nil
}

// access runs one logical access round trip and validates the returned
// record.
func (c *Client) access(req wire.AccessReq) (block.Block, error) {
	resp, err := c.roundTrip(wire.EncodeAccessReq(req), wire.MsgAccessResp)
	if err != nil {
		return nil, err
	}
	if len(resp.Payload) != c.recordSize {
		return nil, fmt.Errorf("proxy: server returned a %d B record, want %d", len(resp.Payload), c.recordSize)
	}
	return block.Block(resp.Payload).Copy(), nil
}

// Read retrieves record i: one round trip.
func (c *Client) Read(i int) (block.Block, error) {
	if i < 0 || i >= c.records {
		return nil, fmt.Errorf("proxy: index %d out of range [0,%d)", i, c.records)
	}
	return c.access(wire.AccessReq{Index: uint64(i)})
}

// Write overwrites record i and returns the previous value: one round
// trip.
func (c *Client) Write(i int, b block.Block) (block.Block, error) {
	if i < 0 || i >= c.records {
		return nil, fmt.Errorf("proxy: index %d out of range [0,%d)", i, c.records)
	}
	if len(b) != c.recordSize {
		return nil, fmt.Errorf("%w: got %d want %d", block.ErrSize, len(b), c.recordSize)
	}
	return c.access(wire.AccessReq{Write: true, Index: uint64(i), Data: b})
}

// Records returns the logical record count.
func (c *Client) Records() int { return c.records }

// RecordSize returns the logical record size in bytes.
func (c *Client) RecordSize() int { return c.recordSize }

// RoundTrips returns the request/response exchanges performed (including
// the handshake).
func (c *Client) RoundTrips() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrips
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
