package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10, 1025: 10}
	for n, want := range cases {
		if got := FloorLog2(n); got != want {
			t.Errorf("FloorLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLogIdentities(t *testing.T) {
	f := func(x uint16) bool {
		n := int(x)%100000 + 1
		c, fl := CeilLog2(n), FloorLog2(n)
		if c < fl || c > fl+1 {
			return false
		}
		if IsPow2(n) && c != fl {
			return false
		}
		return 1<<uint(c) >= n && 1<<uint(fl) <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 12, 1<<20 + 1} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestLnBinom(t *testing.T) {
	// C(10,3) = 120
	got := math.Exp(LnBinom(10, 3))
	if math.Abs(got-120) > 1e-6 {
		t.Fatalf("exp(LnBinom(10,3)) = %v, want 120", got)
	}
	if !math.IsInf(LnBinom(5, 7), -1) {
		t.Fatal("LnBinom out of range should be -Inf")
	}
	if !math.IsInf(LnBinom(5, -1), -1) {
		t.Fatal("LnBinom negative k should be -Inf")
	}
}

func TestChernoffMonotone(t *testing.T) {
	mu := 10.0
	prev := 1.0
	for _, tt := range []float64{10, 12, 15, 20, 30, 50} {
		b := ChernoffUpperTail(mu, tt)
		if b > prev+1e-12 {
			t.Fatalf("Chernoff bound not monotone at t=%v: %v > %v", tt, b, prev)
		}
		if b < 0 || b > 1 {
			t.Fatalf("Chernoff bound %v outside [0,1]", b)
		}
		prev = b
	}
	if ChernoffUpperTail(10, 5) != 1 {
		t.Fatal("vacuous region should return 1")
	}
}

func TestChernoffEMuMatchesGeneral(t *testing.T) {
	// At t = e·µ the general form reduces to e^{-µ}.
	mu := 7.0
	general := ChernoffUpperTail(mu, math.E*mu)
	if math.Abs(general-ChernoffEMu(mu))/ChernoffEMu(mu) > 1e-9 {
		t.Fatalf("general %v vs specialized %v", general, ChernoffEMu(mu))
	}
}

func TestChernoffRelative(t *testing.T) {
	if ChernoffRelative(100, 0) != 1 {
		t.Fatal("δ=0 should be vacuous")
	}
	b := ChernoffRelative(100, 1)
	want := math.Exp(-100.0 / 3)
	if math.Abs(b-want)/want > 1e-9 {
		t.Fatalf("ChernoffRelative(100,1) = %v, want %v", b, want)
	}
}

func TestBetaClosedFormSatisfiesRecurrence(t *testing.T) {
	// Lemma 7.3: the closed form must satisfy β_{i+1} = (e/n)·β_i²·2^{2(i+1)}.
	n := float64(1 << 20)
	for i := 0; i < 5; i++ {
		direct := Beta(n, i+1)
		rec := BetaRecurrence(n, i, Beta(n, i))
		if direct <= 0 {
			break
		}
		if math.Abs(direct-rec)/direct > 1e-9 {
			t.Fatalf("level %d: closed form %v vs recurrence %v", i+1, direct, rec)
		}
	}
}

func TestBetaBaseCase(t *testing.T) {
	// β_0 = (n/e)·(2/3)^4·(1/2)^4 = n/(e·3^4·...)? Verify against the
	// formula directly: (2/3)^(2^2)·(1/2)^(2·2) = (2/3)^4/16.
	n := 1000.0
	want := n / math.E * math.Pow(2.0/3.0, 4) / 16
	if math.Abs(Beta(n, 0)-want)/want > 1e-12 {
		t.Fatalf("Beta(n,0) = %v, want %v", Beta(n, 0), want)
	}
}

func TestBetaDecreasesDoublyExponentially(t *testing.T) {
	n := float64(1 << 30)
	prev := Beta(n, 0)
	for i := 1; i < 6; i++ {
		cur := Beta(n, i)
		if cur >= prev {
			t.Fatalf("β not decreasing at level %d: %v >= %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestBetaCutoffIsLogLog(t *testing.T) {
	// i⋆ = Θ(log log n): it should grow very slowly with n.
	phi := 64.0
	small := BetaCutoff(1<<16, phi)
	large := BetaCutoff(1<<30, phi)
	if small < 0 || large < 0 {
		t.Fatalf("cutoffs negative: %d %d", small, large)
	}
	if large < small {
		t.Fatalf("cutoff not monotone in n: %d < %d", large, small)
	}
	if large > small+3 {
		t.Fatalf("cutoff grew too fast (%d → %d); should be Θ(log log n)", small, large)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestCheckProb(t *testing.T) {
	if err := CheckProb("p", 0.5); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if err := CheckProb("p", bad); err == nil {
			t.Fatalf("CheckProb accepted %v", bad)
		}
	}
}

func TestLogLog2(t *testing.T) {
	if LogLog2(2) != 1 {
		t.Fatal("LogLog2 floor broken")
	}
	if v := LogLog2(1 << 16); math.Abs(v-4) > 1e-12 {
		t.Fatalf("LogLog2(2^16) = %v, want 4", v)
	}
}

func TestHarmonicApprox(t *testing.T) {
	// H_1000 ≈ 7.485
	if v := HarmonicApprox(1000); math.Abs(v-7.485) > 0.01 {
		t.Fatalf("HarmonicApprox(1000) = %v", v)
	}
}
