// Package mathx holds the small amount of analytic machinery the paper's
// theorems are stated in: logarithm helpers, the Chernoff tail of Theorem
// A.2, and the β_i recurrence of Lemma 7.3 that drives the super-root
// analysis of the oblivious two-choice mapping.
package mathx

import (
	"fmt"
	"math"
)

// Log2 returns log base 2 of x.
func Log2(x float64) float64 { return math.Log2(x) }

// CeilLog2 returns ⌈log2 n⌉ for n ≥ 1, and 0 for n ≤ 1.
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// FloorLog2 returns ⌊log2 n⌋ for n ≥ 1. It panics for n < 1.
func FloorLog2(n int) int {
	if n < 1 {
		panic("mathx: FloorLog2 of non-positive value")
	}
	k := -1
	for v := n; v > 0; v >>= 1 {
		k++
	}
	return k
}

// NextPow2 returns the least power of two ≥ n (n ≥ 1).
func NextPow2(n int) int {
	if n < 1 {
		panic("mathx: NextPow2 of non-positive value")
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// LogLog2 returns log2(log2(n)) for n > 2, and a floor of 1 otherwise. It is
// the s(n) = Θ(log log n) scale of Section 7.
func LogLog2(n int) float64 {
	if n <= 2 {
		return 1
	}
	return math.Log2(math.Log2(float64(n)))
}

// LnFact returns ln(n!) via math.Lgamma.
func LnFact(n int) float64 {
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// LnBinom returns ln(C(n, k)). It returns -Inf when the coefficient is zero
// (k < 0 or k > n).
func LnBinom(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LnFact(n) - LnFact(k) - LnFact(n-k)
}

// ChernoffUpperTail bounds Pr[Σ X_i ≥ t] for the sum of n independent
// Bernoulli(p) variables with mean µ = np, using the form of Theorem A.2:
//
//	Pr[Σ X_i ≥ t] ≤ (µ/t)^t · e^(t−µ)   for t ≥ µ.
//
// For t < µ the bound is vacuous and 1 is returned.
func ChernoffUpperTail(mu, t float64) float64 {
	if t <= mu {
		return 1
	}
	// Compute in log space for stability.
	ln := t*math.Log(mu/t) + (t - mu)
	return math.Exp(ln)
}

// ChernoffEMu is the specialization Pr[Σ X_i ≥ e·µ] ≤ e^(−µ) of Theorem A.2.
func ChernoffEMu(mu float64) float64 { return math.Exp(-mu) }

// ChernoffRelative bounds Pr[X > (1+δ)µ] ≤ exp(−µδ²/(2+δ)) for δ > 0, the
// form used in Lemma D.1's stash-size analysis.
func ChernoffRelative(mu, delta float64) float64 {
	if delta <= 0 {
		return 1
	}
	return math.Exp(-mu * delta * delta / (2 + delta))
}

// Beta returns the β_i value of Lemma 7.3,
//
//	β_i = (n/e) · (2/3)^(2^(i+2)) · (1/2)^(2(i+2))   — via the closed form,
//
// which satisfies β_0 = n/(e·3^4)·(16/16)… and β_{i+1} = (e/n)·β_i²·2^(2(i+1)).
// The closed form printed in Lemma 7.3 is
//
//	β_i = (n/e) · (2/3)^(2^(i+2)) · (1/2)^(2(i+2)).
func Beta(n float64, i int) float64 {
	if i < 0 {
		panic("mathx: Beta with negative level")
	}
	exp2 := math.Pow(2, float64(i+2)) // 2^(i+2)
	return n / math.E * math.Pow(2.0/3.0, exp2) * math.Pow(0.5, 2*float64(i+2))
}

// BetaRecurrence computes β_{i+1} from β_i via the recurrence
// β_{i+1} = (e/n)·β_i²·2^(2(i+1)) used in the proof of Theorem 7.2. It is
// exported so tests can confirm the closed form of Lemma 7.3 satisfies it.
func BetaRecurrence(n float64, i int, betaI float64) float64 {
	return math.E / n * betaI * betaI * math.Pow(2, 2*float64(i+1))
}

// BetaCutoff returns the largest level i⋆ with Beta(n, i⋆) ≥ phi, i.e. the
// i⋆ = Θ(log log n) threshold from the proof of Theorem 7.2. It returns -1
// when even β_0 < phi.
func BetaCutoff(n, phi float64) int {
	if Beta(n, 0) < phi {
		return -1
	}
	i := 0
	for Beta(n, i+1) >= phi {
		i++
		if i > 64 { // β decays doubly exponentially; this is unreachable
			break
		}
	}
	return i
}

// HarmonicApprox returns H_n ≈ ln n + γ, used by Zipf workload diagnostics.
func HarmonicApprox(n int) float64 {
	const gamma = 0.5772156649015329
	return math.Log(float64(n)) + gamma
}

// Clamp returns x clamped into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// CheckProb panics unless p ∈ [0, 1]; used to validate construction
// parameters at setup time.
func CheckProb(name string, p float64) error {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("mathx: %s = %v outside [0,1]", name, p)
	}
	return nil
}
