// Package costmodel turns the block-level costs the theorems speak about
// (blocks moved, round trips, server blocks touched) into deployment-level
// estimates (per-query latency, per-server throughput) for parameterized
// environments.
//
// The paper's introduction motivates the whole question with production
// concerns: "for large-scale storage infrastructure with highly frequent
// access requests, the degradation in response time and the exorbitant
// increase in resource costs incurred by either ORAM or PIR prevent their
// usage." This package is the quantitative version of that sentence: it
// shows, under explicit network/CPU assumptions, why Θ(n) server work
// (PIR) and Θ(log n) round trips (recursive ORAM) are disqualifying while
// the DP constructions stay within small factors of plaintext.
package costmodel

import (
	"fmt"
	"time"
)

// Deployment describes one client↔server environment.
type Deployment struct {
	// Name labels the preset in tables.
	Name string
	// RTT is the network round-trip time.
	RTT time.Duration
	// BandwidthBps is the usable link bandwidth in bytes/second.
	BandwidthBps float64
	// ServerNsPerBlock is the server-side cost of touching one block
	// (read + memcpy + checksum-ish), in nanoseconds.
	ServerNsPerBlock float64
}

// Validate checks the deployment parameters.
func (d Deployment) Validate() error {
	if d.RTT < 0 {
		return fmt.Errorf("costmodel: negative RTT %v", d.RTT)
	}
	if d.BandwidthBps <= 0 {
		return fmt.Errorf("costmodel: bandwidth %v must be positive", d.BandwidthBps)
	}
	if d.ServerNsPerBlock < 0 {
		return fmt.Errorf("costmodel: negative per-block cost %v", d.ServerNsPerBlock)
	}
	return nil
}

// Standard presets used by experiment E14.
var (
	// LAN: same-rack clients, 10 GbE.
	LAN = Deployment{Name: "LAN", RTT: 200 * time.Microsecond, BandwidthBps: 1.25e9, ServerNsPerBlock: 150}
	// WAN: cross-region clients, 100 Mbps.
	WAN = Deployment{Name: "WAN", RTT: 40 * time.Millisecond, BandwidthBps: 1.25e7, ServerNsPerBlock: 150}
	// Mobile: last-mile clients, 20 Mbps, high RTT.
	Mobile = Deployment{Name: "mobile", RTT: 80 * time.Millisecond, BandwidthBps: 2.5e6, ServerNsPerBlock: 150}
)

// SchemeCost is the per-query cost profile of a storage scheme, in the
// units the experiments measure.
type SchemeCost struct {
	// Name labels the scheme.
	Name string
	// BlocksMoved is the client↔server transfer volume per query, in blocks.
	BlocksMoved float64
	// RoundTrips is the number of serialized network round trips per query.
	RoundTrips float64
	// ServerBlocksTouched is the number of blocks the server must process
	// per query (≥ BlocksMoved for PIR-style schemes that compute over the
	// whole database but reply with O(1) blocks).
	ServerBlocksTouched float64
	// BlockBytes is the wire size of one block.
	BlockBytes int
}

// Latency estimates the per-query latency: serialized round trips, wire
// transfer, and server processing.
func (d Deployment) Latency(c SchemeCost) time.Duration {
	wire := time.Duration(c.BlocksMoved * float64(c.BlockBytes) / d.BandwidthBps * 1e9)
	server := time.Duration(c.ServerBlocksTouched * d.ServerNsPerBlock)
	return time.Duration(c.RoundTrips)*d.RTT + wire + server
}

// ServerThroughput estimates queries/second one server core sustains,
// bounded by the tighter of CPU (blocks touched) and egress bandwidth.
func (d Deployment) ServerThroughput(c SchemeCost) float64 {
	cpuPerQuery := c.ServerBlocksTouched * d.ServerNsPerBlock / 1e9 // seconds
	wirePerQuery := c.BlocksMoved * float64(c.BlockBytes) / d.BandwidthBps
	per := cpuPerQuery
	if wirePerQuery > per {
		per = wirePerQuery
	}
	if per <= 0 {
		return 0
	}
	return 1 / per
}

// Slowdown returns the latency multiple of c over a plaintext single-block
// access in the same deployment.
func (d Deployment) Slowdown(c SchemeCost) float64 {
	plain := SchemeCost{
		BlocksMoved:         1,
		RoundTrips:          1,
		ServerBlocksTouched: 1,
		BlockBytes:          c.BlockBytes,
	}
	base := d.Latency(plain)
	if base <= 0 {
		return 0
	}
	return float64(d.Latency(c)) / float64(base)
}
