package costmodel

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	for _, d := range []Deployment{LAN, WAN, Mobile} {
		if err := d.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", d.Name, err)
		}
	}
	bad := []Deployment{
		{RTT: -time.Second, BandwidthBps: 1},
		{BandwidthBps: 0},
		{BandwidthBps: 1, ServerNsPerBlock: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad deployment %d accepted", i)
		}
	}
}

func TestLatencyComposition(t *testing.T) {
	d := Deployment{RTT: 10 * time.Millisecond, BandwidthBps: 1e6, ServerNsPerBlock: 1000}
	c := SchemeCost{BlocksMoved: 100, RoundTrips: 2, ServerBlocksTouched: 100, BlockBytes: 1000}
	// 2 RTTs = 20ms; wire = 100·1000/1e6 s = 100ms; server = 100·1µs = 0.1ms.
	got := d.Latency(c)
	want := 20*time.Millisecond + 100*time.Millisecond + 100*time.Microsecond
	if got != want {
		t.Fatalf("latency = %v, want %v", got, want)
	}
}

func TestLatencyMonotonicity(t *testing.T) {
	base := SchemeCost{BlocksMoved: 3, RoundTrips: 2, ServerBlocksTouched: 3, BlockBytes: 64}
	for _, d := range []Deployment{LAN, WAN, Mobile} {
		l0 := d.Latency(base)
		more := base
		more.BlocksMoved *= 10
		more.ServerBlocksTouched *= 10
		if d.Latency(more) <= l0 {
			t.Fatalf("%s: latency not monotone in blocks", d.Name)
		}
		rt := base
		rt.RoundTrips = 10
		if d.Latency(rt) <= l0 {
			t.Fatalf("%s: latency not monotone in round trips", d.Name)
		}
	}
}

func TestThroughputBounds(t *testing.T) {
	// PIR-shaped cost (touch everything, ship one block) must be CPU
	// bound; ORAM-shaped cost (ship many blocks) must be wire bound on a
	// slow link.
	slow := Deployment{RTT: time.Millisecond, BandwidthBps: 1e6, ServerNsPerBlock: 100}
	pir := SchemeCost{BlocksMoved: 1, RoundTrips: 1, ServerBlocksTouched: 1e6, BlockBytes: 64}
	oram := SchemeCost{BlocksMoved: 100, RoundTrips: 2, ServerBlocksTouched: 100, BlockBytes: 64}
	tpPIR := slow.ServerThroughput(pir)
	tpORAM := slow.ServerThroughput(oram)
	if tpPIR >= tpORAM {
		t.Fatalf("PIR throughput %v should be far below ORAM %v on this deployment", tpPIR, tpORAM)
	}
	// CPU bound check: 1e6 blocks × 100ns = 0.1s per query → 10 qps.
	if tpPIR < 9 || tpPIR > 11 {
		t.Fatalf("PIR throughput = %v, want ≈10", tpPIR)
	}
}

func TestSlowdownPlainIsOne(t *testing.T) {
	c := SchemeCost{BlocksMoved: 1, RoundTrips: 1, ServerBlocksTouched: 1, BlockBytes: 64}
	for _, d := range []Deployment{LAN, WAN} {
		if s := d.Slowdown(c); s < 0.999 || s > 1.001 {
			t.Fatalf("%s: plaintext slowdown = %v, want 1", d.Name, s)
		}
	}
}

func TestSlowdownOrdersSchemes(t *testing.T) {
	// The paper's narrative must come out of the model: DP-RAM ≪ ORAM ≪ PIR
	// in slowdown on every preset, with DP-RAM within a small factor of 1.
	const n = 1 << 20
	const bs = 64
	dpram := SchemeCost{Name: "dpram", BlocksMoved: 3, RoundTrips: 2, ServerBlocksTouched: 3, BlockBytes: bs}
	oram := SchemeCost{Name: "oram", BlocksMoved: 168, RoundTrips: 2, ServerBlocksTouched: 168, BlockBytes: bs}
	pir := SchemeCost{Name: "pir", BlocksMoved: float64(n), RoundTrips: 1, ServerBlocksTouched: float64(n), BlockBytes: bs}
	for _, d := range []Deployment{LAN, WAN, Mobile} {
		sd, so, sp := d.Slowdown(dpram), d.Slowdown(oram), d.Slowdown(pir)
		if !(sd < so && so < sp) {
			t.Fatalf("%s: slowdowns not ordered: dpram %v, oram %v, pir %v", d.Name, sd, so, sp)
		}
		if sd > 2.5 {
			t.Fatalf("%s: DP-RAM slowdown %v; should be within ~2.5× of plaintext", d.Name, sd)
		}
	}
}
