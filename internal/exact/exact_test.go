package exact

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dpstore/internal/analysis"
	"dpstore/internal/block"
	"dpstore/internal/core/dpram"
	"dpstore/internal/privacy"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/workload"
)

func TestDPIRExactEpsMatchesAppendixB(t *testing.T) {
	// The per-transcript computation must reproduce the simplified formula
	// e^ε = 1 + (1−α)n/(αK) exactly.
	for _, tc := range []struct {
		n, k  int
		alpha float64
	}{
		{32, 1, 0.1}, {32, 4, 0.25}, {1024, 16, 0.05}, {4096, 1, 0.5},
	} {
		got := DPIRExactEps(tc.n, tc.k, tc.alpha)
		want := privacy.DPIRAchievedEps(tc.n, tc.k, tc.alpha)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d K=%d α=%v: exact ε %v, formula %v", tc.n, tc.k, tc.alpha, got, want)
		}
	}
	if !math.IsInf(DPIRExactEps(32, 1, 0), 1) {
		t.Fatal("α=0 must be +Inf")
	}
}

func TestDPIRTranscriptProbsNormalize(t *testing.T) {
	// Total mass: C(n−1,K−1) transcripts contain q, C(n−1,K) do not.
	n, k, alpha := 12, 4, 0.3
	pIn := DPIRTranscriptProb(n, k, alpha, true)
	pOut := DPIRTranscriptProb(n, k, alpha, false)
	total := pIn*math.Exp(lnBinom(n-1, k-1)) + pOut*math.Exp(lnBinom(n-1, k))
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("transcript probabilities sum to %v, want 1", total)
	}
}

func TestDPRAMDistNormalizes(t *testing.T) {
	m := NewDPRAM(4, 2)
	for _, seq := range []workload.Sequence{
		{{Index: 0, Op: workload.Read}},
		{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Write}},
		{{Index: 2, Op: workload.Read}, {Index: 2, Op: workload.Read}, {Index: 1, Op: workload.Read}},
	} {
		dist := m.TranscriptDist(seq)
		var total float64
		for _, p := range dist {
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("length-%d distribution sums to %v", len(seq), total)
		}
	}
}

func TestDPRAMPureDP(t *testing.T) {
	// Theorem 6.1 gives pure DP: the exact one-sided mass must be zero for
	// every adjacent pair, and ε finite.
	m := NewDPRAM(4, 2)
	pairs := [][2]workload.Sequence{
		{{{Index: 0, Op: workload.Read}}, {{Index: 1, Op: workload.Read}}},
		{
			{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Read}},
			{{Index: 0, Op: workload.Read}, {Index: 2, Op: workload.Read}},
		},
		{
			{{Index: 3, Op: workload.Read}, {Index: 3, Op: workload.Read}, {Index: 0, Op: workload.Read}},
			{{Index: 3, Op: workload.Read}, {Index: 1, Op: workload.Read}, {Index: 0, Op: workload.Read}},
		},
	}
	bound := privacy.DPRAMEpsUpperBound(4, 0.5)
	for i, pair := range pairs {
		res := m.ComparePair(pair[0], pair[1])
		if res.OneSided != 0 {
			t.Errorf("pair %d: one-sided mass %v, want exactly 0 (pure DP)", i, res.OneSided)
		}
		if res.Eps <= 0 || math.IsInf(res.Eps, 1) {
			t.Errorf("pair %d: exact ε = %v not in (0,∞)", i, res.Eps)
		}
		if res.Eps > bound {
			t.Errorf("pair %d: exact ε %v exceeds Theorem 6.1 bound %v", i, res.Eps, bound)
		}
	}
}

func TestDPRAMOpChangeIsFree(t *testing.T) {
	// Lemma 6.2 in exact form: the transcript law does not depend on
	// whether a query reads or writes, so sequences differing only in op
	// have ε exactly 0.
	m := NewDPRAM(4, 2)
	a := workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Read}}
	b := workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Write, Data: block.Pattern(1, 16)}}
	res := m.ComparePair(a, b)
	if res.Eps > 1e-12 || res.OneSided != 0 {
		t.Fatalf("op-only change has ε = %v, one-sided %v; want exactly 0", res.Eps, res.OneSided)
	}
}

func TestDPRAMEqualClassesDominate(t *testing.T) {
	// Lemma 6.6/6.7: for adjacent sequences, most transcript classes have
	// ratio exactly 1 — only the positions {k, nx(Q,k), nx(Q',k)} differ.
	m := NewDPRAM(4, 2)
	a := workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Read}, {Index: 3, Op: workload.Read}}
	b := workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 2, Op: workload.Read}, {Index: 3, Op: workload.Read}}
	res := m.ComparePair(a, b)
	if res.EqualClasses == 0 {
		t.Fatal("no ratio-1 transcript classes; Lemma 6.6 structure missing")
	}
	if res.EqualClasses*3 < res.Classes {
		t.Fatalf("only %d/%d classes have ratio 1; expected a large majority", res.EqualClasses, res.Classes)
	}
}

func TestDPRAMFirstQueryPositionLaw(t *testing.T) {
	// For a single query on a fresh store, the download address law is:
	// d = i w.p. (1−p) + p/n, every other d w.p. p/n. Check the marginal.
	n, c := 4, 2
	m := NewDPRAM(n, c)
	p := m.P()
	dist := m.TranscriptDist(workload.Sequence{{Index: 1, Op: workload.Read}})
	marginal := make([]float64, n)
	for key, prob := range dist {
		var d, o int
		if _, err := fmt.Sscanf(key, "%d,%d", &d, &o); err != nil {
			t.Fatal(err)
		}
		marginal[d] += prob
	}
	wantSelf := (1 - p) + p/float64(n)
	wantOther := p / float64(n)
	for d, got := range marginal {
		want := wantOther
		if d == 1 {
			want = wantSelf
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("Pr[d=%d] = %v, want %v", d, got, want)
		}
	}
}

// TestDPRAMExactVsSampled cross-validates the exact distribution against
// the real dpram implementation: the sampled transcript frequencies of
// the production code must converge to the enumerated probabilities.
func TestDPRAMExactVsSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const n, c = 4, 2
	seq := workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Read}}
	m := NewDPRAM(n, c)
	want := m.TranscriptDist(seq)

	src := rng.New(11)
	db, _ := block.PatternDatabase(n, 16)
	counts := stats{}
	const trials = 120000
	for i := 0; i < trials; i++ {
		srv, _ := store.NewMem(n, 16)
		rec := &recorder{inner: srv}
		cl, err := dpram.Setup(db, rec, dpram.Options{
			Rand: src.Split(), StashParam: c, DisableEncryption: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec.reset()
		for _, q := range seq {
			if _, err := cl.Access(q); err != nil {
				t.Fatal(err)
			}
		}
		counts.add(rec.key())
	}
	// Every enumerated transcript with non-trivial mass must appear at
	// close to its exact frequency.
	for key, p := range want {
		if p < 0.001 {
			continue
		}
		got := counts.freq(key, trials)
		if math.Abs(got-p) > 0.01+0.2*p {
			t.Fatalf("transcript %q: sampled %v vs exact %v", key, got, p)
		}
	}
	// And nothing outside the support may appear.
	for key := range counts.m {
		if _, ok := want[key]; !ok {
			t.Fatalf("sampled transcript %q not in exact support", key)
		}
	}
}

// TestDPRAMExactVsSampledEps compares the exact ε with the sampling
// estimator's ε̂ on the same pair — the calibration check for E6.
func TestDPRAMExactVsSampledEps(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const n, c = 4, 2
	a := workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Read}}
	b := workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 2, Op: workload.Read}}
	m := NewDPRAM(n, c)
	exactRes := m.ComparePair(a, b)

	src := rng.New(13)
	db, _ := block.PatternDatabase(n, 16)
	sample := func(s *rng.Source, seq workload.Sequence) func() string {
		return func() string {
			srv, _ := store.NewMem(n, 16)
			rec := &recorder{inner: srv}
			cl, err := dpram.Setup(db, rec, dpram.Options{
				Rand: s.Split(), StashParam: c, DisableEncryption: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			rec.reset()
			for _, q := range seq {
				if _, err := cl.Access(q); err != nil {
					t.Fatal(err)
				}
			}
			return rec.key()
		}
	}
	pe := analysis.SamplePair(sample(src.Split(), a), sample(src.Split(), b), 150000)
	epsHat := pe.MaxRatioEps(50)
	if math.Abs(epsHat-exactRes.Eps) > 0.4 {
		t.Fatalf("sampled ε̂ = %v vs exact ε = %v", epsHat, exactRes.Eps)
	}
}

func TestStashLaw(t *testing.T) {
	m := NewDPRAM(6, 3)
	law := m.StashLaw()
	var total, mean float64
	for k, p := range law {
		total += p
		mean += float64(k) * p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("stash law sums to %v", total)
	}
	if math.Abs(mean-3) > 1e-9 { // Binomial(6, 1/2) mean
		t.Fatalf("stash law mean %v, want 3", mean)
	}
}

func TestNewDPRAMPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDPRAM(1, 0) },
		func() { NewDPRAM(MaxN+1, 0) },
		func() { NewDPRAM(4, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// --- helpers -------------------------------------------------------------------

// recorder captures the (d_j, o_j) structure of DP-RAM queries. The
// implementation emits exactly three server operations per query —
// download d, download o, upload o (Algorithm 3 re-downloads the
// overwrite address before uploading) — so the canonical per-query symbol
// is (ops[0].addr, ops[2].addr), matching the exact model's "d,o" keys.
type recorder struct {
	inner store.Server
	addrs []int
}

func (r *recorder) Download(addr int) (block.Block, error) {
	b, err := r.inner.Download(addr)
	if err == nil {
		r.addrs = append(r.addrs, addr)
	}
	return b, err
}

func (r *recorder) Upload(addr int, b block.Block) error {
	err := r.inner.Upload(addr, b)
	if err == nil {
		r.addrs = append(r.addrs, addr)
	}
	return err
}

func (r *recorder) Size() int      { return r.inner.Size() }
func (r *recorder) BlockSize() int { return r.inner.BlockSize() }
func (r *recorder) reset()         { r.addrs = nil }

func (r *recorder) key() string {
	var sb strings.Builder
	for i := 0; i+2 < len(r.addrs)+1 && i+2 <= len(r.addrs); i += 3 {
		if i > 0 {
			sb.WriteByte('|')
		}
		fmt.Fprintf(&sb, "%d,%d", r.addrs[i], r.addrs[i+2])
	}
	return sb.String()
}

type stats struct{ m map[string]int }

func (s *stats) add(k string) {
	if s.m == nil {
		s.m = make(map[string]int)
	}
	s.m[k]++
}

func (s *stats) freq(k string, total int) float64 {
	return float64(s.m[k]) / float64(total)
}
