// Package exact computes exact transcript distributions for the paper's
// constructions at small parameter sizes, by closed form (DP-IR, Appendix
// B) and by exhaustive Markov enumeration over client states (DP-RAM,
// Section 6). Where the sampling estimator of internal/analysis gives
// ε̂ ± noise, this package gives the true ε of the mechanism — so the test
// suite can check the privacy theorems with equalities instead of
// tolerances, and experiment E6 can print an exact column.
package exact

import (
	"fmt"
	"math"
	"sort"

	"dpstore/internal/workload"
)

// --- DP-IR (Appendix B closed form) -------------------------------------------

// DPIRTranscriptProb returns the exact probability that Algorithm 1 with
// parameters (n, K, α) produces a download set containing the queried
// block (inReal = true) or any one fixed K-set not containing it. The two
// cases of Appendix B:
//
//	B_q ∈ T: (1−α)/C(n−1,K−1) + α/C(n,K)
//	B_q ∉ T: α/C(n,K)
func DPIRTranscriptProb(n, k int, alpha float64, inReal bool) float64 {
	lnCnk := lnBinom(n, k)
	if inReal {
		return (1-alpha)*math.Exp(-lnBinom(n-1, k-1)) + alpha*math.Exp(-lnCnk)
	}
	return alpha * math.Exp(-lnCnk)
}

// DPIRExactEps returns the exact pure-DP budget of Algorithm 1: the
// maximum log-ratio over transcript sets between two adjacent queries,
// which Appendix B shows equals ln(1 + (1−α)·n/(α·K)). Computed from the
// per-transcript probabilities rather than the simplified formula, so the
// tests can confirm the Appendix B algebra.
func DPIRExactEps(n, k int, alpha float64) float64 {
	if alpha <= 0 {
		return math.Inf(1)
	}
	pIn := DPIRTranscriptProb(n, k, alpha, true)
	pOut := DPIRTranscriptProb(n, k, alpha, false)
	return math.Log(pIn / pOut)
}

func lnBinom(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(1)
	}
	a, _ := math.Lgamma(float64(n) + 1)
	b, _ := math.Lgamma(float64(k) + 1)
	c, _ := math.Lgamma(float64(n-k) + 1)
	return a - b - c
}

// --- DP-RAM (exhaustive enumeration) --------------------------------------------

// DPRAM enumerates the exact transcript distribution of Algorithms 2–3
// for a database of n ≤ MaxN records with stash probability p = C/n. The
// client state is the stash membership set, represented as an n-bit mask;
// the per-query transcript is the (download address, overwrite address)
// pair, which by the Section 6.1 reduction is the entire adversary view.
type DPRAM struct {
	n int
	c int // stash parameter C; p = C/n exactly, matching Intn(n) < C
}

// MaxN bounds the enumeration (2^n states × (n²)^l transcripts).
const MaxN = 10

// NewDPRAM builds an exact model. It panics if n is out of enumeration
// range or C outside [0, n] — model construction is programmer-controlled.
func NewDPRAM(n, c int) *DPRAM {
	if n < 2 || n > MaxN {
		panic(fmt.Sprintf("exact: n = %d outside [2,%d]", n, MaxN))
	}
	if c < 0 || c > n {
		panic(fmt.Sprintf("exact: C = %d outside [0,%d]", c, n))
	}
	return &DPRAM{n: n, c: c}
}

// P returns the stash probability p = C/n.
func (m *DPRAM) P() float64 { return float64(m.c) / float64(m.n) }

// initialStates returns the setup-time distribution over stash masks:
// each record independently stashed with probability p (Algorithm 2).
func (m *DPRAM) initialStates() map[uint]float64 {
	p := m.P()
	states := make(map[uint]float64, 1<<m.n)
	for mask := uint(0); mask < 1<<m.n; mask++ {
		prob := 1.0
		for i := 0; i < m.n; i++ {
			if mask&(1<<i) != 0 {
				prob *= p
			} else {
				prob *= 1 - p
			}
		}
		if prob > 0 {
			states[mask] = prob
		}
	}
	return states
}

// step advances one query: given a state distribution it returns, for each
// (d, o) transcript symbol, the resulting sub-distribution over states.
// Probabilities across all symbols and states sum to the input mass.
func (m *DPRAM) step(states map[uint]float64, q workload.Query) map[[2]int]map[uint]float64 {
	n := m.n
	p := m.P()
	i := q.Index
	out := make(map[[2]int]map[uint]float64)
	add := func(d, o int, mask uint, prob float64) {
		if prob <= 0 {
			return
		}
		key := [2]int{d, o}
		inner, ok := out[key]
		if !ok {
			inner = make(map[uint]float64)
			out[key] = inner
		}
		inner[mask] += prob
	}
	uni := 1 / float64(n)
	for mask, prob := range states {
		// Download phase.
		type branch struct {
			d    int
			mask uint
			prob float64
		}
		var downloads []branch
		if mask&(1<<i) != 0 {
			// Stash hit: decoy d uniform; i leaves the stash.
			after := mask &^ (1 << i)
			for d := 0; d < n; d++ {
				downloads = append(downloads, branch{d: d, mask: after, prob: prob * uni})
			}
		} else {
			downloads = append(downloads, branch{d: i, mask: mask, prob: prob})
		}
		// Overwrite phase (identical for reads and writes — Lemma 6.2's
		// observation, confirmed by this enumeration).
		for _, b := range downloads {
			// Re-stash branch: probability p, o uniform.
			restashed := b.mask | (1 << i)
			for o := 0; o < n; o++ {
				add(b.d, o, restashed, b.prob*p*uni)
			}
			// Write-home branch: probability 1−p, o = i.
			add(b.d, i, b.mask, b.prob*(1-p))
		}
	}
	return out
}

// TranscriptDist returns the exact distribution over full transcripts
// ((d_1,o_1),…,(d_l,o_l)) for query sequence Q. Keys are canonical strings
// "d0,o0|d1,o1|…".
func (m *DPRAM) TranscriptDist(q workload.Sequence) map[string]float64 {
	type node struct {
		prefix string
		states map[uint]float64
	}
	frontier := []node{{prefix: "", states: m.initialStates()}}
	for _, query := range q {
		var next []node
		for _, nd := range frontier {
			for sym, states := range m.step(nd.states, query) {
				prefix := nd.prefix
				if prefix != "" {
					prefix += "|"
				}
				prefix += fmt.Sprintf("%d,%d", sym[0], sym[1])
				next = append(next, node{prefix: prefix, states: states})
			}
		}
		frontier = next
	}
	dist := make(map[string]float64, len(frontier))
	for _, nd := range frontier {
		var mass float64
		for _, p := range nd.states {
			mass += p
		}
		dist[nd.prefix] += mass
	}
	return dist
}

// PairResult is the exact privacy comparison of two query sequences.
type PairResult struct {
	// Eps is the maximum |ln(P(t)/Q(t))| over transcripts with positive
	// mass in both worlds.
	Eps float64
	// OneSided is the total mass (max over direction) on transcripts
	// possible in one world but not the other; pure DP requires 0.
	OneSided float64
	// WorstTranscript attains Eps.
	WorstTranscript string
	// EqualClasses counts transcripts with ratio exactly 1 (within 1e-12),
	// the "good cases" of Lemma 6.6.
	EqualClasses int
	// Classes is the number of distinct transcripts across both worlds.
	Classes int
}

// ComparePair computes the exact (ε, one-sided mass) separating two query
// sequences of equal length.
func (m *DPRAM) ComparePair(q1, q2 workload.Sequence) PairResult {
	if len(q1) != len(q2) {
		panic("exact: sequences must have equal length")
	}
	d1 := m.TranscriptDist(q1)
	d2 := m.TranscriptDist(q2)
	keys := make(map[string]struct{}, len(d1)+len(d2))
	for k := range d1 {
		keys[k] = struct{}{}
	}
	for k := range d2 {
		keys[k] = struct{}{}
	}
	var res PairResult
	res.Classes = len(keys)
	var oneP, oneQ float64
	const tiny = 1e-15
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		p, q := d1[k], d2[k]
		switch {
		case p > tiny && q > tiny:
			r := math.Abs(math.Log(p / q))
			if r > res.Eps {
				res.Eps = r
				res.WorstTranscript = k
			}
			if r < 1e-12 {
				res.EqualClasses++
			}
		case p > tiny:
			oneP += p
		case q > tiny:
			oneQ += q
		}
	}
	res.OneSided = math.Max(oneP, oneQ)
	return res
}

// StashLaw returns the exact stationary stash-size distribution after
// setup: Binomial(n, p), the law Lemma D.1's Chernoff argument bounds.
func (m *DPRAM) StashLaw() []float64 {
	p := m.P()
	out := make([]float64, m.n+1)
	for k := 0; k <= m.n; k++ {
		out[k] = math.Exp(lnBinom(m.n, k)) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(m.n-k))
	}
	return out
}
