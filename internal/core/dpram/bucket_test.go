package dpram

import (
	"testing"

	"dpstore/internal/block"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
)

// overlappingBuckets builds a tiny repertoire with deliberate overlap:
// 6 node blocks, 4 buckets of size 3 sharing the "upper" nodes 4 and 5.
func overlappingBuckets() [][]int {
	return [][]int{
		{0, 4, 5},
		{1, 4, 5},
		{2, 4, 5},
		{3, 4, 5},
	}
}

func newBucketRAM(t *testing.T, stashParam int) (*BucketRAM, *store.Counting) {
	t.Helper()
	const plain = 16
	srv, err := store.NewMem(6, crypto.CiphertextSize(plain))
	if err != nil {
		t.Fatal(err)
	}
	counting := store.NewCounting(srv)
	initial := make([]block.Block, 6)
	for i := range initial {
		initial[i] = block.Pattern(uint64(i), plain)
	}
	r, err := NewBucketRAM(counting, overlappingBuckets(), initial, plain, BucketOptions{
		StashParam: stashParam,
		Rand:       rng.New(1),
		Key:        crypto.KeyFromSeed(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	counting.Reset()
	return r, counting
}

func TestBucketRAMValidation(t *testing.T) {
	srv, _ := store.NewMem(6, crypto.CiphertextSize(16))
	if _, err := NewBucketRAM(srv, overlappingBuckets(), nil, 16, BucketOptions{}); err == nil {
		t.Fatal("nil Rand accepted")
	}
	if _, err := NewBucketRAM(srv, [][]int{{0}}, nil, 16, BucketOptions{Rand: rng.New(1)}); err == nil {
		t.Fatal("single bucket accepted")
	}
	ragged := [][]int{{0, 1}, {2}}
	if _, err := NewBucketRAM(srv, ragged, nil, 16, BucketOptions{Rand: rng.New(1)}); err == nil {
		t.Fatal("ragged buckets accepted")
	}
	oob := [][]int{{0, 1}, {2, 9}}
	if _, err := NewBucketRAM(srv, oob, nil, 16, BucketOptions{Rand: rng.New(1)}); err == nil {
		t.Fatal("out-of-range address accepted")
	}
	wrongBS, _ := store.NewMem(6, 16)
	if _, err := NewBucketRAM(wrongBS, overlappingBuckets(), nil, 16, BucketOptions{Rand: rng.New(1)}); err == nil {
		t.Fatal("missing ciphertext expansion accepted")
	}
}

func TestBucketRAMReadsInitialContents(t *testing.T) {
	r, _ := newBucketRAM(t, 1)
	for bi := 0; bi < 4; bi++ {
		nodes, err := r.Access(bi, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := overlappingBuckets()[bi]
		for k, addr := range want {
			if !block.CheckPattern(nodes[k], uint64(addr)) {
				t.Fatalf("bucket %d node %d corrupted", bi, k)
			}
		}
	}
}

// TestBucketRAMOverlapCoherence is the crux of Appendix E: an update to a
// shared node through one bucket must be visible when reading an
// overlapping bucket, across all stash configurations.
func TestBucketRAMOverlapCoherence(t *testing.T) {
	// Run with an aggressive stash (p = 1/2) to force many stash
	// transitions, and a long random trace against a reference model.
	r, _ := newBucketRAM(t, 2)
	buckets := overlappingBuckets()
	ref := make([]block.Block, 6)
	for i := range ref {
		ref[i] = block.Pattern(uint64(i), 16)
	}
	src := rng.New(2)
	for step := 0; step < 4000; step++ {
		bi := src.Intn(4)
		if src.Bernoulli(0.5) {
			// Update: rewrite the bucket's nodes with fresh patterns.
			stamp := uint64(1000 + step)
			nodes, err := r.Access(bi, func(nodes []block.Block) {
				for k := range nodes {
					copy(nodes[k], block.Pattern(stamp+uint64(k), 16))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for k, addr := range buckets[bi] {
				ref[addr] = block.Pattern(stamp+uint64(k), 16)
				if !nodes[k].Equal(ref[addr]) {
					t.Fatalf("step %d: update result stale at node %d", step, k)
				}
			}
		} else {
			nodes, err := r.Access(bi, nil)
			if err != nil {
				t.Fatal(err)
			}
			for k, addr := range buckets[bi] {
				if !nodes[k].Equal(ref[addr]) {
					t.Fatalf("step %d: bucket %d node %d (addr %d) diverged from reference",
						step, bi, k, addr)
				}
			}
		}
	}
}

// TestBucketRAMCost checks the Appendix E cost shape: exactly 2 bucket
// downloads + 1 bucket upload per query, i.e. 3·s block operations.
func TestBucketRAMCost(t *testing.T) {
	r, counting := newBucketRAM(t, 1)
	const queries = 200
	src := rng.New(3)
	for i := 0; i < queries; i++ {
		if _, err := r.Access(src.Intn(4), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := counting.Stats()
	s := int64(r.BucketSize())
	if st.Downloads != 2*queries*s || st.Uploads != queries*s {
		t.Fatalf("ops = (%d,%d), want (%d,%d)", st.Downloads, st.Uploads, 2*queries*s, queries*s)
	}
}

func TestBucketRAMClientStorageBounded(t *testing.T) {
	r, _ := newBucketRAM(t, 1) // p = 1/4
	src := rng.New(4)
	for i := 0; i < 5000; i++ {
		if _, err := r.Access(src.Intn(4), nil); err != nil {
			t.Fatal(err)
		}
	}
	// At most all 4 buckets can be stashed: ≤ 6 distinct dirty blocks.
	if r.MaxClientBlocks() > 6 {
		t.Fatalf("client blocks %d exceeded repertoire footprint", r.MaxClientBlocks())
	}
	if r.MaxClientBlocks() == 0 {
		t.Fatal("stash never engaged")
	}
}

func TestBucketRAMOutOfRange(t *testing.T) {
	r, _ := newBucketRAM(t, 1)
	if _, err := r.Access(-1, nil); err == nil {
		t.Fatal("negative bucket accepted")
	}
	if _, err := r.Access(4, nil); err == nil {
		t.Fatal("overflow bucket accepted")
	}
}

func TestBucketRAMDisjointBuckets(t *testing.T) {
	// Degenerate case without overlap must also work.
	const plain = 16
	srv, _ := store.NewMem(4, crypto.CiphertextSize(plain))
	buckets := [][]int{{0, 1}, {2, 3}}
	r, err := NewBucketRAM(srv, buckets, nil, plain, BucketOptions{Rand: rng.New(5), StashParam: 1})
	if err != nil {
		t.Fatal(err)
	}
	stamp := block.Pattern(42, plain)
	if _, err := r.Access(0, func(nodes []block.Block) { copy(nodes[1], stamp) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		nodes, err := r.Access(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !nodes[1].Equal(stamp) {
			t.Fatalf("iteration %d: write lost", i)
		}
		other, err := r.Access(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !other[0].IsZero() || !other[1].IsZero() {
			t.Fatal("disjoint bucket was affected by the write")
		}
	}
}
