package dpram

import (
	"math"
	"testing"

	"dpstore/internal/analysis"
	"dpstore/internal/block"
	"dpstore/internal/crypto"
	"dpstore/internal/rng"
	"dpstore/internal/store"
	"dpstore/internal/workload"
)

func setup(t *testing.T, n int, opts Options) (*Client, *store.Counting) {
	t.Helper()
	db, err := block.PatternDatabase(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := store.NewMem(n, ServerBlockSize(16, opts))
	if err != nil {
		t.Fatal(err)
	}
	counting := store.NewCounting(srv)
	c, err := Setup(db, counting, opts)
	if err != nil {
		t.Fatal(err)
	}
	counting.Reset() // exclude setup traffic from per-query accounting
	return c, counting
}

func TestSetupValidation(t *testing.T) {
	db, _ := block.PatternDatabase(8, 16)
	goodSrv, _ := store.NewMem(8, crypto.CiphertextSize(16))
	if _, err := Setup(db, goodSrv, Options{}); err == nil {
		t.Fatal("nil Rand accepted")
	}
	wrongSize, _ := store.NewMem(9, crypto.CiphertextSize(16))
	if _, err := Setup(db, wrongSize, Options{Rand: rng.New(1)}); err == nil {
		t.Fatal("wrong server size accepted")
	}
	wrongBS, _ := store.NewMem(8, 16)
	if _, err := Setup(db, wrongBS, Options{Rand: rng.New(1)}); err == nil {
		t.Fatal("wrong block size accepted (encryption overhead missing)")
	}
	if _, err := Setup(db, goodSrv, Options{Rand: rng.New(1), StashParam: 99}); err == nil {
		t.Fatal("stash parameter > n accepted")
	}
}

func TestDefaultStashParam(t *testing.T) {
	// Φ(n) must be ω(log n) but far sublinear: check a few sizes.
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		c := DefaultStashParam(n)
		lg := math.Log2(float64(n))
		if float64(c) < lg {
			t.Fatalf("Φ(%d) = %d below log n", n, c)
		}
		if float64(c) > 0.05*float64(n) {
			t.Fatalf("Φ(%d) = %d too large", n, c)
		}
	}
	if DefaultStashParam(2) < 1 {
		t.Fatal("tiny n broke the default")
	}
}

// TestReadCorrectness reads every record repeatedly; values must match the
// database regardless of stash churn.
func TestReadCorrectness(t *testing.T) {
	n := 64
	c, _ := setup(t, n, Options{Rand: rng.New(2)})
	for round := 0; round < 5; round++ {
		for i := 0; i < n; i++ {
			b, err := c.Read(i)
			if err != nil {
				t.Fatal(err)
			}
			if !block.CheckPattern(b, uint64(i)) {
				t.Fatalf("round %d: record %d corrupted", round, i)
			}
		}
	}
}

// TestReadWriteAgainstReference runs a long random read/write trace and
// compares every result against an in-memory reference map.
func TestReadWriteAgainstReference(t *testing.T) {
	n := 32
	c, _ := setup(t, n, Options{Rand: rng.New(3)})
	ref := make([]block.Block, n)
	for i := range ref {
		ref[i] = block.Pattern(uint64(i), 16)
	}
	src := rng.New(4)
	for step := 0; step < 3000; step++ {
		i := src.Intn(n)
		if src.Bernoulli(0.4) {
			val := block.Pattern(uint64(10000+step), 16)
			prev, err := c.Write(i, val)
			if err != nil {
				t.Fatal(err)
			}
			if !prev.Equal(ref[i]) {
				t.Fatalf("step %d: Write returned stale previous value", step)
			}
			ref[i] = val
		} else {
			got, err := c.Read(i)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref[i]) {
				t.Fatalf("step %d: Read(%d) diverged from reference", step, i)
			}
		}
	}
}

// TestConstantOverhead checks the exact Algorithm 3 cost: 2 downloads and 1
// upload per query, independent of n.
func TestConstantOverhead(t *testing.T) {
	for _, n := range []int{16, 256, 4096} {
		c, counting := setup(t, n, Options{Rand: rng.New(5)})
		const queries = 300
		src := rng.New(6)
		for i := 0; i < queries; i++ {
			if _, err := c.Read(src.Intn(n)); err != nil {
				t.Fatal(err)
			}
		}
		st := counting.Stats()
		if st.Downloads != 2*queries || st.Uploads != queries {
			t.Fatalf("n=%d: ops = (%d,%d), want (%d,%d)", n, st.Downloads, st.Uploads, 2*queries, queries)
		}
	}
}

// TestStashBound runs many queries and checks the stash stays within a
// small multiple of Φ(n), per Lemma D.1.
func TestStashBound(t *testing.T) {
	n := 1 << 12
	c, _ := setup(t, n, Options{Rand: rng.New(7)})
	src := rng.New(8)
	for i := 0; i < 20000; i++ {
		if _, err := c.Read(src.Intn(n)); err != nil {
			t.Fatal(err)
		}
	}
	phi := c.StashParam()
	if c.MaxStashSize() > 3*phi {
		t.Fatalf("max stash %d exceeded 3·Φ = %d", c.MaxStashSize(), 3*phi)
	}
	if c.MaxStashSize() == 0 {
		t.Fatal("stash never used; coin logic broken")
	}
}

// TestStashMembershipRate verifies the per-record stash law stays
// Bernoulli(p): after a long run, the stash size hovers around C.
func TestStashMembershipRate(t *testing.T) {
	n := 1 << 10
	phi := 64
	c, _ := setup(t, n, Options{Rand: rng.New(9), StashParam: phi})
	src := rng.New(10)
	var sum, samples float64
	for i := 0; i < 30000; i++ {
		if _, err := c.Read(src.Intn(n)); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			sum += float64(c.StashSize())
			samples++
		}
	}
	avg := sum / samples
	if avg < float64(phi)*0.7 || avg > float64(phi)*1.3 {
		t.Fatalf("average stash %0.1f, want ≈ C = %d", avg, phi)
	}
}

func TestRetrievalOnlyMode(t *testing.T) {
	n := 64
	opts := Options{Rand: rng.New(11), RetrievalOnly: true}
	c, counting := setup(t, n, opts)
	const queries = 500
	src := rng.New(12)
	for i := 0; i < queries; i++ {
		q := src.Intn(n)
		b, err := c.Read(q)
		if err != nil {
			t.Fatal(err)
		}
		if !block.CheckPattern(b, uint64(q)) {
			t.Fatalf("read %d corrupted", q)
		}
	}
	st := counting.Stats()
	if st.Uploads != 0 {
		t.Fatal("retrieval-only mode must never upload")
	}
	if st.Downloads != queries {
		t.Fatalf("downloads = %d, want exactly 1 per query", st.Downloads)
	}
	if _, err := c.Write(0, block.Pattern(0, 16)); err == nil {
		t.Fatal("write accepted in retrieval-only mode")
	}
}

func TestWriteSizeValidation(t *testing.T) {
	c, _ := setup(t, 16, Options{Rand: rng.New(13)})
	if _, err := c.Write(0, block.New(8)); err == nil {
		t.Fatal("wrong-size write accepted")
	}
	if _, err := c.Read(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := c.Read(16); err == nil {
		t.Fatal("overflow index accepted")
	}
}

func TestDeterministicKeyReproducible(t *testing.T) {
	// Same seed + same key ⇒ identical server contents and behavior.
	mk := func() *Client {
		db, _ := block.PatternDatabase(16, 16)
		srv, _ := store.NewMem(16, crypto.CiphertextSize(16))
		c, err := Setup(db, srv, Options{Rand: rng.New(14), Key: crypto.KeyFromSeed(1)})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for i := 0; i < 50; i++ {
		ba, err := a.Read(i % 16)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Read(i % 16)
		if err != nil {
			t.Fatal(err)
		}
		if !ba.Equal(bb) {
			t.Fatal("same-seed clients diverged")
		}
	}
}

// TestEmpiricalEpsilonSmallN is experiment E6 in miniature: estimate the
// DP-RAM transcript ε̂ for adjacent 3-query sequences over a 4-record
// store and check it is (a) finite with δ̂ ≈ 0 and (b) below the analytic
// Theorem 6.1 upper bound.
func TestEmpiricalEpsilonSmallN(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const n = 4
	const phi = 2 // p = 1/2, deliberately coarse to keep classes populated
	// Length-2 adjacent sequences differing at the second query. Every
	// transcript class then has probability ≥ (p/n)⁴ = 1/4096, so under
	// true pure DP no class is one-sided at 150k samples w.h.p.; longer
	// sequences make rare classes unobservable and the δ̂ check vacuous.
	seqA := workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 1, Op: workload.Read}}
	seqB := workload.Sequence{{Index: 0, Op: workload.Read}, {Index: 2, Op: workload.Read}}

	sample := func(src *rng.Source, seq workload.Sequence) func() string {
		db, _ := block.PatternDatabase(n, 16)
		return func() string {
			srv, _ := store.NewMem(n, 16)
			recorder := newQueryRecorder(srv)
			c, err := Setup(db, recorder, Options{
				Rand:              src.Split(),
				StashParam:        phi,
				DisableEncryption: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			recorder.reset()
			for _, q := range seq {
				if _, err := c.Access(q); err != nil {
					t.Fatal(err)
				}
			}
			return recorder.key()
		}
	}
	src := rng.New(15)
	pe := analysis.SamplePair(sample(src.Split(), seqA), sample(src.Split(), seqB), 150000)

	epsHat := pe.MaxRatioEps(30)
	bound := (&Client{n: n, c: phi}).EpsUpperBound()
	if epsHat <= 0 {
		t.Fatal("ε̂ = 0: adjacent sequences indistinguishable — suspicious for finite n")
	}
	if epsHat > bound {
		t.Fatalf("ε̂ = %v above the analytic bound %v", epsHat, bound)
	}
	// Pure DP: no transcript class may be (meaningfully) one-sided.
	if m := pe.OneSidedMass(); m > 0.01 {
		t.Fatalf("one-sided transcript mass %v; Theorem 6.1 promises pure DP", m)
	}
}

// queryRecorder captures the (op, addr) view like trace.Recorder but lives
// here to avoid an import cycle in tests; it implements store.Server.
type queryRecorder struct {
	inner store.Server
	log   []byte
}

func newQueryRecorder(inner store.Server) *queryRecorder {
	return &queryRecorder{inner: inner}
}

func (r *queryRecorder) Download(addr int) (block.Block, error) {
	b, err := r.inner.Download(addr)
	if err == nil {
		r.log = append(r.log, 'D', byte('0'+addr))
	}
	return b, err
}

func (r *queryRecorder) Upload(addr int, b block.Block) error {
	err := r.inner.Upload(addr, b)
	if err == nil {
		r.log = append(r.log, 'U', byte('0'+addr))
	}
	return err
}

func (r *queryRecorder) Size() int      { return r.inner.Size() }
func (r *queryRecorder) BlockSize() int { return r.inner.BlockSize() }
func (r *queryRecorder) reset()         { r.log = nil }
func (r *queryRecorder) key() string    { return string(r.log) }
